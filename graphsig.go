package graphsig

import (
	"io"
	"time"

	"graphsig/internal/apps"
	"graphsig/internal/core"
	"graphsig/internal/datagen"
	"graphsig/internal/eval"
	"graphsig/internal/graph"
	"graphsig/internal/netflow"
	"graphsig/internal/perturb"
	"graphsig/internal/sketch"
	"graphsig/internal/stats"
	"graphsig/internal/stream"
)

// Core graph types. Aliases give external users a name for types whose
// implementations live in internal packages; methods and identity are
// unchanged.
type (
	// Graph is a communication graph aggregated over one time window.
	Graph = graph.Window
	// GraphBuilder accumulates weighted edges into a Graph.
	GraphBuilder = graph.Builder
	// Universe interns node labels to stable NodeIDs shared across windows.
	Universe = graph.Universe
	// NodeID identifies an interned node label.
	NodeID = graph.NodeID
	// Edge is one weighted directed edge.
	Edge = graph.Edge
	// Part classifies a node in a bipartite graph.
	Part = graph.Part
	// GraphStats summarizes a Graph's structure.
	GraphStats = graph.Stats
)

// Bipartite parts.
const (
	PartNone = graph.PartNone
	Part1    = graph.Part1
	Part2    = graph.Part2
)

// Signature types.
type (
	// Signature is a top-k weighted node set σ_t(v) (Definition 1).
	Signature = core.Signature
	// SignatureSet holds the signatures of a source set in one window.
	SignatureSet = core.SignatureSet
	// Scheme computes signatures for nodes of a Graph.
	Scheme = core.Scheme
	// Distance compares two signatures in [0, 1].
	Distance = core.Distance
	// RandomWalkScheme exposes the RWR scheme's parameters.
	RandomWalkScheme = core.RandomWalk
)

// Flow-record types.
type (
	// FlowRecord is one NetFlow-style flow summary.
	FlowRecord = netflow.Record
	// FlowAggregateOptions controls flow→graph aggregation.
	FlowAggregateOptions = netflow.AggregateOptions
	// Classifier assigns node labels to bipartite parts.
	Classifier = netflow.Classifier
	// FlowProto is a flow record's transport protocol.
	FlowProto = netflow.Proto
)

// Flow protocols.
const (
	ProtoTCP = netflow.TCP
	ProtoUDP = netflow.UDP
)

// Evaluation and application types.
type (
	// Summary is a mean/stddev/min/max statistic bundle.
	Summary = stats.Summary
	// ROCQuery is one ranked-retrieval evaluation.
	ROCQuery = eval.Query
	// ROCCurve is a sampled ROC curve.
	ROCCurve = eval.Curve
	// Ellipse is a persistence/uniqueness span (Figure 1 point).
	Ellipse = eval.Ellipse
	// SimilarPair is a candidate multiusage pair.
	SimilarPair = apps.SimilarPair
	// MasqueradeResult is Algorithm 1's output.
	MasqueradeResult = apps.MasqueradeResult
	// Anomaly flags an abrupt behaviour change of one label.
	Anomaly = apps.Anomaly
	// PerturbOptions parameterizes §IV-C graph perturbation.
	PerturbOptions = perturb.Options
	// Masquerade is a simulated label-masquerade ground truth.
	Masquerade = perturb.Masquerade
	// Match is one de-anonymization assignment.
	Match = apps.Match
	// Watchlist archives signatures of individuals of interest across
	// windows and ranks new signatures against them.
	Watchlist = apps.Watchlist
	// WatchlistHit is one watchlist match.
	WatchlistHit = apps.Hit
)

// Dataset generator types (the paper's data substitutes).
type (
	// EnterpriseConfig parameterizes the synthetic enterprise flows.
	EnterpriseConfig = datagen.EnterpriseConfig
	// EnterpriseData is the generated flow workload.
	EnterpriseData = datagen.EnterpriseData
	// QueryLogConfig parameterizes the synthetic query log.
	QueryLogConfig = datagen.QueryLogConfig
	// QueryLogData is the generated query-log workload.
	QueryLogData = datagen.QueryLogData
	// Truth is generator ground truth (individuals → labels).
	Truth = datagen.Truth
	// TelephoneConfig parameterizes the synthetic call graph.
	TelephoneConfig = datagen.TelephoneConfig
	// TelephoneData is the generated call workload.
	TelephoneData = datagen.TelephoneData
)

// Streaming (§VI) types.
type (
	// StreamConfig sizes the per-node sketch state.
	StreamConfig = sketch.StreamConfig
	// StreamTT extracts approximate Top Talkers signatures from an
	// edge stream using per-source Count-Min sketches.
	StreamTT = sketch.StreamTT
	// StreamUT extracts approximate Unexpected Talkers signatures,
	// additionally estimating in-degrees with FM sketches.
	StreamUT = sketch.StreamUT
)

// NewStreamTT builds a semi-streaming TT extractor.
func NewStreamTT(cfg StreamConfig) *StreamTT { return sketch.NewStreamTT(cfg) }

// NewStreamUT builds a semi-streaming UT extractor.
func NewStreamUT(cfg StreamConfig) *StreamUT { return sketch.NewStreamUT(cfg) }

// Streaming pipeline types (§VI end-to-end).
type (
	// PipelineConfig parameterizes a windowed streaming pipeline.
	PipelineConfig = stream.Config
	// Pipeline turns a time-ordered flow-record stream into per-window
	// signature sets using only per-node sketch state.
	Pipeline = stream.Pipeline
)

// NewPipeline builds a streaming pipeline over u (nil = fresh universe).
func NewPipeline(cfg PipelineConfig, u *Universe) (*Pipeline, error) {
	return stream.NewPipeline(cfg, u)
}

// RunPipeline streams a whole record slice and returns one signature
// set per window, including the final partial window.
func RunPipeline(cfg PipelineConfig, u *Universe, records []FlowRecord) ([]*SignatureSet, error) {
	return stream.Run(cfg, u, records)
}

// DetectMultiusageApprox is the LSH-accelerated multiusage scan (§VI):
// candidate pairs from an LSH banding index, exact-verified at the
// Jaccard threshold.
func DetectMultiusageApprox(set *SignatureSet, threshold float64, bands, rows int, seed uint64) ([]SimilarPair, error) {
	return apps.DetectMultiusageApprox(set, threshold, bands, rows, seed)
}

// NewUniverse returns an empty label universe.
func NewUniverse() *Universe { return graph.NewUniverse() }

// NewGraphBuilder starts a Graph for window index t over universe u.
func NewGraphBuilder(u *Universe, index int) *GraphBuilder {
	return graph.NewBuilder(u, index)
}

// GraphFromEdges builds a Graph directly from an edge list.
func GraphFromEdges(u *Universe, index int, edges []Edge) (*Graph, error) {
	return graph.FromEdges(u, index, edges)
}

// SummarizeGraph computes structural statistics of g.
func SummarizeGraph(g *Graph) GraphStats { return graph.Summarize(g) }

// TopTalkers returns the TT scheme (Definition 3).
func TopTalkers() Scheme { return core.TopTalkers{} }

// UnexpectedTalkers returns the UT scheme (Definition 4).
func UnexpectedTalkers() Scheme { return core.UnexpectedTalkers{} }

// RandomWalk returns the RWRʰ_c scheme (Definition 5); hops 0 runs the
// walk to convergence.
func RandomWalk(c float64, hops int) Scheme {
	return core.RandomWalk{C: c, Hops: hops}
}

// ParallelScheme wraps a scheme so signature computation fans out
// across workers goroutines (0 = GOMAXPROCS) with bit-identical
// results.
func ParallelScheme(s Scheme, workers int) Scheme { return core.Parallel(s, workers) }

// ParseScheme builds a Scheme from its Name() string ("tt", "ut",
// "rwr3@0.1", ...).
func ParseScheme(name string) (Scheme, error) { return core.ParseScheme(name) }

// PaperSchemes returns the scheme lineup of the paper's Figures 1-4.
func PaperSchemes() []Scheme { return core.PaperSchemes() }

// Distances.
func DistJaccard() Distance { return core.Jaccard{} }

// DistDice returns the weighted Dice distance.
func DistDice() Distance { return core.Dice{} }

// DistSDice returns the scaled Dice distance.
func DistSDice() Distance { return core.ScaledDice{} }

// DistSHel returns the scaled Hellinger distance.
func DistSHel() Distance { return core.ScaledHellinger{} }

// AllDistances returns the paper's four distance functions.
func AllDistances() []Distance { return core.AllDistances() }

// ExtendedDistances returns the paper's four distances plus cosine and
// weighted-Jaccard extras.
func ExtendedDistances() []Distance { return core.ExtendedDistances() }

// DistCosine returns the cosine distance (extension).
func DistCosine() Distance { return core.Cosine{} }

// DistWeightedJaccard returns the scale-free weighted Jaccard distance
// (extension).
func DistWeightedJaccard() Distance { return core.WeightedJaccard{} }

// BlendSchemes combines two schemes: each signature is the convex
// combination alpha·A + (1−alpha)·B of the components' normalized
// relevance vectors.
func BlendSchemes(a, b Scheme, alpha float64) Scheme {
	return core.Blend{A: a, B: b, Alpha: alpha}
}

// ComputeSignatures computes length-k signatures for the default source
// set of g (active Part1 nodes of a bipartite graph; otherwise all
// active sources).
func ComputeSignatures(s Scheme, g *Graph, k int) (*SignatureSet, error) {
	return core.ComputeSet(s, g, core.DefaultSources(g), k)
}

// ComputeSignaturesFor computes length-k signatures for explicit sources.
func ComputeSignaturesFor(s Scheme, g *Graph, sources []NodeID, k int) (*SignatureSet, error) {
	return core.ComputeSet(s, g, sources, k)
}

// NewSignatureSet wraps externally produced signatures (streamed,
// filtered, deserialized) in a SignatureSet; each signature is
// validated against the canonical-form invariants.
func NewSignatureSet(scheme string, window int, sources []NodeID, sigs []Signature) (*SignatureSet, error) {
	return core.NewSignatureSet(scheme, window, sources, sigs)
}

// SignatureOf computes one node's signature.
func SignatureOf(s Scheme, g *Graph, v NodeID, k int) (Signature, error) {
	return core.ComputeOne(s, g, v, k)
}

// DecayCombine produces exponentially decayed cumulative windows
// (C′_t = λ·C′_{t−1} + C_t), the §III-A history combination.
func DecayCombine(windows []*Graph, lambda float64) ([]*Graph, error) {
	return core.DecayCombine(windows, lambda)
}

// Persistence computes 1 − Dist(σ_t(v), σ_{t+1}(v)) per source present
// in both sets.
func Persistence(d Distance, at, next *SignatureSet) map[NodeID]float64 {
	return eval.Persistence(d, at, next)
}

// PersistenceSummary summarizes per-node persistence.
func PersistenceSummary(d Distance, at, next *SignatureSet) Summary {
	return eval.PersistenceSummary(d, at, next)
}

// UniquenessSummary summarizes pairwise within-window distances;
// maxPairs > 0 samples pairs for large sets (0 = exact).
func UniquenessSummary(d Distance, set *SignatureSet, maxPairs int, seed int64) Summary {
	return eval.UniquenessSummary(d, set, maxPairs, seed)
}

// Robustness computes 1 − Dist(σ(v), σ̂(v)) per source against a
// perturbed signature set.
func Robustness(d Distance, clean, perturbed *SignatureSet) map[NodeID]float64 {
	return eval.Robustness(d, clean, perturbed)
}

// AUCDiff is a paired-bootstrap scheme comparison.
type AUCDiff = eval.AUCDiff

// CompareSchemesAUC bootstraps the mean self-retrieval AUC difference
// between two schemes on the same window pair (positive = a wins),
// with a 95% percentile interval.
func CompareSchemesAUC(d Distance, a, b Scheme, at, next *Graph, k int, seed int64) (AUCDiff, error) {
	build := func(s Scheme) ([]eval.Query, error) {
		s0, err := ComputeSignatures(s, at, k)
		if err != nil {
			return nil, err
		}
		s1, err := ComputeSignatures(s, next, k)
		if err != nil {
			return nil, err
		}
		return eval.SelfRetrievalQueries(d, s0, s1), nil
	}
	qa, err := build(a)
	if err != nil {
		return AUCDiff{}, err
	}
	qb, err := build(b)
	if err != nil {
		return AUCDiff{}, err
	}
	return eval.BootstrapAUCDiff(qa, qb, 2000, 0.95, seed)
}

// SelfRetrievalAUC is the paper's §IV-C statistic: the mean AUC of
// ranking every candidate by distance from each node's earlier
// signature, the node itself being the positive.
func SelfRetrievalAUC(d Distance, at, next *SignatureSet) (float64, error) {
	return eval.SelfRetrievalAUC(d, at, next)
}

// PerturbGraph applies the §IV-C edge insertion/deletion perturbation.
func PerturbGraph(g *Graph, opts PerturbOptions) (*Graph, error) {
	return perturb.Perturb(g, opts)
}

// SimulateMasquerade relabels frac·|candidates| nodes by a random
// fixed-point-free bijection, returning the rebuilt graph and the
// ground-truth mapping.
func SimulateMasquerade(g *Graph, candidates []NodeID, frac float64, seed int64) (*Graph, *Masquerade, error) {
	return perturb.SimulateMasquerade(g, candidates, frac, seed)
}

// DetectMultiusage returns source pairs whose within-window signature
// distance is at most threshold, most similar first.
func DetectMultiusage(d Distance, set *SignatureSet, threshold float64) ([]SimilarPair, error) {
	return apps.DetectMultiusage(d, set, threshold)
}

// NearestNeighbors ranks the other sources by distance from v.
func NearestNeighbors(d Distance, set *SignatureSet, v NodeID, topN int) ([]SimilarPair, error) {
	return apps.NearestNeighbors(d, set, v, topN)
}

// DetectLabelMasquerading runs Algorithm 1 with threshold delta and
// candidate depth ell.
func DetectLabelMasquerading(d Distance, at, next *SignatureSet, delta float64, ell int) (*MasqueradeResult, error) {
	return apps.DetectLabelMasquerading(d, at, next, delta, ell)
}

// MasqueradeDelta computes Algorithm 1's δ = mean self-persistence / c.
func MasqueradeDelta(d Distance, at, next *SignatureSet, c int) (float64, error) {
	return apps.DeltaFromSelfPersistence(d, at, next, c)
}

// MasqueradeAccuracy scores a detection result against ground truth
// over the evaluated node set.
func MasqueradeAccuracy(res *MasqueradeResult, truth map[NodeID]NodeID, all []NodeID) (float64, error) {
	return apps.MasqueradeAccuracy(res, truth, all)
}

// DetectAnomalies reports sources whose self-persistence lies more than
// zCut standard deviations below the population mean.
func DetectAnomalies(d Distance, at, next *SignatureSet, zCut float64) ([]Anomaly, Summary, error) {
	return apps.DetectAnomalies(d, at, next, zCut)
}

// NewWatchlist returns an empty signature archive for reappearance
// detection (§I: "is a new user really the reappearance of an
// individual observed earlier?").
func NewWatchlist() *Watchlist { return apps.NewWatchlist() }

// DeAnonymize matches each anonymized node to the nearest reference
// signature (greedy enforces an injective assignment), the paper's §I
// anonymization-analysis application.
func DeAnonymize(d Distance, reference, anonymized *SignatureSet, greedy bool) ([]Match, error) {
	return apps.DeAnonymize(d, reference, anonymized, greedy)
}

// DeAnonymizationAccuracy scores matches against the true mapping
// anonymized → reference.
func DeAnonymizationAccuracy(matches []Match, truth map[NodeID]NodeID) (float64, error) {
	return apps.DeAnonymizationAccuracy(matches, truth)
}

// DefaultTelephoneConfig sizes a laptop-scale synthetic call graph.
func DefaultTelephoneConfig(seed int64) TelephoneConfig {
	return datagen.DefaultTelephoneConfig(seed)
}

// GenerateTelephone produces the synthetic call-graph workload.
func GenerateTelephone(cfg TelephoneConfig) (*TelephoneData, error) {
	return datagen.GenerateTelephone(cfg)
}

// WriteSignatures serializes a signature set to the line-oriented text
// format, resolving NodeIDs through u.
func WriteSignatures(w io.Writer, set *SignatureSet, u *Universe) error {
	return core.WriteSignatureSet(w, set, u)
}

// ReadSignatures parses a serialized signature set, interning labels
// into u.
func ReadSignatures(r io.Reader, u *Universe) (*SignatureSet, error) {
	return core.ReadSignatureSet(r, u)
}

// ReadFlowsText parses flow records from the text format.
func ReadFlowsText(r io.Reader) ([]FlowRecord, error) { return netflow.ReadText(r) }

// WriteFlowsText writes flow records in the text format.
func WriteFlowsText(w io.Writer, records []FlowRecord) error {
	return netflow.WriteText(w, records)
}

// ReadFlowsBinary parses flow records from the binary format.
func ReadFlowsBinary(r io.Reader) ([]FlowRecord, error) { return netflow.ReadBinary(r) }

// WriteFlowsBinary writes flow records in the binary format.
func WriteFlowsBinary(w io.Writer, records []FlowRecord) error {
	return netflow.WriteBinary(w, records)
}

// AggregateFlows buckets flow records into windows of the given size
// and builds one communication graph per window.
func AggregateFlows(records []FlowRecord, windowSize time.Duration, classify Classifier) ([]*Graph, error) {
	return netflow.Aggregate(records, netflow.AggregateOptions{
		WindowSize: windowSize,
		Classify:   classify,
		TCPOnly:    true,
	})
}

// PrefixClassifier classifies labels with the prefix as Part1 (local),
// everything else as Part2 (external).
func PrefixClassifier(localPrefix string) Classifier {
	return netflow.PrefixClassifier(localPrefix)
}

// DefaultEnterpriseConfig mirrors the paper's enterprise capture at
// laptop scale.
func DefaultEnterpriseConfig(seed int64) EnterpriseConfig {
	return datagen.DefaultEnterpriseConfig(seed)
}

// GenerateEnterprise produces the synthetic enterprise flow workload.
func GenerateEnterprise(cfg EnterpriseConfig) (*EnterpriseData, error) {
	return datagen.GenerateEnterprise(cfg)
}

// DefaultQueryLogConfig mirrors the paper's query-log dataset.
func DefaultQueryLogConfig(seed int64) QueryLogConfig {
	return datagen.DefaultQueryLogConfig(seed)
}

// GenerateQueryLog produces the synthetic query-log workload.
func GenerateQueryLog(cfg QueryLogConfig) (*QueryLogData, error) {
	return datagen.GenerateQueryLog(cfg)
}
