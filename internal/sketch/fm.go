package sketch

import (
	"fmt"
	"math"
	"math/bits"
)

// FM is a Flajolet-Martin distinct-count sketch with stochastic
// averaging (PCSA): m bitmaps, each recording the lowest set bit ranks
// of the hashed items routed to it. Estimate() returns
// m/φ · 2^(mean lowest-unset-rank), with φ ≈ 0.77351 the FM magic
// constant. Standard error is about 0.78/√m.
type FM struct {
	bitmaps []uint64
	seed    uint64
}

// fmPhi is the Flajolet-Martin correction factor.
const fmPhi = 0.77351

// NewFM builds a sketch with m bitmaps (m must be a power of two so
// items route by masking).
func NewFM(m int, seed uint64) (*FM, error) {
	if m <= 0 || m&(m-1) != 0 {
		return nil, fmt.Errorf("sketch: FM requires a power-of-two bitmap count, got %d", m)
	}
	return &FM{bitmaps: make([]uint64, m), seed: splitmix64(seed)}, nil
}

// Add records one item. Duplicate items do not change the estimate,
// which is what makes FM suitable for counting distinct in-neighbours.
func (f *FM) Add(item uint64) {
	h := splitmix64(item ^ f.seed)
	idx := h & uint64(len(f.bitmaps)-1)
	rest := h >> uint(bits.TrailingZeros(uint(len(f.bitmaps))))
	// rank of lowest set bit of rest; an all-zero remainder maps to the
	// top bit (probability 2^-58, negligible).
	r := bits.TrailingZeros64(rest | 1<<63)
	f.bitmaps[idx] |= 1 << uint(r)
}

// Estimate returns the approximate number of distinct items added.
func (f *FM) Estimate() float64 {
	sum := 0
	for _, bm := range f.bitmaps {
		sum += lowestUnset(bm)
	}
	m := float64(len(f.bitmaps))
	return m / fmPhi * math.Exp2(float64(sum)/m)
}

// Merge folds other into f; both sketches must share m and seed
// (enforced), after which f estimates the union.
func (f *FM) Merge(other *FM) error {
	if len(f.bitmaps) != len(other.bitmaps) || f.seed != other.seed {
		return fmt.Errorf("sketch: FM merge of incompatible sketches")
	}
	for i := range f.bitmaps {
		f.bitmaps[i] |= other.bitmaps[i]
	}
	return nil
}

// lowestUnset returns the rank of the lowest zero bit of bm.
func lowestUnset(bm uint64) int {
	return bits.TrailingZeros64(^bm)
}
