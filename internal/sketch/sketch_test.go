package sketch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCountMinValidation(t *testing.T) {
	if _, err := NewCountMin(0, 4); err == nil {
		t.Fatal("depth 0 accepted")
	}
	if _, err := NewCountMin(4, 0); err == nil {
		t.Fatal("width 0 accepted")
	}
	for _, c := range [][2]float64{{0, 0.1}, {1, 0.1}, {0.1, 0}, {0.1, 1}} {
		if _, err := NewCountMinForError(c[0], c[1]); err == nil {
			t.Fatalf("accuracy (%g,%g) accepted", c[0], c[1])
		}
	}
	cm, err := NewCountMinForError(0.01, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Width() < 250 || cm.Depth() < 4 {
		t.Fatalf("sizing wrong: %d×%d", cm.Depth(), cm.Width())
	}
}

// The Count-Min estimate never underestimates.
func TestCountMinNeverUnderestimates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cm, err := NewCountMin(4, 64)
		if err != nil {
			return false
		}
		truth := map[uint64]float64{}
		for i := 0; i < 500; i++ {
			key := uint64(rng.Intn(200))
			cm.Add(key, 1)
			truth[key]++
		}
		for key, want := range truth {
			if cm.Estimate(key) < want-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCountMinExactWhenSparse(t *testing.T) {
	cm, err := NewCountMin(4, 2048)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 20; k++ {
		cm.Add(k, float64(k+1))
	}
	for k := uint64(0); k < 20; k++ {
		if got := cm.Estimate(k); got != float64(k+1) {
			t.Fatalf("estimate(%d) = %g", k, got)
		}
	}
	if cm.Total() != 210 {
		t.Fatalf("total = %g", cm.Total())
	}
	if cm.Estimate(999) < 0 {
		t.Fatal("negative estimate")
	}
}

func TestCountMinErrorBound(t *testing.T) {
	// With width w, error ≤ e/w · N in expectation per row; the min
	// over 4 rows on a heavy-tailed stream should stay within a few
	// N/w.
	cm, err := NewCountMin(4, 256)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	truth := map[uint64]float64{}
	const n = 50000
	for i := 0; i < n; i++ {
		key := uint64(rng.Intn(5000))
		cm.Add(key, 1)
		truth[key]++
	}
	bound := 4.0 * n / 256
	for key, want := range truth {
		if over := cm.Estimate(key) - want; over > bound {
			t.Fatalf("key %d overestimated by %g (bound %g)", key, over, bound)
		}
	}
}

func TestFMValidation(t *testing.T) {
	for _, m := range []int{0, 3, 12, -8} {
		if _, err := NewFM(m, 1); err == nil {
			t.Fatalf("m=%d accepted", m)
		}
	}
}

func TestFMDuplicateInvariance(t *testing.T) {
	fm, err := NewFM(16, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 50; i++ {
		fm.Add(i)
	}
	before := fm.Estimate()
	for rep := 0; rep < 10; rep++ {
		for i := uint64(0); i < 50; i++ {
			fm.Add(i)
		}
	}
	if fm.Estimate() != before {
		t.Fatal("duplicates changed the estimate")
	}
}

func TestFMAccuracy(t *testing.T) {
	for _, n := range []int{100, 1000, 10000} {
		fm, err := NewFM(64, 42)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			fm.Add(uint64(i) * 2654435761)
		}
		est := fm.Estimate()
		if est < float64(n)/2 || est > float64(n)*2 {
			t.Fatalf("n=%d estimated as %.0f", n, est)
		}
	}
}

func TestFMMerge(t *testing.T) {
	a, _ := NewFM(16, 3)
	b, _ := NewFM(16, 3)
	for i := uint64(0); i < 200; i++ {
		if i%2 == 0 {
			a.Add(i)
		} else {
			b.Add(i)
		}
	}
	union, _ := NewFM(16, 3)
	for i := uint64(0); i < 200; i++ {
		union.Add(i)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Estimate()-union.Estimate()) > 1e-9 {
		t.Fatalf("merge estimate %g, union %g", a.Estimate(), union.Estimate())
	}
	c, _ := NewFM(32, 3)
	if err := a.Merge(c); err == nil {
		t.Fatal("incompatible merge accepted")
	}
	d, _ := NewFM(16, 4)
	if err := a.Merge(d); err == nil {
		t.Fatal("seed-mismatched merge accepted")
	}
}
