package sketch

import (
	"math"
	"testing"

	"graphsig/internal/core"
	"graphsig/internal/graph"
)

// streamGraph builds a small bipartite graph and returns it plus the
// edge observations as unit events.
func streamGraph(t *testing.T) (*graph.Universe, *graph.Window, [][2]graph.NodeID) {
	t.Helper()
	u := graph.NewUniverse()
	a := u.MustIntern("a", graph.Part1)
	b := u.MustIntern("b", graph.Part1)
	x := u.MustIntern("x", graph.Part2)
	y := u.MustIntern("y", graph.Part2)
	z := u.MustIntern("z", graph.Part2)
	weights := []struct {
		from, to graph.NodeID
		n        int
	}{
		{a, x, 6}, {a, y, 3}, {a, z, 1},
		{b, x, 2}, {b, z, 2},
	}
	gb := graph.NewBuilder(u, 0)
	var events [][2]graph.NodeID
	for _, e := range weights {
		if err := gb.Add(e.from, e.to, float64(e.n)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < e.n; i++ {
			events = append(events, [2]graph.NodeID{e.from, e.to})
		}
	}
	return u, gb.Build(), events
}

func TestStreamTTMatchesExactWithRoomySketch(t *testing.T) {
	u, w, events := streamGraph(t)
	st := NewStreamTT(StreamConfig{Width: 1024, Depth: 5, Candidates: 64, Seed: 1})
	for _, e := range events {
		if err := st.Observe(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	a, _ := u.Lookup("a")
	exact, err := core.ComputeOne(core.TopTalkers{}, w, a, 3)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := st.Signature(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(exact.Nodes) != len(approx.Nodes) {
		t.Fatalf("lengths differ: %d vs %d", len(exact.Nodes), len(approx.Nodes))
	}
	for i := range exact.Nodes {
		if exact.Nodes[i] != approx.Nodes[i] || math.Abs(exact.Weights[i]-approx.Weights[i]) > 1e-12 {
			t.Fatalf("entry %d: exact (%v,%g) approx (%v,%g)", i,
				exact.Nodes[i], exact.Weights[i], approx.Nodes[i], approx.Weights[i])
		}
	}
	if len(st.Sources()) != 2 {
		t.Fatalf("sources = %d", len(st.Sources()))
	}
}

func TestStreamUTMatchesExactWithRoomySketch(t *testing.T) {
	u, w, events := streamGraph(t)
	st := NewStreamUT(StreamConfig{Width: 1024, Depth: 5, Candidates: 64, FMBitmaps: 512, Seed: 1})
	for _, e := range events {
		if err := st.Observe(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	a, _ := u.Lookup("a")
	exact, err := core.ComputeOne(core.UnexpectedTalkers{}, w, a, 3)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := st.Signature(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	// With 512 FM bitmaps on ≤2 distinct sources the in-degree estimate
	// is at worst a small constant factor off; membership and order of
	// the top-3 must agree on this tiny graph.
	if len(exact.Nodes) != len(approx.Nodes) {
		t.Fatalf("lengths differ: %d vs %d", len(exact.Nodes), len(approx.Nodes))
	}
	for i := range exact.Nodes {
		if exact.Nodes[i] != approx.Nodes[i] {
			t.Fatalf("member order differs at %d: %v vs %v", i, exact.Nodes, approx.Nodes)
		}
	}
	if got := st.EstimateInDegree(graph.NodeID(99)); got != 0 {
		t.Fatalf("unseen destination in-degree = %g", got)
	}
}

func TestStreamObserveValidation(t *testing.T) {
	st := NewStreamTT(StreamConfig{Seed: 1})
	if err := st.Observe(1, 2, 0); err == nil {
		t.Fatal("zero weight accepted")
	}
	if err := st.Observe(1, 2, -1); err == nil {
		t.Fatal("negative weight accepted")
	}
	// Self-communication is ignored, not an error.
	if err := st.Observe(1, 1, 5); err != nil {
		t.Fatal(err)
	}
	if len(st.Sources()) != 0 {
		t.Fatal("self-communication created state")
	}
	if _, err := st.Signature(1, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	sig, err := st.Signature(42, 3)
	if err != nil || !sig.IsEmpty() {
		t.Fatal("unseen source should have an empty signature")
	}
}

func TestStreamCandidateEviction(t *testing.T) {
	st := NewStreamTT(StreamConfig{Width: 1024, Depth: 4, Candidates: 4, Seed: 2})
	// One heavy destination, then many light ones: the heavy one must
	// survive eviction.
	for i := 0; i < 50; i++ {
		if err := st.Observe(0, 100, 1); err != nil {
			t.Fatal(err)
		}
	}
	for d := graph.NodeID(1); d <= 30; d++ {
		if err := st.Observe(0, d, 1); err != nil {
			t.Fatal(err)
		}
	}
	sig, err := st.Signature(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sig.Len() == 0 || sig.Nodes[0] != 100 {
		t.Fatalf("heavy destination evicted: %v", sig)
	}
	// The candidate cap bounds per-source state.
	if got := len(st.sources[0].cand); got > 4 {
		t.Fatalf("candidate set size %d exceeds cap", got)
	}
}

func TestStreamUTValidation(t *testing.T) {
	st := NewStreamUT(StreamConfig{Seed: 3})
	if err := st.Observe(1, 2, -1); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := st.Signature(1, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	sig, err := st.Signature(7, 3)
	if err != nil || !sig.IsEmpty() {
		t.Fatal("unseen source should have empty signature")
	}
}
