package sketch

import (
	"fmt"

	"graphsig/internal/core"
	"graphsig/internal/graph"
)

// StreamConfig sizes the per-node state of the streaming signature
// extractors. Zero values take the defaults noted per field.
type StreamConfig struct {
	// Depth and Width size each source's Count-Min sketch
	// (defaults 4 × 256).
	Depth, Width int
	// Candidates caps each source's tracked heavy-neighbour set; it
	// must be at least the signature length k you will ask for
	// (default 64).
	Candidates int
	// FMBitmaps sizes the per-destination in-degree sketch used by the
	// UT extractor; power of two (default 16).
	FMBitmaps int
	// Seed drives the hash families.
	Seed uint64
	// Key maps a NodeID to the 64-bit key fed into the hash-based
	// summaries (CM, FM) and used to break weight ties during top-k
	// selection and candidate eviction. Nil keys on the raw NodeID —
	// deterministic within one process but not across processes, since
	// NodeIDs follow interning order. Extractors that must agree across
	// processes over different stream subsets (cluster shards vs a
	// single node) pass a label-derived key (graph.Universe.StableKey).
	Key func(graph.NodeID) uint64
}

func (c *StreamConfig) fill() {
	if c.Depth == 0 {
		c.Depth = 4
	}
	if c.Width == 0 {
		c.Width = 256
	}
	if c.Candidates == 0 {
		c.Candidates = 64
	}
	if c.FMBitmaps == 0 {
		c.FMBitmaps = 16
	}
	if c.Key == nil {
		c.Key = func(id graph.NodeID) uint64 { return uint64(id) }
	}
}

// sourceState is the constant-size per-source state: a CM sketch of
// outgoing weights, the running total, and the tracked heavy-candidate
// set (the "CM-sketch heap" of §VI).
type sourceState struct {
	cm    *CountMin
	total float64
	cand  map[graph.NodeID]float64 // candidate → current CM estimate
}

func newSourceState(cfg *StreamConfig) (*sourceState, error) {
	cm, err := NewCountMin(cfg.Depth, cfg.Width)
	if err != nil {
		return nil, err
	}
	return &sourceState{cm: cm, cand: make(map[graph.NodeID]float64, cfg.Candidates+1)}, nil
}

func (st *sourceState) observe(dst graph.NodeID, weight float64, cap int, key func(graph.NodeID) uint64) {
	st.cm.Add(key(dst), weight)
	st.total += weight
	st.cand[dst] = st.cm.Estimate(key(dst))
	if len(st.cand) > cap {
		// Evict the current lightest candidate (ties by larger key,
		// then larger ID, so eviction is deterministic — and, with a
		// label-derived key, identical across processes).
		var victim graph.NodeID
		victimKey := uint64(0)
		min := -1.0
		for u, w := range st.cand {
			uk := key(u)
			if min < 0 || w < min || (w == min && (uk > victimKey || (uk == victimKey && u > victim))) {
				victim, victimKey, min = u, uk, w
			}
		}
		delete(st.cand, victim)
	}
}

// StreamTT computes approximate Top Talkers signatures from a single
// pass over an edge stream (§VI "Scalable signature computation"): per
// source it keeps a CM sketch of outgoing weights plus a bounded heavy
// candidate set, from which the top-k normalized weights form the
// signature.
type StreamTT struct {
	cfg     StreamConfig
	sources map[graph.NodeID]*sourceState
}

// NewStreamTT builds an extractor.
func NewStreamTT(cfg StreamConfig) *StreamTT {
	cfg.fill()
	return &StreamTT{cfg: cfg, sources: map[graph.NodeID]*sourceState{}}
}

// Observe ingests one communication src → dst of the given weight.
// Self-communications are ignored, mirroring the graph builder.
func (s *StreamTT) Observe(src, dst graph.NodeID, weight float64) error {
	if weight <= 0 {
		return fmt.Errorf("sketch: stream observation weight must be positive, got %g", weight)
	}
	if src == dst {
		return nil
	}
	st, ok := s.sources[src]
	if !ok {
		var err error
		st, err = newSourceState(&s.cfg)
		if err != nil {
			return err
		}
		s.sources[src] = st
	}
	st.observe(dst, weight, s.cfg.Candidates, s.cfg.Key)
	return nil
}

// Sources returns the sources observed so far, unordered.
func (s *StreamTT) Sources() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(s.sources))
	for v := range s.sources {
		out = append(out, v)
	}
	return out
}

// Signature extracts the approximate TT signature of v: candidates
// weighted by CM-estimated count over the exact running total.
func (s *StreamTT) Signature(v graph.NodeID, k int) (core.Signature, error) {
	if k <= 0 {
		return core.Signature{}, fmt.Errorf("sketch: k must be positive, got %d", k)
	}
	st, ok := s.sources[v]
	if !ok || st.total == 0 {
		return core.Signature{}, nil
	}
	weights := make(map[graph.NodeID]float64, len(st.cand))
	for u := range st.cand {
		weights[u] = st.cm.Estimate(s.cfg.Key(u)) / st.total
	}
	return core.FromWeightsKeyed(weights, k, s.cfg.Key), nil
}

// StreamUT computes approximate Unexpected Talkers signatures from one
// pass: the TT machinery estimates C[i,j], and a per-destination FM
// sketch estimates the distinct in-neighbour count |I(j)|; their
// quotient approximates Definition 4's relevance (§VI).
type StreamUT struct {
	tt     *StreamTT
	indeg  map[graph.NodeID]*FM
	cfg    StreamConfig
	fmSeed uint64
}

// NewStreamUT builds an extractor.
func NewStreamUT(cfg StreamConfig) *StreamUT {
	cfg.fill()
	return &StreamUT{
		tt:     NewStreamTT(cfg),
		indeg:  map[graph.NodeID]*FM{},
		cfg:    cfg,
		fmSeed: splitmix64(cfg.Seed ^ 0xF00D),
	}
}

// Observe ingests one communication src → dst of the given weight.
func (s *StreamUT) Observe(src, dst graph.NodeID, weight float64) error {
	if err := s.tt.Observe(src, dst, weight); err != nil {
		return err
	}
	if src == dst {
		return nil
	}
	fm, ok := s.indeg[dst]
	if !ok {
		var err error
		fm, err = NewFM(s.cfg.FMBitmaps, s.fmSeed)
		if err != nil {
			return err
		}
		s.indeg[dst] = fm
	}
	fm.Add(s.cfg.Key(src))
	return nil
}

// Sources returns the sources observed so far, unordered.
func (s *StreamUT) Sources() []graph.NodeID { return s.tt.Sources() }

// EstimateInDegree reports the FM estimate of |I(j)|, at least 1 for
// any destination that has been observed.
func (s *StreamUT) EstimateInDegree(j graph.NodeID) float64 {
	fm, ok := s.indeg[j]
	if !ok {
		return 0
	}
	est := fm.Estimate()
	if est < 1 {
		est = 1
	}
	return est
}

// Signature extracts the approximate UT signature of v.
func (s *StreamUT) Signature(v graph.NodeID, k int) (core.Signature, error) {
	if k <= 0 {
		return core.Signature{}, fmt.Errorf("sketch: k must be positive, got %d", k)
	}
	st, ok := s.tt.sources[v]
	if !ok || st.total == 0 {
		return core.Signature{}, nil
	}
	weights := make(map[graph.NodeID]float64, len(st.cand))
	for u := range st.cand {
		indeg := s.EstimateInDegree(u)
		if indeg <= 0 {
			continue
		}
		weights[u] = st.cm.Estimate(s.cfg.Key(u)) / indeg
	}
	return core.FromWeightsKeyed(weights, k, s.cfg.Key), nil
}
