// Package sketch implements the paper's §VI scalability substrate: the
// Count-Min sketch [3] for approximating edge weights, the
// Flajolet-Martin probabilistic counter [7] for approximating node
// in-degrees, and semi-streaming signature extractors that combine them
// to compute approximate Top Talkers and Unexpected Talkers signatures
// from a single pass over an edge stream, keeping only per-node constant
// state (the semi-streaming model of graph stream processing [19]).
package sketch

import (
	"fmt"
	"math"
)

// CountMin is a Count-Min sketch over uint64 keys: a depth×width counter
// matrix with pairwise-independent row hashes. Point queries return an
// overestimate with error ≤ ε·N with probability ≥ 1−δ for
// width = ⌈e/ε⌉ and depth = ⌈ln 1/δ⌉.
type CountMin struct {
	depth  int
	width  int
	counts []float64 // depth*width, row-major
	seeds  []uint64
	total  float64
}

// NewCountMin builds a sketch with the given depth and width.
func NewCountMin(depth, width int) (*CountMin, error) {
	if depth <= 0 || width <= 0 {
		return nil, fmt.Errorf("sketch: CountMin requires positive depth and width, got %d×%d", depth, width)
	}
	cm := &CountMin{
		depth:  depth,
		width:  width,
		counts: make([]float64, depth*width),
		seeds:  make([]uint64, depth),
	}
	s := uint64(0x9E3779B97F4A7C15)
	for i := range cm.seeds {
		s = splitmix64(s)
		cm.seeds[i] = s
	}
	return cm, nil
}

// NewCountMinForError sizes the sketch from accuracy targets:
// estimates exceed truth by at most eps·(total count) with probability
// at least 1−delta.
func NewCountMinForError(eps, delta float64) (*CountMin, error) {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("sketch: CountMin accuracy targets must lie in (0,1), got eps=%g delta=%g", eps, delta)
	}
	width := int(math.Ceil(math.E / eps))
	depth := int(math.Ceil(math.Log(1 / delta)))
	return NewCountMin(depth, width)
}

// Add increases the count of key by delta (delta must be positive for
// the Count-Min guarantee to hold).
func (cm *CountMin) Add(key uint64, delta float64) {
	for d := 0; d < cm.depth; d++ {
		cm.counts[d*cm.width+cm.cell(d, key)] += delta
	}
	cm.total += delta
}

// Estimate returns the point-query estimate for key: the minimum over
// rows, never less than the true count.
func (cm *CountMin) Estimate(key uint64) float64 {
	est := math.Inf(1)
	for d := 0; d < cm.depth; d++ {
		if c := cm.counts[d*cm.width+cm.cell(d, key)]; c < est {
			est = c
		}
	}
	return est
}

// Total reports the total count added.
func (cm *CountMin) Total() float64 { return cm.total }

// Width and Depth report the sketch dimensions.
func (cm *CountMin) Width() int { return cm.width }

// Depth reports the number of hash rows.
func (cm *CountMin) Depth() int { return cm.depth }

func (cm *CountMin) cell(d int, key uint64) int {
	h := splitmix64(key ^ cm.seeds[d])
	return int(h % uint64(cm.width))
}

// splitmix64 is the SplitMix64 finalizer, a fast high-quality 64-bit
// mixer used as the hash family for both sketches.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
