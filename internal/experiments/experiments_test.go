package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"graphsig/internal/sketch"
)

// testEnv loads a small-scale environment once; the full-scale datasets
// are exercised by the benchmarks and cmd/sigbench.
var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		ds, err := LoadScaled(42, 0.25)
		if err != nil {
			envErr = err
			return
		}
		envVal = NewEnv(ds, 42)
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envVal
}

func TestLoadScaledValidation(t *testing.T) {
	for _, s := range []float64{0, -1, 1.5} {
		if _, err := LoadScaled(1, s); err == nil {
			t.Fatalf("scale %g accepted", s)
		}
	}
}

func inUnit(t *testing.T, name string, v float64) {
	t.Helper()
	if v < 0 || v > 1 {
		t.Fatalf("%s = %g outside [0,1]", name, v)
	}
}

func TestFigure1(t *testing.T) {
	e := testEnv(t)
	rows, err := Figure1(e)
	if err != nil {
		t.Fatal(err)
	}
	// 2 datasets × 5 schemes × 4 distances.
	if len(rows) != 40 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		inUnit(t, "persistence", r.Ellipse.Persistence.Mean)
		inUnit(t, "uniqueness", r.Ellipse.Uniqueness.Mean)
	}
	if out := FormatFigure1(rows); !strings.Contains(out, "network-flows") {
		t.Fatal("format missing dataset")
	}
}

func TestFigure2(t *testing.T) {
	e := testEnv(t)
	series, err := Figure2(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 5 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		inUnit(t, "AUC", s.AUC)
		if len(s.Curve.FPR) != rocGridPoints {
			t.Fatalf("curve points = %d", len(s.Curve.FPR))
		}
		// Curves are monotone non-decreasing.
		for i := 1; i < len(s.Curve.TPR); i++ {
			if s.Curve.TPR[i] < s.Curve.TPR[i-1]-1e-9 {
				t.Fatalf("%s: TPR decreases at %d", s.Scheme, i)
			}
		}
	}
	if out := FormatFigure2(series); !strings.Contains(out, "AUC") {
		t.Fatal("format wrong")
	}
}

func TestFigure3(t *testing.T) {
	e := testEnv(t)
	for _, fn := range []func(*Env) (*AUCMatrix, error){Figure3a, Figure3b} {
		m, err := fn(e)
		if err != nil {
			t.Fatal(err)
		}
		if len(m.Schemes) != 5 || len(m.Distances) != 4 {
			t.Fatalf("matrix %dx%d", len(m.Distances), len(m.Schemes))
		}
		for di := range m.Distances {
			for si := range m.Schemes {
				inUnit(t, "AUC", m.Values[di][si])
				// Better than coin-flip on every cell even at ¼ scale.
				if m.Values[di][si] < 0.5 {
					t.Fatalf("%s/%s AUC %g below chance",
						m.Distances[di], m.Schemes[si], m.Values[di][si])
				}
			}
		}
		if _, ok := m.Get("shel", "tt"); !ok {
			t.Fatal("Get failed")
		}
		if _, ok := m.Get("nope", "tt"); ok {
			t.Fatal("Get invented a cell")
		}
		if !strings.Contains(m.Format(), "shel") {
			t.Fatal("format wrong")
		}
	}
}

func TestFigure4(t *testing.T) {
	e := testEnv(t)
	rows, err := Figure4(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		inUnit(t, "AUC", r.AUC)
		inUnit(t, "robustness", r.MeanRobustness)
	}
	// Heavier perturbation cannot increase mean robustness.
	for _, scheme := range []string{"tt", "ut", "rwr3@0.1"} {
		var light, heavy float64
		for _, r := range rows {
			if r.Scheme == scheme && r.Alpha == 0.1 {
				light = r.MeanRobustness
			}
			if r.Scheme == scheme && r.Alpha == 0.4 {
				heavy = r.MeanRobustness
			}
		}
		if heavy > light {
			t.Fatalf("%s: robustness rose with perturbation (%g > %g)", scheme, heavy, light)
		}
	}
	if !strings.Contains(FormatFigure4(rows), "alpha") {
		t.Fatal("format wrong")
	}
}

func TestFigure5(t *testing.T) {
	e := testEnv(t)
	rows, err := Figure5(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		inUnit(t, "AUC", r.AUC)
		if r.AUC < 0.5 {
			t.Fatalf("%s/%s multiusage AUC %g below chance", r.Scheme, r.Distance, r.AUC)
		}
	}
	if !strings.Contains(FormatFigure5(rows), "tt") {
		t.Fatal("format wrong")
	}
}

func TestFigure6(t *testing.T) {
	e := testEnv(t)
	rows, err := Figure6(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Figure6Fractions)*3*len(Figure6Ells) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		inUnit(t, "accuracy", r.Accuracy)
	}
	if !strings.Contains(FormatFigure6(rows), "f=0.02") {
		t.Fatal("format wrong")
	}
}

func TestTables(t *testing.T) {
	for _, tb := range []*PropertyTable{TableI(), TableII(), TableIII()} {
		out := tb.Format()
		if len(tb.Rows) == 0 || len(tb.Cells) != len(tb.Rows) {
			t.Fatalf("table %q malformed", tb.Title)
		}
		if !strings.Contains(out, tb.Rows[0]) {
			t.Fatal("format missing rows")
		}
	}
	e := testEnv(t)
	t4, err := TableIVMeasured(e)
	if err != nil {
		t.Fatal(err)
	}
	levels := map[string]bool{}
	for _, row := range t4.Cells {
		if len(row) != 3 {
			t.Fatalf("row width %d", len(row))
		}
		for _, cell := range row {
			levels[strings.Fields(cell)[0]] = true
		}
	}
	for _, l := range []string{"high", "medium", "low"} {
		if !levels[l] {
			t.Fatalf("level %q never assigned", l)
		}
	}
}

func TestAblations(t *testing.T) {
	e := testEnv(t)
	streaming, err := StreamingAblation(e, sketch.StreamConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(streaming) != 2 {
		t.Fatalf("streaming rows = %d", len(streaming))
	}
	for _, r := range streaming {
		inUnit(t, "meanDist", r.MeanDist)
		inUnit(t, "recall", r.ExactTopkRecall)
		inUnit(t, "AUC", r.AUC)
	}
	lshRow, err := LSHAblation(e, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	inUnit(t, "recall@10", lshRow.Recall10)
	if lshRow.MeanCandidates <= 0 || lshRow.MeanCandidates > float64(lshRow.Population) {
		t.Fatalf("candidates = %g of %d", lshRow.MeanCandidates, lshRow.Population)
	}

	decay, err := DecayAblation(e, []float64{0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(decay) != 2 {
		t.Fatal("decay rows wrong")
	}
	// History decay smooths windows, so persistence must not fall.
	if decay[1].Persistence < decay[0].Persistence {
		t.Fatalf("decay lowered persistence: %g < %g", decay[1].Persistence, decay[0].Persistence)
	}

	direction, err := DirectionAblation(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(direction) != 2 || direction[0].Scheme == direction[1].Scheme {
		t.Fatal("direction rows wrong")
	}

	utScaling, err := UTScalingAblation(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(utScaling) != 2 {
		t.Fatal("ut scaling rows wrong")
	}

	ks, err := KSweepAblation(e, []int{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 2 {
		t.Fatal("k sweep rows wrong")
	}
	out := FormatAblations(streaming, lshRow, decay, direction, utScaling, ks)
	for _, want := range []string{"semi-streaming", "LSH", "decay", "directionality", "scaling", "length k"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation format missing %q", want)
		}
	}
}

func TestAnomalyDetection(t *testing.T) {
	e := testEnv(t)
	rows, err := AnomalyDetection(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(AnomalyFractions)*3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		inUnit(t, "precision", r.Precision)
		inUnit(t, "recall", r.Recall)
		inUnit(t, "F1", r.F1)
	}
	// The framework's prediction: persistence-bearing schemes (TT, RWR)
	// must beat UT at anomaly detection on every fraction.
	byKey := map[string]map[float64]float64{}
	for _, r := range rows {
		if byKey[r.Scheme] == nil {
			byKey[r.Scheme] = map[float64]float64{}
		}
		byKey[r.Scheme][r.F] = r.F1
	}
	for _, f := range AnomalyFractions {
		if byKey["ut"][f] > byKey["tt"][f] || byKey["ut"][f] > byKey["rwr3@0.1"][f] {
			t.Fatalf("UT outperformed persistent schemes at f=%g", f)
		}
	}
	if !strings.Contains(FormatAnomaly(rows), "X4") {
		t.Fatal("format wrong")
	}
}

func TestSchemeSignificance(t *testing.T) {
	e := testEnv(t)
	rows, err := SchemeSignificance(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Diff.Queries == 0 {
			t.Fatalf("%s vs %s: no queries", r.SchemeA, r.SchemeB)
		}
		if r.Diff.Lo > r.Diff.Hi {
			t.Fatalf("inverted interval: %s", r.Diff)
		}
		if r.Diff.Mean < r.Diff.Lo-0.05 || r.Diff.Mean > r.Diff.Hi+0.05 {
			t.Fatalf("mean far outside interval: %s", r.Diff)
		}
	}
	if !strings.Contains(FormatSignificance(rows), "bootstrap") {
		t.Fatal("format wrong")
	}
}

func TestBlendAblation(t *testing.T) {
	e := testEnv(t)
	rows, err := BlendAblation(e, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		inUnit(t, "selfAUC", r.SelfAUC)
		inUnit(t, "multiusageAUC", r.MultiusageAUC)
	}
	// α=1 is pure TT, α=0 pure UT: the endpoints must reproduce the
	// single-scheme ordering on flows (TT above UT for self-retrieval).
	if rows[1].SelfAUC <= rows[0].SelfAUC {
		t.Fatalf("pure TT (%.4f) not above pure UT (%.4f)", rows[1].SelfAUC, rows[0].SelfAUC)
	}
	if !strings.Contains(FormatBlend(rows), "alpha") {
		t.Fatal("format wrong")
	}
}

func TestDeAnonymization(t *testing.T) {
	e := testEnv(t)
	rows, err := DeAnonymization(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		inUnit(t, "top1", r.Top1)
		inUnit(t, "greedy", r.Greedy)
		// Signature-based matching must beat random assignment (1/|V|)
		// by a wide margin for the persistent schemes.
		if r.Scheme != "ut" && r.Top1 < 0.2 {
			t.Fatalf("%s top-1 accuracy %g implausibly low", r.Scheme, r.Top1)
		}
	}
	if !strings.Contains(FormatDeanon(rows), "X5") {
		t.Fatal("format wrong")
	}
}

func TestTelephoneRetrieval(t *testing.T) {
	rows, err := TelephoneRetrieval(9, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		inUnit(t, "AUC", r.AUC)
		if r.AUC < 0.8 {
			t.Fatalf("%s call-graph AUC %g implausibly low", r.Scheme, r.AUC)
		}
	}
	if !strings.Contains(FormatPhone(rows), "X6") {
		t.Fatal("format wrong")
	}
}

func TestPruneAblation(t *testing.T) {
	e := testEnv(t)
	rows, err := PruneAblation(e, []float64{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Stricter pruning keeps fewer edges.
	if rows[1].EdgeFrac > rows[0].EdgeFrac {
		t.Fatal("pruning kept more edges at a higher threshold")
	}
	if rows[0].EdgeFrac != 1 {
		t.Fatalf("minW=1 should keep all integer-weight edges, kept %g", rows[0].EdgeFrac)
	}
	for _, r := range rows {
		inUnit(t, "AUC", r.AUC)
	}
	if !strings.Contains(FormatPrune(rows), "prun") {
		t.Fatal("format wrong")
	}
}

func TestHopConvergence(t *testing.T) {
	e := testEnv(t)
	rows, diameter, err := HopConvergence(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(HopConvergenceHops) {
		t.Fatalf("rows = %d", len(rows))
	}
	if diameter <= 0 {
		t.Fatalf("diameter = %d", diameter)
	}
	for _, r := range rows {
		inUnit(t, "AUC", r.AUC)
		inUnit(t, "delta", r.DeltaPrev)
	}
	// Successive-h signature movement must shrink as the walk
	// converges: the last step is smaller than the first measured one.
	if rows[len(rows)-1].DeltaPrev > rows[1].DeltaPrev {
		t.Fatalf("hop deltas not shrinking: %+v", rows)
	}
	if !strings.Contains(FormatHopConvergence(rows, diameter), "diameter") {
		t.Fatal("format wrong")
	}
}

func TestPersistenceHorizon(t *testing.T) {
	e := testEnv(t)
	rows, err := PersistenceHorizon(e)
	if err != nil {
		t.Fatal(err)
	}
	maxGap := len(e.windows(FlowData)) - 1
	if len(rows) != 3*maxGap {
		t.Fatalf("rows = %d", len(rows))
	}
	byScheme := map[string][]HorizonRow{}
	for _, r := range rows {
		inUnit(t, "persistence", r.Persistence)
		inUnit(t, "AUC", r.AUC)
		if r.Pairs <= 0 {
			t.Fatalf("no pairs at gap %d", r.Gap)
		}
		byScheme[r.Scheme] = append(byScheme[r.Scheme], r)
	}
	// Persistence must not grow with the gap for the persistent
	// schemes (allowing small sampling noise).
	for _, scheme := range []string{"tt", "rwr3@0.1"} {
		rs := byScheme[scheme]
		if rs[len(rs)-1].Persistence > rs[0].Persistence+0.05 {
			t.Fatalf("%s persistence grows with gap: %+v", scheme, rs)
		}
	}
	if !strings.Contains(FormatHorizon(rows), "horizon") {
		t.Fatal("format wrong")
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in short mode")
	}
	e := testEnv(t)
	var buf bytes.Buffer
	if err := RunAll(&buf, e); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table I", "Table II", "Table III", "Table IV",
		"Figure 1", "Figure 2", "Figure 3(a)", "Figure 3(b)",
		"Figure 4", "Figure 5", "Figure 6",
		"Extension X1", "Extension X2", "Extension X3", "Extension X4",
		"Extension X5", "Extension X6",
		"blend", "bootstrap", "prun", "hop convergence", "horizon",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}
