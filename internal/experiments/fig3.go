package experiments

import (
	"fmt"
	"strings"

	"graphsig/internal/core"
	"graphsig/internal/eval"
)

// AUCMatrix is one panel of Figure 3: mean self-retrieval AUC per
// (distance, scheme) cell on one dataset.
type AUCMatrix struct {
	Dataset   DatasetName
	Schemes   []string
	Distances []string
	// Values[d][s] is the AUC of Distances[d] × Schemes[s].
	Values [][]float64
}

// Figure3a reproduces Figure 3(a): the AUC matrix on network flow data.
func Figure3a(e *Env) (*AUCMatrix, error) { return aucMatrix(e, FlowData) }

// Figure3b reproduces Figure 3(b): the AUC matrix on user query logs.
func Figure3b(e *Env) (*AUCMatrix, error) { return aucMatrix(e, QueryData) }

func aucMatrix(e *Env, ds DatasetName) (*AUCMatrix, error) {
	schemes := core.PaperSchemes()
	distances := core.AllDistances()
	m := &AUCMatrix{Dataset: ds}
	for _, s := range schemes {
		m.Schemes = append(m.Schemes, s.Name())
	}
	for _, d := range distances {
		m.Distances = append(m.Distances, d.Name())
	}
	m.Values = make([][]float64, len(distances))
	for di, d := range distances {
		m.Values[di] = make([]float64, len(schemes))
		for si, s := range schemes {
			at, err := e.Sigs(ds, s, 0)
			if err != nil {
				return nil, err
			}
			next, err := e.Sigs(ds, s, 1)
			if err != nil {
				return nil, err
			}
			auc, err := eval.SelfRetrievalAUC(d, at, next)
			if err != nil {
				return nil, fmt.Errorf("experiments: figure3 %s/%s/%s: %w", ds, d.Name(), s.Name(), err)
			}
			m.Values[di][si] = auc
		}
	}
	return m, nil
}

// Get returns the AUC for a (distance, scheme) pair by name.
func (m *AUCMatrix) Get(distance, scheme string) (float64, bool) {
	di, si := -1, -1
	for i, d := range m.Distances {
		if d == distance {
			di = i
		}
	}
	for i, s := range m.Schemes {
		if s == scheme {
			si = i
		}
	}
	if di < 0 || si < 0 {
		return 0, false
	}
	return m.Values[di][si], true
}

// Format renders the matrix like the paper's Figure 3 tables.
func (m *AUCMatrix) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "AUC matrix, %s\n", m.Dataset)
	fmt.Fprintf(&b, "%-10s", "dist\\scheme")
	for _, s := range m.Schemes {
		fmt.Fprintf(&b, " %9s", s)
	}
	b.WriteByte('\n')
	for di, d := range m.Distances {
		fmt.Fprintf(&b, "%-10s", d)
		for si := range m.Schemes {
			fmt.Fprintf(&b, " %9.4f", m.Values[di][si])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
