package experiments

import (
	"fmt"
	"sort"
	"strings"

	"graphsig/internal/core"
	"graphsig/internal/eval"
	"graphsig/internal/perturb"
)

// PropertyTable is a rows×columns grid of qualitative levels, the form
// of the paper's Tables I–IV.
type PropertyTable struct {
	Title   string
	RowName string
	Rows    []string
	Columns []string
	Cells   [][]string
}

// Format renders the table.
func (t *PropertyTable) Format() string {
	var b strings.Builder
	b.WriteString(t.Title + "\n")
	fmt.Fprintf(&b, "%-22s", t.RowName)
	for _, c := range t.Columns {
		fmt.Fprintf(&b, " %-24s", c)
	}
	b.WriteByte('\n')
	for i, r := range t.Rows {
		fmt.Fprintf(&b, "%-22s", r)
		for j := range t.Columns {
			fmt.Fprintf(&b, " %-24s", t.Cells[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TableI reproduces Table I: the property levels each application
// requires (a statement of the framework, §II-D).
func TableI() *PropertyTable {
	return &PropertyTable{
		Title:   "Table I: applications and their requirements",
		RowName: "application",
		Rows:    []string{"Multiusage Detection", "Label Masquerading", "Anomaly Detection"},
		Columns: []string{"persistence", "uniqueness", "robustness"},
		Cells: [][]string{
			{"Low", "High", "High"},
			{"High", "High", "Medium"},
			{"High", "Low", "High"},
		},
	}
}

// TableII reproduces Table II: which graph characteristics support
// which signature properties (§III).
func TableII() *PropertyTable {
	return &PropertyTable{
		Title:   "Table II: communication graph characteristics and properties",
		RowName: "characteristic",
		Rows:    []string{"Engagement", "Novelty", "Locality", "Transitivity"},
		Columns: []string{"properties"},
		Cells: [][]string{
			{"persistence, robustness"},
			{"uniqueness"},
			{"uniqueness"},
			{"persistence, robustness"},
		},
	}
}

// TableIII reproduces Table III: the characteristics each scheme
// exploits and the properties it thereby captures (§III).
func TableIII() *PropertyTable {
	return &PropertyTable{
		Title:   "Table III: properties used by signature schemes",
		RowName: "scheme",
		Rows:    []string{"TT", "UT", "RWR", "RWR^h"},
		Columns: []string{"characteristics", "properties"},
		Cells: [][]string{
			{"locality, engagement", "uniqueness, robustness"},
			{"novelty, locality", "uniqueness"},
			{"transitivity, engagement", "persistence, robustness"},
			{"locality, transitivity", "persistence, uniqueness, robustness"},
		},
	}
}

// TableIVMeasured derives Table IV — the relative behaviour of TT, UT
// and RWR on persistence, uniqueness and robustness — from
// measurements on the flow data, ranking the three schemes per
// property into high/medium/low (the paper reports exactly this
// three-way ordering). Distance: Dist_SHel.
func TableIVMeasured(e *Env) (*PropertyTable, error) {
	d := core.ScaledHellinger{}
	schemes := core.ApplicationSchemes()
	names := []string{"TT", "UT", "RWR"}

	pers := make([]float64, len(schemes))
	uniq := make([]float64, len(schemes))
	robu := make([]float64, len(schemes))

	w0 := e.windows(FlowData)[0]
	perturbed, err := perturb.Perturb(w0, perturb.Options{InsertFrac: 0.1, DeleteFrac: 0.1, Seed: e.Seed + 41})
	if err != nil {
		return nil, fmt.Errorf("experiments: tableIV perturb: %w", err)
	}
	for i, s := range schemes {
		at, err := e.Sigs(FlowData, s, 0)
		if err != nil {
			return nil, err
		}
		next, err := e.Sigs(FlowData, s, 1)
		if err != nil {
			return nil, err
		}
		hat, err := e.SigsOn(FlowData, s, perturbed)
		if err != nil {
			return nil, err
		}
		pers[i] = eval.PersistenceSummary(d, at, next).Mean
		uniq[i] = eval.UniquenessSummary(d, at, maxUniquenessPairs, e.Seed).Mean
		robu[i] = eval.RobustnessSummary(d, at, hat).Mean
	}

	table := &PropertyTable{
		Title:   "Table IV: relative behaviour of the signature schemes (measured)",
		RowName: "property",
		Rows:    []string{"persistence", "uniqueness", "robustness"},
		Columns: names,
		Cells:   make([][]string, 3),
	}
	for r, vals := range [][]float64{pers, uniq, robu} {
		table.Cells[r] = rankLevels(vals)
	}
	return table, nil
}

// rankLevels maps three values to high/medium/low by rank, annotated
// with the measured value.
func rankLevels(vals []float64) []string {
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })
	levels := []string{"high", "medium", "low"}
	out := make([]string, len(vals))
	for rank, i := range idx {
		lvl := "low"
		if rank < len(levels) {
			lvl = levels[rank]
		}
		out[i] = fmt.Sprintf("%s (%.4f)", lvl, vals[i])
	}
	return out
}
