package experiments

import (
	"fmt"
	"strings"

	"graphsig/internal/core"
	"graphsig/internal/eval"
)

// HorizonRow is one point of the persistence-horizon experiment: mean
// self-persistence and self-retrieval AUC between windows t and t+Δ,
// averaged over all available window pairs at that gap. §II-D argues
// that "signatures that exhibit higher persistence over a longer term
// will be more effective at detecting anomalies"; this experiment
// measures how each scheme's persistence decays with the gap.
type HorizonRow struct {
	Scheme string
	// Gap is Δ, the number of windows between the compared signatures.
	Gap int
	// Persistence is the mean of 1 − Dist over nodes and window pairs.
	Persistence float64
	// AUC is the mean self-retrieval AUC over window pairs.
	AUC float64
	// Pairs is how many window pairs contributed.
	Pairs int
}

// PersistenceHorizon sweeps the window gap on the flow data for the
// three application schemes.
func PersistenceHorizon(e *Env) ([]HorizonRow, error) {
	d := core.ScaledHellinger{}
	windows := e.windows(FlowData)
	maxGap := len(windows) - 1
	if maxGap < 1 {
		return nil, fmt.Errorf("experiments: horizon needs at least 2 windows")
	}
	var rows []HorizonRow
	for _, s := range core.ApplicationSchemes() {
		for gap := 1; gap <= maxGap; gap++ {
			var pSum, aucSum float64
			pairs := 0
			for t := 0; t+gap < len(windows); t++ {
				at, err := e.Sigs(FlowData, s, t)
				if err != nil {
					return nil, err
				}
				next, err := e.Sigs(FlowData, s, t+gap)
				if err != nil {
					return nil, err
				}
				pSum += eval.PersistenceSummary(d, at, next).Mean
				auc, err := eval.SelfRetrievalAUC(d, at, next)
				if err != nil {
					return nil, fmt.Errorf("experiments: horizon %s gap %d: %w", s.Name(), gap, err)
				}
				aucSum += auc
				pairs++
			}
			rows = append(rows, HorizonRow{
				Scheme:      s.Name(),
				Gap:         gap,
				Persistence: pSum / float64(pairs),
				AUC:         aucSum / float64(pairs),
				Pairs:       pairs,
			})
		}
	}
	return rows, nil
}

// FormatHorizon renders the sweep as one line per scheme.
func FormatHorizon(rows []HorizonRow) string {
	var b strings.Builder
	b.WriteString("Ablation: persistence horizon (flows, Dist_SHel; mean over window pairs)\n")
	maxGap := 0
	for _, r := range rows {
		if r.Gap > maxGap {
			maxGap = r.Gap
		}
	}
	fmt.Fprintf(&b, "%-10s %6s", "scheme", "metric")
	for gap := 1; gap <= maxGap; gap++ {
		fmt.Fprintf(&b, "   Δ=%-5d", gap)
	}
	b.WriteByte('\n')
	for _, scheme := range []string{"tt", "ut", "rwr3@0.1"} {
		for _, metric := range []string{"pers", "AUC"} {
			fmt.Fprintf(&b, "%-10s %6s", scheme, metric)
			for gap := 1; gap <= maxGap; gap++ {
				for _, r := range rows {
					if r.Scheme == scheme && r.Gap == gap {
						v := r.Persistence
						if metric == "AUC" {
							v = r.AUC
						}
						fmt.Fprintf(&b, "   %7.4f", v)
					}
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
