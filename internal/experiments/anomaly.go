package experiments

import (
	"fmt"
	"strings"

	"graphsig/internal/apps"
	"graphsig/internal/core"
	"graphsig/internal/graph"
	"graphsig/internal/perturb"
)

// AnomalyRow is one result of the X4 extension experiment: the paper
// defines the anomaly-detection application (§II-D) and predicts RWR
// will perform well at it (§III, Table III) but reports no figure; this
// experiment evaluates the prediction. Behaviour changes are injected
// by relabelling a fraction of hosts (each affected label's traffic
// changes abruptly), and the §II-D detector — flag unusually small
// self-persistence — is scored against the injected set.
type AnomalyRow struct {
	Scheme string
	// F is the fraction of hosts whose behaviour was swapped.
	F float64
	// ZCut is the detector's z-score threshold.
	ZCut float64
	// Precision, Recall and F1 score detection of the injected labels.
	Precision float64
	Recall    float64
	F1        float64
}

// AnomalyFractions is the injected-change sweep.
var AnomalyFractions = []float64{0.05, 0.10, 0.20}

// anomalyZCut is the detector operating point.
const anomalyZCut = 1.5

// AnomalyDetection runs the X4 experiment on the flow data for the
// three application schemes.
func AnomalyDetection(e *Env) ([]AnomalyRow, error) {
	d := core.ScaledHellinger{}
	w0 := e.windows(FlowData)[0]
	w1 := e.windows(FlowData)[1]
	candidates := core.DefaultSources(w0)

	var rows []AnomalyRow
	for _, f := range AnomalyFractions {
		// A masquerade relabelling is, from each affected label's point
		// of view, exactly an abrupt behaviour change: the individual
		// behind the label swapped.
		injWin, truth, err := perturb.SimulateMasquerade(w1, candidates, f, e.Seed+int64(f*100000))
		if err != nil {
			return nil, fmt.Errorf("experiments: anomaly f=%g: %w", f, err)
		}
		injected := map[graph.NodeID]bool{}
		for v, u := range truth.Mapping {
			injected[v] = true
			injected[u] = true
		}
		for _, s := range core.ApplicationSchemes() {
			at, err := e.Sigs(FlowData, s, 0)
			if err != nil {
				return nil, err
			}
			next, err := e.SigsOn(FlowData, s, injWin)
			if err != nil {
				return nil, err
			}
			anomalies, _, err := apps.DetectAnomalies(d, at, next, anomalyZCut)
			if err != nil {
				return nil, fmt.Errorf("experiments: anomaly %s: %w", s.Name(), err)
			}
			tp := 0
			for _, a := range anomalies {
				if injected[a.Node] {
					tp++
				}
			}
			row := AnomalyRow{Scheme: s.Name(), F: f, ZCut: anomalyZCut}
			if len(anomalies) > 0 {
				row.Precision = float64(tp) / float64(len(anomalies))
			}
			if len(injected) > 0 {
				row.Recall = float64(tp) / float64(len(injected))
			}
			if row.Precision+row.Recall > 0 {
				row.F1 = 2 * row.Precision * row.Recall / (row.Precision + row.Recall)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatAnomaly renders the X4 rows.
func FormatAnomaly(rows []AnomalyRow) string {
	var b strings.Builder
	b.WriteString("Extension X4: anomaly detection (injected behaviour swaps, z-cut 1.5, Dist_SHel)\n")
	fmt.Fprintf(&b, "%-10s %6s %10s %8s %8s\n", "scheme", "f", "precision", "recall", "F1")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %6.2f %10.4f %8.4f %8.4f\n", r.Scheme, r.F, r.Precision, r.Recall, r.F1)
	}
	return b.String()
}
