package experiments

import (
	"fmt"
	"strings"

	"graphsig/internal/core"
	"graphsig/internal/eval"
	"graphsig/internal/graph"
)

// HopRow is one point of the hop-convergence experiment. The paper
// reports (without a figure) that "experiments with RWRʰ for h > 7 all
// converged to RWR⁷, suggesting that having more than 5 hops does not
// bring in drastically new information", attributing it to the graph's
// small diameter; this experiment regenerates that observation.
type HopRow struct {
	H   int
	AUC float64
	// DeltaPrev is the mean Dist_SHel between each node's RWRʰ and
	// RWRʰ⁻² signatures on window 0 (0 once the walk has converged;
	// h−2 because odd and even hops alternate sides on a bipartite
	// graph).
	DeltaPrev float64
}

// HopConvergenceHops is the h sweep.
var HopConvergenceHops = []int{1, 3, 5, 7, 9, 11}

// HopConvergence measures RWRʰ retrieval quality and successive-h
// signature movement on the flow data, alongside the estimated graph
// diameter that explains the convergence.
func HopConvergence(e *Env) ([]HopRow, int, error) {
	d := core.ScaledHellinger{}
	w0 := e.windows(FlowData)[0]
	diameter := graph.EstimateDiameter(w0, 24, e.Seed)

	var rows []HopRow
	var prev *core.SignatureSet
	for _, h := range HopConvergenceHops {
		s := core.RandomWalk{C: 0.1, Hops: h}
		at, err := e.Sigs(FlowData, s, 0)
		if err != nil {
			return nil, 0, err
		}
		next, err := e.Sigs(FlowData, s, 1)
		if err != nil {
			return nil, 0, err
		}
		auc, err := eval.SelfRetrievalAUC(d, at, next)
		if err != nil {
			return nil, 0, fmt.Errorf("experiments: hop %d: %w", h, err)
		}
		row := HopRow{H: h, AUC: auc}
		if prev != nil {
			sum, n := 0.0, 0
			for i, v := range at.Sources {
				if p, ok := prev.Get(v); ok {
					sum += d.Dist(at.Sigs[i], p)
					n++
				}
			}
			if n > 0 {
				row.DeltaPrev = sum / float64(n)
			}
		}
		rows = append(rows, row)
		prev = at
	}
	return rows, diameter, nil
}

// FormatHopConvergence renders the sweep.
func FormatHopConvergence(rows []HopRow, diameter int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: RWRʰ hop convergence (estimated graph diameter %d)\n", diameter)
	fmt.Fprintf(&b, "%4s %8s %14s\n", "h", "AUC", "Δ vs prev h")
	for _, r := range rows {
		fmt.Fprintf(&b, "%4d %8.4f %14.4f\n", r.H, r.AUC, r.DeltaPrev)
	}
	return b.String()
}
