package experiments

import (
	"fmt"
	"strings"

	"graphsig/internal/core"
	"graphsig/internal/eval"
)

// SignificanceRow is one paired-bootstrap comparison of two schemes on
// the cross-window self-retrieval task (Figure 3's statistic): does the
// winner's margin survive resampling of the query population?
type SignificanceRow struct {
	Dataset  DatasetName
	SchemeA  string
	SchemeB  string
	Distance string
	Diff     eval.AUCDiff
}

// significanceIters is the bootstrap resample count.
const significanceIters = 2000

// SchemeSignificance runs paired bootstraps for the headline Figure 3
// comparisons: RWR³ vs TT and TT vs UT on flows; UT vs TT on query
// logs. Queries are paired by source node.
func SchemeSignificance(e *Env) ([]SignificanceRow, error) {
	d := core.ScaledHellinger{}
	comparisons := []struct {
		ds   DatasetName
		a, b core.Scheme
	}{
		{FlowData, core.RandomWalk{C: 0.1, Hops: 3}, core.TopTalkers{}},
		{FlowData, core.TopTalkers{}, core.UnexpectedTalkers{}},
		{QueryData, core.UnexpectedTalkers{}, core.TopTalkers{}},
	}
	var rows []SignificanceRow
	for ci, cmp := range comparisons {
		qa, err := selfQueries(e, cmp.ds, cmp.a, d)
		if err != nil {
			return nil, err
		}
		qb, err := selfQueries(e, cmp.ds, cmp.b, d)
		if err != nil {
			return nil, err
		}
		if len(qa) != len(qb) {
			return nil, fmt.Errorf("experiments: significance: query sets unpaired (%d/%d)", len(qa), len(qb))
		}
		diff, err := eval.BootstrapAUCDiff(qa, qb, significanceIters, 0.95, e.Seed+int64(ci))
		if err != nil {
			return nil, fmt.Errorf("experiments: significance %s vs %s: %w", cmp.a.Name(), cmp.b.Name(), err)
		}
		rows = append(rows, SignificanceRow{
			Dataset:  cmp.ds,
			SchemeA:  cmp.a.Name(),
			SchemeB:  cmp.b.Name(),
			Distance: d.Name(),
			Diff:     diff,
		})
	}
	return rows, nil
}

// selfQueries builds the self-retrieval queries for one scheme, ordered
// by source node so different schemes' query lists pair up.
func selfQueries(e *Env, ds DatasetName, s core.Scheme, d core.Distance) ([]eval.Query, error) {
	at, err := e.Sigs(ds, s, 0)
	if err != nil {
		return nil, err
	}
	next, err := e.Sigs(ds, s, 1)
	if err != nil {
		return nil, err
	}
	return eval.SelfRetrievalQueries(d, at, next), nil
}

// FormatSignificance renders the comparisons.
func FormatSignificance(rows []SignificanceRow) string {
	var b strings.Builder
	b.WriteString("Scheme-difference significance (paired bootstrap over self-retrieval queries)\n")
	for _, r := range rows {
		verdict := "not significant"
		if r.Diff.Significant() {
			verdict = "significant"
		}
		fmt.Fprintf(&b, "%-14s %-10s vs %-10s %s  (%s, n=%d, %s)\n",
			r.Dataset, r.SchemeA, r.SchemeB, r.Diff, r.Distance, r.Diff.Queries, verdict)
	}
	return b.String()
}

// BlendRow is one point of the blend ablation: interpolating between
// TT and UT trades the properties the two schemes maximize, probing the
// paper's closing observation that no single scheme fits every
// application.
type BlendRow struct {
	Alpha float64
	// SelfAUC is cross-window self-retrieval on flows.
	SelfAUC float64
	// MultiusageAUC is the Figure 5 statistic.
	MultiusageAUC float64
}

// BlendAblation sweeps the TT/UT mix.
func BlendAblation(e *Env, alphas []float64) ([]BlendRow, error) {
	d := core.ScaledHellinger{}
	groups, err := multiusageGroups(e)
	if err != nil {
		return nil, err
	}
	var rows []BlendRow
	for _, alpha := range alphas {
		s := core.Blend{A: core.TopTalkers{}, B: core.UnexpectedTalkers{}, Alpha: alpha}
		at, err := e.Sigs(FlowData, s, 0)
		if err != nil {
			return nil, err
		}
		next, err := e.Sigs(FlowData, s, 1)
		if err != nil {
			return nil, err
		}
		selfAUC, err := eval.SelfRetrievalAUC(d, at, next)
		if err != nil {
			return nil, err
		}
		row := BlendRow{Alpha: alpha, SelfAUC: selfAUC}
		if len(groups) > 0 {
			queries := eval.SetRetrievalQueries(d, at, groups)
			if len(queries) > 0 {
				mu, err := eval.MeanAUC(queries)
				if err != nil {
					return nil, err
				}
				row.MultiusageAUC = mu
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatBlend renders the sweep.
func FormatBlend(rows []BlendRow) string {
	var b strings.Builder
	b.WriteString("Ablation: TT/UT blend (alpha = TT share)\n")
	fmt.Fprintf(&b, "%8s %10s %14s\n", "alpha", "self-AUC", "multiusage-AUC")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8.2f %10.4f %14.4f\n", r.Alpha, r.SelfAUC, r.MultiusageAUC)
	}
	return b.String()
}
