package experiments

import (
	"fmt"
	"strings"

	"graphsig/internal/apps"
	"graphsig/internal/core"
	"graphsig/internal/perturb"
)

// Fig6Row is one point of Figure 6: the accuracy of Algorithm 1 at
// recovering a simulated masquerade affecting fraction f of the
// monitored hosts, for a given scheme and top-ℓ setting.
type Fig6Row struct {
	Scheme string
	// F is the fraction of nodes masqueraded.
	F float64
	// Ell is Algorithm 1's top-ℓ candidate depth.
	Ell int
	// C is the δ scale (δ = mean self-persistence / C).
	C        int
	Accuracy float64
}

// Figure6Fractions is the f sweep (the paper focuses on low f, where
// masquerading is realistically rare).
var Figure6Fractions = []float64{0.02, 0.05, 0.10, 0.20, 0.30, 0.40}

// Figure6Ells are the reported ℓ values.
var Figure6Ells = []int{1, 3, 5}

// figure6DeltaScale is the reported c (the paper observes c ∈ {3,5,7}
// behave very similarly and plots c = 5).
const figure6DeltaScale = 5

// Figure6 reproduces Figure 6: label-masquerading detection accuracy on
// network data. For each fraction f, window 1 is re-labelled by a
// random bijection over f·|V1| hosts; Algorithm 1 then classifies every
// monitored host using signatures from the clean window 0 and the
// masqueraded window 1, with δ set per scheme from the clean pair's
// mean self-persistence. Distance: Dist_SHel.
func Figure6(e *Env) ([]Fig6Row, error) {
	d := core.ScaledHellinger{}
	w0 := e.windows(FlowData)[0]
	w1 := e.windows(FlowData)[1]
	candidates := core.DefaultSources(w0)

	var rows []Fig6Row
	for _, f := range Figure6Fractions {
		masqWin, truth, err := perturb.SimulateMasquerade(w1, candidates, f, e.Seed+int64(f*10000))
		if err != nil {
			return nil, fmt.Errorf("experiments: figure6 f=%g: %w", f, err)
		}
		for _, s := range core.ApplicationSchemes() {
			at, err := e.Sigs(FlowData, s, 0)
			if err != nil {
				return nil, err
			}
			next, err := e.SigsOn(FlowData, s, masqWin)
			if err != nil {
				return nil, err
			}
			// δ comes from the clean window pair: the operator tunes it
			// on normal traffic, before any masquerade.
			cleanNext, err := e.Sigs(FlowData, s, 1)
			if err != nil {
				return nil, err
			}
			delta, err := apps.DeltaFromSelfPersistence(d, at, cleanNext, figure6DeltaScale)
			if err != nil {
				return nil, fmt.Errorf("experiments: figure6 %s: %w", s.Name(), err)
			}
			for _, ell := range Figure6Ells {
				res, err := apps.DetectLabelMasquerading(d, at, next, delta, ell)
				if err != nil {
					return nil, fmt.Errorf("experiments: figure6 %s ℓ=%d: %w", s.Name(), ell, err)
				}
				acc, err := apps.MasqueradeAccuracy(res, truth.Mapping, candidates)
				if err != nil {
					return nil, fmt.Errorf("experiments: figure6 %s ℓ=%d: %w", s.Name(), ell, err)
				}
				rows = append(rows, Fig6Row{
					Scheme: s.Name(), F: f, Ell: ell,
					C: figure6DeltaScale, Accuracy: acc,
				})
			}
		}
	}
	return rows, nil
}

// FormatFigure6 renders accuracy as a (scheme, ℓ) × f grid.
func FormatFigure6(rows []Fig6Row) string {
	var b strings.Builder
	b.WriteString("Figure 6: label masquerading detection accuracy (c=5, Dist_SHel)\n")
	fmt.Fprintf(&b, "%-10s %4s", "scheme", "ell")
	for _, f := range Figure6Fractions {
		fmt.Fprintf(&b, "  f=%-5.2f", f)
	}
	b.WriteByte('\n')
	for _, s := range []string{"tt", "ut", "rwr3@0.1"} {
		for _, ell := range Figure6Ells {
			fmt.Fprintf(&b, "%-10s %4d", s, ell)
			for _, f := range Figure6Fractions {
				for _, r := range rows {
					if r.Scheme == s && r.Ell == ell && r.F == f {
						fmt.Fprintf(&b, "  %7.4f", r.Accuracy)
					}
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
