package experiments

import (
	"fmt"
	"strings"

	"graphsig/internal/core"
	"graphsig/internal/eval"
)

// Fig1Row is one ellipse of Figure 1: the persistence/uniqueness span
// of a (dataset, scheme, distance) combination on one window pair.
type Fig1Row struct {
	Dataset  DatasetName
	Scheme   string
	Distance string
	Ellipse  eval.Ellipse
}

// maxUniquenessPairs caps the pairwise-uniqueness work per combination;
// ~200k sampled pairs estimate μ_u and s_u to three decimals.
const maxUniquenessPairs = 200_000

// Figure1 reproduces Figure 1: for both datasets, all four distance
// functions and the five paper schemes, the mean±stddev of per-node
// persistence between windows 0→1 and of pairwise uniqueness within
// window 0.
func Figure1(e *Env) ([]Fig1Row, error) {
	var rows []Fig1Row
	for _, ds := range []DatasetName{FlowData, QueryData} {
		for _, s := range core.PaperSchemes() {
			at, err := e.Sigs(ds, s, 0)
			if err != nil {
				return nil, err
			}
			next, err := e.Sigs(ds, s, 1)
			if err != nil {
				return nil, err
			}
			for _, d := range core.AllDistances() {
				rows = append(rows, Fig1Row{
					Dataset:  ds,
					Scheme:   s.Name(),
					Distance: d.Name(),
					Ellipse:  eval.EllipseFor(d, at, next, maxUniquenessPairs, e.Seed),
				})
			}
		}
	}
	return rows, nil
}

// FormatFigure1 renders the rows as the text analogue of the figure.
func FormatFigure1(rows []Fig1Row) string {
	var b strings.Builder
	b.WriteString("Figure 1: signature persistence and uniqueness (mean±std)\n")
	fmt.Fprintf(&b, "%-14s %-10s %-8s %18s %18s\n", "dataset", "scheme", "dist", "persistence", "uniqueness")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-10s %-8s %9.4f±%-8.4f %9.4f±%-8.4f\n",
			r.Dataset, r.Scheme, r.Distance,
			r.Ellipse.Persistence.Mean, r.Ellipse.Persistence.StdDev,
			r.Ellipse.Uniqueness.Mean, r.Ellipse.Uniqueness.StdDev)
	}
	return b.String()
}
