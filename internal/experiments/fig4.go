package experiments

import (
	"fmt"
	"strings"

	"graphsig/internal/core"
	"graphsig/internal/eval"
	"graphsig/internal/perturb"
)

// Fig4Row is one cell of Figure 4: the robustness AUC of a scheme under
// one perturbation setting — each clean-graph signature queried against
// the signature population of the perturbed graph.
type Fig4Row struct {
	Scheme   string
	Distance string
	// Alpha and Beta are the §IV-C insertion/deletion fractions.
	Alpha, Beta float64
	AUC         float64
	// MeanRobustness is the direct §II-C robustness statistic
	// mean(1 − Dist(σ, σ̂)), complementing the retrieval AUC.
	MeanRobustness float64
}

// Figure4Settings are the two perturbation strengths the paper reports.
var Figure4Settings = [][2]float64{{0.1, 0.1}, {0.4, 0.4}}

// Figure4 reproduces Figure 4: robustness on network data. For each
// scheme and each perturbation setting α=β, the window-0 graph is
// perturbed per §IV-C, signatures recomputed, and every clean signature
// queried against the perturbed population (positive: its own label),
// reporting mean AUC with Dist_SHel.
func Figure4(e *Env) ([]Fig4Row, error) {
	d := core.ScaledHellinger{}
	w := e.windows(FlowData)[0]
	var rows []Fig4Row
	for _, setting := range Figure4Settings {
		alpha, beta := setting[0], setting[1]
		perturbed, err := perturb.Perturb(w, perturb.Options{
			InsertFrac: alpha,
			DeleteFrac: beta,
			Seed:       e.Seed + int64(alpha*1000),
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: figure4 perturb α=%g: %w", alpha, err)
		}
		for _, s := range core.PaperSchemes() {
			clean, err := e.Sigs(FlowData, s, 0)
			if err != nil {
				return nil, err
			}
			hat, err := e.SigsOn(FlowData, s, perturbed)
			if err != nil {
				return nil, err
			}
			queries := eval.SelfRetrievalQueries(d, clean, hat)
			auc, err := eval.MeanAUC(queries)
			if err != nil {
				return nil, fmt.Errorf("experiments: figure4 %s: %w", s.Name(), err)
			}
			rows = append(rows, Fig4Row{
				Scheme:         s.Name(),
				Distance:       d.Name(),
				Alpha:          alpha,
				Beta:           beta,
				AUC:            auc,
				MeanRobustness: eval.RobustnessSummary(d, clean, hat).Mean,
			})
		}
	}
	return rows, nil
}

// FormatFigure4 renders the rows.
func FormatFigure4(rows []Fig4Row) string {
	var b strings.Builder
	b.WriteString("Figure 4: robustness on network data (Dist_SHel)\n")
	fmt.Fprintf(&b, "%-10s %6s %6s %8s %12s\n", "scheme", "alpha", "beta", "AUC", "mean(1-D)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %6.2f %6.2f %8.4f %12.4f\n",
			r.Scheme, r.Alpha, r.Beta, r.AUC, r.MeanRobustness)
	}
	return b.String()
}
