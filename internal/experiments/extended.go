package experiments

import (
	"fmt"
	"strings"

	"graphsig/internal/apps"
	"graphsig/internal/core"
	"graphsig/internal/datagen"
	"graphsig/internal/eval"
	"graphsig/internal/graph"
	"graphsig/internal/perturb"
)

// DeanonRow is one result of the X5 extension: the paper's §I third
// application — identifying nodes of an anonymized graph from outside
// information (reference signatures of known individuals).
type DeanonRow struct {
	Scheme string
	// Top1 is nearest-reference accuracy; Greedy enforces an injective
	// assignment (the attacker knows the relabelling is a bijection).
	Top1   float64
	Greedy float64
	// MRR is the mean reciprocal rank of the true individual in each
	// anonymized node's reference ranking.
	MRR float64
}

// DeAnonymization runs X5 on the flow data: window 1 is wholly
// re-labelled by a random bijection over the monitored hosts (a
// released "anonymized" capture), and the attacker matches its
// signatures against window-0 reference signatures.
func DeAnonymization(e *Env) ([]DeanonRow, error) {
	d := core.ScaledHellinger{}
	w0 := e.windows(FlowData)[0]
	w1 := e.windows(FlowData)[1]
	candidates := core.DefaultSources(w0)
	anonWin, mapping, err := perturb.SimulateMasquerade(w1, candidates, 1.0, e.Seed+777)
	if err != nil {
		return nil, fmt.Errorf("experiments: deanonymize: %w", err)
	}
	// mapping sends v → u (v's traffic appears under u); the attacker
	// must recover, for each anonymized label u, the individual v.
	truth := map[graph.NodeID]graph.NodeID{}
	for v, u := range mapping.Mapping {
		truth[u] = v
	}
	var rows []DeanonRow
	for _, s := range core.ApplicationSchemes() {
		reference, err := e.Sigs(FlowData, s, 0)
		if err != nil {
			return nil, err
		}
		anonymized, err := e.SigsOn(FlowData, s, anonWin)
		if err != nil {
			return nil, err
		}
		nearest, err := apps.DeAnonymize(d, reference, anonymized, false)
		if err != nil {
			return nil, fmt.Errorf("experiments: deanonymize %s: %w", s.Name(), err)
		}
		top1, err := apps.DeAnonymizationAccuracy(nearest, truth)
		if err != nil {
			return nil, err
		}
		greedyMatches, err := apps.DeAnonymize(d, reference, anonymized, true)
		if err != nil {
			return nil, err
		}
		greedy, err := apps.DeAnonymizationAccuracy(greedyMatches, truth)
		if err != nil {
			return nil, err
		}
		mrr, err := deanonMRR(d, reference, anonymized, truth)
		if err != nil {
			return nil, err
		}
		rows = append(rows, DeanonRow{Scheme: s.Name(), Top1: top1, Greedy: greedy, MRR: mrr})
	}
	return rows, nil
}

// deanonMRR ranks every reference signature per anonymized node and
// reports the mean reciprocal rank of the true individual.
func deanonMRR(d core.Distance, reference, anonymized *core.SignatureSet, truth map[graph.NodeID]graph.NodeID) (float64, error) {
	var queries []eval.Query
	for i, a := range anonymized.Sources {
		want, ok := truth[a]
		if !ok {
			continue
		}
		q := eval.Query{
			Scores:   make([]float64, reference.Len()),
			Positive: make([]bool, reference.Len()),
		}
		for j, r := range reference.Sources {
			q.Scores[j] = d.Dist(anonymized.Sigs[i], reference.Sigs[j])
			q.Positive[j] = r == want
		}
		queries = append(queries, q)
	}
	if len(queries) == 0 {
		return 0, fmt.Errorf("experiments: deanon MRR has no queries")
	}
	return eval.MRR(queries)
}

// FormatDeanon renders X5.
func FormatDeanon(rows []DeanonRow) string {
	var b strings.Builder
	b.WriteString("Extension X5: de-anonymization of a re-labelled window (Dist_SHel)\n")
	fmt.Fprintf(&b, "%-10s %8s %8s %8s\n", "scheme", "top-1", "greedy", "MRR")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %8.4f %8.4f %8.4f\n", r.Scheme, r.Top1, r.Greedy, r.MRR)
	}
	return b.String()
}

// PhoneRow is one cell of the X6 extension: self-retrieval AUC on a
// synthetic *general* (non-bipartite) telephone call graph — the
// paper's original motivating setting, where random walks traverse
// real cycles and signatures may contain any node.
type PhoneRow struct {
	Scheme string
	AUC    float64
}

// phoneK is the signature length for the call graph (half the average
// subscriber out-degree of ~12).
const phoneK = 6

// TelephoneRetrieval runs X6: generate the call graph and measure
// cross-window self-retrieval for the paper's scheme lineup.
func TelephoneRetrieval(seed int64, scale float64) ([]PhoneRow, error) {
	cfg := datagen.DefaultTelephoneConfig(seed)
	if scale < 1 {
		cfg.Subscribers = maxInt(100, int(float64(cfg.Subscribers)*scale))
		cfg.Communities = maxInt(5, int(float64(cfg.Communities)*scale))
	}
	data, err := datagen.GenerateTelephone(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: telephone: %w", err)
	}
	d := core.ScaledHellinger{}
	var rows []PhoneRow
	for _, s := range core.PaperSchemes() {
		at, err := core.ComputeSet(core.Parallel(s, 0), data.Windows[0],
			core.DefaultSources(data.Windows[0]), phoneK)
		if err != nil {
			return nil, err
		}
		next, err := core.ComputeSet(core.Parallel(s, 0), data.Windows[1],
			core.DefaultSources(data.Windows[1]), phoneK)
		if err != nil {
			return nil, err
		}
		auc, err := selfAUC(d, at, next)
		if err != nil {
			return nil, fmt.Errorf("experiments: telephone %s: %w", s.Name(), err)
		}
		rows = append(rows, PhoneRow{Scheme: s.Name(), AUC: auc})
	}
	return rows, nil
}

// FormatPhone renders X6.
func FormatPhone(rows []PhoneRow) string {
	var b strings.Builder
	b.WriteString("Extension X6: telephone call graph (general, non-bipartite) self-retrieval AUC\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s AUC=%.4f\n", r.Scheme, r.AUC)
	}
	return b.String()
}

// PruneRow is one point of the edge-pruning scalability ablation:
// drop the lightest edges before computing signatures (a storage
// reduction any large deployment will consider, §VI) and measure what
// retrieval quality survives.
type PruneRow struct {
	// MinWeight keeps only edges with C[v,u] ≥ MinWeight.
	MinWeight float64
	// EdgeFrac is the fraction of edges kept.
	EdgeFrac float64
	// AUC is TT cross-window self-retrieval on the pruned graphs.
	AUC float64
}

// PruneAblation sweeps the pruning threshold on the flow data.
func PruneAblation(e *Env, minWeights []float64) ([]PruneRow, error) {
	d := core.ScaledHellinger{}
	w0 := e.windows(FlowData)[0]
	w1 := e.windows(FlowData)[1]
	var rows []PruneRow
	for _, mw := range minWeights {
		p0, frac, err := pruneWindow(w0, mw)
		if err != nil {
			return nil, err
		}
		p1, _, err := pruneWindow(w1, mw)
		if err != nil {
			return nil, err
		}
		at, err := core.ComputeSet(core.TopTalkers{}, p0, core.DefaultSources(p0), e.k(FlowData))
		if err != nil {
			return nil, err
		}
		next, err := core.ComputeSet(core.TopTalkers{}, p1, core.DefaultSources(p1), e.k(FlowData))
		if err != nil {
			return nil, err
		}
		auc, err := selfAUC(d, at, next)
		if err != nil {
			return nil, fmt.Errorf("experiments: prune %.0f: %w", mw, err)
		}
		rows = append(rows, PruneRow{MinWeight: mw, EdgeFrac: frac, AUC: auc})
	}
	return rows, nil
}

func pruneWindow(w *graph.Window, minWeight float64) (*graph.Window, float64, error) {
	edges := w.Edges()
	kept := make([]graph.Edge, 0, len(edges))
	for _, e := range edges {
		if e.Weight >= minWeight {
			kept = append(kept, e)
		}
	}
	out, err := graph.FromEdges(w.Universe(), w.Index(), kept)
	if err != nil {
		return nil, 0, err
	}
	frac := 1.0
	if len(edges) > 0 {
		frac = float64(len(kept)) / float64(len(edges))
	}
	return out, frac, nil
}

// FormatPrune renders the pruning ablation.
func FormatPrune(rows []PruneRow) string {
	var b strings.Builder
	b.WriteString("Ablation: edge pruning (TT, keep edges with weight ≥ w)\n")
	fmt.Fprintf(&b, "%8s %10s %8s\n", "minW", "edge-frac", "AUC")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8.0f %10.3f %8.4f\n", r.MinWeight, r.EdgeFrac, r.AUC)
	}
	return b.String()
}

// selfAUC is shorthand for eval.SelfRetrievalAUC.
func selfAUC(d core.Distance, at, next *core.SignatureSet) (float64, error) {
	return eval.SelfRetrievalAUC(d, at, next)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
