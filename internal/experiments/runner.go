package experiments

import (
	"fmt"
	"io"

	"graphsig/internal/core"
	"graphsig/internal/eval"
	"graphsig/internal/graph"
	"graphsig/internal/sketch"
	"graphsig/internal/stats"
)

// RunAll executes every experiment in DESIGN.md's per-experiment index
// and writes the textual report to w. It is the engine behind
// `sigbench -all` and the EXPERIMENTS.md numbers.
func RunAll(w io.Writer, e *Env) error {
	p := func(s string) error {
		_, err := fmt.Fprintln(w, s)
		return err
	}
	if err := p("graphsig experiment suite — reproduction of ICDE'08 \"On Signatures for Communication Graphs\""); err != nil {
		return err
	}
	fmt.Fprintf(w, "seed=%d\n", e.Seed)
	fmt.Fprintf(w, "flow data:  %s\n", graph.Summarize(e.windows(FlowData)[0]))
	fmt.Fprintf(w, "query data: %s\n\n", graph.Summarize(e.windows(QueryData)[0]))

	for _, t := range []*PropertyTable{TableI(), TableII(), TableIII()} {
		if err := p(t.Format()); err != nil {
			return err
		}
	}

	f1, err := Figure1(e)
	if err != nil {
		return fmt.Errorf("figure 1: %w", err)
	}
	if err := p(FormatFigure1(f1)); err != nil {
		return err
	}

	if err := persistenceHistograms(w, e); err != nil {
		return err
	}

	f2, err := Figure2(e)
	if err != nil {
		return fmt.Errorf("figure 2: %w", err)
	}
	if err := p(FormatFigure2(f2)); err != nil {
		return err
	}

	f3a, err := Figure3a(e)
	if err != nil {
		return fmt.Errorf("figure 3a: %w", err)
	}
	if err := p("Figure 3(a): " + f3a.Format()); err != nil {
		return err
	}
	f3b, err := Figure3b(e)
	if err != nil {
		return fmt.Errorf("figure 3b: %w", err)
	}
	if err := p("Figure 3(b): " + f3b.Format()); err != nil {
		return err
	}

	f4, err := Figure4(e)
	if err != nil {
		return fmt.Errorf("figure 4: %w", err)
	}
	if err := p(FormatFigure4(f4)); err != nil {
		return err
	}

	t4, err := TableIVMeasured(e)
	if err != nil {
		return fmt.Errorf("table IV: %w", err)
	}
	if err := p(t4.Format()); err != nil {
		return err
	}

	f5, err := Figure5(e)
	if err != nil {
		return fmt.Errorf("figure 5: %w", err)
	}
	if err := p(FormatFigure5(f5)); err != nil {
		return err
	}

	f6, err := Figure6(e)
	if err != nil {
		return fmt.Errorf("figure 6: %w", err)
	}
	if err := p(FormatFigure6(f6)); err != nil {
		return err
	}

	streaming, err := StreamingAblation(e, sketch.StreamConfig{Seed: uint64(e.Seed)})
	if err != nil {
		return fmt.Errorf("streaming ablation: %w", err)
	}
	lshRow, err := LSHAblation(e, 16, 2)
	if err != nil {
		return fmt.Errorf("lsh ablation: %w", err)
	}
	decay, err := DecayAblation(e, []float64{0, 0.25, 0.5, 0.75})
	if err != nil {
		return fmt.Errorf("decay ablation: %w", err)
	}
	direction, err := DirectionAblation(e)
	if err != nil {
		return fmt.Errorf("direction ablation: %w", err)
	}
	utScaling, err := UTScalingAblation(e)
	if err != nil {
		return fmt.Errorf("ut scaling ablation: %w", err)
	}
	ks, err := KSweepAblation(e, []int{5, 10, 20, 40})
	if err != nil {
		return fmt.Errorf("k sweep: %w", err)
	}
	if err := p(FormatAblations(streaming, lshRow, decay, direction, utScaling, ks)); err != nil {
		return err
	}

	anomaly, err := AnomalyDetection(e)
	if err != nil {
		return fmt.Errorf("anomaly experiment: %w", err)
	}
	if err := p(FormatAnomaly(anomaly)); err != nil {
		return err
	}

	blend, err := BlendAblation(e, []float64{0, 0.25, 0.5, 0.75, 1})
	if err != nil {
		return fmt.Errorf("blend ablation: %w", err)
	}
	if err := p(FormatBlend(blend)); err != nil {
		return err
	}

	sig, err := SchemeSignificance(e)
	if err != nil {
		return fmt.Errorf("significance: %w", err)
	}
	if err := p(FormatSignificance(sig)); err != nil {
		return err
	}

	deanon, err := DeAnonymization(e)
	if err != nil {
		return fmt.Errorf("deanonymization: %w", err)
	}
	if err := p(FormatDeanon(deanon)); err != nil {
		return err
	}

	phone, err := TelephoneRetrieval(e.Seed, phoneScale(e))
	if err != nil {
		return fmt.Errorf("telephone: %w", err)
	}
	if err := p(FormatPhone(phone)); err != nil {
		return err
	}

	prune, err := PruneAblation(e, []float64{1, 2, 3, 5})
	if err != nil {
		return fmt.Errorf("prune ablation: %w", err)
	}
	if err := p(FormatPrune(prune)); err != nil {
		return err
	}

	hops, diameter, err := HopConvergence(e)
	if err != nil {
		return fmt.Errorf("hop convergence: %w", err)
	}
	if err := p(FormatHopConvergence(hops, diameter)); err != nil {
		return err
	}

	horizon, err := PersistenceHorizon(e)
	if err != nil {
		return fmt.Errorf("persistence horizon: %w", err)
	}
	return p(FormatHorizon(horizon))
}

// persistenceHistograms renders the per-node persistence distribution
// of the representative schemes on the flow data — the raw material
// behind Figure 1's ellipses and Algorithm 1's δ threshold.
func persistenceHistograms(w io.Writer, e *Env) error {
	d := core.ScaledHellinger{}
	for _, s := range core.ApplicationSchemes() {
		at, err := e.Sigs(FlowData, s, 0)
		if err != nil {
			return err
		}
		next, err := e.Sigs(FlowData, s, 1)
		if err != nil {
			return err
		}
		h, err := stats.NewHistogram(0, 1, 10)
		if err != nil {
			return err
		}
		for _, v := range eval.Persistence(d, at, next) {
			h.Add(v)
		}
		fmt.Fprintf(w, "Persistence distribution, %s (flows, Dist_SHel):\n%s\n", s.Name(), h)
	}
	return nil
}

// phoneScale derives the telephone dataset scale from the flow
// dataset's size relative to its full-scale default, so scaled test
// runs stay fast.
func phoneScale(e *Env) float64 {
	full := 300.0
	actual := float64(e.DS.Flow.Config.LocalHosts)
	s := actual / full
	if s > 1 {
		return 1
	}
	return s
}
