package experiments

import (
	"fmt"
	"strings"

	"graphsig/internal/core"
	"graphsig/internal/eval"
)

// Fig2Series is one ROC curve of Figure 2: self-retrieval across
// windows on the network data, one curve per scheme, Dist_SHel.
type Fig2Series struct {
	Scheme string
	Curve  eval.Curve
	AUC    float64
}

// rocGridPoints is the FPR grid resolution of reported curves.
const rocGridPoints = 101

// Figure2 reproduces Figure 2: per-scheme averaged ROC curves of the
// cross-window self-retrieval task on the network flow data using the
// scaled Hellinger distance (curves for the other distances look very
// similar — Figure 3 quantifies them all).
func Figure2(e *Env) ([]Fig2Series, error) {
	d := core.ScaledHellinger{}
	var out []Fig2Series
	for _, s := range core.PaperSchemes() {
		at, err := e.Sigs(FlowData, s, 0)
		if err != nil {
			return nil, err
		}
		next, err := e.Sigs(FlowData, s, 1)
		if err != nil {
			return nil, err
		}
		queries := eval.SelfRetrievalQueries(d, at, next)
		curve, err := eval.AverageROC(queries, rocGridPoints)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure2 %s: %w", s.Name(), err)
		}
		auc, err := eval.MeanAUC(queries)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure2 %s: %w", s.Name(), err)
		}
		out = append(out, Fig2Series{Scheme: s.Name(), Curve: curve, AUC: auc})
	}
	return out, nil
}

// FormatFigure2 renders the curves at a coarse FPR grid plus AUC.
func FormatFigure2(series []Fig2Series) string {
	var b strings.Builder
	b.WriteString("Figure 2: ROC curves, network data, Dist_SHel (TPR at FPR grid)\n")
	fmt.Fprintf(&b, "%-10s", "scheme")
	marks := []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.5}
	for _, m := range marks {
		fmt.Fprintf(&b, " tpr@%-4.2f", m)
	}
	fmt.Fprintf(&b, " %8s\n", "AUC")
	for _, s := range series {
		fmt.Fprintf(&b, "%-10s", s.Scheme)
		for _, m := range marks {
			fmt.Fprintf(&b, " %8.4f", curveAt(s.Curve, m))
		}
		fmt.Fprintf(&b, " %8.4f\n", s.AUC)
	}
	return b.String()
}

// curveAt samples the piecewise-linear curve at FPR x.
func curveAt(c eval.Curve, x float64) float64 {
	for i := 1; i < len(c.FPR); i++ {
		if x <= c.FPR[i] {
			if c.FPR[i] == c.FPR[i-1] {
				return c.TPR[i]
			}
			frac := (x - c.FPR[i-1]) / (c.FPR[i] - c.FPR[i-1])
			return c.TPR[i-1] + frac*(c.TPR[i]-c.TPR[i-1])
		}
	}
	if len(c.TPR) == 0 {
		return 0
	}
	return c.TPR[len(c.TPR)-1]
}
