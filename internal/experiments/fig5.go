package experiments

import (
	"fmt"
	"sort"
	"strings"

	"graphsig/internal/core"
	"graphsig/internal/eval"
	"graphsig/internal/graph"
)

// Fig5Row is one multiusage-detection result: the averaged ROC (and its
// per-query mean AUC) of retrieving the sibling labels of multiusage
// individuals with one scheme and one distance.
type Fig5Row struct {
	Scheme   string
	Distance string
	AUC      float64
	Curve    eval.Curve
}

// Figure5 reproduces Figure 5: multiusage detection on the network
// data. For each label registered to a multi-IP individual, the other
// sources in window 0 are ranked by signature distance; positives are
// the individual's other labels. One row per (scheme ∈ {TT, UT, RWR³},
// distance ∈ all four).
func Figure5(e *Env) ([]Fig5Row, error) {
	groups, err := multiusageGroups(e)
	if err != nil {
		return nil, err
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("experiments: figure5: dataset has no multiusage ground truth")
	}
	var rows []Fig5Row
	for _, s := range core.ApplicationSchemes() {
		set, err := e.Sigs(FlowData, s, 0)
		if err != nil {
			return nil, err
		}
		for _, d := range core.AllDistances() {
			queries := eval.SetRetrievalQueries(d, set, groups)
			if len(queries) == 0 {
				return nil, fmt.Errorf("experiments: figure5: no usable multiusage queries for %s/%s", s.Name(), d.Name())
			}
			auc, err := eval.MeanAUC(queries)
			if err != nil {
				return nil, fmt.Errorf("experiments: figure5 %s/%s: %w", s.Name(), d.Name(), err)
			}
			curve, err := eval.AverageROC(queries, rocGridPoints)
			if err != nil {
				return nil, fmt.Errorf("experiments: figure5 %s/%s: %w", s.Name(), d.Name(), err)
			}
			rows = append(rows, Fig5Row{Scheme: s.Name(), Distance: d.Name(), AUC: auc, Curve: curve})
		}
	}
	return rows, nil
}

// multiusageGroups maps the generator's ground-truth label sets S_u to
// NodeIDs in the flow universe.
func multiusageGroups(e *Env) ([][]graph.NodeID, error) {
	u := e.DS.Flow.Universe
	var groups [][]graph.NodeID
	for _, labels := range e.DS.Flow.Truth.MultiusageSets() {
		var g []graph.NodeID
		for _, l := range labels {
			id, ok := u.Lookup(l)
			if !ok {
				// A label that never emitted a flow is absent from the
				// universe; skip it rather than fail the experiment.
				continue
			}
			g = append(g, id)
		}
		if len(g) >= 2 {
			sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
			groups = append(groups, g)
		}
	}
	return groups, nil
}

// FormatFigure5 renders per-scheme AUC grouped by distance.
func FormatFigure5(rows []Fig5Row) string {
	var b strings.Builder
	b.WriteString("Figure 5: multiusage detection ROC (mean AUC per scheme × distance)\n")
	fmt.Fprintf(&b, "%-10s %-8s %8s %10s %10s\n", "scheme", "dist", "AUC", "tpr@0.05", "tpr@0.10")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-8s %8.4f %10.4f %10.4f\n",
			r.Scheme, r.Distance, r.AUC, curveAt(r.Curve, 0.05), curveAt(r.Curve, 0.10))
	}
	return b.String()
}
