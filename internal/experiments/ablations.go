package experiments

import (
	"fmt"
	"sort"
	"strings"

	"graphsig/internal/core"
	"graphsig/internal/eval"
	"graphsig/internal/graph"
	"graphsig/internal/lsh"
	"graphsig/internal/sketch"
)

// StreamingRow compares a sketch-based streaming signature extractor
// (§VI) against its exact counterpart on the same window.
type StreamingRow struct {
	Scheme string
	// MeanDist is the mean Dist_SHel between exact and streamed
	// signatures per source (0 = identical).
	MeanDist float64
	// ExactTopkRecall is the mean fraction of the exact signature's
	// members recovered by the streamed signature.
	ExactTopkRecall float64
	// AUC is the cross-window self-retrieval AUC achieved using only
	// streamed signatures, comparable with Figure 3(a)'s exact values.
	AUC float64
}

// StreamingAblation measures how much signature quality the §VI
// semi-streaming extractors give up: it streams the window-0 and
// window-1 edge observations through StreamTT/StreamUT and compares
// against exact TT/UT.
func StreamingAblation(e *Env, cfg sketch.StreamConfig) ([]StreamingRow, error) {
	d := core.ScaledHellinger{}
	w0 := e.windows(FlowData)[0]
	w1 := e.windows(FlowData)[1]
	k := e.k(FlowData)

	type extractor interface {
		Observe(src, dst graph.NodeID, weight float64) error
		Signature(v graph.NodeID, k int) (core.Signature, error)
	}
	build := map[string]func() extractor{
		"tt": func() extractor { return sketch.NewStreamTT(cfg) },
		"ut": func() extractor { return sketch.NewStreamUT(cfg) },
	}

	var rows []StreamingRow
	for _, name := range []string{"tt", "ut"} {
		exact0, err := e.Sigs(FlowData, mustScheme(name), 0)
		if err != nil {
			return nil, err
		}
		streamSet := func(w *graph.Window) (*core.SignatureSet, error) {
			ex := build[name]()
			for _, edge := range w.Edges() {
				// Replay each aggregated edge as weight-many unit
				// observations: the stream the sketches were built for.
				for i := 0; i < int(edge.Weight); i++ {
					if err := ex.Observe(edge.From, edge.To, 1); err != nil {
						return nil, err
					}
				}
			}
			sources := core.DefaultSources(w)
			sigs := make([]core.Signature, len(sources))
			for i, v := range sources {
				sig, err := ex.Signature(v, k)
				if err != nil {
					return nil, err
				}
				sigs[i] = sig
			}
			return core.NewSignatureSet(name+"-stream", w.Index(), sources, sigs)
		}
		s0, err := streamSet(w0)
		if err != nil {
			return nil, fmt.Errorf("experiments: streaming %s: %w", name, err)
		}
		s1, err := streamSet(w1)
		if err != nil {
			return nil, fmt.Errorf("experiments: streaming %s: %w", name, err)
		}

		var distSum, recallSum float64
		n := 0
		for i, v := range exact0.Sources {
			streamed, ok := s0.Get(v)
			if !ok {
				continue
			}
			exact := exact0.Sigs[i]
			distSum += d.Dist(exact, streamed)
			if exact.Len() > 0 {
				hits := 0
				for _, u := range exact.Nodes {
					if streamed.Contains(u) {
						hits++
					}
				}
				recallSum += float64(hits) / float64(exact.Len())
			} else {
				recallSum++
			}
			n++
		}
		if n == 0 {
			return nil, fmt.Errorf("experiments: streaming %s produced no comparable sources", name)
		}
		auc, err := eval.SelfRetrievalAUC(d, s0, s1)
		if err != nil {
			return nil, fmt.Errorf("experiments: streaming %s AUC: %w", name, err)
		}
		rows = append(rows, StreamingRow{
			Scheme:          name,
			MeanDist:        distSum / float64(n),
			ExactTopkRecall: recallSum / float64(n),
			AUC:             auc,
		})
	}
	return rows, nil
}

func mustScheme(name string) core.Scheme {
	s, err := core.ParseScheme(name)
	if err != nil {
		panic(err)
	}
	return s
}

// lshSimilarCut is the Jaccard-distance cut defining a "genuinely
// similar" neighbour for the LSH ablation: LSH exists to find strong
// matches (multiusage-level similarity), not weakly overlapping pairs.
const lshSimilarCut = 0.7

// LSHRow compares LSH-accelerated Jaccard nearest-neighbour retrieval
// against the exact linear scan for multiusage detection.
type LSHRow struct {
	Bands, RowsPerBand int
	// Recall10 is the mean fraction of each source's genuinely similar
	// exact neighbours (Jaccard distance ≤ 0.7, at most 10) found among
	// its LSH candidates.
	Recall10 float64
	// MeanCandidates is the mean LSH candidate-set size; the speedup
	// over a linear scan is ≈ population / candidates.
	MeanCandidates float64
	Population     int
}

// LSHAblation indexes window-0 TT signatures and measures candidate
// recall against each source's exact similar neighbours.
func LSHAblation(e *Env, bands, rowsPerBand int) (*LSHRow, error) {
	set, err := e.Sigs(FlowData, core.TopTalkers{}, 0)
	if err != nil {
		return nil, err
	}
	hasher, err := lsh.NewHasher(bands*rowsPerBand, uint64(e.Seed))
	if err != nil {
		return nil, err
	}
	index, err := lsh.NewIndex(hasher, bands, rowsPerBand)
	if err != nil {
		return nil, err
	}
	for i, v := range set.Sources {
		if err := index.Add(v, set.Sigs[i]); err != nil {
			return nil, err
		}
	}
	d := core.Jaccard{}
	const topN = 10
	var recallSum, candSum float64
	queries := 0
	for i, v := range set.Sources {
		if set.Sigs[i].IsEmpty() {
			continue
		}
		// Exact 10-NN by Jaccard distance.
		type nb struct {
			u    graph.NodeID
			dist float64
		}
		exact := make([]nb, 0, set.Len()-1)
		for j, u := range set.Sources {
			if u == v {
				continue
			}
			exact = append(exact, nb{u, d.Dist(set.Sigs[i], set.Sigs[j])})
		}
		sort.Slice(exact, func(a, b int) bool {
			if exact[a].dist != exact[b].dist {
				return exact[a].dist < exact[b].dist
			}
			return exact[a].u < exact[b].u
		})
		if len(exact) > topN {
			exact = exact[:topN]
		}
		cands, err := index.Query(set.Sigs[i], v, 0)
		if err != nil {
			return nil, err
		}
		candSet := map[graph.NodeID]struct{}{}
		for _, c := range cands {
			candSet[c.Node] = struct{}{}
		}
		hits := 0
		denom := 0
		for _, x := range exact {
			if x.dist > lshSimilarCut {
				// Only genuinely similar neighbours count; a node
				// without any has no retrieval task here.
				continue
			}
			denom++
			if _, ok := candSet[x.u]; ok {
				hits++
			}
		}
		if denom > 0 {
			recallSum += float64(hits) / float64(denom)
			candSum += float64(len(cands))
			queries++
		}
	}
	if queries == 0 {
		return nil, fmt.Errorf("experiments: lsh ablation had no usable queries")
	}
	return &LSHRow{
		Bands:          bands,
		RowsPerBand:    rowsPerBand,
		Recall10:       recallSum / float64(queries),
		MeanCandidates: candSum / float64(queries),
		Population:     set.Len(),
	}, nil
}

// DecayRow measures the effect of exponential history decay (§III-A)
// on TT persistence and retrieval.
type DecayRow struct {
	Lambda float64
	// Persistence is mean TT self-persistence between the last two
	// decayed windows.
	Persistence float64
	// AUC is the corresponding self-retrieval AUC.
	AUC float64
}

// DecayAblation sweeps the decay factor λ over the flow windows.
func DecayAblation(e *Env, lambdas []float64) ([]DecayRow, error) {
	d := core.ScaledHellinger{}
	scheme := core.TopTalkers{}
	k := e.k(FlowData)
	var rows []DecayRow
	for _, lambda := range lambdas {
		wins, err := core.DecayCombine(e.windows(FlowData), lambda)
		if err != nil {
			return nil, err
		}
		if len(wins) < 2 {
			return nil, fmt.Errorf("experiments: decay ablation needs ≥2 windows")
		}
		at, err := core.ComputeSet(scheme, wins[len(wins)-2], core.DefaultSources(wins[len(wins)-2]), k)
		if err != nil {
			return nil, err
		}
		next, err := core.ComputeSet(scheme, wins[len(wins)-1], core.DefaultSources(wins[len(wins)-1]), k)
		if err != nil {
			return nil, err
		}
		auc, err := eval.SelfRetrievalAUC(d, at, next)
		if err != nil {
			return nil, err
		}
		rows = append(rows, DecayRow{
			Lambda:      lambda,
			Persistence: eval.PersistenceSummary(d, at, next).Mean,
			AUC:         auc,
		})
	}
	return rows, nil
}

// DirectionRow compares the symmetrized random walk against the
// strictly directed variant (DESIGN.md ablation 1).
type DirectionRow struct {
	Scheme string
	AUC    float64
}

// DirectionAblation runs RWR³ in both walk modes on the flow data.
func DirectionAblation(e *Env) ([]DirectionRow, error) {
	d := core.ScaledHellinger{}
	var rows []DirectionRow
	for _, s := range []core.Scheme{
		core.RandomWalk{C: 0.1, Hops: 3},
		core.RandomWalk{C: 0.1, Hops: 3, Directed: true},
	} {
		at, err := e.Sigs(FlowData, s, 0)
		if err != nil {
			return nil, err
		}
		next, err := e.Sigs(FlowData, s, 1)
		if err != nil {
			return nil, err
		}
		auc, err := eval.SelfRetrievalAUC(d, at, next)
		if err != nil {
			return nil, err
		}
		rows = append(rows, DirectionRow{Scheme: s.Name(), AUC: auc})
	}
	return rows, nil
}

// UTScalingRow compares the two UT popularity-scaling functions.
type UTScalingRow struct {
	Scheme string
	AUC    float64
}

// UTScalingAblation compares 1/|I(j)| against TF-IDF scaling on the
// flow data; the paper reports little variation between them.
func UTScalingAblation(e *Env) ([]UTScalingRow, error) {
	d := core.ScaledHellinger{}
	var rows []UTScalingRow
	for _, s := range []core.Scheme{
		core.UnexpectedTalkers{},
		core.UnexpectedTalkers{Scaling: core.UTTFIDF},
	} {
		at, err := e.Sigs(FlowData, s, 0)
		if err != nil {
			return nil, err
		}
		next, err := e.Sigs(FlowData, s, 1)
		if err != nil {
			return nil, err
		}
		auc, err := eval.SelfRetrievalAUC(d, at, next)
		if err != nil {
			return nil, err
		}
		rows = append(rows, UTScalingRow{Scheme: s.Name(), AUC: auc})
	}
	return rows, nil
}

// KSweepRow measures sensitivity to the signature length k.
type KSweepRow struct {
	K   int
	AUC float64
}

// KSweepAblation sweeps k around the paper's half-average-degree rule
// for TT on the flow data.
func KSweepAblation(e *Env, ks []int) ([]KSweepRow, error) {
	d := core.ScaledHellinger{}
	scheme := core.TopTalkers{}
	w0 := e.windows(FlowData)[0]
	w1 := e.windows(FlowData)[1]
	var rows []KSweepRow
	for _, k := range ks {
		at, err := core.ComputeSet(scheme, w0, core.DefaultSources(w0), k)
		if err != nil {
			return nil, err
		}
		next, err := core.ComputeSet(scheme, w1, core.DefaultSources(w1), k)
		if err != nil {
			return nil, err
		}
		auc, err := eval.SelfRetrievalAUC(d, at, next)
		if err != nil {
			return nil, err
		}
		rows = append(rows, KSweepRow{K: k, AUC: auc})
	}
	return rows, nil
}

// FormatAblations renders all extension/ablation results.
func FormatAblations(streaming []StreamingRow, lshRow *LSHRow, decay []DecayRow, direction []DirectionRow, utScaling []UTScalingRow, ks []KSweepRow) string {
	var b strings.Builder
	b.WriteString("Extension X1: semi-streaming signatures (sketch vs exact)\n")
	fmt.Fprintf(&b, "%-6s %10s %10s %8s\n", "scheme", "meanDist", "recall", "AUC")
	for _, r := range streaming {
		fmt.Fprintf(&b, "%-6s %10.4f %10.4f %8.4f\n", r.Scheme, r.MeanDist, r.ExactTopkRecall, r.AUC)
	}
	if lshRow != nil {
		b.WriteString("\nExtension X2: LSH nearest-neighbour (Jaccard)\n")
		fmt.Fprintf(&b, "bands=%d rows=%d recall@10=%.4f mean-candidates=%.1f of %d (scan ratio %.3f)\n",
			lshRow.Bands, lshRow.RowsPerBand, lshRow.Recall10, lshRow.MeanCandidates,
			lshRow.Population, lshRow.MeanCandidates/float64(lshRow.Population))
	}
	b.WriteString("\nExtension X3: exponential history decay (TT)\n")
	fmt.Fprintf(&b, "%8s %12s %8s\n", "lambda", "persistence", "AUC")
	for _, r := range decay {
		fmt.Fprintf(&b, "%8.2f %12.4f %8.4f\n", r.Lambda, r.Persistence, r.AUC)
	}
	b.WriteString("\nAblation: walk directionality (RWR³)\n")
	for _, r := range direction {
		fmt.Fprintf(&b, "%-14s AUC=%.4f\n", r.Scheme, r.AUC)
	}
	b.WriteString("\nAblation: UT scaling function\n")
	for _, r := range utScaling {
		fmt.Fprintf(&b, "%-10s AUC=%.4f\n", r.Scheme, r.AUC)
	}
	b.WriteString("\nAblation: signature length k (TT)\n")
	for _, r := range ks {
		fmt.Fprintf(&b, "k=%-4d AUC=%.4f\n", r.K, r.AUC)
	}
	return b.String()
}
