// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV, §V) on the synthetic substitute datasets, plus the
// extension ablations DESIGN.md calls out. Each experiment is a pure
// function of a seeded Env, so runs are reproducible bit-for-bit.
package experiments

import (
	"fmt"

	"graphsig/internal/core"
	"graphsig/internal/datagen"
	"graphsig/internal/graph"
)

// Datasets bundles the two workloads of §IV-A with their paper-mandated
// signature lengths (half the average out-degree: k=10 for flows, k=3
// for query logs).
type Datasets struct {
	Flow   *datagen.EnterpriseData
	Query  *datagen.QueryLogData
	FlowK  int
	QueryK int
}

// Load generates the full-scale datasets from seed.
func Load(seed int64) (*Datasets, error) {
	return LoadScaled(seed, 1.0)
}

// LoadScaled generates datasets shrunk by the given factor (0 < scale ≤ 1)
// for fast tests; scale 1 is the paper-comparable size.
func LoadScaled(seed int64, scale float64) (*Datasets, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("experiments: scale %g outside (0,1]", scale)
	}
	fcfg := datagen.DefaultEnterpriseConfig(seed)
	qcfg := datagen.DefaultQueryLogConfig(seed + 1)
	if scale < 1 {
		fcfg.LocalHosts = max(20, int(float64(fcfg.LocalHosts)*scale))
		fcfg.ExternalHosts = max(200, int(float64(fcfg.ExternalHosts)*scale))
		fcfg.Communities = max(3, int(float64(fcfg.Communities)*scale))
		fcfg.MultiusageIndividuals = max(2, int(float64(fcfg.MultiusageIndividuals)*scale))
		qcfg.Users = max(30, int(float64(qcfg.Users)*scale))
		qcfg.Tables = max(50, int(float64(qcfg.Tables)*scale))
		qcfg.Roles = max(5, int(float64(qcfg.Roles)*scale))
	}
	flow, err := datagen.GenerateEnterprise(fcfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: flow data: %w", err)
	}
	query, err := datagen.GenerateQueryLog(qcfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: query data: %w", err)
	}
	return &Datasets{Flow: flow, Query: query, FlowK: 10, QueryK: 3}, nil
}

// Env holds the datasets plus memoized signature sets so that the
// figures sharing scheme computations (1, 2, 3) do the work once.
type Env struct {
	DS   *Datasets
	Seed int64

	cache map[string]*core.SignatureSet
}

// NewEnv wraps datasets for experiment runs.
func NewEnv(ds *Datasets, seed int64) *Env {
	return &Env{DS: ds, Seed: seed, cache: map[string]*core.SignatureSet{}}
}

// DatasetName identifies which workload an experiment row refers to.
type DatasetName string

// The two §IV-A datasets.
const (
	FlowData  DatasetName = "network-flows"
	QueryData DatasetName = "query-logs"
)

func (e *Env) windows(ds DatasetName) []*graph.Window {
	if ds == FlowData {
		return e.DS.Flow.Windows
	}
	return e.DS.Query.Windows
}

func (e *Env) k(ds DatasetName) int {
	if ds == FlowData {
		return e.DS.FlowK
	}
	return e.DS.QueryK
}

// Sigs returns the memoized signature set of scheme s on window t of
// dataset ds, computing it on first use with the dataset's k and the
// default (Part1-active) source rule.
func (e *Env) Sigs(ds DatasetName, s core.Scheme, t int) (*core.SignatureSet, error) {
	key := fmt.Sprintf("%s/%s/%d", ds, s.Name(), t)
	if set, ok := e.cache[key]; ok {
		return set, nil
	}
	wins := e.windows(ds)
	if t < 0 || t >= len(wins) {
		return nil, fmt.Errorf("experiments: window %d out of range for %s", t, ds)
	}
	w := wins[t]
	set, err := core.ComputeSet(core.Parallel(s, 0), w, core.DefaultSources(w), e.k(ds))
	if err != nil {
		return nil, fmt.Errorf("experiments: %s on %s window %d: %w", s.Name(), ds, t, err)
	}
	e.cache[key] = set
	return set, nil
}

// SigsOn computes (without memoization) the signature set of scheme s
// on an ad-hoc window, e.g. a perturbed or masqueraded one.
func (e *Env) SigsOn(ds DatasetName, s core.Scheme, w *graph.Window) (*core.SignatureSet, error) {
	return core.ComputeSet(core.Parallel(s, 0), w, core.DefaultSources(w), e.k(ds))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
