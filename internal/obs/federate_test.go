package obs

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// --- trace context propagation ---

func TestTraceContextRoundTrip(t *testing.T) {
	cases := []TraceContext{
		{TraceID: "abc123", SpanID: "span0000000001"},
		{TraceID: "seq-000000000042", SpanID: "span0000000007"}, // dashed trace ID
	}
	for _, tc := range cases {
		got := ParseTraceContext(tc.String())
		if got != tc {
			t.Errorf("round trip %q: got %+v, want %+v", tc.String(), got, tc)
		}
	}
	for _, bad := range []string{"", "nodash", "-leading", "trailing-"} {
		if got := ParseTraceContext(bad); got.Valid() {
			t.Errorf("ParseTraceContext(%q) = %+v, want invalid", bad, got)
		}
	}
	// The split is on the LAST dash, so a dashed fallback trace ID
	// keeps its dash on the trace side.
	got := ParseTraceContext("seq-000000000001-span42")
	if got.TraceID != "seq-000000000001" || got.SpanID != "span42" {
		t.Errorf("last-dash split: got %+v", got)
	}
}

func TestStartRemoteAdoptsContext(t *testing.T) {
	router := NewTracer(8, 0, nil)
	shard := NewTracer(8, 0, nil)

	tr := router.Start("route.search")
	end, tc := tr.SpanWith("search.shard0")
	if !tc.Valid() {
		t.Fatalf("SpanWith returned invalid context %+v", tc)
	}
	if tc.TraceID != tr.ID() {
		t.Fatalf("SpanWith trace ID %q != trace ID %q", tc.TraceID, tr.ID())
	}

	remote := shard.StartRemote("search", tc)
	if remote.ID() != tr.ID() {
		t.Fatalf("StartRemote trace ID %q, want adopted %q", remote.ID(), tr.ID())
	}
	endSpan := remote.Span("store.search")
	endSpan()
	remote.Finish()
	end()
	tr.Finish()

	snap, ok := shard.Find(tr.ID())
	if !ok {
		t.Fatalf("shard ring has no trace %q", tr.ID())
	}
	if snap.ParentSpanID != tc.SpanID {
		t.Errorf("remote segment parent span = %q, want %q", snap.ParentSpanID, tc.SpanID)
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "store.search" {
		t.Errorf("remote segment spans = %+v, want one store.search span", snap.Spans)
	}
	// An invalid inbound context degrades to a fresh local trace.
	fresh := shard.StartRemote("search", TraceContext{})
	if fresh.ID() == tr.ID() || fresh.ID() == "" {
		t.Errorf("StartRemote with invalid context reused/empty ID %q", fresh.ID())
	}
	fresh.Finish()
}

// --- exposition parsing ---

func TestParseExpositionAttachesHistogramSeries(t *testing.T) {
	reg := NewRegistry()
	reg.SetConstLabels(map[string]string{"shard": "0", "role": "primary"})
	reg.Counter("flows_received", "flows accepted").Add(7)
	h := reg.HistogramWith("search_seconds", "search latency", CountBounds(4))
	h.Observe(1)
	h.Observe(3)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParseExposition: %v", err)
	}
	byName := map[string]Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	c, ok := byName["flows_received"]
	if !ok || c.Type != "counter" || len(c.Samples) != 1 || c.Samples[0].Value != 7 {
		t.Fatalf("flows_received family = %+v", c)
	}
	hist, ok := byName["search_seconds"]
	if !ok || hist.Type != "histogram" {
		t.Fatalf("search_seconds family missing or mistyped: %+v", hist)
	}
	// _bucket/_sum/_count must fold into the base family, not appear
	// as three separate families.
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if _, stray := byName["search_seconds"+suffix]; stray {
			t.Errorf("series %q parsed as its own family", "search_seconds"+suffix)
		}
	}
	// 4 bounds + Inf buckets, plus _sum and _count.
	if len(hist.Samples) != 7 {
		t.Errorf("search_seconds samples = %d, want 7: %+v", len(hist.Samples), hist.Samples)
	}
}

// federateSamples parses a federated exposition and indexes every
// sample by name plus rendered label set.
func federateSamples(t *testing.T, nodes []NodeExposition) (string, map[string]float64) {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFederated(&buf, nodes); err != nil {
		t.Fatalf("WriteFederated: %v", err)
	}
	out := buf.String()
	if _, err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("federated exposition invalid: %v\n%s", err, out)
	}
	fams, err := ParseExposition(strings.NewReader(out))
	if err != nil {
		t.Fatalf("reparsing federated output: %v", err)
	}
	samples := map[string]float64{}
	for _, f := range fams {
		for _, s := range f.Samples {
			samples[s.Name+"{"+s.Labels+"}"] = s.Value
		}
	}
	return out, samples
}

func nodeExposition(t *testing.T, reg *Registry, identity ...Label) NodeExposition {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return NodeExposition{Labels: identity, Families: fams}
}

func TestWriteFederatedCounterSums(t *testing.T) {
	regA := NewRegistry()
	regA.SetConstLabels(map[string]string{"shard": "0", "role": "primary"})
	regA.Counter("flows_received", "flows accepted").Add(11)
	regA.Gauge("store_windows", "resident windows").Set(3)

	regB := NewRegistry()
	regB.SetConstLabels(map[string]string{"shard": "1", "role": "primary"})
	regB.Counter("flows_received", "flows accepted").Add(31)
	regB.Gauge("store_windows", "resident windows").Set(5)

	nodes := []NodeExposition{
		nodeExposition(t, regA, Label{Name: "instance", Value: "s0/primary"}),
		nodeExposition(t, regB, Label{Name: "instance", Value: "s1/primary"}),
	}
	out, samples := federateSamples(t, nodes)

	if got := samples[`flows_received{instance="cluster"}`]; got != 42 {
		t.Errorf("cluster flows_received = %v, want 42\n%s", got, out)
	}
	// Per-node series survive with identity labels injected.
	if got := samples[`flows_received{instance="s0/primary",role="primary",shard="0"}`]; got != 11 {
		t.Errorf("shard-0 flows_received = %v, want 11\n%s", got, out)
	}
	// Gauges are never summed into a cluster aggregate.
	for key := range samples {
		if strings.HasPrefix(key, "store_windows{") && strings.Contains(key, `instance="cluster"`) {
			t.Errorf("gauge aggregated into cluster series: %s\n%s", key, out)
		}
	}
}

// TestFederatedHistogramMergeLossless splits one observation stream
// randomly across two nodes' histograms (identical log bounds) and
// asserts the federated instance="cluster" series are numerically
// identical to a single histogram that observed the whole stream:
// per-le cumulative bucket counts, _sum, and _count all match exactly.
// Integer-valued observations keep the float sums order-independent,
// so equality is exact, not approximate.
func TestFederatedHistogramMergeLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	bounds := CountBounds(8)

	regA := NewRegistry()
	regA.SetConstLabels(map[string]string{"shard": "0"})
	hA := regA.HistogramWith("search_probes", "probes per search", bounds)
	regB := NewRegistry()
	regB.SetConstLabels(map[string]string{"shard": "1"})
	hB := regB.HistogramWith("search_probes", "probes per search", bounds)
	combined := NewHistogram(bounds)

	for i := 0; i < 500; i++ {
		v := float64(rng.Intn(300)) // covers every bucket incl. +Inf
		combined.Observe(v)
		if rng.Intn(2) == 0 {
			hA.Observe(v)
		} else {
			hB.Observe(v)
		}
	}

	nodes := []NodeExposition{
		nodeExposition(t, regA, Label{Name: "instance", Value: "s0/primary"}),
		nodeExposition(t, regB, Label{Name: "instance", Value: "s1/primary"}),
	}
	out, samples := federateSamples(t, nodes)

	snap := combined.Snapshot()
	var cum uint64
	for i, c := range snap.Counts {
		cum += c
		le := "+Inf"
		if i < len(snap.Bounds) {
			le = formatFloat(snap.Bounds[i])
		}
		key := fmt.Sprintf(`search_probes_bucket{instance="cluster",le=%q}`, le)
		if got, ok := samples[key]; !ok || got != float64(cum) {
			t.Errorf("bucket le=%s: federated %v (present=%v), want %d\n%s", le, got, ok, cum, out)
		}
	}
	if got := samples[`search_probes_sum{instance="cluster"}`]; got != snap.Sum {
		t.Errorf("federated _sum = %v, want %v", got, snap.Sum)
	}
	if got := samples[`search_probes_count{instance="cluster"}`]; got != float64(snap.Count) {
		t.Errorf("federated _count = %v, want %d", got, snap.Count)
	}
}
