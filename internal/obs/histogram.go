package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// defaultBounds are the log-spaced latency bucket upper bounds in
// seconds: powers of two from 1µs to ~134s (28 buckets). Log spacing
// keeps relative quantile-estimation error bounded (each bucket spans a
// factor of 2, so an interpolated quantile is within 2× of the truth)
// while the whole histogram stays 29 atomic words.
var defaultBounds = func() []float64 {
	b := make([]float64, 28)
	v := 1e-6
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// CountBounds returns log-spaced bounds for count-valued observations
// (candidate counts, probe counts): powers of two from 1 to 2^(n-1).
func CountBounds(n int) []float64 {
	b := make([]float64, n)
	v := 1.0
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}

// Histogram is a fixed-bucket histogram safe for concurrent use: an
// observation is one atomic bucket increment plus atomic updates of the
// running sum and count. A nil *Histogram is a no-op, so optional
// instrumentation costs one branch when disabled.
//
// Scrapes (Snapshot) read the atomics without a lock. A scrape racing
// writers may therefore see a sum/count/bucket trio that was never
// simultaneously true — each value is individually monotone, which is
// what rate() arithmetic needs, and the skew is at most the handful of
// observations in flight.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last bucket is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram builds a histogram with the given ascending bucket
// upper bounds (nil = default latency buckets, seconds).
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = defaultBounds
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the elapsed time since t0, in seconds.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// HistSnapshot is a point-in-time copy of a histogram's state.
type HistSnapshot struct {
	Bounds []float64 // bucket upper bounds; the final implicit bucket is +Inf
	Counts []uint64  // len(Bounds)+1 per-bucket (non-cumulative) counts
	Count  uint64
	Sum    float64
}

// Snapshot copies the histogram state. Nil histograms yield a zero
// snapshot.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by locating the bucket
// holding the target rank and interpolating linearly inside it. With
// the default ×2 log spacing the estimate is within a factor of two of
// the true value; 0 with no observations.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := lo
		if i < len(s.Bounds) {
			hi = s.Bounds[i]
		}
		next := cum + float64(c)
		if rank <= next {
			if hi <= lo {
				return hi // +Inf bucket: report its lower bound
			}
			frac := (rank - cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	// rank beyond the last populated bucket (scrape raced writers):
	// report the largest populated upper bound.
	for i := len(s.Counts) - 1; i >= 0; i-- {
		if s.Counts[i] > 0 {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return s.Bounds[len(s.Bounds)-1]
		}
	}
	return 0
}

// Quantile is Snapshot().Quantile(q) — one-shot convenience.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Snapshot().Quantile(q)
}
