package obs

import (
	"bytes"
	"fmt"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestTracerRingBounds(t *testing.T) {
	tr := NewTracer(4, 0, nil)
	for i := 0; i < 10; i++ {
		x := tr.Start(fmt.Sprintf("op-%d", i))
		x.Span("step")()
		x.Finish()
	}
	recent := tr.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("ring holds %d traces, want 4", len(recent))
	}
	// Newest first; capacity evicts oldest, so ops 9..6 survive.
	for i, want := range []string{"op-9", "op-8", "op-7", "op-6"} {
		if recent[i].Name != want {
			t.Fatalf("recent[%d] = %q, want %q (%v)", i, recent[i].Name, want, recent)
		}
	}
	if got := tr.Recent(2); len(got) != 2 || got[0].Name != "op-9" || got[1].Name != "op-8" {
		t.Fatalf("Recent(2) = %+v", got)
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d, want 10", tr.Total())
	}
	ids := make(map[string]bool)
	for _, snap := range recent {
		if len(snap.ID) != 16 {
			t.Fatalf("trace ID %q not 16 hex chars", snap.ID)
		}
		ids[snap.ID] = true
	}
	if len(ids) != 4 {
		t.Fatalf("trace IDs not unique: %v", ids)
	}
}

func TestTraceSpansRecorded(t *testing.T) {
	tr := NewTracer(8, 0, nil)
	x := tr.Start("ingest")
	end := x.Span("wal.append")
	time.Sleep(2 * time.Millisecond)
	end()
	x.Span("window.close")()
	x.Finish()
	snap := tr.Recent(1)[0]
	if snap.Name != "ingest" || len(snap.Spans) != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Spans[0].Name != "wal.append" || snap.Spans[0].DurationMicros < 2000 {
		t.Fatalf("span 0 = %+v", snap.Spans[0])
	}
	if snap.Spans[1].OffsetMicros < snap.Spans[0].DurationMicros {
		t.Fatalf("span 1 offset %d before span 0 ended (%d)",
			snap.Spans[1].OffsetMicros, snap.Spans[0].DurationMicros)
	}
	if snap.DurationMicros < snap.Spans[0].DurationMicros {
		t.Fatalf("trace shorter than its span: %+v", snap)
	}
}

// TestSlowSpanLogsExactlyOnce: a span at or over the threshold emits
// one structured log line carrying the trace ID; fast spans emit none.
func TestSlowSpanLogsExactlyOnce(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	tr := NewTracer(8, 5*time.Millisecond, logger)

	x := tr.Start("search")
	x.Span("fast")() // well under threshold
	end := x.Span("scan")
	time.Sleep(10 * time.Millisecond)
	end()
	x.Finish()

	out := buf.String()
	lines := strings.Count(out, "\n")
	if lines != 1 {
		t.Fatalf("slow span logged %d lines, want 1:\n%s", lines, out)
	}
	if !strings.Contains(out, "slow operation") ||
		!strings.Contains(out, "trace="+x.ID()) ||
		!strings.Contains(out, "span=scan") {
		t.Fatalf("slow-op line missing fields:\n%s", out)
	}
	snap := tr.Recent(1)[0]
	if !snap.Slow {
		t.Fatal("trace not marked slow")
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	x := tr.Start("anything")
	x.Span("child")()
	x.Finish()
	if x.ID() != "" || tr.Recent(5) != nil || tr.Total() != 0 {
		t.Fatal("nil tracer recorded something")
	}
}
