package obs

import (
	"strings"
	"testing"
)

func TestGaugeVecSetSnapshotAndProm(t *testing.T) {
	reg := NewRegistry()
	gv := reg.GaugeVec("replica_lag_bytes", "byte lag by shard", "shard")
	gv.With("0").Set(4096)
	gv.With("1").Set(128)
	gv.With("0").Set(512) // overwrite, not accumulate

	snap := reg.Snapshot()
	if got := snap["replica_lag_bytes_0"]; got != 512 {
		t.Fatalf("shard 0 lag = %d, want 512", got)
	}
	if got := snap["replica_lag_bytes_1"]; got != 128 {
		t.Fatalf("shard 1 lag = %d, want 128", got)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	prom := sb.String()
	for _, want := range []string{
		`# TYPE replica_lag_bytes gauge`,
		`replica_lag_bytes{shard="0"} 512`,
		`replica_lag_bytes{shard="1"} 128`,
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("exposition missing %q:\n%s", want, prom)
		}
	}
	if _, err := ValidateExposition(strings.NewReader(prom)); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
}

// TestGaugeVecReuseAndMismatch: asking for the same family again
// returns the same vector; asking with a different kind panics like the
// scalar registries do.
func TestGaugeVecReuseAndMismatch(t *testing.T) {
	reg := NewRegistry()
	a := reg.GaugeVec("g", "help", "l")
	b := reg.GaugeVec("g", "help", "l")
	a.With("x").Set(7)
	if got := b.With("x").Value(); got != 7 {
		t.Fatalf("second handle sees %d, want 7", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CounterVec over a gauge family did not panic")
		}
	}()
	reg.CounterVec("g", "help", "l")
}
