package obs

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("flows_total", "flows")
	c.Inc()
	c.Add(4)
	c.Add(-3) // monotone: negative adds ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if same := r.Counter("flows_total", "flows"); same != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	r.GaugeFunc("up", "always one", func() int64 { return 1 })
	snap := r.Snapshot()
	if snap["flows_total"] != 5 || snap["depth"] != 5 || snap["up"] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var v *HistogramVec
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveSince(time.Now())
	v.With("x").Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles recorded something")
	}
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("nil histogram quantile = %v", q)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestInvalidMetricNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid name did not panic")
		}
	}()
	r.Counter("bad name!", "")
}

func TestHistogramObserveAndQuantiles(t *testing.T) {
	h := NewHistogram(nil)
	// 1000 observations uniform in (0, 100ms].
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) * 100e-6)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-50.05) > 1e-9*50.05 {
		t.Fatalf("sum = %v, want 50.05", h.Sum())
	}
	// Log-bucketed estimates are within a factor of 2 of the truth.
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 0.05}, {0.9, 0.09}, {0.99, 0.099},
	} {
		got := h.Quantile(tc.q)
		if got < tc.want/2 || got > tc.want*2 {
			t.Fatalf("p%v = %v, want within 2x of %v", tc.q*100, got, tc.want)
		}
	}
}

func TestHistogramCustomBoundsAndOverflow(t *testing.T) {
	h := NewHistogram(CountBounds(4)) // 1 2 4 8
	for _, v := range []float64{0.5, 2, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{1, 1, 1, 0, 1} // le=1, le=2, le=4, le=8, +Inf
	for i, c := range want {
		if s.Counts[i] != c {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, s.Counts[i], c, s.Counts)
		}
	}
	// Everything in the +Inf bucket: quantile reports the last bound.
	h2 := NewHistogram(CountBounds(2))
	h2.Observe(50)
	if q := h2.Quantile(0.5); q != 2 {
		t.Fatalf("overflow quantile = %v, want 2", q)
	}
}

// TestRegistryConcurrentAccess hammers counters, gauges, histograms and
// a vec from many goroutines while a scraper snapshots in a loop,
// asserting counter monotonicity across snapshots. Run under -race this
// is the registry's central safety test.
func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000

	c := r.Counter("hits_total", "")
	g := r.Gauge("level", "")
	h := r.Histogram("lat_seconds", "")
	vec := r.HistogramVec("route_seconds", "", "route", nil)

	var writers, scraper sync.WaitGroup
	stop := make(chan struct{})
	scrapeErr := make(chan error, 1)
	scraper.Add(1)
	go func() { // scraper: snapshots must observe monotone counters
		defer scraper.Done()
		var last int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := r.Snapshot()
			if v := snap["hits_total"]; v < last {
				select {
				case scrapeErr <- fmt.Errorf("counter regressed: %d -> %d", last, v):
				default:
				}
				return
			} else {
				last = v
			}
			h.Quantile(0.99)
			_ = vec.Labels()
		}
	}()
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			route := fmt.Sprintf("r%d", w%3)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) * 1e-6)
				vec.With(route).Observe(float64(i) * 1e-6)
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	scraper.Wait()
	select {
	case err := <-scrapeErr:
		t.Fatal(err)
	default:
	}
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	var vecTotal uint64
	for _, label := range vec.Labels() {
		vecTotal += vec.With(label).Count()
	}
	if vecTotal != workers*perWorker {
		t.Fatalf("vec count = %d, want %d", vecTotal, workers*perWorker)
	}
}
