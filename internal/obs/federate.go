package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Metrics federation: parse each node's Prometheus text exposition,
// relabel every sample with the node's identity, and render one
// cluster-level exposition that additionally carries exact aggregates —
// counters summed, histograms merged bucket-wise (every node uses the
// same log-bucketed bounds, so cumulative bucket counts sum losslessly).
//
// The router serves the result at GET /metrics?federate=1.

// Sample is one parsed sample line. Name is the full sample name — for
// histograms that is the family name plus _bucket/_sum/_count. Labels
// is the rendered pair list inside the braces ("" when bare).
type Sample struct {
	Name   string
	Labels string
	Value  float64
}

// Family is one parsed metric family in input order.
type Family struct {
	Name    string
	Help    string
	Type    string // counter, gauge, histogram, summary or untyped
	Samples []Sample
}

// Label is one label pair, used both when parsing sample label blocks
// and when naming the identity labels a federated node injects.
type Label struct {
	Name  string
	Value string
}

// NodeExposition is one node's parsed exposition plus the identity
// labels (instance, role, shard, …) to stamp onto its samples. A label
// already present on a sample is never overridden — shard registries
// stamp their own role/shard const labels and those win.
type NodeExposition struct {
	Labels   []Label
	Families []Family
}

// ParseExposition parses the Prometheus text format as produced by
// Registry.WritePrometheus (and by WriteFederated). Histogram sample
// lines (name_bucket/name_sum/name_count) attach to their declared
// family; samples with no preceding TYPE declaration become untyped
// families of their own. Timestamps are dropped.
func ParseExposition(r io.Reader) ([]Family, error) {
	var (
		families []Family
		index    = make(map[string]int)
	)
	family := func(name string) *Family {
		if i, ok := index[name]; ok {
			return &families[i]
		}
		index[name] = len(families)
		families = append(families, Family{Name: name, Type: "untyped"})
		return &families[len(families)-1]
	}
	// sampleFamily resolves which family a sample line belongs to:
	// exact name first, then the histogram/summary base name when the
	// sample carries one of the synthetic suffixes.
	sampleFamily := func(name string) *Family {
		if i, ok := index[name]; ok {
			return &families[i]
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base, ok := strings.CutSuffix(name, suffix)
			if !ok {
				continue
			}
			if i, ok := index[base]; ok && (families[i].Type == "histogram" || families[i].Type == "summary") {
				return &families[i]
			}
		}
		return family(name)
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 {
				return nil, fmt.Errorf("obs: federate: line %d: bad comment %q", lineNo, line)
			}
			switch fields[1] {
			case "HELP":
				f := family(fields[2])
				f.Help = strings.TrimSpace(strings.TrimPrefix(line, fields[0]+" HELP "+fields[2]))
			case "TYPE":
				if len(fields) != 4 {
					return nil, fmt.Errorf("obs: federate: line %d: bad TYPE line %q", lineNo, line)
				}
				family(fields[2]).Type = fields[3]
			default:
				return nil, fmt.Errorf("obs: federate: line %d: bad comment %q", lineNo, line)
			}
			continue
		}
		name, rest, err := splitSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: federate: line %d: %v", lineNo, err)
		}
		labels := ""
		if brace := strings.IndexByte(line, '{'); brace != -1 && brace < len(line)-len(rest) {
			end := strings.LastIndexByte(line[:len(line)-len(rest)], '}')
			if end > brace {
				labels = line[brace+1 : end]
			}
		}
		fields := strings.Fields(rest)
		if len(fields) < 1 {
			return nil, fmt.Errorf("obs: federate: line %d: sample %q has no value", lineNo, line)
		}
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("obs: federate: line %d: bad sample value %q", lineNo, fields[0])
		}
		f := sampleFamily(name)
		f.Samples = append(f.Samples, Sample{Name: name, Labels: labels, Value: v})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: federate: %w", err)
	}
	return families, nil
}

// identityLabel reports whether a label names node identity rather than
// a metric dimension. Identity labels are stripped when grouping
// samples for the cluster-level aggregates, so the same logical series
// on different nodes sums into one.
func identityLabel(name string) bool {
	switch name {
	case "instance", "role", "shard", "ring_epoch":
		return true
	}
	return false
}

// parseLabelPairs splits a rendered label block (`a="x",b="y"`) into
// pairs, honoring escapes inside quoted values.
func parseLabelPairs(s string) []Label {
	var out []Label
	i := 0
	for i < len(s) {
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			break
		}
		name := strings.TrimSpace(s[i : i+eq])
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			break
		}
		i++
		var val strings.Builder
		escaped := false
		for i < len(s) {
			c := s[i]
			if escaped {
				val.WriteByte(c)
				escaped = false
				i++
				continue
			}
			if c == '\\' {
				escaped = true
				i++
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
			i++
		}
		i++ // past the closing quote
		out = append(out, Label{Name: name, Value: val.String()})
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
	return out
}

func renderLabelPairs(pairs []Label) string {
	parts := make([]string, 0, len(pairs))
	for _, p := range pairs {
		parts = append(parts, fmt.Sprintf("%s=%q", p.Name, p.Value))
	}
	return strings.Join(parts, ",")
}

// hasLabelName reports whether the parsed pair list contains name.
func hasLabelName(pairs []Label, name string) bool {
	for _, p := range pairs {
		if p.Name == name {
			return true
		}
	}
	return false
}

// WriteFederated renders one cluster-level exposition from per-node
// expositions. Per family (first-seen HELP/TYPE win):
//
//   - every node's samples are re-emitted with the node's identity
//     labels injected (labels already present on the sample, such as a
//     shard registry's own role/shard const labels, are kept as-is);
//   - counter and histogram families additionally get aggregate series
//     labeled instance="cluster": samples are grouped by their
//     non-identity labels and summed. All nodes share the same
//     log-bucketed histogram bounds, so per-bucket cumulative counts
//     sum exactly — the merge is lossless, not an approximation.
//
// Gauges are point-in-time per-node facts; they federate with identity
// labels but are never summed. The output passes ValidateExposition.
func WriteFederated(w io.Writer, nodes []NodeExposition) error {
	type nodeFamily struct {
		node   int
		family *Family
	}
	var (
		order  []string
		merged = make(map[string][]nodeFamily)
	)
	for n := range nodes {
		for i := range nodes[n].Families {
			f := &nodes[n].Families[i]
			if _, ok := merged[f.Name]; !ok {
				order = append(order, f.Name)
			}
			merged[f.Name] = append(merged[f.Name], nodeFamily{node: n, family: f})
		}
	}

	bw := bufio.NewWriter(w)
	for _, name := range order {
		parts := merged[name]
		help, typ := parts[0].family.Help, parts[0].family.Type
		for _, p := range parts[1:] {
			if help == "" {
				help = p.family.Help
			}
		}
		if help == "" {
			help = name
		}
		fmt.Fprintf(bw, "# HELP %s %s\n", name, escapeHelp(help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, typ)

		type group struct {
			name   string
			labels string // non-identity labels, rendered
			sum    float64
		}
		var (
			groups   []*group
			groupIdx = make(map[string]*group)
		)
		for _, p := range parts {
			identity := nodes[p.node].Labels
			for _, s := range p.family.Samples {
				pairs := parseLabelPairs(s.Labels)
				inject := make([]Label, 0, len(identity))
				for _, l := range identity {
					if !hasLabelName(pairs, l.Name) {
						inject = append(inject, l)
					}
				}
				labels := mergeLabels(renderLabelPairs(inject), s.Labels)
				if labels != "" {
					fmt.Fprintf(bw, "%s{%s} %s\n", s.Name, labels, formatFloat(s.Value))
				} else {
					fmt.Fprintf(bw, "%s %s\n", s.Name, formatFloat(s.Value))
				}
				if typ != "counter" && typ != "histogram" {
					continue
				}
				kept := pairs[:0:0]
				for _, pr := range pairs {
					if !identityLabel(pr.Name) {
						kept = append(kept, pr)
					}
				}
				key := s.Name + "\x00" + renderLabelPairs(kept)
				g, ok := groupIdx[key]
				if !ok {
					g = &group{name: s.Name, labels: renderLabelPairs(kept)}
					groupIdx[key] = g
					groups = append(groups, g)
				}
				g.sum += s.Value
			}
		}
		for _, g := range groups {
			labels := mergeLabels(`instance="cluster"`, g.labels)
			fmt.Fprintf(bw, "%s{%s} %s\n", g.name, labels, formatFloat(g.sum))
		}
	}
	return bw.Flush()
}
