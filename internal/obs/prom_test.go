package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestWritePrometheusAndValidate(t *testing.T) {
	r := NewRegistry()
	r.Counter("flows_total", "flows received").Add(3)
	r.Gauge("store_windows", "retained windows").Set(7)
	r.GaugeFunc("uptime_seconds", "seconds since boot", func() int64 { return 42 })
	h := r.Histogram("wal_fsync_seconds", "WAL fsync latency")
	h.Observe(0.001)
	h.Observe(0.004)
	vec := r.HistogramVec("http_request_seconds", "request latency by route", "route", nil)
	vec.With("post_v1_flows").Observe(0.002)
	vec.With("get_metrics").Observe(0.0001)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	families, err := ValidateExposition(strings.NewReader(out))
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, out)
	}
	want := map[string]string{
		"flows_total":          "counter",
		"store_windows":        "gauge",
		"uptime_seconds":       "gauge",
		"wal_fsync_seconds":    "histogram",
		"http_request_seconds": "histogram",
	}
	for name, typ := range want {
		if families[name] != typ {
			t.Fatalf("family %s = %q, want %q\n%s", name, families[name], typ, out)
		}
	}
	for _, line := range []string{
		"flows_total 3",
		"store_windows 7",
		"uptime_seconds 42",
		"wal_fsync_seconds_count 2",
		`http_request_seconds_bucket{route="post_v1_flows",le="+Inf"} 1`,
		`http_request_seconds_count{route="post_v1_flows"} 1`,
		`http_request_seconds_count{route="get_metrics"} 1`,
	} {
		if !strings.Contains(out, line) {
			t.Fatalf("exposition missing %q:\n%s", line, out)
		}
	}
	// Buckets are cumulative: the +Inf bucket equals the count.
	if !strings.Contains(out, `wal_fsync_seconds_bucket{le="+Inf"} 2`) {
		t.Fatalf("missing +Inf bucket:\n%s", out)
	}
}

func TestWritePrometheusConstLabelsAndCounterVec(t *testing.T) {
	r := NewRegistry()
	r.Counter("flows_total", "flows received").Add(5)
	cv := r.CounterVec("routed_flows_total", "flows routed by shard", "shard")
	cv.With("0").Add(2)
	cv.With("1").Add(9)
	h := r.Histogram("fsync_seconds", "fsync latency")
	h.Observe(0.01)
	vec := r.HistogramVec("route_seconds", "latency by route", "route", nil)
	vec.With("get_metrics").Observe(0.001)
	r.SetConstLabels(map[string]string{"role": "primary", "ring_epoch": "42"})

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if _, err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, out)
	}
	for _, line := range []string{
		`flows_total{ring_epoch="42",role="primary"} 5`,
		`routed_flows_total{ring_epoch="42",role="primary",shard="0"} 2`,
		`routed_flows_total{ring_epoch="42",role="primary",shard="1"} 9`,
		`fsync_seconds_count{ring_epoch="42",role="primary"} 1`,
		`route_seconds_count{ring_epoch="42",role="primary",route="get_metrics"} 1`,
	} {
		if !strings.Contains(out, line) {
			t.Fatalf("exposition missing %q:\n%s", line, out)
		}
	}
	// Clearing restores bare samples, and the JSON snapshot flattens
	// the counter vec without const labels either way.
	r.SetConstLabels(nil)
	buf.Reset()
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "flows_total 5") {
		t.Fatalf("const labels not cleared:\n%s", buf.String())
	}
	snap := r.Snapshot()
	if snap["routed_flows_total_0"] != 2 || snap["routed_flows_total_1"] != 9 {
		t.Fatalf("snapshot missing counter-vec keys: %v", snap)
	}
}

func TestValidateExpositionRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"no_value_here",
		"name{unclosed=\"x\" 3",
		"name not-a-number",
		"# TYPE x sometype",
		"# BOGUS x y",
		"1leading_digit 3",
		"name 3 not-a-timestamp",
	} {
		if _, err := ValidateExposition(strings.NewReader(bad)); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
	// Valid corner cases.
	for _, good := range []string{
		"name 3.5e-7",
		"name{a=\"with } brace\",b=\"x\"} 1",
		"name 3 1700000000000",
		"# HELP name some help text",
		"",
	} {
		if _, err := ValidateExposition(strings.NewReader(good)); err != nil {
			t.Fatalf("rejected %q: %v", good, err)
		}
	}
}
