package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestWritePrometheusAndValidate(t *testing.T) {
	r := NewRegistry()
	r.Counter("flows_total", "flows received").Add(3)
	r.Gauge("store_windows", "retained windows").Set(7)
	r.GaugeFunc("uptime_seconds", "seconds since boot", func() int64 { return 42 })
	h := r.Histogram("wal_fsync_seconds", "WAL fsync latency")
	h.Observe(0.001)
	h.Observe(0.004)
	vec := r.HistogramVec("http_request_seconds", "request latency by route", "route", nil)
	vec.With("post_v1_flows").Observe(0.002)
	vec.With("get_metrics").Observe(0.0001)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	families, err := ValidateExposition(strings.NewReader(out))
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, out)
	}
	want := map[string]string{
		"flows_total":          "counter",
		"store_windows":        "gauge",
		"uptime_seconds":       "gauge",
		"wal_fsync_seconds":    "histogram",
		"http_request_seconds": "histogram",
	}
	for name, typ := range want {
		if families[name] != typ {
			t.Fatalf("family %s = %q, want %q\n%s", name, families[name], typ, out)
		}
	}
	for _, line := range []string{
		"flows_total 3",
		"store_windows 7",
		"uptime_seconds 42",
		"wal_fsync_seconds_count 2",
		`http_request_seconds_bucket{route="post_v1_flows",le="+Inf"} 1`,
		`http_request_seconds_count{route="post_v1_flows"} 1`,
		`http_request_seconds_count{route="get_metrics"} 1`,
	} {
		if !strings.Contains(out, line) {
			t.Fatalf("exposition missing %q:\n%s", line, out)
		}
	}
	// Buckets are cumulative: the +Inf bucket equals the count.
	if !strings.Contains(out, `wal_fsync_seconds_bucket{le="+Inf"} 2`) {
		t.Fatalf("missing +Inf bucket:\n%s", out)
	}
}

func TestValidateExpositionRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"no_value_here",
		"name{unclosed=\"x\" 3",
		"name not-a-number",
		"# TYPE x sometype",
		"# BOGUS x y",
		"1leading_digit 3",
		"name 3 not-a-timestamp",
	} {
		if _, err := ValidateExposition(strings.NewReader(bad)); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
	// Valid corner cases.
	for _, good := range []string{
		"name 3.5e-7",
		"name{a=\"with } brace\",b=\"x\"} 1",
		"name 3 1700000000000",
		"# HELP name some help text",
		"",
	} {
		if _, err := ValidateExposition(strings.NewReader(good)); err != nil {
			t.Fatalf("rejected %q: %v", good, err)
		}
	}
}
