package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): # HELP / # TYPE comments followed
// by sample lines, histograms as cumulative _bucket{le=...} series plus
// _sum and _count. Families appear in registration order; a vec's
// label values in creation order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	konst := r.constLabelString()
	for _, m := range r.families() {
		fmt.Fprintf(bw, "# HELP %s %s\n", m.name, escapeHelp(m.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, m.kind)
		switch m.kind {
		case kindCounter:
			writeSample(bw, m.name, konst, m.counter.Value())
		case kindGauge:
			writeSample(bw, m.name, konst, m.gauge.Value())
		case kindGaugeFunc:
			var v int64
			if m.gaugeFn != nil {
				v = m.gaugeFn()
			}
			writeSample(bw, m.name, konst, v)
		case kindHistogram:
			writeHistogram(bw, m.name, konst, m.hist.Snapshot())
		case kindHistogramVec:
			m.vec.mu.RLock()
			values := append([]string(nil), m.vec.order...)
			m.vec.mu.RUnlock()
			for _, value := range values {
				label := mergeLabels(konst, fmt.Sprintf("%s=%q", m.vec.label, value))
				writeHistogram(bw, m.name, label, m.vec.With(value).Snapshot())
			}
		case kindCounterVec:
			m.cvec.mu.RLock()
			values := append([]string(nil), m.cvec.order...)
			m.cvec.mu.RUnlock()
			for _, value := range values {
				label := mergeLabels(konst, fmt.Sprintf("%s=%q", m.cvec.label, value))
				fmt.Fprintf(bw, "%s{%s} %d\n", m.name, label, m.cvec.With(value).Value())
			}
		case kindGaugeVec:
			m.gvec.mu.RLock()
			values := append([]string(nil), m.gvec.order...)
			m.gvec.mu.RUnlock()
			for _, value := range values {
				label := mergeLabels(konst, fmt.Sprintf("%s=%q", m.gvec.label, value))
				fmt.Fprintf(bw, "%s{%s} %d\n", m.name, label, m.gvec.With(value).Value())
			}
		}
	}
	return bw.Flush()
}

// writeSample emits one scalar sample, with const labels when present.
func writeSample(w io.Writer, name, label string, v int64) {
	if label != "" {
		fmt.Fprintf(w, "%s{%s} %d\n", name, label, v)
		return
	}
	fmt.Fprintf(w, "%s %d\n", name, v)
}

// mergeLabels joins rendered label-pair lists, skipping empty parts.
func mergeLabels(parts ...string) string {
	out := ""
	for _, p := range parts {
		if p == "" {
			continue
		}
		if out != "" {
			out += ","
		}
		out += p
	}
	return out
}

// writeHistogram emits one histogram series. label is either "" or a
// rendered `name="value"` pair to merge with the le label.
func writeHistogram(w io.Writer, name, label string, s HistSnapshot) {
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.Bounds) {
			le = formatFloat(s.Bounds[i])
		}
		if label != "" {
			fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", name, label, le, cum)
		} else {
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum)
		}
	}
	suffix := ""
	if label != "" {
		suffix = "{" + label + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, suffix, formatFloat(s.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, cum)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines per the text format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// ValidateExposition is a simple line-format checker for the
// Prometheus text exposition: every line must be a # HELP or # TYPE
// comment, blank, or a sample `name{labels} value [timestamp]` whose
// name is grammatical, whose braces balance, and whose value parses as
// a float. It returns family name → declared type for every # TYPE
// seen. It is deliberately small — a smoke gate that catches malformed
// output, not a full parser.
func ValidateExposition(r io.Reader) (map[string]string, error) {
	families := make(map[string]string)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("obs: line %d: bad comment %q", lineNo, line)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("obs: line %d: bad TYPE line %q", lineNo, line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("obs: line %d: bad metric type %q", lineNo, fields[3])
				}
				families[fields[2]] = fields[3]
			}
			continue
		}
		name, rest, err := splitSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %v", lineNo, err)
		}
		if !validName(name) {
			return nil, fmt.Errorf("obs: line %d: bad metric name %q", lineNo, name)
		}
		fields := strings.Fields(rest)
		if len(fields) < 1 || len(fields) > 2 {
			return nil, fmt.Errorf("obs: line %d: want `value [timestamp]`, got %q", lineNo, rest)
		}
		if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
			return nil, fmt.Errorf("obs: line %d: bad sample value %q", lineNo, fields[0])
		}
		if len(fields) == 2 {
			if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
				return nil, fmt.Errorf("obs: line %d: bad timestamp %q", lineNo, fields[1])
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	return families, nil
}

// splitSample splits `name{labels} value...` into the metric name and
// the remainder after the optional label block, checking that the label
// block's quotes and braces are well-formed.
func splitSample(line string) (name, rest string, err error) {
	brace := strings.IndexByte(line, '{')
	space := strings.IndexByte(line, ' ')
	if brace == -1 || (space != -1 && space < brace) {
		if space == -1 {
			return "", "", fmt.Errorf("sample %q has no value", line)
		}
		return line[:space], line[space+1:], nil
	}
	name = line[:brace]
	inQuote, escaped := false, false
	for i := brace + 1; i < len(line); i++ {
		c := line[i]
		switch {
		case escaped:
			escaped = false
		case inQuote && c == '\\':
			escaped = true
		case c == '"':
			inQuote = !inQuote
		case c == '}' && !inQuote:
			return name, strings.TrimSpace(line[i+1:]), nil
		}
	}
	return "", "", fmt.Errorf("unbalanced label braces in %q", line)
}
