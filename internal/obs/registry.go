// Package obs is the module's dependency-free observability layer: a
// metrics registry (counters, gauges, log-bucketed latency histograms
// with quantile estimates), Prometheus text exposition, and lightweight
// span tracing with slow-operation logging via log/slog. It is the
// telemetry substrate threaded through the serving stack — the HTTP
// handlers, the WAL, the snapshot store, the streaming pipeline and the
// pairwise-distance engine all record into one Registry so a single
// scrape shows where a request actually spent its time.
//
// Design constraints, in order:
//
//  1. Hot-path writes are lock-free: counters and gauges are single
//     atomic adds, a histogram observation is two atomic adds plus one
//     atomic bucket increment. Registration (name → metric) takes a
//     mutex but happens once at startup.
//  2. Every metric handle is nil-receiver safe. Instrumented packages
//     (wal, store, stream, distmat) accept optional handles and call
//     them unconditionally; a nil handle is a no-op, so library users
//     who never configure a Registry pay one predictable branch.
//  3. Counters are monotone by construction (negative adds are
//     rejected), so scrapers may rate() every counter in a snapshot.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically non-decreasing int64. The zero value is
// ready to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter. Negative deltas are ignored: counters
// are monotone so scrapers can rate() them.
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 value. The zero value is ready to
// use; a nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (either direction).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value reports the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// metricKind discriminates registry entries for rendering.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
	kindHistogramVec
	kindCounterVec
	kindGaugeVec
)

func (k metricKind) String() string {
	switch k {
	case kindCounter, kindCounterVec:
		return "counter"
	case kindGauge, kindGaugeFunc, kindGaugeVec:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered family.
type metric struct {
	name, help string
	kind       metricKind

	counter *Counter
	gauge   *Gauge
	gaugeFn func() int64
	hist    *Histogram
	vec     *HistogramVec
	cvec    *CounterVec
	gvec    *GaugeVec
}

// Registry is a named collection of metrics. Registration methods are
// get-or-create: asking twice for the same name and kind returns the
// same handle, so independent subsystems can share one registry without
// coordinating, and restarts of a subcomponent re-bind cleanly. Asking
// for an existing name with a different kind panics — that is a
// programming error, not an operational condition.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]*metric
	order  []*metric // registration order, for stable exposition
	// constLabels is the pre-rendered `k="v",...` pair list stamped on
	// every exposition sample (node identity in a cluster); "" when the
	// registry carries none.
	constLabels string
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// validName enforces the Prometheus metric-name grammar so every
// registered family renders as valid exposition.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register looks up or creates the named family, panicking on a name
// reused with a different kind.
func (r *Registry) register(name, help string, kind metricKind, build func(*metric)) *metric {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind}
	build(m)
	r.byName[name] = m
	r.order = append(r.order, m)
	return m
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, func(m *metric) { m.counter = &Counter{} }).counter
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, func(m *metric) { m.gauge = &Gauge{} }).gauge
}

// GaugeFunc registers a gauge computed at scrape time (e.g. uptime).
// Re-registering replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	m := r.register(name, help, kindGaugeFunc, func(m *metric) {})
	r.mu.Lock()
	m.gaugeFn = fn
	r.mu.Unlock()
}

// Histogram returns the named histogram with the default log-spaced
// latency buckets (seconds, 1µs up to ~2 minutes), creating it on
// first use.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.HistogramWith(name, help, nil)
}

// HistogramWith is Histogram with explicit bucket upper bounds
// (ascending; nil means the default latency buckets). Bounds are fixed
// at first registration; later callers get the existing histogram.
func (r *Registry) HistogramWith(name, help string, bounds []float64) *Histogram {
	return r.register(name, help, kindHistogram, func(m *metric) {
		m.hist = NewHistogram(bounds)
	}).hist
}

// HistogramVec returns the named histogram family partitioned by one
// label (e.g. per-route request latency), creating it on first use.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	return r.register(name, help, kindHistogramVec, func(m *metric) {
		m.vec = newHistogramVec(label, bounds)
	}).vec
}

// CounterVec returns the named counter family partitioned by one label
// (e.g. routed flows by shard), creating it on first use.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return r.register(name, help, kindCounterVec, func(m *metric) {
		m.cvec = newCounterVec(label)
	}).cvec
}

// GaugeVec returns the named gauge family partitioned by one label
// (e.g. replication lag by shard), creating it on first use.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	return r.register(name, help, kindGaugeVec, func(m *metric) {
		m.gvec = newGaugeVec(label)
	}).gvec
}

// SetConstLabels stamps every sample the registry renders with the
// given label pairs — node identity (shard index, role, ring epoch) in
// a cluster deployment, so one Prometheus scrape across the fleet
// stays distinguishable per node. Pairs render sorted by name; label
// names must be grammatical and must not collide with any vec family's
// partition label, values are escaped. Calling again replaces the set;
// an empty map clears it. The flat JSON Snapshot is unaffected.
func (r *Registry) SetConstLabels(labels map[string]string) {
	names := make([]string, 0, len(labels))
	for name := range labels {
		if !validName(name) {
			panic(fmt.Sprintf("obs: invalid const label name %q", name))
		}
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, name := range names {
		parts[i] = fmt.Sprintf("%s=%q", name, labels[name])
	}
	rendered := ""
	if len(parts) > 0 {
		rendered = parts[0]
		for _, p := range parts[1:] {
			rendered += "," + p
		}
	}
	r.mu.Lock()
	r.constLabels = rendered
	r.mu.Unlock()
}

// constLabelString reports the rendered const-label pair list.
func (r *Registry) constLabelString() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.constLabels
}

// families returns the registered metrics in registration order.
func (r *Registry) families() []*metric {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]*metric(nil), r.order...)
}

// Snapshot renders every counter, gauge and gauge-func as a flat
// name → value map — the backward-compatible JSON /metrics shape.
// Histograms are omitted (their sums are float-valued); callers that
// want histogram-derived keys add them explicitly with chosen units.
func (r *Registry) Snapshot() map[string]int64 {
	out := make(map[string]int64)
	for _, m := range r.families() {
		switch m.kind {
		case kindCounter:
			out[m.name] = m.counter.Value()
		case kindGauge:
			out[m.name] = m.gauge.Value()
		case kindGaugeFunc:
			if m.gaugeFn != nil {
				out[m.name] = m.gaugeFn()
			}
		case kindCounterVec:
			// Flat-map form: one key per label value, value sanitized
			// into the key grammar (shard indexes are already clean).
			for _, v := range m.cvec.Labels() {
				out[m.name+"_"+sanitizeKeyPart(v)] = m.cvec.With(v).Value()
			}
		case kindGaugeVec:
			for _, v := range m.gvec.Labels() {
				out[m.name+"_"+sanitizeKeyPart(v)] = m.gvec.With(v).Value()
			}
		}
	}
	return out
}

// sanitizeKeyPart maps an arbitrary label value into the snapshot key
// grammar, replacing anything outside [a-zA-Z0-9_] with '_'.
func sanitizeKeyPart(s string) string {
	out := []byte(s)
	for i := 0; i < len(out); i++ {
		c := out[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// HistogramVec partitions a histogram family by one label value, e.g.
// HTTP request latency by route. With() is goroutine-safe and
// get-or-create; the per-label histograms share one bucket layout.
type HistogramVec struct {
	label  string
	bounds []float64

	mu    sync.RWMutex
	kids  map[string]*Histogram
	order []string
}

func newHistogramVec(label string, bounds []float64) *HistogramVec {
	if !validName(label) {
		panic(fmt.Sprintf("obs: invalid label name %q", label))
	}
	return &HistogramVec{label: label, bounds: bounds, kids: make(map[string]*Histogram)}
}

// With returns the histogram for the given label value, creating it on
// first use. A nil vec returns a nil (no-op) histogram.
func (v *HistogramVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	h, ok := v.kids[value]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.kids[value]; ok {
		return h
	}
	h = NewHistogram(v.bounds)
	v.kids[value] = h
	v.order = append(v.order, value)
	return h
}

// Labels returns the label values seen so far, sorted.
func (v *HistogramVec) Labels() []string {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	out := append([]string(nil), v.order...)
	v.mu.RUnlock()
	sort.Strings(out)
	return out
}

// CounterVec partitions a counter family by one label value, e.g.
// routed flow counts by shard. With() is goroutine-safe and
// get-or-create; a nil vec hands out nil (no-op) counters.
type CounterVec struct {
	label string

	mu    sync.RWMutex
	kids  map[string]*Counter
	order []string
}

func newCounterVec(label string) *CounterVec {
	if !validName(label) {
		panic(fmt.Sprintf("obs: invalid label name %q", label))
	}
	return &CounterVec{label: label, kids: make(map[string]*Counter)}
}

// With returns the counter for the given label value, creating it on
// first use.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	c, ok := v.kids[value]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.kids[value]; ok {
		return c
	}
	c = &Counter{}
	v.kids[value] = c
	v.order = append(v.order, value)
	return c
}

// Labels returns the label values seen so far, sorted.
func (v *CounterVec) Labels() []string {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	out := append([]string(nil), v.order...)
	v.mu.RUnlock()
	sort.Strings(out)
	return out
}

// GaugeVec partitions a gauge family by one label value, e.g.
// follower replication lag by shard. With() is goroutine-safe and
// get-or-create; a nil vec hands out nil (no-op) gauges.
type GaugeVec struct {
	label string

	mu    sync.RWMutex
	kids  map[string]*Gauge
	order []string
}

func newGaugeVec(label string) *GaugeVec {
	if !validName(label) {
		panic(fmt.Sprintf("obs: invalid label name %q", label))
	}
	return &GaugeVec{label: label, kids: make(map[string]*Gauge)}
}

// With returns the gauge for the given label value, creating it on
// first use.
func (v *GaugeVec) With(value string) *Gauge {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	g, ok := v.kids[value]
	v.mu.RUnlock()
	if ok {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g, ok := v.kids[value]; ok {
		return g
	}
	g = &Gauge{}
	v.kids[value] = g
	v.order = append(v.order, value)
	return g
}

// Labels returns the label values seen so far, sorted.
func (v *GaugeVec) Labels() []string {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	out := append([]string(nil), v.order...)
	v.mu.RUnlock()
	sort.Strings(out)
	return out
}
