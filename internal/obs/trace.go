package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader is the HTTP header carrying a serialized TraceContext on
// cross-process calls, traceparent-shaped: "traceid-spanid".
const TraceHeader = "X-Sig-Trace"

// TraceContext identifies a position inside a distributed trace: the
// trace's ID plus the span under which downstream work should attach.
// The zero value is invalid and propagates nothing.
type TraceContext struct {
	TraceID string
	SpanID  string
}

// Valid reports whether the context carries both halves.
func (tc TraceContext) Valid() bool {
	return tc.TraceID != "" && tc.SpanID != ""
}

// String serializes the context in the wire shape "traceid-spanid"
// ("" when invalid).
func (tc TraceContext) String() string {
	if !tc.Valid() {
		return ""
	}
	return tc.TraceID + "-" + tc.SpanID
}

// ParseTraceContext parses the wire shape back into a context. Span IDs
// never contain '-', so the split is on the last dash; trace IDs may
// contain dashes (the entropy-less "seq-…" fallback). Anything
// malformed yields the zero (invalid) context, so callers can feed a
// raw header value straight in.
func ParseTraceContext(s string) TraceContext {
	i := strings.LastIndexByte(s, '-')
	if i <= 0 || i == len(s)-1 {
		return TraceContext{}
	}
	return TraceContext{TraceID: s[:i], SpanID: s[i+1:]}
}

// Tracer mints per-request traces and retains a bounded ring of the
// most recent finished ones (served by GET /v1/traces). Each trace is a
// flat list of named child spans with durations — enough to answer
// "where did this slow ingest batch spend its time?" without external
// infrastructure. A span whose duration meets the slow-op threshold is
// logged exactly once, as one structured line carrying the trace ID.
//
// A nil *Tracer (and the nil *Trace it starts) is a no-op, so tracing
// can be compiled into hot paths unconditionally.
type Tracer struct {
	capacity int
	slow     time.Duration
	logger   *slog.Logger
	seq      atomic.Uint64

	mu    sync.Mutex
	ring  []TraceSnapshot // circular, len ≤ capacity
	next  int             // ring insertion point once full
	total uint64          // traces ever finished
}

// NewTracer builds a tracer retaining up to capacity finished traces
// (≤ 0 means 64). slow is the span duration at or above which a span is
// logged through logger (0 disables slow-op logging; a nil logger
// disables it too).
func NewTracer(capacity int, slow time.Duration, logger *slog.Logger) *Tracer {
	if capacity <= 0 {
		capacity = 64
	}
	return &Tracer{capacity: capacity, slow: slow, logger: logger}
}

// newTraceID returns a 16-hex-char random ID, falling back to a
// sequence number when entropy is unavailable.
func (t *Tracer) newTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("seq-%012d", t.seq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// newSpanID returns an 8-hex-char random span ID. The fallback is
// dash-free on purpose: ParseTraceContext splits on the last dash.
func (t *Tracer) newSpanID() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("span%010d", t.seq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// Start begins a trace. Finish it to archive it into the ring.
func (t *Tracer) Start(name string) *Trace {
	if t == nil {
		return nil
	}
	return &Trace{tracer: t, id: t.newTraceID(), span: t.newSpanID(), name: name, start: time.Now()}
}

// StartRemote begins a trace that adopts an inbound context: the trace
// shares tc's trace ID and records tc's span as its parent, so rings on
// both sides of a cross-process call stitch on (trace ID, span
// parentage). An invalid context falls back to Start.
func (t *Tracer) StartRemote(name string, tc TraceContext) *Trace {
	if t == nil {
		return nil
	}
	if !tc.Valid() {
		return t.Start(name)
	}
	return &Trace{
		tracer: t, id: tc.TraceID, span: t.newSpanID(), parent: tc.SpanID,
		name: name, start: time.Now(),
	}
}

// SpanSnapshot is one finished child span. SpanID is set only for
// spans opened with SpanWith — the ones whose context was handed to a
// downstream node, which names it as ParentSpanID in its own ring.
type SpanSnapshot struct {
	Name           string `json:"name"`
	SpanID         string `json:"span_id,omitempty"`
	OffsetMicros   int64  `json:"offset_micros"` // start relative to the trace start
	DurationMicros int64  `json:"duration_micros"`
}

// TraceSnapshot is one finished trace, as served by /v1/traces.
// ParentSpanID is set on traces started via StartRemote: the upstream
// span this trace is a child segment of.
type TraceSnapshot struct {
	ID             string         `json:"id"`
	Name           string         `json:"name"`
	SpanID         string         `json:"span_id,omitempty"`
	ParentSpanID   string         `json:"parent_span_id,omitempty"`
	Start          time.Time      `json:"start"`
	DurationMicros int64          `json:"duration_micros"`
	Slow           bool           `json:"slow,omitempty"`
	Spans          []SpanSnapshot `json:"spans,omitempty"`
}

// Trace is an in-flight trace. Span and Finish are goroutine-safe,
// though the serving stack runs each trace on one goroutine.
type Trace struct {
	tracer *Tracer
	id     string
	span   string // this trace's own span ID
	parent string // upstream span ID when adopted via StartRemote
	name   string
	start  time.Time

	mu    sync.Mutex
	spans []SpanSnapshot
	slow  bool
}

// ID reports the trace ID ("" for a nil trace).
func (tr *Trace) ID() string {
	if tr == nil {
		return ""
	}
	return tr.id
}

// Context returns the trace's propagation context — its trace ID plus
// its own span ID — for stamping onto outbound calls that should
// attach directly under the trace root (zero for a nil trace; see
// SpanWith for attaching under a specific child span).
func (tr *Trace) Context() TraceContext {
	if tr == nil {
		return TraceContext{}
	}
	return TraceContext{TraceID: tr.id, SpanID: tr.span}
}

// Span starts a named child span and returns the function that ends
// it. Ending a span whose duration reaches the tracer's slow-op
// threshold emits exactly one structured log line with the trace ID.
func (tr *Trace) Span(name string) func() {
	if tr == nil {
		return func() {}
	}
	return tr.endFunc(name, "")
}

// SpanWith is Span plus a minted per-span context: the returned
// TraceContext carries the trace ID and a fresh span ID that is
// recorded on the span's snapshot, so work dispatched under this span
// (a per-shard call, say) names exactly this span as its parent on the
// far side.
func (tr *Trace) SpanWith(name string) (func(), TraceContext) {
	if tr == nil {
		return func() {}, TraceContext{}
	}
	sid := tr.tracer.newSpanID()
	return tr.endFunc(name, sid), TraceContext{TraceID: tr.id, SpanID: sid}
}

func (tr *Trace) endFunc(name, sid string) func() {
	begin := time.Now()
	return func() {
		d := time.Since(begin)
		tr.mu.Lock()
		tr.spans = append(tr.spans, SpanSnapshot{
			Name:           name,
			SpanID:         sid,
			OffsetMicros:   begin.Sub(tr.start).Microseconds(),
			DurationMicros: d.Microseconds(),
		})
		slow := tr.tracer.slow > 0 && d >= tr.tracer.slow
		if slow {
			tr.slow = true
		}
		tr.mu.Unlock()
		if slow && tr.tracer.logger != nil {
			tr.tracer.logger.Warn("slow operation",
				"trace", tr.id, "op", tr.name, "span", name,
				"duration", d.Round(time.Microsecond).String())
		}
	}
}

// Finish ends the trace and archives it into the tracer's ring,
// evicting the oldest trace when the ring is full.
func (tr *Trace) Finish() {
	if tr == nil {
		return
	}
	t := tr.tracer
	tr.mu.Lock()
	snap := TraceSnapshot{
		ID:             tr.id,
		Name:           tr.name,
		SpanID:         tr.span,
		ParentSpanID:   tr.parent,
		Start:          tr.start,
		DurationMicros: time.Since(tr.start).Microseconds(),
		Slow:           tr.slow,
		Spans:          tr.spans,
	}
	tr.spans = nil // the snapshot owns the slice now
	tr.mu.Unlock()

	t.mu.Lock()
	if len(t.ring) < t.capacity {
		t.ring = append(t.ring, snap)
	} else {
		t.ring[t.next] = snap
		t.next = (t.next + 1) % t.capacity
	}
	t.total++
	t.mu.Unlock()
}

// Recent returns up to n finished traces, newest first (n ≤ 0 means
// all retained).
func (t *Tracer) Recent(n int) []TraceSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	size := len(t.ring)
	if n <= 0 || n > size {
		n = size
	}
	out := make([]TraceSnapshot, 0, n)
	// Newest is the slot just before the insertion point (or the slice
	// tail while the ring is still filling).
	newest := size - 1
	if size == t.capacity {
		newest = (t.next - 1 + t.capacity) % t.capacity
	}
	for i := 0; i < n; i++ {
		out = append(out, t.ring[(newest-i+size)%size])
	}
	return out
}

// Find returns the retained trace with the given ID, scanning the ring
// newest-first so an improbable ID collision resolves to the latest
// finisher. The second result is false when the trace was never
// finished here or has been evicted.
func (t *Tracer) Find(id string) (TraceSnapshot, bool) {
	if t == nil || id == "" {
		return TraceSnapshot{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	size := len(t.ring)
	if size == 0 {
		return TraceSnapshot{}, false
	}
	newest := size - 1
	if size == t.capacity {
		newest = (t.next - 1 + t.capacity) % t.capacity
	}
	for i := 0; i < size; i++ {
		if snap := t.ring[(newest-i+size)%size]; snap.ID == id {
			return snap, true
		}
	}
	return TraceSnapshot{}, false
}

// Total reports how many traces have ever finished (including ones
// evicted from the ring).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}
