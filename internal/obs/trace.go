package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer mints per-request traces and retains a bounded ring of the
// most recent finished ones (served by GET /v1/traces). Each trace is a
// flat list of named child spans with durations — enough to answer
// "where did this slow ingest batch spend its time?" without external
// infrastructure. A span whose duration meets the slow-op threshold is
// logged exactly once, as one structured line carrying the trace ID.
//
// A nil *Tracer (and the nil *Trace it starts) is a no-op, so tracing
// can be compiled into hot paths unconditionally.
type Tracer struct {
	capacity int
	slow     time.Duration
	logger   *slog.Logger
	seq      atomic.Uint64

	mu    sync.Mutex
	ring  []TraceSnapshot // circular, len ≤ capacity
	next  int             // ring insertion point once full
	total uint64          // traces ever finished
}

// NewTracer builds a tracer retaining up to capacity finished traces
// (≤ 0 means 64). slow is the span duration at or above which a span is
// logged through logger (0 disables slow-op logging; a nil logger
// disables it too).
func NewTracer(capacity int, slow time.Duration, logger *slog.Logger) *Tracer {
	if capacity <= 0 {
		capacity = 64
	}
	return &Tracer{capacity: capacity, slow: slow, logger: logger}
}

// newTraceID returns a 16-hex-char random ID, falling back to a
// sequence number when entropy is unavailable.
func (t *Tracer) newTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("seq-%012d", t.seq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// Start begins a trace. Finish it to archive it into the ring.
func (t *Tracer) Start(name string) *Trace {
	if t == nil {
		return nil
	}
	return &Trace{tracer: t, id: t.newTraceID(), name: name, start: time.Now()}
}

// SpanSnapshot is one finished child span.
type SpanSnapshot struct {
	Name           string `json:"name"`
	OffsetMicros   int64  `json:"offset_micros"` // start relative to the trace start
	DurationMicros int64  `json:"duration_micros"`
}

// TraceSnapshot is one finished trace, as served by /v1/traces.
type TraceSnapshot struct {
	ID             string         `json:"id"`
	Name           string         `json:"name"`
	Start          time.Time      `json:"start"`
	DurationMicros int64          `json:"duration_micros"`
	Slow           bool           `json:"slow,omitempty"`
	Spans          []SpanSnapshot `json:"spans,omitempty"`
}

// Trace is an in-flight trace. Span and Finish are goroutine-safe,
// though the serving stack runs each trace on one goroutine.
type Trace struct {
	tracer *Tracer
	id     string
	name   string
	start  time.Time

	mu    sync.Mutex
	spans []SpanSnapshot
	slow  bool
}

// ID reports the trace ID ("" for a nil trace).
func (tr *Trace) ID() string {
	if tr == nil {
		return ""
	}
	return tr.id
}

// Span starts a named child span and returns the function that ends
// it. Ending a span whose duration reaches the tracer's slow-op
// threshold emits exactly one structured log line with the trace ID.
func (tr *Trace) Span(name string) func() {
	if tr == nil {
		return func() {}
	}
	begin := time.Now()
	return func() {
		d := time.Since(begin)
		tr.mu.Lock()
		tr.spans = append(tr.spans, SpanSnapshot{
			Name:           name,
			OffsetMicros:   begin.Sub(tr.start).Microseconds(),
			DurationMicros: d.Microseconds(),
		})
		slow := tr.tracer.slow > 0 && d >= tr.tracer.slow
		if slow {
			tr.slow = true
		}
		tr.mu.Unlock()
		if slow && tr.tracer.logger != nil {
			tr.tracer.logger.Warn("slow operation",
				"trace", tr.id, "op", tr.name, "span", name,
				"duration", d.Round(time.Microsecond).String())
		}
	}
}

// Finish ends the trace and archives it into the tracer's ring,
// evicting the oldest trace when the ring is full.
func (tr *Trace) Finish() {
	if tr == nil {
		return
	}
	t := tr.tracer
	tr.mu.Lock()
	snap := TraceSnapshot{
		ID:             tr.id,
		Name:           tr.name,
		Start:          tr.start,
		DurationMicros: time.Since(tr.start).Microseconds(),
		Slow:           tr.slow,
		Spans:          tr.spans,
	}
	tr.spans = nil // the snapshot owns the slice now
	tr.mu.Unlock()

	t.mu.Lock()
	if len(t.ring) < t.capacity {
		t.ring = append(t.ring, snap)
	} else {
		t.ring[t.next] = snap
		t.next = (t.next + 1) % t.capacity
	}
	t.total++
	t.mu.Unlock()
}

// Recent returns up to n finished traces, newest first (n ≤ 0 means
// all retained).
func (t *Tracer) Recent(n int) []TraceSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	size := len(t.ring)
	if n <= 0 || n > size {
		n = size
	}
	out := make([]TraceSnapshot, 0, n)
	// Newest is the slot just before the insertion point (or the slice
	// tail while the ring is still filling).
	newest := size - 1
	if size == t.capacity {
		newest = (t.next - 1 + t.capacity) % t.capacity
	}
	for i := 0; i < n; i++ {
		out = append(out, t.ring[(newest-i+size)%size])
	}
	return out
}

// Total reports how many traces have ever finished (including ones
// evicted from the ring).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}
