package fault

import (
	"bytes"
	"errors"
	"testing"
)

func TestInjectWithoutHookIsNil(t *testing.T) {
	if err := Inject("no-such-point"); err != nil {
		t.Fatalf("uninstrumented point failed: %v", err)
	}
}

func TestSetClearReset(t *testing.T) {
	t.Cleanup(Reset)
	boom := errors.New("boom")
	Set("p", func() error { return boom })
	if err := Inject("p"); !errors.Is(err, boom) {
		t.Fatalf("hooked point returned %v, want boom", err)
	}
	Clear("p")
	if err := Inject("p"); err != nil {
		t.Fatalf("cleared point failed: %v", err)
	}
	Set("p", func() error { return boom })
	Reset()
	if err := Inject("p"); err != nil {
		t.Fatalf("reset point failed: %v", err)
	}
}

func TestFailAfter(t *testing.T) {
	t.Cleanup(Reset)
	boom := errors.New("disk full")
	Set("p", FailAfter(2, boom))
	for i := 0; i < 2; i++ {
		if err := Inject("p"); err != nil {
			t.Fatalf("call %d failed early: %v", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := Inject("p"); !errors.Is(err, boom) {
			t.Fatalf("call %d after threshold returned %v", i, err)
		}
	}
}

func TestWriterTornWrite(t *testing.T) {
	var buf bytes.Buffer
	boom := errors.New("torn")
	w := &Writer{W: &buf, FailAt: 5, Err: boom}
	n, err := w.Write([]byte("abcdefgh"))
	if n != 5 || !errors.Is(err, boom) {
		t.Fatalf("first write: n=%d err=%v, want 5, torn", n, err)
	}
	if buf.String() != "abcde" {
		t.Fatalf("underlying stream holds %q, want the torn prefix", buf.String())
	}
	if n, err := w.Write([]byte("x")); n != 0 || !errors.Is(err, boom) {
		t.Fatalf("write after failure: n=%d err=%v", n, err)
	}
}

func TestWriterPassthroughBelowLimit(t *testing.T) {
	var buf bytes.Buffer
	w := &Writer{W: &buf, FailAt: 100}
	if n, err := w.Write([]byte("abc")); n != 3 || err != nil {
		t.Fatalf("write below limit: n=%d err=%v", n, err)
	}
	if _, err := w.Write(bytes.Repeat([]byte("z"), 98)); err == nil {
		t.Fatal("write crossing the limit succeeded")
	}
}
