// Package fault is a minimal failpoint registry for crash and error
// injection in tests. Production code marks interesting spots with
// Inject("name"); a test installs a hook under that name to make the
// spot fail (or block, or panic) on demand. With no hook installed an
// injection point is a map lookup under a mutex — cheap enough for the
// batch-granularity call sites in internal/wal and internal/store, and
// zero extra dependencies.
//
// Hooks are process-global, so tests that install them must not run in
// parallel with each other; use Reset (usually via t.Cleanup) to leave
// the registry clean.
package fault

import (
	"fmt"
	"io"
	"sync"
)

var (
	mu    sync.Mutex
	hooks map[string]func() error
)

// Set installs hook at the named injection point, replacing any
// previous hook. The hook runs every time the point is hit; returning
// a non-nil error makes the call site fail with it.
func Set(name string, hook func() error) {
	mu.Lock()
	defer mu.Unlock()
	if hooks == nil {
		hooks = make(map[string]func() error)
	}
	hooks[name] = hook
}

// Clear removes the hook at the named injection point.
func Clear(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(hooks, name)
}

// Reset removes every installed hook.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	hooks = nil
}

// Inject runs the hook installed at the named point, if any. Call
// sites treat a non-nil return as the failure of the operation they
// guard.
func Inject(name string) error {
	mu.Lock()
	hook := hooks[name]
	mu.Unlock()
	if hook == nil {
		return nil
	}
	return hook()
}

// FailAfter returns a hook that succeeds n times and then fails every
// subsequent call with err — "the disk filled up mid-save".
func FailAfter(n int, err error) func() error {
	var m sync.Mutex
	calls := 0
	return func() error {
		m.Lock()
		defer m.Unlock()
		calls++
		if calls > n {
			return err
		}
		return nil
	}
}

// Writer wraps an io.Writer and fails with Err once FailAt total bytes
// have been written — a torn write at an arbitrary byte offset. Bytes
// up to the limit are passed through, so the underlying stream is left
// exactly as a crashed process would leave it.
type Writer struct {
	W      io.Writer
	FailAt int64
	Err    error

	written int64
}

// Write passes p through until the FailAt offset is crossed.
func (w *Writer) Write(p []byte) (int, error) {
	err := w.Err
	if err == nil {
		err = fmt.Errorf("fault: write failed at offset %d", w.FailAt)
	}
	if w.written >= w.FailAt {
		return 0, err
	}
	if int64(len(p)) > w.FailAt-w.written {
		n, _ := w.W.Write(p[:w.FailAt-w.written])
		w.written += int64(n)
		return n, err
	}
	n, werr := w.W.Write(p)
	w.written += int64(n)
	return n, werr
}
