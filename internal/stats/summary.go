package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator computes streaming mean and variance using Welford's
// algorithm, numerically stable for long streams. The zero value is
// ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds x into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N reports the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean reports the running mean (0 when empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance reports the population variance (0 with fewer than 2 points).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n)
}

// StdDev reports the population standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min reports the smallest observation (0 when empty).
func (a *Accumulator) Min() float64 { return a.min }

// Max reports the largest observation (0 when empty).
func (a *Accumulator) Max() float64 { return a.max }

// Summary is a point-in-time snapshot of an Accumulator.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize snapshots the accumulator.
func (a *Accumulator) Summarize() Summary {
	return Summary{N: a.n, Mean: a.mean, StdDev: a.StdDev(), Min: a.min, Max: a.max}
}

// String renders the summary as "mean±std [min,max] (n)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4f±%.4f [%.4f,%.4f] (n=%d)", s.Mean, s.StdDev, s.Min, s.Max, s.N)
}

// SummarizeSlice computes a Summary over the values.
func SummarizeSlice(xs []float64) Summary {
	var a Accumulator
	for _, x := range xs {
		a.Add(x)
	}
	return a.Summarize()
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs by linear
// interpolation between closest ranks. It copies and sorts the input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs (NaN when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
