package stats

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Fatal("NewHistogram accepted zero bins")
	}
	if _, err := NewHistogram(1, 1, 4); err == nil {
		t.Fatal("NewHistogram accepted empty range")
	}
	if _, err := NewHistogram(2, 1, 4); err == nil {
		t.Fatal("NewHistogram accepted inverted range")
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 0.1, 0.3, 0.6, 0.9, 0.999} {
		h.Add(x)
	}
	want := []int{2, 1, 1, 2}
	for i, w := range want {
		if h.Bin(i) != w {
			t.Fatalf("bin %d = %d, want %d", i, h.Bin(i), w)
		}
	}
	if h.N() != 6 {
		t.Fatalf("N = %d", h.N())
	}
}

func TestHistogramClampsOutOfRange(t *testing.T) {
	h, err := NewHistogram(0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(-5)
	h.Add(7)
	h.Add(math.NaN())
	if h.Bin(0) != 2 || h.Bin(1) != 1 {
		t.Fatalf("clamping wrong: %d/%d", h.Bin(0), h.Bin(1))
	}
	total := h.Bin(0) + h.Bin(1)
	if total != h.N() {
		t.Fatalf("counts (%d) do not reconcile with N (%d)", total, h.N())
	}
}

func TestHistogramBinRangeAndString(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := h.BinRange(2)
	if lo != 4 || hi != 6 {
		t.Fatalf("BinRange(2) = [%g,%g)", lo, hi)
	}
	h.Add(4.5)
	s := h.String()
	if !strings.Contains(s, "#") || strings.Count(s, "\n") != 5 {
		t.Fatalf("unexpected render:\n%s", s)
	}
}
