package stats

import (
	"fmt"
	"math"
	"sort"
)

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^s for arbitrary s > 0. Unlike math/rand.Zipf it supports
// exponents at or below 1, which communication-graph degree distributions
// commonly exhibit. Sampling is O(log n) by binary search over a
// precomputed CDF; construction is O(n).
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a sampler over n ranks with exponent s.
func NewZipf(rng *RNG, n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: Zipf requires n > 0, got %d", n)
	}
	if s < 0 {
		return nil, fmt.Errorf("stats: Zipf requires s >= 0, got %g", s)
	}
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf, rng: rng}, nil
}

// N reports the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample draws one rank in [0, N()).
func (z *Zipf) Sample() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Prob reports the probability of rank i.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cdf) {
		return 0
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// Weighted samples indices in [0, len(weights)) with probability
// proportional to weights using Walker's alias method: O(n) setup,
// O(1) per sample.
type Weighted struct {
	prob  []float64
	alias []int32
	rng   *RNG
}

// NewWeighted builds an alias-method sampler over the given non-negative
// weights. At least one weight must be positive.
func NewWeighted(rng *RNG, weights []float64) (*Weighted, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("stats: Weighted requires at least one weight")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("stats: Weighted weight %d is invalid (%g)", i, w)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("stats: Weighted requires a positive total weight")
	}
	w := &Weighted{
		prob:  make([]float64, n),
		alias: make([]int32, n),
		rng:   rng,
	}
	// Scale so the average cell holds probability 1.
	scaled := make([]float64, n)
	for i, wt := range weights {
		scaled[i] = wt * float64(n) / total
	}
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, p := range scaled {
		if p < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		w.prob[s] = scaled[s]
		w.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Numerical leftovers are all probability-1 cells.
	for _, i := range large {
		w.prob[i] = 1
		w.alias[i] = i
	}
	for _, i := range small {
		w.prob[i] = 1
		w.alias[i] = i
	}
	return w, nil
}

// Sample draws one index with probability proportional to its weight.
func (w *Weighted) Sample() int {
	i := w.rng.Intn(len(w.prob))
	if w.rng.Float64() < w.prob[i] {
		return i
	}
	return int(w.alias[i])
}

// N reports the number of weights.
func (w *Weighted) N() int { return len(w.prob) }

// SampleDistinct draws up to k distinct indices by rejection. If k
// exceeds the population it returns all indices. The rejection loop is
// bounded; once progress stalls the remainder is filled from the
// unsampled population in index order, which only matters when k is
// close to N and the weight mass is concentrated.
func (w *Weighted) SampleDistinct(k int) []int {
	n := w.N()
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	seen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	attempts := 0
	limit := 50 * k
	for len(out) < k && attempts < limit {
		attempts++
		i := w.Sample()
		if _, dup := seen[i]; dup {
			continue
		}
		seen[i] = struct{}{}
		out = append(out, i)
	}
	for i := 0; len(out) < k && i < n; i++ {
		if _, dup := seen[i]; !dup {
			seen[i] = struct{}{}
			out = append(out, i)
		}
	}
	return out
}
