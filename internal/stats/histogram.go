package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram counts observations into fixed-width bins over [lo, hi).
// Observations outside the range are clamped into the edge bins so that
// totals always reconcile with the number of Add calls.
type Histogram struct {
	lo, hi float64
	bins   []int
	n      int
}

// NewHistogram builds a histogram with the given bin count over [lo, hi).
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs bins > 0, got %d", bins)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: histogram needs lo < hi, got [%g,%g)", lo, hi)
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]int, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.n++
	if math.IsNaN(x) {
		x = h.lo
	}
	idx := int(float64(len(h.bins)) * (x - h.lo) / (h.hi - h.lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.bins) {
		idx = len(h.bins) - 1
	}
	h.bins[idx]++
}

// N reports the number of observations.
func (h *Histogram) N() int { return h.n }

// Bin reports the count in bin i.
func (h *Histogram) Bin(i int) int { return h.bins[i] }

// Bins reports the number of bins.
func (h *Histogram) Bins() int { return len(h.bins) }

// BinRange reports the [lo, hi) interval covered by bin i.
func (h *Histogram) BinRange(i int) (lo, hi float64) {
	w := (h.hi - h.lo) / float64(len(h.bins))
	return h.lo + float64(i)*w, h.lo + float64(i+1)*w
}

// String renders a compact ASCII bar chart, one line per bin, suitable
// for experiment logs.
func (h *Histogram) String() string {
	maxCount := 0
	for _, c := range h.bins {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range h.bins {
		lo, hi := h.BinRange(i)
		width := 0
		if maxCount > 0 {
			width = c * 40 / maxCount
		}
		fmt.Fprintf(&b, "[%7.3f,%7.3f) %6d %s\n", lo, hi, c, strings.Repeat("#", width))
	}
	return b.String()
}
