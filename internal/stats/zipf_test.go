package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZipfValidation(t *testing.T) {
	r := NewRNG(1)
	if _, err := NewZipf(r, 0, 1); err == nil {
		t.Fatal("NewZipf accepted n=0")
	}
	if _, err := NewZipf(r, 10, -1); err == nil {
		t.Fatal("NewZipf accepted negative exponent")
	}
}

func TestZipfDistribution(t *testing.T) {
	r := NewRNG(2)
	z, err := NewZipf(r, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 100)
	const trials = 200000
	for i := 0; i < trials; i++ {
		counts[z.Sample()]++
	}
	// Rank 0 should be drawn twice as often as rank 1, and all
	// empirical frequencies should track Prob().
	if ratio := float64(counts[0]) / float64(counts[1]); math.Abs(ratio-2) > 0.2 {
		t.Fatalf("rank0/rank1 ratio %.2f, want ≈2", ratio)
	}
	for i := 0; i < 10; i++ {
		emp := float64(counts[i]) / trials
		if math.Abs(emp-z.Prob(i)) > 0.01 {
			t.Fatalf("rank %d empirical %.4f vs Prob %.4f", i, emp, z.Prob(i))
		}
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	r := NewRNG(3)
	z, err := NewZipf(r, 57, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i := 0; i < z.N(); i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %.12f", sum)
	}
	if z.Prob(-1) != 0 || z.Prob(z.N()) != 0 {
		t.Fatal("out-of-range Prob should be 0")
	}
}

func TestWeightedValidation(t *testing.T) {
	r := NewRNG(4)
	for _, weights := range [][]float64{
		nil,
		{},
		{0, 0},
		{-1, 2},
		{math.NaN()},
		{math.Inf(1)},
	} {
		if _, err := NewWeighted(r, weights); err == nil {
			t.Fatalf("NewWeighted accepted %v", weights)
		}
	}
}

func TestWeightedFrequencies(t *testing.T) {
	r := NewRNG(5)
	weights := []float64{1, 0, 3, 6}
	w, err := NewWeighted(r, weights)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(weights))
	const trials = 200000
	for i := 0; i < trials; i++ {
		counts[w.Sample()]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index sampled %d times", counts[1])
	}
	total := 10.0
	for i, wt := range weights {
		want := wt / total
		got := float64(counts[i]) / trials
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("index %d frequency %.4f, want %.4f", i, got, want)
		}
	}
}

func TestWeightedAliasProperty(t *testing.T) {
	// Property: for any valid weight vector, every sampled index has
	// positive weight.
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 40 {
			return true
		}
		weights := make([]float64, len(raw))
		anyPositive := false
		for i, b := range raw {
			weights[i] = float64(b % 16)
			if weights[i] > 0 {
				anyPositive = true
			}
		}
		if !anyPositive {
			return true
		}
		w, err := NewWeighted(NewRNG(99), weights)
		if err != nil {
			return false
		}
		for i := 0; i < 200; i++ {
			if weights[w.Sample()] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleDistinct(t *testing.T) {
	r := NewRNG(6)
	weights := make([]float64, 20)
	for i := range weights {
		weights[i] = float64(i + 1)
	}
	w, err := NewWeighted(r, weights)
	if err != nil {
		t.Fatal(err)
	}
	got := w.SampleDistinct(8)
	if len(got) != 8 {
		t.Fatalf("SampleDistinct(8) returned %d items", len(got))
	}
	seen := map[int]bool{}
	for _, i := range got {
		if seen[i] {
			t.Fatal("SampleDistinct repeated an index")
		}
		seen[i] = true
	}
	// Requesting everything (or more) returns the full population.
	if got := w.SampleDistinct(25); len(got) != 20 {
		t.Fatalf("SampleDistinct(25) returned %d items, want 20", len(got))
	}
}
