package stats

import "fmt"

// Fenwick is a binary indexed tree over non-negative float weights,
// supporting O(log n) point updates and O(log n) sampling proportional
// to current weights. The perturbation module uses it to delete graph
// edges proportionally to their *current* weights as the paper's §IV-C
// procedure requires (each decrement changes the distribution).
type Fenwick struct {
	tree []float64 // 1-based
	n    int
}

// NewFenwick builds a tree over the given initial weights in O(n).
func NewFenwick(weights []float64) (*Fenwick, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("stats: Fenwick requires at least one weight")
	}
	f := &Fenwick{tree: make([]float64, n+1), n: n}
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("stats: Fenwick weight %d is negative (%g)", i, w)
		}
		f.tree[i+1] = w
	}
	for i := 1; i <= n; i++ {
		if p := i + (i & -i); p <= n {
			f.tree[p] += f.tree[i]
		}
	}
	return f, nil
}

// Add adds delta to weight i (delta may be negative; callers must keep
// weights non-negative for Sample to remain meaningful).
func (f *Fenwick) Add(i int, delta float64) {
	for j := i + 1; j <= f.n; j += j & -j {
		f.tree[j] += delta
	}
}

// Prefix reports the sum of weights [0, i].
func (f *Fenwick) Prefix(i int) float64 {
	s := 0.0
	for j := i + 1; j > 0; j -= j & -j {
		s += f.tree[j]
	}
	return s
}

// Get reports weight i.
func (f *Fenwick) Get(i int) float64 {
	return f.Prefix(i) - f.Prefix(i-1)
}

// Total reports the sum of all weights.
func (f *Fenwick) Total() float64 { return f.Prefix(f.n - 1) }

// SampleIndex returns the smallest index i whose prefix sum exceeds
// target; target should be drawn uniformly from [0, Total()). Negative
// floating residue is clamped to the last index.
func (f *Fenwick) SampleIndex(target float64) int {
	idx := 0
	// Descend the implicit tree from the highest power of two.
	bit := 1
	for bit<<1 <= f.n {
		bit <<= 1
	}
	for ; bit > 0; bit >>= 1 {
		next := idx + bit
		if next <= f.n && f.tree[next] <= target {
			target -= f.tree[next]
			idx = next
		}
	}
	if idx >= f.n {
		idx = f.n - 1
	}
	return idx
}

// Sample draws an index proportional to current weights using rng.
func (f *Fenwick) Sample(rng *RNG) int {
	return f.SampleIndex(rng.Float64() * f.Total())
}
