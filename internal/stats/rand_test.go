package stats

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(7)
	b := NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	if NewRNG(7).Int63() == NewRNG(8).Int63() && NewRNG(7).Int63() == NewRNG(8).Int63() {
		t.Fatal("different seeds produced identical first draws twice")
	}
}

func TestRNGSplitIndependentOfOrder(t *testing.T) {
	r1 := NewRNG(42)
	a1 := r1.Split("a").Int63()
	b1 := r1.Split("b").Int63()

	r2 := NewRNG(42)
	b2 := r2.Split("b").Int63()
	a2 := r2.Split("a").Int63()

	if a1 != a2 || b1 != b2 {
		t.Fatal("split streams depend on derivation order")
	}
	if a1 == b1 {
		t.Fatal("distinct labels produced the same stream")
	}
}

func TestRNGSplitN(t *testing.T) {
	r := NewRNG(1)
	seen := map[int64]bool{}
	for i := 0; i < 50; i++ {
		v := r.SplitN("node", i).Int63()
		if seen[v] {
			t.Fatalf("SplitN collision at %d", i)
		}
		seen[v] = true
	}
	if r.SplitN("node", 3).Int63() != r.SplitN("node", 3).Int63() {
		t.Fatal("SplitN not deterministic")
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
	n := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		if r.Bernoulli(0.3) {
			n++
		}
	}
	if p := float64(n) / trials; math.Abs(p-0.3) > 0.02 {
		t.Fatalf("Bernoulli(0.3) frequency %.3f", p)
	}
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(11)
	for _, lambda := range []float64{0.5, 4, 60, 800} {
		sum := 0.0
		const trials = 5000
		for i := 0; i < trials; i++ {
			sum += float64(r.Poisson(lambda))
		}
		mean := sum / trials
		if math.Abs(mean-lambda) > 0.05*lambda+0.1 {
			t.Fatalf("Poisson(%g) mean %.3f", lambda, mean)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Fatal("Poisson of non-positive lambda should be 0")
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRNG(3)
	sum := 0.0
	const trials = 20000
	for i := 0; i < trials; i++ {
		v := r.LogNormal(0, 0.35)
		if v <= 0 {
			t.Fatal("LogNormal produced non-positive value")
		}
		sum += v
	}
	// E[lognormal(0, σ)] = exp(σ²/2) ≈ 1.063 for σ=0.35.
	want := math.Exp(0.35 * 0.35 / 2)
	if mean := sum / trials; math.Abs(mean-want) > 0.03 {
		t.Fatalf("LogNormal mean %.4f, want ≈%.4f", mean, want)
	}
}

func TestPerm31(t *testing.T) {
	r := NewRNG(9)
	p := r.Perm31(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm31 not a permutation: %v", v)
		}
		seen[v] = true
	}
	if len(r.Perm31(0)) != 0 {
		t.Fatal("Perm31(0) should be empty")
	}
}
