package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFenwickValidation(t *testing.T) {
	if _, err := NewFenwick(nil); err == nil {
		t.Fatal("NewFenwick accepted empty weights")
	}
	if _, err := NewFenwick([]float64{1, -2}); err == nil {
		t.Fatal("NewFenwick accepted negative weight")
	}
}

func TestFenwickPrefixAgainstNaive(t *testing.T) {
	f := func(raw []uint8, updates []uint16) bool {
		if len(raw) == 0 || len(raw) > 64 {
			return true
		}
		weights := make([]float64, len(raw))
		for i, b := range raw {
			weights[i] = float64(b % 32)
		}
		fw, err := NewFenwick(weights)
		if err != nil {
			return false
		}
		naive := append([]float64(nil), weights...)
		for _, u := range updates {
			i := int(u) % len(naive)
			delta := float64(u%7) - 3
			if naive[i]+delta < 0 {
				continue
			}
			naive[i] += delta
			fw.Add(i, delta)
		}
		run := 0.0
		for i := range naive {
			run += naive[i]
			if math.Abs(fw.Prefix(i)-run) > 1e-9 {
				return false
			}
			if math.Abs(fw.Get(i)-naive[i]) > 1e-9 {
				return false
			}
		}
		return math.Abs(fw.Total()-run) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFenwickSampleIndex(t *testing.T) {
	fw, err := NewFenwick([]float64{2, 0, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		target float64
		want   int
	}{
		{0, 0}, {1.9, 0}, {2.0, 2}, {4.9, 2}, {5.0, 3}, {9.99, 3},
	}
	for _, c := range cases {
		if got := fw.SampleIndex(c.target); got != c.want {
			t.Fatalf("SampleIndex(%g) = %d, want %d", c.target, got, c.want)
		}
	}
	// Beyond-total targets clamp to the last index.
	if got := fw.SampleIndex(100); got != 3 {
		t.Fatalf("SampleIndex(100) = %d, want 3", got)
	}
}

func TestFenwickSampleDistribution(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	fw, err := NewFenwick(weights)
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRNG(17)
	counts := make([]int, len(weights))
	const trials = 100000
	for i := 0; i < trials; i++ {
		counts[fw.Sample(rng)]++
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / trials
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("index %d frequency %.4f, want %.4f", i, got, want)
		}
	}
}

func TestFenwickDecrementToZero(t *testing.T) {
	fw, err := NewFenwick([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	fw.Add(0, -1)
	if fw.Get(0) != 0 || fw.Total() != 1 {
		t.Fatalf("after decrement: get=%g total=%g", fw.Get(0), fw.Total())
	}
	rng := NewRNG(1)
	for i := 0; i < 100; i++ {
		if fw.Sample(rng) != 1 {
			t.Fatal("sampled a zero-weight index")
		}
	}
}
