package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAccumulatorAgainstNaive(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) / 8
		}
		var acc Accumulator
		for _, x := range xs {
			acc.Add(x)
		}
		// Naive two-pass mean and variance.
		sum := 0.0
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(len(xs))
		ss := 0.0
		mn, mx := xs[0], xs[0]
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
			mn = math.Min(mn, x)
			mx = math.Max(mx, x)
		}
		variance := ss / float64(len(xs))
		const eps = 1e-7
		return math.Abs(acc.Mean()-mean) < eps &&
			math.Abs(acc.Variance()-variance) < eps*(1+variance) &&
			acc.Min() == mn && acc.Max() == mx && acc.N() == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var acc Accumulator
	if acc.Mean() != 0 || acc.Variance() != 0 || acc.StdDev() != 0 || acc.N() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
}

func TestAccumulatorSingle(t *testing.T) {
	var acc Accumulator
	acc.Add(3.5)
	if acc.Mean() != 3.5 || acc.Variance() != 0 || acc.Min() != 3.5 || acc.Max() != 3.5 {
		t.Fatalf("single-point stats wrong: %+v", acc.Summarize())
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 9}, {0.5, 5}, {0.25, 3}, {0.75, 7},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); got != c.want {
			t.Fatalf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if got := Quantile(xs, 0.125); got != 2 {
		t.Fatalf("interpolated quantile = %g, want 2", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("Quantile of empty slice should be NaN")
	}
	// Quantile must not mutate its input.
	if xs[0] != 9 {
		t.Fatal("Quantile sorted the caller's slice")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %g", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean of empty slice should be NaN")
	}
}

func TestSummaryString(t *testing.T) {
	s := SummarizeSlice([]float64{1, 2, 3})
	if s.String() == "" || s.N != 3 {
		t.Fatalf("bad summary: %v", s)
	}
}
