// Package stats provides the deterministic randomness and statistical
// substrate used throughout graphsig: seeded random number generation with
// hierarchical stream splitting, heavy-tailed samplers, weighted sampling,
// and streaming summary statistics.
//
// Every randomized component in the repository draws from an explicit
// *stats.RNG so that all experiments are reproducible bit-for-bit from a
// single top-level seed.
package stats

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// RNG is a seeded pseudo-random number generator with support for
// deriving independent, deterministic child streams by label. It wraps
// math/rand.Rand (not the global source) so concurrent experiments can
// each own an isolated stream.
//
// RNG is not safe for concurrent use; derive one child per goroutine.
type RNG struct {
	seed int64
	*rand.Rand
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{seed: seed, Rand: rand.New(rand.NewSource(seed))}
}

// Seed reports the seed this generator was created with.
func (r *RNG) Seed() int64 { return r.seed }

// Split derives an independent generator whose stream is a pure function
// of the parent seed and the label. Splitting does not consume state from
// the parent, so the order in which children are derived does not matter.
func (r *RNG) Split(label string) *RNG {
	h := fnv.New64a()
	// The write cannot fail on an in-memory hash; ignore the error per
	// the hash.Hash contract.
	_, _ = h.Write([]byte(label))
	var buf [8]byte
	putUint64(buf[:], uint64(r.seed))
	_, _ = h.Write(buf[:])
	return NewRNG(int64(h.Sum64()))
}

// SplitN derives an independent generator from the parent seed, a label
// and an index, for per-item streams (one per node, per window, ...).
func (r *RNG) SplitN(label string, n int) *RNG {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	var buf [16]byte
	putUint64(buf[:8], uint64(r.seed))
	putUint64(buf[8:], uint64(n))
	_, _ = h.Write(buf[:])
	return NewRNG(int64(h.Sum64()))
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// Bernoulli reports true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// LogNormal draws from a log-normal distribution with the given
// parameters of the underlying normal (mu, sigma).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Poisson draws from a Poisson distribution with mean lambda using
// Knuth's method for small lambda and a normal approximation above 500,
// where the exact method becomes slow and the approximation error is
// negligible for our workload sizes.
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 500 {
		v := lambda + math.Sqrt(lambda)*r.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm31 returns a random permutation as int32 indices. It mirrors
// rand.Perm but avoids the int allocation width on 64-bit platforms for
// very large permutations used by the perturbation module.
func (r *RNG) Perm31(n int) []int32 {
	p := make([]int32, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = int32(i)
	}
	return p
}
