// Package datagen generates synthetic communication workloads that stand
// in for the paper's two proprietary datasets: an enterprise network flow
// capture (local hosts talking to external hosts) and a data-warehouse
// query log (users accessing tables).
//
// The generative model reproduces the structural characteristics the
// paper's signature schemes exploit (§III):
//
//   - Engagement: each individual owns a stable preference distribution
//     over destinations; per-window edge weights are sampled from it, so
//     heavy edges recur across windows.
//   - Novelty: destination popularity is heavy-tailed — a few globally
//     popular destinations (search engines, update servers, shared fact
//     tables) receive traffic from almost everyone and are therefore
//     non-discriminative, while one-off "novelty" destinations have
//     in-degree 1.
//   - Locality and transitivity: individuals belong to communities that
//     share a destination pool, so multi-hop walks recover an
//     individual's community even when its one-hop sample churns.
//
// Ground truth (which labels belong to which individual) is emitted next
// to the data and consumed only by evaluators, never by detectors.
package datagen

import (
	"fmt"
	"sort"

	"graphsig/internal/stats"
)

// profile is an individual's stable preference distribution over
// destination indices. Weights are positive and need not be normalized;
// samplers normalize internally.
type profile struct {
	dests   []int
	weights []float64
	// churn marks destinations subject to per-window activation: an
	// individual's rare, personal interests come and go between
	// windows, while popular and community destinations persist. This
	// is the frequency↔stability correlation real communication data
	// exhibits and the UT scheme is sensitive to.
	churn []bool
}

// sampler builds an alias sampler over the full profile.
func (p *profile) sampler(rng *stats.RNG) (*stats.Weighted, error) {
	return stats.NewWeighted(rng, p.weights)
}

// windowSampler builds a sampler for one window keeping each churnable
// destination iff active(dest) reports true. The activation predicate is
// keyed by the hidden individual, not the label, so that one person's
// current interests appear on all of their connection points within the
// same window. With every churnable destination inactive the full
// profile is used, so the sampler always has mass.
func (p *profile) windowSampler(rng *stats.RNG, active func(dest int) bool) (*stats.Weighted, error) {
	w := make([]float64, len(p.weights))
	any := false
	for i := range p.weights {
		if p.churn[i] && !active(p.dests[i]) {
			continue
		}
		w[i] = p.weights[i]
		any = true
	}
	if !any {
		copy(w, p.weights)
	}
	return stats.NewWeighted(rng, w)
}

// buildProfile assembles a preference distribution as a mix of three
// pools: the global popular head, a community pool, and a personal tail,
// with the probability mass split by the mix fractions. Within each pool
// the member weights decay as Zipf(1) over the member's position, so
// each individual has a few dominant destinations — the "top talkers"
// the TT scheme keys on.
func buildProfile(rng *stats.RNG,
	head []int, headMass float64,
	communityPool []int, communityPicks int, communityMass float64,
	personal []int, personalMass float64,
) (*profile, error) {
	var p profile
	add := func(members []int, mass float64, churn bool) {
		if len(members) == 0 || mass <= 0 {
			return
		}
		// Zipf(1) weights within the pool, scaled to the pool's mass.
		total := 0.0
		w := make([]float64, len(members))
		for i := range members {
			w[i] = 1 / float64(i+1)
			total += w[i]
		}
		for i, m := range members {
			p.dests = append(p.dests, m)
			p.weights = append(p.weights, mass*w[i]/total)
			p.churn = append(p.churn, churn)
		}
	}

	add(head, headMass, false)
	// Community picks are uniform over the pool: colleagues share an
	// environment, not a ranked reading list. (Rank-biased picks would
	// make any two same-community hosts near-twins.)
	add(pickUniform(rng, communityPool, communityPicks), communityMass, false)
	add(personal, personalMass, true)
	if len(p.dests) == 0 {
		return nil, fmt.Errorf("datagen: empty profile (all pools empty or massless)")
	}
	// Merge duplicate destinations (a personal pick may also sit in the
	// community pool) by summing their mass; a destination churns only
	// if all of its occurrences churn.
	merged := map[int]float64{}
	stable := map[int]bool{}
	for i, d := range p.dests {
		merged[d] += p.weights[i]
		if !p.churn[i] {
			stable[d] = true
		}
	}
	p.dests = p.dests[:0]
	p.weights = p.weights[:0]
	p.churn = p.churn[:0]
	keys := make([]int, 0, len(merged))
	for d := range merged {
		keys = append(keys, d)
	}
	sort.Ints(keys)
	for _, d := range keys {
		p.dests = append(p.dests, d)
		p.weights = append(p.weights, merged[d])
		p.churn = append(p.churn, !stable[d])
	}
	return &p, nil
}

// pickUniform samples up to k distinct members of pool uniformly.
func pickUniform(rng *stats.RNG, pool []int, k int) []int {
	if k <= 0 || len(pool) == 0 {
		return nil
	}
	if k >= len(pool) {
		out := make([]int, len(pool))
		copy(out, pool)
		return out
	}
	perm := rng.Perm(len(pool))[:k]
	sort.Ints(perm)
	out := make([]int, k)
	for i, p := range perm {
		out[i] = pool[p]
	}
	return out
}

// pickDistinct samples up to k distinct members of pool with
// probability decaying in pool rank, so pool heads appear in most
// profiles (used for the globally popular head).
func pickDistinct(rng *stats.RNG, pool []int, k int) []int {
	if k <= 0 || len(pool) == 0 {
		return nil
	}
	if k >= len(pool) {
		out := make([]int, len(pool))
		copy(out, pool)
		return out
	}
	// Sample positions with probability decaying in rank, so the pool's
	// most popular members appear in most profiles.
	weights := make([]float64, len(pool))
	for i := range pool {
		weights[i] = 1 / float64(i+1)
	}
	w, err := stats.NewWeighted(rng, weights)
	if err != nil {
		// Unreachable: weights are fixed positives.
		panic(err)
	}
	pos := w.SampleDistinct(k)
	sort.Ints(pos)
	out := make([]int, len(pos))
	for i, p := range pos {
		out[i] = pool[p]
	}
	return out
}

// Individual ties a hidden individual to the node labels it controls.
// Most individuals control one label; multiusage individuals control
// several (multiple connection points in the paper's terms).
type Individual struct {
	// ID is the hidden individual identity (never visible to detectors).
	ID string
	// Labels are the observable node labels this individual uses.
	Labels []string
}

// Truth is the generator's ground truth: the mapping from hidden
// individuals to observable labels, used only for evaluation.
type Truth struct {
	Individuals []Individual
}

// MultiusageSets returns, for each individual controlling more than one
// label, the set of its labels — the S_u sets of the paper's §V
// multiusage evaluation.
func (t *Truth) MultiusageSets() [][]string {
	var out [][]string
	for _, ind := range t.Individuals {
		if len(ind.Labels) > 1 {
			cp := make([]string, len(ind.Labels))
			copy(cp, ind.Labels)
			out = append(out, cp)
		}
	}
	return out
}
