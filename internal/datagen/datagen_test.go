package datagen

import (
	"testing"

	"graphsig/internal/graph"
	"graphsig/internal/stats"
)

func smallEnterprise(seed int64) EnterpriseConfig {
	cfg := DefaultEnterpriseConfig(seed)
	cfg.LocalHosts = 40
	cfg.ExternalHosts = 600
	cfg.Communities = 4
	cfg.Windows = 3
	cfg.MultiusageIndividuals = 4
	return cfg
}

func TestEnterpriseDeterminism(t *testing.T) {
	a, err := GenerateEnterprise(smallEnterprise(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateEnterprise(smallEnterprise(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	c, err := GenerateEnterprise(smallEnterprise(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Records) == len(a.Records) {
		same := true
		for i := range c.Records {
			if c.Records[i] != a.Records[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical captures")
		}
	}
}

func TestEnterpriseStructure(t *testing.T) {
	data, err := GenerateEnterprise(smallEnterprise(7))
	if err != nil {
		t.Fatal(err)
	}
	cfg := data.Config
	if len(data.Windows) != cfg.Windows {
		t.Fatalf("windows = %d", len(data.Windows))
	}
	// Every record is valid TCP from a local host to an external host.
	for i := range data.Records {
		r := &data.Records[i]
		if err := r.Validate(); err != nil {
			t.Fatalf("record %d invalid: %v", i, err)
		}
		if LocalClassifier(r.Src) != graph.Part1 || LocalClassifier(r.Dst) != graph.Part2 {
			t.Fatalf("record %d crosses the partition wrongly: %s -> %s", i, r.Src, r.Dst)
		}
	}
	// The graph is bipartite with the expected part sizes.
	u := data.Universe
	if !u.Bipartite() {
		t.Fatal("universe not bipartite")
	}
	if got := u.CountPart(graph.Part1); got != cfg.LocalHosts {
		t.Fatalf("local hosts interned = %d, want %d", got, cfg.LocalHosts)
	}
	// Average local out-degree should be in a plausible band around the
	// configured activity (the paper's data had ~20).
	avg := graph.AvgOutDegreePart(data.Windows[0], graph.Part1)
	if avg < 8 || avg > 40 {
		t.Fatalf("avg local out-degree %.1f outside sanity band", avg)
	}
}

func TestEnterpriseTruth(t *testing.T) {
	data, err := GenerateEnterprise(smallEnterprise(9))
	if err != nil {
		t.Fatal(err)
	}
	cfg := data.Config
	sets := data.Truth.MultiusageSets()
	if len(sets) != cfg.MultiusageIndividuals {
		t.Fatalf("multiusage groups = %d, want %d", len(sets), cfg.MultiusageIndividuals)
	}
	seen := map[string]bool{}
	total := 0
	for _, ind := range data.Truth.Individuals {
		if len(ind.Labels) == 0 {
			t.Fatal("individual without labels")
		}
		for _, l := range ind.Labels {
			if seen[l] {
				t.Fatalf("label %q owned twice", l)
			}
			seen[l] = true
			total++
		}
	}
	if total != cfg.LocalHosts {
		t.Fatalf("labels assigned = %d, want %d", total, cfg.LocalHosts)
	}
	for _, s := range sets {
		if len(s) < 2 || len(s) > cfg.MaxLabelsPerIndividual {
			t.Fatalf("group size %d outside [2,%d]", len(s), cfg.MaxLabelsPerIndividual)
		}
	}
}

func TestEnterpriseValidation(t *testing.T) {
	mutations := []func(*EnterpriseConfig){
		func(c *EnterpriseConfig) { c.LocalHosts = 0 },
		func(c *EnterpriseConfig) { c.ExternalHosts = c.PopularHead },
		func(c *EnterpriseConfig) { c.Communities = 0 },
		func(c *EnterpriseConfig) { c.Windows = 0 },
		func(c *EnterpriseConfig) { c.Novelty = 1 },
		func(c *EnterpriseConfig) { c.Novelty = -0.1 },
		func(c *EnterpriseConfig) { c.PersonalActive = 0 },
		func(c *EnterpriseConfig) { c.MeanFlows = 0 },
		func(c *EnterpriseConfig) { c.MultiusageIndividuals = 1000 },
		func(c *EnterpriseConfig) { c.WindowLength = 0 },
	}
	for i, mutate := range mutations {
		cfg := smallEnterprise(1)
		mutate(&cfg)
		if _, err := GenerateEnterprise(cfg); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func smallQueryLog(seed int64) QueryLogConfig {
	cfg := DefaultQueryLogConfig(seed)
	cfg.Users = 60
	cfg.Tables = 120
	cfg.Roles = 8
	cfg.Windows = 3
	return cfg
}

func TestQueryLogDeterminism(t *testing.T) {
	a, err := GenerateQueryLog(smallQueryLog(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateQueryLog(smallQueryLog(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tuples) != len(b.Tuples) {
		t.Fatal("tuple counts differ for same seed")
	}
	for i := range a.Tuples {
		if a.Tuples[i] != b.Tuples[i] {
			t.Fatalf("tuple %d differs", i)
		}
	}
}

func TestQueryLogStructure(t *testing.T) {
	data, err := GenerateQueryLog(smallQueryLog(4))
	if err != nil {
		t.Fatal(err)
	}
	cfg := data.Config
	if len(data.Windows) != cfg.Windows {
		t.Fatalf("windows = %d", len(data.Windows))
	}
	if data.Universe.CountPart(graph.Part1) != cfg.Users ||
		data.Universe.CountPart(graph.Part2) != cfg.Tables {
		t.Fatal("universe part sizes wrong")
	}
	// Tuples and windows agree: total edge weight equals tuple count
	// per window.
	perWindow := make([]int, cfg.Windows)
	for _, tp := range data.Tuples {
		if tp.Window < 0 || tp.Window >= cfg.Windows {
			t.Fatalf("tuple window %d out of range", tp.Window)
		}
		perWindow[tp.Window]++
	}
	for w, want := range perWindow {
		if got := data.Windows[w].TotalWeight(); int(got) != want {
			t.Fatalf("window %d weight %g, want %d", w, got, want)
		}
	}
}

func TestQueryLogValidation(t *testing.T) {
	mutations := []func(*QueryLogConfig){
		func(c *QueryLogConfig) { c.Users = 0 },
		func(c *QueryLogConfig) { c.Tables = c.PopularHead },
		func(c *QueryLogConfig) { c.Roles = 0 },
		func(c *QueryLogConfig) { c.Novelty = 1 },
		func(c *QueryLogConfig) { c.MeanQueries = 0 },
	}
	for i, mutate := range mutations {
		cfg := smallQueryLog(1)
		mutate(&cfg)
		if _, err := GenerateQueryLog(cfg); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestProfileWindowSampler(t *testing.T) {
	rng := stats.NewRNG(1)
	p, err := buildProfile(rng,
		[]int{100, 101}, 0.2,
		[]int{200, 201, 202, 203}, 2, 0.3,
		[]int{300, 301}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// All personal destinations inactive → sampler falls back to the
	// full profile rather than erroring.
	s, err := p.windowSampler(rng, func(int) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		d := p.dests[s.Sample()]
		if d >= 300 {
			// Falling back to the full profile may sample personal
			// members; that is the documented behaviour only when no
			// stable member exists. Here head+community carry mass, so
			// personal members must be excluded... unless fallback
			// triggered, which it must not.
			t.Fatalf("inactive personal destination %d sampled", d)
		}
	}
	// Only-personal profile with everything inactive falls back.
	p2, err := buildProfile(rng, nil, 0, nil, 0, 0, []int{300}, 1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p2.windowSampler(rng, func(int) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if p2.dests[s2.Sample()] != 300 {
		t.Fatal("fallback sampler broken")
	}
}

func TestBuildProfileMergesDuplicates(t *testing.T) {
	rng := stats.NewRNG(2)
	// Destination 200 appears in both the community pool and the
	// personal set; it must appear once, with summed mass, and as
	// stable (not churnable).
	p, err := buildProfile(rng,
		nil, 0,
		[]int{200}, 1, 0.5,
		[]int{200, 300}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for i, d := range p.dests {
		if d == 200 {
			count++
			if p.churn[i] {
				t.Fatal("stable+churn duplicate marked churnable")
			}
		}
	}
	if count != 1 {
		t.Fatalf("destination 200 appears %d times", count)
	}
}

func TestBuildProfileEmpty(t *testing.T) {
	rng := stats.NewRNG(3)
	if _, err := buildProfile(rng, nil, 0, nil, 0, 0, nil, 0); err == nil {
		t.Fatal("empty profile accepted")
	}
}

func smallTelephone(seed int64) TelephoneConfig {
	cfg := DefaultTelephoneConfig(seed)
	cfg.Subscribers = 120
	cfg.Businesses = 10
	cfg.Communities = 8
	cfg.Windows = 2
	return cfg
}

func TestTelephoneDeterminism(t *testing.T) {
	a, err := GenerateTelephone(smallTelephone(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTelephone(smallTelephone(5))
	if err != nil {
		t.Fatal(err)
	}
	for w := range a.Windows {
		ae, be := a.Windows[w].Edges(), b.Windows[w].Edges()
		if len(ae) != len(be) {
			t.Fatalf("window %d edge counts differ", w)
		}
		for i := range ae {
			if ae[i] != be[i] {
				t.Fatalf("window %d edge %d differs", w, i)
			}
		}
	}
}

func TestTelephoneStructure(t *testing.T) {
	data, err := GenerateTelephone(smallTelephone(6))
	if err != nil {
		t.Fatal(err)
	}
	cfg := data.Config
	if len(data.Windows) != cfg.Windows {
		t.Fatalf("windows = %d", len(data.Windows))
	}
	if data.Universe.Bipartite() {
		t.Fatal("call graph should be general, not bipartite")
	}
	if data.Universe.Size() != cfg.Subscribers+cfg.Businesses {
		t.Fatalf("universe size = %d", data.Universe.Size())
	}
	// No self-calls survive.
	for _, e := range data.Windows[0].Edges() {
		if e.From == e.To {
			t.Fatal("self-call in graph")
		}
	}
	// Businesses attract far more callers than subscribers on average:
	// the popular-head characteristic.
	w := data.Windows[0]
	bizIn, subIn := 0, 0
	for i := 0; i < cfg.Subscribers; i++ {
		subIn += w.InDegree(graph.NodeID(i))
	}
	for j := 0; j < cfg.Businesses; j++ {
		bizIn += w.InDegree(graph.NodeID(cfg.Subscribers + j))
	}
	avgBiz := float64(bizIn) / float64(cfg.Businesses)
	avgSub := float64(subIn) / float64(cfg.Subscribers)
	if avgBiz < 2*avgSub {
		t.Fatalf("businesses not popular enough: %.1f vs %.1f", avgBiz, avgSub)
	}
	if len(data.Truth.Individuals) != cfg.Subscribers {
		t.Fatalf("truth size = %d", len(data.Truth.Individuals))
	}
}

func TestTelephoneValidation(t *testing.T) {
	mutations := []func(*TelephoneConfig){
		func(c *TelephoneConfig) { c.Subscribers = 1 },
		func(c *TelephoneConfig) { c.Businesses = -1 },
		func(c *TelephoneConfig) { c.Communities = 0 },
		func(c *TelephoneConfig) { c.Windows = 0 },
		func(c *TelephoneConfig) { c.MeanCalls = 0 },
		func(c *TelephoneConfig) { c.WrongNumber = 1 },
		func(c *TelephoneConfig) { c.FriendActive = 0 },
	}
	for i, mutate := range mutations {
		cfg := smallTelephone(1)
		mutate(&cfg)
		if _, err := GenerateTelephone(cfg); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestLabelFormats(t *testing.T) {
	if LocalLabel(0) != "10.0.0.0" || ExternalLabel(0) != "198.18.0.0" {
		t.Fatalf("labels: %s %s", LocalLabel(0), ExternalLabel(0))
	}
	if LocalClassifier(LocalLabel(299)) != graph.Part1 {
		t.Fatal("local label misclassified")
	}
	if LocalClassifier(ExternalLabel(7999)) != graph.Part2 {
		t.Fatal("external label misclassified")
	}
	if UserLabel(3) != "user0003" || TableLabel(42) != "table0042" {
		t.Fatal("query labels wrong")
	}
	if SubscriberLabel(12) != "+15550000012" || BusinessLabel(3) != "+18000000003" {
		t.Fatalf("phone labels wrong: %s %s", SubscriberLabel(12), BusinessLabel(3))
	}
}
