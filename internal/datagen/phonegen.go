package datagen

import (
	"fmt"

	"graphsig/internal/graph"
	"graphsig/internal/stats"
)

// TelephoneConfig parameterizes a synthetic call graph — the paper's
// original motivating setting (Communities of Interest, repetitive
// debtors). Unlike the enterprise data this graph is *general*: every
// node is a subscriber or business that can both place and receive
// calls, so random walks traverse real cycles.
type TelephoneConfig struct {
	Seed int64

	// Subscribers is the number of personal lines.
	Subscribers int
	// Businesses is the number of high-in-degree service numbers
	// (directory assistance, banks, pizza): the telephone analogue of
	// the flow data's popular head.
	Businesses int
	// Communities is the number of social circles.
	Communities int
	// Windows is the number of aggregation windows.
	Windows int

	// CirclePicks is how many community members a subscriber calls
	// routinely; GlobalFriends adds long-range contacts outside the
	// community; BusinessPicks adds service numbers.
	CirclePicks   int
	GlobalFriends int
	BusinessPicks int

	// CircleMass / FriendMass / BusinessMass split the calling
	// probability.
	CircleMass   float64
	FriendMass   float64
	BusinessMass float64

	// MeanCalls is the mean calls per subscriber per window.
	MeanCalls float64
	// WrongNumber is the probability of a one-off call to a uniformly
	// random line.
	WrongNumber float64
	// FriendActive is the per-window activation probability of
	// long-range friends (people call their core circle every window,
	// distant friends sporadically).
	FriendActive float64
}

// DefaultTelephoneConfig sizes a laptop-scale call graph.
func DefaultTelephoneConfig(seed int64) TelephoneConfig {
	return TelephoneConfig{
		Seed:          seed,
		Subscribers:   1500,
		Businesses:    30,
		Communities:   60,
		Windows:       4,
		CirclePicks:   7,
		GlobalFriends: 4,
		BusinessPicks: 2,
		CircleMass:    0.55,
		FriendMass:    0.25,
		BusinessMass:  0.20,
		MeanCalls:     35,
		WrongNumber:   0.06,
		FriendActive:  0.5,
	}
}

func (c *TelephoneConfig) validate() error {
	switch {
	case c.Subscribers <= 1:
		return fmt.Errorf("datagen: Subscribers must exceed 1")
	case c.Businesses < 0:
		return fmt.Errorf("datagen: Businesses must be non-negative")
	case c.Communities <= 0 || c.Communities > c.Subscribers:
		return fmt.Errorf("datagen: Communities must be in [1, Subscribers]")
	case c.Windows <= 0:
		return fmt.Errorf("datagen: Windows must be positive")
	case c.MeanCalls <= 0:
		return fmt.Errorf("datagen: MeanCalls must be positive")
	case c.WrongNumber < 0 || c.WrongNumber >= 1:
		return fmt.Errorf("datagen: WrongNumber must be in [0,1)")
	case c.FriendActive <= 0 || c.FriendActive > 1:
		return fmt.Errorf("datagen: FriendActive must be in (0,1]")
	}
	return nil
}

// TelephoneData is the generated call workload.
type TelephoneData struct {
	Config   TelephoneConfig
	Universe *graph.Universe
	Windows  []*graph.Window
	Truth    Truth
}

// SubscriberLabel names subscriber i as a phone number.
func SubscriberLabel(i int) string { return fmt.Sprintf("+1555%07d", i) }

// BusinessLabel names business j.
func BusinessLabel(j int) string { return fmt.Sprintf("+1800%07d", j) }

// GenerateTelephone produces the synthetic call graph windows. All
// nodes are PartNone: the graph is general, and signatures may contain
// any other node.
func GenerateTelephone(cfg TelephoneConfig) (*TelephoneData, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	root := stats.NewRNG(cfg.Seed)

	u := graph.NewUniverse()
	for i := 0; i < cfg.Subscribers; i++ {
		u.MustIntern(SubscriberLabel(i), graph.PartNone)
	}
	for j := 0; j < cfg.Businesses; j++ {
		u.MustIntern(BusinessLabel(j), graph.PartNone)
	}
	// Destination index space: subscribers [0, S), businesses [S, S+B).
	businessBase := cfg.Subscribers

	// Business popularity decays Zipf: 411 gets called far more than
	// the 30th service line.
	businesses := make([]int, cfg.Businesses)
	for j := range businesses {
		businesses[j] = businessBase + j
	}

	// Communities partition subscribers round-robin.
	community := func(i int) int { return i % cfg.Communities }
	members := make([][]int, cfg.Communities)
	for i := 0; i < cfg.Subscribers; i++ {
		c := community(i)
		members[c] = append(members[c], i)
	}

	profiles := make([]*profile, cfg.Subscribers)
	truth := Truth{}
	for i := 0; i < cfg.Subscribers; i++ {
		r := root.SplitN("subscriber", i)
		circle := pickUniformExcluding(r, members[community(i)], cfg.CirclePicks, i)
		friends := make([]int, 0, cfg.GlobalFriends)
		for len(friends) < cfg.GlobalFriends {
			f := r.Intn(cfg.Subscribers)
			if f != i && !intsContain(friends, f) {
				friends = append(friends, f)
			}
		}
		p, err := buildProfile(r,
			pickDistinct(r, businesses, cfg.BusinessPicks), cfg.BusinessMass,
			circle, len(circle), cfg.CircleMass,
			friends, cfg.FriendMass)
		if err != nil {
			return nil, fmt.Errorf("datagen: subscriber %d: %w", i, err)
		}
		profiles[i] = p
		truth.Individuals = append(truth.Individuals, Individual{
			ID:     fmt.Sprintf("subscriber-%05d", i),
			Labels: []string{SubscriberLabel(i)},
		})
	}

	windows := make([]*graph.Window, cfg.Windows)
	for w := 0; w < cfg.Windows; w++ {
		b := graph.NewBuilder(u, w)
		for i := 0; i < cfg.Subscribers; i++ {
			r := root.SplitN(fmt.Sprintf("w%d-calls", w), i)
			active := func(dest int) bool {
				return root.SplitN(fmt.Sprintf("w%d-act-%d", w, i), dest).
					Bernoulli(cfg.FriendActive)
			}
			sampler, err := profiles[i].windowSampler(r, active)
			if err != nil {
				return nil, fmt.Errorf("datagen: subscriber %d window %d: %w", i, w, err)
			}
			n := r.Poisson(cfg.MeanCalls)
			src := graph.NodeID(i)
			for call := 0; call < n; call++ {
				var dest int
				if r.Bernoulli(cfg.WrongNumber) {
					dest = r.Intn(cfg.Subscribers)
				} else {
					dest = profiles[i].dests[sampler.Sample()]
				}
				if dest == i {
					continue
				}
				if err := b.Add(src, graph.NodeID(dest), 1); err != nil {
					return nil, fmt.Errorf("datagen: call %d->%d: %w", i, dest, err)
				}
			}
		}
		windows[w] = b.Build()
	}
	return &TelephoneData{
		Config:   cfg,
		Universe: u,
		Windows:  windows,
		Truth:    truth,
	}, nil
}

// pickUniformExcluding samples up to k distinct pool members, never
// returning exclude.
func pickUniformExcluding(rng *stats.RNG, pool []int, k int, exclude int) []int {
	filtered := make([]int, 0, len(pool))
	for _, m := range pool {
		if m != exclude {
			filtered = append(filtered, m)
		}
	}
	return pickUniform(rng, filtered, k)
}

func intsContain(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
