package datagen

import (
	"fmt"
	"math"

	"graphsig/internal/graph"
	"graphsig/internal/stats"
)

// QueryLogConfig parameterizes the synthetic data-warehouse query log
// standing in for the paper's second dataset (820K tuples, 851 users,
// 979 tables, five windows, average tables-per-user ~6 so that k=3 is
// half of it). Users hold small, highly stable table sets determined by
// their role, which is what makes retrieval on this dataset near-perfect
// in the paper.
type QueryLogConfig struct {
	Seed int64

	Users   int
	Tables  int
	Windows int

	// Roles is the number of job roles; each role owns a pool of tables.
	Roles int
	// RolePoolSize is the number of tables in one role's pool.
	RolePoolSize int
	// RolePicks is how many pool tables a user routinely queries.
	RolePicks int
	// PersonalPicks is how many extra tables a user uniquely queries.
	PersonalPicks int
	// PopularHead is the number of globally shared tables (common fact
	// and dimension tables every role touches).
	PopularHead int
	// HeadPicks is how many head tables each user queries.
	HeadPicks int

	// MeanQueries is the mean number of query tuples per user per window.
	MeanQueries float64
	// Novelty is the probability of an out-of-routine table access.
	Novelty float64
}

// DefaultQueryLogConfig mirrors the paper's query-log data.
func DefaultQueryLogConfig(seed int64) QueryLogConfig {
	return QueryLogConfig{
		Seed:          seed,
		Users:         851,
		Tables:        979,
		Windows:       5,
		Roles:         120,
		RolePoolSize:  14,
		RolePicks:     4,
		PersonalPicks: 3,
		PopularHead:   12,
		HeadPicks:     2,
		MeanQueries:   22,
		Novelty:       0.04,
	}
}

func (c *QueryLogConfig) validate() error {
	switch {
	case c.Users <= 0 || c.Tables <= 0 || c.Windows <= 0:
		return fmt.Errorf("datagen: Users, Tables, Windows must be positive")
	case c.Roles <= 0:
		return fmt.Errorf("datagen: Roles must be positive")
	case c.Tables <= c.PopularHead:
		return fmt.Errorf("datagen: Tables must exceed PopularHead")
	case c.Novelty < 0 || c.Novelty >= 1:
		return fmt.Errorf("datagen: Novelty must be in [0,1)")
	case c.MeanQueries <= 0:
		return fmt.Errorf("datagen: MeanQueries must be positive")
	}
	return nil
}

// QueryTuple is one (user, table) access observation, the unit of the
// paper's query-log trace.
type QueryTuple struct {
	User   string
	Table  string
	Window int
}

// QueryLogData is the generated workload.
type QueryLogData struct {
	Config   QueryLogConfig
	Tuples   []QueryTuple
	Universe *graph.Universe
	Windows  []*graph.Window
	Truth    Truth
}

// UserLabel names user i.
func UserLabel(i int) string { return fmt.Sprintf("user%04d", i) }

// TableLabel names table j.
func TableLabel(j int) string { return fmt.Sprintf("table%04d", j) }

// GenerateQueryLog produces the synthetic query log and the per-window
// bipartite user→table graphs. All randomness derives from cfg.Seed.
func GenerateQueryLog(cfg QueryLogConfig) (*QueryLogData, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	root := stats.NewRNG(cfg.Seed)

	head := make([]int, cfg.PopularHead)
	for i := range head {
		head[i] = i
	}
	// Table popularity beyond the head decays gently (flatter than the
	// flow data's destination popularity): warehouse tables serve
	// specific roles rather than everyone.
	tail := cfg.Tables - cfg.PopularHead
	tailWeights := make([]float64, tail)
	for i := range tailWeights {
		tailWeights[i] = math.Pow(float64(i+1), -0.7)
	}
	tailSpace, err := stats.NewWeighted(root.Split("table-popularity"), tailWeights)
	if err != nil {
		return nil, fmt.Errorf("datagen: table space: %w", err)
	}

	// Role pools draw mostly from a role-specific region of the tail so
	// different roles touch mostly different tables.
	poolRNG := root.Split("role-pools")
	pools := make([][]int, cfg.Roles)
	for rIdx := range pools {
		pool := make([]int, 0, cfg.RolePoolSize)
		seen := map[int]struct{}{}
		for len(pool) < cfg.RolePoolSize && len(seen) < tail {
			d := cfg.PopularHead + personalSpaceSampleBiased(poolRNG, tail, rIdx, cfg.Roles)
			if _, dup := seen[d]; dup {
				continue
			}
			seen[d] = struct{}{}
			pool = append(pool, d)
		}
		pools[rIdx] = pool
	}

	// Universe: users first, then tables, in index order.
	u := graph.NewUniverse()
	for i := 0; i < cfg.Users; i++ {
		u.MustIntern(UserLabel(i), graph.Part1)
	}
	for j := 0; j < cfg.Tables; j++ {
		u.MustIntern(TableLabel(j), graph.Part2)
	}

	type userState struct {
		profile *profile
		sampler *stats.Weighted
		rng     *stats.RNG
	}
	states := make([]userState, cfg.Users)
	truth := Truth{}
	for i := 0; i < cfg.Users; i++ {
		r := root.SplitN("user", i)
		role := r.Intn(cfg.Roles)
		personal := tailSpace.SampleDistinct(cfg.PersonalPicks)
		for k := range personal {
			personal[k] += cfg.PopularHead
		}
		p, err := buildProfile(r,
			pickDistinct(r, head, cfg.HeadPicks), 0.15,
			pools[role], cfg.RolePicks, 0.37,
			personal, 0.48)
		if err != nil {
			return nil, fmt.Errorf("datagen: user %d profile: %w", i, err)
		}
		sampler, err := p.sampler(r)
		if err != nil {
			return nil, fmt.Errorf("datagen: user %d sampler: %w", i, err)
		}
		states[i] = userState{profile: p, sampler: sampler, rng: r}
		truth.Individuals = append(truth.Individuals, Individual{
			ID:     fmt.Sprintf("analyst-%04d", i),
			Labels: []string{UserLabel(i)},
		})
	}

	var tuples []QueryTuple
	builders := make([]*graph.Builder, cfg.Windows)
	for w := range builders {
		builders[w] = graph.NewBuilder(u, w)
	}
	for w := 0; w < cfg.Windows; w++ {
		for i := 0; i < cfg.Users; i++ {
			st := &states[i]
			r := root.SplitN(fmt.Sprintf("w%d-queries", w), i)
			n := r.Poisson(cfg.MeanQueries)
			for q := 0; q < n; q++ {
				var table int
				if r.Bernoulli(cfg.Novelty) {
					table = r.Intn(cfg.Tables)
				} else {
					table = st.profile.dests[st.sampler.Sample()]
				}
				tuples = append(tuples, QueryTuple{
					User:   UserLabel(i),
					Table:  TableLabel(table),
					Window: w,
				})
				userID, _ := u.Lookup(UserLabel(i))
				tableID, _ := u.Lookup(TableLabel(table))
				if err := builders[w].Add(userID, tableID, 1); err != nil {
					return nil, fmt.Errorf("datagen: query log: %w", err)
				}
			}
		}
	}
	windows := make([]*graph.Window, cfg.Windows)
	for w, b := range builders {
		windows[w] = b.Build()
	}
	return &QueryLogData{
		Config:   cfg,
		Tuples:   tuples,
		Universe: u,
		Windows:  windows,
		Truth:    truth,
	}, nil
}
