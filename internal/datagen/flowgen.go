package datagen

import (
	"fmt"
	"math"
	"time"

	"graphsig/internal/graph"
	"graphsig/internal/netflow"
	"graphsig/internal/stats"
)

// EnterpriseConfig parameterizes the synthetic enterprise-flow workload
// standing in for the paper's six-week capture (>300 local hosts, TCP
// flows to external hosts, five-weekday windows, average local out-degree
// ~20 so that k=10 is half of it).
type EnterpriseConfig struct {
	Seed int64

	// LocalHosts is the number of observable local labels (|V1|).
	LocalHosts int
	// ExternalHosts is the number of external labels (|V2|).
	ExternalHosts int
	// Communities is the number of host communities (departments).
	Communities int
	// Windows is the number of aggregation windows.
	Windows int

	// PopularHead is how many globally popular destinations exist
	// (search, mail, update servers): the high in-degree nodes that make
	// the UT scheme interesting.
	PopularHead int
	// HeadPicks / CommunityPicks / PersonalPicks size each profile pool.
	HeadPicks      int
	CommunityPicks int
	PersonalPicks  int
	// CommunityPoolSize is the number of destinations shared by one
	// community.
	CommunityPoolSize int
	// HeadMass / CommunityMass / PersonalMass split the preference
	// probability mass between the pools; they should sum to ~1.
	HeadMass      float64
	CommunityMass float64
	PersonalMass  float64

	// MeanFlows is the mean number of flow records a host emits per
	// window (Poisson, scaled by a per-host lognormal activity level).
	MeanFlows float64
	// Novelty is the probability that a flow targets a uniformly random
	// destination outside the host's routine (one-off browsing): the
	// noise that stresses robustness and penalizes in-degree-scaled
	// schemes.
	Novelty float64
	// PersonalActive is the probability that a personal (rare)
	// destination is active in a given window. Rare interests come and
	// go; popular and community destinations persist. This is the
	// frequency↔stability correlation of real traffic.
	PersonalActive float64

	// MultiusageIndividuals is how many hidden individuals control more
	// than one local label (home/office/hotspot presences).
	MultiusageIndividuals int
	// MaxLabelsPerIndividual caps the labels one individual controls.
	MaxLabelsPerIndividual int

	// WindowLength is the wall-clock span of one window (the paper uses
	// five weekdays).
	WindowLength time.Duration
	// Origin is the capture start time.
	Origin time.Time
}

// DefaultEnterpriseConfig mirrors the paper's data at laptop scale.
func DefaultEnterpriseConfig(seed int64) EnterpriseConfig {
	return EnterpriseConfig{
		Seed:                   seed,
		LocalHosts:             300,
		ExternalHosts:          8000,
		Communities:            15,
		Windows:                6,
		PopularHead:            40,
		HeadPicks:              8,
		CommunityPicks:         12,
		PersonalPicks:          25,
		CommunityPoolSize:      36,
		HeadMass:               0.06,
		CommunityMass:          0.34,
		PersonalMass:           0.60,
		MeanFlows:              42,
		Novelty:                0.15,
		PersonalActive:         0.5,
		MultiusageIndividuals:  20,
		MaxLabelsPerIndividual: 3,
		WindowLength:           5 * 24 * time.Hour,
		Origin:                 time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC),
	}
}

func (c *EnterpriseConfig) validate() error {
	switch {
	case c.LocalHosts <= 0:
		return fmt.Errorf("datagen: LocalHosts must be positive")
	case c.ExternalHosts <= c.PopularHead:
		return fmt.Errorf("datagen: ExternalHosts must exceed PopularHead")
	case c.Communities <= 0:
		return fmt.Errorf("datagen: Communities must be positive")
	case c.Windows <= 0:
		return fmt.Errorf("datagen: Windows must be positive")
	case c.Novelty < 0 || c.Novelty >= 1:
		return fmt.Errorf("datagen: Novelty must be in [0,1)")
	case c.PersonalActive <= 0 || c.PersonalActive > 1:
		return fmt.Errorf("datagen: PersonalActive must be in (0,1]")
	case c.MeanFlows <= 0:
		return fmt.Errorf("datagen: MeanFlows must be positive")
	case c.MultiusageIndividuals*c.MaxLabelsPerIndividual > c.LocalHosts:
		return fmt.Errorf("datagen: multiusage labels exceed LocalHosts")
	case c.WindowLength <= 0:
		return fmt.Errorf("datagen: WindowLength must be positive")
	}
	return nil
}

// EnterpriseData is the generated workload: the raw flow records (as a
// real capture would provide), the aggregated per-window communication
// graphs, and the hidden ground truth.
type EnterpriseData struct {
	Config   EnterpriseConfig
	Records  []netflow.Record
	Universe *graph.Universe
	Windows  []*graph.Window
	Truth    Truth
}

// LocalLabel names local host i ("10.0.x.y").
func LocalLabel(i int) string {
	return fmt.Sprintf("10.0.%d.%d", i/250, i%250)
}

// ExternalLabel names external host j.
func ExternalLabel(j int) string {
	return fmt.Sprintf("198.%d.%d.%d", 18+j/62500, (j/250)%250, j%250)
}

// LocalClassifier splits the enterprise universe: local hosts are Part1.
var LocalClassifier = netflow.PrefixClassifier("10.")

// GenerateEnterprise produces the full synthetic capture and the
// aggregated windows. All randomness derives from cfg.Seed.
func GenerateEnterprise(cfg EnterpriseConfig) (*EnterpriseData, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	root := stats.NewRNG(cfg.Seed)

	// External popularity: Zipf over all destinations; the head indices
	// [0, PopularHead) form the globally popular pool.
	popRNG := root.Split("external-popularity")
	popular := make([]int, cfg.PopularHead)
	for i := range popular {
		popular[i] = i
	}
	// Personal picks are sampled Zipf over the non-head tail so that
	// some personal destinations are shared between hosts (giving UT's
	// denominator a spread of in-degrees) while most are rare.
	// A gently decaying tail: popular-ish personal destinations are
	// shared by a handful of hosts (spreading UT's in-degree
	// denominator) without making any two hosts near-twins by chance.
	tail := cfg.ExternalHosts - cfg.PopularHead
	tailWeights := make([]float64, tail)
	for i := range tailWeights {
		tailWeights[i] = math.Pow(float64(i+1), -0.85)
	}
	personalSpace, err := stats.NewWeighted(popRNG, tailWeights)
	if err != nil {
		return nil, fmt.Errorf("datagen: personal space: %w", err)
	}

	// Community pools: distinct slices of the tail, shifted so pools
	// overlap slightly between neighbouring communities.
	commRNG := root.Split("communities")
	pools := make([][]int, cfg.Communities)
	for c := range pools {
		pool := make([]int, 0, cfg.CommunityPoolSize)
		seen := map[int]struct{}{}
		for len(pool) < cfg.CommunityPoolSize {
			d := cfg.PopularHead + personalSpaceSampleBiased(commRNG, tail, c, cfg.Communities)
			if _, dup := seen[d]; dup {
				continue
			}
			seen[d] = struct{}{}
			pool = append(pool, d)
		}
		pools[c] = pool
	}

	// Individuals and label assignment.
	individuals, labelOwner := assignIndividuals(root.Split("individuals"), cfg)

	// The individual contributes the identity-bearing traffic shared by
	// all of its labels: the personal destination set and the habitual
	// popular-head picks. Each *label* additionally carries traffic of
	// its own environment (its community/department), because a person's
	// home, office and hotspot connection points sit in different local
	// environments. This split is what makes one-hop schemes — which key
	// on the shared personal top talkers — the right tool for multiusage
	// detection, exactly as the paper argues (§V).
	type indParts struct {
		personal []int
		head     []int
	}
	parts := make([]indParts, len(individuals))
	for ind := range individuals {
		r := root.SplitN("profile", ind)
		personal := personalSpace.SampleDistinct(cfg.PersonalPicks)
		for i := range personal {
			personal[i] += cfg.PopularHead
		}
		parts[ind] = indParts{
			personal: personal,
			head:     pickDistinct(r, popular, cfg.HeadPicks),
		}
	}
	type hostState struct {
		profile  *profile
		activity float64
	}
	states := make([]hostState, cfg.LocalHosts)
	for label := 0; label < cfg.LocalHosts; label++ {
		r := root.SplitN("host", label)
		community := r.Intn(cfg.Communities)
		ip := parts[labelOwner[label]]
		p, err := buildProfile(r,
			ip.head, cfg.HeadMass,
			pools[community], cfg.CommunityPicks, cfg.CommunityMass,
			ip.personal, cfg.PersonalMass)
		if err != nil {
			return nil, err
		}
		states[label] = hostState{
			profile:  p,
			activity: r.LogNormal(0, 0.35),
		}
	}

	// Emit flow records window by window.
	var records []netflow.Record
	for w := 0; w < cfg.Windows; w++ {
		for label := 0; label < cfg.LocalHosts; label++ {
			st := &states[label]
			r := root.SplitN(fmt.Sprintf("w%d-flows", w), label)
			owner := labelOwner[label]
			active := func(dest int) bool {
				return root.SplitN(fmt.Sprintf("w%d-act-%d", w, owner), dest).
					Bernoulli(cfg.PersonalActive)
			}
			sampler, err := st.profile.windowSampler(r, active)
			if err != nil {
				return nil, fmt.Errorf("datagen: host %d window %d sampler: %w", label, w, err)
			}
			n := r.Poisson(cfg.MeanFlows * st.activity)
			for f := 0; f < n; f++ {
				var dest int
				if r.Bernoulli(cfg.Novelty) {
					dest = r.Intn(cfg.ExternalHosts)
				} else {
					dest = st.profile.dests[sampler.Sample()]
				}
				start := cfg.Origin.
					Add(time.Duration(w) * cfg.WindowLength).
					Add(time.Duration(r.Int63n(int64(cfg.WindowLength))))
				records = append(records, netflow.Record{
					Src:      LocalLabel(label),
					Dst:      ExternalLabel(dest),
					Start:    start,
					Duration: time.Duration(1+r.Intn(120)) * time.Second,
					Sessions: 1,
					Bytes:    int64(200 + r.Intn(500_000)),
					Packets:  int64(2 + r.Intn(800)),
					Proto:    netflow.TCP,
				})
			}
		}
	}

	windows, err := netflow.Aggregate(records, netflow.AggregateOptions{
		WindowSize: cfg.WindowLength,
		Origin:     cfg.Origin,
		Classify:   LocalClassifier,
		TCPOnly:    true,
	})
	if err != nil {
		return nil, fmt.Errorf("datagen: aggregate: %w", err)
	}
	if len(windows) != cfg.Windows {
		// A window with zero flows at the end would shorten the slice;
		// treat that as a misconfiguration (MeanFlows far too small).
		return nil, fmt.Errorf("datagen: produced %d windows, want %d (MeanFlows too small?)", len(windows), cfg.Windows)
	}
	return &EnterpriseData{
		Config:   cfg,
		Records:  records,
		Universe: windows[0].Universe(),
		Windows:  windows,
		Truth:    Truth{Individuals: individuals},
	}, nil
}

// personalSpaceSampleBiased samples a tail index biased toward a
// community-specific region so pools differ between communities while
// still favouring popular tail members.
func personalSpaceSampleBiased(rng *stats.RNG, tail, community, communities int) int {
	region := tail / communities
	if region == 0 {
		return rng.Intn(tail)
	}
	base := community * region
	// 70% of the pool comes from the community's own region, 30% from
	// anywhere in the tail (inter-community overlap).
	if rng.Bernoulli(0.7) {
		// Rank-biased within the region.
		return base + int(float64(region)*rng.Float64()*rng.Float64())
	}
	return rng.Intn(tail)
}

// assignIndividuals creates the hidden individuals and maps each local
// label index to its owning individual index. The first
// MultiusageIndividuals own 2..MaxLabelsPerIndividual labels each.
func assignIndividuals(rng *stats.RNG, cfg EnterpriseConfig) ([]Individual, []int) {
	labelOwner := make([]int, cfg.LocalHosts)
	var individuals []Individual
	label := 0
	for m := 0; m < cfg.MultiusageIndividuals; m++ {
		k := 2
		if cfg.MaxLabelsPerIndividual > 2 {
			k += rng.Intn(cfg.MaxLabelsPerIndividual - 1)
		}
		ind := Individual{ID: fmt.Sprintf("individual-%03d", len(individuals))}
		for j := 0; j < k && label < cfg.LocalHosts; j++ {
			ind.Labels = append(ind.Labels, LocalLabel(label))
			labelOwner[label] = len(individuals)
			label++
		}
		individuals = append(individuals, ind)
	}
	for ; label < cfg.LocalHosts; label++ {
		individuals = append(individuals, Individual{
			ID:     fmt.Sprintf("individual-%03d", len(individuals)),
			Labels: []string{LocalLabel(label)},
		})
		labelOwner[label] = len(individuals) - 1
	}
	return individuals, labelOwner
}
