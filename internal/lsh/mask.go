package lsh

import (
	"math/bits"

	"graphsig/internal/graph"
)

// Mask is a 128-bit one-hash Bloom signature of a node set: each node
// sets exactly one of 128 bits chosen by the same mix hash the MinHash
// machinery uses. Unlike the banding Index — which trades recall for
// speed — masks support a *deterministic* bound: hash collisions can
// only merge bits, so for any two sets A and B
//
//	popcount(mask(A) | mask(B)) ≤ |A ∪ B|
//
// always holds, with no probabilistic caveat. The exact-prefilter in
// internal/distmat turns that union lower bound into an intersection
// upper bound (|A∩B| ≤ |A| + |B| − popcount) and rejects candidate
// pairs that provably cannot beat a distance threshold, falling back to
// the exact kernels for every survivor.
type Mask [2]uint64

// NewMask builds the mask of a node set.
func NewMask(nodes []graph.NodeID) Mask {
	var m Mask
	for _, u := range nodes {
		h := mix(uint64(uint32(u)))
		m[(h>>6)&1] |= 1 << (h & 63)
	}
	return m
}

// UnionPop returns popcount(m | o): a lower bound on the size of the
// union of the two underlying node sets.
func (m Mask) UnionPop(o Mask) int {
	return bits.OnesCount64(m[0]|o[0]) + bits.OnesCount64(m[1]|o[1])
}
