// Package lsh implements approximate nearest-neighbour signature
// comparison via MinHash and Locality-Sensitive Hashing banding (§VI
// "Scalable signature comparison"): given a signature, find the most
// Jaccard-similar signatures in a population without the quadratic
// all-pairs scan.
package lsh

import (
	"fmt"
	"math"

	"graphsig/internal/core"
	"graphsig/internal/graph"
)

// MinHash is an h-component MinHash fingerprint of a signature's node
// set. Two fingerprints agree on each component with probability equal
// to the Jaccard similarity of the underlying sets.
type MinHash struct {
	vals []uint64
}

// Hasher produces MinHash fingerprints with a fixed hash family so that
// fingerprints from the same Hasher are comparable.
type Hasher struct {
	seeds []uint64
}

// NewHasher builds a hasher with h hash functions.
func NewHasher(h int, seed uint64) (*Hasher, error) {
	if h <= 0 {
		return nil, fmt.Errorf("lsh: hasher needs a positive component count, got %d", h)
	}
	seeds := make([]uint64, h)
	s := mix(seed ^ 0xA5A5A5A5A5A5A5A5)
	for i := range seeds {
		s = mix(s)
		seeds[i] = s
	}
	return &Hasher{seeds: seeds}, nil
}

// Components reports the number of hash functions.
func (h *Hasher) Components() int { return len(h.seeds) }

// Fingerprint computes the MinHash of the signature's node set. Weights
// are deliberately ignored: this index serves the Jaccard distance,
// matching the paper's pointer to LSH for Dist_Jac [14].
func (h *Hasher) Fingerprint(sig core.Signature) MinHash {
	vals := make([]uint64, len(h.seeds))
	for i := range vals {
		vals[i] = math.MaxUint64
	}
	for _, u := range sig.Nodes {
		for i, seed := range h.seeds {
			if v := mix(uint64(u) ^ seed); v < vals[i] {
				vals[i] = v
			}
		}
	}
	return MinHash{vals: vals}
}

// EstimateJaccard estimates the Jaccard *similarity* (1 − Dist_Jac) of
// the sets behind two fingerprints from the same Hasher.
func EstimateJaccard(a, b MinHash) (float64, error) {
	if len(a.vals) != len(b.vals) || len(a.vals) == 0 {
		return 0, fmt.Errorf("lsh: fingerprints of mismatched size %d/%d", len(a.vals), len(b.vals))
	}
	match := 0
	for i := range a.vals {
		if a.vals[i] == b.vals[i] {
			match++
		}
	}
	return float64(match) / float64(len(a.vals)), nil
}

func mix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Index is an LSH banding index over MinHash fingerprints: bands of
// rows hashed into buckets; signatures sharing any band bucket become
// candidate neighbours. With b bands of r rows, a pair with Jaccard
// similarity s collides with probability 1 − (1 − s^r)^b.
type Index struct {
	hasher *Hasher
	bands  int
	rows   int

	buckets []map[uint64][]int // one bucket map per band
	items   []indexedItem
	ids     map[graph.NodeID]int
}

type indexedItem struct {
	node graph.NodeID
	fp   MinHash
}

// NewIndex builds an index with the given band/row split; the hasher
// must have exactly bands·rows components.
func NewIndex(hasher *Hasher, bands, rows int) (*Index, error) {
	if bands <= 0 || rows <= 0 {
		return nil, fmt.Errorf("lsh: bands and rows must be positive, got %d×%d", bands, rows)
	}
	if hasher.Components() != bands*rows {
		return nil, fmt.Errorf("lsh: hasher has %d components, want bands·rows = %d", hasher.Components(), bands*rows)
	}
	idx := &Index{
		hasher:  hasher,
		bands:   bands,
		rows:    rows,
		buckets: make([]map[uint64][]int, bands),
		ids:     map[graph.NodeID]int{},
	}
	for b := range idx.buckets {
		idx.buckets[b] = map[uint64][]int{}
	}
	return idx, nil
}

// Add inserts a node's signature. Re-adding a node is an error; build
// the index once per (window, scheme).
func (idx *Index) Add(node graph.NodeID, sig core.Signature) error {
	if _, dup := idx.ids[node]; dup {
		return fmt.Errorf("lsh: node %d already indexed", node)
	}
	fp := idx.hasher.Fingerprint(sig)
	item := len(idx.items)
	idx.items = append(idx.items, indexedItem{node: node, fp: fp})
	idx.ids[node] = item
	for b := 0; b < idx.bands; b++ {
		key := idx.bandKey(fp, b)
		idx.buckets[b][key] = append(idx.buckets[b][key], item)
	}
	return nil
}

// Len reports the number of indexed signatures.
func (idx *Index) Len() int { return len(idx.items) }

func (idx *Index) bandKey(fp MinHash, b int) uint64 {
	h := uint64(0x811C9DC5C0FFEE00) ^ uint64(b)
	for r := 0; r < idx.rows; r++ {
		h = mix(h ^ fp.vals[b*idx.rows+r])
	}
	return h
}

// Neighbor is one approximate nearest-neighbour result.
type Neighbor struct {
	Node graph.NodeID
	// Similarity is the MinHash-estimated Jaccard similarity.
	Similarity float64
}

// Query returns candidate neighbours of sig — every indexed signature
// sharing at least one band bucket — ranked by estimated similarity
// descending (ties by NodeID), excluding exclude. Candidates with
// estimated similarity below minSim are dropped.
func (idx *Index) Query(sig core.Signature, exclude graph.NodeID, minSim float64) ([]Neighbor, error) {
	fp := idx.hasher.Fingerprint(sig)
	seen := map[int]struct{}{}
	var out []Neighbor
	for b := 0; b < idx.bands; b++ {
		for _, item := range idx.buckets[b][idx.bandKey(fp, b)] {
			if _, dup := seen[item]; dup {
				continue
			}
			seen[item] = struct{}{}
			it := idx.items[item]
			if it.node == exclude {
				continue
			}
			sim, err := EstimateJaccard(fp, it.fp)
			if err != nil {
				return nil, err
			}
			if sim >= minSim {
				out = append(out, Neighbor{Node: it.node, Similarity: sim})
			}
		}
	}
	sortNeighbors(out)
	return out, nil
}

func sortNeighbors(ns []Neighbor) {
	// Insertion sort: candidate lists are short by design.
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0; j-- {
			a, b := ns[j-1], ns[j]
			if b.Similarity > a.Similarity || (b.Similarity == a.Similarity && b.Node < a.Node) {
				ns[j-1], ns[j] = b, a
			} else {
				break
			}
		}
	}
}
