package lsh

import (
	"math/rand"
	"testing"

	"graphsig/internal/graph"
)

// TestMaskUnionPopIsLowerBound checks the deterministic contract the
// distmat prefilter rests on: for random node sets, the popcount of the
// OR-ed masks never exceeds the true union size.
func TestMaskUnionPopIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	randSet := func(n, span int) []graph.NodeID {
		if n > span {
			n = span
		}
		seen := map[graph.NodeID]bool{}
		for len(seen) < n {
			seen[graph.NodeID(rng.Intn(span))] = true
		}
		out := make([]graph.NodeID, 0, n)
		for u := range seen {
			out = append(out, u)
		}
		return out
	}
	for trial := 0; trial < 2000; trial++ {
		a := randSet(rng.Intn(40), 1+rng.Intn(300))
		b := randSet(rng.Intn(40), 1+rng.Intn(300))
		union := map[graph.NodeID]bool{}
		for _, u := range a {
			union[u] = true
		}
		for _, u := range b {
			union[u] = true
		}
		ma, mb := NewMask(a), NewMask(b)
		if got := ma.UnionPop(mb); got > len(union) {
			t.Fatalf("trial %d: UnionPop %d exceeds true union %d", trial, got, len(union))
		}
	}
}

// TestMaskDeterministic: the same set always hashes to the same mask,
// regardless of element order.
func TestMaskDeterministic(t *testing.T) {
	a := []graph.NodeID{9, 3, 200, 41}
	b := []graph.NodeID{41, 200, 3, 9}
	if NewMask(a) != NewMask(b) {
		t.Fatal("mask must be order-independent")
	}
	if (NewMask(nil) != Mask{}) {
		t.Fatal("empty set must produce the zero mask")
	}
}
