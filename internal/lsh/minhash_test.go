package lsh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"graphsig/internal/core"
	"graphsig/internal/graph"
)

func sigOf(nodes ...graph.NodeID) core.Signature {
	w := map[graph.NodeID]float64{}
	for _, n := range nodes {
		w[n] = 1
	}
	return core.FromWeights(w, len(nodes))
}

func TestHasherValidation(t *testing.T) {
	if _, err := NewHasher(0, 1); err == nil {
		t.Fatal("0 components accepted")
	}
}

func TestMinHashIdenticalSets(t *testing.T) {
	h, err := NewHasher(64, 7)
	if err != nil {
		t.Fatal(err)
	}
	a := sigOf(1, 2, 3)
	b := sigOf(1, 2, 3)
	sim, err := EstimateJaccard(h.Fingerprint(a), h.Fingerprint(b))
	if err != nil || sim != 1 {
		t.Fatalf("identical sets sim = %g, %v", sim, err)
	}
	c := sigOf(9, 10, 11)
	sim, err = EstimateJaccard(h.Fingerprint(a), h.Fingerprint(c))
	if err != nil {
		t.Fatal(err)
	}
	if sim > 0.2 {
		t.Fatalf("disjoint sets sim = %g", sim)
	}
}

func TestMinHashMismatchedSizes(t *testing.T) {
	h1, _ := NewHasher(16, 1)
	h2, _ := NewHasher(32, 1)
	if _, err := EstimateJaccard(h1.Fingerprint(sigOf(1)), h2.Fingerprint(sigOf(1))); err == nil {
		t.Fatal("mismatched fingerprints compared")
	}
}

// Property: the MinHash estimate concentrates around the true Jaccard
// similarity.
func TestMinHashEstimatesJaccard(t *testing.T) {
	h, err := NewHasher(256, 3)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		setA := map[graph.NodeID]bool{}
		setB := map[graph.NodeID]bool{}
		for i := 0; i < 30; i++ {
			n := graph.NodeID(rng.Intn(40))
			if rng.Intn(2) == 0 {
				setA[n] = true
			}
			if rng.Intn(2) == 0 {
				setB[n] = true
			}
		}
		if len(setA) == 0 || len(setB) == 0 {
			return true
		}
		inter, union := 0, 0
		all := map[graph.NodeID]bool{}
		for n := range setA {
			all[n] = true
		}
		for n := range setB {
			all[n] = true
		}
		for n := range all {
			union++
			if setA[n] && setB[n] {
				inter++
			}
		}
		truth := float64(inter) / float64(union)
		var a, b []graph.NodeID
		for n := range setA {
			a = append(a, n)
		}
		for n := range setB {
			b = append(b, n)
		}
		sim, err := EstimateJaccard(h.Fingerprint(sigOf(a...)), h.Fingerprint(sigOf(b...)))
		if err != nil {
			return false
		}
		// 256 components: standard error √(s(1−s)/256) ≤ 0.032.
		return math.Abs(sim-truth) < 0.15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexValidation(t *testing.T) {
	h, _ := NewHasher(32, 1)
	if _, err := NewIndex(h, 0, 4); err == nil {
		t.Fatal("0 bands accepted")
	}
	if _, err := NewIndex(h, 4, 0); err == nil {
		t.Fatal("0 rows accepted")
	}
	if _, err := NewIndex(h, 4, 4); err == nil {
		t.Fatal("mismatched hasher accepted")
	}
	idx, err := NewIndex(h, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Add(1, sigOf(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := idx.Add(1, sigOf(1, 2)); err == nil {
		t.Fatal("duplicate add accepted")
	}
	if idx.Len() != 1 {
		t.Fatalf("Len = %d", idx.Len())
	}
}

func TestIndexFindsNearDuplicates(t *testing.T) {
	h, err := NewHasher(32, 11)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := NewIndex(h, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 50 random signatures plus one near-duplicate pair.
	rng := rand.New(rand.NewSource(4))
	for i := graph.NodeID(0); i < 50; i++ {
		var nodes []graph.NodeID
		for j := 0; j < 10; j++ {
			nodes = append(nodes, graph.NodeID(1000+rng.Intn(2000)))
		}
		if err := idx.Add(i, sigOf(nodes...)); err != nil {
			t.Fatal(err)
		}
	}
	target := sigOf(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	twin := sigOf(1, 2, 3, 4, 5, 6, 7, 8, 9, 11)
	if err := idx.Add(100, target); err != nil {
		t.Fatal(err)
	}
	if err := idx.Add(101, twin); err != nil {
		t.Fatal(err)
	}
	got, err := idx.Query(target, 100, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || got[0].Node != 101 {
		t.Fatalf("twin not found: %+v", got)
	}
	if got[0].Similarity < 0.5 {
		t.Fatalf("twin similarity = %g", got[0].Similarity)
	}
	// The query excludes the queried node itself.
	for _, n := range got {
		if n.Node == 100 {
			t.Fatal("query returned the excluded node")
		}
	}
}

func TestIndexQueryRanking(t *testing.T) {
	h, _ := NewHasher(32, 2)
	idx, _ := NewIndex(h, 16, 2)
	if err := idx.Add(1, sigOf(1, 2, 3, 4)); err != nil {
		t.Fatal(err)
	}
	if err := idx.Add(2, sigOf(1, 2, 3, 9)); err != nil {
		t.Fatal(err)
	}
	if err := idx.Add(3, sigOf(1, 2, 3, 4)); err != nil {
		t.Fatal(err)
	}
	got, err := idx.Query(sigOf(1, 2, 3, 4), -1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) < 2 || got[0].Node != 1 || got[1].Node != 3 {
		t.Fatalf("ranking wrong: %+v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Similarity > got[i-1].Similarity {
			t.Fatal("neighbours not sorted by similarity")
		}
	}
}
