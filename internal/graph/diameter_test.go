package graph

import "testing"

func pathGraph(t *testing.T, n int) *Window {
	t.Helper()
	u := NewUniverse()
	for i := 0; i < n; i++ {
		u.MustIntern(string(rune('a'+i)), PartNone)
	}
	b := NewBuilder(u, 0)
	for i := 0; i+1 < n; i++ {
		if err := b.Add(NodeID(i), NodeID(i+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestEstimateDiameterPath(t *testing.T) {
	// A directed path a→b→…→f has undirected diameter n−1; sampling
	// every node must find it exactly.
	w := pathGraph(t, 6)
	if got := EstimateDiameter(w, 6, 1); got != 5 {
		t.Fatalf("diameter = %d, want 5", got)
	}
	// Few samples still lower-bound it.
	if got := EstimateDiameter(w, 2, 1); got < 3 || got > 5 {
		t.Fatalf("sampled diameter = %d outside [3,5]", got)
	}
}

func TestEstimateDiameterStar(t *testing.T) {
	u := NewUniverse()
	hub := u.MustIntern("hub", PartNone)
	b := NewBuilder(u, 0)
	for i := 0; i < 8; i++ {
		leaf := u.MustIntern(string(rune('a'+i)), PartNone)
		if err := b.Add(hub, leaf, 1); err != nil {
			t.Fatal(err)
		}
	}
	w := b.Build()
	if got := EstimateDiameter(w, 9, 2); got != 2 {
		t.Fatalf("star diameter = %d, want 2", got)
	}
}

func TestEstimateDiameterEmpty(t *testing.T) {
	u := NewUniverse()
	u.MustIntern("solo", PartNone)
	w, err := FromEdges(u, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := EstimateDiameter(w, 4, 3); got != 0 {
		t.Fatalf("empty diameter = %d", got)
	}
}
