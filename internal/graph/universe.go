// Package graph implements the communication-graph substrate from the
// paper "On Signatures for Communication Graphs" (ICDE 2008): weighted
// directed graphs aggregated over time windows, with node labels interned
// into a shared Universe so that a node keeps the same identity across
// windows, and optional bipartite partitioning (e.g. local hosts vs
// external hosts, users vs tables).
//
// A Window is immutable once built; construction goes through a Builder
// that aggregates repeated edges by summing weights. Adjacency is stored
// in compressed sparse rows for both out- and in-direction, so signature
// schemes can walk either way in O(degree).
package graph

import "fmt"

// NodeID identifies an interned node label. IDs are dense, starting at 0,
// and stable across all windows sharing the same Universe.
type NodeID int32

// Part classifies a node in an (optionally) bipartite graph.
type Part int8

const (
	// PartNone marks nodes of a general, non-bipartite graph.
	PartNone Part = iota
	// Part1 marks source-side nodes (e.g. local hosts, users).
	Part1
	// Part2 marks destination-side nodes (e.g. external hosts, tables).
	Part2
)

// String renders the part name.
func (p Part) String() string {
	switch p {
	case Part1:
		return "V1"
	case Part2:
		return "V2"
	default:
		return "V"
	}
}

// Universe interns node labels to dense NodeIDs shared by every window of
// a dataset, and records the bipartite part of each node. The paper's
// framework assumes V is (mostly) stable across windows; a shared
// Universe makes cross-window signature comparison by NodeID exact.
//
// Universe is not safe for concurrent mutation; build it up front, then
// read freely from any goroutine.
type Universe struct {
	labels []string
	parts  []Part
	ids    map[string]NodeID
}

// NewUniverse returns an empty Universe.
func NewUniverse() *Universe {
	return &Universe{ids: make(map[string]NodeID)}
}

// Intern returns the NodeID for label, assigning a fresh ID with the
// given part on first sight. Re-interning an existing label with a
// different part is an error: partition membership is a property of the
// label, not of any one window.
func (u *Universe) Intern(label string, part Part) (NodeID, error) {
	if id, ok := u.ids[label]; ok {
		if u.parts[id] != part {
			return 0, fmt.Errorf("graph: label %q re-interned as %v, was %v", label, part, u.parts[id])
		}
		return id, nil
	}
	id := NodeID(len(u.labels))
	u.labels = append(u.labels, label)
	u.parts = append(u.parts, part)
	u.ids[label] = id
	return id, nil
}

// MustIntern is Intern for call sites that control both the label and the
// part (generators, tests); it panics on part conflicts.
func (u *Universe) MustIntern(label string, part Part) NodeID {
	id, err := u.Intern(label, part)
	if err != nil {
		panic(err)
	}
	return id
}

// Lookup returns the NodeID for label, if interned.
func (u *Universe) Lookup(label string) (NodeID, bool) {
	id, ok := u.ids[label]
	return id, ok
}

// Label returns the label of id. It panics on out-of-range IDs, which
// indicate a Window/Universe mismatch (a programming error).
func (u *Universe) Label(id NodeID) string { return u.labels[id] }

// PartOf reports the bipartite part of id.
func (u *Universe) PartOf(id NodeID) Part { return u.parts[id] }

// Size reports the number of interned labels (|V|).
func (u *Universe) Size() int { return len(u.labels) }

// Bipartite reports whether any node carries a Part1/Part2 assignment.
func (u *Universe) Bipartite() bool {
	for _, p := range u.parts {
		if p != PartNone {
			return true
		}
	}
	return false
}

// PartMembers returns the IDs belonging to part, in ID order.
func (u *Universe) PartMembers(part Part) []NodeID {
	var out []NodeID
	for id, p := range u.parts {
		if p == part {
			out = append(out, NodeID(id))
		}
	}
	return out
}

// CountPart reports how many nodes belong to part.
func (u *Universe) CountPart(part Part) int {
	n := 0
	for _, p := range u.parts {
		if p == part {
			n++
		}
	}
	return n
}
