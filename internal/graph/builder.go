package graph

import (
	"fmt"
	"sort"
)

// Builder aggregates directed edge observations into a Window. Repeated
// (from, to) observations sum their weights, matching the paper's model
// of C[v,u] as total communication volume over the interval. Zero- and
// negative-total edges are dropped at Build time, which is how the
// perturbation module expresses weight decrements and deletions.
type Builder struct {
	universe *Universe
	index    int
	weights  map[edgeKey]float64
}

type edgeKey struct {
	from, to NodeID
}

// NewBuilder starts a Window for time index t over the given universe.
func NewBuilder(u *Universe, index int) *Builder {
	return &Builder{
		universe: u,
		index:    index,
		weights:  make(map[edgeKey]float64),
	}
}

// Add records one communication from v to u with the given weight
// (weight may be negative to express a decrement). Self-loops are
// rejected: a node does not communicate with itself in this model, and
// Definition 1 excludes v from its own signature anyway.
func (b *Builder) Add(from, to NodeID, weight float64) error {
	if from == to {
		return fmt.Errorf("graph: self-loop on node %d rejected", from)
	}
	if int(from) < 0 || int(from) >= b.universe.Size() || int(to) < 0 || int(to) >= b.universe.Size() {
		return fmt.Errorf("graph: edge (%d,%d) references node outside universe of size %d", from, to, b.universe.Size())
	}
	b.weights[edgeKey{from, to}] += weight
	return nil
}

// AddLabeled interns both labels (with the given parts) and records the
// edge. It is the entry point used by the netflow aggregator.
func (b *Builder) AddLabeled(from string, fromPart Part, to string, toPart Part, weight float64) error {
	f, err := b.universe.Intern(from, fromPart)
	if err != nil {
		return err
	}
	t, err := b.universe.Intern(to, toPart)
	if err != nil {
		return err
	}
	return b.Add(f, t, weight)
}

// AddEdges records a batch of edges; used when rebuilding perturbed
// windows from an edge list.
func (b *Builder) AddEdges(edges []Edge) error {
	for _, e := range edges {
		if err := b.Add(e.From, e.To, e.Weight); err != nil {
			return err
		}
	}
	return nil
}

// Len reports the number of distinct edges accumulated so far (including
// edges whose running weight is currently <= 0).
func (b *Builder) Len() int { return len(b.weights) }

// Build freezes the accumulated edges into an immutable Window. Edges
// whose total weight is <= 0 are dropped. The Builder can be reused for
// further aggregation after Build; subsequent Builds see all edges added
// so far.
func (b *Builder) Build() *Window {
	n := b.universe.Size()
	w := &Window{
		universe: b.universe,
		index:    b.index,
		built:    n,
		outIndex: make([]int32, n+1),
		inIndex:  make([]int32, n+1),
		outSum:   make([]float64, n),
	}
	type rec struct {
		k edgeKey
		w float64
	}
	recs := make([]rec, 0, len(b.weights))
	for k, wt := range b.weights {
		if wt > 0 {
			recs = append(recs, rec{k, wt})
		}
	}

	// Out-CSR: sort by (from, to).
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].k.from != recs[j].k.from {
			return recs[i].k.from < recs[j].k.from
		}
		return recs[i].k.to < recs[j].k.to
	})
	w.outTo = make([]NodeID, len(recs))
	w.outW = make([]float64, len(recs))
	for i, r := range recs {
		w.outTo[i] = r.k.to
		w.outW[i] = r.w
		w.outIndex[r.k.from+1]++
		w.outSum[r.k.from] += r.w
		w.totalWeight += r.w
	}
	for v := 0; v < n; v++ {
		w.outIndex[v+1] += w.outIndex[v]
	}

	// In-CSR: sort by (to, from).
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].k.to != recs[j].k.to {
			return recs[i].k.to < recs[j].k.to
		}
		return recs[i].k.from < recs[j].k.from
	})
	w.inFrom = make([]NodeID, len(recs))
	w.inW = make([]float64, len(recs))
	for i, r := range recs {
		w.inFrom[i] = r.k.from
		w.inW[i] = r.w
		w.inIndex[r.k.to+1]++
	}
	for v := 0; v < n; v++ {
		w.inIndex[v+1] += w.inIndex[v]
	}
	return w
}

// FromEdges builds a Window directly from an edge list.
func FromEdges(u *Universe, index int, edges []Edge) (*Window, error) {
	b := NewBuilder(u, index)
	if err := b.AddEdges(edges); err != nil {
		return nil, err
	}
	return b.Build(), nil
}
