package graph

import "sort"

// Edge is one weighted directed edge (v, u) with aggregated weight
// C[v,u] (e.g. number of TCP sessions, number of table accesses).
type Edge struct {
	From   NodeID
	To     NodeID
	Weight float64
}

// Window is a communication graph G_t = (V, E_t) aggregated over one time
// interval. V is the shared Universe; E_t is stored twice, as CSR
// out-adjacency (sorted by destination) and CSR in-adjacency (sorted by
// source), enabling O(deg) neighbour scans and O(log deg) weight lookups
// in either direction.
//
// A Window is immutable after Build and safe for concurrent reads.
type Window struct {
	universe *Universe
	index    int
	// built is the universe size when the window was frozen. Labels
	// interned afterwards are valid NodeIDs with no edges here; every
	// per-node accessor treats them as isolated nodes.
	built int

	outIndex []int32 // len = |V|+1
	outTo    []NodeID
	outW     []float64

	inIndex []int32 // len = |V|+1
	inFrom  []NodeID
	inW     []float64

	outSum      []float64 // Σ_u C[v,u] per node v
	totalWeight float64
}

// Universe returns the shared node universe.
func (w *Window) Universe() *Universe { return w.universe }

// Index reports the window's time index t.
func (w *Window) Index() int { return w.index }

// NumNodes reports |V| of the shared universe. Labels interned after
// this window was built count toward |V| and behave as isolated nodes.
func (w *Window) NumNodes() int { return w.universe.Size() }

// inBuilt reports whether v existed when the window was frozen (and is
// therefore indexable in the adjacency arrays).
func (w *Window) inBuilt(v NodeID) bool { return v >= 0 && int(v) < w.built }

// NumEdges reports |E_t|, the number of distinct directed edges.
func (w *Window) NumEdges() int { return len(w.outTo) }

// TotalWeight reports Σ C[v,u] over all edges.
func (w *Window) TotalWeight() float64 { return w.totalWeight }

// OutDegree reports |O(v)|.
func (w *Window) OutDegree(v NodeID) int {
	if !w.inBuilt(v) {
		return 0
	}
	return int(w.outIndex[v+1] - w.outIndex[v])
}

// InDegree reports |I(v)|.
func (w *Window) InDegree(v NodeID) int {
	if !w.inBuilt(v) {
		return 0
	}
	return int(w.inIndex[v+1] - w.inIndex[v])
}

// OutWeightSum reports Σ_u C[v,u], the denominator of the Top Talkers
// relevance and of the random-walk transition row for v.
func (w *Window) OutWeightSum(v NodeID) float64 {
	if !w.inBuilt(v) {
		return 0
	}
	return w.outSum[v]
}

// Out calls fn for every out-neighbour u of v with weight C[v,u],
// in increasing NodeID order. Iteration stops early if fn returns false.
func (w *Window) Out(v NodeID, fn func(u NodeID, weight float64) bool) {
	if !w.inBuilt(v) {
		return
	}
	for i := w.outIndex[v]; i < w.outIndex[v+1]; i++ {
		if !fn(w.outTo[i], w.outW[i]) {
			return
		}
	}
}

// In calls fn for every in-neighbour u of v with weight C[u,v],
// in increasing NodeID order. Iteration stops early if fn returns false.
func (w *Window) In(v NodeID, fn func(u NodeID, weight float64) bool) {
	if !w.inBuilt(v) {
		return
	}
	for i := w.inIndex[v]; i < w.inIndex[v+1]; i++ {
		if !fn(w.inFrom[i], w.inW[i]) {
			return
		}
	}
}

// Weight reports C[v,u], or 0 when the edge is absent.
func (w *Window) Weight(v, u NodeID) float64 {
	if !w.inBuilt(v) {
		return 0
	}
	lo, hi := int(w.outIndex[v]), int(w.outIndex[v+1])
	i := lo + sort.Search(hi-lo, func(i int) bool { return w.outTo[lo+i] >= u })
	if i < hi && w.outTo[i] == u {
		return w.outW[i]
	}
	return 0
}

// HasEdge reports whether the directed edge (v, u) exists.
func (w *Window) HasEdge(v, u NodeID) bool { return w.Weight(v, u) > 0 }

// Edges returns a copy of the edge list in (From, To) order. The paper's
// perturbation procedure (§IV-C) and masquerade simulation (§V) consume
// this list and rebuild a Window through a Builder.
func (w *Window) Edges() []Edge {
	out := make([]Edge, 0, len(w.outTo))
	for v := 0; v < w.built; v++ {
		for i := w.outIndex[v]; i < w.outIndex[v+1]; i++ {
			out = append(out, Edge{From: NodeID(v), To: w.outTo[i], Weight: w.outW[i]})
		}
	}
	return out
}

// ActiveNodes returns the nodes with at least one incident edge in this
// window, in ID order. Experiments restrict per-node measurements to
// active nodes so that labels absent from a window do not dilute results.
func (w *Window) ActiveNodes() []NodeID {
	var out []NodeID
	for v := 0; v < w.built; v++ {
		if w.outIndex[v+1] > w.outIndex[v] || w.inIndex[v+1] > w.inIndex[v] {
			out = append(out, NodeID(v))
		}
	}
	return out
}

// ActiveSources returns the nodes with at least one outgoing edge, in ID
// order. These are the nodes for which one-hop signatures are non-empty.
func (w *Window) ActiveSources() []NodeID {
	var out []NodeID
	for v := 0; v < w.built; v++ {
		if w.outIndex[v+1] > w.outIndex[v] {
			out = append(out, NodeID(v))
		}
	}
	return out
}
