package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// buildTest constructs a window over fresh labels n0..n5.
func buildTest(t *testing.T, edges [][3]float64) (*Universe, *Window) {
	t.Helper()
	u := NewUniverse()
	for i := 0; i < 6; i++ {
		u.MustIntern(label6(i), PartNone)
	}
	b := NewBuilder(u, 0)
	for _, e := range edges {
		if err := b.Add(NodeID(e[0]), NodeID(e[1]), e[2]); err != nil {
			t.Fatal(err)
		}
	}
	return u, b.Build()
}

func label6(i int) string {
	return string(rune('a' + i))
}

func TestBuilderAggregatesDuplicates(t *testing.T) {
	_, w := buildTest(t, [][3]float64{{0, 1, 2}, {0, 1, 3}, {0, 2, 1}})
	if got := w.Weight(0, 1); got != 5 {
		t.Fatalf("C[0,1] = %g, want 5", got)
	}
	if w.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d", w.NumEdges())
	}
	if w.OutWeightSum(0) != 6 {
		t.Fatalf("OutWeightSum = %g", w.OutWeightSum(0))
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	u := NewUniverse()
	u.MustIntern("a", PartNone)
	b := NewBuilder(u, 0)
	if err := b.Add(0, 0, 1); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := b.Add(0, 7, 1); err == nil {
		t.Fatal("out-of-universe edge accepted")
	}
}

func TestBuilderDropsNonPositive(t *testing.T) {
	_, w := buildTest(t, [][3]float64{{0, 1, 2}, {0, 1, -2}, {2, 3, 4}, {2, 3, -5}})
	if w.HasEdge(0, 1) || w.HasEdge(2, 3) {
		t.Fatal("non-positive-total edges not dropped")
	}
	if w.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d", w.NumEdges())
	}
}

func TestWindowAdjacency(t *testing.T) {
	_, w := buildTest(t, [][3]float64{
		{0, 1, 2}, {0, 2, 7}, {1, 2, 1}, {3, 2, 4}, {2, 0, 5},
	})
	if w.OutDegree(0) != 2 || w.InDegree(2) != 3 || w.OutDegree(5) != 0 {
		t.Fatal("degrees wrong")
	}
	// Out iteration in increasing NodeID order.
	var got []NodeID
	w.Out(0, func(u NodeID, wt float64) bool {
		got = append(got, u)
		return true
	})
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Out order wrong: %v", got)
	}
	// Early stop.
	calls := 0
	w.In(2, func(u NodeID, wt float64) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("early stop ignored, %d calls", calls)
	}
	if w.TotalWeight() != 19 {
		t.Fatalf("TotalWeight = %g", w.TotalWeight())
	}
	active := w.ActiveNodes()
	if len(active) != 4 {
		t.Fatalf("ActiveNodes = %v", active)
	}
	sources := w.ActiveSources()
	if len(sources) != 4 { // 0,1,2,3 all have out-edges
		t.Fatalf("ActiveSources = %v", sources)
	}
}

func TestWindowEdgesRoundTrip(t *testing.T) {
	u, w := buildTest(t, [][3]float64{{0, 1, 2}, {4, 5, 3}, {1, 0, 1}})
	w2, err := FromEdges(u, 1, w.Edges())
	if err != nil {
		t.Fatal(err)
	}
	if w2.Index() != 1 {
		t.Fatalf("index = %d", w2.Index())
	}
	if w2.NumEdges() != w.NumEdges() || w2.TotalWeight() != w.TotalWeight() {
		t.Fatal("edge round trip changed the graph")
	}
	for _, e := range w.Edges() {
		if w2.Weight(e.From, e.To) != e.Weight {
			t.Fatalf("edge (%d,%d) weight changed", e.From, e.To)
		}
	}
}

// TestWindowAgainstNaive cross-checks the CSR representation against a
// straightforward map-based model on random multigraphs.
func TestWindowAgainstNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		u := NewUniverse()
		for i := 0; i < n; i++ {
			u.MustIntern(string(rune('A'+i)), PartNone)
		}
		b := NewBuilder(u, 0)
		naive := map[[2]NodeID]float64{}
		for e := 0; e < rng.Intn(60); e++ {
			from := NodeID(rng.Intn(n))
			to := NodeID(rng.Intn(n))
			if from == to {
				continue
			}
			wt := float64(rng.Intn(9)) - 2 // sometimes negative
			naive[[2]NodeID{from, to}] += wt
			if err := b.Add(from, to, wt); err != nil {
				return false
			}
		}
		w := b.Build()
		// Edge set must match positive-weight naive entries.
		edges := 0
		outSum := make([]float64, n)
		inDeg := make([]int, n)
		for k, wt := range naive {
			if wt <= 0 {
				if w.HasEdge(k[0], k[1]) {
					return false
				}
				continue
			}
			edges++
			outSum[k[0]] += wt
			inDeg[k[1]]++
			if math.Abs(w.Weight(k[0], k[1])-wt) > 1e-9 {
				return false
			}
		}
		if w.NumEdges() != edges {
			return false
		}
		for v := 0; v < n; v++ {
			if math.Abs(w.OutWeightSum(NodeID(v))-outSum[v]) > 1e-9 {
				return false
			}
			if w.InDegree(NodeID(v)) != inDeg[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowPostBuildInterning(t *testing.T) {
	u, w := buildTest(t, [][3]float64{{0, 1, 2}})
	late := u.MustIntern("late", PartNone)
	// The late node is a valid, isolated node in the earlier window.
	if w.OutDegree(late) != 0 || w.InDegree(late) != 0 || w.OutWeightSum(late) != 0 {
		t.Fatal("late node not isolated")
	}
	if w.Weight(late, 0) != 0 || w.HasEdge(late, 0) {
		t.Fatal("late node has edges")
	}
	w.Out(late, func(NodeID, float64) bool { t.Fatal("Out visited"); return false })
	w.In(late, func(NodeID, float64) bool { t.Fatal("In visited"); return false })
	for _, v := range w.ActiveNodes() {
		if v == late {
			t.Fatal("late node listed active")
		}
	}
	if w.NumNodes() != u.Size() {
		t.Fatal("NumNodes should track the universe")
	}
}

func TestBuilderReuse(t *testing.T) {
	u := NewUniverse()
	u.MustIntern("a", PartNone)
	u.MustIntern("b", PartNone)
	b := NewBuilder(u, 0)
	if err := b.Add(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	w1 := b.Build()
	if err := b.Add(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	w2 := b.Build()
	if w1.Weight(0, 1) != 1 {
		t.Fatal("first build mutated by later Add")
	}
	if w2.Weight(0, 1) != 3 {
		t.Fatalf("second build weight = %g", w2.Weight(0, 1))
	}
}

func TestAddLabeled(t *testing.T) {
	u := NewUniverse()
	b := NewBuilder(u, 0)
	if err := b.AddLabeled("10.0.0.1", Part1, "ext", Part2, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.AddLabeled("10.0.0.1", Part2, "ext2", Part2, 1); err == nil {
		t.Fatal("part conflict not surfaced")
	}
	w := b.Build()
	src, _ := u.Lookup("10.0.0.1")
	dst, _ := u.Lookup("ext")
	if w.Weight(src, dst) != 2 {
		t.Fatal("labeled edge missing")
	}
}
