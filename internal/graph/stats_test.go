package graph

import (
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	u := NewUniverse()
	for _, l := range []string{"a", "b", "c", "d"} {
		u.MustIntern(l, PartNone)
	}
	b := NewBuilder(u, 0)
	for _, e := range [][3]int{{0, 1, 2}, {0, 2, 1}, {1, 2, 4}} {
		if err := b.Add(NodeID(e[0]), NodeID(e[1]), float64(e[2])); err != nil {
			t.Fatal(err)
		}
	}
	w := b.Build()
	s := Summarize(w)
	if s.Nodes != 4 || s.ActiveNodes != 3 || s.Edges != 3 || s.TotalWeight != 7 {
		t.Fatalf("stats wrong: %+v", s)
	}
	if s.MaxOutDegree != 2 || s.MaxInDegree != 2 {
		t.Fatalf("degree stats wrong: %+v", s)
	}
	if s.AvgOutDegree != 1.5 { // sources 0 (deg 2) and 1 (deg 1)
		t.Fatalf("AvgOutDegree = %g", s.AvgOutDegree)
	}
	if !strings.Contains(s.String(), "|E|=3") {
		t.Fatalf("String missing fields: %s", s)
	}
}

func TestAvgOutDegreePart(t *testing.T) {
	u := NewUniverse()
	u.MustIntern("l1", Part1)
	u.MustIntern("l2", Part1)
	u.MustIntern("e1", Part2)
	u.MustIntern("e2", Part2)
	b := NewBuilder(u, 0)
	mustAdd := func(f, to NodeID) {
		if err := b.Add(f, to, 1); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(0, 2)
	mustAdd(0, 3)
	mustAdd(1, 2)
	w := b.Build()
	if got := AvgOutDegreePart(w, Part1); got != 1.5 {
		t.Fatalf("AvgOutDegreePart(Part1) = %g", got)
	}
	if got := AvgOutDegreePart(w, Part2); got != 0 {
		t.Fatalf("AvgOutDegreePart(Part2) = %g", got)
	}
}

func TestDegreeDistribution(t *testing.T) {
	u := NewUniverse()
	for _, l := range []string{"a", "b", "c"} {
		u.MustIntern(l, PartNone)
	}
	b := NewBuilder(u, 0)
	if err := b.Add(0, 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	w := b.Build()
	degrees, counts := DegreeDistribution(w)
	// in-degrees: a=0, b=0, c=2 → {0:2, 2:1}
	if len(degrees) != 2 || degrees[0] != 0 || degrees[1] != 2 || counts[0] != 2 || counts[1] != 1 {
		t.Fatalf("distribution wrong: %v %v", degrees, counts)
	}
}

func TestFormat(t *testing.T) {
	u := NewUniverse()
	u.MustIntern("a", PartNone)
	u.MustIntern("b", PartNone)
	b := NewBuilder(u, 0)
	if err := b.Add(0, 1, 2.5); err != nil {
		t.Fatal(err)
	}
	got := Format(b.Build())
	if !strings.Contains(got, "a -> b:2.5") {
		t.Fatalf("Format output: %q", got)
	}
}
