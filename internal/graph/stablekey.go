package graph

import "hash/fnv"

// HashLabel is a process-stable 64-bit hash of a node label: FNV-1a
// run through a splitmix64-style finalizer (raw FNV avalanches poorly
// on short, similar strings). Two processes always agree on it, unlike
// NodeIDs, whose values are an interning-order accident. Anything that
// must be bit-identical across processes holding different subsets of
// a stream — cluster shard placement, streaming-sketch hashing,
// signature tie-breaks — keys on this instead of the NodeID.
func HashLabel(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// StableKey is HashLabel of the node's label.
func (u *Universe) StableKey(id NodeID) uint64 { return HashLabel(u.Label(id)) }
