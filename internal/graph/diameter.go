package graph

import "graphsig/internal/stats"

// EstimateDiameter estimates the diameter of the window's undirected
// skeleton (the longest shortest path between reachable node pairs) by
// running BFS from `samples` random active nodes and taking the largest
// eccentricity observed. The estimate lower-bounds the true diameter
// and converges quickly on small-world communication graphs.
//
// The paper invokes the graph's small diameter to explain why RWRʰ
// coincides with the unbounded walk for h beyond it (§IV-C); the
// HopConvergence experiment reports this estimate alongside.
func EstimateDiameter(w *Window, samples int, seed int64) int {
	active := w.ActiveNodes()
	if len(active) == 0 {
		return 0
	}
	if samples > len(active) {
		samples = len(active)
	}
	rng := stats.NewRNG(seed)
	perm := rng.Perm(len(active))
	best := 0
	dist := make([]int32, w.NumNodes())
	queue := make([]NodeID, 0, len(active))
	for s := 0; s < samples; s++ {
		start := active[perm[s]]
		for i := range dist {
			dist[i] = -1
		}
		queue = queue[:0]
		dist[start] = 0
		queue = append(queue, start)
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			d := dist[v]
			visit := func(u NodeID, _ float64) bool {
				if dist[u] < 0 {
					dist[u] = d + 1
					queue = append(queue, u)
					if int(d+1) > best {
						best = int(d + 1)
					}
				}
				return true
			}
			w.Out(v, visit)
			w.In(v, visit)
		}
	}
	return best
}
