package graph

import "testing"

func TestUniverseIntern(t *testing.T) {
	u := NewUniverse()
	a, err := u.Intern("alice", Part1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := u.Intern("bob", Part1)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("distinct labels got the same id")
	}
	again, err := u.Intern("alice", Part1)
	if err != nil || again != a {
		t.Fatalf("re-intern changed id: %v %v", again, err)
	}
	if u.Size() != 2 {
		t.Fatalf("Size = %d", u.Size())
	}
	if u.Label(a) != "alice" || u.PartOf(a) != Part1 {
		t.Fatal("label/part lookup wrong")
	}
	if id, ok := u.Lookup("alice"); !ok || id != a {
		t.Fatal("Lookup failed")
	}
	if _, ok := u.Lookup("carol"); ok {
		t.Fatal("Lookup invented a label")
	}
}

func TestUniversePartConflict(t *testing.T) {
	u := NewUniverse()
	if _, err := u.Intern("x", Part1); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Intern("x", Part2); err == nil {
		t.Fatal("part conflict not rejected")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustIntern did not panic on conflict")
		}
	}()
	u.MustIntern("x", PartNone)
}

func TestUniverseBipartite(t *testing.T) {
	u := NewUniverse()
	u.MustIntern("a", PartNone)
	if u.Bipartite() {
		t.Fatal("PartNone-only universe claimed bipartite")
	}
	u.MustIntern("b", Part1)
	u.MustIntern("c", Part2)
	u.MustIntern("d", Part2)
	if !u.Bipartite() {
		t.Fatal("bipartite universe not detected")
	}
	if got := u.CountPart(Part2); got != 2 {
		t.Fatalf("CountPart(Part2) = %d", got)
	}
	members := u.PartMembers(Part2)
	if len(members) != 2 || u.Label(members[0]) != "c" || u.Label(members[1]) != "d" {
		t.Fatalf("PartMembers wrong: %v", members)
	}
}

func TestPartString(t *testing.T) {
	if Part1.String() != "V1" || Part2.String() != "V2" || PartNone.String() != "V" {
		t.Fatal("Part.String wrong")
	}
}
