package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes structural properties of a Window that the paper's
// signature schemes exploit: size, degree distribution, and weight
// distribution. Used by experiment logs and by the generators' self
// checks.
type Stats struct {
	Nodes        int
	ActiveNodes  int
	Edges        int
	TotalWeight  float64
	AvgOutDegree float64 // over active sources
	MaxOutDegree int
	MaxInDegree  int
}

// Summarize computes Stats for w.
func Summarize(w *Window) Stats {
	s := Stats{
		Nodes:       w.NumNodes(),
		Edges:       w.NumEdges(),
		TotalWeight: w.TotalWeight(),
	}
	sources := 0
	for v := 0; v < w.NumNodes(); v++ {
		od := w.OutDegree(NodeID(v))
		id := w.InDegree(NodeID(v))
		if od > 0 || id > 0 {
			s.ActiveNodes++
		}
		if od > 0 {
			sources++
			s.AvgOutDegree += float64(od)
		}
		if od > s.MaxOutDegree {
			s.MaxOutDegree = od
		}
		if id > s.MaxInDegree {
			s.MaxInDegree = id
		}
	}
	if sources > 0 {
		s.AvgOutDegree /= float64(sources)
	}
	return s
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("|V|=%d (active %d) |E|=%d W=%.0f avgOut=%.1f maxOut=%d maxIn=%d",
		s.Nodes, s.ActiveNodes, s.Edges, s.TotalWeight, s.AvgOutDegree, s.MaxOutDegree, s.MaxInDegree)
}

// AvgOutDegreePart reports the average out-degree of active nodes in the
// given part. The paper sets signature length k to half this value
// (k=10 for hosts with average out-degree ~20; k=3 for query-log users).
func AvgOutDegreePart(w *Window, part Part) float64 {
	sum, n := 0.0, 0
	for v := 0; v < w.NumNodes(); v++ {
		id := NodeID(v)
		if w.Universe().PartOf(id) != part {
			continue
		}
		if d := w.OutDegree(id); d > 0 {
			sum += float64(d)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// DegreeDistribution returns the sorted distinct (degree, count) pairs of
// in-degrees across all nodes, exposing the heavy-tailed "novelty"
// characteristic (§III) that the UT scheme exploits.
func DegreeDistribution(w *Window) (degrees []int, counts []int) {
	m := map[int]int{}
	for v := 0; v < w.NumNodes(); v++ {
		m[w.InDegree(NodeID(v))]++
	}
	degrees = make([]int, 0, len(m))
	for d := range m {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	counts = make([]int, len(degrees))
	for i, d := range degrees {
		counts[i] = m[d]
	}
	return degrees, counts
}

// Format renders a window's adjacency for debugging small graphs in
// tests: one line per source, "label -> to:w to:w".
func Format(w *Window) string {
	var b strings.Builder
	for v := 0; v < w.NumNodes(); v++ {
		id := NodeID(v)
		if w.OutDegree(id) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s ->", w.Universe().Label(id))
		w.Out(id, func(u NodeID, wt float64) bool {
			fmt.Fprintf(&b, " %s:%g", w.Universe().Label(u), wt)
			return true
		})
		b.WriteByte('\n')
	}
	return b.String()
}
