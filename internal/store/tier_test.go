package store

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graphsig/internal/core"
	"graphsig/internal/fault"
	"graphsig/internal/graph"
)

// tierSet builds a small deterministic window where each of a few
// labels talks to a rotating peer set — enough churn that histories
// and search rankings differ across windows.
func tierSet(t *testing.T, u *graph.Universe, w int) *core.SignatureSet {
	t.Helper()
	sigs := map[string]map[string]float64{}
	for i := 0; i < 3; i++ {
		label := fmt.Sprintf("host-%d", i)
		peers := map[string]float64{}
		for j := 0; j < 2+((w+i)%2); j++ {
			peers[fmt.Sprintf("peer-%d", (w+i+j)%5)] = float64(j+1) / float64(w+3)
		}
		sigs[label] = peers
	}
	return buildSet(t, u, w, sigs)
}

// newTieredStore builds a store with an attached (empty) segment dir.
func newTieredStore(t *testing.T, cfg Config, dir string) *Store {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AttachSegments(dir); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStoreTieredMatchesUnbounded is the core acceptance property: a
// Capacity=N store with segments, fed 5N windows, answers History,
// windowed Search and per-window reads bit-identically to an unbounded
// in-memory store fed the same stream.
func TestStoreTieredMatchesUnbounded(t *testing.T) {
	const capacity, total = 4, 20
	segDir := filepath.Join(t.TempDir(), "segments")
	tu := graph.NewUniverse()
	tiered := newTieredStore(t, Config{Capacity: capacity, Universe: tu}, segDir)
	ru := graph.NewUniverse()
	ref, err := New(Config{Capacity: 10 * total, Universe: ru})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < total; w++ {
		if err := tiered.Add(tierSet(t, tu, w)); err != nil {
			t.Fatal(err)
		}
		if err := ref.Add(tierSet(t, ru, w)); err != nil {
			t.Fatal(err)
		}
	}
	if tiered.Len() != capacity {
		t.Fatalf("hot ring holds %d windows, want %d", tiered.Len(), capacity)
	}
	if got := tiered.SegmentWindows(); got != total-capacity {
		t.Fatalf("cold tier holds %d windows, want %d", got, total-capacity)
	}
	assertTieredEqualsRef(t, tiered, ref)
}

// assertTieredEqualsRef cross-checks every read path of a tiered store
// against an unbounded reference holding the same stream.
func assertTieredEqualsRef(t *testing.T, tiered, ref *Store) {
	t.Helper()
	lo, hi, ok := tiered.WindowRange()
	rlo, rhi, rok := ref.WindowRange()
	if ok != rok || lo != rlo || hi != rhi {
		t.Fatalf("range [%d,%d]/%v, want [%d,%d]/%v", lo, hi, ok, rlo, rhi, rok)
	}
	for w := lo; w <= hi; w++ {
		want, _ := ref.Window(w)
		got, err := tiered.Window(w)
		if err != nil {
			t.Fatal(err)
		}
		if (want == nil) != (got == nil) {
			t.Fatalf("window %d: tiered=%v ref=%v", w, got != nil, want != nil)
		}
	}
	for i := 0; i < 3; i++ {
		label := fmt.Sprintf("host-%d", i)
		want := ref.History(label)
		got := tiered.History(label)
		if len(want) != len(got) {
			t.Fatalf("%s history: %d entries, want %d", label, len(got), len(want))
		}
		for j := range want {
			if want[j].Window != got[j].Window || want[j].Scheme != got[j].Scheme ||
				!want[j].Sig.Equal(got[j].Sig) {
				t.Fatalf("%s history entry %d differs", label, j)
			}
		}
		wsig, ww, wok := ref.LatestSignature(label)
		gsig, gw, gok := tiered.LatestSignature(label)
		if wok != gok || ww != gw || !wsig.Equal(gsig) {
			t.Fatalf("%s latest signature differs", label)
		}
		for _, last := range []int{0, 3, hi - lo + 1} {
			wantHits, err := ref.SearchLabel(core.Jaccard{}, label, SearchOptions{TopK: 50, LastWindows: last})
			if err != nil {
				t.Fatal(err)
			}
			gotHits, err := tiered.SearchLabel(core.Jaccard{}, label, SearchOptions{TopK: 50, LastWindows: last})
			if err != nil {
				t.Fatal(err)
			}
			if len(wantHits) != len(gotHits) {
				t.Fatalf("%s search last=%d: %d hits, want %d", label, last, len(gotHits), len(wantHits))
			}
			for j := range wantHits {
				if wantHits[j].Label != gotHits[j].Label || wantHits[j].Window != gotHits[j].Window ||
					wantHits[j].Dist != gotHits[j].Dist {
					t.Fatalf("%s search last=%d hit %d: %+v != %+v", label, last, j, gotHits[j], wantHits[j])
				}
			}
		}
	}
}

// TestStoreTieredRestart proves the restart half of the acceptance
// criterion: snapshot + segments reload into a store that still serves
// all 5N windows identically to the unbounded reference.
func TestStoreTieredRestart(t *testing.T) {
	const capacity, total = 3, 15
	base := t.TempDir()
	segDir := filepath.Join(base, "segments")
	snapDir := filepath.Join(base, "snap")
	tu := graph.NewUniverse()
	tiered := newTieredStore(t, Config{Capacity: capacity, Universe: tu}, segDir)
	ru := graph.NewUniverse()
	ref, err := New(Config{Capacity: 10 * total, Universe: ru})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < total; w++ {
		if err := tiered.Add(tierSet(t, tu, w)); err != nil {
			t.Fatal(err)
		}
		if err := ref.Add(tierSet(t, ru, w)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tiered.Save(snapDir); err != nil {
		t.Fatal(err)
	}

	reborn, err := Load(snapDir, Config{Capacity: capacity})
	if err != nil {
		t.Fatal(err)
	}
	st, err := reborn.AttachSegments(segDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Quarantined) != 0 {
		t.Fatalf("clean boot quarantined %v", st.Quarantined)
	}
	if st.Windows != total-capacity {
		t.Fatalf("attached %d cold windows, want %d", st.Windows, total-capacity)
	}
	assertTieredEqualsRef(t, reborn, ref)
}

// A failed segment write must defer eviction, not drop history: the
// ring grows past Capacity and the compaction retries on the next Add.
func TestStoreSegmentWriteFailureKeepsWindows(t *testing.T) {
	const capacity = 2
	segDir := filepath.Join(t.TempDir(), "segments")
	u := graph.NewUniverse()
	s := newTieredStore(t, Config{Capacity: capacity, Universe: u}, segDir)
	for w := 0; w < capacity; w++ {
		if err := s.Add(tierSet(t, u, w)); err != nil {
			t.Fatal(err)
		}
	}
	fault.Set("segment.write", func() error { return fmt.Errorf("disk full") })
	if err := s.Add(tierSet(t, u, capacity)); err != nil {
		t.Fatalf("add failed outright on compaction error: %v", err)
	}
	fault.Reset()
	if s.Len() != capacity+1 {
		t.Fatalf("ring len %d after deferred eviction, want %d", s.Len(), capacity+1)
	}
	if got := s.History("host-0"); len(got) != capacity+1 {
		t.Fatalf("history lost entries during failed compaction: %d", len(got))
	}
	// The retry at the next eviction drains the backlog in one file.
	if err := s.Add(tierSet(t, u, capacity+1)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != capacity {
		t.Fatalf("ring len %d after retry, want %d", s.Len(), capacity)
	}
	if got := s.SegmentWindows(); got != 2 {
		t.Fatalf("cold tier holds %d windows after retry, want 2", got)
	}
	if got := s.History("host-0"); len(got) != capacity+2 {
		t.Fatalf("history = %d entries, want %d", len(got), capacity+2)
	}
}

// A crash mid-compaction (before the rename commits) leaves only a
// stale .tmp; the next boot cleans it up and serves everything the
// snapshot acked — no window is lost, none is double-counted.
func TestStoreSegmentCrashMidCompaction(t *testing.T) {
	const capacity = 2
	base := t.TempDir()
	segDir := filepath.Join(base, "segments")
	snapDir := filepath.Join(base, "snap")
	u := graph.NewUniverse()
	s := newTieredStore(t, Config{Capacity: capacity, Universe: u}, segDir)
	for w := 0; w < capacity; w++ {
		if err := s.Add(tierSet(t, u, w)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Save(snapDir); err != nil {
		t.Fatal(err)
	}
	// The eviction's segment write tears between stage and commit.
	fault.Set("segment.commit", func() error { return fmt.Errorf("crash") })
	if err := s.Add(tierSet(t, u, capacity)); err != nil {
		t.Fatal(err)
	}
	fault.Reset()

	// "Crash": discard the store, boot from disk.
	reborn, err := Load(snapDir, Config{Capacity: capacity})
	if err != nil {
		t.Fatal(err)
	}
	st, err := reborn.AttachSegments(segDir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments != 0 || len(st.Quarantined) != 0 {
		t.Fatalf("attach after torn compaction: %+v", st)
	}
	entries, err := os.ReadDir(segDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("stale staging file survived boot: %s", e.Name())
		}
	}
	// Every window the snapshot acked is still served, exactly once.
	if got := reborn.History("host-0"); len(got) != capacity {
		t.Fatalf("history = %d entries, want %d", len(got), capacity)
	}
}

// A crash after a FAILED compaction checkpoints an over-capacity ring:
// the snapshot is those windows' only durable copy. Load must keep all
// of them — trimming to Capacity before AttachSegments wires the tier
// would silently drop an acked window — and the next live Add drains
// the surplus into segments.
func TestStoreLoadOverCapacitySnapshot(t *testing.T) {
	const capacity = 2
	base := t.TempDir()
	segDir := filepath.Join(base, "segments")
	snapDir := filepath.Join(base, "snap")
	u := graph.NewUniverse()
	s := newTieredStore(t, Config{Capacity: capacity, Universe: u}, segDir)
	for w := 0; w < capacity; w++ {
		if err := s.Add(tierSet(t, u, w)); err != nil {
			t.Fatal(err)
		}
	}
	// Compaction fails, eviction defers, the ring grows to capacity+1 —
	// and the server's checkpoint loop snapshots exactly that state.
	fault.Set("segment.write", func() error { return fmt.Errorf("disk full") })
	if err := s.Add(tierSet(t, u, capacity)); err != nil {
		t.Fatal(err)
	}
	fault.Reset()
	if err := s.Save(snapDir); err != nil {
		t.Fatal(err)
	}

	reborn, err := Load(snapDir, Config{Capacity: capacity})
	if err != nil {
		t.Fatal(err)
	}
	if got := reborn.Len(); got != capacity+1 {
		t.Fatalf("loaded ring holds %d windows, want %d (acked window evicted at boot)", got, capacity+1)
	}
	if _, err := reborn.AttachSegments(segDir); err != nil {
		t.Fatal(err)
	}
	if got := reborn.History("host-0"); len(got) != capacity+1 {
		t.Fatalf("history = %d entries after reboot, want %d", len(got), capacity+1)
	}
	// The first live Add compacts the surplus; nothing is lost.
	if err := reborn.Add(tierSet(t, u, capacity+1)); err != nil {
		t.Fatal(err)
	}
	if reborn.Len() != capacity {
		t.Fatalf("ring len %d after drain, want %d", reborn.Len(), capacity)
	}
	if got := reborn.SegmentWindows(); got != 2 {
		t.Fatalf("cold tier holds %d windows after drain, want 2", got)
	}
	if got := reborn.History("host-0"); len(got) != capacity+2 {
		t.Fatalf("history = %d entries after drain, want %d", len(got), capacity+2)
	}
}

// Snapshot ring and segments may overlap after a crash-replay; readers
// must serve each window exactly once.
func TestStoreTieredOverlapNoDuplicates(t *testing.T) {
	const total = 6
	base := t.TempDir()
	segDir := filepath.Join(base, "segments")
	snapDir := filepath.Join(base, "snap")

	// A small tiered store compacts windows 0..3 into segments.
	u := graph.NewUniverse()
	s := newTieredStore(t, Config{Capacity: 2, Universe: u}, segDir)
	for w := 0; w < total; w++ {
		if err := s.Add(tierSet(t, u, w)); err != nil {
			t.Fatal(err)
		}
	}
	// A big store snapshots the full stream — its ring overlaps every
	// segment window.
	u2 := graph.NewUniverse()
	big, err := New(Config{Capacity: 100, Universe: u2})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < total; w++ {
		if err := big.Add(tierSet(t, u2, w)); err != nil {
			t.Fatal(err)
		}
	}
	if err := big.Save(snapDir); err != nil {
		t.Fatal(err)
	}

	reborn, err := Load(snapDir, Config{Capacity: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reborn.AttachSegments(segDir); err != nil {
		t.Fatal(err)
	}
	if got := reborn.SegmentWindows(); got != 0 {
		t.Fatalf("fully shadowed tier serves %d windows, want 0", got)
	}
	if got := reborn.History("host-0"); len(got) != total {
		t.Fatalf("history = %d entries, want %d (duplicates?)", len(got), total)
	}
	hits, err := reborn.SearchLabel(core.Jaccard{}, "host-0", SearchOptions{TopK: 100})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, h := range hits {
		key := fmt.Sprintf("%s@%d", h.Label, h.Window)
		if seen[key] {
			t.Fatalf("duplicate hit %s", key)
		}
		seen[key] = true
	}
}

// A corrupt segment file is quarantined at attach — boot continues with
// the healthy files, evidence preserved.
func TestStoreSegmentQuarantineAtAttach(t *testing.T) {
	const capacity, total = 2, 8
	segDir := filepath.Join(t.TempDir(), "segments")
	u := graph.NewUniverse()
	s := newTieredStore(t, Config{Capacity: capacity, Universe: u}, segDir)
	for w := 0; w < total; w++ {
		if err := s.Add(tierSet(t, u, w)); err != nil {
			t.Fatal(err)
		}
	}
	files, err := filepath.Glob(filepath.Join(segDir, "*.seg"))
	if err != nil || len(files) < 2 {
		t.Fatalf("segment files = %v, %v", files, err)
	}
	raw, err := os.ReadFile(files[1])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(files[1], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	fresh, err := New(Config{Capacity: capacity})
	if err != nil {
		t.Fatal(err)
	}
	st, err := fresh.AttachSegments(segDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Quarantined) != 1 || !strings.Contains(st.Quarantined[0], ".corrupt") {
		t.Fatalf("quarantined = %v", st.Quarantined)
	}
	if st.Segments != len(files)-1 {
		t.Fatalf("attached %d segments, want %d", st.Segments, len(files)-1)
	}
	if _, err := os.Stat(files[1]); !os.IsNotExist(err) {
		t.Fatal("corrupt file still in place")
	}
}

// SegmentRetain bounds the cold tier: oldest files go, the range
// shrinks accordingly, newer history stays intact.
func TestStoreSegmentRetention(t *testing.T) {
	const capacity, retain, total = 2, 3, 12
	segDir := filepath.Join(t.TempDir(), "segments")
	u := graph.NewUniverse()
	s := newTieredStore(t, Config{Capacity: capacity, Universe: u, SegmentRetain: retain}, segDir)
	for w := 0; w < total; w++ {
		if err := s.Add(tierSet(t, u, w)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.SegmentCount(); got != retain {
		t.Fatalf("cold tier holds %d files, want %d", got, retain)
	}
	files, err := filepath.Glob(filepath.Join(segDir, "*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != retain {
		t.Fatalf("%d files on disk, want %d", len(files), retain)
	}
	lo, _, ok := s.WindowRange()
	if !ok || lo != total-capacity-retain {
		t.Fatalf("oldest window %d after pruning, want %d", lo, total-capacity-retain)
	}
	// Retained history still reads back.
	got, _, err := s.HistoryRange("host-0", lo, math.MaxInt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != capacity+retain {
		t.Fatalf("history = %d entries, want %d", len(got), capacity+retain)
	}
}

// HistoryRange's bounds and limit: the newest limit matches come back
// in ascending order with the truncation flag set.
func TestStoreHistoryRangeBounds(t *testing.T) {
	const capacity, total = 3, 12
	segDir := filepath.Join(t.TempDir(), "segments")
	u := graph.NewUniverse()
	s := newTieredStore(t, Config{Capacity: capacity, Universe: u}, segDir)
	for w := 0; w < total; w++ {
		if err := s.Add(tierSet(t, u, w)); err != nil {
			t.Fatal(err)
		}
	}
	full, truncated, err := s.HistoryRange("host-0", math.MinInt, math.MaxInt, 0)
	if err != nil || truncated {
		t.Fatalf("full range: truncated=%v err=%v", truncated, err)
	}
	if len(full) != total {
		t.Fatalf("full history = %d entries, want %d", len(full), total)
	}
	got, truncated, err := s.HistoryRange("host-0", 2, 7, 0)
	if err != nil || truncated {
		t.Fatal(err)
	}
	if len(got) != 6 || got[0].Window != 2 || got[5].Window != 7 {
		t.Fatalf("windowed history = %v", got)
	}
	got, truncated, err = s.HistoryRange("host-0", math.MinInt, math.MaxInt, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !truncated {
		t.Fatal("limit hit but truncated not reported")
	}
	if len(got) != 4 || got[0].Window != total-4 || got[3].Window != total-1 {
		t.Fatalf("limited history = %v", got)
	}
	// Limit larger than the archive: everything, no truncation flag.
	got, truncated, err = s.HistoryRange("host-0", math.MinInt, math.MaxInt, total+5)
	if err != nil || truncated || len(got) != total {
		t.Fatalf("oversized limit: %d entries truncated=%v err=%v", len(got), truncated, err)
	}
	if _, truncated, err := s.HistoryRange("nobody", math.MinInt, math.MaxInt, 0); err != nil || truncated {
		t.Fatal("unknown label errs")
	}
}
