// Package store implements the serving-side signature archive: a
// goroutine-safe, bounded ring of the most recent signature windows,
// keyed by node label through a shared graph.Universe. It is the state
// behind sigserverd — per-label history lookup ("what did this host
// look like over the last N windows?"), top-k nearest-signature search
// (the watchlist/reappearance primitive, optionally pre-filtered by an
// LSH MinHash index), and snapshot save/load so an online service can
// restart without losing its archive.
//
// Concurrency contract: all Store methods are safe for concurrent use
// with each other. The shared Universe, however, is not safe for
// concurrent mutation — a caller that interns new labels while serving
// (the streaming pipeline does, on ingest) must serialize interning
// against Store reads. internal/server does exactly that with one
// RWMutex around pipeline ingestion.
package store

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"graphsig/internal/core"
	"graphsig/internal/distmat"
	"graphsig/internal/fault"
	"graphsig/internal/graph"
	"graphsig/internal/lsh"
	"graphsig/internal/obs"
)

// Config parameterizes a Store.
type Config struct {
	// Capacity bounds the number of retained windows; older windows are
	// evicted oldest-first.
	Capacity int
	// Universe resolves NodeIDs to labels; nil allocates a fresh one.
	Universe *graph.Universe
	// LSHBands and LSHRows, when both positive, build a MinHash banding
	// index per window with bands·rows hash components, used to
	// pre-filter Jaccard searches (§VI scalable comparison). Zero
	// disables pre-filtering and every search is an exact scan.
	LSHBands, LSHRows int
	// LSHSeed drives the MinHash hash family.
	LSHSeed uint64
	// Registry, when non-nil, receives the store's metrics (snapshot
	// save latency and bytes, LSH index build latency, search probe
	// counts, pairwise-engine row timings). Nil disables
	// instrumentation at zero cost beyond one branch per event.
	Registry *obs.Registry
	// SegmentRetain bounds the number of cold-tier segment files kept
	// on disk once AttachSegments enabled tiering; the oldest files
	// beyond the bound are deleted after each compaction. Zero keeps
	// everything.
	SegmentRetain int
}

func (c *Config) validate() error {
	if c.Capacity <= 0 {
		return fmt.Errorf("store: capacity must be positive, got %d", c.Capacity)
	}
	if (c.LSHBands > 0) != (c.LSHRows > 0) {
		return fmt.Errorf("store: LSH bands and rows must both be set (got %d×%d)", c.LSHBands, c.LSHRows)
	}
	return nil
}

// entry is one retained window with its optional LSH index and its
// pairwise-engine view (sorted signatures + inverted node index), built
// once at Add time so every Search rides the merge-join kernels.
type entry struct {
	set  *core.SignatureSet
	idx  *lsh.Index
	view *distmat.SetView
}

// Store is the bounded, goroutine-safe archive of recent signature
// windows.
type Store struct {
	cfg      Config
	universe *graph.Universe

	mu      sync.RWMutex
	ring    []entry // oldest first
	added   int     // windows ever added (monotone, survives eviction)
	evicted int

	// tier, when non-nil, is the cold tier of immutable segment files
	// that receives every evicted window (see tier.go). Guarded by mu.
	tier *segTier

	// loading suspends capacity eviction while Load replays a snapshot
	// manifest. A pre-crash server may legitimately checkpoint an
	// over-capacity ring (compaction failed, eviction deferred); evicting
	// here — before AttachSegments has wired the cold tier — would drop
	// the only copy of an acked window. The surplus compacts on the next
	// live Add instead.
	loading bool

	// saveMu serializes Save calls (periodic snapshot loop vs window
	// close vs shutdown) so two writers never race on the staging dir.
	saveMu sync.Mutex

	obs storeObs
}

// storeObs bundles the store's optional metric handles; the zero value
// (no registry) is fully no-op.
type storeObs struct {
	saveSeconds  *obs.Histogram // successful Save wall time
	saveBytes    *obs.Counter   // bytes staged by successful Saves
	lshSeconds   *obs.Histogram // per-window LSH index build time
	searchProbes *obs.Histogram // exact distance evaluations per Search

	// Cold-tier counters (store_segment_*), live once AttachSegments
	// enabled tiering.
	segSaves       *obs.Counter // segment files written by compaction
	segSaveBytes   *obs.Counter // bytes written into segment files
	segCompacted   *obs.Counter // windows compacted out of the hot ring
	segLoads       *obs.Counter // window blocks read back from segments
	segQuarantines *obs.Counter // corrupt segment files renamed aside
	segPruned      *obs.Counter // segment files deleted by retention
	segErrors      *obs.Counter // failed compactions/prunes (eviction deferred)

	engine distmat.Metrics
}

// bind registers the store metric families on reg (idempotent: names
// resolve to the same handles on re-registration).
func (o *storeObs) bind(reg *obs.Registry) {
	if reg == nil {
		return
	}
	o.saveSeconds = reg.Histogram("store_snapshot_save_seconds",
		"wall time of successful snapshot saves")
	o.saveBytes = reg.Counter("store_snapshot_save_bytes_total",
		"bytes written by successful snapshot saves")
	o.lshSeconds = reg.Histogram("store_lsh_index_seconds",
		"LSH MinHash index build time per archived window")
	o.searchProbes = reg.HistogramWith("store_search_probes",
		"exact distance evaluations per search request", obs.CountBounds(24))
	o.segSaves = reg.Counter("store_segment_saves",
		"cold-tier segment files written by compaction")
	o.segSaveBytes = reg.Counter("store_segment_save_bytes_total",
		"bytes written into cold-tier segment files")
	o.segCompacted = reg.Counter("store_segment_compacted_windows",
		"windows compacted out of the hot ring into segments")
	o.segLoads = reg.Counter("store_segment_loads",
		"window blocks read back from cold-tier segments")
	o.segQuarantines = reg.Counter("store_segment_quarantines",
		"corrupt segment files renamed aside at attach")
	o.segPruned = reg.Counter("store_segment_pruned",
		"segment files deleted by the retention policy")
	o.segErrors = reg.Counter("store_segment_errors",
		"failed segment compactions or prunes (eviction deferred)")
	o.engine = distmat.Metrics{
		RowSeconds: reg.Histogram("distmat_row_seconds",
			"pairwise-engine row computation time (one query vs one window)"),
		Candidates: reg.HistogramWith("distmat_candidates",
			"inverted-index candidates per engine row", obs.CountBounds(24)),
		PrefilterChecked: reg.Counter("distmat_prefilter_checked_total",
			"candidates tested against the mask-prefilter distance bound"),
		PrefilterSkipped: reg.Counter("distmat_prefilter_skipped_total",
			"candidates provably rejected without an exact kernel fold"),
	}
}

// New builds an empty store.
func New(cfg Config) (*Store, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Universe == nil {
		cfg.Universe = graph.NewUniverse()
	}
	s := &Store{cfg: cfg, universe: cfg.Universe}
	s.obs.bind(cfg.Registry)
	return s, nil
}

// Universe returns the shared label universe.
func (s *Store) Universe() *graph.Universe { return s.universe }

// Add appends a completed window. Window indices must be strictly
// increasing — the store archives a time line, not a bag — so a
// duplicate or regressing index is an error. The oldest window is
// evicted when capacity is exceeded.
func (s *Store) Add(set *core.SignatureSet) error {
	if set == nil {
		return fmt.Errorf("store: nil signature set")
	}
	if err := fault.Inject("store.add"); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.ring); n > 0 && set.Window <= s.ring[n-1].set.Window {
		return fmt.Errorf("store: window %d not after latest window %d", set.Window, s.ring[n-1].set.Window)
	}
	e := entry{set: set, view: distmat.NewSetView(set)}
	if s.cfg.LSHBands > 0 {
		idx, err := s.buildIndex(set)
		if err != nil {
			return err
		}
		e.idx = idx
	}
	s.ring = append(s.ring, e)
	s.added++
	if len(s.ring) > s.cfg.Capacity && !s.loading {
		over := len(s.ring) - s.cfg.Capacity
		if s.tier != nil {
			// Compaction precedes eviction: only windows with a durable
			// segment copy may leave RAM. A failed segment write shrinks
			// `over` and the ring temporarily exceeds Capacity — degraded
			// memory bounds beat lost history.
			over = s.compactLocked(over)
		}
		if over > 0 {
			s.ring = append(s.ring[:0:0], s.ring[over:]...)
			s.evicted += over
		}
	}
	return nil
}

func (s *Store) buildIndex(set *core.SignatureSet) (*lsh.Index, error) {
	begin := time.Now()
	defer s.obs.lshSeconds.ObserveSince(begin)
	hasher, err := lsh.NewHasher(s.cfg.LSHBands*s.cfg.LSHRows, s.cfg.LSHSeed)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	idx, err := lsh.NewIndex(hasher, s.cfg.LSHBands, s.cfg.LSHRows)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for i, v := range set.Sources {
		if set.Sigs[i].IsEmpty() {
			continue // empty signatures match nothing under Jaccard
		}
		if err := idx.Add(v, set.Sigs[i]); err != nil {
			return nil, fmt.Errorf("store: window %d: %w", set.Window, err)
		}
	}
	return idx, nil
}

// Len reports the number of retained windows.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.ring)
}

// TotalAdded reports how many windows were ever added (including
// evicted ones).
func (s *Store) TotalAdded() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.added
}

// WindowRange reports the oldest and newest retained window indices
// across both tiers — cold segments extend the range past the hot
// ring; ok is false when the archive is empty.
func (s *Store) WindowRange() (oldest, newest int, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	segs, bound := s.tierSegsLocked()
	for _, seg := range segs {
		if seg.First() < bound {
			oldest, ok = seg.First(), true
			break
		}
	}
	if len(s.ring) > 0 {
		if !ok {
			oldest = s.ring[0].set.Window
		}
		return oldest, s.ring[len(s.ring)-1].set.Window, true
	}
	if ok {
		newest = segs[len(segs)-1].Last()
	}
	return oldest, newest, ok
}

// Windows returns the hot in-memory signature sets, oldest first (cold
// segment windows are reached through Window, HistoryRange and
// Search). The slice is a copy; the sets themselves are shared and
// must be treated as immutable (every producer in this module already
// does).
func (s *Store) Windows() []*core.SignatureSet {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*core.SignatureSet, len(s.ring))
	for i, e := range s.ring {
		out[i] = e.set
	}
	return out
}

// Latest returns the newest retained window, or nil when empty. With
// an empty ring but a populated cold tier (a boot whose snapshot was
// quarantined while segments survived), the newest segment window is
// served instead.
func (s *Store) Latest() *core.SignatureSet {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.ring) > 0 {
		return s.ring[len(s.ring)-1].set
	}
	segs, _ := s.tierSegsLocked()
	if len(segs) == 0 {
		return nil
	}
	seg := segs[len(segs)-1]
	set, err := seg.ReadWindow(seg.Last())
	if err != nil {
		return nil
	}
	s.obs.segLoads.Add(1)
	return set
}

// HistoryEntry is one archived signature of a label.
type HistoryEntry struct {
	Window int
	Scheme string
	Sig    core.Signature
}

// History returns every retained signature of label across both tiers,
// oldest window first. A label absent from the universe — or present
// but never a source — yields an empty history, as does a cold-tier
// I/O failure (callers needing to distinguish use HistoryRange).
func (s *Store) History(label string) []HistoryEntry {
	out, _, err := s.HistoryRange(label, math.MinInt, math.MaxInt, 0)
	if err != nil {
		return nil
	}
	return out
}

// LatestSignature returns the most recent non-empty signature of
// label, falling through to the cold tier when the hot ring has none.
func (s *Store) LatestSignature(label string) (core.Signature, int, bool) {
	v, ok := s.universe.Lookup(label)
	if !ok {
		return core.Signature{}, 0, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i := len(s.ring) - 1; i >= 0; i-- {
		if sig, ok := s.ring[i].set.Get(v); ok && !sig.IsEmpty() {
			return sig, s.ring[i].set.Window, true
		}
	}
	segs, bound := s.tierSegsLocked()
	for i := len(segs) - 1; i >= 0; i-- {
		wins := segs[i].LabelWindows(label)
		for j := len(wins) - 1; j >= 0; j-- {
			if wins[j] >= bound {
				continue
			}
			set, err := segs[i].ReadWindow(wins[j])
			if err != nil {
				return core.Signature{}, 0, false
			}
			s.obs.segLoads.Add(1)
			if sig, ok := set.Get(v); ok && !sig.IsEmpty() {
				return sig, set.Window, true
			}
		}
	}
	return core.Signature{}, 0, false
}

// Hit is one nearest-signature search result.
type Hit struct {
	Node   graph.NodeID
	Label  string
	Window int
	Dist   float64
}

// DefaultTopK is the result bound applied when SearchOptions.TopK is
// unset. Exported so remote callers (the cluster router) can normalize
// a zero k the same way before merging per-shard results.
const DefaultTopK = 10

// SearchOptions tunes a nearest-signature search.
type SearchOptions struct {
	// TopK bounds the result count (default DefaultTopK).
	TopK int
	// MaxDist drops hits farther than this (default 1 = keep all).
	MaxDist float64
	// ExcludeLabel omits matches of this label (typically the query's
	// own, when asking "who else looks like v?").
	ExcludeLabel string
	// LastWindows restricts the scan to the most recent n archived
	// windows (0 = all). Depths past the hot ring fall through to the
	// cold segment tier.
	LastWindows int
	// NoPrefilter forces an exact scan even when an LSH index exists.
	NoPrefilter bool
	// Stats, when non-nil, accumulates per-query explain counters for
	// the ?debug=1 response path. One struct may be shared by several
	// queries of a batch — values add up.
	Stats *SearchStats
}

// SearchStats are the per-query explain counters behind ?debug=1:
// exact distance evaluations plus the pairwise engine's mask-prefilter
// checked/skipped counts for this query alone (the registry counters
// aggregate across all concurrent queries and cannot be read as
// per-query deltas).
type SearchStats struct {
	Probes           int
	PrefilterChecked int64
	PrefilterSkipped int64
}

// Search ranks archived signatures by distance from sig and returns the
// closest hits, one per (label, window) pair. When the store was built
// with LSH banding and d is the Jaccard distance, candidate generation
// goes through the MinHash buckets — candidates missing every bucket
// are skipped, trading a small recall loss for sub-linear scans — and
// every candidate is exact-verified with d before ranking. Exact scans
// ride the pairwise engine: merge-join kernels per candidate, and with
// MaxDist < 1 only signatures sharing at least one node with the query
// are probed at all (disjoint pairs sit at distance exactly 1).
//
// The store lock is held only long enough to snapshot the window ring;
// all distance work runs outside the critical section, so long scans
// never block ingest.
func (s *Store) Search(d core.Distance, sig core.Signature, opts SearchOptions) ([]Hit, error) {
	if d == nil {
		return nil, fmt.Errorf("store: search needs a distance")
	}
	if sig.IsEmpty() {
		return nil, fmt.Errorf("store: search with empty signature")
	}
	ring, err := s.snapshotTier(opts.LastWindows)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	querier, fast := distmat.NewQuerier(d)
	if fast {
		querier.SetMetrics(s.obs.engine)
		defer querier.Release()
	}
	return s.searchRing(ring, querier, fast, d, sig, opts)
}

// BatchQuery is one query of a SearchBatch call: a signature plus its
// own search options.
type BatchQuery struct {
	Sig  core.Signature
	Opts SearchOptions
}

// SearchBatch answers many searches under one distance in a single
// call: the window ring is snapshotted once and every query reuses the
// same pooled querier scratch (and the windows' shared SoA views), so a
// batch of n queries costs one snapshot plus n scans — no per-query
// setup. Each result slot i is exactly what Search(d, queries[i].Sig,
// queries[i].Opts) would return. Empty signatures are rejected, as in
// Search.
func (s *Store) SearchBatch(d core.Distance, queries []BatchQuery) ([][]Hit, error) {
	if d == nil {
		return nil, fmt.Errorf("store: search needs a distance")
	}
	for i := range queries {
		if queries[i].Sig.IsEmpty() {
			return nil, fmt.Errorf("store: batch query %d has an empty signature", i)
		}
	}
	// One tier snapshot deep enough for every query: any unbounded
	// query pulls the whole archive, else the deepest bound wins.
	depth := 0
	for i := range queries {
		lw := queries[i].Opts.LastWindows
		if lw <= 0 {
			depth = 0
			break
		}
		if lw > depth {
			depth = lw
		}
	}
	ring, err := s.snapshotTier(depth)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	querier, fast := distmat.NewQuerier(d)
	if fast {
		querier.SetMetrics(s.obs.engine)
		defer querier.Release()
	}
	out := make([][]Hit, len(queries))
	for i := range queries {
		hits, err := s.searchRing(ring, querier, fast, d, queries[i].Sig, queries[i].Opts)
		if err != nil {
			return nil, fmt.Errorf("batch query %d: %w", i, err)
		}
		out[i] = hits
	}
	return out, nil
}

// searchRing runs one query over a snapshotted ring: candidate
// generation per window (LSH buckets, pairwise-engine querier, or the
// naive scan), exact verification, global ranking, top-k cut.
func (s *Store) searchRing(ring []entry, querier *distmat.Querier, fast bool, d core.Distance, sig core.Signature, opts SearchOptions) ([]Hit, error) {
	if opts.TopK <= 0 {
		opts.TopK = DefaultTopK
	}
	if opts.MaxDist <= 0 {
		opts.MaxDist = 1
	}
	if opts.LastWindows > 0 && opts.LastWindows < len(ring) {
		ring = ring[len(ring)-opts.LastWindows:]
	}
	var exclude graph.NodeID = -1
	if opts.ExcludeLabel != "" {
		if v, ok := s.universe.Lookup(opts.ExcludeLabel); ok {
			exclude = v
		}
	}

	// Per-query prefilter explain: route the engine's prefilter counters
	// through locals for the duration of this query, then fold them into
	// both the stats and the shared registry counters — deltas of the
	// globals would be polluted by concurrent queries.
	if opts.Stats != nil && fast {
		var checked, skipped obs.Counter
		m := s.obs.engine
		m.PrefilterChecked, m.PrefilterSkipped = &checked, &skipped
		querier.SetMetrics(m)
		defer func() {
			querier.SetMetrics(s.obs.engine)
			s.obs.engine.PrefilterChecked.Add(checked.Value())
			s.obs.engine.PrefilterSkipped.Add(skipped.Value())
			opts.Stats.PrefilterChecked += checked.Value()
			opts.Stats.PrefilterSkipped += skipped.Value()
		}()
	}

	var hits []Hit
	probes := 0 // exact distance evaluations across all windows
	for _, e := range ring {
		if e.idx != nil && !opts.NoPrefilter && d.Name() == "jaccard" {
			// minSim 0 keeps every bucket-sharing candidate; the exact
			// verification below applies MaxDist.
			cands, err := e.idx.Query(sig, exclude, 0)
			if err != nil {
				return nil, fmt.Errorf("store: %w", err)
			}
			for _, c := range cands {
				other, ok := e.set.Get(c.Node)
				if !ok {
					continue
				}
				probes++
				if dist := d.Dist(sig, other); dist <= opts.MaxDist {
					hits = append(hits, Hit{Node: c.Node, Label: s.universe.Label(c.Node), Window: e.set.Window, Dist: dist})
				}
			}
			continue
		}
		if fast && e.view != nil {
			set := e.set
			probes += querier.Neighbors(e.view, sig, opts.MaxDist, func(i int, dist float64) {
				v := set.Sources[i]
				if v == exclude || set.Sigs[i].IsEmpty() {
					return
				}
				hits = append(hits, Hit{Node: v, Label: s.universe.Label(v), Window: set.Window, Dist: dist})
			})
			continue
		}
		for i, v := range e.set.Sources {
			if v == exclude || e.set.Sigs[i].IsEmpty() {
				continue
			}
			probes++
			if dist := d.Dist(sig, e.set.Sigs[i]); dist <= opts.MaxDist {
				hits = append(hits, Hit{Node: v, Label: s.universe.Label(v), Window: e.set.Window, Dist: dist})
			}
		}
	}
	s.obs.searchProbes.Observe(float64(probes))
	if opts.Stats != nil {
		opts.Stats.Probes += probes
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Dist != hits[j].Dist {
			return hits[i].Dist < hits[j].Dist
		}
		if hits[i].Window != hits[j].Window {
			return hits[i].Window > hits[j].Window // newer evidence first
		}
		// Labels, not NodeIDs: interning order is a per-process accident,
		// so a label tie-break keeps rankings — and the top-k cut — stable
		// across processes. Cluster mode relies on this to merge per-shard
		// top-k lists bit-identically to a single-node run.
		return hits[i].Label < hits[j].Label
	})
	if len(hits) > opts.TopK {
		hits = hits[:opts.TopK]
	}
	return hits, nil
}

// SearchLabel searches with the latest non-empty signature of label,
// excluding the label's own archived signatures from the results.
func (s *Store) SearchLabel(d core.Distance, label string, opts SearchOptions) ([]Hit, error) {
	sig, _, ok := s.LatestSignature(label)
	if !ok {
		return nil, fmt.Errorf("store: label %q has no archived signature", label)
	}
	if opts.ExcludeLabel == "" {
		opts.ExcludeLabel = label
	}
	return s.Search(d, sig, opts)
}
