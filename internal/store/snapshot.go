package store

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"graphsig/internal/core"
	"graphsig/internal/graph"
)

// A snapshot is a directory: a manifest listing the retained windows
// oldest-first, plus one file per window in the established
// line-oriented signature text format (core.WriteSignatureSet). Using
// the existing codec means a snapshot is also directly consumable by
// `sigtool compare`/`screen` and by any other tool that reads signature
// files — the store adds only the manifest.
//
// The manifest also dumps the universe's labels in NodeID order.
// Signature canonical order breaks weight ties by NodeID, so a reload
// must re-intern labels in the original ID order — interning them
// lazily per set file would permute IDs of nodes shared across windows
// and invalidate tie ordering.

// manifestName is the snapshot directory's index file.
const manifestName = "MANIFEST"

const manifestHeader = "graphsig-store v1"

// setFileName names the snapshot file holding window w.
func setFileName(w int) string { return fmt.Sprintf("window-%09d.sig", w) }

// Save writes a point-in-time snapshot of the store into dir, creating
// it if needed. The write is atomic at the manifest level: set files
// are written first and the manifest last, so a crash mid-save leaves
// the previous manifest (if any) pointing at complete files.
func (s *Store) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	// Capture the ring under the read lock, then serialize outside it:
	// sets are immutable and the universe only grows.
	sets := s.Windows()
	var manifest strings.Builder
	fmt.Fprintln(&manifest, manifestHeader)
	fmt.Fprintf(&manifest, "windows %d\n", len(sets))
	for id := 0; id < s.universe.Size(); id++ {
		nid := graph.NodeID(id)
		fmt.Fprintf(&manifest, "node %q %s\n", s.universe.Label(nid), s.universe.PartOf(nid))
	}
	for _, set := range sets {
		name := setFileName(set.Window)
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("store: snapshot: %w", err)
		}
		err = core.WriteSignatureSet(f, set, s.universe)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("store: snapshot window %d: %w", set.Window, err)
		}
		fmt.Fprintf(&manifest, "set %s\n", name)
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, []byte(manifest.String()), 0o644); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	return nil
}

// SnapshotExists reports whether dir holds a loadable snapshot.
func SnapshotExists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, manifestName))
	return err == nil
}

// Load rebuilds a store from a snapshot directory, interning every
// label into cfg.Universe (a fresh one when nil). Window order and
// indices are restored from the manifest; capacity applies as usual, so
// loading a larger snapshot into a smaller store keeps the newest
// windows.
func Load(dir string, cfg Config) (*Store, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	mf, err := os.Open(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("store: snapshot: %w", err)
	}
	defer mf.Close()
	sc := bufio.NewScanner(mf)
	if !sc.Scan() || sc.Text() != manifestHeader {
		return nil, fmt.Errorf("store: snapshot: bad manifest header %q", sc.Text())
	}
	if !sc.Scan() || !strings.HasPrefix(sc.Text(), "windows ") {
		return nil, fmt.Errorf("store: snapshot: missing windows line")
	}
	want, err := strconv.Atoi(strings.TrimPrefix(sc.Text(), "windows "))
	if err != nil || want < 0 {
		return nil, fmt.Errorf("store: snapshot: bad window count %q", sc.Text())
	}
	loaded := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "node "); ok {
			if err := internNodeLine(s.universe, rest); err != nil {
				return nil, fmt.Errorf("store: snapshot: %w", err)
			}
			continue
		}
		name, ok := strings.CutPrefix(line, "set ")
		if !ok {
			return nil, fmt.Errorf("store: snapshot: unknown manifest line %q", line)
		}
		if name != filepath.Base(name) {
			return nil, fmt.Errorf("store: snapshot: manifest escapes directory: %q", name)
		}
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("store: snapshot: %w", err)
		}
		set, err := core.ReadSignatureSet(f, s.universe)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("store: snapshot %s: %w", name, err)
		}
		if err := s.Add(set); err != nil {
			return nil, fmt.Errorf("store: snapshot %s: %w", name, err)
		}
		loaded++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("store: snapshot: %w", err)
	}
	if loaded != want {
		return nil, fmt.Errorf("store: snapshot: manifest promises %d windows, found %d", want, loaded)
	}
	return s, nil
}

// internNodeLine parses `"label" PART` and interns it, restoring the
// snapshot's NodeID assignment order.
func internNodeLine(u *graph.Universe, rest string) error {
	quoted, err := strconv.QuotedPrefix(rest)
	if err != nil {
		return fmt.Errorf("bad node line %q: %w", rest, err)
	}
	label, err := strconv.Unquote(quoted)
	if err != nil {
		return fmt.Errorf("bad node label in %q: %w", rest, err)
	}
	var part graph.Part
	switch strings.TrimSpace(rest[len(quoted):]) {
	case "V":
		part = graph.PartNone
	case "V1":
		part = graph.Part1
	case "V2":
		part = graph.Part2
	default:
		return fmt.Errorf("bad node part in %q", rest)
	}
	_, err = u.Intern(label, part)
	return err
}
