package store

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"graphsig/internal/core"
	"graphsig/internal/fault"
	"graphsig/internal/graph"
)

// A snapshot is a directory: a manifest listing the retained windows
// oldest-first, plus one file per window in the established
// line-oriented signature text format (core.WriteSignatureSet). Using
// the existing codec means a snapshot is also directly consumable by
// `sigtool compare`/`screen` and by any other tool that reads signature
// files — the store adds only the manifest.
//
// The manifest also dumps the universe's labels in NodeID order.
// Signature canonical order breaks weight ties by NodeID, so a reload
// must re-intern labels in the original ID order — interning them
// lazily per set file would permute IDs of nodes shared across windows
// and invalidate tie ordering.
//
// Durability (v2): Save stages the whole snapshot in a sibling temp
// directory, fsyncs every file, and swaps it into place with two
// renames (dir → dir.prev, tmp → dir). The v2 manifest records each
// set file's byte size and CRC32 and ends with a checksum of itself,
// so Load detects any flipped or truncated byte. Load first repairs an
// interrupted swap (a crash between the two renames leaves dir absent
// but a complete dir.tmp or dir.prev) and reports all corruption as
// ErrCorrupt so callers can Quarantine the directory and boot fresh
// instead of dying. v1 snapshots (no checksums) still load.

// manifestName is the snapshot directory's index file.
const manifestName = "MANIFEST"

const (
	manifestHeaderV1 = "graphsig-store v1"
	manifestHeaderV2 = "graphsig-store v2"
)

// Suffixes of the sibling directories Save and Quarantine manage.
const (
	tmpSuffix        = ".tmp"
	prevSuffix       = ".prev"
	quarantineSuffix = ".corrupt"
)

// ErrCorrupt marks a snapshot that is structurally broken — bad
// checksum, truncated or missing files, malformed manifest — as
// opposed to an I/O failure reaching it. Corrupt snapshots are safe to
// Quarantine; I/O errors are not.
var ErrCorrupt = errors.New("store: corrupt snapshot")

// setFileName names the snapshot file holding window w.
func setFileName(w int) string { return fmt.Sprintf("window-%09d.sig", w) }

// Save writes a point-in-time snapshot of the store into dir. The
// snapshot is staged in dir.tmp and atomically swapped into place, so
// a crash at any point leaves either the old snapshot, the new one, or
// a repairable in-between state (see recoverDir) — never a mix of old
// and new files under one manifest. Concurrent Saves of one store are
// serialized.
func (s *Store) Save(dir string) error {
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	begin := time.Now()
	staged := int64(0) // bytes written into the staging dir

	// An earlier swap interrupted between its two renames leaves the
	// committed state only in the tmp sibling (dir already renamed
	// aside). Repair that first: the RemoveAll below would otherwise
	// destroy the sole complete copy, and if this Save then failed too,
	// the effective snapshot would silently roll back to dir.prev.
	if _, err := recoverDir(dir); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	tmp := dir + tmpSuffix
	if err := os.RemoveAll(tmp); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	// Capture the ring under the read lock, then serialize outside it:
	// sets are immutable and the universe only grows.
	sets := s.Windows()
	var manifest bytes.Buffer
	fmt.Fprintln(&manifest, manifestHeaderV2)
	fmt.Fprintf(&manifest, "windows %d\n", len(sets))
	for id := 0; id < s.universe.Size(); id++ {
		nid := graph.NodeID(id)
		fmt.Fprintf(&manifest, "node %q %s\n", s.universe.Label(nid), s.universe.PartOf(nid))
	}
	var body bytes.Buffer
	for _, set := range sets {
		body.Reset()
		if err := core.WriteSignatureSet(&body, set, s.universe); err != nil {
			return fmt.Errorf("store: snapshot window %d: %w", set.Window, err)
		}
		name := setFileName(set.Window)
		if err := writeFileSynced(filepath.Join(tmp, name), body.Bytes(), "store.save.set"); err != nil {
			return fmt.Errorf("store: snapshot window %d: %w", set.Window, err)
		}
		staged += int64(body.Len())
		fmt.Fprintf(&manifest, "set %s %d %08x\n", name, body.Len(), crc32.ChecksumIEEE(body.Bytes()))
	}
	fmt.Fprintf(&manifest, "crc %08x\n", crc32.ChecksumIEEE(manifest.Bytes()))
	if err := writeFileSynced(filepath.Join(tmp, manifestName), manifest.Bytes(), "store.save.manifest"); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := syncDir(tmp); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := swapDirs(tmp, dir); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	s.obs.saveSeconds.ObserveSince(begin)
	s.obs.saveBytes.Add(staged + int64(manifest.Len()))
	return nil
}

// writeFileSynced writes data to path and fsyncs it. The failpoint
// fires before the write so tests can inject full-disk failures.
func writeFileSynced(path string, data []byte, failpoint string) error {
	if err := fault.Inject(failpoint); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncDir fsyncs a directory so its entries are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// swapDirs promotes the staged snapshot: the old dir (if any) is
// renamed aside, tmp renamed into place, and the old one removed. A
// crash between the renames is repaired by recoverDir.
func swapDirs(tmp, dir string) error {
	if err := fault.Inject("store.save.swap"); err != nil {
		return err
	}
	prev := dir + prevSuffix
	if err := os.RemoveAll(prev); err != nil {
		return err
	}
	if _, err := os.Stat(dir); err == nil {
		if err := os.Rename(dir, prev); err != nil {
			return err
		}
	}
	// Failpoint for the crash window between the two renames: the live
	// dir is already aside but tmp not yet promoted. recoverDir repairs
	// this by promoting the complete tmp (simcheck's crash schedules
	// drive it).
	if err := fault.Inject("store.save.swap.mid"); err != nil {
		return err
	}
	if err := os.Rename(tmp, dir); err != nil {
		return err
	}
	if parent := filepath.Dir(dir); parent != "" {
		if err := syncDir(parent); err != nil {
			return err
		}
	}
	return os.RemoveAll(prev)
}

// hasManifest reports whether dir contains a manifest file.
func hasManifest(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, manifestName))
	return err == nil
}

// recoverDir repairs an interrupted Save swap: when dir itself has no
// manifest, a complete dir.tmp (manifest written last, so its presence
// means the stage finished) or, failing that, the renamed-aside
// dir.prev is promoted back. Returns the repair performed, if any.
func recoverDir(dir string) (string, error) {
	if hasManifest(dir) {
		return "", nil
	}
	for _, cand := range []string{dir + tmpSuffix, dir + prevSuffix} {
		if !hasManifest(cand) {
			continue
		}
		if err := os.RemoveAll(dir); err != nil {
			return "", fmt.Errorf("store: snapshot recovery: %w", err)
		}
		if err := os.Rename(cand, dir); err != nil {
			return "", fmt.Errorf("store: snapshot recovery: %w", err)
		}
		return cand, nil
	}
	return "", nil
}

// SnapshotExists reports whether dir holds a loadable snapshot,
// including one recoverable from an interrupted Save swap.
func SnapshotExists(dir string) bool {
	return hasManifest(dir) || hasManifest(dir+tmpSuffix) || hasManifest(dir+prevSuffix)
}

// Quarantine renames a snapshot directory that failed to Load aside
// (dir.corrupt, dir.corrupt.1, ...) and returns the new path, so the
// caller can boot with a fresh store while keeping the evidence. The
// stale .tmp/.prev siblings, if any, are removed.
func Quarantine(dir string) (string, error) {
	dst := dir + quarantineSuffix
	for i := 1; ; i++ {
		if _, err := os.Stat(dst); os.IsNotExist(err) {
			break
		}
		dst = fmt.Sprintf("%s%s.%d", dir, quarantineSuffix, i)
	}
	if err := os.Rename(dir, dst); err != nil {
		return "", fmt.Errorf("store: quarantine: %w", err)
	}
	os.RemoveAll(dir + tmpSuffix)
	os.RemoveAll(dir + prevSuffix)
	return dst, nil
}

// corruptf wraps a structural-corruption error so errors.Is(err,
// ErrCorrupt) holds.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Load rebuilds a store from a snapshot directory, interning every
// label into cfg.Universe (a fresh one when nil). Window order and
// indices are restored from the manifest. An over-capacity snapshot —
// a tiered server checkpoints one after a failed compaction deferred
// eviction — loads in full: trimming here would drop the only copy of
// an acked window before AttachSegments can wire the cold tier. The
// surplus is compacted (or, untiered, evicted) on the next live Add.
// An interrupted Save swap is repaired first; structural
// damage — checksum mismatches, truncated or missing files, malformed
// manifests — is reported as ErrCorrupt (quarantine and boot fresh),
// while plain I/O errors are not.
func Load(dir string, cfg Config) (*Store, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := recoverDir(dir); err != nil {
		return nil, err
	}
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("store: snapshot: %w", err)
	}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	if !sc.Scan() {
		return nil, corruptf("empty manifest")
	}
	var checksummed bool
	switch sc.Text() {
	case manifestHeaderV1:
	case manifestHeaderV2:
		checksummed = true
		if err := verifyManifestCRC(raw); err != nil {
			return nil, err
		}
	default:
		return nil, corruptf("bad manifest header %q", sc.Text())
	}
	if !sc.Scan() || !strings.HasPrefix(sc.Text(), "windows ") {
		return nil, corruptf("missing windows line")
	}
	want, err := strconv.Atoi(strings.TrimPrefix(sc.Text(), "windows "))
	if err != nil || want < 0 {
		return nil, corruptf("bad window count %q", sc.Text())
	}
	loaded := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "node "); ok {
			if err := internNodeLine(s.universe, rest); err != nil {
				return nil, corruptf("%v", err)
			}
			continue
		}
		if strings.HasPrefix(line, "crc ") && checksummed {
			continue // self-checksum, verified up front
		}
		rest, ok := strings.CutPrefix(line, "set ")
		if !ok {
			return nil, corruptf("unknown manifest line %q", line)
		}
		set, err := loadSetFile(dir, rest, checksummed, s.universe)
		if err != nil {
			return nil, err
		}
		s.loading = true
		err = s.Add(set)
		s.loading = false
		if err != nil {
			// Duplicate or regressing window indices: the manifest
			// itself is inconsistent.
			return nil, corruptf("%v", err)
		}
		loaded++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("store: snapshot: %w", err)
	}
	if loaded != want {
		return nil, corruptf("manifest promises %d windows, found %d", want, loaded)
	}
	return s, nil
}

// verifyManifestCRC checks the v2 manifest's trailing self-checksum.
func verifyManifestCRC(raw []byte) error {
	trimmed := bytes.TrimRight(raw, "\n")
	i := bytes.LastIndexByte(trimmed, '\n')
	last := trimmed[i+1:]
	hexcrc, ok := bytes.CutPrefix(last, []byte("crc "))
	if i < 0 || !ok {
		return corruptf("manifest missing trailing checksum")
	}
	want, err := strconv.ParseUint(string(hexcrc), 16, 32)
	if err != nil {
		return corruptf("bad manifest checksum %q", last)
	}
	// The checksum covers every byte up to and including the newline
	// before the crc line — exactly what Save hashed.
	if got := crc32.ChecksumIEEE(raw[:i+1]); got != uint32(want) {
		return corruptf("manifest checksum mismatch: %08x != %08x", got, want)
	}
	return nil
}

// loadSetFile reads and verifies one window file named by a manifest
// set line: `name` (v1) or `name size crc32` (v2).
func loadSetFile(dir, rest string, checksummed bool, u *graph.Universe) (*core.SignatureSet, error) {
	fields := strings.Fields(rest)
	wantFields := 1
	if checksummed {
		wantFields = 3
	}
	if len(fields) != wantFields {
		return nil, corruptf("bad set line %q", rest)
	}
	name := fields[0]
	if name != filepath.Base(name) {
		return nil, corruptf("manifest escapes directory: %q", name)
	}
	raw, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, corruptf("manifest references missing file %s", name)
		}
		return nil, fmt.Errorf("store: snapshot: %w", err)
	}
	if checksummed {
		size, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, corruptf("bad set size in %q", rest)
		}
		want, err := strconv.ParseUint(fields[2], 16, 32)
		if err != nil {
			return nil, corruptf("bad set checksum in %q", rest)
		}
		if len(raw) != size {
			return nil, corruptf("%s is %d bytes, manifest says %d", name, len(raw), size)
		}
		if got := crc32.ChecksumIEEE(raw); got != uint32(want) {
			return nil, corruptf("%s checksum mismatch: %08x != %08x", name, got, want)
		}
	}
	set, err := core.ReadSignatureSet(bytes.NewReader(raw), u)
	if err != nil {
		return nil, corruptf("%s: %v", name, err)
	}
	return set, nil
}

// internNodeLine parses `"label" PART` and interns it, restoring the
// snapshot's NodeID assignment order.
func internNodeLine(u *graph.Universe, rest string) error {
	quoted, err := strconv.QuotedPrefix(rest)
	if err != nil {
		return fmt.Errorf("bad node line %q: %w", rest, err)
	}
	label, err := strconv.Unquote(quoted)
	if err != nil {
		return fmt.Errorf("bad node label in %q: %w", rest, err)
	}
	var part graph.Part
	switch strings.TrimSpace(rest[len(quoted):]) {
	case "V":
		part = graph.PartNone
	case "V1":
		part = graph.Part1
	case "V2":
		part = graph.Part2
	default:
		return fmt.Errorf("bad node part in %q", rest)
	}
	_, err = u.Intern(label, part)
	return err
}
