package store

import (
	"errors"
	"fmt"
	"math"
	"os"

	"graphsig/internal/core"
	"graphsig/internal/segment"
)

// Tiered storage: the ring holds the hot, most recent Capacity windows
// in RAM exactly as before; behind it, an optional cold tier of
// immutable segment files (internal/segment) receives every window the
// ring evicts. History, windowed Search and the per-window accessor
// transparently fall through to the segments, so a node with a small
// Capacity still serves months of archive — the unlock for the paper's
// §V long-horizon persistence and multi-week uniqueness analyses.
//
// Invariants:
//   - Compaction precedes eviction: a window leaves RAM only after its
//     segment file is durable (staged, fsynced, renamed). If the write
//     fails the ring temporarily exceeds Capacity and the compaction is
//     retried at the next eviction — degraded RAM bounds, never lost
//     acked data (the same posture as "keep the WAL when a snapshot
//     save fails").
//   - Segments and the ring may overlap after a crash: a window can be
//     both in a segment and in the last pre-crash snapshot's ring.
//     Readers resolve the overlap by serving windows >= the ring's
//     oldest from the ring; segment content is bit-identical anyway
//     (the block codec is deterministic), so either copy is correct.
//   - The cold tier's window set only grows (modulo explicit retention
//     pruning); tier.last marks the newest compacted window so a
//     crash-replay re-eviction of an already-compacted window drops it
//     without rewriting the file.

// segTier is the store's cold-tier state, guarded by Store.mu.
type segTier struct {
	dir  string
	segs []*segment.Segment // ascending, non-overlapping window ranges
	last int                // newest window covered by any segment
}

// SegmentStats reports what AttachSegments found on disk.
type SegmentStats struct {
	Segments    int      // segment files attached
	Windows     int      // window blocks across them
	Quarantined []string // corrupt files renamed aside
}

// AttachSegments enables the cold tier: dir is created if needed, stale
// .tmp leftovers from crashed compactions are removed, and every
// segment file is opened and checksum-verified. Corrupt files (torn
// tails, flipped bytes, overlapping ranges) are quarantined aside like
// a corrupt WAL and reported in the stats — boot continues without
// them. Call once at construction time, after any snapshot Load (label
// interning order must follow the snapshot manifest first); segment
// labels missing from the universe are interned here, single-threaded.
func (s *Store) AttachSegments(dir string) (SegmentStats, error) {
	var st SegmentStats
	if dir == "" {
		return st, fmt.Errorf("store: segments need a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return st, fmt.Errorf("store: segments: %w", err)
	}
	paths, err := segment.List(dir)
	if err != nil {
		return st, fmt.Errorf("store: segments: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t := &segTier{dir: dir, last: math.MinInt}
	quarantine := func(p string) error {
		q, qerr := segment.Quarantine(p)
		if qerr != nil {
			return fmt.Errorf("store: segments: %w", qerr)
		}
		st.Quarantined = append(st.Quarantined, q)
		s.obs.segQuarantines.Add(1)
		return nil
	}
	for _, p := range paths {
		seg, err := segment.Open(p, s.universe)
		if errors.Is(err, segment.ErrCorrupt) {
			if qerr := quarantine(p); qerr != nil {
				return st, qerr
			}
			continue
		}
		if err != nil {
			return st, fmt.Errorf("store: segments: %w", err)
		}
		if len(t.segs) > 0 && seg.First() <= t.last {
			// Overlapping ranges mean two files disagree about the same
			// history; keep the established earlier file, set the
			// newcomer aside as evidence.
			if qerr := quarantine(p); qerr != nil {
				return st, qerr
			}
			continue
		}
		t.segs = append(t.segs, seg)
		t.last = seg.Last()
		st.Segments++
		st.Windows += seg.Len()
	}
	s.tier = t
	return st, nil
}

// SegmentDir returns the cold tier's directory ("" when disabled).
func (s *Store) SegmentDir() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.tier == nil {
		return ""
	}
	return s.tier.dir
}

// SegmentCount reports the number of attached segment files.
func (s *Store) SegmentCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.tier == nil {
		return 0
	}
	return len(s.tier.segs)
}

// SegmentWindows reports how many windows the cold tier serves — i.e.
// segment windows not shadowed by the hot ring.
func (s *Store) SegmentWindows() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	segs, bound := s.tierSegsLocked()
	n := 0
	for _, seg := range segs {
		for _, w := range seg.Windows() {
			if w < bound {
				n++
			}
		}
	}
	return n
}

// tierSegsLocked returns the segment handles (ascending) and the hot
// ring's oldest window. Segment windows >= that bound are shadowed by
// the ring (crash-replay overlap) and must be skipped by merging
// readers. Callers hold s.mu.
func (s *Store) tierSegsLocked() ([]*segment.Segment, int) {
	bound := math.MaxInt
	if len(s.ring) > 0 {
		bound = s.ring[0].set.Window
	}
	if s.tier == nil {
		return nil, bound
	}
	return s.tier.segs, bound
}

// compactLocked compacts the first `over` ring entries into a new
// segment file and reports how many of them may now be evicted (a
// prefix of the ring). Windows already covered by a segment — a
// crash-replay re-adding evicted history — are droppable without a
// write. On a write failure every uncompacted window stays in RAM and
// the attempt is retried at the next eviction: no acked window is ever
// dropped without a durable copy. Caller holds s.mu.
func (s *Store) compactLocked(over int) int {
	t := s.tier
	covered := 0
	for covered < over && s.ring[covered].set.Window <= t.last {
		covered++
	}
	if covered == over {
		return over
	}
	sets := make([]*core.SignatureSet, 0, over-covered)
	for _, e := range s.ring[covered:over] {
		sets = append(sets, e.set)
	}
	seg, err := segment.Write(t.dir, sets, s.universe)
	if err != nil {
		s.obs.segErrors.Add(1)
		return covered
	}
	t.segs = append(t.segs, seg)
	t.last = seg.Last()
	s.obs.segSaves.Add(1)
	s.obs.segSaveBytes.Add(seg.Size())
	s.obs.segCompacted.Add(int64(len(sets)))
	s.pruneSegmentsLocked()
	return over
}

// pruneSegmentsLocked applies the retention policy: with SegmentRetain
// set, the oldest segment files beyond the bound are deleted — an
// explicit operator trade of history depth for disk. Caller holds s.mu.
func (s *Store) pruneSegmentsLocked() {
	t := s.tier
	if s.cfg.SegmentRetain <= 0 {
		return
	}
	for len(t.segs) > s.cfg.SegmentRetain {
		if err := os.Remove(t.segs[0].Path()); err != nil && !os.IsNotExist(err) {
			s.obs.segErrors.Add(1)
			return
		}
		t.segs = t.segs[1:]
		s.obs.segPruned.Add(1)
	}
}

// snapshotTier snapshots the windows a search must scan: the hot ring,
// preceded by cold-tier windows when the requested depth reaches past
// RAM (lastWindows == 0 means the full archive). Cold blocks are read
// and verified under the read lock — segment files are immutable and
// pruning runs under the write lock, so the handles stay valid.
func (s *Store) snapshotTier(lastWindows int) ([]entry, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ring := make([]entry, len(s.ring))
	copy(ring, s.ring)
	segs, bound := s.tierSegsLocked()
	if len(segs) == 0 || (lastWindows > 0 && lastWindows <= len(ring)) {
		return ring, nil
	}
	need := -1 // unbounded
	if lastWindows > 0 {
		need = lastWindows - len(ring)
	}
	var cold []entry // newest first while collecting
	for i := len(segs) - 1; i >= 0 && need != 0; i-- {
		wins := segs[i].Windows()
		for j := len(wins) - 1; j >= 0 && need != 0; j-- {
			if wins[j] >= bound {
				continue
			}
			set, err := segs[i].ReadWindow(wins[j])
			if err != nil {
				return nil, err
			}
			s.obs.segLoads.Add(1)
			cold = append(cold, entry{set: set})
			if need > 0 {
				need--
			}
		}
	}
	out := make([]entry, 0, len(cold)+len(ring))
	for i := len(cold) - 1; i >= 0; i-- {
		out = append(out, cold[i])
	}
	return append(out, ring...), nil
}

// Window returns the signature set of window w from the hot ring or,
// falling through, the cold tier. A window the archive does not hold
// yields (nil, nil).
func (s *Store) Window(w int) (*core.SignatureSet, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i := len(s.ring) - 1; i >= 0; i-- {
		if s.ring[i].set.Window == w {
			return s.ring[i].set, nil
		}
		if s.ring[i].set.Window < w {
			return nil, nil
		}
	}
	segs, bound := s.tierSegsLocked()
	if w >= bound {
		return nil, nil
	}
	for _, seg := range segs {
		if seg.Contains(w) {
			set, err := seg.ReadWindow(w)
			if err == nil {
				s.obs.segLoads.Add(1)
			}
			return set, err
		}
	}
	return nil, nil
}

// HistoryRange returns the archived signatures of label within the
// inclusive window bounds [from, to], oldest first, from both tiers.
// With limit > 0 only the newest limit matches are returned (still in
// ascending order) and truncated reports whether older matches were cut
// — the bound that keeps one HTTP response from carrying months of
// archive. Pass math.MinInt/math.MaxInt/0 for the unbounded form.
func (s *Store) HistoryRange(label string, from, to, limit int) (entries []HistoryEntry, truncated bool, err error) {
	v, ok := s.universe.Lookup(label)
	if !ok || to < from {
		return nil, false, nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var rev []HistoryEntry // newest first while collecting
	full := limit <= 0
	done := false
	for i := len(s.ring) - 1; i >= 0 && !done; i-- {
		set := s.ring[i].set
		if set.Window < from || set.Window > to {
			continue
		}
		if sig, ok := set.Get(v); ok {
			if !full && len(rev) >= limit {
				truncated, done = true, true
				break
			}
			rev = append(rev, HistoryEntry{Window: set.Window, Scheme: set.Scheme, Sig: sig})
		}
	}
	segs, bound := s.tierSegsLocked()
	for i := len(segs) - 1; i >= 0 && !done; i-- {
		wins := segs[i].LabelWindows(label)
		for j := len(wins) - 1; j >= 0 && !done; j-- {
			w := wins[j]
			if w >= bound || w > to {
				continue
			}
			if w < from {
				break
			}
			// The index lists only windows where label is a source, so
			// this window is a match; past the limit its existence alone
			// proves truncation.
			if !full && len(rev) >= limit {
				truncated, done = true, true
				break
			}
			set, rerr := segs[i].ReadWindow(w)
			if rerr != nil {
				return nil, false, rerr
			}
			s.obs.segLoads.Add(1)
			if sig, ok := set.Get(v); ok {
				rev = append(rev, HistoryEntry{Window: set.Window, Scheme: set.Scheme, Sig: sig})
			}
		}
	}
	entries = make([]HistoryEntry, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		entries = append(entries, rev[i])
	}
	return entries, truncated, nil
}
