package store

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"graphsig/internal/core"
	"graphsig/internal/graph"
)

// buildSet makes a window's SignatureSet over u from label → member
// weights, interning labels on first sight.
func buildSet(t *testing.T, u *graph.Universe, window int, sigs map[string]map[string]float64) *core.SignatureSet {
	t.Helper()
	var sources []graph.NodeID
	var out []core.Signature
	// Deterministic order: intern sources AND their members sorted by
	// label, so two universes fed the same stream assign identical
	// NodeIDs (cross-universe Sig.Equal comparisons depend on it).
	sortKeys := func(m map[string]float64) []string {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return keys
	}
	labels := make([]string, 0, len(sigs))
	for l := range sigs {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		v := u.MustIntern(l, graph.PartNone)
		w := map[graph.NodeID]float64{}
		for _, m := range sortKeys(sigs[l]) {
			w[u.MustIntern(m, graph.PartNone)] = sigs[l][m]
		}
		sources = append(sources, v)
		out = append(out, core.FromWeights(w, 10))
	}
	set, err := core.NewSignatureSet("tt", window, sources, out)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestStoreAddEvictionAndRange(t *testing.T) {
	u := graph.NewUniverse()
	s, err := New(Config{Capacity: 2, Universe: u})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.WindowRange(); ok {
		t.Fatal("empty store reports a window range")
	}
	for w := 0; w < 4; w++ {
		set := buildSet(t, u, w, map[string]map[string]float64{
			"a": {"x": 1},
		})
		if err := s.Add(set); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 2 || s.TotalAdded() != 4 {
		t.Fatalf("len=%d total=%d", s.Len(), s.TotalAdded())
	}
	lo, hi, ok := s.WindowRange()
	if !ok || lo != 2 || hi != 3 {
		t.Fatalf("range = [%d,%d] ok=%v", lo, hi, ok)
	}
	if got := s.Latest().Window; got != 3 {
		t.Fatalf("latest window = %d", got)
	}
	// Regressing or duplicate windows are rejected.
	if err := s.Add(buildSet(t, u, 3, map[string]map[string]float64{"a": {"x": 1}})); err == nil {
		t.Fatal("duplicate window accepted")
	}
	if err := s.Add(buildSet(t, u, 1, map[string]map[string]float64{"a": {"x": 1}})); err == nil {
		t.Fatal("regressing window accepted")
	}
}

func TestStoreValidation(t *testing.T) {
	if _, err := New(Config{Capacity: 0}); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := New(Config{Capacity: 1, LSHBands: 4}); err == nil {
		t.Fatal("bands without rows accepted")
	}
	s, err := New(Config{Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(nil); err == nil {
		t.Fatal("nil set accepted")
	}
}

func TestStoreHistoryAndLatestSignature(t *testing.T) {
	u := graph.NewUniverse()
	s, err := New(Config{Capacity: 4, Universe: u})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(buildSet(t, u, 0, map[string]map[string]float64{
		"a": {"x": 1, "y": 2},
		"b": {"z": 1},
	})); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(buildSet(t, u, 1, map[string]map[string]float64{
		"a": {"x": 3},
	})); err != nil {
		t.Fatal(err)
	}
	h := s.History("a")
	if len(h) != 2 || h[0].Window != 0 || h[1].Window != 1 {
		t.Fatalf("history = %+v", h)
	}
	if h[0].Scheme != "tt" {
		t.Fatalf("scheme = %q", h[0].Scheme)
	}
	if got := s.History("b"); len(got) != 1 {
		t.Fatalf("history b = %+v", got)
	}
	if got := s.History("nope"); got != nil {
		t.Fatalf("history of unknown label = %+v", got)
	}
	sig, w, ok := s.LatestSignature("a")
	if !ok || w != 1 || sig.Len() != 1 {
		t.Fatalf("latest a = %v window %d ok %v", sig, w, ok)
	}
	// b is only in window 0; the latest signature reaches back.
	if _, w, ok := s.LatestSignature("b"); !ok || w != 0 {
		t.Fatalf("latest b window %d ok %v", w, ok)
	}
}

func searchFixture(t *testing.T, cfg Config) (*Store, *graph.Universe) {
	t.Helper()
	u := cfg.Universe
	if u == nil {
		u = graph.NewUniverse()
		cfg.Universe = u
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(buildSet(t, u, 0, map[string]map[string]float64{
		"twin-old": {"x": 1, "y": 1},
		"other":    {"p": 1, "q": 1},
	})); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(buildSet(t, u, 1, map[string]map[string]float64{
		"query":   {"x": 1, "y": 1},
		"twin":    {"x": 1, "y": 1},
		"partial": {"x": 1, "z": 1},
		"far":     {"r": 1, "s": 1},
		"silent":  {},
	})); err != nil {
		t.Fatal(err)
	}
	return s, u
}

func TestStoreSearchExact(t *testing.T) {
	s, _ := searchFixture(t, Config{Capacity: 4})
	hits, err := s.SearchLabel(core.Jaccard{}, "query", SearchOptions{TopK: 3, MaxDist: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 3 {
		t.Fatalf("hits = %+v", hits)
	}
	// Exact twins first; the newer window ranks above the older at the
	// same distance; the partial overlap follows.
	if hits[0].Label != "twin" || hits[0].Dist != 0 || hits[0].Window != 1 {
		t.Fatalf("hit 0 = %+v", hits[0])
	}
	if hits[1].Label != "twin-old" || hits[1].Window != 0 {
		t.Fatalf("hit 1 = %+v", hits[1])
	}
	if hits[2].Label != "partial" {
		t.Fatalf("hit 2 = %+v", hits[2])
	}
	// MaxDist prunes; the query's own signature is excluded.
	for _, h := range hits {
		if h.Label == "query" {
			t.Fatal("query matched itself")
		}
		if h.Label == "far" || h.Label == "silent" {
			t.Fatalf("distant/empty label hit: %+v", h)
		}
	}
	// LastWindows restricts the scan.
	recent, err := s.SearchLabel(core.Jaccard{}, "query", SearchOptions{TopK: 10, LastWindows: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range recent {
		if h.Window != 1 {
			t.Fatalf("stale window in LastWindows=1 search: %+v", h)
		}
	}
	if _, err := s.SearchLabel(core.Jaccard{}, "unknown", SearchOptions{}); err == nil {
		t.Fatal("search for unknown label succeeded")
	}
	if _, err := s.Search(core.Jaccard{}, core.Signature{}, SearchOptions{}); err == nil {
		t.Fatal("empty-signature search succeeded")
	}
}

// TestStoreSearchBatchMatchesSingles: every slot of a SearchBatch
// answer must equal the corresponding single Search call — same hits,
// same order, same distances — across distances and option shapes,
// since the batch path shares one ring snapshot and one kernel scratch
// across slots.
func TestStoreSearchBatchMatchesSingles(t *testing.T) {
	s, u := searchFixture(t, Config{Capacity: 4})
	sigOf := func(members map[string]float64) core.Signature {
		w := map[graph.NodeID]float64{}
		for m, weight := range members {
			w[u.MustIntern(m, graph.PartNone)] = weight
		}
		return core.FromWeights(w, 10)
	}
	queries := []BatchQuery{
		{Sig: sigOf(map[string]float64{"x": 1, "y": 1}), Opts: SearchOptions{TopK: 3, MaxDist: 0.9}},
		{Sig: sigOf(map[string]float64{"p": 1, "q": 1}), Opts: SearchOptions{TopK: 2}},
		{Sig: sigOf(map[string]float64{"x": 1, "z": 1}), Opts: SearchOptions{MaxDist: 0.6, LastWindows: 1}},
		{Sig: sigOf(map[string]float64{"r": 2, "s": 1}), Opts: SearchOptions{TopK: 1, ExcludeLabel: "far"}},
	}
	for _, d := range []core.Distance{core.Jaccard{}, core.Cosine{}, core.WeightedJaccard{}} {
		got, err := s.SearchBatch(d, queries)
		if err != nil {
			t.Fatalf("%s: batch: %v", d.Name(), err)
		}
		if len(got) != len(queries) {
			t.Fatalf("%s: %d results for %d queries", d.Name(), len(got), len(queries))
		}
		for i, q := range queries {
			want, err := s.Search(d, q.Sig, q.Opts)
			if err != nil {
				t.Fatalf("%s: single %d: %v", d.Name(), i, err)
			}
			if fmt.Sprintf("%v", got[i]) != fmt.Sprintf("%v", want) {
				t.Fatalf("%s query %d diverged:\nbatch:  %v\nsingle: %v", d.Name(), i, got[i], want)
			}
		}
	}
	// Guards: no distance, empty signatures.
	if _, err := s.SearchBatch(nil, queries); err == nil {
		t.Fatal("nil distance accepted")
	}
	if _, err := s.SearchBatch(core.Jaccard{}, []BatchQuery{{Sig: core.Signature{}}}); err == nil {
		t.Fatal("empty signature accepted")
	}
	// An empty batch is a no-op, not an error.
	if out, err := s.SearchBatch(core.Jaccard{}, nil); err != nil || len(out) != 0 {
		t.Fatalf("empty batch: out=%v err=%v", out, err)
	}
}

func TestStoreSearchLSHPrefilter(t *testing.T) {
	s, _ := searchFixture(t, Config{Capacity: 4, LSHBands: 8, LSHRows: 2, LSHSeed: 7})
	hits, err := s.SearchLabel(core.Jaccard{}, "query", SearchOptions{TopK: 2, MaxDist: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Identical signatures share every band bucket, so the twins are
	// guaranteed candidates; distances are exact-verified.
	if len(hits) != 2 || hits[0].Label != "twin" || hits[0].Dist != 0 || hits[1].Label != "twin-old" {
		t.Fatalf("hits = %+v", hits)
	}
	// A non-Jaccard distance bypasses the prefilter (full scan).
	dice, err := s.SearchLabel(core.Dice{}, "query", SearchOptions{TopK: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(dice) != 1 || dice[0].Label != "twin" {
		t.Fatalf("dice hits = %+v", dice)
	}
}

func TestStoreSnapshotRoundTrip(t *testing.T) {
	u := graph.NewUniverse()
	s, err := New(Config{Capacity: 4, Universe: u})
	if err != nil {
		t.Fatal(err)
	}
	// Hostile labels must survive the snapshot (Go-quoted codec).
	if err := s.Add(buildSet(t, u, 2, map[string]map[string]float64{
		"sp ace \"quote\"": {"mem\nber": 0.25, "plain": 0.75},
		"plain-src":        {"plain": 1},
	})); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(buildSet(t, u, 5, map[string]map[string]float64{
		"plain-src": {"\xff\xfebytes": 1},
	})); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "snap")
	if SnapshotExists(dir) {
		t.Fatal("snapshot exists before save")
	}
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	if !SnapshotExists(dir) {
		t.Fatal("snapshot missing after save")
	}
	loaded, err := Load(dir, Config{Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	assertStoresEqual(t, s, loaded)

	// Loading into a smaller store keeps EVERY window — the snapshot may
	// be the only durable copy (a tiered server checkpoints an oversized
	// ring after a failed compaction), so trimming waits for the first
	// live Add, when any attached cold tier can take the surplus.
	small, err := Load(dir, Config{Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if lo, hi, _ := small.WindowRange(); lo != 2 || hi != 5 {
		t.Fatalf("small load range = [%d,%d], want [2,5]", lo, hi)
	}
	if err := small.Add(buildSet(t, u, 6, map[string]map[string]float64{
		"plain-src": {"plain": 1},
	})); err != nil {
		t.Fatal(err)
	}
	if lo, hi, _ := small.WindowRange(); lo != 6 || hi != 6 || small.Len() != 1 {
		t.Fatalf("post-Add range = [%d,%d] len %d, want [6,6] len 1", lo, hi, small.Len())
	}
	if _, err := Load(filepath.Join(dir, "missing"), Config{Capacity: 1}); err == nil {
		t.Fatal("loading a missing snapshot succeeded")
	}
}

// assertStoresEqual compares two stores window-by-window through
// labels, so differing NodeID assignments don't matter.
func assertStoresEqual(t *testing.T, a, b *Store) {
	t.Helper()
	wa, wb := a.Windows(), b.Windows()
	if len(wa) != len(wb) {
		t.Fatalf("window counts differ: %d vs %d", len(wa), len(wb))
	}
	for i := range wa {
		sa, sb := wa[i], wb[i]
		if sa.Window != sb.Window || sa.Scheme != sb.Scheme || sa.Len() != sb.Len() {
			t.Fatalf("window %d header mismatch: %d/%s/%d vs %d/%s/%d",
				i, sa.Window, sa.Scheme, sa.Len(), sb.Window, sb.Scheme, sb.Len())
		}
		for j, v := range sa.Sources {
			label := a.Universe().Label(v)
			hb := b.History(label)
			var match *HistoryEntry
			for k := range hb {
				if hb[k].Window == sa.Window {
					match = &hb[k]
				}
			}
			if match == nil {
				t.Fatalf("window %d: %q missing from loaded store", sa.Window, label)
			}
			siga := sa.Sigs[j]
			if siga.Len() != match.Sig.Len() {
				t.Fatalf("window %d %q: signature lengths differ", sa.Window, label)
			}
			for m := range siga.Nodes {
				la := a.Universe().Label(siga.Nodes[m])
				lb := b.Universe().Label(match.Sig.Nodes[m])
				if la != lb || siga.Weights[m] != match.Sig.Weights[m] {
					t.Fatalf("window %d %q entry %d: (%q,%g) vs (%q,%g)",
						sa.Window, label, m, la, siga.Weights[m], lb, match.Sig.Weights[m])
				}
			}
		}
	}
}

// TestStoreConcurrentIngestAndQuery drives Add, Search, History and
// Save from many goroutines under -race. New labels are interned up
// front: concurrent interning is the *server's* job to serialize (see
// package doc); the store itself must be safe given a quiescent
// universe.
func TestStoreConcurrentIngestAndQuery(t *testing.T) {
	u := graph.NewUniverse()
	const windows, hosts = 40, 12
	sets := make([]*core.SignatureSet, windows)
	for w := 0; w < windows; w++ {
		sigs := map[string]map[string]float64{}
		for h := 0; h < hosts; h++ {
			sigs[fmt.Sprintf("host-%d", h)] = map[string]float64{
				fmt.Sprintf("dst-%d", h):           1,
				fmt.Sprintf("dst-%d", (h+w)%hosts): 0.5,
			}
		}
		sets[w] = buildSet(t, u, w, sigs)
	}
	s, err := New(Config{Capacity: 8, Universe: u, LSHBands: 4, LSHRows: 2, LSHSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(sets[0]); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // writer: one goroutine, windows stay ordered
		defer wg.Done()
		for w := 1; w < windows; w++ {
			if err := s.Add(sets[w]); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() { // searcher
		defer wg.Done()
		for i := 0; i < 200; i++ {
			label := fmt.Sprintf("host-%d", i%hosts)
			if _, err := s.SearchLabel(core.Jaccard{}, label, SearchOptions{TopK: 5}); err != nil {
				t.Error(err)
				return
			}
			s.History(label)
			s.Len()
		}
	}()
	go func() { // snapshotter
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := s.Save(dir); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if lo, hi, ok := s.WindowRange(); !ok || hi != windows-1 || hi-lo != 7 {
		t.Fatalf("final range [%d,%d] ok=%v", lo, hi, ok)
	}
	if _, err := Load(dir, Config{Capacity: 8}); err != nil {
		t.Fatalf("final snapshot unloadable: %v", err)
	}
}
