package store

import (
	"fmt"
	"sync"
	"testing"

	"graphsig/internal/core"
	"graphsig/internal/graph"
)

// TestSearchEvictionInterleaving is the -race regression for the
// lock-free Search scan (PR 3 made distance work run outside the store
// lock): Add-driven eviction must never invalidate the ring snapshot a
// concurrent Search is walking. The audit that accompanies this test:
// Search copies the ring under RLock; eviction in Add replaces the
// ring with a freshly allocated backing array (append(s.ring[:0:0],
// ...)) instead of resclicing in place, and entries hold pointers to
// immutable sets/indexes/views — so a snapshot taken before an
// eviction stays fully readable after it. This test keeps that true by
// construction: under -race, any future in-place mutation of a shared
// backing array or entry becomes a reported data race here.
func TestSearchEvictionInterleaving(t *testing.T) {
	// Pre-intern every label so concurrent readers never race universe
	// mutation (that contract belongs to the caller; see package doc).
	u := graph.NewUniverse()
	const labels = 8
	ids := make([]graph.NodeID, labels)
	for i := range ids {
		ids[i] = u.MustIntern(fmt.Sprintf("n%02d", i), graph.PartNone)
	}
	makeSet := func(window int) *core.SignatureSet {
		sources := make([]graph.NodeID, 0, labels)
		sigs := make([]core.Signature, 0, labels)
		for i, v := range ids {
			w := map[graph.NodeID]float64{
				ids[(i+1)%labels]: float64(1 + (window+i)%5),
				ids[(i+3)%labels]: float64(1 + (window*i)%7),
			}
			sources = append(sources, v)
			sigs = append(sigs, core.FromWeights(w, 4))
		}
		set, err := core.NewSignatureSet("tt", window, sources, sigs)
		if err != nil {
			t.Fatal(err)
		}
		return set
	}

	s, err := New(Config{Capacity: 3, Universe: u})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Add(makeSet(0)); err != nil {
		t.Fatal(err)
	}
	query := makeSet(0).Sigs[0]

	const windows = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: every Add past capacity evicts
		defer wg.Done()
		for w := 1; w <= windows; w++ {
			if err := s.Add(makeSet(w)); err != nil {
				t.Errorf("add window %d: %v", w, err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() { // readers: search + history + latest, continuously
			defer wg.Done()
			for {
				hits, err := s.Search(core.Jaccard{}, query, SearchOptions{TopK: 5})
				if err != nil {
					t.Errorf("search: %v", err)
					return
				}
				// Sanity: hits reference retained-or-evicted windows with
				// coherent payloads — a half-committed window would show
				// up as an empty label or an out-of-range index.
				for _, h := range hits {
					if h.Label == "" || h.Window < 0 || h.Window > windows {
						t.Errorf("incoherent hit %+v", h)
						return
					}
				}
				s.History("n00")
				s.LatestSignature("n01")
				if _, newest, ok := s.WindowRange(); ok && newest >= windows {
					return
				}
			}
		}()
	}
	wg.Wait()
}
