package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graphsig/internal/fault"
	"graphsig/internal/graph"
)

// savedSnapshot writes a three-window snapshot into dir and returns
// the store that produced it.
func savedSnapshot(t *testing.T, dir string) *Store {
	t.Helper()
	u := graph.NewUniverse()
	s, err := New(Config{Capacity: 8, Universe: u})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 3; w++ {
		set := buildSet(t, u, w, map[string]map[string]float64{
			"host-a": {"peer-1": 3, "peer-2": 1},
			"host-b": {"peer-2": 2, fmt.Sprintf("peer-%d", w+3): 1},
		})
		if err := s.Add(set); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	return s
}

// assertEquivalent loads dir and checks it matches the original store.
func assertEquivalent(t *testing.T, dir string, orig *Store) {
	t.Helper()
	got, err := Load(dir, Config{Capacity: 8})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("loaded %d windows, want %d", got.Len(), orig.Len())
	}
	want := orig.Windows()
	for i, set := range got.Windows() {
		if set.Window != want[i].Window || set.Len() != want[i].Len() {
			t.Fatalf("window %d differs after reload", i)
		}
	}
}

func TestSnapshotCorruptAnyByteIsDetected(t *testing.T) {
	base := t.TempDir()
	dir := filepath.Join(base, "snap")
	savedSnapshot(t, dir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 { // MANIFEST + 3 windows
		t.Fatalf("snapshot holds %d files, want 4", len(entries))
	}
	for _, e := range entries {
		path := filepath.Join(dir, e.Name())
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Flip one byte at several offsets across the file; every flip
		// must surface as ErrCorrupt, never a panic or a silent load.
		for _, off := range []int{0, 1, len(blob) / 3, len(blob) / 2, len(blob) - 2, len(blob) - 1} {
			mut := append([]byte(nil), blob...)
			mut[off] ^= 0x20
			if string(mut) == string(blob) {
				continue
			}
			if err := os.WriteFile(path, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := Load(dir, Config{Capacity: 8})
			if err == nil {
				t.Fatalf("%s: flipped byte %d loaded cleanly", e.Name(), off)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("%s byte %d: error %v is not ErrCorrupt", e.Name(), off, err)
			}
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSnapshotTruncatedSetFile(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snap")
	savedSnapshot(t, dir)
	path := filepath.Join(dir, setFileName(1))
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob[:len(blob)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, Config{Capacity: 8}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated set file: %v, want ErrCorrupt", err)
	}
}

func TestSnapshotMissingManifest(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snap")
	savedSnapshot(t, dir)
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	if SnapshotExists(dir) {
		t.Fatal("manifest-less dir reported as a snapshot")
	}
	if _, err := Load(dir, Config{Capacity: 8}); err == nil {
		t.Fatal("manifest-less dir loaded")
	}
}

func TestSnapshotMissingSetFile(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snap")
	savedSnapshot(t, dir)
	if err := os.Remove(filepath.Join(dir, setFileName(2))); err != nil {
		t.Fatal(err)
	}
	_, err := Load(dir, Config{Capacity: 8})
	if !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), "missing file") {
		t.Fatalf("manifest referencing absent file: %v", err)
	}
}

func TestSnapshotDuplicateWindowIndices(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snap")
	savedSnapshot(t, dir)
	// Rewrite the manifest (v1, so no checksums to also forge) with the
	// same set file listed twice: Load must reject the duplicate index.
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, line := range strings.Split(string(raw), "\n") {
		switch {
		case line == manifestHeaderV2:
			lines = append(lines, manifestHeaderV1)
		case strings.HasPrefix(line, "windows "):
			lines = append(lines, "windows 2")
		case strings.HasPrefix(line, "set "+setFileName(0)):
			name := strings.Fields(line)[1]
			lines = append(lines, "set "+name, "set "+name)
		case strings.HasPrefix(line, "set ") || strings.HasPrefix(line, "crc "):
			// drop the other sets and the stale checksum
		default:
			lines = append(lines, line)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, Config{Capacity: 8}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("duplicate window index: %v, want ErrCorrupt", err)
	}
}

func TestSnapshotV1Compat(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snap")
	orig := savedSnapshot(t, dir)
	// Demote the manifest to v1: strip sizes/CRCs and the self-check.
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, line := range strings.Split(strings.TrimRight(string(raw), "\n"), "\n") {
		switch {
		case line == manifestHeaderV2:
			lines = append(lines, manifestHeaderV1)
		case strings.HasPrefix(line, "set "):
			lines = append(lines, "set "+strings.Fields(line)[1])
		case strings.HasPrefix(line, "crc "):
		default:
			lines = append(lines, line)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, dir, orig)
}

func TestSnapshotOverwriteKeepsAtomicity(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snap")
	orig := savedSnapshot(t, dir)
	// Save again over the existing snapshot; no stale siblings remain.
	if err := orig.Save(dir); err != nil {
		t.Fatal(err)
	}
	for _, sib := range []string{dir + tmpSuffix, dir + prevSuffix} {
		if _, err := os.Stat(sib); !os.IsNotExist(err) {
			t.Fatalf("stale sibling %s left behind", sib)
		}
	}
	assertEquivalent(t, dir, orig)
}

func TestSnapshotInterruptedSwapRecovery(t *testing.T) {
	// Crash between rename(dir → dir.prev) and rename(dir.tmp → dir):
	// dir is gone but both siblings are complete. Load must promote the
	// newer .tmp.
	dir := filepath.Join(t.TempDir(), "snap")
	orig := savedSnapshot(t, dir)
	if err := os.Rename(dir, dir+prevSuffix); err != nil {
		t.Fatal(err)
	}
	if !SnapshotExists(dir) {
		t.Fatal("recoverable snapshot not reported by SnapshotExists")
	}
	assertEquivalent(t, dir, orig)

	// Crash before the first rename: dir intact, complete .tmp beside
	// it. The intact dir wins.
	orig2 := savedSnapshot(t, dir+"-b")
	copyDir(t, dir+"-b", dir+"-b"+tmpSuffix)
	assertEquivalent(t, dir+"-b", orig2)
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		blob, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSnapshotQuarantine(t *testing.T) {
	base := t.TempDir()
	dir := filepath.Join(base, "snap")
	savedSnapshot(t, dir)
	blobPath := filepath.Join(dir, setFileName(0))
	blob, _ := os.ReadFile(blobPath)
	blob[len(blob)/2] ^= 0xFF
	if err := os.WriteFile(blobPath, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	moved, err := Quarantine(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(moved, dir+quarantineSuffix) {
		t.Fatalf("quarantined to %s", moved)
	}
	if SnapshotExists(dir) {
		t.Fatal("dir still reports a snapshot after quarantine")
	}
	// Second quarantine of a fresh corrupt dir picks a distinct name.
	savedSnapshot(t, dir)
	moved2, err := Quarantine(dir)
	if err != nil {
		t.Fatal(err)
	}
	if moved2 == moved {
		t.Fatalf("quarantine reused %s", moved)
	}
}

func TestSaveFailpointLeavesOldSnapshot(t *testing.T) {
	t.Cleanup(fault.Reset)
	dir := filepath.Join(t.TempDir(), "snap")
	orig := savedSnapshot(t, dir)

	boom := errors.New("disk full")
	for _, point := range []string{"store.save.set", "store.save.manifest", "store.save.swap"} {
		fault.Set(point, func() error { return boom })
		if err := orig.Save(dir); !errors.Is(err, boom) {
			t.Fatalf("%s: Save returned %v", point, err)
		}
		fault.Clear(point)
		// The failed save must not have damaged the existing snapshot.
		assertEquivalent(t, dir, orig)
	}
}

func TestSaveAfterInterruptedSwapKeepsNewerState(t *testing.T) {
	// Found by simcheck (seed 2): a swap interrupted between its two
	// renames leaves the newly committed state only in dir.tmp. The next
	// Save used to RemoveAll that tmp before staging — so if it then
	// failed too, recovery fell back to dir.prev and the snapshot
	// silently rolled back past a committed checkpoint.
	t.Cleanup(fault.Reset)
	dir := filepath.Join(t.TempDir(), "snap")
	orig := savedSnapshot(t, dir) // 3 windows committed

	// Grow the store and interrupt the swap mid-way: dir is renamed
	// aside, tmp (with the 4-window state) never promoted.
	u := orig.Universe()
	set := buildSet(t, u, 3, map[string]map[string]float64{
		"host-a": {"peer-1": 5},
	})
	if err := orig.Add(set); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("killed mid-swap")
	fault.Set("store.save.swap.mid", func() error { return boom })
	if err := orig.Save(dir); !errors.Is(err, boom) {
		t.Fatalf("Save returned %v", err)
	}
	fault.Clear("store.save.swap.mid")

	// A subsequent Save that dies while staging must not destroy the
	// only complete copy of the 4-window state.
	fault.Set("store.save.set", func() error { return boom })
	if err := orig.Save(dir); !errors.Is(err, boom) {
		t.Fatalf("Save returned %v", err)
	}
	fault.Clear("store.save.set")

	assertEquivalent(t, dir, orig) // all 4 windows, not the 3-window prev
}
