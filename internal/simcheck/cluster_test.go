package simcheck

import (
	"fmt"
	"testing"
)

// TestSimCluster drives the cluster-equivalence harness: a router over
// two (and three) shards must answer ingest accounting, search,
// history and watchlist reads bitwise like one node holding the whole
// stream, under an RNG-driven schedule.
func TestSimCluster(t *testing.T) {
	cfgs := []ClusterConfig{
		{Seed: 41, Ops: 400, Shards: 2},
		{Seed: 42, Ops: 400, Shards: 2, Capacity: 3}, // ring eviction in play
		{Seed: 43, Ops: 250, Shards: 3},
	}
	for _, cfg := range cfgs {
		cfg := cfg
		t.Run(fmt.Sprintf("seed%d_shards%d_cap%d", cfg.Seed, cfg.Shards, cfg.Capacity), func(t *testing.T) {
			if err := RunCluster(cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSimClusterDeterministic replays one seed twice: the harness must
// not leak state between runs.
func TestSimClusterDeterministic(t *testing.T) {
	for i := 0; i < 2; i++ {
		if err := RunCluster(ClusterConfig{Seed: 47, Ops: 150}); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
}

// TestSimClusterFailover drives the fault schedule: shard 0's primary
// is killed mid-run, reads must keep answering through its follower,
// auto-promotion must restore writes, and the remaining schedule
// (including a dedup replay of the last pre-kill batch) must stay
// bitwise equal to the reference node.
func TestSimClusterFailover(t *testing.T) {
	cfgs := []ClusterConfig{
		{Seed: 51, Ops: 300, Shards: 2, Faults: true},
		{Seed: 52, Ops: 250, Shards: 3, Capacity: 3, Faults: true},
	}
	for _, cfg := range cfgs {
		cfg := cfg
		t.Run(fmt.Sprintf("seed%d_shards%d", cfg.Seed, cfg.Shards), func(t *testing.T) {
			cfg.Dir = t.TempDir()
			if err := RunCluster(cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}
