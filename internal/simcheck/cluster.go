package simcheck

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"time"

	"graphsig/internal/cluster"
	"graphsig/internal/netflow"
	"graphsig/internal/server"
	"graphsig/internal/sketch"
	"graphsig/internal/stats"
	"graphsig/internal/stream"
)

// ClusterConfig parameterizes one cluster-equivalence simulation: a
// router over N shards and a single reference node consume the same
// RNG-driven schedule, and every read answer must agree bitwise.
type ClusterConfig struct {
	// Seed drives the whole schedule; the same seed replays the same
	// run bit-for-bit.
	Seed int64
	// Ops is the schedule length.
	Ops int
	// Shards is the topology width (default 2).
	Shards int
	// Labels sizes the host pool (default 18).
	Labels int
	// Capacity bounds every store ring — shards and reference alike
	// (default 6).
	Capacity int
	// K is the signature length (default 4).
	K int
	// WindowSize is the aggregation window (default 5m of logical time).
	WindowSize time.Duration
	// Faults, when true, injects the failover schedule: shard 0 gets a
	// WAL-shipping follower, its primary is killed halfway through the
	// run, reads must keep answering through the follower, and the
	// router's prober promotes it — after which the rest of the schedule
	// (including a dedup-replay of the last pre-kill batch) must stay
	// bitwise equal to the reference.
	Faults bool
	// Dir is the scratch directory for shard 0's durability when Faults
	// is set (WAL, snapshots, the follower's promote home).
	Dir string
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.Shards == 0 {
		c.Shards = 2
	}
	if c.Labels == 0 {
		c.Labels = 18
	}
	if c.Capacity == 0 {
		c.Capacity = 6
	}
	if c.K == 0 {
		c.K = 4
	}
	if c.WindowSize == 0 {
		c.WindowSize = 5 * time.Minute
	}
	return c
}

// streamConfig pins the window origin: shards learn origins from their
// own first record, so without an explicit origin each shard would
// anchor a different window grid and nothing downstream could line up
// (the deployment requirement documented in DESIGN.md §12).
func (c ClusterConfig) streamConfig() stream.Config {
	return stream.Config{
		WindowSize: c.WindowSize,
		Origin:     simT0,
		TCPOnly:    true,
		K:          c.K,
		Scheme:     "tt",
		Sketch:     sketch.StreamConfig{Depth: 2, Width: 64, Candidates: 16, Seed: 9},
	}
}

func (c ClusterConfig) serverConfig() server.Config {
	return server.Config{
		Stream:        c.streamConfig(),
		StoreCapacity: c.Capacity,
		WatchMaxDist:  server.Float64(0.9),
		DedupCap:      512,
	}
}

// csim is one cluster run's mutable state.
type csim struct {
	cfg ClusterConfig
	rng *stats.RNG

	router *cluster.Router
	ref    *server.Client

	clock    time.Time
	labels   []string
	barriers []string // one label owned by each shard, for window alignment
	batchN   int
	watchN   int
	trace    []string
	op       int

	// Fault-schedule state (Faults only).
	shardSrv    []*server.Server
	shardTS     []*httptest.Server
	follower    *cluster.Follower
	faulted     bool
	lastID      string           // last successfully ingested batch ID...
	lastRecords []netflow.Record // ...and its records, for the dedup replay
}

// RunCluster executes a cluster-equivalence simulation and returns nil
// or a *Divergence (any other error type signals a harness failure).
// Unlike Run it needs no scratch directory: the topology is memory-only
// — durability is Run's and the follower tests' concern; this harness
// checks that routing and scatter-gather merging are invisible.
func RunCluster(cfg ClusterConfig) error {
	cfg = cfg.withDefaults()
	s := &csim{cfg: cfg, rng: stats.NewRNG(cfg.Seed), clock: simT0}
	for i := 0; i < cfg.Labels; i++ {
		s.labels = append(s.labels, fmt.Sprintf("h%02d", i))
	}

	if cfg.Faults && cfg.Dir == "" {
		return fmt.Errorf("simcheck: Faults requires a scratch Dir")
	}

	var seeds [][]string
	for i := 0; i < cfg.Shards; i++ {
		scfg := cfg.serverConfig()
		if cfg.Faults && i == 0 {
			// The shard that will fail: durable and replicating.
			scfg.SnapshotDir = filepath.Join(cfg.Dir, "shard0")
			scfg.Replicate = true
		}
		srv, err := server.New(scfg)
		if err != nil {
			return fmt.Errorf("simcheck: shard %d: %w", i, err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		defer srv.Abort()
		s.shardSrv = append(s.shardSrv, srv)
		s.shardTS = append(s.shardTS, ts)
		seeds = append(seeds, []string{ts.URL})
	}
	refSrv, err := server.New(cfg.serverConfig())
	if err != nil {
		return fmt.Errorf("simcheck: reference: %w", err)
	}
	refTS := httptest.NewServer(refSrv.Handler())
	defer refTS.Close()
	defer refSrv.Abort()
	s.ref = server.NewClient(refTS.URL)

	rcfg := cluster.Config{Shards: seeds, Timeout: 30 * time.Second}
	if cfg.Faults {
		f, err := cluster.NewFollower(cluster.FollowerConfig{
			Primary:       []string{seeds[0][0]},
			Stream:        cfg.streamConfig(),
			StoreCapacity: cfg.Capacity,
			WatchMaxDist:  server.Float64(0.9),
			Poll:          5 * time.Millisecond,
			ChunkBytes:    2048,
			PromoteDir:    filepath.Join(cfg.Dir, "promoted"),
		})
		if err != nil {
			return fmt.Errorf("simcheck: follower: %w", err)
		}
		f.Start()
		defer f.Stop()
		fts := httptest.NewServer(f.FollowerHandler())
		defer fts.Close()
		s.follower = f
		rcfg.Followers = make([][]string, cfg.Shards)
		rcfg.Followers[0] = []string{fts.URL}
		rcfg.Health = &cluster.HealthConfig{
			Interval:      time.Hour, // the schedule drives ProbeOnce
			FailThreshold: 3,
			Cooldown:      time.Millisecond,
			AutoPromote:   time.Millisecond,
			Timeout:       5 * time.Second,
		}
		rcfg.MaxRetries = -1 // a killed shard should fail fast, not backoff
	}
	rt, err := cluster.NewRouter(rcfg)
	if err != nil {
		return fmt.Errorf("simcheck: router: %w", err)
	}
	s.router = rt

	// One barrier label per shard, deterministically derived from the
	// ring so every shard's pipeline can be advanced to the common
	// current window before a comparison (window close is lazy per
	// shard: a shard that saw no recent record still sits in an old
	// window with its signatures unextracted).
	for shard := 0; shard < cfg.Shards; shard++ {
		for i := 0; ; i++ {
			label := fmt.Sprintf("barrier-%02d", i)
			if rt.Ring().Shard(label) == shard {
				s.barriers = append(s.barriers, label)
				break
			}
		}
	}

	for s.op = 0; s.op < cfg.Ops; s.op++ {
		if cfg.Faults && !s.faulted && s.op == cfg.Ops/2 {
			if err := s.failover(); err != nil {
				return err
			}
		}
		if err := s.step(); err != nil {
			return err
		}
	}
	return s.compareHits() // final read-path check
}

// failover is the injected fault: align windows, wait for the follower
// to hold everything shard 0 durably logged, kill shard 0's primary,
// walk the prober to Down, check reads answer fully through the
// follower, let auto-promotion restore writes, and replay the last
// pre-kill batch ID to prove the dedup set survived the failover.
func (s *csim) failover() error {
	s.faulted = true
	if err := s.barrier(); err != nil {
		return err
	}
	s.note("failover: killing shard 0 primary")

	// Catch-up barrier against the primary's durable cursor.
	pc := server.NewClient(s.shardTS[0].URL)
	rs, err := pc.ReplicationStatus()
	if err != nil {
		return fmt.Errorf("simcheck: replication status: %w", err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := s.follower.Stats()
		if st.Fatal != "" {
			return fmt.Errorf("simcheck: follower died: %s", st.Fatal)
		}
		if st.Gen > rs.Gen || (st.Gen == rs.Gen && st.Offset >= rs.DurableSize) {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("simcheck: follower never reached (%d,%d): %+v", rs.Gen, rs.DurableSize, st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	s.shardTS[0].Close()
	s.shardSrv[0].Abort()
	p := s.router.Prober()
	for i := 0; i < 3; i++ {
		p.ProbeOnce()
	}

	// Reads must keep answering at full width through the follower, and
	// stay bitwise equal to the reference (windows are aligned and
	// nothing has mutated since the barrier).
	label := ""
	for _, l := range s.labels {
		if s.router.Ring().Shard(l) == 0 {
			label = l
			break
		}
	}
	if label == "" {
		return fmt.Errorf("simcheck: no label owned by shard 0")
	}
	req := server.SearchRequest{Label: label, K: 5}
	routed, rerr := s.router.Search(req)
	refRes, ferr := s.ref.Search(req)
	if rerr != nil || ferr != nil {
		if rsc, fsc := server.APIStatus(rerr), server.APIStatus(ferr); rsc != fsc {
			return s.fail("failover search %s: router status %d (%v), reference status %d (%v)",
				label, rsc, rerr, fsc, ferr)
		}
	} else {
		if routed.ShardsOK != routed.ShardsTotal {
			return s.fail("failover search answered %d/%d shards, want full width via follower",
				routed.ShardsOK, routed.ShardsTotal)
		}
		if len(routed.StaleShards) != 1 || routed.StaleShards[0].Shard != 0 {
			return s.fail("failover search stale_shards %+v, want shard 0", routed.StaleShards)
		}
		if ja, jb, ok := jsonEq(routed.Hits, refRes.Hits); !ok {
			return s.fail("failover search %s hits:\n  router:    %s\n  reference: %s", label, ja, jb)
		}
	}

	// Promotion restores writes.
	time.Sleep(5 * time.Millisecond) // grace period
	p.ProbeOnce()
	if !s.follower.Stats().Promoted {
		return fmt.Errorf("simcheck: follower not promoted after grace period")
	}
	s.note("failover: follower promoted")

	// Exactly-once across the failover: the last pre-kill batch replayed
	// under its original ID must be absorbed by the promoted node's
	// replicated dedup set with matching accounting (ingestBoth compares;
	// the reference dedups it too).
	if s.lastID != "" {
		s.note("failover: dedup replay of %s", s.lastID)
		routed, rerr := s.router.Ingest(s.lastID, s.lastRecords)
		refRes, ferr := s.ref.IngestBatch(s.lastID, s.lastRecords)
		if rerr != nil || ferr != nil {
			return fmt.Errorf("simcheck: dedup replay %s: router %v, reference %v", s.lastID, rerr, ferr)
		}
		if !routed.Deduplicated {
			return s.fail("dedup replay %s was not deduplicated by the promoted topology", s.lastID)
		}
		if routed.Accepted != refRes.Accepted || routed.Dropped != refRes.Dropped ||
			routed.Rejected != refRes.Rejected {
			return s.fail("dedup replay %s accounting: router %+v, reference %+v",
				s.lastID, routed.IngestResult, refRes)
		}
	}
	return nil
}

func (s *csim) fail(format string, args ...any) error {
	return &Divergence{
		Seed:   s.cfg.Seed,
		Op:     s.op,
		Detail: fmt.Sprintf(format, args...),
		Trace:  append([]string(nil), s.trace...),
	}
}

func (s *csim) note(format string, args ...any) {
	s.trace = append(s.trace, fmt.Sprintf("op %4d: ", s.op)+fmt.Sprintf(format, args...))
	if over := len(s.trace) - traceLen; over > 0 {
		s.trace = append(s.trace[:0:0], s.trace[over:]...)
	}
}

func (s *csim) step() error {
	switch r := s.rng.Float64(); {
	case r < 0.60:
		return s.opIngest()
	case r < 0.75:
		return s.compareSearch()
	case r < 0.85:
		return s.compareHistory()
	case r < 0.92:
		return s.opWatchlistAdd()
	default:
		return s.compareHits()
	}
}

// nextRecord draws one flow record on a strictly monotone clock.
// Regressions are excluded on purpose: the single node rejects a
// record against the global current window while a shard rejects
// against its own (possibly older) one, so backdated records are the
// one ingest class whose accounting legitimately differs (DESIGN.md
// §12 documents this as an ordering requirement of cluster mode).
func (s *csim) nextRecord() netflow.Record {
	if s.rng.Float64() < 0.05 {
		s.clock = s.clock.Add(time.Duration(1+s.rng.Intn(2)) * s.cfg.WindowSize)
	} else {
		s.clock = s.clock.Add(time.Duration(s.rng.Intn(20)) * time.Second)
	}
	src := s.labels[s.rng.Intn(len(s.labels))]
	dst := s.labels[s.rng.Intn(len(s.labels))]
	for dst == src {
		dst = s.labels[s.rng.Intn(len(s.labels))]
	}
	rec := netflow.Record{
		Src: src, Dst: dst, Start: s.clock,
		Duration: time.Duration(s.rng.Intn(30)) * time.Second,
		Sessions: 1 + s.rng.Intn(5),
		Bytes:    int64(100 + s.rng.Intn(10000)),
		Packets:  int64(1 + s.rng.Intn(100)),
		Proto:    netflow.TCP,
	}
	switch v := s.rng.Float64(); {
	case v < 0.05:
		rec.Proto = netflow.UDP // dropped under TCPOnly
	case v < 0.09:
		rec.Sessions = 0 // invalid: rejected
	case v < 0.11:
		rec.Dst = rec.Src // invalid self-flow: rejected
	}
	return rec
}

// ingestBoth sends the same batch through the router and the reference
// node and checks the per-batch accounting that must agree. Windows
// closed and current window are per-process facts (each shard closes
// windows on its own record arrivals), so they are deliberately not
// compared here — window alignment is barrier()'s job.
func (s *csim) ingestBoth(records []netflow.Record, kind string) error {
	s.batchN++
	id := fmt.Sprintf("%s-%06d", kind, s.batchN)
	s.note("%s %s n=%d clock=%s", kind, id, len(records), s.clock.Format("15:04:05"))
	routed, rerr := s.router.Ingest(id, records)
	refRes, ferr := s.ref.IngestBatch(id, records)
	if rerr != nil || ferr != nil {
		return fmt.Errorf("simcheck: ingest %s: router %v, reference %v", id, rerr, ferr)
	}
	if routed.Received != refRes.Received || routed.Accepted != refRes.Accepted ||
		routed.Dropped != refRes.Dropped || routed.Rejected != refRes.Rejected {
		return s.fail("ingest %s accounting: router %+v, reference %+v", id, routed.IngestResult, refRes)
	}
	s.lastID, s.lastRecords = id, append([]netflow.Record(nil), records...)
	return nil
}

func (s *csim) opIngest() error {
	n := 1 + s.rng.Intn(10)
	records := make([]netflow.Record, n)
	for i := range records {
		records[i] = s.nextRecord()
	}
	return s.ingestBoth(records, "batch")
}

// barrier advances every shard (and the reference) to the same current
// window by ingesting one record per shard-owned barrier label at the
// current clock. Afterwards the set of archived windows is identical
// everywhere, which is the precondition for bitwise read comparison.
func (s *csim) barrier() error {
	records := make([]netflow.Record, len(s.barriers))
	for i, label := range s.barriers {
		records[i] = netflow.Record{
			Src: label, Dst: "barrier-sink", Start: s.clock,
			Duration: time.Second, Sessions: 1, Bytes: 1, Packets: 1,
			Proto: netflow.TCP,
		}
	}
	return s.ingestBoth(records, "barrier")
}

// jsonEq compares two wire values by canonical JSON bytes.
func jsonEq(a, b any) (string, string, bool) {
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	return string(ja), string(jb), string(ja) == string(jb)
}

func (s *csim) compareSearch() error {
	if err := s.barrier(); err != nil {
		return err
	}
	req := server.SearchRequest{
		Label: s.labels[s.rng.Intn(len(s.labels))],
		K:     1 + s.rng.Intn(6),
	}
	if s.rng.Bernoulli(0.3) {
		req.LastWindows = 1 + s.rng.Intn(3)
	}
	s.note("search label=%s k=%d last=%d", req.Label, req.K, req.LastWindows)
	routed, rerr := s.router.Search(req)
	refRes, ferr := s.ref.Search(req)
	if rerr != nil || ferr != nil {
		// Both sides must refuse the same queries the same way (e.g. a
		// label with no archived signature yet).
		if rs, fs := server.APIStatus(rerr), server.APIStatus(ferr); rs != fs {
			return s.fail("search %s: router status %d (%v), reference status %d (%v)",
				req.Label, rs, rerr, fs, ferr)
		}
		return nil
	}
	if routed.ShardsOK != routed.ShardsTotal {
		return s.fail("search %s degraded with healthy shards: %d/%d", req.Label, routed.ShardsOK, routed.ShardsTotal)
	}
	if ja, jb, ok := jsonEq(routed.Hits, refRes.Hits); !ok {
		return s.fail("search %s hits:\n  router:    %s\n  reference: %s", req.Label, ja, jb)
	}
	if routed.Distance != refRes.Distance {
		return s.fail("search %s distance %q vs %q", req.Label, routed.Distance, refRes.Distance)
	}
	return nil
}

func (s *csim) compareHistory() error {
	if err := s.barrier(); err != nil {
		return err
	}
	label := s.labels[s.rng.Intn(len(s.labels))]
	s.note("history label=%s", label)
	routed, rerr := s.router.History(label, server.HistoryQuery{})
	refRes, ferr := s.ref.History(label)
	if rerr != nil || ferr != nil {
		if rs, fs := server.APIStatus(rerr), server.APIStatus(ferr); rs != fs {
			return s.fail("history %s: router status %d (%v), reference status %d (%v)",
				label, rs, rerr, fs, ferr)
		}
		return nil
	}
	if ja, jb, ok := jsonEq(routed, refRes); !ok {
		return s.fail("history %s:\n  router:    %s\n  reference: %s", label, ja, jb)
	}
	return nil
}

func (s *csim) opWatchlistAdd() error {
	if err := s.barrier(); err != nil {
		return err
	}
	// A handful of individuals is plenty: every archived entry is
	// screened at each window close on every shard, and an unbounded
	// archive would overflow the servers' bounded hit logs differently
	// on each side.
	if s.watchN >= 4 {
		return s.compareHits()
	}
	label := s.labels[s.rng.Intn(len(s.labels))]
	req := server.WatchlistAddRequest{
		Individual: fmt.Sprintf("ind-%02d", s.watchN),
		Label:      label,
	}
	s.note("watchlist add %s label=%s", req.Individual, label)
	routed, rerr := s.router.WatchlistAdd(req)
	refRes, ferr := s.ref.WatchlistAdd(req)
	if rerr != nil || ferr != nil {
		if (rerr == nil) != (ferr == nil) {
			return s.fail("watchlist add %s: router %v, reference %v", label, rerr, ferr)
		}
		return nil // both refused (label not archived yet)
	}
	s.watchN++
	if routed.Archived != refRes.Archived {
		return s.fail("watchlist add %s archived %d vs %d", label, routed.Archived, refRes.Archived)
	}
	return nil
}

func (s *csim) compareHits() error {
	if err := s.barrier(); err != nil {
		return err
	}
	s.note("watchlist hits")
	routed, rerr := s.router.WatchlistHits()
	refRes, ferr := s.ref.WatchlistHits()
	if rerr != nil || ferr != nil {
		return fmt.Errorf("simcheck: watchlist hits: router %v, reference %v", rerr, ferr)
	}
	// The router merges under (window, label, individual, archived
	// window); the reference log is chronological. Chronological order
	// is window-major and the reference screens one label set in
	// label-hash-independent store order, so sort it the router's way.
	ref := make([]server.WatchHitJSON, len(refRes.Hits))
	copy(ref, refRes.Hits)
	sortWatchHits(ref)
	if ja, jb, ok := jsonEq(routed.Hits, ref); !ok {
		return s.fail("watchlist hits:\n  router:    %s\n  reference: %s", ja, jb)
	}
	return nil
}

// sortWatchHits applies the router's merge order.
func sortWatchHits(hits []server.WatchHitJSON) {
	sort.Slice(hits, func(i, j int) bool {
		a, b := hits[i], hits[j]
		if a.Window != b.Window {
			return a.Window < b.Window
		}
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		if a.Individual != b.Individual {
			return a.Individual < b.Individual
		}
		return a.ArchivedWindow < b.ArchivedWindow
	})
}
