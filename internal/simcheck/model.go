// Package simcheck is a deterministic, seed-replayable simulation
// harness for the serving stack. A run drives the real store + wal +
// server ingest/search/snapshot/crash-recover paths from a generated
// operation schedule and checks every observable result against a
// small in-memory reference model: a map-based, label-keyed window
// archive with naive distance loops. The harness owns all time (a
// logical clock) and randomness (a stats.RNG per run), interleaves
// operations with internal/fault failpoints (failed fsyncs, failed or
// half-committed snapshot swaps, torn WAL tails), and on divergence
// reports the seed plus a minimized operation trace so the failure
// replays exactly.
//
// Invariants checked (DESIGN.md §11):
//   - WAL replay after a crash rebuilds exactly the durable records'
//     store state (no loss beyond what the model says was volatile, no
//     duplication, zero replay rejects).
//   - snapshot + replay produce search/history/latest results
//     identical to the model's label-space archive.
//   - store search (merge-join kernels, LSH prefilter) agrees with
//     naive distance loops: exact scans match the model's full ranking
//     within float tolerance; LSH scans are verified subsets.
//   - the server's universe interning order matches the model's, so
//     signatures are bit-identical in label space.
package simcheck

import (
	"fmt"
	"math"
	"sort"
	"time"

	"graphsig/internal/core"
	"graphsig/internal/graph"
	"graphsig/internal/netflow"
	"graphsig/internal/stream"
)

// refSig is a signature in label space, preserving canonical entry
// order (weight desc, NodeID asc — NodeID order is reproduced because
// the model interns labels in the same order as the server).
type refSig struct {
	Labels  []string
	Weights []float64
}

// refWindow is one archived window in label space.
type refWindow struct {
	Window int
	Scheme string
	Order  []string          // source labels in set order
	Sigs   map[string]refSig // source label → signature
}

// labelPart is one universe entry: a label and its bipartite part.
type labelPart struct {
	Label string
	Part  graph.Part
}

// toRefSig converts a core.Signature into label space via u.
func toRefSig(u *graph.Universe, sig core.Signature) refSig {
	out := refSig{
		Labels:  make([]string, sig.Len()),
		Weights: append([]float64(nil), sig.Weights...),
	}
	for i, n := range sig.Nodes {
		out.Labels[i] = u.Label(n)
	}
	return out
}

// equalRefSig is exact (bit-level) signature equality in label space.
func equalRefSig(a, b refSig) bool {
	if len(a.Labels) != len(b.Labels) {
		return false
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] || a.Weights[i] != b.Weights[i] {
			return false
		}
	}
	return true
}

// weights returns the signature as a label → weight map.
func (s refSig) weights() map[string]float64 {
	m := make(map[string]float64, len(s.Labels))
	for i, l := range s.Labels {
		m[l] = s.Weights[i]
	}
	return m
}

// toRefWindow converts an emitted signature set into label space.
func toRefWindow(u *graph.Universe, set *core.SignatureSet) refWindow {
	w := refWindow{
		Window: set.Window,
		Scheme: set.Scheme,
		Order:  make([]string, len(set.Sources)),
		Sigs:   make(map[string]refSig, len(set.Sources)),
	}
	for i, v := range set.Sources {
		label := u.Label(v)
		w.Order[i] = label
		w.Sigs[label] = toRefSig(u, set.Sigs[i])
	}
	return w
}

// refArchive mirrors store.Add semantics naively: strictly increasing
// window indices, bounded capacity, oldest-first eviction. Windows are
// immutable once added, so clones share them.
type refArchive struct {
	cap     int
	windows []refWindow
}

// add appends w if its index strictly exceeds the newest; reports
// whether the window was kept (false mirrors store.Add's rejection of
// duplicate/regressing indices, which the server drops silently).
func (a *refArchive) add(w refWindow) bool {
	if n := len(a.windows); n > 0 && w.Window <= a.windows[n-1].Window {
		return false
	}
	a.windows = append(a.windows, w)
	if over := len(a.windows) - a.cap; over > 0 {
		a.windows = append([]refWindow(nil), a.windows[over:]...)
	}
	return true
}

func (a *refArchive) clone() *refArchive {
	return &refArchive{cap: a.cap, windows: append([]refWindow(nil), a.windows...)}
}

// latestSignature mirrors store.LatestSignature: the most recent
// non-empty signature of label.
func (a *refArchive) latestSignature(label string) (refSig, int, bool) {
	for i := len(a.windows) - 1; i >= 0; i-- {
		if sig, ok := a.windows[i].Sigs[label]; ok && len(sig.Labels) > 0 {
			return sig, a.windows[i].Window, true
		}
	}
	return refSig{}, 0, false
}

// refHistoryEntry mirrors store.HistoryEntry in label space.
type refHistoryEntry struct {
	Window int
	Scheme string
	Sig    refSig
}

// history mirrors store.History.
func (a *refArchive) history(label string) []refHistoryEntry {
	var out []refHistoryEntry
	for _, w := range a.windows {
		if sig, ok := w.Sigs[label]; ok {
			out = append(out, refHistoryEntry{Window: w.Window, Scheme: w.Scheme, Sig: sig})
		}
	}
	return out
}

// naiveDist computes the named distance between two label-space
// signatures with plain loops over label maps — an independent
// reimplementation of core's formulas that shares no code with the
// merge-join kernels or the NodeID-space scans it checks.
func naiveDist(name string, a, b refSig) float64 {
	if len(a.Labels) == 0 && len(b.Labels) == 0 {
		return 0
	}
	am, bm := a.weights(), b.weights()
	switch name {
	case "jaccard":
		inter := 0
		for l := range am {
			if _, ok := bm[l]; ok {
				inter++
			}
		}
		union := len(am) + len(bm) - inter
		if union == 0 {
			return 0
		}
		return 1 - float64(inter)/float64(union)
	case "dice":
		num, den := 0.0, 0.0
		for _, l := range a.Labels {
			if wb, ok := bm[l]; ok && wb > 0 {
				num += am[l] + wb
			}
			den += am[l]
		}
		for _, l := range b.Labels {
			den += bm[l]
		}
		if den == 0 {
			return 0
		}
		return clamp01(1 - num/den)
	case "sdice":
		num, den := 0.0, 0.0
		for _, l := range a.Labels {
			wa, wb := am[l], bm[l]
			num += math.Min(wa, wb)
			den += math.Max(wa, wb)
		}
		for _, l := range b.Labels {
			if _, ok := am[l]; !ok {
				den += bm[l]
			}
		}
		if den == 0 {
			return 0
		}
		return clamp01(1 - num/den)
	case "shel":
		num, den := 0.0, 0.0
		for _, l := range a.Labels {
			wa, wb := am[l], bm[l]
			num += math.Sqrt(wa * wb)
			den += math.Max(wa, wb)
		}
		for _, l := range b.Labels {
			if _, ok := am[l]; !ok {
				den += bm[l]
			}
		}
		if den == 0 {
			return 0
		}
		return clamp01(1 - num/den)
	}
	panic("simcheck: unknown distance " + name)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// refHit is one reference search hit.
type refHit struct {
	Label  string
	Window int
	Dist   float64
}

// search computes the model's FULL ranked hit list (no top-k
// truncation) for a query signature: every non-empty archived
// signature within maxDist, ordered (dist asc, window desc, label
// asc). lastWindows restricts to the newest n windows (0 = all);
// exclude omits one label.
func (a *refArchive) search(dist string, query refSig, maxDist float64, exclude string, lastWindows int) []refHit {
	windows := a.windows
	if lastWindows > 0 && lastWindows < len(windows) {
		windows = windows[len(windows)-lastWindows:]
	}
	var hits []refHit
	for _, w := range windows {
		for _, label := range w.Order {
			sig := w.Sigs[label]
			if label == exclude || len(sig.Labels) == 0 {
				continue
			}
			if d := naiveDist(dist, query, sig); d <= maxDist {
				hits = append(hits, refHit{Label: label, Window: w.Window, Dist: d})
			}
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Dist != hits[j].Dist {
			return hits[i].Dist < hits[j].Dist
		}
		if hits[i].Window != hits[j].Window {
			return hits[i].Window > hits[j].Window
		}
		return hits[i].Label < hits[j].Label
	})
	return hits
}

// diskSnapshot is what the model believes a recovery would load from
// the snapshot directory: the archived windows and the universe label
// dump captured at save time (snapshots restore labels in NodeID
// order, which the model must reproduce to keep interning aligned).
type diskSnapshot struct {
	archive *refArchive
	labels  []labelPart
}

// faultPlan is the failure the harness injects into ONE ingest
// operation (at most one class per op, mirroring how real faults tend
// to arrive).
type faultPlan struct {
	// walFail makes every WAL flush in the op fail (wal.sync): appended
	// records and origin frames are rolled back and stay volatile.
	walFail bool
	// snapFail makes snapshot saves fail before anything is promoted
	// (store.save.set / .manifest / .swap): the old on-disk snapshot
	// survives, the WAL is kept.
	snapFail bool
	// snapCommitted fails the save between its two renames
	// (store.save.swap.mid): Save reports an error and the WAL is kept,
	// but the staged snapshot is complete and recovery promotes it.
	snapCommitted bool
	// resetFail makes the post-save WAL truncation fail (wal.reset):
	// the archive is saved but the log keeps its records.
	resetFail bool
	// segFail makes segment compaction fail (segment.write or a torn
	// segment.commit): the store defers eviction and retains the window
	// in RAM, so NOTHING observable changes — the model stays untouched,
	// which is exactly the invariant under test.
	segFail bool
}

func (p faultPlan) String() string {
	switch {
	case p.walFail:
		return "wal-fail"
	case p.snapFail:
		return "snap-fail"
	case p.snapCommitted:
		return "snap-committed"
	case p.resetFail:
		return "reset-fail"
	case p.segFail:
		return "seg-fail"
	}
	return "none"
}

// model is the reference implementation the real server is checked
// against. It runs its own stream.Pipeline over its own universe —
// fed exactly the same records, so label interning order, window
// indices and signature bits all match — and mirrors the server's
// durability bookkeeping (WAL contents, snapshot state, checkpoint
// logic) at per-record granularity.
type model struct {
	cfg Config

	u       *graph.Universe
	pipe    *stream.Pipeline
	archive *refArchive
	pending int

	// Durability mirror.
	durable        []netflow.Record // records a recovery would replay
	walPending     []netflow.Record // this op's not-yet-flushed accepted records
	walOriginKnown bool             // an origin frame is in the log
	disk           *diskSnapshot    // nil: no loadable snapshot on disk
}

// newModel builds the reference model for a fresh (empty-disk) run.
func newModel(cfg Config) (*model, error) {
	m := &model{cfg: cfg, archive: &refArchive{cap: cfg.archiveCap()}}
	if err := m.buildPipeline(nil, cfg.streamConfig().Origin); err != nil {
		return nil, err
	}
	return m, nil
}

// buildPipeline (re)creates the model's universe and pipeline, as the
// server does at boot: labels restores a snapshot's interning order,
// origin is the resolved window origin (zero = learn from the first
// accepted record).
func (m *model) buildPipeline(labels []labelPart, origin time.Time) error {
	m.u = graph.NewUniverse()
	for _, lp := range labels {
		if _, err := m.u.Intern(lp.Label, lp.Part); err != nil {
			return fmt.Errorf("simcheck: model intern %q: %w", lp.Label, err)
		}
	}
	scfg := m.cfg.streamConfig()
	scfg.Origin = origin
	p, err := stream.NewPipeline(scfg, m.u)
	if err != nil {
		return fmt.Errorf("simcheck: model pipeline: %w", err)
	}
	m.pipe = p
	return nil
}

// universeDump returns the model universe's labels in NodeID order.
func (m *model) universeDump() []labelPart {
	out := make([]labelPart, m.u.Size())
	for id := 0; id < m.u.Size(); id++ {
		nid := graph.NodeID(id)
		out[id] = labelPart{Label: m.u.Label(nid), Part: m.u.PartOf(nid)}
	}
	return out
}

// ingestOutcome is the model's prediction for one IngestBatch call.
type ingestOutcome struct {
	Accepted      int
	Dropped       int
	Rejected      int
	WindowsClosed int
	CurrentWindow int
}

// ingest mirrors Server.ingestLocked record by record, including the
// WAL-flush-before-checkpoint ordering, under the given fault plan.
func (m *model) ingest(records []netflow.Record, plan faultPlan) (ingestOutcome, error) {
	var out ingestOutcome
	m.walPending = m.walPending[:0]
	for i := range records {
		before := m.pipe.Ingested()
		emitted, err := m.pipe.Ingest(records[i])
		if err != nil {
			out.Rejected++
			continue
		}
		if len(emitted) > 0 {
			m.flushLog(plan)
			m.pending = 0
			for _, set := range emitted {
				// The server counts every emitted window, even one the
				// store drops as a snapshot-overlap index conflict.
				m.archive.add(toRefWindow(m.u, set))
				out.WindowsClosed++
			}
			m.checkpoint(plan)
		}
		if accepted := m.pipe.Ingested() - before; accepted > 0 {
			out.Accepted += accepted
			m.pending += accepted
			m.walPending = append(m.walPending, records[i])
		} else {
			out.Dropped++
		}
	}
	m.flushLog(plan)
	out.CurrentWindow = m.pipe.CurrentWindow()
	return out, nil
}

// flushLog mirrors Server.walAppendLocked: the pending records (and an
// origin frame, first time per log generation) become durable unless
// the op's WAL fault makes the flush fail — in which case the rollback
// semantics of the fixed WAL guarantee nothing of the batch survives.
func (m *model) flushLog(plan faultPlan) {
	if len(m.walPending) == 0 {
		return
	}
	if plan.walFail {
		m.walPending = m.walPending[:0]
		return
	}
	m.walOriginKnown = true // origin is known whenever records were accepted
	m.durable = append(m.durable, m.walPending...)
	m.walPending = m.walPending[:0]
}

// checkpoint mirrors Server.checkpointLocked under the fault plan.
func (m *model) checkpoint(plan faultPlan) {
	switch {
	case plan.snapFail:
		return // save failed before promotion; disk and WAL unchanged
	case plan.snapCommitted:
		// Save reported failure, so the WAL is kept — but the staged dir
		// is complete and a recovery will promote it.
		m.disk = &diskSnapshot{archive: m.archive.clone(), labels: m.universeDump()}
		return
	}
	m.disk = &diskSnapshot{archive: m.archive.clone(), labels: m.universeDump()}
	if plan.resetFail {
		return // truncation failed: records stay replayable
	}
	m.durable = m.durable[:0]
	// The origin is re-appended right after the reset; under a WAL
	// fault that append fails too and the log stays origin-less until
	// the next successful flush.
	m.walOriginKnown = !plan.walFail && m.originKnown()
}

// originKnown reports whether the pipeline's origin is established.
func (m *model) originKnown() bool {
	_, ok := m.pipe.Origin()
	return ok
}

// snapshot mirrors Server.Snapshot (periodic save, no WAL truncation).
func (m *model) snapshot(plan faultPlan) {
	if plan.snapFail {
		return
	}
	m.disk = &diskSnapshot{archive: m.archive.clone(), labels: m.universeDump()}
}

// flushWindow mirrors Server.Flush: close the open window if any
// records are pending (no WAL append, no checkpoint).
func (m *model) flushWindow() (int, error) {
	if m.pending == 0 {
		return 0, nil
	}
	set, err := m.pipe.Flush()
	if err != nil {
		return 0, fmt.Errorf("simcheck: model flush: %w", err)
	}
	m.pending = 0
	m.archive.add(toRefWindow(m.u, set))
	return 1, nil
}

// shutdown mirrors Server.Shutdown: flush the partial window, save,
// truncate the log, re-log the origin.
func (m *model) shutdown() error {
	if _, err := m.flushWindow(); err != nil {
		return err
	}
	m.disk = &diskSnapshot{archive: m.archive.clone(), labels: m.universeDump()}
	m.durable = m.durable[:0]
	m.walOriginKnown = m.originKnown()
	return nil
}

// expectedRecovery is the model's prediction of server.Recovery after
// a reopen.
type expectedRecovery struct {
	SnapshotRestored bool
	WALRecords       int
	WALTornBytes     int64
	WALWindowsClosed int
}

// reopen mirrors Server.New over the modeled disk state: restore the
// snapshot's archive and interning order, resolve the origin, replay
// the durable records (mirroring replayWAL's drop-on-conflict and
// post-replay checkpoint), and predict the Recovery report. tornBytes
// is the garbage the harness appended to the real WAL before reopen.
func (m *model) reopen(tornBytes int64) (expectedRecovery, error) {
	exp := expectedRecovery{
		SnapshotRestored: m.disk != nil,
		WALRecords:       len(m.durable),
		WALTornBytes:     tornBytes,
	}

	var labels []labelPart
	m.archive = &refArchive{cap: m.cfg.archiveCap()}
	if m.disk != nil {
		labels = m.disk.labels
		m.archive = m.disk.archive.clone()
	}
	origin := m.cfg.streamConfig().Origin
	if origin.IsZero() && m.walOriginKnown {
		// The WAL's origin frame survives a reset (it is re-appended),
		// so it equals the pipeline's origin whenever one was known.
		if o, ok := m.pipe.Origin(); ok {
			origin = o
		}
	}
	if err := m.buildPipeline(labels, origin); err != nil {
		return exp, err
	}
	m.pending = 0
	m.walPending = m.walPending[:0]

	// Mirror Server.replayWAL.
	replayed := m.durable
	m.durable = nil
	var tail []netflow.Record
	windowsKept := 0
	for i := range replayed {
		before := m.pipe.Ingested()
		emitted, err := m.pipe.Ingest(replayed[i])
		if err != nil {
			return exp, fmt.Errorf("simcheck: model replay rejected record %d: %w", i, err)
		}
		if len(emitted) > 0 {
			tail = tail[:0]
			m.pending = 0
			for _, set := range emitted {
				if m.archive.add(toRefWindow(m.u, set)) {
					windowsKept++
				}
			}
		}
		if accepted := m.pipe.Ingested() - before; accepted > 0 {
			m.pending += accepted
			tail = append(tail, replayed[i])
		}
	}
	exp.WALWindowsClosed = windowsKept
	if windowsKept > 0 {
		// Post-replay checkpoint (no faults are active during reopen).
		m.disk = &diskSnapshot{archive: m.archive.clone(), labels: m.universeDump()}
		m.durable = append(m.durable[:0], tail...)
		m.walOriginKnown = m.originKnown()
	} else {
		m.durable = replayed
	}
	return exp, nil
}
