package simcheck

import (
	"errors"
	"fmt"
	"testing"

	"graphsig/internal/fault"
)

// smokeConfigs is the fixed seed set `make sim-smoke` runs: together
// ≥ 10k ops spanning explicit and learned origins, LSH on and off, and
// fault/crash schedules.
func smokeConfigs(t *testing.T) []Config {
	t.Helper()
	return []Config{
		{Seed: 1, Ops: 2000, ExplicitOrigin: true, Faults: true, Restarts: true},
		{Seed: 2, Ops: 2000, ExplicitOrigin: false, Faults: true, Restarts: true},
		{Seed: 3, Ops: 2000, ExplicitOrigin: true, LSH: true, Faults: true, Restarts: true},
		{Seed: 4, Ops: 2000, ExplicitOrigin: false, LSH: true, Faults: false, Restarts: true},
		{Seed: 5, Ops: 2000, ExplicitOrigin: true, Faults: true, Restarts: false},
		{Seed: 6, Ops: 500, ExplicitOrigin: false, Faults: false, Restarts: false},
		{Seed: 8, Ops: 2000, ExplicitOrigin: true, Segments: true, Capacity: 3, Faults: true, Restarts: true},
	}
}

// TestSimSmoke is the harness's main gate: every fixed seed must
// complete with zero divergences. On failure the error carries the
// seed and a minimized trace; re-run with that seed to replay exactly.
func TestSimSmoke(t *testing.T) {
	for _, cfg := range smokeConfigs(t) {
		cfg := cfg
		name := fmt.Sprintf("seed%d_origin%v_lsh%v_faults%v_restarts%v_segments%v",
			cfg.Seed, cfg.ExplicitOrigin, cfg.LSH, cfg.Faults, cfg.Restarts, cfg.Segments)
		t.Run(name, func(t *testing.T) {
			cfg.Dir = t.TempDir()
			if err := Run(cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSimShortDeterministic re-runs one seed twice and expects clean
// passes both times — a cheap guard that nothing in the harness leaks
// state between runs.
func TestSimShortDeterministic(t *testing.T) {
	for i := 0; i < 2; i++ {
		cfg := Config{Seed: 11, Ops: 300, ExplicitOrigin: true, Faults: true, Restarts: true, Dir: t.TempDir()}
		if err := Run(cfg); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
}

// TestSimSegments drives the tiered store hard: a tiny hot ring with a
// cold segment tier, crash/restart and fault schedules (including
// injected compaction failures), with the model holding the UNBOUNDED
// archive — so every history, search, and per-window read must keep
// reaching windows that left RAM long ago, across every recovery.
func TestSimSegments(t *testing.T) {
	for _, cfg := range []Config{
		{Seed: 21, Ops: 1200, ExplicitOrigin: true, Segments: true, Capacity: 2, Faults: true, Restarts: true},
		{Seed: 22, Ops: 1200, ExplicitOrigin: false, Segments: true, Capacity: 3, Faults: false, Restarts: true},
		{Seed: 23, Ops: 800, ExplicitOrigin: true, Segments: true, Capacity: 3, LSH: true, Faults: true, Restarts: false},
	} {
		cfg := cfg
		t.Run(fmt.Sprintf("seed%d_cap%d_lsh%v_faults%v_restarts%v",
			cfg.Seed, cfg.Capacity, cfg.LSH, cfg.Faults, cfg.Restarts), func(t *testing.T) {
			cfg.Dir = t.TempDir()
			if err := Run(cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSimCatchesInjectedStoreBug proves the harness has teeth: a
// deliberately corrupted store (one window silently swallowed via the
// store.add failpoint) must surface as a divergence, and Minimize must
// reproduce it at the same op in a fresh directory.
func TestSimCatchesInjectedStoreBug(t *testing.T) {
	defer fault.Reset()
	// Swallow exactly one store.Add: the server drops the window
	// silently (its commit path treats Add errors as index conflicts),
	// the model keeps it — a model/server divergence by construction.
	fault.Set("store.add", fault.FailAfter(3, errors.New("injected store bug")))

	cfg := Config{Seed: 7, Ops: 800, ExplicitOrigin: true, Dir: t.TempDir()}
	err := Run(cfg)
	if err == nil {
		t.Fatal("harness missed a store that drops windows")
	}
	var div *Divergence
	if !errors.As(err, &div) {
		t.Fatalf("want a *Divergence, got %T: %v", err, err)
	}
	if div.Seed != cfg.Seed || len(div.Trace) == 0 {
		t.Fatalf("divergence missing replay info: %+v", div)
	}
	t.Logf("caught at op %d: %s", div.Op, div.Detail)

	// FailAfter counts calls across runs; re-arm so the minimized replay
	// sees the same fault schedule as the original.
	fault.Set("store.add", fault.FailAfter(3, errors.New("injected store bug")))
	min, err := Minimize(cfg, div)
	if err != nil {
		t.Fatalf("minimize: %v", err)
	}
	if min == nil {
		t.Fatal("minimized replay did not reproduce the divergence")
	}
	if min.Op != div.Op {
		t.Fatalf("minimized divergence at op %d, original at %d", min.Op, div.Op)
	}
}

// TestSimRequiresDir pins the misuse error.
func TestSimRequiresDir(t *testing.T) {
	if err := Run(Config{Seed: 1, Ops: 1}); err == nil {
		t.Fatal("Run without Dir should error")
	}
}
