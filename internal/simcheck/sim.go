package simcheck

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"graphsig/internal/fault"
	"graphsig/internal/netflow"
	"graphsig/internal/server"
	"graphsig/internal/sketch"
	"graphsig/internal/stats"
	"graphsig/internal/stream"
)

// simT0 anchors the logical clock. The harness owns all time: record
// timestamps advance from here by RNG-drawn steps, and nothing inside
// a run consults the wall clock for simulation decisions.
var simT0 = time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)

// distTol absorbs float summation-order differences between the
// server's NodeID-space kernels and the model's label-space loops.
const distTol = 1e-9

// traceLen bounds the op trace kept for divergence reports.
const traceLen = 64

// Config parameterizes one simulation run.
type Config struct {
	// Seed drives the whole schedule; the same seed replays the same
	// run bit-for-bit.
	Seed int64
	// Ops is the schedule length.
	Ops int
	// Dir is the scratch directory for the snapshot + WAL (required;
	// reused state from a previous run makes the model diverge, so give
	// every run a fresh directory).
	Dir string
	// Labels sizes the host pool (default 18).
	Labels int
	// Capacity bounds the store ring (default 5).
	Capacity int
	// K is the signature length (default 4).
	K int
	// WindowSize is the aggregation window (default 5m of logical time).
	WindowSize time.Duration
	// ExplicitOrigin pins the pipeline origin to simT0; otherwise the
	// origin is learned from the first accepted record and restored via
	// the WAL across restarts.
	ExplicitOrigin bool
	// LSH enables the store's MinHash prefilter (searched with subset
	// invariants instead of exact ones on the jaccard path).
	LSH bool
	// Faults interleaves failpoint injection (failed fsyncs, failed and
	// half-committed snapshot swaps, failed WAL truncation) into ingest
	// and snapshot ops.
	Faults bool
	// Restarts interleaves graceful restarts, crashes, and crashes with
	// torn WAL tails.
	Restarts bool
	// Segments attaches a cold segment tier under Dir: the ring stays at
	// Capacity while compaction moves evictions into immutable segment
	// files, and the model turns unbounded — every window ever closed
	// must stay servable through History/Search/Window across crashes.
	// With Faults on, compaction failures (clean and torn-commit) are
	// injected too; they must defer eviction, never lose a window.
	Segments bool
}

func (c Config) withDefaults() Config {
	if c.Labels == 0 {
		c.Labels = 18
	}
	if c.Capacity == 0 {
		c.Capacity = 5
	}
	if c.K == 0 {
		c.K = 4
	}
	if c.WindowSize == 0 {
		c.WindowSize = 5 * time.Minute
	}
	return c
}

// streamConfig is the pipeline configuration shared (by value) between
// the real server and the model's mirror pipeline.
func (c Config) streamConfig() stream.Config {
	sc := stream.Config{
		WindowSize: c.WindowSize,
		TCPOnly:    true, // exercise the dropped-record path
		K:          c.K,
		Scheme:     "tt",
		Sketch:     sketch.StreamConfig{Depth: 2, Width: 64, Candidates: 16, Seed: 9},
	}
	if c.ExplicitOrigin {
		sc.Origin = simT0
	}
	return sc
}

func (c Config) serverConfig() server.Config {
	scfg := server.Config{
		Stream:        c.streamConfig(),
		StoreCapacity: c.Capacity,
		SnapshotDir:   filepath.Join(c.Dir, "snap"),
		DedupCap:      512,
	}
	if c.LSH {
		scfg.LSHBands, scfg.LSHRows, scfg.LSHSeed = 4, 2, 7
	}
	if c.Segments {
		scfg.SegmentDir = filepath.Join(c.Dir, "segments")
	}
	return scfg
}

// archiveCap is the model archive's bound: with a segment tier the
// real node retains every window, so the reference must too.
func (c Config) archiveCap() int {
	if c.Segments {
		return math.MaxInt / 2
	}
	return c.Capacity
}

// Divergence is a model/server disagreement: the seed and op index
// replay it exactly (same Config, same Seed, Ops ≥ Op+1), and Trace
// holds the ops leading up to it.
type Divergence struct {
	Seed   int64
	Op     int
	Detail string
	Trace  []string
}

func (d *Divergence) Error() string {
	return fmt.Sprintf("simcheck: seed %d diverged at op %d: %s\ntrace (last %d ops):\n%s",
		d.Seed, d.Op, d.Detail, len(d.Trace), formatTrace(d.Trace))
}

func formatTrace(trace []string) string {
	out := ""
	for _, t := range trace {
		out += "  " + t + "\n"
	}
	return out
}

// sentBatch remembers an ingested batch so a later op can retry it and
// check the dedup contract.
type sentBatch struct {
	id      string
	records []netflow.Record
	outcome server.IngestResult
}

// sim is one run's mutable state.
type sim struct {
	cfg   Config
	rng   *stats.RNG
	srv   *server.Server
	model *model

	clock   time.Time
	labels  []string
	batchN  int
	batches []sentBatch // recent batches for retry ops (bounded ring)
	trace   []string
	op      int
}

// Run executes a simulation and returns nil or a *Divergence (any
// other error type signals a harness/IO failure, not a model
// disagreement).
func Run(cfg Config) error {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return fmt.Errorf("simcheck: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return fmt.Errorf("simcheck: %w", err)
	}
	s := &sim{cfg: cfg, rng: stats.NewRNG(cfg.Seed), clock: simT0}
	for i := 0; i < cfg.Labels; i++ {
		s.labels = append(s.labels, fmt.Sprintf("h%02d", i))
	}
	m, err := newModel(cfg)
	if err != nil {
		return err
	}
	s.model = m
	srv, err := server.New(cfg.serverConfig())
	if err != nil {
		return fmt.Errorf("simcheck: server: %w", err)
	}
	s.srv = srv
	defer func() {
		if s.srv != nil {
			s.srv.Abort()
		}
	}()

	for s.op = 0; s.op < cfg.Ops; s.op++ {
		if err := s.step(); err != nil {
			return err
		}
		if s.op%16 == 15 {
			if err := s.deepCompare("periodic"); err != nil {
				return err
			}
		}
	}
	return s.deepCompare("final")
}

// Minimize re-runs cfg truncated to just past the divergence's op in a
// fresh scratch directory, confirming the failure replays and
// returning the shortest-prefix divergence (whose trace ends at the
// failing op). A nil return means the divergence did not reproduce —
// itself a bug worth reporting, since runs are deterministic.
func Minimize(cfg Config, div *Divergence) (*Divergence, error) {
	sub, err := os.MkdirTemp(cfg.Dir, "minimize-*")
	if err != nil {
		return nil, fmt.Errorf("simcheck: %w", err)
	}
	trimmed := cfg
	trimmed.Dir = sub
	trimmed.Ops = div.Op + 1
	err = Run(trimmed)
	if err == nil {
		return nil, nil
	}
	if d, ok := err.(*Divergence); ok {
		return d, nil
	}
	return nil, err
}

// fail builds a Divergence for the current op.
func (s *sim) fail(format string, args ...any) error {
	return &Divergence{
		Seed:   s.cfg.Seed,
		Op:     s.op,
		Detail: fmt.Sprintf(format, args...),
		Trace:  append([]string(nil), s.trace...),
	}
}

// note appends an op description to the bounded trace.
func (s *sim) note(format string, args ...any) {
	s.trace = append(s.trace, fmt.Sprintf("op %4d: ", s.op)+fmt.Sprintf(format, args...))
	if over := len(s.trace) - traceLen; over > 0 {
		s.trace = append(s.trace[:0:0], s.trace[over:]...)
	}
}

// step runs one scheduled operation and its per-op invariant checks.
func (s *sim) step() error {
	r := s.rng.Float64()
	if !s.cfg.Restarts {
		// Fold the restart budget back into ingest.
		if r >= 0.90 {
			r = 0.25
		}
	}
	switch {
	case r < 0.55:
		return s.opIngest()
	case r < 0.70:
		return s.opSearch()
	case r < 0.80:
		return s.opHistory()
	case r < 0.84:
		return s.opSnapshot()
	case r < 0.88:
		return s.opRetry()
	case r < 0.90:
		return s.opFlush()
	case r < 0.93:
		return s.opRestart()
	case r < 0.97:
		return s.opCrash(false)
	default:
		return s.opCrash(true)
	}
}

// pickPlan draws this op's fault plan (none unless faults are on).
func (s *sim) pickPlan() faultPlan {
	if !s.cfg.Faults || !s.rng.Bernoulli(0.12) {
		return faultPlan{}
	}
	switch f := s.rng.Float64(); {
	case f < 0.40:
		return faultPlan{walFail: true}
	case f < 0.70:
		return faultPlan{snapFail: true}
	case f < 0.85:
		return faultPlan{snapCommitted: true}
	case f < 0.92 && s.cfg.Segments:
		return faultPlan{segFail: true}
	default:
		return faultPlan{resetFail: true}
	}
}

// faultNames are the failpoints the harness may install; cleared (by
// name, so unrelated hooks survive) after every faulted op.
var faultNames = []string{
	"wal.sync", "wal.reset",
	"store.save.set", "store.save.manifest", "store.save.swap", "store.save.swap.mid",
	"segment.write", "segment.commit",
}

// installPlan arms the plan's failpoints; the returned func disarms
// them.
func (s *sim) installPlan(plan faultPlan) func() {
	errInjected := fmt.Errorf("simcheck: injected fault (%s)", plan)
	hook := func() error { return errInjected }
	switch {
	case plan.walFail:
		fault.Set("wal.sync", hook)
	case plan.snapFail:
		// Vary which stage of the save dies.
		name := []string{"store.save.set", "store.save.manifest", "store.save.swap"}[s.rng.Intn(3)]
		fault.Set(name, hook)
	case plan.snapCommitted:
		fault.Set("store.save.swap.mid", hook)
	case plan.segFail:
		// Vary whether the compaction dies cleanly or tears mid-commit
		// (leaving a stale .tmp for the next boot to sweep); either way
		// eviction defers and no window may be lost.
		name := []string{"segment.write", "segment.commit"}[s.rng.Intn(2)]
		fault.Set(name, hook)
	case plan.resetFail:
		fault.Set("wal.reset", hook)
	default:
		return func() {}
	}
	return func() {
		for _, n := range faultNames {
			fault.Clear(n)
		}
	}
}

// nextRecord draws one flow record and advances the logical clock.
func (s *sim) nextRecord() netflow.Record {
	// Clock step: usually a short hop, occasionally a multi-window jump
	// or a step back past a window boundary (rejected by the pipeline).
	switch v := s.rng.Float64(); {
	case v < 0.05:
		s.clock = s.clock.Add(time.Duration(1+s.rng.Intn(3)) * s.cfg.WindowSize)
	case v < 0.08:
		s.clock = s.clock.Add(-s.cfg.WindowSize / 2)
	default:
		s.clock = s.clock.Add(time.Duration(s.rng.Intn(20)) * time.Second)
	}
	src := s.labels[s.rng.Intn(len(s.labels))]
	dst := s.labels[s.rng.Intn(len(s.labels))]
	for dst == src {
		dst = s.labels[s.rng.Intn(len(s.labels))]
	}
	rec := netflow.Record{
		Src: src, Dst: dst, Start: s.clock,
		Duration: time.Duration(s.rng.Intn(30)) * time.Second,
		Sessions: 1 + s.rng.Intn(5),
		Bytes:    int64(100 + s.rng.Intn(10000)),
		Packets:  int64(1 + s.rng.Intn(100)),
		Proto:    netflow.TCP,
	}
	switch v := s.rng.Float64(); {
	case v < 0.05:
		rec.Proto = netflow.UDP // dropped under TCPOnly
	case v < 0.09:
		rec.Sessions = 0 // invalid: rejected
	case v < 0.11:
		rec.Dst = rec.Src // invalid self-flow: rejected
	}
	return rec
}

func (s *sim) opIngest() error {
	n := 1 + s.rng.Intn(12)
	records := make([]netflow.Record, n)
	for i := range records {
		records[i] = s.nextRecord()
	}
	plan := s.pickPlan()
	s.batchN++
	id := fmt.Sprintf("batch-%06d", s.batchN)
	s.note("ingest %s n=%d fault=%s clock=%s", id, n, plan, s.clock.Format("15:04:05"))

	disarm := s.installPlan(plan)
	res := s.srv.IngestBatch(id, records)
	disarm()

	want, err := s.model.ingest(records, plan)
	if err != nil {
		return err
	}
	if res.Deduplicated {
		return s.fail("fresh batch %s came back deduplicated", id)
	}
	if err := s.compareOutcome(res, want, n); err != nil {
		return err
	}
	s.batches = append(s.batches, sentBatch{id: id, records: records, outcome: res})
	if len(s.batches) > 32 {
		s.batches = s.batches[1:]
	}
	return s.cheapCompare()
}

// compareOutcome checks an IngestResult against the model's prediction.
func (s *sim) compareOutcome(res server.IngestResult, want ingestOutcome, received int) error {
	if res.Received != received || res.Accepted != want.Accepted ||
		res.Dropped != want.Dropped || res.Rejected != want.Rejected ||
		res.WindowsClosed != want.WindowsClosed || res.CurrentWindow != want.CurrentWindow {
		return s.fail("ingest outcome mismatch: server %+v, model %+v", res, want)
	}
	return nil
}

func (s *sim) opRetry() error {
	if len(s.batches) == 0 {
		return s.opIngest()
	}
	b := s.batches[s.rng.Intn(len(s.batches))]
	s.note("retry %s", b.id)
	res := s.srv.IngestBatch(b.id, b.records)
	if res.Deduplicated {
		// The recorded outcome must come back unchanged: the batch was
		// applied exactly once.
		got, orig := res, b.outcome
		got.Deduplicated = false
		if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", orig) {
			return s.fail("dedup replay of %s returned %+v, original %+v", b.id, res, b.outcome)
		}
		return s.cheapCompare()
	}
	// The dedup entry was lost (restart, or evicted from the bounded
	// set): the server re-applied the batch, so the model must too.
	want, err := s.model.ingest(b.records, faultPlan{})
	if err != nil {
		return err
	}
	if err := s.compareOutcome(res, want, len(b.records)); err != nil {
		return err
	}
	for i := range s.batches {
		if s.batches[i].id == b.id {
			s.batches[i].outcome = res
		}
	}
	return s.cheapCompare()
}

func (s *sim) opFlush() error {
	s.note("flush")
	closed, err := s.srv.Flush()
	if err != nil {
		return s.fail("server flush: %v", err)
	}
	wantClosed, err := s.model.flushWindow()
	if err != nil {
		return err
	}
	if closed != wantClosed {
		return s.fail("flush closed %d windows, model %d", closed, wantClosed)
	}
	return s.cheapCompare()
}

func (s *sim) opSnapshot() error {
	plan := s.pickPlan()
	if plan.walFail || plan.resetFail {
		plan = faultPlan{} // Snapshot never touches the WAL
	}
	s.note("snapshot fault=%s", plan)
	disarm := s.installPlan(plan)
	err := s.srv.Snapshot()
	disarm()
	if wantErr := plan.snapFail || plan.snapCommitted; (err != nil) != wantErr {
		return s.fail("snapshot error = %v, fault plan %s", err, plan)
	}
	s.model.snapshot(plan)
	return s.cheapCompare()
}

func (s *sim) opRestart() error {
	s.note("restart (graceful)")
	if err := s.srv.Shutdown(); err != nil {
		return s.fail("shutdown: %v", err)
	}
	s.srv = nil
	if err := s.model.shutdown(); err != nil {
		return err
	}
	return s.reopen(0)
}

func (s *sim) opCrash(torn bool) error {
	var garbage int64
	if torn {
		garbage = int64(1 + s.rng.Intn(40))
		buf := make([]byte, garbage)
		s.rng.Read(buf)
		// An unknown frame kind guarantees recovery counts the whole
		// tail as torn (a random first byte could in principle start a
		// valid-looking frame).
		buf[0] = 0xFF
		f, err := os.OpenFile(server.WALPath(s.cfg.serverConfig().SnapshotDir),
			os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("simcheck: tearing WAL: %w", err)
		}
		if _, err := f.Write(buf); err != nil {
			f.Close()
			return fmt.Errorf("simcheck: tearing WAL: %w", err)
		}
		f.Close()
	}
	s.note("crash torn=%d", garbage)
	s.srv.Abort()
	s.srv = nil
	return s.reopen(garbage)
}

// reopen boots a fresh server over the on-disk state and checks the
// recovery report plus full state equality against the model.
func (s *sim) reopen(tornBytes int64) error {
	srv, err := server.New(s.cfg.serverConfig())
	if err != nil {
		return fmt.Errorf("simcheck: reopen: %w", err)
	}
	s.srv = srv
	exp, err := s.model.reopen(tornBytes)
	if err != nil {
		return err
	}
	rec := srv.Recovery()
	if rec.SnapshotQuarantined != "" || rec.WALQuarantined != "" || len(rec.SegmentsQuarantined) != 0 {
		return s.fail("recovery quarantined state: %+v", rec)
	}
	if rec.WALRejected != 0 {
		return s.fail("recovery rejected %d WAL records", rec.WALRejected)
	}
	if rec.SnapshotRestored != exp.SnapshotRestored || rec.WALRecords != exp.WALRecords ||
		rec.WALTornBytes != exp.WALTornBytes || rec.WALWindowsClosed != exp.WALWindowsClosed {
		return s.fail("recovery mismatch: server %+v, model %+v", rec, exp)
	}
	// Recorded batches are kept deliberately: the dedup set is
	// in-memory only, so a retry of a pre-restart batch exercises the
	// re-application branch of opRetry.
	return s.deepCompare("post-reopen")
}
