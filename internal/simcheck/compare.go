package simcheck

import (
	"math"

	"graphsig/internal/core"
	"graphsig/internal/graph"
	"graphsig/internal/store"
)

// distNames are the four paper distances the model reimplements.
var distNames = []string{"jaccard", "dice", "sdice", "shel"}

// opSearch picks a label with an archived signature, fetches its
// latest signature from both sides, and cross-checks a ranked search.
func (s *sim) opSearch() error {
	label := s.labels[s.rng.Intn(len(s.labels))]
	dname := distNames[s.rng.Intn(len(distNames))]
	opts := store.SearchOptions{
		TopK:    1 + s.rng.Intn(8),
		MaxDist: 1,
	}
	if s.rng.Bernoulli(0.5) {
		opts.MaxDist = 0.2 + 0.6*s.rng.Float64()
	}
	if s.rng.Bernoulli(0.5) {
		opts.ExcludeLabel = label
	}
	if s.rng.Bernoulli(0.3) {
		span := s.cfg.Capacity
		if s.cfg.Segments {
			// Reach well past the hot ring so windowed searches cross the
			// ring/segment boundary.
			span = 3 * s.cfg.Capacity
		}
		opts.LastWindows = 1 + s.rng.Intn(span)
	}
	if s.rng.Bernoulli(0.2) {
		opts.NoPrefilter = true
	}
	s.note("search label=%s dist=%s topk=%d maxdist=%.6f exclude=%q last=%d nopre=%v",
		label, dname, opts.TopK, opts.MaxDist, opts.ExcludeLabel, opts.LastWindows, opts.NoPrefilter)

	msig, mwin, mok := s.model.archive.latestSignature(label)
	ssig, swin, sok := s.srv.Store().LatestSignature(label)
	if mok != sok {
		return s.fail("latest signature of %s: server ok=%v, model ok=%v", label, sok, mok)
	}
	if !mok {
		return s.cheapCompare()
	}
	if swin != mwin {
		return s.fail("latest signature of %s: server window %d, model window %d", label, swin, mwin)
	}
	if got := toRefSig(s.srv.Store().Universe(), ssig); !equalRefSig(got, msig) {
		return s.fail("latest signature of %s differs: server %v/%v, model %v/%v",
			label, got.Labels, got.Weights, msig.Labels, msig.Weights)
	}

	d, ok := core.DistanceByName(dname)
	if !ok {
		return s.fail("unknown distance %s", dname)
	}
	hits, err := s.srv.Store().Search(d, ssig, opts)
	if err != nil {
		return s.fail("server search: %v", err)
	}
	// The model computes the FULL ranking with a loosened threshold;
	// must-have hits are strictly inside it. The tolerance bands make
	// the boundary check robust to kernel-vs-naive float summation
	// order.
	loose := s.model.archive.search(dname, msig, opts.MaxDist+distTol, opts.ExcludeLabel, opts.LastWindows)
	var must []refHit
	for _, h := range loose {
		if h.Dist <= opts.MaxDist-distTol {
			must = append(must, h)
		}
	}
	looseByKey := make(map[[2]any]float64, len(loose))
	for _, h := range loose {
		looseByKey[[2]any{h.Label, h.Window}] = h.Dist
	}
	serverByKey := make(map[[2]any]float64, len(hits))
	for i, h := range hits {
		// Every server hit must exist in the model's loose ranking with
		// an agreeing distance, respect MaxDist, and be sorted.
		md, ok := looseByKey[[2]any{h.Label, h.Window}]
		if !ok {
			return s.fail("server hit (%s, w%d, %.9f) not in model ranking", h.Label, h.Window, h.Dist)
		}
		if math.Abs(md-h.Dist) > distTol {
			return s.fail("hit (%s, w%d): server dist %.12f, model %.12f", h.Label, h.Window, h.Dist, md)
		}
		if h.Dist > opts.MaxDist {
			return s.fail("server hit (%s, w%d, %.9f) beyond MaxDist %.9f", h.Label, h.Window, h.Dist, opts.MaxDist)
		}
		if i > 0 && hits[i-1].Dist > h.Dist+distTol {
			return s.fail("server hits unsorted at %d: %.12f then %.12f", i, hits[i-1].Dist, h.Dist)
		}
		serverByKey[[2]any{h.Label, h.Window}] = h.Dist
	}
	if len(hits) > opts.TopK {
		return s.fail("server returned %d hits, TopK %d", len(hits), opts.TopK)
	}

	lshActive := s.cfg.LSH && dname == "jaccard" && !opts.NoPrefilter
	if lshActive {
		// The MinHash prefilter is deliberately recall-lossy: subset
		// invariants only (checked above).
		return s.cheapCompare()
	}
	// Exact scan: count bounds and completeness.
	if lo := minInt(opts.TopK, len(must)); len(hits) < lo {
		return s.fail("server returned %d hits, model requires ≥ %d (of %d certain hits)", len(hits), lo, len(must))
	}
	if hi := minInt(opts.TopK, len(loose)); len(hits) > hi {
		return s.fail("server returned %d hits, model allows ≤ %d", len(hits), hi)
	}
	if len(hits) < opts.TopK {
		// Nothing was truncated, so every certain hit must be present.
		for _, h := range must {
			if _, ok := serverByKey[[2]any{h.Label, h.Window}]; !ok {
				return s.fail("model hit (%s, w%d, %.9f) missing from untruncated server result", h.Label, h.Window, h.Dist)
			}
		}
	}
	return s.cheapCompare()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// opHistory cross-checks a label's full archived history.
func (s *sim) opHistory() error {
	label := s.labels[s.rng.Intn(len(s.labels))]
	s.note("history label=%s", label)
	got := s.srv.Store().History(label)
	want := s.model.archive.history(label)
	if len(got) != len(want) {
		return s.fail("history of %s: server %d entries, model %d", label, len(got), len(want))
	}
	u := s.srv.Store().Universe()
	for i := range got {
		if got[i].Window != want[i].Window || got[i].Scheme != want[i].Scheme {
			return s.fail("history of %s entry %d: server (w%d, %s), model (w%d, %s)",
				label, i, got[i].Window, got[i].Scheme, want[i].Window, want[i].Scheme)
		}
		if sig := toRefSig(u, got[i].Sig); !equalRefSig(sig, want[i].Sig) {
			return s.fail("history of %s window %d: signatures differ", label, got[i].Window)
		}
	}
	return s.cheapCompare()
}

// cheapCompare runs the O(1) invariants after every op. The window
// count spans both tiers: hot ring plus unshadowed segment windows
// (SegmentWindows is 0 when no tier is attached).
func (s *sim) cheapCompare() error {
	st := s.srv.Store()
	if got, want := st.Len()+st.SegmentWindows(), len(s.model.archive.windows); got != want {
		return s.fail("store has %d windows (%d hot + %d cold), model %d", got, st.Len(), st.SegmentWindows(), want)
	}
	gl, gh, gok := s.srv.Store().WindowRange()
	var wl, wh int
	wok := len(s.model.archive.windows) > 0
	if wok {
		wl = s.model.archive.windows[0].Window
		wh = s.model.archive.windows[len(s.model.archive.windows)-1].Window
	}
	if gok != wok || gl != wl || gh != wh {
		return s.fail("window range: server [%d,%d] ok=%v, model [%d,%d] ok=%v", gl, gh, gok, wl, wh, wok)
	}
	return nil
}

// deepCompare checks full state equality: the universe's interning
// order (labels and parts in NodeID order) and every archived window's
// sources and signatures, bit-exact in label space.
func (s *sim) deepCompare(when string) error {
	if err := s.cheapCompare(); err != nil {
		return err
	}
	u := s.srv.Store().Universe()
	if got, want := u.Size(), s.model.u.Size(); got != want {
		return s.fail("%s: universe size: server %d, model %d", when, got, want)
	}
	// Interning ORDER must match, not just membership: NodeIDs break
	// weight ties in canonical signatures, so a permuted universe would
	// silently reorder signature entries.
	for i, lp := range s.model.universeDump() {
		v := graph.NodeID(i)
		if u.Label(v) != lp.Label || u.PartOf(v) != lp.Part {
			return s.fail("%s: universe id %d: server %q/%v, model %q/%v",
				when, i, u.Label(v), u.PartOf(v), lp.Label, lp.Part)
		}
	}
	// Fetch windows by index through Store.Window, which falls through
	// to cold segments — the count equality in cheapCompare plus one
	// fetch per model window covers both tiers exactly.
	for i, want := range s.model.archive.windows {
		set, err := s.srv.Store().Window(want.Window)
		if err != nil {
			return s.fail("%s: reading window %d: %v", when, want.Window, err)
		}
		if set == nil {
			return s.fail("%s: window %d missing from store", when, want.Window)
		}
		got := toRefWindow(u, set)
		if got.Window != want.Window || got.Scheme != want.Scheme {
			return s.fail("%s: window %d: server (w%d, %s), model (w%d, %s)",
				when, i, got.Window, got.Scheme, want.Window, want.Scheme)
		}
		if len(got.Order) != len(want.Order) {
			return s.fail("%s: window %d has %d sources on server, %d in model", when, got.Window, len(got.Order), len(want.Order))
		}
		for j, label := range got.Order {
			if label != want.Order[j] {
				return s.fail("%s: window %d source %d: server %q, model %q", when, got.Window, j, label, want.Order[j])
			}
			if !equalRefSig(got.Sigs[label], want.Sigs[label]) {
				return s.fail("%s: window %d signature of %q differs: server %v/%v, model %v/%v",
					when, got.Window, label,
					got.Sigs[label].Labels, got.Sigs[label].Weights,
					want.Sigs[label].Labels, want.Sigs[label].Weights)
			}
		}
	}
	return nil
}
