package eval

import (
	"math"
	"testing"

	"graphsig/internal/core"
	"graphsig/internal/graph"
)

// makeSet builds a SignatureSet from (source → weighted members).
func makeSet(t *testing.T, scheme string, window int, sigs map[graph.NodeID]map[graph.NodeID]float64) *core.SignatureSet {
	t.Helper()
	var sources []graph.NodeID
	for v := range sigs {
		sources = append(sources, v)
	}
	// Deterministic order.
	for i := 0; i < len(sources); i++ {
		for j := i + 1; j < len(sources); j++ {
			if sources[j] < sources[i] {
				sources[i], sources[j] = sources[j], sources[i]
			}
		}
	}
	out := make([]core.Signature, len(sources))
	for i, v := range sources {
		out[i] = core.FromWeights(sigs[v], 10)
	}
	set, err := core.NewSignatureSet(scheme, window, sources, out)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestPersistence(t *testing.T) {
	at := makeSet(t, "tt", 0, map[graph.NodeID]map[graph.NodeID]float64{
		1: {10: 1, 11: 1},
		2: {20: 1},
	})
	next := makeSet(t, "tt", 1, map[graph.NodeID]map[graph.NodeID]float64{
		1: {10: 1, 11: 1}, // unchanged → persistence 1
		3: {30: 1},        // new node, not in at
	})
	d := core.Jaccard{}
	p := Persistence(d, at, next)
	if len(p) != 1 {
		t.Fatalf("persistence over %d nodes, want 1", len(p))
	}
	if p[1] != 1 {
		t.Fatalf("persistence(1) = %g", p[1])
	}
	sum := PersistenceSummary(d, at, next)
	if sum.N != 1 || sum.Mean != 1 {
		t.Fatalf("summary %v", sum)
	}
}

func TestUniqueness(t *testing.T) {
	set := makeSet(t, "tt", 0, map[graph.NodeID]map[graph.NodeID]float64{
		1: {10: 1},
		2: {10: 1}, // identical to 1
		3: {30: 1}, // disjoint
	})
	d := core.Jaccard{}
	sum := UniquenessSummary(d, set, 0, 1)
	// Ordered pairs: (1,2),(2,1) dist 0; (1,3),(3,1),(2,3),(3,2) dist 1.
	if sum.N != 6 {
		t.Fatalf("pairs = %d", sum.N)
	}
	if math.Abs(sum.Mean-4.0/6) > 1e-12 {
		t.Fatalf("mean = %g", sum.Mean)
	}
	// Sampled variant still lands near the exact mean.
	sampled := UniquenessSummary(d, set, 3, 99)
	if sampled.N != 3 {
		t.Fatalf("sampled pairs = %d", sampled.N)
	}
	// Tiny sets short-circuit.
	single := makeSet(t, "tt", 0, map[graph.NodeID]map[graph.NodeID]float64{1: {10: 1}})
	if UniquenessSummary(d, single, 0, 1).N != 0 {
		t.Fatal("singleton uniqueness should be empty")
	}
}

func TestRobustness(t *testing.T) {
	clean := makeSet(t, "tt", 0, map[graph.NodeID]map[graph.NodeID]float64{
		1: {10: 1, 11: 1},
	})
	hat := makeSet(t, "tt", 0, map[graph.NodeID]map[graph.NodeID]float64{
		1: {10: 1, 12: 1}, // half overlap
	})
	d := core.Jaccard{}
	r := Robustness(d, clean, hat)
	want := 1 - (1 - 1.0/3)
	if math.Abs(r[1]-want) > 1e-12 {
		t.Fatalf("robustness = %g, want %g", r[1], want)
	}
	if RobustnessSummary(d, clean, hat).N != 1 {
		t.Fatal("summary count wrong")
	}
}

func TestEllipse(t *testing.T) {
	at := makeSet(t, "tt", 0, map[graph.NodeID]map[graph.NodeID]float64{
		1: {10: 1}, 2: {20: 1},
	})
	e := EllipseFor(core.Jaccard{}, at, at, 0, 1)
	if e.Scheme != "tt" || e.Distance != "jaccard" {
		t.Fatalf("metadata wrong: %+v", e)
	}
	if e.Persistence.Mean != 1 || e.Uniqueness.Mean != 1 {
		t.Fatalf("values wrong: %s", e)
	}
	if e.String() == "" {
		t.Fatal("String empty")
	}
}

func TestSelfRetrieval(t *testing.T) {
	// Three nodes with distinctive, stable signatures: retrieval is
	// perfect.
	sigs := map[graph.NodeID]map[graph.NodeID]float64{
		1: {10: 1, 11: 0.5},
		2: {20: 1, 21: 0.5},
		3: {30: 1, 31: 0.5},
	}
	at := makeSet(t, "tt", 0, sigs)
	next := makeSet(t, "tt", 1, sigs)
	d := core.ScaledHellinger{}
	auc, err := SelfRetrievalAUC(d, at, next)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 1 {
		t.Fatalf("AUC = %g, want 1", auc)
	}
	queries := SelfRetrievalQueries(d, at, next)
	if len(queries) != 3 {
		t.Fatalf("queries = %d", len(queries))
	}
	// No overlap at all: every distance ties at 1 → AUC ½.
	shuffled := makeSet(t, "tt", 1, map[graph.NodeID]map[graph.NodeID]float64{
		1: {90: 1}, 2: {91: 1}, 3: {92: 1},
	})
	auc, err = SelfRetrievalAUC(d, at, shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if auc != 0.5 {
		t.Fatalf("no-signal AUC = %g, want 0.5", auc)
	}
	// Disjoint source sets error out.
	other := makeSet(t, "tt", 1, map[graph.NodeID]map[graph.NodeID]float64{9: {1: 1}})
	if _, err := SelfRetrievalAUC(d, at, other); err == nil {
		t.Fatal("disjoint windows accepted")
	}
}

func TestSetRetrievalQueries(t *testing.T) {
	set := makeSet(t, "tt", 0, map[graph.NodeID]map[graph.NodeID]float64{
		1: {10: 1, 11: 1},
		2: {10: 1, 11: 1}, // sibling of 1
		3: {30: 1},
		4: {40: 1},
	})
	groups := [][]graph.NodeID{{1, 2}}
	queries := SetRetrievalQueries(core.Jaccard{}, set, groups)
	// One query per group member.
	if len(queries) != 2 {
		t.Fatalf("queries = %d", len(queries))
	}
	for _, q := range queries {
		// Self excluded: 3 candidates, 1 positive.
		if len(q.Scores) != 3 {
			t.Fatalf("candidates = %d", len(q.Scores))
		}
		auc, err := q.AUC()
		if err != nil {
			t.Fatal(err)
		}
		if auc != 1 {
			t.Fatalf("sibling retrieval AUC = %g", auc)
		}
	}
	// Groups whose members lack signatures yield no queries.
	if got := SetRetrievalQueries(core.Jaccard{}, set, [][]graph.NodeID{{8, 9}}); len(got) != 0 {
		t.Fatalf("ghost group produced %d queries", len(got))
	}
}
