package eval

import (
	"math"
	"testing"
)

func TestMRRHandCases(t *testing.T) {
	cases := []struct {
		scores   []float64
		positive []bool
		want     float64
	}{
		// Positive first.
		{[]float64{0.1, 0.5, 0.9}, []bool{true, false, false}, 1},
		// Positive second.
		{[]float64{0.5, 0.1, 0.9}, []bool{true, false, false}, 0.5},
		// Positive last of three.
		{[]float64{0.9, 0.1, 0.5}, []bool{true, false, false}, 1.0 / 3},
		// Two positives: the better one (0.5, outranked by negatives
		// 0.1 and 0.4) counts — rank 3.
		{[]float64{0.5, 0.1, 0.9, 0.4}, []bool{true, false, true, false}, 1.0 / 3},
		// Tie with one negative at the top: mid-rank 1.5.
		{[]float64{0.1, 0.1, 0.9}, []bool{true, false, false}, 1 / 1.5},
	}
	for i, c := range cases {
		got, err := MRR([]Query{{Scores: c.scores, Positive: c.positive}})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("case %d MRR = %g, want %g", i, got, c.want)
		}
	}
	if _, err := MRR(nil); err == nil {
		t.Fatal("MRR of nothing succeeded")
	}
}

func TestMRRAveraging(t *testing.T) {
	queries := []Query{
		{Scores: []float64{0.1, 0.9}, Positive: []bool{true, false}}, // rr 1
		{Scores: []float64{0.9, 0.1}, Positive: []bool{true, false}}, // rr 1/2
	}
	got, err := MRR(queries)
	if err != nil || math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("MRR = %g, %v", got, err)
	}
}

func TestPrecisionAtK(t *testing.T) {
	q := Query{
		Scores:   []float64{0.1, 0.2, 0.3, 0.4, 0.5},
		Positive: []bool{true, false, true, false, false},
	}
	cases := []struct {
		k    int
		want float64
	}{
		{1, 1},       // top-1 is positive
		{2, 0.5},     // one of top-2
		{3, 2.0 / 3}, // two of top-3
		{5, 2.0 / 5}, // both of five
	}
	for _, c := range cases {
		got, err := PrecisionAtK([]Query{q}, c.k)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("P@%d = %g, want %g", c.k, got, c.want)
		}
	}
	if _, err := PrecisionAtK([]Query{q}, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := PrecisionAtK(nil, 1); err == nil {
		t.Fatal("empty queries accepted")
	}
}

func TestPrecisionAtKTies(t *testing.T) {
	// Three candidates tied at the top, one of them positive, k=1:
	// proportional credit 1/3.
	q := Query{
		Scores:   []float64{0.1, 0.1, 0.1, 0.9},
		Positive: []bool{true, false, false, false},
	}
	got, err := PrecisionAtK([]Query{q}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("P@1 with ties = %g, want 1/3", got)
	}
}
