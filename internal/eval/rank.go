package eval

import "fmt"

// MRR computes the mean reciprocal rank of the first positive across
// queries: 1 when the true match always ranks first, 1/2 when it is
// typically second, and so on. Tied scores share the mid-rank, so a
// positive tied with one negative at the top contributes 1/1.5. MRR
// complements AUC for identification tasks (de-anonymization,
// masquerade pairing), where only the top of the ranking matters.
func MRR(queries []Query) (float64, error) {
	if len(queries) == 0 {
		return 0, fmt.Errorf("eval: MRR over zero queries")
	}
	sum := 0.0
	for i := range queries {
		rr, err := reciprocalRank(&queries[i])
		if err != nil {
			return 0, fmt.Errorf("eval: query %d: %w", i, err)
		}
		sum += rr
	}
	return sum / float64(len(queries)), nil
}

// PrecisionAtK reports the mean fraction of the top-k candidates (by
// ascending score, ties sharing proportional credit) that are positive.
func PrecisionAtK(queries []Query, k int) (float64, error) {
	if len(queries) == 0 {
		return 0, fmt.Errorf("eval: PrecisionAtK over zero queries")
	}
	if k <= 0 {
		return 0, fmt.Errorf("eval: PrecisionAtK needs k > 0, got %d", k)
	}
	sum := 0.0
	for qi := range queries {
		q := &queries[qi]
		if err := q.Validate(); err != nil {
			return 0, fmt.Errorf("eval: query %d: %w", qi, err)
		}
		credit, _ := topKCredit(q, k)
		sum += credit / float64(k)
	}
	return sum / float64(len(queries)), nil
}

// topKCredit returns the expected number of positives among the top k
// under the random-tie-order convention.
func topKCredit(q *Query, k int) (float64, int) {
	all := make([]scoredCand, len(q.Scores))
	for i := range q.Scores {
		all[i] = scoredCand{q.Scores[i], q.Positive[i]}
	}
	sortScores(all)
	credit := 0.0
	taken := 0
	i := 0
	for i < len(all) && taken < k {
		j := i
		tiePos := 0
		for j < len(all) && all[j].s == all[i].s {
			if all[j].pos {
				tiePos++
			}
			j++
		}
		groupSize := j - i
		slots := k - taken
		if groupSize <= slots {
			credit += float64(tiePos)
			taken += groupSize
		} else {
			// Partial group: positives fill slots proportionally.
			credit += float64(tiePos) * float64(slots) / float64(groupSize)
			taken = k
		}
		i = j
	}
	return credit, taken
}

func reciprocalRank(q *Query) (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	bestScore := 0.0
	havePos := false
	for i, s := range q.Scores {
		if q.Positive[i] && (!havePos || s < bestScore) {
			bestScore = s
			havePos = true
		}
	}
	// Rank of the best positive: 1 + strictly better + half of the
	// other candidates tied with it.
	better := 0
	ties := 0
	for i, s := range q.Scores {
		if q.Positive[i] && s == bestScore {
			continue
		}
		if s < bestScore {
			better++
		} else if s == bestScore {
			ties++
		}
	}
	rank := 1 + float64(better) + float64(ties)/2
	return 1 / rank, nil
}

// scoredCand pairs a candidate's score with its relevance during
// rank-metric computation.
type scoredCand struct {
	s   float64
	pos bool
}

func sortScores(all []scoredCand) {
	// Insertion sort suffices: candidate lists here are modest, and the
	// function keeps the tie-group walk below allocation-free.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && all[j].s < all[j-1].s; j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
}
