// Package eval measures signature schemes against the paper's three
// properties — persistence, uniqueness, robustness (§II-C) — and
// implements the ROC/AUC machinery of §IV-C used to capture the
// persistence/uniqueness trade-off in one statistic.
package eval

import (
	"fmt"
	"math"
	"sort"
)

// Query is one ranked-retrieval evaluation: candidates scored by
// distance (lower ranks higher) with known relevance.
type Query struct {
	// Scores[i] is the distance of candidate i from the query signature.
	Scores []float64
	// Positive[i] marks candidate i as a true match.
	Positive []bool
}

// Validate reports structural problems with the query.
func (q *Query) Validate() error {
	if len(q.Scores) != len(q.Positive) {
		return fmt.Errorf("eval: query has %d scores but %d labels", len(q.Scores), len(q.Positive))
	}
	pos, neg := 0, 0
	for i, s := range q.Scores {
		if math.IsNaN(s) {
			return fmt.Errorf("eval: query score %d is NaN", i)
		}
		if q.Positive[i] {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 {
		return fmt.Errorf("eval: query has no positive candidate")
	}
	if neg == 0 {
		return fmt.Errorf("eval: query has no negative candidate")
	}
	return nil
}

// AUC computes the area under the ROC curve for one query by the
// Mann-Whitney U statistic: the probability that a random positive
// scores strictly below a random negative, counting ties as ½. This is
// exactly the area traced by the paper's up/right ROC walk with the
// mid-rank convention for tied distances.
func (q *Query) AUC() (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	type sc struct {
		s   float64
		pos bool
	}
	all := make([]sc, len(q.Scores))
	for i := range q.Scores {
		all[i] = sc{q.Scores[i], q.Positive[i]}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].s < all[j].s })

	var u float64 // number of (positive, negative) pairs won (+½ per tie)
	var pos, neg int
	i := 0
	negSeen := 0
	for i < len(all) {
		j := i
		tiePos, tieNeg := 0, 0
		for j < len(all) && all[j].s == all[i].s {
			if all[j].pos {
				tiePos++
			} else {
				tieNeg++
			}
			j++
		}
		// Positives in this tie group beat every negative after the
		// group and draw with negatives inside it.
		negAfter := 0
		for k := j; k < len(all); k++ {
			if !all[k].pos {
				negAfter++
			}
		}
		u += float64(tiePos) * (float64(negAfter) + 0.5*float64(tieNeg))
		pos += tiePos
		neg += tieNeg
		negSeen += tieNeg
		i = j
	}
	return u / (float64(pos) * float64(neg)), nil
}

// MeanAUC averages per-query AUC values, the statistic Figures 3 and 4
// report.
func MeanAUC(queries []Query) (float64, error) {
	if len(queries) == 0 {
		return 0, fmt.Errorf("eval: MeanAUC over zero queries")
	}
	sum := 0.0
	for i := range queries {
		a, err := queries[i].AUC()
		if err != nil {
			return 0, fmt.Errorf("eval: query %d: %w", i, err)
		}
		sum += a
	}
	return sum / float64(len(queries)), nil
}

// Curve is an ROC curve sampled at monotone (FPR, TPR) points starting
// at (0,0) and ending at (1,1).
type Curve struct {
	FPR []float64
	TPR []float64
}

// AverageROC averages the ROC curves of several queries on a uniform
// FPR grid with the given number of points (vertical averaging), the
// way Figures 2 and 5 aggregate per-node curves.
func AverageROC(queries []Query, points int) (Curve, error) {
	if points < 2 {
		return Curve{}, fmt.Errorf("eval: AverageROC needs at least 2 grid points")
	}
	if len(queries) == 0 {
		return Curve{}, fmt.Errorf("eval: AverageROC over zero queries")
	}
	grid := make([]float64, points)
	tpr := make([]float64, points)
	for i := range grid {
		grid[i] = float64(i) / float64(points-1)
	}
	for qi := range queries {
		q := &queries[qi]
		if err := q.Validate(); err != nil {
			return Curve{}, fmt.Errorf("eval: query %d: %w", qi, err)
		}
		fpr, t := rocPoints(q)
		for i := range grid {
			tpr[i] += interpROC(fpr, t, grid[i])
		}
	}
	for i := range tpr {
		tpr[i] /= float64(len(queries))
	}
	return Curve{FPR: grid, TPR: tpr}, nil
}

// rocPoints walks the ranked list emitting one point per tie group,
// sharing a tie group's positives and negatives along the diagonal of
// the group (the mid-rank convention).
func rocPoints(q *Query) (fpr, tpr []float64) {
	type sc struct {
		s   float64
		pos bool
	}
	all := make([]sc, len(q.Scores))
	nPos, nNeg := 0, 0
	for i := range q.Scores {
		all[i] = sc{q.Scores[i], q.Positive[i]}
		if q.Positive[i] {
			nPos++
		} else {
			nNeg++
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].s < all[j].s })
	fpr = []float64{0}
	tpr = []float64{0}
	seenPos, seenNeg := 0, 0
	i := 0
	for i < len(all) {
		j := i
		tiePos, tieNeg := 0, 0
		for j < len(all) && all[j].s == all[i].s {
			if all[j].pos {
				tiePos++
			} else {
				tieNeg++
			}
			j++
		}
		seenPos += tiePos
		seenNeg += tieNeg
		fpr = append(fpr, float64(seenNeg)/float64(nNeg))
		tpr = append(tpr, float64(seenPos)/float64(nPos))
		i = j
	}
	return fpr, tpr
}

// interpROC evaluates the piecewise-linear curve at x. Where the curve
// is vertical (several points share one FPR), the topmost TPR applies:
// that is the best recall achievable at exactly that false-positive
// rate.
func interpROC(fpr, tpr []float64, x float64) float64 {
	// Largest index whose FPR is ≤ x.
	last := 0
	for i := range fpr {
		if fpr[i] <= x {
			last = i
		} else {
			break
		}
	}
	if fpr[last] == x || last == len(fpr)-1 {
		return tpr[last]
	}
	frac := (x - fpr[last]) / (fpr[last+1] - fpr[last])
	return tpr[last] + frac*(tpr[last+1]-tpr[last])
}

// AUC computes the area under this curve by the trapezoid rule; useful
// for averaged curves (per-query AUC should use Query.AUC).
func (c Curve) AUC() float64 {
	area := 0.0
	for i := 1; i < len(c.FPR); i++ {
		area += (c.FPR[i] - c.FPR[i-1]) * (c.TPR[i] + c.TPR[i-1]) / 2
	}
	return area
}
