package eval

import (
	"fmt"

	"graphsig/internal/core"
	"graphsig/internal/distmat"
	"graphsig/internal/graph"
	"graphsig/internal/stats"
)

// The pairwise metrics below ride the sparse engine (internal/distmat)
// whenever the distance has a merge-join kernel — every distance in
// core.ExtendedDistances does — and keep the naive loops as the fallback
// for custom Distance implementations. Engine results are bit-identical
// to the naive loops (property tests in distmat enforce it), so the
// rewiring changes no reported number.

// Persistence computes 1 − Dist(σ_t(v), σ_{t+1}(v)) for every source
// present in both sets (§II-C). Sources missing from either set are
// skipped: a label absent from a window has no signature to compare.
func Persistence(d core.Distance, at, next *core.SignatureSet) map[graph.NodeID]float64 {
	out := make(map[graph.NodeID]float64)
	if eng, ok := distmat.NewEngine(at, next, d, 0); ok {
		for i, v := range at.Sources {
			j, present := next.IndexOf(v)
			if !present {
				continue
			}
			out[v] = 1 - eng.Dist(i, j)
		}
		return out
	}
	for i, v := range at.Sources {
		sig2, ok := next.Get(v)
		if !ok {
			continue
		}
		out[v] = 1 - d.Dist(at.Sigs[i], sig2)
	}
	return out
}

// PersistenceSummary summarizes per-node persistence as the paper's
// (μ_p, s_p) ellipse axis.
func PersistenceSummary(d core.Distance, at, next *core.SignatureSet) stats.Summary {
	var acc stats.Accumulator
	for _, p := range Persistence(d, at, next) {
		acc.Add(p)
	}
	return acc.Summarize()
}

// UniquenessSummary summarizes Dist(σ_t(v), σ_t(u)) over ordered pairs
// v ≠ u of sources within one window as the paper's (μ_u, s_u) ellipse
// axis. For large source sets the pair count is quadratic; maxPairs > 0
// caps the work by deterministic uniform pair sampling (0 = exact).
//
// The exact path streams engine rows in ascending (i, j) order into the
// Welford accumulator — the same order as the naive double loop — so the
// summary is bit-identical to it while the distance work is
// overlap-proportional and sharded across cores.
func UniquenessSummary(d core.Distance, set *core.SignatureSet, maxPairs int, seed int64) stats.Summary {
	n := set.Len()
	var acc stats.Accumulator
	if n < 2 {
		return acc.Summarize()
	}
	eng, fast := distmat.NewEngine(set, set, d, 0)
	total := n * (n - 1)
	if maxPairs <= 0 || total <= maxPairs {
		if fast {
			idx := make([]int, n)
			for i := range idx {
				idx[i] = i
			}
			eng.Rows(idx, func(i int, row []float64) {
				for j, x := range row {
					if j != i {
						acc.Add(x)
					}
				}
			})
			return acc.Summarize()
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				acc.Add(d.Dist(set.Sigs[i], set.Sigs[j]))
			}
		}
		return acc.Summarize()
	}
	rng := stats.NewRNG(seed)
	for p := 0; p < maxPairs; p++ {
		i := rng.Intn(n)
		j := rng.Intn(n - 1)
		if j >= i {
			j++
		}
		if fast {
			acc.Add(eng.Dist(i, j))
		} else {
			acc.Add(d.Dist(set.Sigs[i], set.Sigs[j]))
		}
	}
	return acc.Summarize()
}

// Robustness computes 1 − Dist(σ(v), σ̂(v)) per source, where hat is the
// signature set computed from a perturbed graph (§II-C, §IV-C).
func Robustness(d core.Distance, clean, perturbed *core.SignatureSet) map[graph.NodeID]float64 {
	out := make(map[graph.NodeID]float64)
	if eng, ok := distmat.NewEngine(clean, perturbed, d, 0); ok {
		for i, v := range clean.Sources {
			j, present := perturbed.IndexOf(v)
			if !present {
				continue
			}
			out[v] = 1 - eng.Dist(i, j)
		}
		return out
	}
	for i, v := range clean.Sources {
		sig2, ok := perturbed.Get(v)
		if !ok {
			continue
		}
		out[v] = 1 - d.Dist(clean.Sigs[i], sig2)
	}
	return out
}

// RobustnessSummary summarizes per-node robustness.
func RobustnessSummary(d core.Distance, clean, perturbed *core.SignatureSet) stats.Summary {
	var acc stats.Accumulator
	for _, r := range Robustness(d, clean, perturbed) {
		acc.Add(r)
	}
	return acc.Summarize()
}

// Ellipse is one point of Figure 1: the span of persistence and
// uniqueness values of a (scheme, distance, window) combination,
// centered at the means with the standard deviations as diameters.
type Ellipse struct {
	Scheme      string
	Distance    string
	Persistence stats.Summary
	Uniqueness  stats.Summary
}

// String renders "scheme/distance: P=μ±s U=μ±s".
func (e Ellipse) String() string {
	return fmt.Sprintf("%s/%s: P=%.4f±%.4f U=%.4f±%.4f",
		e.Scheme, e.Distance,
		e.Persistence.Mean, e.Persistence.StdDev,
		e.Uniqueness.Mean, e.Uniqueness.StdDev)
}

// EllipseFor computes the Figure 1 ellipse for one scheme and distance
// across a window pair.
func EllipseFor(d core.Distance, at, next *core.SignatureSet, maxPairs int, seed int64) Ellipse {
	return Ellipse{
		Scheme:      at.Scheme,
		Distance:    d.Name(),
		Persistence: PersistenceSummary(d, at, next),
		Uniqueness:  UniquenessSummary(d, at, maxPairs, seed),
	}
}

// SelfRetrievalQueries builds the §IV-C ROC queries: for each source v
// present in both sets, candidates are the sources of next scored by
// Dist(σ_t(v), σ_{t+1}(u)); v itself is the positive. Sources absent
// from either window are skipped. Score rows ride the pairwise engine.
func SelfRetrievalQueries(d core.Distance, at, next *core.SignatureSet) []Query {
	var rows []int
	for i, v := range at.Sources {
		if _, ok := next.Get(v); ok {
			rows = append(rows, i)
		}
	}
	if len(rows) == 0 {
		return nil
	}
	if eng, ok := distmat.NewEngine(at, next, d, 0); ok {
		queries := make([]Query, len(rows))
		eng.Rows(rows, func(t int, row []float64) {
			v := at.Sources[rows[t]]
			q := Query{
				Scores:   append([]float64(nil), row...),
				Positive: make([]bool, next.Len()),
			}
			for j, u := range next.Sources {
				q.Positive[j] = u == v
			}
			queries[t] = q
		})
		return queries
	}
	queries := make([]Query, 0, len(rows))
	for _, i := range rows {
		v := at.Sources[i]
		q := Query{
			Scores:   make([]float64, next.Len()),
			Positive: make([]bool, next.Len()),
		}
		for j, u := range next.Sources {
			q.Scores[j] = d.Dist(at.Sigs[i], next.Sigs[j])
			q.Positive[j] = u == v
		}
		queries = append(queries, q)
	}
	return queries
}

// SelfRetrievalAUC is the Figure 3 statistic: mean per-node AUC of the
// self-retrieval queries.
func SelfRetrievalAUC(d core.Distance, at, next *core.SignatureSet) (float64, error) {
	queries := SelfRetrievalQueries(d, at, next)
	if len(queries) == 0 {
		return 0, fmt.Errorf("eval: no sources present in both windows")
	}
	return MeanAUC(queries)
}

// SetRetrievalQueries builds the §V multiusage ROC queries: for each
// query node v belonging to some ground-truth set S, candidates are all
// other sources in the same window, positives are the other members of
// S. (The paper ranks all of V including v itself; ranking the query
// against itself is a guaranteed hit at distance zero, so we exclude it
// — a strictly harder and more informative variant.)
func SetRetrievalQueries(d core.Distance, set *core.SignatureSet, groups [][]graph.NodeID) []Query {
	member := map[graph.NodeID]int{}
	for gi, g := range groups {
		for _, v := range g {
			member[v] = gi
		}
	}
	var rows []int
	for i, v := range set.Sources {
		if _, ok := member[v]; ok {
			rows = append(rows, i)
		}
	}
	if len(rows) == 0 {
		return nil
	}
	var queries []Query
	if eng, ok := distmat.NewEngine(set, set, d, 0); ok {
		eng.Rows(rows, func(t int, row []float64) {
			i := rows[t]
			v := set.Sources[i]
			gi := member[v]
			positives := 0
			q := Query{
				Scores:   make([]float64, 0, set.Len()-1),
				Positive: make([]bool, 0, set.Len()-1),
			}
			for j, u := range set.Sources {
				if u == v {
					continue
				}
				q.Scores = append(q.Scores, row[j])
				pos := false
				if gj, ok := member[u]; ok && gj == gi {
					pos = true
					positives++
				}
				q.Positive = append(q.Positive, pos)
			}
			if positives > 0 {
				queries = append(queries, q)
			}
		})
		return queries
	}
	for _, i := range rows {
		v := set.Sources[i]
		gi := member[v]
		positives := 0
		q := Query{
			Scores:   make([]float64, 0, set.Len()-1),
			Positive: make([]bool, 0, set.Len()-1),
		}
		for j, u := range set.Sources {
			if u == v {
				continue
			}
			q.Scores = append(q.Scores, d.Dist(set.Sigs[i], set.Sigs[j]))
			pos := false
			if gj, ok := member[u]; ok && gj == gi {
				pos = true
				positives++
			}
			q.Positive = append(q.Positive, pos)
		}
		if positives > 0 {
			queries = append(queries, q)
		}
	}
	return queries
}
