package eval

import (
	"testing"

	"graphsig/internal/stats"
)

// pairedQueries builds n paired queries where scheme A places the
// positive at rank rA (of 10 candidates) and scheme B at rank rB, with
// rank noise per query.
func pairedQueries(n int, winProbA float64, seed int64) (a, b []Query) {
	rng := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		mk := func(posRank int) Query {
			q := Query{Scores: make([]float64, 10), Positive: make([]bool, 10)}
			for j := range q.Scores {
				q.Scores[j] = float64(j) / 10
			}
			q.Positive[posRank] = true
			return q
		}
		rankA, rankB := 2, 2
		if rng.Bernoulli(winProbA) {
			rankA = 0
		} else {
			rankB = 0
		}
		a = append(a, mk(rankA))
		b = append(b, mk(rankB))
	}
	return a, b
}

func TestBootstrapValidation(t *testing.T) {
	a, b := pairedQueries(10, 0.5, 1)
	if _, err := BootstrapAUCDiff(a, b[:5], 100, 0.95, 1); err == nil {
		t.Fatal("unpaired inputs accepted")
	}
	if _, err := BootstrapAUCDiff(nil, nil, 100, 0.95, 1); err == nil {
		t.Fatal("empty inputs accepted")
	}
	if _, err := BootstrapAUCDiff(a, b, 5, 0.95, 1); err == nil {
		t.Fatal("too few iterations accepted")
	}
	if _, err := BootstrapAUCDiff(a, b, 100, 1.0, 1); err == nil {
		t.Fatal("confidence 1.0 accepted")
	}
}

func TestBootstrapDetectsClearWinner(t *testing.T) {
	// A wins 90% of queries: the interval must exclude zero on the
	// positive side.
	a, b := pairedQueries(200, 0.9, 7)
	d, err := BootstrapAUCDiff(a, b, 1000, 0.95, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Mean <= 0 {
		t.Fatalf("mean diff %g not positive", d.Mean)
	}
	if !d.Significant() || d.Lo <= 0 {
		t.Fatalf("clear winner not significant: %s", d)
	}
	if d.Queries != 200 {
		t.Fatalf("Queries = %d", d.Queries)
	}
	if d.String() == "" {
		t.Fatal("String empty")
	}
}

func TestBootstrapNullCoversZero(t *testing.T) {
	// A wins exactly as often as B: the interval should cover zero.
	a, b := pairedQueries(200, 0.5, 11)
	d, err := BootstrapAUCDiff(a, b, 1000, 0.95, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Significant() {
		t.Fatalf("null case flagged significant: %s", d)
	}
}

func TestBootstrapDeterminism(t *testing.T) {
	a, b := pairedQueries(50, 0.7, 13)
	d1, err := BootstrapAUCDiff(a, b, 500, 0.9, 21)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := BootstrapAUCDiff(a, b, 500, 0.9, 21)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatal("same seed produced different intervals")
	}
}
