package eval

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQueryValidate(t *testing.T) {
	bad := []Query{
		{Scores: []float64{1}, Positive: []bool{true, false}},
		{Scores: []float64{1, 2}, Positive: []bool{false, false}},
		{Scores: []float64{1, 2}, Positive: []bool{true, true}},
		{Scores: []float64{math.NaN(), 2}, Positive: []bool{true, false}},
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Fatalf("case %d validated", i)
		}
	}
	good := Query{Scores: []float64{0.1, 0.9}, Positive: []bool{true, false}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAUCHandCases(t *testing.T) {
	cases := []struct {
		scores   []float64
		positive []bool
		want     float64
	}{
		// Perfect: positive scores lowest.
		{[]float64{0.1, 0.5, 0.9}, []bool{true, false, false}, 1},
		// Worst: positive scores highest.
		{[]float64{0.9, 0.5, 0.1}, []bool{true, false, false}, 0},
		// All tied: AUC ½.
		{[]float64{0.5, 0.5, 0.5}, []bool{true, false, false}, 0.5},
		// Positive beats one of two negatives.
		{[]float64{0.5, 0.1, 0.9}, []bool{true, false, false}, 0.5},
		// Two positives, middle split.
		{[]float64{0.1, 0.2, 0.3, 0.4}, []bool{true, false, true, false}, 0.75},
		// Tie with one negative only.
		{[]float64{0.5, 0.5, 0.9}, []bool{true, false, false}, 0.75},
	}
	for i, c := range cases {
		q := Query{Scores: c.scores, Positive: c.positive}
		got, err := q.AUC()
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("case %d AUC = %g, want %g", i, got, c.want)
		}
	}
}

// Property: AUC is invariant under any strictly monotone transform of
// the scores, and flipping score order complements it.
func TestAUCProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 3 {
			return true
		}
		scores := make([]float64, len(raw))
		positive := make([]bool, len(raw))
		nPos := 0
		for i, b := range raw {
			scores[i] = float64(b % 50)
			positive[i] = b%3 == 0
			if positive[i] {
				nPos++
			}
		}
		if nPos == 0 || nPos == len(raw) {
			return true
		}
		q := Query{Scores: scores, Positive: positive}
		base, err := q.AUC()
		if err != nil {
			return false
		}
		if base < 0 || base > 1 {
			return false
		}
		// Monotone transform.
		trans := make([]float64, len(scores))
		for i, s := range scores {
			trans[i] = math.Exp(s/10) + 3
		}
		tq := Query{Scores: trans, Positive: positive}
		tAUC, err := tq.AUC()
		if err != nil || math.Abs(tAUC-base) > 1e-9 {
			return false
		}
		// Negated scores complement the AUC.
		neg := make([]float64, len(scores))
		for i, s := range scores {
			neg[i] = -s
		}
		nq := Query{Scores: neg, Positive: positive}
		nAUC, err := nq.AUC()
		return err == nil && math.Abs(nAUC-(1-base)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanAUC(t *testing.T) {
	queries := []Query{
		{Scores: []float64{0.1, 0.9}, Positive: []bool{true, false}}, // 1
		{Scores: []float64{0.9, 0.1}, Positive: []bool{true, false}}, // 0
	}
	got, err := MeanAUC(queries)
	if err != nil || got != 0.5 {
		t.Fatalf("MeanAUC = %g, %v", got, err)
	}
	if _, err := MeanAUC(nil); err == nil {
		t.Fatal("MeanAUC of nothing succeeded")
	}
}

func TestAverageROC(t *testing.T) {
	queries := []Query{
		{Scores: []float64{0.1, 0.5, 0.9}, Positive: []bool{true, false, false}},
	}
	curve, err := AverageROC(queries, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.FPR) != 11 || curve.FPR[0] != 0 || curve.FPR[10] != 1 {
		t.Fatalf("grid wrong: %v", curve.FPR)
	}
	// Perfect query: TPR hits 1 at FPR 0.
	if curve.TPR[0] != 1 {
		t.Fatalf("TPR at 0 = %g", curve.TPR[0])
	}
	if auc := curve.AUC(); auc != 1 {
		t.Fatalf("curve AUC = %g", auc)
	}
	if _, err := AverageROC(queries, 1); err == nil {
		t.Fatal("tiny grid accepted")
	}
	if _, err := AverageROC(nil, 11); err == nil {
		t.Fatal("empty query set accepted")
	}
}

// The trapezoid AUC of a finely sampled averaged curve approximates the
// mean Mann-Whitney AUC.
func TestCurveAUCMatchesQueryAUC(t *testing.T) {
	queries := []Query{
		{Scores: []float64{0.2, 0.1, 0.9, 0.4, 0.6}, Positive: []bool{true, false, false, false, false}},
		{Scores: []float64{0.8, 0.1, 0.9, 0.4, 0.6}, Positive: []bool{true, false, false, false, false}},
	}
	mean, err := MeanAUC(queries)
	if err != nil {
		t.Fatal(err)
	}
	curve, err := AverageROC(queries, 1001)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(curve.AUC()-mean) > 0.01 {
		t.Fatalf("curve AUC %.4f vs mean AUC %.4f", curve.AUC(), mean)
	}
}
