package eval

import (
	"fmt"
	"sort"

	"graphsig/internal/stats"
)

// AUCDiff is a paired-bootstrap estimate of the difference in mean AUC
// between two signature schemes evaluated over the same query
// population: positive means scheme A wins. The interval makes Figure 3
// style comparisons honest — "RWR³ beats TT by 0.005" is only a finding
// if the interval excludes zero.
type AUCDiff struct {
	Mean float64
	// Lo and Hi bound the central confidence interval.
	Lo, Hi float64
	// Confidence is the interval mass, e.g. 0.95.
	Confidence float64
	// Queries is the paired sample size.
	Queries int
}

// Significant reports whether the interval excludes zero.
func (d AUCDiff) Significant() bool { return d.Lo > 0 || d.Hi < 0 }

// String renders "Δ=+0.0052 [0.0031, 0.0074] @95%".
func (d AUCDiff) String() string {
	return fmt.Sprintf("Δ=%+.4f [%.4f, %.4f] @%g%%", d.Mean, d.Lo, d.Hi, d.Confidence*100)
}

// BootstrapAUCDiff estimates the mean AUC difference between paired
// query sets a and b (query i of each must concern the same underlying
// node) with a percentile bootstrap over queries. iters controls the
// resample count (1000 is plenty); conf the interval mass.
func BootstrapAUCDiff(a, b []Query, iters int, conf float64, seed int64) (AUCDiff, error) {
	if len(a) != len(b) {
		return AUCDiff{}, fmt.Errorf("eval: bootstrap needs paired queries, got %d/%d", len(a), len(b))
	}
	if len(a) == 0 {
		return AUCDiff{}, fmt.Errorf("eval: bootstrap over zero queries")
	}
	if iters < 10 {
		return AUCDiff{}, fmt.Errorf("eval: bootstrap needs at least 10 iterations, got %d", iters)
	}
	if conf <= 0 || conf >= 1 {
		return AUCDiff{}, fmt.Errorf("eval: confidence %g outside (0,1)", conf)
	}
	diffs := make([]float64, len(a))
	total := 0.0
	for i := range a {
		aucA, err := a[i].AUC()
		if err != nil {
			return AUCDiff{}, fmt.Errorf("eval: bootstrap query %d (a): %w", i, err)
		}
		aucB, err := b[i].AUC()
		if err != nil {
			return AUCDiff{}, fmt.Errorf("eval: bootstrap query %d (b): %w", i, err)
		}
		diffs[i] = aucA - aucB
		total += diffs[i]
	}
	rng := stats.NewRNG(seed)
	resampled := make([]float64, iters)
	for it := 0; it < iters; it++ {
		sum := 0.0
		for j := 0; j < len(diffs); j++ {
			sum += diffs[rng.Intn(len(diffs))]
		}
		resampled[it] = sum / float64(len(diffs))
	}
	sort.Float64s(resampled)
	alpha := (1 - conf) / 2
	lo := resampled[int(alpha*float64(iters))]
	hiIdx := int((1 - alpha) * float64(iters))
	if hiIdx >= iters {
		hiIdx = iters - 1
	}
	hi := resampled[hiIdx]
	return AUCDiff{
		Mean:       total / float64(len(diffs)),
		Lo:         lo,
		Hi:         hi,
		Confidence: conf,
		Queries:    len(a),
	}, nil
}
