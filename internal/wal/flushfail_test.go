package wal

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"graphsig/internal/fault"
	"graphsig/internal/netflow"
)

func flushFailRecord(src string, t0 time.Time) netflow.Record {
	return netflow.Record{
		Src:      src,
		Dst:      "10.0.0.99",
		Start:    t0,
		Duration: time.Second,
		Sessions: 1,
		Bytes:    100,
		Packets:  2,
		Proto:    netflow.TCP,
	}
}

// TestFlushFailureRollsBack exercises the torn-tail-on-failed-flush
// bug: without rollback, a failed fsync leaves a partial frame behind
// which later successful appends land *after*, and recovery — which
// truncates at the first bad frame — silently drops those acked
// records. The fix rolls the file back to the last acked offset on any
// flush failure, so the log stays frame-aligned.
func TestFlushFailureRollsBack(t *testing.T) {
	defer fault.Reset()
	t0 := time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC)
	path := filepath.Join(t.TempDir(), "roll.wal")

	w, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]netflow.Record{flushFailRecord("10.0.0.1", t0)}); err != nil {
		t.Fatalf("append A: %v", err)
	}
	before, err := w.Size()
	if err != nil {
		t.Fatal(err)
	}

	// Fail the fsync of batch B: the write itself lands but cannot be
	// made durable, so Append must report failure AND undo the bytes.
	fault.Set("wal.sync", func() error { return errors.New("injected sync failure") })
	if err := w.Append([]netflow.Record{flushFailRecord("10.0.0.2", t0)}); err == nil {
		t.Fatal("append with failing sync should error")
	}
	fault.Clear("wal.sync")

	after, err := w.Size()
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Fatalf("failed flush left %d bytes behind (size %d, want %d)", after-before, after, before)
	}

	// A later append must start exactly where batch A ended.
	if err := w.Append([]netflow.Record{flushFailRecord("10.0.0.3", t0)}); err != nil {
		t.Fatalf("append C: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	_, rep, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TornBytes != 0 {
		t.Fatalf("TornBytes = %d, want 0 (rollback should keep the log frame-aligned)", rep.TornBytes)
	}
	got := make([]string, len(rep.Records))
	for i, r := range rep.Records {
		got[i] = r.Src
	}
	want := []string{"10.0.0.1", "10.0.0.3"}
	if len(got) != len(want) {
		t.Fatalf("replayed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replayed %v, want %v", got, want)
		}
	}
}

// TestFlushFailureMidBatch checks that when one frame of a multi-record
// batch is written before the failure, the whole batch is rolled back:
// Append is all-or-nothing.
func TestFlushFailureMidBatch(t *testing.T) {
	defer fault.Reset()
	t0 := time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC)
	path := filepath.Join(t.TempDir(), "midbatch.wal")

	w, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	fault.Set("wal.sync", func() error { return errors.New("injected sync failure") })
	batch := []netflow.Record{
		flushFailRecord("10.0.0.4", t0),
		flushFailRecord("10.0.0.5", t0),
	}
	if err := w.Append(batch); err == nil {
		t.Fatal("append with failing sync should error")
	}
	fault.Clear("wal.sync")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	_, rep, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 0 || rep.TornBytes != 0 {
		t.Fatalf("got %d records, %d torn bytes; want an empty, clean log",
			len(rep.Records), rep.TornBytes)
	}
}

// TestResetClearsBroken verifies that a log marked broken (rollback
// itself failed) recovers through Reset.
func TestResetClearsBroken(t *testing.T) {
	defer fault.Reset()
	t0 := time.Date(2024, 5, 1, 0, 0, 0, 0, time.UTC)
	path := filepath.Join(t.TempDir(), "broken.wal")

	w, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// Force the broken state directly: simulating a failed Truncate
	// would need OS-level interference, and the flag's contract is what
	// matters here.
	w.mu.Lock()
	w.broken = true
	w.mu.Unlock()

	if err := w.Append([]netflow.Record{flushFailRecord("10.0.0.6", t0)}); err == nil {
		t.Fatal("append on a broken log should fail fast")
	}
	if err := w.Reset(); err != nil {
		t.Fatalf("reset: %v", err)
	}
	if err := w.Append([]netflow.Record{flushFailRecord("10.0.0.7", t0)}); err != nil {
		t.Fatalf("append after reset: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, rep, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 1 || rep.Records[0].Src != "10.0.0.7" {
		t.Fatalf("replayed %+v, want exactly the post-reset record", rep.Records)
	}
}
