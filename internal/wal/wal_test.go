package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"graphsig/internal/fault"
	"graphsig/internal/netflow"
)

func testRecords(n int) []netflow.Record {
	origin := time.Date(2026, 3, 2, 0, 0, 0, 0, time.UTC)
	out := make([]netflow.Record, n)
	for i := range out {
		out[i] = netflow.Record{
			Src:      fmt.Sprintf("10.0.0.%d", i%7),
			Dst:      fmt.Sprintf("site-%d.example", i%5),
			Start:    origin.Add(time.Duration(i) * time.Minute),
			Duration: 250 * time.Millisecond,
			Sessions: 1 + i%3,
			Bytes:    int64(100 * (i + 1)),
			Packets:  int64(4 + i),
			Proto:    netflow.TCP,
		}
	}
	return out
}

func mustOpen(t *testing.T, path string) (*WAL, Replay) {
	t.Helper()
	w, rep, err := Open(path)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return w, rep
}

func TestAppendReplayRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	recs := testRecords(9)
	origin := recs[0].Start
	w, rep := mustOpen(t, path)
	if len(rep.Records) != 0 || !rep.Origin.IsZero() {
		t.Fatalf("fresh log replayed %+v", rep)
	}
	if err := w.AppendOrigin(origin, time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(recs[:5]); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(recs[5:]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, rep := mustOpen(t, path)
	defer w2.Close()
	if !rep.Origin.Equal(origin) || rep.Window != time.Hour {
		t.Fatalf("replayed origin %v/%v, want %v/%v", rep.Origin, rep.Window, origin, time.Hour)
	}
	if rep.TornBytes != 0 {
		t.Fatalf("clean log reported %d torn bytes", rep.TornBytes)
	}
	if len(rep.Records) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(rep.Records), len(recs))
	}
	for i, r := range rep.Records {
		if r != recs[i] {
			t.Fatalf("record %d: got %+v want %+v", i, r, recs[i])
		}
	}
}

func TestAppendAfterReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	recs := testRecords(6)
	w, _ := mustOpen(t, path)
	if err := w.Append(recs[:3]); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w, rep := mustOpen(t, path)
	if len(rep.Records) != 3 {
		t.Fatalf("replayed %d records, want 3", len(rep.Records))
	}
	if err := w.Append(recs[3:]); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, rep = mustOpen(t, path)
	if len(rep.Records) != 6 {
		t.Fatalf("after reopen+append replayed %d records, want 6", len(rep.Records))
	}
}

func TestReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	w, _ := mustOpen(t, path)
	if err := w.Append(testRecords(4)); err != nil {
		t.Fatal(err)
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	// Post-reset appends land after the header, not at a stale offset.
	if err := w.Append(testRecords(2)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, rep := mustOpen(t, path)
	if len(rep.Records) != 2 || rep.TornBytes != 0 {
		t.Fatalf("after reset replayed %d records (%d torn), want 2 clean", len(rep.Records), rep.TornBytes)
	}
}

// TestTornTailEveryOffset truncates a valid log at every possible byte
// length and checks that recovery always yields a clean prefix of the
// appended records and leaves the file appendable.
func TestTornTailEveryOffset(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.wal")
	recs := testRecords(5)
	w, _ := mustOpen(t, full)
	if err := w.AppendOrigin(recs[0].Start, time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(recs); err != nil {
		t.Fatal(err)
	}
	w.Close()
	blob, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	// Frame boundaries: cutting exactly there leaves a clean shorter
	// log; cutting anywhere else must report a torn tail.
	boundary := map[int]bool{len(header): true}
	for off := len(header); off+frameOverhead <= len(blob); {
		plen := int(uint32(blob[off+1]) | uint32(blob[off+2])<<8 | uint32(blob[off+3])<<16 | uint32(blob[off+4])<<24)
		off += frameOverhead + plen
		boundary[off] = true
	}

	for cut := len(header); cut < len(blob); cut++ {
		path := filepath.Join(dir, fmt.Sprintf("cut-%d.wal", cut))
		if err := os.WriteFile(path, blob[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w, rep := mustOpen(t, path)
		if (rep.TornBytes > 0) == boundary[cut] {
			t.Fatalf("cut %d: torn=%d, boundary=%v", cut, rep.TornBytes, boundary[cut])
		}
		for i, r := range rep.Records {
			if r != recs[i] {
				t.Fatalf("cut %d: record %d is not a prefix match", cut, i)
			}
		}
		// The repaired log must accept appends and replay them.
		if err := w.Append(recs[:1]); err != nil {
			t.Fatalf("cut %d: append after repair: %v", cut, err)
		}
		w.Close()
		_, rep2 := mustOpen(t, path)
		if len(rep2.Records) != len(rep.Records)+1 || rep2.TornBytes != 0 {
			t.Fatalf("cut %d: reopened replay got %d records (%d torn), want %d",
				cut, len(rep2.Records), rep2.TornBytes, len(rep.Records)+1)
		}
	}
}

func TestCorruptFrameStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	recs := testRecords(4)
	w, _ := mustOpen(t, path)
	if err := w.Append(recs); err != nil {
		t.Fatal(err)
	}
	w.Close()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the middle of the log: CRC catches it and
	// replay keeps only the frames before it.
	blob[len(header)+frameOverhead+(len(blob)-len(header))/2] ^= 0xFF
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rep := mustOpen(t, path)
	if len(rep.Records) >= len(recs) {
		t.Fatalf("corrupt log replayed all %d records", len(rep.Records))
	}
	if rep.TornBytes == 0 {
		t.Fatal("corruption not reflected in TornBytes")
	}
}

func TestCorruptHeaderQuarantine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	if err := os.WriteFile(path, []byte("not a wal at all, definitely"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(path)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad header surfaced as %v, want ErrCorrupt", err)
	}
	moved, err := Quarantine(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(moved); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	w, rep := mustOpen(t, path)
	defer w.Close()
	if len(rep.Records) != 0 {
		t.Fatal("fresh log after quarantine is not empty")
	}
	// A second quarantine must not clobber the first.
	if err := os.WriteFile(path+".bis", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	moved2, err := Quarantine(path + ".bis")
	if err != nil {
		t.Fatal(err)
	}
	if moved2 == moved {
		t.Fatalf("quarantine reused name %s", moved)
	}
}

func TestAppendFailpoint(t *testing.T) {
	t.Cleanup(fault.Reset)
	path := filepath.Join(t.TempDir(), "ingest.wal")
	w, _ := mustOpen(t, path)
	defer w.Close()
	boom := errors.New("sync blew up")
	fault.Set("wal.sync", func() error { return boom })
	if err := w.Append(testRecords(1)); !errors.Is(err, boom) {
		t.Fatalf("append with failing sync returned %v", err)
	}
	fault.Reset()
	if err := w.Append(testRecords(1)); err != nil {
		t.Fatalf("append after clearing failpoint: %v", err)
	}
}
