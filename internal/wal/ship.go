// WAL shipping primitives: the pieces that let a follower tail a
// primary's log over the network and let the primary seal finished
// generations as immutable segment files.
//
// The unit of replication is the byte. A follower's cursor is a plain
// byte offset into one WAL generation, starting at HeaderLen; the
// primary serves only durably fsynced bytes (ReadDurable), and the
// follower reframes them with ScanFrames using exactly the torn-tail
// rules recovery uses: an incomplete frame at the end of a chunk just
// means "wait for more bytes", while a frame that is definitively bad
// with all its bytes present (oversized length, CRC mismatch,
// undecodable payload, unknown kind) is ErrBadFrame — on a follower
// that can only mean corruption in transit or a software bug, never a
// torn write, because torn bytes are never durable on the primary.
//
// Rotate seals the current log: it renames the file aside (the caller
// names it by generation) and starts a fresh header-only log at the
// original path. Sealed segments are immutable, so the primary can
// serve them to lagging followers without holding any lock.
package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"graphsig/internal/netflow"
)

// HeaderLen is the size of the WAL file header; every generation's
// first frame starts at this offset, so it is also the initial
// follower cursor.
const HeaderLen = int64(8)

// Exported frame kinds, mirroring the on-disk constants.
const (
	FrameRecord = byte(kindRecord)
	FrameOrigin = byte(kindOrigin)
	FrameWatch  = byte(kindWatch)
	FrameBatch  = byte(kindBatch)
)

// ErrBadFrame marks a frame that is definitively invalid even though
// all of its bytes are present. ScanFrames never returns it for a
// merely incomplete tail.
var ErrBadFrame = errors.New("wal: bad frame")

// Frame is one decoded WAL frame. Kind selects which fields are set:
// FrameRecord fills Record, FrameOrigin fills Origin and Window,
// FrameWatch fills Watch, FrameBatch fills Batch.
type Frame struct {
	Kind   byte
	Record netflow.Record
	Origin time.Time
	Window time.Duration
	Watch  WatchEntry
	Batch  BatchEntry
}

// ScanFrames decodes consecutive frames from b, which must start at a
// frame boundary (i.e. the bytes after HeaderLen, or after a previous
// consumed prefix). It returns the decoded frames and how many bytes
// they covered. consumed < len(b) with a nil error means the tail is
// an incomplete frame — keep the remainder and retry once more bytes
// arrive. A non-nil error wraps ErrBadFrame: the frame at offset
// consumed is invalid with all of its bytes present, so no later byte
// can be trusted.
func ScanFrames(b []byte) (frames []Frame, consumed int64, err error) {
	for {
		rest := b[consumed:]
		if len(rest) < frameOverhead {
			return frames, consumed, nil
		}
		kind := rest[0]
		plen := binary.LittleEndian.Uint32(rest[1:5])
		want := binary.LittleEndian.Uint32(rest[5:9])
		if plen > maxPayload {
			return frames, consumed, fmt.Errorf("%w: payload length %d exceeds max %d", ErrBadFrame, plen, maxPayload)
		}
		if len(rest) < frameOverhead+int(plen) {
			return frames, consumed, nil
		}
		payload := rest[frameOverhead : frameOverhead+int(plen)]
		if crc32.ChecksumIEEE(payload) != want {
			return frames, consumed, fmt.Errorf("%w: crc mismatch at offset %d", ErrBadFrame, consumed)
		}
		var fr Frame
		fr.Kind = kind
		switch kind {
		case kindRecord:
			rec, derr := netflow.ReadRecordBinary(bytes.NewReader(payload))
			if derr != nil {
				return frames, consumed, fmt.Errorf("%w: record payload undecodable: %v", ErrBadFrame, derr)
			}
			fr.Record = rec
		case kindOrigin:
			if len(payload) != 16 {
				return frames, consumed, fmt.Errorf("%w: origin payload is %d bytes, want 16", ErrBadFrame, len(payload))
			}
			fr.Origin = time.UnixMilli(int64(binary.LittleEndian.Uint64(payload[:8]))).UTC()
			fr.Window = time.Duration(int64(binary.LittleEndian.Uint64(payload[8:16]))) * time.Millisecond
		case kindWatch:
			if derr := json.Unmarshal(payload, &fr.Watch); derr != nil {
				return frames, consumed, fmt.Errorf("%w: watch payload undecodable: %v", ErrBadFrame, derr)
			}
		case kindBatch:
			if derr := json.Unmarshal(payload, &fr.Batch); derr != nil || fr.Batch.ID == "" {
				return frames, consumed, fmt.Errorf("%w: batch payload undecodable", ErrBadFrame)
			}
		default:
			return frames, consumed, fmt.Errorf("%w: unknown frame kind %d", ErrBadFrame, kind)
		}
		frames = append(frames, fr)
		consumed += int64(frameOverhead) + int64(plen)
	}
}

// DurableSize reports the offset after the last durably fsynced frame
// — the replication high-water mark. Bytes past it may be a frame in
// flight and must never be shipped.
func (w *WAL) DurableSize() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.good
}

// ReadDurable reads up to max bytes of durable log starting at byte
// offset from (which must be within [HeaderLen, DurableSize]). It
// returns an empty slice when from is exactly the durable size. The
// read is served under the WAL lock so it can never observe a
// partially flushed or rolled-back frame.
func (w *WAL) ReadDurable(from int64, max int) ([]byte, error) {
	if max <= 0 {
		return nil, fmt.Errorf("wal: ReadDurable max %d", max)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if from < HeaderLen || from > w.good {
		return nil, fmt.Errorf("wal: ReadDurable offset %d outside [%d, %d]", from, HeaderLen, w.good)
	}
	n := w.good - from
	if n > int64(max) {
		n = int64(max)
	}
	if n == 0 {
		return nil, nil
	}
	buf := make([]byte, n)
	if _, err := w.f.ReadAt(buf, from); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return buf, nil
}

// Rotate seals the current log as the immutable file dst and starts a
// fresh, empty generation at the original path. Any undurable tail is
// truncated first (sealed segments contain exactly the durable
// bytes), which also heals a broken log — the suspect tail is cut
// off, and the new generation starts clean. The caller should
// AppendOrigin on the fresh log right after, exactly as after Reset.
func (w *WAL) Rotate(dst string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Truncate(w.good); err != nil {
		return fmt.Errorf("wal: rotate truncate: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: rotate sync: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("wal: rotate close: %w", err)
	}
	if err := os.Rename(w.path, dst); err != nil {
		// The old file is closed but still in place; reopen it so the
		// WAL stays usable and the caller can retry.
		if f, oerr := os.OpenFile(w.path, os.O_RDWR, 0o644); oerr == nil {
			if _, serr := f.Seek(w.good, io.SeekStart); serr == nil {
				w.f = f
				w.broken = false
			} else {
				f.Close()
				w.broken = true
			}
		} else {
			w.broken = true
		}
		return fmt.Errorf("wal: rotate rename: %w", err)
	}
	f, err := os.OpenFile(w.path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		w.broken = true
		return fmt.Errorf("wal: rotate reopen: %w", err)
	}
	if _, err := f.Write(header); err != nil {
		f.Close()
		w.broken = true
		return fmt.Errorf("wal: rotate header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		w.broken = true
		return fmt.Errorf("wal: rotate header sync: %w", err)
	}
	w.f = f
	w.good = HeaderLen
	w.broken = false
	return nil
}
