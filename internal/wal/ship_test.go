package wal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// tailFrom reads the durable log from offset from in chunks, exactly
// as a follower would, and returns the decoded frames.
func tailFrom(t *testing.T, w *WAL, from int64, chunk int) []Frame {
	t.Helper()
	var frames []Frame
	var pending []byte
	for {
		b, err := w.ReadDurable(from, chunk)
		if err != nil {
			t.Fatalf("ReadDurable(%d): %v", from, err)
		}
		if len(b) == 0 {
			if len(pending) != 0 {
				t.Fatalf("durable log ended mid-frame with %d pending bytes", len(pending))
			}
			return frames
		}
		from += int64(len(b))
		pending = append(pending, b...)
		fs, consumed, err := ScanFrames(pending)
		if err != nil {
			t.Fatalf("ScanFrames: %v", err)
		}
		frames = append(frames, fs...)
		pending = pending[consumed:]
	}
}

func TestShipScanFramesRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ship.wal")
	w, _ := mustOpen(t, path)
	defer w.Close()
	recs := testRecords(7)
	origin := recs[0].Start
	if err := w.AppendOrigin(origin, time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(recs); err != nil {
		t.Fatal(err)
	}
	if got, size := w.DurableSize(), mustSize(t, w); got != size {
		t.Fatalf("DurableSize %d != file size %d after clean appends", got, size)
	}

	// Tail with a tiny chunk size to force incomplete-tail handling.
	frames := tailFrom(t, w, HeaderLen, 5)
	if len(frames) != 1+len(recs) {
		t.Fatalf("got %d frames, want %d", len(frames), 1+len(recs))
	}
	if frames[0].Kind != FrameOrigin || !frames[0].Origin.Equal(origin) || frames[0].Window != time.Hour {
		t.Fatalf("origin frame = %+v", frames[0])
	}
	for i, fr := range frames[1:] {
		if fr.Kind != FrameRecord {
			t.Fatalf("frame %d kind = %d", i+1, fr.Kind)
		}
		if !reflect.DeepEqual(fr.Record, recs[i]) {
			t.Fatalf("record %d roundtrip mismatch:\n got %+v\nwant %+v", i, fr.Record, recs[i])
		}
	}
}

func TestShipScanFramesBadFrame(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.wal")
	w, _ := mustOpen(t, path)
	if err := w.Append(testRecords(2)); err != nil {
		t.Fatal(err)
	}
	b, err := w.ReadDurable(HeaderLen, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Truncated tail: nil error, partial consumption.
	fs, consumed, err := ScanFrames(b[:len(b)-3])
	if err != nil || len(fs) != 1 || consumed >= int64(len(b)-3) {
		t.Fatalf("truncated tail: frames=%d consumed=%d err=%v", len(fs), consumed, err)
	}

	// Flipped payload byte with all bytes present: ErrBadFrame.
	c := append([]byte(nil), b...)
	c[len(c)-1] ^= 0xff
	if _, _, err := ScanFrames(c); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("corrupt payload: err=%v, want ErrBadFrame", err)
	}
	// Absurd length field: ErrBadFrame even with a short buffer.
	c = append([]byte(nil), b...)
	c[frameOverhead+int(c[1])+4] = 0xff // high byte of second frame's len
	if _, _, err := ScanFrames(c); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized length: err=%v, want ErrBadFrame", err)
	}
	// Unknown kind.
	c = append([]byte(nil), b...)
	c[0] = 99
	if _, _, err := ScanFrames(c); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("unknown kind: err=%v, want ErrBadFrame", err)
	}
}

func TestShipReadDurableBounds(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bounds.wal")
	w, _ := mustOpen(t, path)
	defer w.Close()
	if err := w.Append(testRecords(1)); err != nil {
		t.Fatal(err)
	}
	size := w.DurableSize()
	if b, err := w.ReadDurable(size, 64); err != nil || len(b) != 0 {
		t.Fatalf("read at high-water mark: %d bytes, err=%v", len(b), err)
	}
	if _, err := w.ReadDurable(size+1, 64); err == nil {
		t.Fatal("read past durable size succeeded")
	}
	if _, err := w.ReadDurable(0, 64); err == nil {
		t.Fatal("read inside header succeeded")
	}
	if _, err := w.ReadDurable(HeaderLen, 0); err == nil {
		t.Fatal("zero max succeeded")
	}
}

func TestShipRotate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gen.wal")
	sealed := path + ".g00000000"
	w, _ := mustOpen(t, path)
	defer w.Close()
	recs := testRecords(6)
	if err := w.AppendOrigin(recs[0].Start, time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(recs[:4]); err != nil {
		t.Fatal(err)
	}
	preSize := w.DurableSize()

	if err := w.Rotate(sealed); err != nil {
		t.Fatal(err)
	}
	if got := w.DurableSize(); got != HeaderLen {
		t.Fatalf("post-rotate durable size = %d, want %d", got, HeaderLen)
	}
	// The fresh generation accepts appends and records land after the
	// header only.
	if err := w.AppendOrigin(recs[0].Start, time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(recs[4:]); err != nil {
		t.Fatal(err)
	}
	frames := tailFrom(t, w, HeaderLen, 1<<20)
	if len(frames) != 3 || frames[0].Kind != FrameOrigin ||
		!reflect.DeepEqual(frames[1].Record, recs[4]) || !reflect.DeepEqual(frames[2].Record, recs[5]) {
		t.Fatalf("fresh generation frames = %+v", frames)
	}

	// The sealed segment is a complete standalone WAL: header plus
	// exactly the pre-rotate durable bytes, scannable end to end.
	b, err := os.ReadFile(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(b)) != preSize {
		t.Fatalf("sealed segment is %d bytes, want %d", len(b), preSize)
	}
	if !bytes.Equal(b[:HeaderLen], header) {
		t.Fatalf("sealed segment header = %q", b[:HeaderLen])
	}
	fs, consumed, err := ScanFrames(b[HeaderLen:])
	if err != nil || consumed != int64(len(b))-HeaderLen {
		t.Fatalf("sealed scan: consumed=%d err=%v", consumed, err)
	}
	if len(fs) != 5 {
		t.Fatalf("sealed segment has %d frames, want 5", len(fs))
	}
	for i := range recs[:4] {
		if !reflect.DeepEqual(fs[i+1].Record, recs[i]) {
			t.Fatalf("sealed record %d mismatch", i)
		}
	}
}

func mustSize(t *testing.T, w *WAL) int64 {
	t.Helper()
	n, err := w.Size()
	if err != nil {
		t.Fatal(err)
	}
	return n
}
