package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"graphsig/internal/netflow"
)

// FuzzWALReplay feeds arbitrary file contents to Open's recovery scan.
// Whatever the bytes, recovery must not panic, must repair the file in
// place (a second Open sees the same records and a clean tail), and the
// repaired log must accept appends.
func FuzzWALReplay(f *testing.F) {
	dir := f.TempDir()
	seed := filepath.Join(dir, "seed.wal")
	w, _, err := Open(seed)
	if err != nil {
		f.Fatal(err)
	}
	if err := w.AppendOrigin(time.Date(2026, 3, 2, 0, 0, 0, 0, time.UTC), 5*time.Minute); err != nil {
		f.Fatal(err)
	}
	if err := w.Append([]netflow.Record{{
		Src: "a", Dst: "b",
		Start:    time.Date(2026, 3, 2, 0, 1, 0, 0, time.UTC),
		Proto:    netflow.TCP,
		Sessions: 2, Bytes: 100, Packets: 3,
	}}); err != nil {
		f.Fatal(err)
	}
	w.Close()
	clean, err := os.ReadFile(seed)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(clean)
	f.Add(clean[:len(clean)-5])                  // torn tail
	f.Add(append(append([]byte{}, clean...), 1)) // trailing partial frame
	f.Add([]byte("GSWALv1\n"))                   // header only
	f.Add([]byte("not a wal"))                   // destroyed header
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, rep, err := Open(path)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Open returned a non-corruption error: %v", err)
			}
			return
		}
		// Recovery repaired in place: the surviving prefix must replay
		// identically, with nothing further to tear off.
		w.Close()
		w2, rep2, err := Open(path)
		if err != nil {
			t.Fatalf("reopening a repaired log failed: %v", err)
		}
		defer w2.Close()
		if rep2.TornBytes != 0 {
			t.Fatalf("repaired log still has %d torn bytes", rep2.TornBytes)
		}
		if len(rep2.Records) != len(rep.Records) {
			t.Fatalf("repaired log replays %d records, first pass saw %d", len(rep2.Records), len(rep.Records))
		}
		if !rep2.Origin.Equal(rep.Origin) || rep2.Window != rep.Window {
			t.Fatalf("origin changed across reopen: (%v, %v) != (%v, %v)",
				rep2.Origin, rep2.Window, rep.Origin, rep.Window)
		}
		// The repaired log must still be appendable and the append durable.
		rec := netflow.Record{
			Src: "x", Dst: "y",
			Start:    time.Date(2026, 3, 2, 1, 0, 0, 0, time.UTC),
			Proto:    netflow.TCP,
			Sessions: 1, Bytes: 1, Packets: 1,
		}
		if err := w2.Append([]netflow.Record{rec}); err != nil {
			t.Fatalf("append to repaired log failed: %v", err)
		}
		w2.Close()
		w3, rep3, err := Open(path)
		if err != nil {
			t.Fatalf("reopen after append failed: %v", err)
		}
		defer w3.Close()
		if len(rep3.Records) != len(rep2.Records)+1 {
			t.Fatalf("append lost: %d records, want %d", len(rep3.Records), len(rep2.Records)+1)
		}
		got := rep3.Records[len(rep3.Records)-1]
		if got.Src != rec.Src || got.Dst != rec.Dst || !got.Start.Equal(rec.Start) {
			t.Fatalf("appended record replayed as %+v", got)
		}
	})
}
