// Package wal implements the write-ahead log behind sigserverd's
// ingest path. The §VI streaming pipeline holds the still-open
// window's sketch state only in memory; the WAL makes that window
// crash-safe by appending every accepted flow record (in the netflow
// per-record binary encoding, wrapped in a CRC32 frame) and fsyncing
// once per ingest batch. After a kill -9 the server replays the log
// through a fresh pipeline and loses at most the last unsynced batch.
//
// The log is a redo log of accepted records, not a classical
// undo/redo WAL: entries are written after the pipeline accepts them,
// so a replay re-accepts every entry and never re-rejects. It is
// truncated (Reset) whenever the archived windows it covers have been
// committed to a durable snapshot — see internal/server's checkpoint
// logic — and the pipeline's window origin is re-recorded after every
// truncation so window indices stay aligned across restarts even when
// the log is empty.
//
// On-disk format, all integers little-endian:
//
//	header:  8 bytes "GSWALv1\n"
//	frame:   u8 kind, u32 payloadLen, u32 crc32(payload), payload
//	kinds:   1 = flow record (netflow per-record binary encoding)
//	         2 = origin     (i64 originUnixMs, i64 windowMs)
//	         3 = watch      (JSON WatchEntry: a watchlist mutation)
//	         4 = batch      (JSON BatchEntry: an applied ingest batch ID
//	                         plus its recorded result, for dedup)
//
// Recovery scans frames until the first torn or corrupt one and
// truncates the file there: a partially flushed tail is expected after
// a crash and silently (but countedly) dropped, because once framing
// is lost nothing after it can be trusted.
package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"graphsig/internal/fault"
	"graphsig/internal/netflow"
	"graphsig/internal/obs"
)

var header = []byte("GSWALv1\n")

const (
	kindRecord = 1
	kindOrigin = 2
	kindWatch  = 3
	kindBatch  = 4

	frameOverhead = 1 + 4 + 4 // kind + len + crc
	// maxPayload rejects absurd frame lengths during recovery so a
	// corrupt length field cannot trigger a huge allocation.
	maxPayload = 1 << 20
)

// ErrCorrupt marks a log whose header is unreadable — the file is not
// a WAL at all (or its first bytes were destroyed). Callers should
// quarantine the file and start fresh; a torn tail is NOT this error,
// it is repaired in place by Open.
var ErrCorrupt = errors.New("wal: corrupt log header")

// WatchEntry is one watchlist mutation in wire form: a signature
// (labels + weights, the cross-process identity) archived under an
// individual key at a window index. Logged so recovery rebuilds the
// (otherwise memory-only) watchlist and so followers screen the same
// entries the primary does.
type WatchEntry struct {
	Individual string    `json:"individual"`
	Window     int       `json:"window"`
	Nodes      []string  `json:"nodes"`
	Weights    []float64 `json:"weights"`
}

// BatchEntry marks an applied ingest batch: the dedup ID plus the
// recorded result (opaque JSON to this package). A follower that
// replays it registers the ID in its own dedup set, so a client retry
// after the follower's promotion returns the original accounting
// instead of double-applying — exactly-once across failover.
type BatchEntry struct {
	ID     string          `json:"id"`
	Result json.RawMessage `json:"result,omitempty"`
}

// Replay is what Open recovered from an existing log.
type Replay struct {
	// Frames holds every recovered frame in append order — the
	// authoritative replay sequence (record/watch/batch interleaving
	// matters: a watch entry screens only windows that close after it).
	Frames []Frame
	// Records are the framed flow records, in append order (the
	// FrameRecord subsequence of Frames, kept for convenience).
	Records []netflow.Record
	// Origin and Window are the pipeline alignment from the last origin
	// frame; Origin.IsZero() means none was recorded.
	Origin time.Time
	Window time.Duration
	// TornBytes counts bytes dropped from a torn or corrupt tail.
	TornBytes int64
}

// WAL is an append-only, CRC-framed flow record log. Methods are
// goroutine-safe.
//
// Append is all-or-nothing: a failed write or fsync rolls the file back
// to the last durably acked offset, so a transient failure can never
// leave a partial frame in the middle of the log. Without the rollback,
// later (successful) appends would land after the torn region and
// recovery — which truncates at the first bad frame — would silently
// drop them, losing records the caller was told were durable.
type WAL struct {
	mu   sync.Mutex
	f    *os.File
	path string
	buf  bytes.Buffer // frame scratch, reused across appends
	good int64        // offset after the last durably acked frame
	// broken flips when a failed flush could not be rolled back: the
	// tail may hold a partial frame, so further appends would be
	// silently unrecoverable. Every later Append fails fast instead;
	// a successful Reset restores a consistent (empty) log.
	broken bool

	// Optional instrumentation (nil handles no-op; see internal/obs).
	syncHist   *obs.Histogram // write+fsync latency per flushed batch
	bytesTotal *obs.Counter   // framed bytes appended
}

// Instrument attaches observability handles: syncHist observes the
// write+fsync latency of every flushed batch (seconds), bytesTotal
// counts framed bytes appended. Either may be nil. Call before sharing
// the WAL across goroutines.
func (w *WAL) Instrument(syncHist *obs.Histogram, bytesTotal *obs.Counter) {
	w.syncHist = syncHist
	w.bytesTotal = bytesTotal
}

// Open opens (creating if absent) the log at path, replays its frames,
// repairs a torn tail by truncating it, and leaves the file positioned
// for appends. A destroyed header surfaces as ErrCorrupt — quarantine
// with Quarantine and Open again.
func Open(path string) (*WAL, Replay, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, Replay{}, fmt.Errorf("wal: %w", err)
	}
	w := &WAL{f: f, path: path}
	rep, err := w.recover()
	if err != nil {
		f.Close()
		return nil, Replay{}, err
	}
	return w, rep, nil
}

// recover validates the header (writing one into an empty file), scans
// frames, and truncates at the first bad one.
func (w *WAL) recover() (Replay, error) {
	info, err := w.f.Stat()
	if err != nil {
		return Replay{}, fmt.Errorf("wal: %w", err)
	}
	if info.Size() == 0 {
		if _, err := w.f.Write(header); err != nil {
			return Replay{}, fmt.Errorf("wal: writing header: %w", err)
		}
		if err := w.f.Sync(); err != nil {
			return Replay{}, fmt.Errorf("wal: %w", err)
		}
		w.good = int64(len(header))
		return Replay{}, nil
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return Replay{}, fmt.Errorf("wal: %w", err)
	}
	br := bufio.NewReader(w.f)
	got := make([]byte, len(header))
	if _, err := io.ReadFull(br, got); err != nil || !bytes.Equal(got, header) {
		return Replay{}, fmt.Errorf("%w: %s", ErrCorrupt, w.path)
	}

	var rep Replay
	good := int64(len(header)) // offset past the last valid frame
	var hdr [frameOverhead]byte
scan:
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			break // clean EOF or torn frame header
		}
		kind := hdr[0]
		plen := binary.LittleEndian.Uint32(hdr[1:5])
		want := binary.LittleEndian.Uint32(hdr[5:9])
		if plen > maxPayload {
			break
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != want {
			break
		}
		switch kind {
		case kindRecord:
			rec, err := netflow.ReadRecordBinary(bytes.NewReader(payload))
			if err != nil {
				// CRC passed but the payload does not decode: a writer
				// bug, not a torn write. Still safest to stop here.
				break scan
			}
			rep.Records = append(rep.Records, rec)
			rep.Frames = append(rep.Frames, Frame{Kind: kindRecord, Record: rec})
		case kindOrigin:
			if len(payload) != 16 {
				break scan
			}
			rep.Origin = time.UnixMilli(int64(binary.LittleEndian.Uint64(payload[:8]))).UTC()
			rep.Window = time.Duration(int64(binary.LittleEndian.Uint64(payload[8:16]))) * time.Millisecond
			rep.Frames = append(rep.Frames, Frame{Kind: kindOrigin, Origin: rep.Origin, Window: rep.Window})
		case kindWatch:
			var e WatchEntry
			if json.Unmarshal(payload, &e) != nil {
				break scan
			}
			rep.Frames = append(rep.Frames, Frame{Kind: kindWatch, Watch: e})
		case kindBatch:
			var e BatchEntry
			if json.Unmarshal(payload, &e) != nil || e.ID == "" {
				break scan
			}
			rep.Frames = append(rep.Frames, Frame{Kind: kindBatch, Batch: e})
		default:
			// Unknown frame kind: written by a future version. Stop, as
			// replay semantics past it are undefined.
			break scan
		}
		good += int64(frameOverhead) + int64(plen)
	}
	rep.TornBytes = info.Size() - good
	if rep.TornBytes > 0 {
		if err := w.f.Truncate(good); err != nil {
			return Replay{}, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		if err := w.f.Sync(); err != nil {
			return Replay{}, fmt.Errorf("wal: %w", err)
		}
	}
	if _, err := w.f.Seek(good, io.SeekStart); err != nil {
		return Replay{}, fmt.Errorf("wal: %w", err)
	}
	w.good = good
	return rep, nil
}

// Path reports the log's file path.
func (w *WAL) Path() string { return w.path }

// Append frames and appends the records, then fsyncs — one sync per
// batch, so a crash loses at most the records of the batch in flight.
// Appending no records is a no-op.
func (w *WAL) Append(records []netflow.Record) error {
	if len(records) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Reset()
	var payload bytes.Buffer
	for i := range records {
		payload.Reset()
		if err := netflow.WriteRecordBinary(&payload, &records[i]); err != nil {
			return fmt.Errorf("wal: record %d: %w", i, err)
		}
		w.frame(kindRecord, payload.Bytes())
	}
	return w.flush()
}

// AppendOrigin records the pipeline's window alignment so replay after
// a restart computes the same window indices, and fsyncs.
func (w *WAL) AppendOrigin(origin time.Time, window time.Duration) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	var payload [16]byte
	binary.LittleEndian.PutUint64(payload[:8], uint64(origin.UnixMilli()))
	binary.LittleEndian.PutUint64(payload[8:16], uint64(window.Milliseconds()))
	w.buf.Reset()
	w.frame(kindOrigin, payload[:])
	return w.flush()
}

// AppendWatches frames and appends watchlist mutations, one frame per
// entry, then fsyncs once for the whole batch — the server re-logs its
// full watch set after every checkpoint, so the batched flush keeps
// that O(1) fsyncs. Appending no entries is a no-op.
func (w *WAL) AppendWatches(entries []WatchEntry) error {
	if len(entries) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Reset()
	for i := range entries {
		payload, err := json.Marshal(&entries[i])
		if err != nil {
			return fmt.Errorf("wal: watch entry %d: %w", i, err)
		}
		w.frame(kindWatch, payload)
	}
	return w.flush()
}

// AppendBatch frames and appends one applied-batch marker and fsyncs.
func (w *WAL) AppendBatch(e BatchEntry) error {
	if e.ID == "" {
		return fmt.Errorf("wal: batch entry needs an ID")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	payload, err := json.Marshal(&e)
	if err != nil {
		return fmt.Errorf("wal: batch entry: %w", err)
	}
	w.buf.Reset()
	w.frame(kindBatch, payload)
	return w.flush()
}

// frame appends one frame for payload to the scratch buffer.
func (w *WAL) frame(kind byte, payload []byte) {
	var hdr [frameOverhead]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:9], crc32.ChecksumIEEE(payload))
	w.buf.Write(hdr[:])
	w.buf.Write(payload)
}

// flush writes the scratch buffer and syncs. On any failure it rolls
// the file back to the last acked offset so no partial frame survives
// in the middle of the log (see the WAL doc comment). Callers hold
// w.mu.
func (w *WAL) flush() error {
	if w.broken {
		return fmt.Errorf("wal: log broken by an earlier unrecoverable flush failure")
	}
	begin := time.Now()
	err := w.writeAndSync()
	if err != nil {
		// Roll back whatever partial frame the failed write left behind.
		if _, serr := w.f.Seek(w.good, io.SeekStart); serr == nil {
			serr = w.f.Truncate(w.good)
			if serr != nil {
				w.broken = true
				return fmt.Errorf("wal: rollback after failed flush: %v (original: %w)", serr, err)
			}
		} else {
			w.broken = true
			return fmt.Errorf("wal: rollback after failed flush: %v (original: %w)", serr, err)
		}
		return err
	}
	w.good += int64(w.buf.Len())
	w.syncHist.ObserveSince(begin)
	w.bytesTotal.Add(int64(w.buf.Len()))
	return nil
}

// writeAndSync performs the raw write+fsync of the scratch buffer.
func (w *WAL) writeAndSync() error {
	if err := fault.Inject("wal.write"); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := w.f.Write(w.buf.Bytes()); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := fault.Inject("wal.sync"); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// Reset truncates the log back to its header — called after the
// windows it covered were committed to a durable snapshot. The caller
// should AppendOrigin again right after, so alignment survives even an
// empty log.
func (w *WAL) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := fault.Inject("wal.reset"); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := w.f.Truncate(int64(len(header))); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := w.f.Seek(int64(len(header)), io.SeekStart); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	w.good = int64(len(header))
	w.broken = false
	return nil
}

// Size reports the current log size in bytes.
func (w *WAL) Size() (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	info, err := w.f.Stat()
	if err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	return info.Size(), nil
}

// Close closes the underlying file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// Quarantine renames a log that failed to open aside (path.corrupt,
// path.corrupt.1, ...) and returns the new name, so the server can
// start a fresh log without destroying the evidence.
func Quarantine(path string) (string, error) {
	dst := path + ".corrupt"
	for i := 1; ; i++ {
		if _, err := os.Stat(dst); os.IsNotExist(err) {
			break
		}
		dst = fmt.Sprintf("%s.corrupt.%d", path, i)
	}
	if err := os.Rename(path, dst); err != nil {
		return "", fmt.Errorf("wal: quarantine: %w", err)
	}
	return dst, nil
}
