package wal

import (
	"encoding/json"
	"path/filepath"
	"testing"
	"time"
)

// TestWatchBatchReplayRoundtrip checks the watch/batch frame kinds:
// they must survive Close/Open with payloads intact and with their
// interleaving against record frames preserved in Replay.Frames —
// a watch entry screens only windows closing after it, so order is
// part of the contract.
func TestWatchBatchReplayRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	recs := testRecords(4)
	w, _ := mustOpen(t, path)
	if err := w.AppendOrigin(recs[0].Start, time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(recs[:2]); err != nil {
		t.Fatal(err)
	}
	watches := []WatchEntry{
		{Individual: "case-1", Window: 3, Nodes: []string{"a", "b"}, Weights: []float64{1, 2.5}},
		{Individual: "case-1", Window: 4, Nodes: []string{"c"}, Weights: []float64{0.25}},
	}
	if err := w.AppendWatches(watches); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(recs[2:]); err != nil {
		t.Fatal(err)
	}
	batch := BatchEntry{ID: "b-1", Result: json.RawMessage(`{"accepted":2}`)}
	if err := w.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, rep := mustOpen(t, path)
	defer w2.Close()
	if rep.TornBytes != 0 {
		t.Fatalf("clean log reported %d torn bytes", rep.TornBytes)
	}
	wantKinds := []byte{
		FrameOrigin, FrameRecord, FrameRecord,
		FrameWatch, FrameWatch,
		FrameRecord, FrameRecord, FrameBatch,
	}
	if len(rep.Frames) != len(wantKinds) {
		t.Fatalf("replayed %d frames, want %d", len(rep.Frames), len(wantKinds))
	}
	for i, fr := range rep.Frames {
		if fr.Kind != wantKinds[i] {
			t.Fatalf("frame %d kind %d, want %d", i, fr.Kind, wantKinds[i])
		}
	}
	for i, want := range watches {
		got := rep.Frames[3+i].Watch
		if got.Individual != want.Individual || got.Window != want.Window ||
			len(got.Nodes) != len(want.Nodes) || len(got.Weights) != len(want.Weights) {
			t.Fatalf("watch frame %d = %+v, want %+v", i, got, want)
		}
	}
	got := rep.Frames[7].Batch
	if got.ID != batch.ID || string(got.Result) != string(batch.Result) {
		t.Fatalf("batch frame = %+v, want %+v", got, batch)
	}
	// Records still extract as the FrameRecord subsequence.
	if len(rep.Records) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(rep.Records), len(recs))
	}
}

// TestAppendBatchRejectsEmptyID: an ID-less batch marker would replay
// as a no-op dedup entry; the writer must refuse it outright.
func TestAppendBatchRejectsEmptyID(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	w, _ := mustOpen(t, path)
	defer w.Close()
	if err := w.AppendBatch(BatchEntry{}); err == nil {
		t.Fatal("AppendBatch accepted an empty ID")
	}
}

// TestScanFramesWatchBatch checks the shipping-side decoder on the new
// kinds, including the bad-frame contract: a structurally valid frame
// whose payload cannot decode is ErrBadFrame (corruption), not a torn
// tail.
func TestScanFramesWatchBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	w, _ := mustOpen(t, path)
	if err := w.AppendWatches([]WatchEntry{{Individual: "i", Window: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBatch(BatchEntry{ID: "x"}); err != nil {
		t.Fatal(err)
	}
	size := w.DurableSize()
	data, err := w.ReadDurable(HeaderLen, int(size-HeaderLen))
	if err != nil {
		t.Fatal(err)
	}
	w.Close()

	frames, consumed, err := ScanFrames(data)
	if err != nil {
		t.Fatal(err)
	}
	if consumed != int64(len(data)) {
		t.Fatalf("consumed %d of %d bytes", consumed, len(data))
	}
	if len(frames) != 2 || frames[0].Kind != FrameWatch || frames[1].Kind != FrameBatch {
		t.Fatalf("frames = %+v", frames)
	}
	if frames[0].Watch.Individual != "i" || frames[1].Batch.ID != "x" {
		t.Fatalf("payloads = %+v / %+v", frames[0].Watch, frames[1].Batch)
	}
}
