package core

import (
	"math"
	"math/rand"
	"testing"
)

// TestFlatSigsMatchesSortedSig checks the SoA view's per-signature data
// against the per-signature SortedSig builder: same sorted order, same
// folds, bit-for-bit.
func TestFlatSigsMatchesSortedSig(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var sigs []Signature
	for i := 0; i < 60; i++ {
		sigs = append(sigs, randSig(rng, 12, rng.Intn(30), 40))
	}
	sigs = append(sigs, Signature{}, Signature{})
	flat := NewFlatSigs(sigs)
	if flat.NumSigs() != len(sigs) {
		t.Fatalf("NumSigs = %d, want %d", flat.NumSigs(), len(sigs))
	}
	for i, s := range sigs {
		v := NewSortedSig(s)
		if flat.Len(i) != v.Len() || flat.IsEmpty(i) != v.IsEmpty() {
			t.Fatalf("sig %d: len/empty mismatch", i)
		}
		for tdx, u := range flat.SortedNodes(i) {
			if u != v.SortedNodes()[tdx] {
				t.Fatalf("sig %d: sorted node %d = %d, want %d", i, tdx, u, v.SortedNodes()[tdx])
			}
			if flat.Nodes(i)[flat.Pos(i)[tdx]] != u {
				t.Fatalf("sig %d: pos[%d] does not map back to sorted node", i, tdx)
			}
		}
		if math.Float64bits(flat.WeightSum(i)) != math.Float64bits(v.WeightSum()) {
			t.Fatalf("sig %d: sum mismatch", i)
		}
		if math.Float64bits(flat.SumSq(i)) != math.Float64bits(v.sumSq) {
			t.Fatalf("sig %d: sumSq mismatch", i)
		}
		if math.Float64bits(flat.Norm(i)) != math.Float64bits(math.Sqrt(v.sumSq)) {
			t.Fatalf("sig %d: norm mismatch", i)
		}
		for tdx := range flat.NormWeights(i) {
			if math.Float64bits(flat.NormWeights(i)[tdx]) != math.Float64bits(v.normW[tdx]) {
				t.Fatalf("sig %d: normW[%d] mismatch", i, tdx)
			}
		}
	}
}

// TestFlatSigsPrefixSums checks the canonical-order prefix arrays: the
// top-m accessors must equal a direct fold of the first m canonical
// entries, clamp out of range, and the full prefix must equal the sum.
func TestFlatSigsPrefixSums(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var sigs []Signature
	for i := 0; i < 40; i++ {
		sigs = append(sigs, randSig(rng, 10, 0, 25))
	}
	flat := NewFlatSigs(sigs)
	for i := range sigs {
		w := flat.Weights(i)
		nw := flat.NormWeights(i)
		sumW, sumSq, sumN := 0.0, 0.0, 0.0
		for m := 1; m <= len(w); m++ {
			sumW += w[m-1]
			sumSq += w[m-1] * w[m-1]
			sumN += nw[m-1]
			if flat.TopWeightSum(i, m) != sumW || flat.TopSqSum(i, m) != sumSq || flat.TopNormSum(i, m) != sumN {
				t.Fatalf("sig %d: prefix sums diverge at m=%d", i, m)
			}
		}
		if flat.TopWeightSum(i, 0) != 0 || flat.TopWeightSum(i, -1) != 0 {
			t.Fatalf("sig %d: m<=0 must read 0", i)
		}
		if got := flat.TopWeightSum(i, len(w)+5); got != sumW {
			t.Fatalf("sig %d: overshoot m must clamp to full sum, got %v want %v", i, got, sumW)
		}
		if math.Float64bits(flat.TopWeightSum(i, len(w))) != math.Float64bits(flat.WeightSum(i)) {
			t.Fatalf("sig %d: full prefix != sum", i)
		}
		// Canonical order is weight-descending, so the prefix is the max
		// achievable sum for any m entries.
		for m := 1; m <= len(w); m++ {
			pick := 0.0
			for _, x := range w[len(w)-m:] {
				pick += x
			}
			if flat.TopWeightSum(i, m) < pick-1e-12 {
				t.Fatalf("sig %d: top-%d prefix %v below a real subset sum %v", i, m, flat.TopWeightSum(i, m), pick)
			}
		}
	}
}

// TestFlatSigsResetReuse checks the zero-allocation recycle contract:
// once grown, Reset with same-or-smaller inputs allocates nothing and
// produces the same view a fresh build does.
func TestFlatSigsResetReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	big := make([]Signature, 20)
	for i := range big {
		big[i] = randSig(rng, 12, 0, 40)
	}
	small := []Signature{randSig(rng, 6, 0, 20), {}}

	f := NewFlatSigs(big)
	allocs := testing.AllocsPerRun(20, func() {
		f.Reset(small)
		f.Reset(big)
	})
	if allocs != 0 {
		t.Fatalf("Reset allocated %.1f times per cycle, want 0", allocs)
	}

	f.Reset(small)
	fresh := NewFlatSigs(small)
	kern, _ := NewDistKernel(Cosine{})
	for i := range small {
		for j := range small {
			a, b := kern.FlatDist(f, i, f, j), kern.FlatDist(fresh, i, fresh, j)
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("recycled view dist(%d,%d)=%v != fresh %v", i, j, a, b)
			}
		}
	}
}

// TestFlatDistLargeSig pushes a signature past the insertion-sort
// cutoff to exercise the heapsort path.
func TestFlatDistLargeSig(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randSig(rng, 2*insertionSortCutoff, 0, 4*insertionSortCutoff)
	for len(a.Nodes) <= insertionSortCutoff {
		a = randSig(rng, 2*insertionSortCutoff, 0, 4*insertionSortCutoff)
	}
	b := randSig(rng, 2*insertionSortCutoff, 0, 4*insertionSortCutoff)
	flat := NewFlatSigs([]Signature{a, b})
	for _, d := range ExtendedDistances() {
		kern, _ := NewDistKernel(d)
		want := d.Dist(a, b)
		if got := kern.FlatDist(flat, 0, flat, 1); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("%s: flat %v != naive %v on large sigs", d.Name(), got, want)
		}
	}
}

// TestScatterFinishMatchesFlatDist checks the O(1) scatter finishers
// against the full flat kernel for the three scatterable kinds.
func TestScatterFinishMatchesFlatDist(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var sigs []Signature
	for i := 0; i < 30; i++ {
		sigs = append(sigs, randSig(rng, 10, 0, 25))
	}
	flat := NewFlatSigs(sigs)
	for _, d := range []Distance{Jaccard{}, Dice{}, Cosine{}} {
		kern, _ := NewDistKernel(d)
		for i := range sigs {
			for j := range sigs {
				if flat.IsEmpty(i) && flat.IsEmpty(j) {
					continue
				}
				kern.mergeFlat(flat, i, flat, j)
				kern.sortMatchesByA()
				var cnt int32
				acc := 0.0
				aw, bw := flat.Weights(i), flat.Weights(j)
				for _, m := range kern.matches {
					cnt++
					switch kern.Kind() {
					case KindDice:
						acc += aw[m.A] + bw[m.B]
					case KindCosine:
						acc += aw[m.A] * bw[m.B]
					}
				}
				want := kern.FlatDist(flat, i, flat, j)
				got := kern.ScatterFinish(flat, i, flat, j, cnt, acc)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("%s: ScatterFinish(%d,%d)=%v != FlatDist %v", d.Name(), i, j, got, want)
				}
			}
		}
	}
}
