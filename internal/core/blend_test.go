package core

import (
	"math"
	"testing"
	"testing/quick"

	"graphsig/internal/graph"
)

func TestBlendValidation(t *testing.T) {
	_, w := testGraph(t, true)
	cases := []Blend{
		{A: TopTalkers{}, B: UnexpectedTalkers{}, Alpha: -0.1},
		{A: TopTalkers{}, B: UnexpectedTalkers{}, Alpha: 1.1},
		{A: nil, B: UnexpectedTalkers{}, Alpha: 0.5},
		{A: TopTalkers{}, B: nil, Alpha: 0.5},
	}
	for i, blend := range cases {
		if _, err := blend.Compute(w, nil, 3); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	good := Blend{A: TopTalkers{}, B: UnexpectedTalkers{}, Alpha: 0.5}
	if _, err := good.Compute(w, nil, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestBlendEndpoints(t *testing.T) {
	u, w := testGraph(t, true)
	v := node(t, u, "a")
	// α=1 reproduces A's ranking with normalized weights.
	full := Blend{A: TopTalkers{}, B: UnexpectedTalkers{}, Alpha: 1}
	blended, err := ComputeOne(full, w, v, 3)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := ComputeOne(TopTalkers{}, w, v, 3)
	if err != nil {
		t.Fatal(err)
	}
	ttn := tt.Normalized()
	if blended.Len() != ttn.Len() {
		t.Fatalf("lengths differ: %d vs %d", blended.Len(), ttn.Len())
	}
	for i := range ttn.Nodes {
		if blended.Nodes[i] != ttn.Nodes[i] || math.Abs(blended.Weights[i]-ttn.Weights[i]) > 1e-12 {
			t.Fatalf("entry %d: (%v,%g) vs (%v,%g)", i,
				blended.Nodes[i], blended.Weights[i], ttn.Nodes[i], ttn.Weights[i])
		}
	}
}

func TestBlendMixesWeights(t *testing.T) {
	u, w := testGraph(t, true)
	v := node(t, u, "a")
	blend := Blend{A: TopTalkers{}, B: UnexpectedTalkers{}, Alpha: 0.5}
	sig, err := ComputeOne(blend, w, v, 10)
	if err != nil {
		t.Fatal(err)
	}
	tt, _ := ComputeOne(TopTalkers{}, w, v, 30)
	ut, _ := ComputeOne(UnexpectedTalkers{}, w, v, 30)
	ttn, utn := tt.Normalized(), ut.Normalized()
	for i, n := range sig.Nodes {
		want := 0.5*ttn.Weight(n) + 0.5*utn.Weight(n)
		if math.Abs(sig.Weights[i]-want) > 1e-12 {
			t.Fatalf("node %v weight %g, want %g", n, sig.Weights[i], want)
		}
	}
	if err := sig.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBlendName(t *testing.T) {
	b := Blend{A: TopTalkers{}, B: RandomWalk{C: 0.1, Hops: 3}, Alpha: 0.25}
	if b.Name() != "blend(0.25*tt+0.75*rwr3@0.1)" {
		t.Fatalf("Name = %q", b.Name())
	}
}

func TestExtraDistancesHandComputed(t *testing.T) {
	a := sig(1, 0.6, 2, 0.4)
	b := sig(2, 0.4, 3, 0.6)
	// Cosine: dot = 0.16; |a| = |b| = √0.52.
	wantCos := 1 - 0.16/0.52
	if got := (Cosine{}).Dist(a, b); math.Abs(got-wantCos) > 1e-12 {
		t.Fatalf("cosine = %g, want %g", got, wantCos)
	}
	// WeightedJaccard on already-normalized sigs equals SDice here.
	wantWJ := (ScaledDice{}).Dist(a, b)
	if got := (WeightedJaccard{}).Dist(a, b); math.Abs(got-wantWJ) > 1e-12 {
		t.Fatalf("wjaccard = %g, want %g", got, wantWJ)
	}
}

func TestWeightedJaccardScaleFree(t *testing.T) {
	a := sig(1, 0.6, 2, 0.4)
	scaled := sig(1, 6.0, 2, 4.0)
	if got := (WeightedJaccard{}).Dist(a, scaled); got != 0 {
		t.Fatalf("proportional signatures at distance %g", got)
	}
	// SDice, by contrast, is scale-sensitive.
	if got := (ScaledDice{}).Dist(a, scaled); got == 0 {
		t.Fatal("SDice unexpectedly scale-free")
	}
}

func TestExtraDistancesBounds(t *testing.T) {
	gen := func(raw map[uint8]uint16) Signature {
		w := map[graph.NodeID]float64{}
		for n, v := range raw {
			w[graph.NodeID(n%32)] = float64(v%1000)/100 + 0.01
		}
		return FromWeights(w, 10)
	}
	f := func(rawA, rawB map[uint8]uint16) bool {
		a, b := gen(rawA), gen(rawB)
		for _, d := range ExtendedDistances() {
			ab := d.Dist(a, b)
			if ab < 0 || ab > 1 || math.IsNaN(ab) {
				return false
			}
			if math.Abs(d.Dist(b, a)-ab) > 1e-12 {
				return false
			}
			if d.Dist(a, a) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	// Extended registry resolves the extras.
	for _, name := range []string{"cosine", "wjaccard"} {
		if _, ok := DistanceByName(name); !ok {
			t.Fatalf("DistanceByName(%q) failed", name)
		}
	}
}

func TestExtraDistancesEmpty(t *testing.T) {
	a := sig(1, 0.6)
	empty := Signature{}
	for _, d := range []Distance{Cosine{}, WeightedJaccard{}} {
		if d.Dist(empty, empty) != 0 {
			t.Fatalf("%s(∅,∅) != 0", d.Name())
		}
		if d.Dist(a, empty) != 1 || d.Dist(empty, a) != 1 {
			t.Fatalf("%s(a,∅) != 1", d.Name())
		}
	}
}
