package core

import (
	"encoding/binary"
	"math"
	"testing"

	"graphsig/internal/graph"
)

// fuzzSig decodes a signature from fuzz bytes: 3 bytes per entry — a
// node id and a 2-byte weight mantissa — funneled through FromWeights
// so the result is always Validate-clean (duplicates collapse, the
// heaviest k survive in canonical order).
func fuzzSig(data []byte, k int) Signature {
	weights := make(map[graph.NodeID]float64)
	for len(data) >= 3 {
		node := graph.NodeID(data[0])
		w := float64(binary.LittleEndian.Uint16(data[1:3]))
		// Spread magnitudes across several orders so folds hit varied
		// rounding, and keep some exact ties for tie-break coverage.
		weights[node] += 0.25 + w/16
		data = data[3:]
	}
	return FromWeights(weights, k)
}

// FuzzSortedKernels checks the merge-join kernels' bit-identity
// contract: for any pair of Validate-clean signatures and every
// distance in ExtendedDistances, DistKernel.Dist must return the exact
// float64 the naive Distance.Dist does.
func FuzzSortedKernels(f *testing.F) {
	f.Add([]byte{}, []byte{}, uint8(4))
	f.Add([]byte{1, 16, 0, 2, 32, 0}, []byte{2, 32, 0, 3, 8, 0}, uint8(4))
	f.Add([]byte{1, 1, 0, 2, 1, 0, 3, 1, 0}, []byte{4, 1, 0, 5, 1, 0}, uint8(2)) // disjoint, ties
	f.Add([]byte{7, 255, 255, 7, 255, 255}, []byte{7, 255, 255}, uint8(8))       // duplicate folding

	f.Fuzz(func(t *testing.T, araw, braw []byte, kraw uint8) {
		k := 1 + int(kraw)%40
		a := fuzzSig(araw, k)
		b := fuzzSig(braw, k)
		if err := a.Validate(); err != nil {
			t.Fatalf("fuzzSig built an invalid signature: %v", err)
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("fuzzSig built an invalid signature: %v", err)
		}
		sa, sb := NewSortedSig(a), NewSortedSig(b)
		flat := NewFlatSigs([]Signature{a, b})
		for _, d := range ExtendedDistances() {
			kern, ok := NewDistKernel(d)
			if !ok {
				t.Fatalf("%s: no kernel", d.Name())
			}
			want := d.Dist(a, b)
			got := kern.Dist(&sa, &sb)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s: kernel %v (%x) != naive %v (%x) for %v vs %v",
					d.Name(), got, math.Float64bits(got), want, math.Float64bits(want), a, b)
			}
			// The SoA entry point must hit the same bits.
			if got := kern.FlatDist(flat, 0, flat, 1); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s: flat kernel %v != naive %v for %v vs %v", d.Name(), got, want, a, b)
			}
			// Symmetric orientation: the kernels' a/b roles must both hold.
			want = d.Dist(b, a)
			got = kern.Dist(&sb, &sa)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s reversed: kernel %v != naive %v for %v vs %v", d.Name(), got, want, b, a)
			}
			if got := kern.FlatDist(flat, 1, flat, 0); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s reversed: flat kernel %v != naive %v for %v vs %v", d.Name(), got, want, b, a)
			}
		}
	})
}
