package core

import (
	"fmt"
	"testing"

	"graphsig/internal/graph"
)

// biggerGraph builds a graph with many sources so the parallel path
// actually engages.
func biggerGraph(t *testing.T) (*graph.Window, []graph.NodeID) {
	t.Helper()
	u := graph.NewUniverse()
	var sources []graph.NodeID
	for i := 0; i < 40; i++ {
		sources = append(sources, u.MustIntern(fmt.Sprintf("s%02d", i), graph.Part1))
	}
	var dests []graph.NodeID
	for i := 0; i < 60; i++ {
		dests = append(dests, u.MustIntern(fmt.Sprintf("d%02d", i), graph.Part2))
	}
	b := graph.NewBuilder(u, 0)
	for i, s := range sources {
		for j := 0; j < 6; j++ {
			d := dests[(i*7+j*11)%len(dests)]
			if err := b.Add(s, d, float64(1+(i+j)%5)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return b.Build(), sources
}

func TestParallelMatchesSerial(t *testing.T) {
	w, sources := biggerGraph(t)
	for _, inner := range []Scheme{
		TopTalkers{},
		UnexpectedTalkers{},
		RandomWalk{C: 0.1, Hops: 3},
	} {
		serial, err := inner.Compute(w, sources, 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 3, 16} {
			par, err := Parallel(inner, workers).Compute(w, sources, 5)
			if err != nil {
				t.Fatal(err)
			}
			if len(par) != len(serial) {
				t.Fatalf("%s/%d: length %d vs %d", inner.Name(), workers, len(par), len(serial))
			}
			for i := range serial {
				if !serial[i].Equal(par[i]) {
					t.Fatalf("%s/%d: signature %d differs", inner.Name(), workers, i)
				}
			}
		}
	}
}

func TestParallelName(t *testing.T) {
	if Parallel(TopTalkers{}, 4).Name() != "tt" {
		t.Fatal("Parallel changed the scheme name")
	}
}

func TestParallelPropagatesErrors(t *testing.T) {
	w, sources := biggerGraph(t)
	bad := RandomWalk{C: -1}
	if _, err := Parallel(bad, 4).Compute(w, sources, 5); err == nil {
		t.Fatal("inner error swallowed")
	}
}

func TestParallelFewSources(t *testing.T) {
	w, sources := biggerGraph(t)
	// Below the 2×workers threshold the serial path runs; results must
	// still be correct.
	par, err := Parallel(TopTalkers{}, 32).Compute(w, sources[:3], 5)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := (TopTalkers{}).Compute(w, sources[:3], 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if !serial[i].Equal(par[i]) {
			t.Fatalf("signature %d differs", i)
		}
	}
}
