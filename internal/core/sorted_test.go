package core

import (
	"math"
	"math/rand"
	"testing"

	"graphsig/internal/graph"
)

// randSig builds a Validate-clean random signature of up to maxLen
// entries drawn from [base, base+span) with positive weights; tied
// weights are common (weights quantized) to exercise canonical-order
// tie-breaking.
func randSig(rng *rand.Rand, maxLen int, base, span int) Signature {
	n := rng.Intn(maxLen + 1)
	weights := map[graph.NodeID]float64{}
	for len(weights) < n {
		u := graph.NodeID(base + rng.Intn(span))
		// Quantized weights force frequent exact ties.
		weights[u] = float64(1+rng.Intn(8)) / 4
	}
	return FromWeights(weights, n)
}

// kernelPairCases yields the edge cases the merge-join kernels must
// reproduce bit-for-bit: empties, identical, disjoint, subset/overlap.
func kernelPairCases(rng *rand.Rand) [][2]Signature {
	shared := randSig(rng, 8, 0, 20)
	left := randSig(rng, 8, 0, 30)
	right := randSig(rng, 8, 10, 30)
	disjointA := randSig(rng, 8, 0, 50)
	disjointB := randSig(rng, 8, 100, 50)
	single := FromWeights(map[graph.NodeID]float64{7: 1.5}, 1)
	return [][2]Signature{
		{{}, {}},
		{{}, shared},
		{shared, {}},
		{shared, shared},
		{left, right},
		{right, left},
		{disjointA, disjointB},
		{single, shared},
		{left, left},
	}
}

func TestDistKernelBitIdenticalToNaive(t *testing.T) {
	for _, d := range ExtendedDistances() {
		d := d
		t.Run(d.Name(), func(t *testing.T) {
			kern, ok := NewDistKernel(d)
			if !ok {
				t.Fatalf("no kernel for %s", d.Name())
			}
			rng := rand.New(rand.NewSource(1234))
			check := func(a, b Signature) {
				t.Helper()
				want := d.Dist(a, b)
				va, vb := NewSortedSig(a), NewSortedSig(b)
				got := kern.Dist(&va, &vb)
				if math.IsNaN(want) || math.IsNaN(got) {
					t.Fatalf("NaN distance: naive=%v kernel=%v for %s vs %s", want, got, a, b)
				}
				if got != want {
					t.Fatalf("kernel %s: got %v (%b) want %v (%b) for %s vs %s",
						d.Name(), got, math.Float64bits(got), want, math.Float64bits(want), a, b)
				}
			}
			for round := 0; round < 50; round++ {
				for _, pair := range kernelPairCases(rng) {
					check(pair[0], pair[1])
				}
				// Fully random pairs over a narrow universe: heavy overlap.
				check(randSig(rng, 10, 0, 15), randSig(rng, 10, 0, 15))
				// Wide universe: mostly disjoint.
				check(randSig(rng, 10, 0, 1000), randSig(rng, 10, 0, 1000))
			}
		})
	}
}

// TestDistKernelScratchReuse re-runs one kernel across many pairs of
// varying size interleaved, catching stale scratch state.
func TestDistKernelScratchReuse(t *testing.T) {
	for _, d := range ExtendedDistances() {
		kern, ok := NewDistKernel(d)
		if !ok {
			t.Fatalf("no kernel for %s", d.Name())
		}
		rng := rand.New(rand.NewSource(99))
		sigs := make([]Signature, 30)
		views := make([]SortedSig, len(sigs))
		for i := range sigs {
			sigs[i] = randSig(rng, 1+rng.Intn(12), 0, 40)
			views[i] = NewSortedSig(sigs[i])
		}
		for i := range sigs {
			for j := range sigs {
				want := d.Dist(sigs[i], sigs[j])
				if got := kern.Dist(&views[i], &views[j]); got != want {
					t.Fatalf("%s: scratch reuse mismatch at (%d,%d): got %v want %v", d.Name(), i, j, got, want)
				}
			}
		}
	}
}

func TestDistKernelUnknownDistance(t *testing.T) {
	if _, ok := NewDistKernel(fakeDistance{}); ok {
		t.Fatal("kernel granted for unknown distance")
	}
}

type fakeDistance struct{}

func (fakeDistance) Name() string                { return "fake" }
func (fakeDistance) Dist(a, b Signature) float64 { return 0.5 }

func TestSortedSigInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 100; round++ {
		s := randSig(rng, 12, 0, 60)
		v := NewSortedSig(s)
		if v.Len() != s.Len() {
			t.Fatalf("length mismatch: %d vs %d", v.Len(), s.Len())
		}
		nodes := v.SortedNodes()
		for i := 1; i < len(nodes); i++ {
			if nodes[i-1] >= nodes[i] {
				t.Fatalf("nodes not strictly ascending: %v", nodes)
			}
		}
		if got, want := v.WeightSum(), s.WeightSum(); got != want {
			t.Fatalf("weight sum mismatch: %v vs %v", got, want)
		}
		if !v.Sig().Equal(s) {
			t.Fatalf("Sig() does not round-trip")
		}
	}
}
