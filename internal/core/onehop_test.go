package core

import (
	"math"
	"testing"

	"graphsig/internal/graph"
)

// testGraph builds the running example graph:
//
//	a → x:6  y:3  z:1
//	b → x:2  y:2
//	c → z:4
//
// with in-degrees |I(x)|=2, |I(y)|=2, |I(z)|=2.
func testGraph(t *testing.T, bipartite bool) (*graph.Universe, *graph.Window) {
	t.Helper()
	u := graph.NewUniverse()
	srcPart, dstPart := graph.PartNone, graph.PartNone
	if bipartite {
		srcPart, dstPart = graph.Part1, graph.Part2
	}
	for _, l := range []string{"a", "b", "c"} {
		u.MustIntern(l, srcPart)
	}
	for _, l := range []string{"x", "y", "z"} {
		u.MustIntern(l, dstPart)
	}
	b := graph.NewBuilder(u, 0)
	edges := []struct {
		from, to string
		w        float64
	}{
		{"a", "x", 6}, {"a", "y", 3}, {"a", "z", 1},
		{"b", "x", 2}, {"b", "y", 2},
		{"c", "z", 4},
	}
	for _, e := range edges {
		f, _ := u.Lookup(e.from)
		to, _ := u.Lookup(e.to)
		if err := b.Add(f, to, e.w); err != nil {
			t.Fatal(err)
		}
	}
	return u, b.Build()
}

func node(t *testing.T, u *graph.Universe, l string) graph.NodeID {
	t.Helper()
	id, ok := u.Lookup(l)
	if !ok {
		t.Fatalf("label %q missing", l)
	}
	return id
}

func TestTopTalkersWeights(t *testing.T) {
	u, w := testGraph(t, false)
	sig, err := ComputeOne(TopTalkers{}, w, node(t, u, "a"), 10)
	if err != nil {
		t.Fatal(err)
	}
	// a's out weights: x 6/10, y 3/10, z 1/10.
	if sig.Len() != 3 {
		t.Fatalf("len = %d", sig.Len())
	}
	want := []struct {
		l string
		w float64
	}{{"x", 0.6}, {"y", 0.3}, {"z", 0.1}}
	for i, c := range want {
		if sig.Nodes[i] != node(t, u, c.l) || math.Abs(sig.Weights[i]-c.w) > 1e-12 {
			t.Fatalf("entry %d = (%v,%g), want (%s,%g)", i, sig.Nodes[i], sig.Weights[i], c.l, c.w)
		}
	}
}

func TestTopTalkersTruncatesToK(t *testing.T) {
	u, w := testGraph(t, false)
	sig, err := ComputeOne(TopTalkers{}, w, node(t, u, "a"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if sig.Len() != 2 || sig.Nodes[0] != node(t, u, "x") || sig.Nodes[1] != node(t, u, "y") {
		t.Fatalf("top-2 wrong: %v", sig)
	}
}

func TestTopTalkersEmptyForSink(t *testing.T) {
	u, w := testGraph(t, false)
	sig, err := ComputeOne(TopTalkers{}, w, node(t, u, "x"), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !sig.IsEmpty() {
		t.Fatalf("sink node has signature %v", sig)
	}
}

func TestTopTalkersRejectsBadK(t *testing.T) {
	_, w := testGraph(t, false)
	if _, err := (TopTalkers{}).Compute(w, nil, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestUnexpectedTalkersWeights(t *testing.T) {
	u, w := testGraph(t, false)
	sig, err := ComputeOne(UnexpectedTalkers{}, w, node(t, u, "a"), 10)
	if err != nil {
		t.Fatal(err)
	}
	// UT weights for a: x 6/2=3, y 3/2=1.5, z 1/2=0.5.
	want := []struct {
		l string
		w float64
	}{{"x", 3}, {"y", 1.5}, {"z", 0.5}}
	for i, c := range want {
		if sig.Nodes[i] != node(t, u, c.l) || math.Abs(sig.Weights[i]-c.w) > 1e-12 {
			t.Fatalf("entry %d wrong: %v", i, sig)
		}
	}
}

func TestUnexpectedTalkersDownweightsPopular(t *testing.T) {
	// y is contacted by everyone; UT must rank it below a rare contact
	// of equal raw weight.
	u := graph.NewUniverse()
	for _, l := range []string{"a", "b", "c", "d", "rare", "pop"} {
		u.MustIntern(l, graph.PartNone)
	}
	b := graph.NewBuilder(u, 0)
	pop, _ := u.Lookup("pop")
	rare, _ := u.Lookup("rare")
	a, _ := u.Lookup("a")
	for _, src := range []string{"a", "b", "c", "d"} {
		s, _ := u.Lookup(src)
		if err := b.Add(s, pop, 3); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Add(a, rare, 3); err != nil {
		t.Fatal(err)
	}
	w := b.Build()

	ttSig, err := ComputeOne(TopTalkers{}, w, a, 1)
	if err != nil {
		t.Fatal(err)
	}
	utSig, err := ComputeOne(UnexpectedTalkers{}, w, a, 1)
	if err != nil {
		t.Fatal(err)
	}
	// TT ties (both weight 0.5) and breaks by node id; UT must pick rare.
	if utSig.Nodes[0] != rare {
		t.Fatalf("UT top = %v, want rare", utSig.Nodes[0])
	}
	if ttSig.Weights[0] != 0.5 {
		t.Fatalf("TT top weight = %g", ttSig.Weights[0])
	}
}

func TestUTTFIDFVariant(t *testing.T) {
	u, w := testGraph(t, false)
	sig, err := ComputeOne(UnexpectedTalkers{Scaling: UTTFIDF}, w, node(t, u, "a"), 10)
	if err != nil {
		t.Fatal(err)
	}
	// TF-IDF: C[a,x]·log(6/2) etc.
	want := 6 * math.Log(3)
	if math.Abs(sig.Weight(node(t, u, "x"))-want) > 1e-9 {
		t.Fatalf("tf-idf weight = %g, want %g", sig.Weight(node(t, u, "x")), want)
	}
	if (UnexpectedTalkers{Scaling: UTTFIDF}).Name() != "ut-tfidf" {
		t.Fatal("name wrong")
	}
}

func TestBipartiteRestriction(t *testing.T) {
	u, w := testGraph(t, true)
	// In a bipartite graph, a Part1 source's signature may only hold
	// Part2 nodes (trivially true one-hop, asserted for completeness).
	for _, s := range []Scheme{TopTalkers{}, UnexpectedTalkers{}, RandomWalk{C: 0.1, Hops: 3}} {
		sig, err := ComputeOne(s, w, node(t, u, "a"), 10)
		if err != nil {
			t.Fatal(err)
		}
		if sig.IsEmpty() {
			t.Fatalf("%s produced empty signature", s.Name())
		}
		for _, n := range sig.Nodes {
			if u.PartOf(n) != graph.Part2 {
				t.Fatalf("%s leaked %v (%v) into a V1 signature", s.Name(), n, u.PartOf(n))
			}
		}
	}
}

func TestSelfExclusion(t *testing.T) {
	// General graph with a cycle: RWR mass returns to the source, but
	// the source must never appear in its own signature.
	u, w := testGraph(t, false)
	b := graph.NewBuilder(u, 1)
	for _, e := range w.Edges() {
		if err := b.Add(e.From, e.To, e.Weight); err != nil {
			t.Fatal(err)
		}
	}
	// Add a back edge x → a so a is reachable from its neighbours.
	if err := b.Add(node(t, u, "x"), node(t, u, "a"), 5); err != nil {
		t.Fatal(err)
	}
	w2 := b.Build()
	for _, s := range []Scheme{TopTalkers{}, UnexpectedTalkers{}, RandomWalk{C: 0.1, Hops: 4}, RandomWalk{C: 0.1}} {
		sig, err := ComputeOne(s, w2, node(t, u, "a"), 10)
		if err != nil {
			t.Fatal(err)
		}
		if sig.Contains(node(t, u, "a")) {
			t.Fatalf("%s included the source in its own signature", s.Name())
		}
	}
}

func TestComputeSetIndex(t *testing.T) {
	u, w := testGraph(t, true)
	set, err := ComputeSet(TopTalkers{}, w, DefaultSources(w), 10)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 3 {
		t.Fatalf("set has %d sources", set.Len())
	}
	sig, ok := set.Get(node(t, u, "a"))
	if !ok || sig.IsEmpty() {
		t.Fatal("Get(a) failed")
	}
	if _, ok := set.Get(node(t, u, "x")); ok {
		t.Fatal("Get returned a non-source")
	}
	if set.Scheme != "tt" || set.Window != 0 {
		t.Fatalf("metadata wrong: %s/%d", set.Scheme, set.Window)
	}
}

func TestDefaultSourcesGeneralGraph(t *testing.T) {
	_, w := testGraph(t, false)
	// Non-bipartite: all active sources (a, b, c).
	if got := len(DefaultSources(w)); got != 3 {
		t.Fatalf("DefaultSources = %d", got)
	}
}

func TestNewSignatureSetValidates(t *testing.T) {
	good := FromWeights(map[graph.NodeID]float64{1: 1}, 1)
	if _, err := NewSignatureSet("x", 0, []graph.NodeID{5}, []Signature{good}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSignatureSet("x", 0, []graph.NodeID{5}, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
	bad := Signature{Nodes: []graph.NodeID{1}, Weights: []float64{-1}}
	if _, err := NewSignatureSet("x", 0, []graph.NodeID{5}, []Signature{bad}); err == nil {
		t.Fatal("invalid signature accepted")
	}
	if _, err := NewSignatureSet("x", 0, []graph.NodeID{5, 5}, []Signature{good, good}); err == nil {
		t.Fatal("duplicate source accepted")
	}
}
