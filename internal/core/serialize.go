package core

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"graphsig/internal/graph"
)

// Signature sets serialize to a line-oriented text format so that
// signatures computed on one machine (or at collection time) can be
// compared later without re-reading the traffic:
//
//	graphsig-signatures v1
//	scheme tt
//	window 0
//	node "10.0.0.1" V1
//	...
//	sig "10.0.0.1" 2 "198.18.0.9" 0.6 "198.18.0.4" 0.4
//	...
//
// Node lines declare every referenced label with its bipartite part;
// sig lines then reference labels. Labels are Go-quoted, so arbitrary
// bytes are safe.

const serializeHeader = "graphsig-signatures v1"

// WriteSignatureSet serializes set, resolving NodeIDs through u (which
// must be the universe the signatures were computed against).
func WriteSignatureSet(w io.Writer, set *SignatureSet, u *graph.Universe) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, serializeHeader)
	fmt.Fprintf(bw, "scheme %s\n", set.Scheme)
	fmt.Fprintf(bw, "window %d\n", set.Window)

	// Collect every referenced node once, in ID order.
	referenced := map[graph.NodeID]bool{}
	for i, v := range set.Sources {
		referenced[v] = true
		for _, n := range set.Sigs[i].Nodes {
			referenced[n] = true
		}
	}
	for id := 0; id < u.Size(); id++ {
		nid := graph.NodeID(id)
		if !referenced[nid] {
			continue
		}
		fmt.Fprintf(bw, "node %q %s\n", u.Label(nid), u.PartOf(nid))
	}
	for i, v := range set.Sources {
		sig := set.Sigs[i]
		fmt.Fprintf(bw, "sig %q %d", u.Label(v), sig.Len())
		for j := range sig.Nodes {
			fmt.Fprintf(bw, " %q %s", u.Label(sig.Nodes[j]),
				strconv.FormatFloat(sig.Weights[j], 'g', 17, 64))
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// ReadSignatureSet parses a serialized set, interning labels into u
// (pass a fresh Universe to load standalone, or the live one to
// compare against freshly computed signatures — parts must agree).
func ReadSignatureSet(r io.Reader, u *graph.Universe) (*SignatureSet, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			text := strings.TrimSpace(sc.Text())
			if text != "" {
				return text, true
			}
		}
		return "", false
	}
	fail := func(format string, args ...any) error {
		return fmt.Errorf("core: signatures line %d: %s", line, fmt.Sprintf(format, args...))
	}

	head, ok := next()
	if !ok || head != serializeHeader {
		return nil, fail("bad header %q", head)
	}
	schemeLine, ok := next()
	if !ok || !strings.HasPrefix(schemeLine, "scheme ") {
		return nil, fail("missing scheme line")
	}
	scheme := strings.TrimPrefix(schemeLine, "scheme ")
	windowLine, ok := next()
	if !ok || !strings.HasPrefix(windowLine, "window ") {
		return nil, fail("missing window line")
	}
	window, err := strconv.Atoi(strings.TrimPrefix(windowLine, "window "))
	if err != nil {
		return nil, fail("bad window index: %v", err)
	}

	var sources []graph.NodeID
	var sigs []Signature
	for {
		text, ok := next()
		if !ok {
			break
		}
		fields, err := splitQuoted(text)
		if err != nil {
			return nil, fail("%v", err)
		}
		switch fields[0] {
		case "node":
			if len(fields) != 3 {
				return nil, fail("node line needs 3 fields, got %d", len(fields))
			}
			part, err := parsePart(fields[2])
			if err != nil {
				return nil, fail("%v", err)
			}
			if _, err := u.Intern(fields[1], part); err != nil {
				return nil, fail("%v", err)
			}
		case "sig":
			if len(fields) < 3 {
				return nil, fail("sig line too short")
			}
			src, ok := u.Lookup(fields[1])
			if !ok {
				return nil, fail("sig references undeclared node %q", fields[1])
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, fail("bad member count %q", fields[2])
			}
			if len(fields) != 3+2*n {
				return nil, fail("sig declares %d members but carries %d fields", n, len(fields)-3)
			}
			sig := Signature{
				Nodes:   make([]graph.NodeID, n),
				Weights: make([]float64, n),
			}
			for j := 0; j < n; j++ {
				member, ok := u.Lookup(fields[3+2*j])
				if !ok {
					return nil, fail("sig references undeclared node %q", fields[3+2*j])
				}
				weight, err := strconv.ParseFloat(fields[4+2*j], 64)
				if err != nil {
					return nil, fail("bad weight %q", fields[4+2*j])
				}
				sig.Nodes[j] = member
				sig.Weights[j] = weight
			}
			if err := sig.Validate(); err != nil {
				return nil, fail("%v", err)
			}
			sources = append(sources, src)
			sigs = append(sigs, sig)
		default:
			return nil, fail("unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("core: signatures: %w", err)
	}
	return NewSignatureSet(scheme, window, sources, sigs)
}

func parsePart(s string) (graph.Part, error) {
	switch s {
	case "V":
		return graph.PartNone, nil
	case "V1":
		return graph.Part1, nil
	case "V2":
		return graph.Part2, nil
	}
	return 0, fmt.Errorf("unknown part %q", s)
}

// SplitQuoted tokenizes a line of space-separated fields where fields
// may be Go-quoted strings — the shared tokenizer for every
// line-oriented format in this module (signature files, segment TOCs).
func SplitQuoted(line string) ([]string, error) {
	return splitQuoted(line)
}

// splitQuoted tokenizes a line of space-separated fields where fields
// may be Go-quoted strings.
func splitQuoted(line string) ([]string, error) {
	var out []string
	rest := strings.TrimSpace(line)
	for rest != "" {
		if rest[0] == '"' {
			// Find the closing quote, honouring escapes.
			end := -1
			for i := 1; i < len(rest); i++ {
				if rest[i] == '\\' {
					i++
					continue
				}
				if rest[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated quote in %q", line)
			}
			unq, err := strconv.Unquote(rest[:end+1])
			if err != nil {
				return nil, fmt.Errorf("bad quoted field: %w", err)
			}
			out = append(out, unq)
			rest = strings.TrimSpace(rest[end+1:])
			continue
		}
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			out = append(out, rest)
			break
		}
		out = append(out, rest[:sp])
		rest = strings.TrimSpace(rest[sp+1:])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty line")
	}
	return out, nil
}
