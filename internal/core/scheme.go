package core

import (
	"fmt"

	"graphsig/internal/graph"
)

// Scheme computes signatures for nodes of a communication graph window.
// Implementations must be safe for concurrent use; per-call scratch
// state lives in the call frame.
type Scheme interface {
	// Name is a short stable identifier ("tt", "ut", "rwr3@0.1", ...).
	Name() string
	// Compute returns one signature per source, of length at most k.
	// For bipartite graphs, signatures of Part1 nodes contain only
	// Part2 nodes (Definition 1's bipartite restriction); the source
	// node itself is always excluded.
	Compute(w *graph.Window, sources []graph.NodeID, k int) ([]Signature, error)
}

// ComputeOne computes the signature of a single node under scheme s.
func ComputeOne(s Scheme, w *graph.Window, v graph.NodeID, k int) (Signature, error) {
	sigs, err := s.Compute(w, []graph.NodeID{v}, k)
	if err != nil {
		return Signature{}, err
	}
	return sigs[0], nil
}

// SignatureSet holds the signatures of a set of sources in one window,
// as produced by ComputeSet. It is the unit the evaluation and
// application layers operate on.
type SignatureSet struct {
	Scheme  string
	Window  int
	Sources []graph.NodeID
	Sigs    []Signature
	index   map[graph.NodeID]int
}

// ComputeSet computes signatures for the given sources and wraps them
// with an index for O(1) lookup by source node.
func ComputeSet(s Scheme, w *graph.Window, sources []graph.NodeID, k int) (*SignatureSet, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: signature length k must be positive, got %d", k)
	}
	sigs, err := s.Compute(w, sources, k)
	if err != nil {
		return nil, err
	}
	if len(sigs) != len(sources) {
		return nil, fmt.Errorf("core: scheme %s returned %d signatures for %d sources", s.Name(), len(sigs), len(sources))
	}
	set := &SignatureSet{
		Scheme:  s.Name(),
		Window:  w.Index(),
		Sources: sources,
		Sigs:    sigs,
		index:   make(map[graph.NodeID]int, len(sources)),
	}
	for i, v := range sources {
		set.index[v] = i
	}
	return set, nil
}

// NewSignatureSet wraps externally produced signatures (streamed,
// deserialized) in a SignatureSet. Each signature is validated.
func NewSignatureSet(scheme string, window int, sources []graph.NodeID, sigs []Signature) (*SignatureSet, error) {
	if len(sources) != len(sigs) {
		return nil, fmt.Errorf("core: %d sources but %d signatures", len(sources), len(sigs))
	}
	set := &SignatureSet{
		Scheme:  scheme,
		Window:  window,
		Sources: sources,
		Sigs:    sigs,
		index:   make(map[graph.NodeID]int, len(sources)),
	}
	for i, v := range sources {
		if err := sigs[i].Validate(); err != nil {
			return nil, fmt.Errorf("core: signature of node %d: %w", v, err)
		}
		if _, dup := set.index[v]; dup {
			return nil, fmt.Errorf("core: duplicate source %d", v)
		}
		set.index[v] = i
	}
	return set, nil
}

// Get returns the signature of source v.
func (ss *SignatureSet) Get(v graph.NodeID) (Signature, bool) {
	i, ok := ss.index[v]
	if !ok {
		return Signature{}, false
	}
	return ss.Sigs[i], true
}

// IndexOf returns the position of source v in Sources.
func (ss *SignatureSet) IndexOf(v graph.NodeID) (int, bool) {
	i, ok := ss.index[v]
	return i, ok
}

// Len reports the number of sources.
func (ss *SignatureSet) Len() int { return len(ss.Sources) }

// signatureSources picks the default source set for a window: for
// bipartite graphs the active Part1 nodes (the paper computes signatures
// for local hosts / users), otherwise every active source.
func signatureSources(w *graph.Window) []graph.NodeID {
	if !w.Universe().Bipartite() {
		return w.ActiveSources()
	}
	var out []graph.NodeID
	for _, v := range w.ActiveSources() {
		if w.Universe().PartOf(v) == graph.Part1 {
			out = append(out, v)
		}
	}
	return out
}

// DefaultSources exposes the default source-selection rule.
func DefaultSources(w *graph.Window) []graph.NodeID { return signatureSources(w) }

// restrictTo reports whether candidate node u may appear in the
// signature of source v: never v itself, and for bipartite sources only
// opposite-part nodes.
func restrictTo(universe *graph.Universe, v, u graph.NodeID) bool {
	if u == v {
		return false
	}
	if universe.PartOf(v) == graph.Part1 {
		return universe.PartOf(u) == graph.Part2
	}
	return true
}
