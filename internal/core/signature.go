// Package core implements the paper's primary contribution: communication
// graph signatures (Definition 1), the example signature schemes of §III
// (Top Talkers, Unexpected Talkers, Random Walk with Resets and its
// hop-bounded variant), the four distance functions of §IV-B, and the
// exponential time-decay combination of historical windows mentioned in
// §III-A.
package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"graphsig/internal/graph"
)

// Signature is a communication-graph signature σ_t(v): the top-k nodes u
// by relevance w_vu, with their weights (Definition 1). Entries are
// sorted by weight descending, ties broken by NodeID ascending, making
// signatures canonical: two signatures with the same content compare
// equal entry-by-entry.
type Signature struct {
	Nodes   []graph.NodeID
	Weights []float64
}

// Len reports the number of entries (≤ k; fewer when the node has fewer
// than k non-zero relevance values).
func (s Signature) Len() int { return len(s.Nodes) }

// IsEmpty reports whether the signature has no entries.
func (s Signature) IsEmpty() bool { return len(s.Nodes) == 0 }

// Weight returns the weight of node u in the signature, or 0 when u is
// not a member. Linear scan: signatures are tiny (k ~ 3..10).
func (s Signature) Weight(u graph.NodeID) float64 {
	for i, n := range s.Nodes {
		if n == u {
			return s.Weights[i]
		}
	}
	return 0
}

// Contains reports whether u is a member.
func (s Signature) Contains(u graph.NodeID) bool {
	for _, n := range s.Nodes {
		if n == u {
			return true
		}
	}
	return false
}

// WeightSum returns the total weight of the signature.
func (s Signature) WeightSum() float64 {
	sum := 0.0
	for _, w := range s.Weights {
		sum += w
	}
	return sum
}

// Normalized returns a copy whose weights sum to 1 (or the signature
// itself when empty or massless).
func (s Signature) Normalized() Signature {
	sum := s.WeightSum()
	if sum <= 0 {
		return s
	}
	out := Signature{
		Nodes:   append([]graph.NodeID(nil), s.Nodes...),
		Weights: make([]float64, len(s.Weights)),
	}
	for i, w := range s.Weights {
		out.Weights[i] = w / sum
	}
	return out
}

// Equal reports exact equality of members and weights.
func (s Signature) Equal(t Signature) bool {
	if len(s.Nodes) != len(t.Nodes) {
		return false
	}
	for i := range s.Nodes {
		if s.Nodes[i] != t.Nodes[i] || s.Weights[i] != t.Weights[i] {
			return false
		}
	}
	return true
}

// String renders "{u:w, u:w, ...}" with NodeIDs.
func (s Signature) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i := range s.Nodes {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d:%.4g", s.Nodes[i], s.Weights[i])
	}
	b.WriteByte('}')
	return b.String()
}

// Validate checks the canonical-ordering and positivity invariants. It
// is used by property tests and by code paths that accept signatures
// from outside the package (e.g. deserialized ones).
func (s Signature) Validate() error {
	if len(s.Nodes) != len(s.Weights) {
		return fmt.Errorf("core: signature nodes/weights length mismatch %d/%d", len(s.Nodes), len(s.Weights))
	}
	seen := map[graph.NodeID]struct{}{}
	for i := range s.Nodes {
		w := s.Weights[i]
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("core: signature weight %d invalid (%g)", i, w)
		}
		if _, dup := seen[s.Nodes[i]]; dup {
			return fmt.Errorf("core: signature repeats node %d", s.Nodes[i])
		}
		seen[s.Nodes[i]] = struct{}{}
		if i > 0 && w > s.Weights[i-1] {
			// Weight order is the invariant; the order among equal
			// weights is the producer's tie-break (NodeID for exact
			// extractors, stable label keys for streaming ones) and is
			// not re-checkable here, where labels are unknown.
			return fmt.Errorf("core: signature not in canonical order at entry %d", i)
		}
	}
	return nil
}

// FromWeights builds a canonical signature from a relevance map,
// keeping the k heaviest positive entries. It is the constructor used
// by external signature producers (the sketch-based streaming
// extractors, deserializers).
func FromWeights(weights map[graph.NodeID]float64, k int) Signature {
	cand := make([]entry, 0, len(weights))
	for u, w := range weights {
		if w > 0 && !math.IsNaN(w) && !math.IsInf(w, 0) {
			cand = append(cand, entry{node: u, weight: w})
		}
	}
	return topK(cand, k)
}

// FromWeightsKeyed is FromWeights with the weight ties — both the
// selection cut at k and the final entry order — broken by key(node)
// instead of the NodeID. With a process-stable key (e.g.
// graph.HashLabel of the label) every process extracting from the same
// flows builds the same signature, member for member and slot for
// slot, regardless of its interning order; the cluster's shard/single
// bit-identity rests on this.
func FromWeightsKeyed(weights map[graph.NodeID]float64, k int, key func(graph.NodeID) uint64) Signature {
	cand := make([]entry, 0, len(weights))
	for u, w := range weights {
		if w > 0 && !math.IsNaN(w) && !math.IsInf(w, 0) {
			cand = append(cand, entry{node: u, weight: w, key: key(u)})
		}
	}
	sort.Slice(cand, func(i, j int) bool {
		if cand[i].weight != cand[j].weight {
			return cand[i].weight > cand[j].weight
		}
		if cand[i].key != cand[j].key {
			return cand[i].key < cand[j].key
		}
		return cand[i].node < cand[j].node // 64-bit key collision: stay total
	})
	if k < len(cand) {
		cand = cand[:k]
	}
	sig := Signature{
		Nodes:   make([]graph.NodeID, len(cand)),
		Weights: make([]float64, len(cand)),
	}
	for i, e := range cand {
		sig.Nodes[i] = e.node
		sig.Weights[i] = e.weight
	}
	return sig
}

// entry is a candidate (node, weight) pair during top-k selection.
type entry struct {
	node   graph.NodeID
	weight float64
	key    uint64
}

// topK selects the k heaviest entries, breaking weight ties by smaller
// NodeID first, and returns them in canonical order. It mutates cand.
func topK(cand []entry, k int) Signature {
	sort.Slice(cand, func(i, j int) bool {
		if cand[i].weight != cand[j].weight {
			return cand[i].weight > cand[j].weight
		}
		return cand[i].node < cand[j].node
	})
	if k < len(cand) {
		cand = cand[:k]
	}
	sig := Signature{
		Nodes:   make([]graph.NodeID, len(cand)),
		Weights: make([]float64, len(cand)),
	}
	for i, e := range cand {
		sig.Nodes[i] = e.node
		sig.Weights[i] = e.weight
	}
	return sig
}
