package core

import (
	"math"

	"graphsig/internal/graph"
)

// This file implements the structure-of-arrays (SoA) view of a slice of
// signatures: every per-signature array (canonical nodes, weights,
// node-sorted order, normalized weights, prefix sums) lives in one
// contiguous allocation for the whole set, addressed through a shared
// offset table. Batch layers (internal/distmat) iterate these arrays
// directly, so an all-pairs job walks a handful of flat slices instead
// of chasing one Signature header pair per comparison.
//
// The layout also precomputes what the prefilter bound in
// internal/distmat needs: inclusive prefix sums over the canonical
// (weight-descending) entry order, so "the largest possible sum of any
// m weights of signature i" is a single array read.
//
// Bit-identity: the per-signature folds (sum, sumSq, normalized
// weights) replay makeSortedSig exactly, and the flat kernel entry
// points on DistKernel share the fold helpers with the SortedSig path,
// so FlatDist(a, i, b, j) == Dist(NewSortedSig(aSig), NewSortedSig(bSig))
// bit-for-bit.

// FlatSigs is the SoA view of a signature slice. Build it with
// NewFlatSigs (or recycle one with Reset — zero allocations once the
// backing arrays have grown to fit). The view is immutable between
// Resets; the accessor slices alias the backing arrays and must not be
// mutated by callers.
type FlatSigs struct {
	offs   []int32        // len n+1; entries of sig i live at [offs[i], offs[i+1])
	nodes  []graph.NodeID // canonical (weight-descending) node order
	w      []float64      // canonical weights
	sorted []graph.NodeID // nodes re-sorted ascending, per signature
	pos    []int32        // pos[t] = canonical index (within the sig) of sorted[t]
	normW  []float64      // Normalized().Weights in canonical order

	// Inclusive prefix sums over the canonical order. Because canonical
	// order is weight-descending, prefW[offs[i]+m-1] is the largest sum
	// any m weights of sig i can reach (and likewise prefSq for squared
	// weights, prefNorm for normalized weights).
	prefW    []float64
	prefSq   []float64
	prefNorm []float64

	sum     []float64 // per-sig fold of w in canonical order (== WeightSum)
	sumSq   []float64 // per-sig fold of w² in canonical order
	norm    []float64 // math.Sqrt(sumSq), cosine's denominator factor
	normSum []float64 // per-sig fold of normW in canonical order
}

// NewFlatSigs builds the SoA view of sigs. Each signature must be
// Validate-clean: nodes unique, canonical order.
func NewFlatSigs(sigs []Signature) *FlatSigs {
	f := &FlatSigs{}
	f.Reset(sigs)
	return f
}

// growTo returns s resized to length n, reusing its backing array when
// capacity allows — the Reset path's no-allocation guarantee.
func growTo[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// Reset rebuilds the view over sigs in place, reusing every backing
// array whose capacity suffices. A FlatSigs cycled through same-shape
// inputs allocates nothing — the property the query path in
// internal/distmat relies on.
func (f *FlatSigs) Reset(sigs []Signature) {
	n := len(sigs)
	total := 0
	for i := range sigs {
		total += len(sigs[i].Nodes)
	}
	f.offs = growTo(f.offs, n+1)
	f.nodes = growTo(f.nodes, total)
	f.w = growTo(f.w, total)
	f.sorted = growTo(f.sorted, total)
	f.pos = growTo(f.pos, total)
	f.normW = growTo(f.normW, total)
	f.prefW = growTo(f.prefW, total)
	f.prefSq = growTo(f.prefSq, total)
	f.prefNorm = growTo(f.prefNorm, total)
	f.sum = growTo(f.sum, n)
	f.sumSq = growTo(f.sumSq, n)
	f.norm = growTo(f.norm, n)
	f.normSum = growTo(f.normSum, n)

	off := int32(0)
	for i := range sigs {
		f.offs[i] = off
		off += int32(len(sigs[i].Nodes))
		f.fill(i, sigs[i])
	}
	f.offs[n] = off
}

// fill populates signature i's segment of every flat array, replaying
// makeSortedSig's sort and folds.
func (f *FlatSigs) fill(i int, s Signature) {
	lo := int(f.offs[i])
	k := len(s.Nodes)
	nodes := f.nodes[lo : lo+k]
	w := f.w[lo : lo+k]
	copy(nodes, s.Nodes)
	copy(w, s.Weights)

	pos := f.pos[lo : lo+k]
	for t := range pos {
		pos[t] = int32(t)
	}
	if k <= insertionSortCutoff {
		for t := 1; t < k; t++ {
			p := pos[t]
			key := s.Nodes[p]
			j := t - 1
			for j >= 0 && s.Nodes[pos[j]] > key {
				pos[j+1] = pos[j]
				j--
			}
			pos[j+1] = p
		}
	} else {
		sortPosByNode(pos, s.Nodes)
	}
	srt := f.sorted[lo : lo+k]
	for t, p := range pos {
		srt[t] = s.Nodes[p]
	}

	sum, sumSq := 0.0, 0.0
	for t, wv := range w {
		sum += wv
		sumSq += wv * wv
		f.prefW[lo+t] = sum
		f.prefSq[lo+t] = sumSq
	}
	f.sum[i] = sum
	f.sumSq[i] = sumSq
	f.norm[i] = math.Sqrt(sumSq)

	// Mirror Signature.Normalized exactly: massless signatures keep
	// their raw weights.
	normW := f.normW[lo : lo+k]
	if sum > 0 {
		for t, wv := range w {
			normW[t] = wv / sum
		}
	} else {
		copy(normW, w)
	}
	normSum := 0.0
	for t, wv := range normW {
		normSum += wv
		f.prefNorm[lo+t] = normSum
	}
	f.normSum[i] = normSum
}

// sortPosByNode sorts pos so that nodes[pos[t]] ascends, for the rare
// signatures above the insertion-sort cutoff. Plain heapsort: no
// allocation, and the cutoff means it never runs on the hot sizes.
func sortPosByNode(pos []int32, nodes []graph.NodeID) {
	n := len(pos)
	less := func(a, b int32) bool { return nodes[a] < nodes[b] }
	siftDown := func(root, end int) {
		for {
			child := 2*root + 1
			if child >= end {
				return
			}
			if child+1 < end && less(pos[child], pos[child+1]) {
				child++
			}
			if !less(pos[root], pos[child]) {
				return
			}
			pos[root], pos[child] = pos[child], pos[root]
			root = child
		}
	}
	for root := n/2 - 1; root >= 0; root-- {
		siftDown(root, n)
	}
	for end := n - 1; end > 0; end-- {
		pos[0], pos[end] = pos[end], pos[0]
		siftDown(0, end)
	}
}

// NumSigs reports the number of signatures in the view.
func (f *FlatSigs) NumSigs() int { return len(f.offs) - 1 }

// Len reports the entry count of signature i.
func (f *FlatSigs) Len(i int) int { return int(f.offs[i+1] - f.offs[i]) }

// IsEmpty reports whether signature i has no entries.
func (f *FlatSigs) IsEmpty(i int) bool { return f.offs[i+1] == f.offs[i] }

// Nodes returns signature i's nodes in canonical order.
func (f *FlatSigs) Nodes(i int) []graph.NodeID { return f.nodes[f.offs[i]:f.offs[i+1]] }

// Weights returns signature i's weights in canonical order.
func (f *FlatSigs) Weights(i int) []float64 { return f.w[f.offs[i]:f.offs[i+1]] }

// NormWeights returns signature i's normalized weights in canonical
// order (raw weights when the signature is massless, mirroring
// Signature.Normalized).
func (f *FlatSigs) NormWeights(i int) []float64 { return f.normW[f.offs[i]:f.offs[i+1]] }

// SortedNodes returns signature i's nodes in ascending order.
func (f *FlatSigs) SortedNodes(i int) []graph.NodeID { return f.sorted[f.offs[i]:f.offs[i+1]] }

// Pos returns, for each entry of SortedNodes(i), its canonical index
// within signature i.
func (f *FlatSigs) Pos(i int) []int32 { return f.pos[f.offs[i]:f.offs[i+1]] }

// WeightSum returns signature i's total weight.
func (f *FlatSigs) WeightSum(i int) float64 { return f.sum[i] }

// SumSq returns signature i's canonical-order fold of squared weights.
func (f *FlatSigs) SumSq(i int) float64 { return f.sumSq[i] }

// Norm returns math.Sqrt(SumSq(i)).
func (f *FlatSigs) Norm(i int) float64 { return f.norm[i] }

// NormSum returns signature i's canonical-order fold of its normalized
// weights (≈1 for massful signatures, but the actual float fold — the
// prefilter bound must compare against the value the kernels divide by).
func (f *FlatSigs) NormSum(i int) float64 { return f.normSum[i] }

// TopWeightSum returns the largest sum any m weights of signature i can
// reach: the inclusive prefix sum of the canonical (descending) order.
// m is clamped to [0, Len(i)].
func (f *FlatSigs) TopWeightSum(i, m int) float64 { return topPrefix(f.prefW, f.offs, i, m) }

// TopSqSum is TopWeightSum over squared weights.
func (f *FlatSigs) TopSqSum(i, m int) float64 { return topPrefix(f.prefSq, f.offs, i, m) }

// TopNormSum is TopWeightSum over normalized weights.
func (f *FlatSigs) TopNormSum(i, m int) float64 { return topPrefix(f.prefNorm, f.offs, i, m) }

// RawOffs, RawWeights, RawNormWeights and RawNodes expose the flat
// backing arrays for batch layers whose inner loops index entries
// globally (offset table + flat array) rather than per signature.
// Read-only: callers must not mutate them.
func (f *FlatSigs) RawOffs() []int32 { return f.offs }

// RawWeights returns the flat canonical-order weight array.
func (f *FlatSigs) RawWeights() []float64 { return f.w }

// RawNormWeights returns the flat canonical-order normalized weights.
func (f *FlatSigs) RawNormWeights() []float64 { return f.normW }

// RawNodes returns the flat canonical-order node array.
func (f *FlatSigs) RawNodes() []graph.NodeID { return f.nodes }

func topPrefix(pref []float64, offs []int32, i, m int) float64 {
	if m <= 0 {
		return 0
	}
	lo, hi := int(offs[i]), int(offs[i+1])
	if m > hi-lo {
		m = hi - lo
	}
	if m == 0 {
		return 0
	}
	return pref[lo+m-1]
}

// FlatDist computes the distance between signature i of fa and
// signature j of fb, bit-identical to k.Distance().Dist on the original
// signatures. Like Dist, it uses the kernel's scratch: one kernel per
// goroutine.
func (k *DistKernel) FlatDist(fa *FlatSigs, i int, fb *FlatSigs, j int) float64 {
	if fa.IsEmpty(i) && fb.IsEmpty(j) {
		return 0
	}
	k.mergeFlat(fa, i, fb, j)
	k.sortMatchesByA()
	return k.flatMatched(fa, i, fb, j, k.matches)
}

// FlatDistMatched is DistMatched over flat views: matches lists the
// shared entries with canonical indices on both sides, A side ascending.
func (k *DistKernel) FlatDistMatched(fa *FlatSigs, i int, fb *FlatSigs, j int, matches []Match) float64 {
	if fa.IsEmpty(i) && fb.IsEmpty(j) {
		return 0
	}
	return k.flatMatched(fa, i, fb, j, matches)
}

// mergeFlat is merge over the flat sorted/pos segments.
func (k *DistKernel) mergeFlat(fa *FlatSigs, i int, fb *FlatSigs, j int) {
	k.matches = k.matches[:0]
	an, ap := fa.SortedNodes(i), fa.Pos(i)
	bn, bp := fb.SortedNodes(j), fb.Pos(j)
	s, t := 0, 0
	for s < len(an) && t < len(bn) {
		switch {
		case an[s] < bn[t]:
			s++
		case an[s] > bn[t]:
			t++
		default:
			k.matches = append(k.matches, Match{A: ap[s], B: bp[t]})
			s++
			t++
		}
	}
}

func (k *DistKernel) flatMatched(fa *FlatSigs, i int, fb *FlatSigs, j int, matches []Match) float64 {
	switch k.kind {
	case KindJaccard:
		return jaccardCount(fa.Len(i), fb.Len(j), len(matches))
	case KindDice:
		return diceFold(fa.Weights(i), fb.Weights(j), fa.sum[i], fb.sum[j], matches)
	case KindScaledDice:
		return k.scaledFold(fa.Weights(i), fb.Weights(j), matches, false)
	case KindScaledHellinger:
		return k.scaledFold(fa.Weights(i), fb.Weights(j), matches, true)
	case KindCosine:
		return cosineFold(fa.Weights(i), fb.Weights(j), fa.sumSq[i], fb.sumSq[j], fa.norm[i], fb.norm[j], matches)
	default:
		return k.scaledFold(fa.NormWeights(i), fb.NormWeights(j), matches, false)
	}
}

// ScatterFinish turns a row-scatter accumulator into the final
// distance for the kinds whose numerator is a plain per-shared-entry
// sum: the shared count for Jaccard, Σ(wa+wb) for Dice, the dot product
// for Cosine. The accumulator must have been folded in signature i's
// canonical entry order (what a posting scatter over i's entries
// produces), so the result is bit-identical to FlatDist. Panics for the
// scaled kinds — they need the full match list.
func (k *DistKernel) ScatterFinish(fa *FlatSigs, i int, fb *FlatSigs, j int, cnt int32, acc float64) float64 {
	switch k.kind {
	case KindJaccard:
		return jaccardCount(fa.Len(i), fb.Len(j), int(cnt))
	case KindDice:
		den := fa.sum[i] + fb.sum[j]
		if den == 0 {
			return 0
		}
		return clamp01(1 - acc/den)
	case KindCosine:
		if fa.sumSq[i] == 0 || fb.sumSq[j] == 0 {
			return 1
		}
		return clamp01(1 - acc/(fa.norm[i]*fb.norm[j]))
	default:
		panic("core: ScatterFinish on a non-scatter kernel kind")
	}
}
