package core

import (
	"math"
	"testing"

	"graphsig/internal/graph"
)

func TestRWRValidation(t *testing.T) {
	_, w := testGraph(t, false)
	bad := []RandomWalk{
		{C: -0.1},
		{C: 1.5},
		{C: 0.1, Hops: -1},
		{C: 0.1, Tol: -1},
	}
	for _, rw := range bad {
		if _, err := rw.Compute(w, nil, 5); err == nil {
			t.Fatalf("accepted %+v", rw)
		}
	}
	if _, err := (RandomWalk{C: 0.1}).Compute(w, nil, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

// RWR¹ with c=0 in directed mode reproduces Top Talkers exactly (the
// identity the paper states in §III-B).
func TestRWROneHopEqualsTT(t *testing.T) {
	u, w := testGraph(t, true)
	for _, src := range []string{"a", "b", "c"} {
		v := node(t, u, src)
		tt, err := ComputeOne(TopTalkers{}, w, v, 10)
		if err != nil {
			t.Fatal(err)
		}
		rw, err := ComputeOne(RandomWalk{C: 0, Hops: 1, Directed: true}, w, v, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(tt.Nodes) != len(rw.Nodes) {
			t.Fatalf("%s: lengths differ %d/%d", src, len(tt.Nodes), len(rw.Nodes))
		}
		for i := range tt.Nodes {
			if tt.Nodes[i] != rw.Nodes[i] || math.Abs(tt.Weights[i]-rw.Weights[i]) > 1e-12 {
				t.Fatalf("%s entry %d: tt (%v,%g) rwr (%v,%g)", src, i,
					tt.Nodes[i], tt.Weights[i], rw.Nodes[i], rw.Weights[i])
			}
		}
	}
}

// Probability mass is conserved by every step: the walk vector always
// sums to 1, so signature weights are true occupancy probabilities.
func TestRWRMassConservation(t *testing.T) {
	u, w := testGraph(t, true)
	wk := newWalker(w, false)
	n := w.NumNodes()
	cur := make([]float64, n)
	next := make([]float64, n)
	cur[node(t, u, "a")] = 1
	for it := 0; it < 10; it++ {
		wk.step(cur, next, node(t, u, "a"), 0.1)
		cur, next = next, cur
		sum := 0.0
		for _, p := range cur {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("iteration %d mass = %.12f", it, sum)
		}
	}
}

// In directed mode on a bipartite graph, external nodes dangle; the
// dangling redirect must still conserve mass.
func TestRWRDirectedDanglingConservation(t *testing.T) {
	u, w := testGraph(t, true)
	wk := newWalker(w, true)
	n := w.NumNodes()
	cur := make([]float64, n)
	next := make([]float64, n)
	src := node(t, u, "a")
	cur[src] = 1
	for it := 0; it < 6; it++ {
		wk.step(cur, next, src, 0.1)
		cur, next = next, cur
		sum := 0.0
		for _, p := range cur {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("iteration %d mass = %.12f", it, sum)
		}
	}
}

// The hop-bounded walk converges to the unbounded walk as h grows
// (the paper observes RWRʰ ≈ RWR∞ for h beyond the graph diameter).
func TestRWRHopConvergesToStationary(t *testing.T) {
	u, w := testGraph(t, false)
	v := node(t, u, "a")
	inf, err := ComputeOne(RandomWalk{C: 0.1}, w, v, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Residual contraction is (1−c)ᵗ, so 300 hops sit within 1e-13 of
	// the stationary distribution.
	bounded, err := ComputeOne(RandomWalk{C: 0.1, Hops: 300}, w, v, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(inf.Nodes) != len(bounded.Nodes) {
		t.Fatalf("lengths differ: %d vs %d", len(inf.Nodes), len(bounded.Nodes))
	}
	for i := range inf.Nodes {
		if inf.Nodes[i] != bounded.Nodes[i] {
			t.Fatalf("entry %d nodes differ", i)
		}
		if math.Abs(inf.Weights[i]-bounded.Weights[i]) > 1e-6 {
			t.Fatalf("entry %d weights %g vs %g", i, inf.Weights[i], bounded.Weights[i])
		}
	}
}

// At large restart probability the walk concentrates on one-hop
// neighbours: the RWR ranking approaches TT's (paper footnote: at
// c ≈ 0.9 RWR converges to TT).
func TestRWRLargeCApproachesTT(t *testing.T) {
	u, w := testGraph(t, true)
	v := node(t, u, "a")
	tt, err := ComputeOne(TopTalkers{}, w, v, 3)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := ComputeOne(RandomWalk{C: 0.95, Hops: 7}, w, v, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tt.Nodes {
		if tt.Nodes[i] != rw.Nodes[i] {
			t.Fatalf("ranking differs at %d: %v vs %v", i, tt.Nodes, rw.Nodes)
		}
	}
}

// The multi-hop walk must reach beyond one hop: a destination used only
// by a community peer appears in the 3-hop signature but not in TT's.
func TestRWRMultiHopReach(t *testing.T) {
	u := graph.NewUniverse()
	for _, l := range []string{"a", "b"} {
		u.MustIntern(l, graph.Part1)
	}
	for _, l := range []string{"shared", "onlyB"} {
		u.MustIntern(l, graph.Part2)
	}
	b := graph.NewBuilder(u, 0)
	a := u.MustIntern("a", graph.Part1)
	bb := u.MustIntern("b", graph.Part1)
	shared := u.MustIntern("shared", graph.Part2)
	onlyB := u.MustIntern("onlyB", graph.Part2)
	for _, e := range []graph.Edge{
		{From: a, To: shared, Weight: 5},
		{From: bb, To: shared, Weight: 5},
		{From: bb, To: onlyB, Weight: 5},
	} {
		if err := b.Add(e.From, e.To, e.Weight); err != nil {
			t.Fatal(err)
		}
	}
	w := b.Build()
	tt, err := ComputeOne(TopTalkers{}, w, a, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tt.Contains(onlyB) {
		t.Fatal("TT reached a 3-hop destination")
	}
	rw, err := ComputeOne(RandomWalk{C: 0.1, Hops: 3}, w, a, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !rw.Contains(onlyB) {
		t.Fatalf("RWR³ missed the 3-hop destination: %v", rw)
	}
	if rw.Weight(shared) <= rw.Weight(onlyB) {
		t.Fatal("direct neighbour should outweigh the 3-hop one")
	}
}

func TestRWRName(t *testing.T) {
	cases := []struct {
		rw   RandomWalk
		want string
	}{
		{RandomWalk{C: 0.1, Hops: 3}, "rwr3@0.1"},
		{RandomWalk{C: 0.15}, "rwr@0.15"},
		{RandomWalk{C: 0.1, Hops: 5, Directed: true}, "rwr5@0.1+dir"},
	}
	for _, c := range cases {
		if got := c.rw.Name(); got != c.want {
			t.Fatalf("Name = %q, want %q", got, c.want)
		}
	}
}

func TestRWRIsolatedSource(t *testing.T) {
	u, w := testGraph(t, true)
	iso := u.MustIntern("isolated", graph.Part1)
	sig, err := ComputeOne(RandomWalk{C: 0.1, Hops: 3}, w, iso, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !sig.IsEmpty() {
		t.Fatalf("isolated node got signature %v", sig)
	}
}
