package core

import (
	"fmt"
	"math"

	"graphsig/internal/graph"
)

// RandomWalk is the RWR scheme (Definition 5) and its hop-bounded
// variant RWRʰ_c: the relevance of node j to node i is the probability
// that a random walk from i — following edges with probability
// proportional to edge weight and restarting at i with probability C —
// occupies j. Hops==0 runs the iteration
//
//	r ← (1−c)·Pᵀ·r + c·s_i
//
// to convergence (personalized PageRank); Hops==h runs exactly h
// iterations, trading off between the local TT scheme (h=1, c=0) and
// the global stationary distribution (paper §III-B).
//
// By default the walk may traverse edges in both directions
// (weight-proportional), following Sun et al.'s treatment of bipartite
// graphs, which the paper cites for RWR computation: in a local→external
// flow graph external nodes have no outgoing edges, so a strictly
// directed walk dies after one hop. Set Directed for the strict variant
// (exposed as an ablation).
type RandomWalk struct {
	// C is the restart probability c (the paper evaluates c = 0.1; at
	// c → 1 the scheme degenerates to TT).
	C float64
	// Hops bounds the walk length; 0 means run to convergence.
	Hops int
	// Directed restricts the walk to edge direction.
	Directed bool
	// Tol is the L1 convergence tolerance for Hops==0 (default 1e-9).
	Tol float64
	// MaxIter caps convergence iterations for Hops==0 (default 200).
	MaxIter int
}

// Name implements Scheme, e.g. "rwr3@0.1", "rwr@0.15", "rwr5@0.1+dir".
func (r RandomWalk) Name() string {
	name := "rwr"
	if r.Hops > 0 {
		name = fmt.Sprintf("rwr%d", r.Hops)
	}
	name = fmt.Sprintf("%s@%g", name, r.C)
	if r.Directed {
		name += "+dir"
	}
	return name
}

func (r RandomWalk) validate() error {
	if r.C < 0 || r.C > 1 || math.IsNaN(r.C) {
		return fmt.Errorf("core: rwr: restart probability %g outside [0,1]", r.C)
	}
	if r.Hops < 0 {
		return fmt.Errorf("core: rwr: negative hop bound %d", r.Hops)
	}
	if r.Tol < 0 {
		return fmt.Errorf("core: rwr: negative tolerance %g", r.Tol)
	}
	return nil
}

// Compute implements Scheme.
func (r RandomWalk) Compute(w *graph.Window, sources []graph.NodeID, k int) ([]Signature, error) {
	if err := r.validate(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("core: rwr: k must be positive, got %d", k)
	}
	tol := r.Tol
	if tol == 0 {
		tol = 1e-9
	}
	maxIter := r.MaxIter
	if maxIter == 0 {
		maxIter = 200
	}

	wk := newWalker(w, r.Directed)
	n := w.NumNodes()
	cur := make([]float64, n)
	next := make([]float64, n)
	out := make([]Signature, len(sources))
	var cand []entry

	for si, v := range sources {
		for i := range cur {
			cur[i] = 0
		}
		cur[v] = 1
		iters := r.Hops
		if iters == 0 {
			iters = maxIter
		}
		for it := 0; it < iters; it++ {
			wk.step(cur, next, v, r.C)
			cur, next = next, cur
			if r.Hops == 0 {
				diff := 0.0
				for i := range cur {
					diff += math.Abs(cur[i] - next[i])
				}
				if diff < tol {
					break
				}
			}
		}
		cand = cand[:0]
		for u := 0; u < n; u++ {
			id := graph.NodeID(u)
			if cur[u] > 0 && restrictTo(w.Universe(), v, id) {
				cand = append(cand, entry{node: id, weight: cur[u]})
			}
		}
		out[si] = topK(cand, k)
	}
	return out, nil
}

// walker holds the per-window normalizers for one walk direction mode.
type walker struct {
	w        *graph.Window
	directed bool
	// norm[x] is the total weight of edges the walk may leave x along.
	norm []float64
}

func newWalker(w *graph.Window, directed bool) *walker {
	n := w.NumNodes()
	wk := &walker{w: w, directed: directed, norm: make([]float64, n)}
	for v := 0; v < n; v++ {
		id := graph.NodeID(v)
		wk.norm[v] = w.OutWeightSum(id)
		if !directed {
			w.In(id, func(u graph.NodeID, wt float64) bool {
				wk.norm[v] += wt
				return true
			})
		}
	}
	return wk
}

// step computes next = (1−c)·Pᵀ·cur + c·s_src, routing the mass of
// dangling nodes (no usable edges) back to the restart node so that
// probability mass is conserved. next is fully overwritten.
func (wk *walker) step(cur, next []float64, src graph.NodeID, c float64) {
	for i := range next {
		next[i] = 0
	}
	total := 0.0
	dangling := 0.0
	for x := range cur {
		mass := cur[x]
		if mass == 0 {
			continue
		}
		total += mass
		norm := wk.norm[x]
		if norm <= 0 {
			dangling += mass
			continue
		}
		id := graph.NodeID(x)
		spread := (1 - c) * mass / norm
		wk.w.Out(id, func(u graph.NodeID, wt float64) bool {
			next[u] += spread * wt
			return true
		})
		if !wk.directed {
			wk.w.In(id, func(u graph.NodeID, wt float64) bool {
				next[u] += spread * wt
				return true
			})
		}
	}
	next[src] += c*total + (1-c)*dangling
}
