package core

import "math"

// Distance compares two signatures, returning a value in [0, 1]: 0 for
// identical signatures, 1 for disjoint ones (§IV-B). Two empty
// signatures are at distance 0 (an individual who communicated with
// nobody in both windows behaved identically); an empty versus a
// non-empty signature is at distance 1.
type Distance interface {
	// Name is a short stable identifier ("jaccard", "dice", ...).
	Name() string
	// Dist computes the distance between a and b.
	Dist(a, b Signature) float64
}

// Jaccard is Dist_Jac: 1 − |S1∩S2| / |S1∪S2|, ignoring weights.
type Jaccard struct{}

// Name implements Distance.
func (Jaccard) Name() string { return "jaccard" }

// Dist implements Distance.
func (Jaccard) Dist(a, b Signature) float64 {
	if a.IsEmpty() && b.IsEmpty() {
		return 0
	}
	inter := 0
	for _, u := range a.Nodes {
		if b.Contains(u) {
			inter++
		}
	}
	union := len(a.Nodes) + len(b.Nodes) - inter
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}

// Dice is Dist_Dice, the weighted extension of the Dice criterion:
// 1 − Σ_{j∈S1∩S2}(w1j+w2j) / Σ_{j∈S1∪S2}(w1j+w2j). Nodes absent from a
// signature contribute weight 0, so the denominator is the total weight
// of both signatures.
type Dice struct{}

// Name implements Distance.
func (Dice) Name() string { return "dice" }

// Dist implements Distance.
func (Dice) Dist(a, b Signature) float64 {
	if a.IsEmpty() && b.IsEmpty() {
		return 0
	}
	num := 0.0
	for i, u := range a.Nodes {
		if wb := b.Weight(u); wb > 0 {
			num += a.Weights[i] + wb
		}
	}
	den := a.WeightSum() + b.WeightSum()
	if den == 0 {
		return 0
	}
	return clamp01(1 - num/den)
}

// ScaledDice is Dist_SDice: 1 − Σ min(w1j,w2j) / Σ max(w1j,w2j) over the
// union. It rewards signatures whose common members carry *similar*
// weights, not just overlapping membership.
type ScaledDice struct{}

// Name implements Distance.
func (ScaledDice) Name() string { return "sdice" }

// Dist implements Distance.
func (ScaledDice) Dist(a, b Signature) float64 {
	if a.IsEmpty() && b.IsEmpty() {
		return 0
	}
	num, den := 0.0, 0.0
	for i, u := range a.Nodes {
		wa := a.Weights[i]
		wb := b.Weight(u)
		num += math.Min(wa, wb)
		den += math.Max(wa, wb)
	}
	for i, u := range b.Nodes {
		if !a.Contains(u) {
			den += b.Weights[i]
		}
	}
	if den == 0 {
		return 0
	}
	return clamp01(1 - num/den)
}

// ScaledHellinger is Dist_SHel: 1 − Σ √(w1j·w2j) / Σ max(w1j,w2j). The
// geometric-mean numerator (after the Hellinger affinity) softens
// SDice's min, which over-penalizes unequal weights on common members.
type ScaledHellinger struct{}

// Name implements Distance.
func (ScaledHellinger) Name() string { return "shel" }

// Dist implements Distance.
func (ScaledHellinger) Dist(a, b Signature) float64 {
	if a.IsEmpty() && b.IsEmpty() {
		return 0
	}
	num, den := 0.0, 0.0
	for i, u := range a.Nodes {
		wa := a.Weights[i]
		wb := b.Weight(u)
		num += math.Sqrt(wa * wb)
		den += math.Max(wa, wb)
	}
	for i, u := range b.Nodes {
		if !a.Contains(u) {
			den += b.Weights[i]
		}
	}
	if den == 0 {
		return 0
	}
	return clamp01(1 - num/den)
}

// AllDistances returns the paper's four distance functions in the order
// Figure 1 and Figure 3 report them.
func AllDistances() []Distance {
	return []Distance{Jaccard{}, Dice{}, ScaledDice{}, ScaledHellinger{}}
}

// DistanceByName returns the distance with the given Name — one of the
// paper's four or the extended extras — or false.
func DistanceByName(name string) (Distance, bool) {
	for _, d := range ExtendedDistances() {
		if d.Name() == name {
			return d, true
		}
	}
	return nil, false
}

// clamp01 guards against floating-point excursions just outside [0,1].
func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
