package core

import (
	"fmt"

	"graphsig/internal/graph"
)

// Blend combines two schemes into one: each source's relevance vector
// is the convex combination α·Â + (1−α)·B̂ of the component schemes'
// weight-normalized signatures, re-cut to the top k. The paper's
// conclusion observes that no single scheme is good for all
// applications because each trades the three properties differently;
// blending interpolates those trade-offs (e.g. TT's robustness with
// UT's uniqueness) and is evaluated by the BlendAblation experiment.
//
// The component signatures are computed with an enlarged candidate
// budget (3k) before mixing so that a node ranked k+1 by one component
// can still enter the blended top-k.
type Blend struct {
	A, B Scheme
	// Alpha is the weight of A in [0,1].
	Alpha float64
}

// Name implements Scheme, e.g. "blend(0.5*tt+0.5*ut)".
func (b Blend) Name() string {
	return fmt.Sprintf("blend(%g*%s+%g*%s)", b.Alpha, b.A.Name(), 1-b.Alpha, b.B.Name())
}

// Compute implements Scheme.
func (b Blend) Compute(w *graph.Window, sources []graph.NodeID, k int) ([]Signature, error) {
	if b.Alpha < 0 || b.Alpha > 1 {
		return nil, fmt.Errorf("core: blend alpha %g outside [0,1]", b.Alpha)
	}
	if b.A == nil || b.B == nil {
		return nil, fmt.Errorf("core: blend requires two component schemes")
	}
	if k <= 0 {
		return nil, fmt.Errorf("core: blend: k must be positive, got %d", k)
	}
	budget := 3 * k
	sigsA, err := b.A.Compute(w, sources, budget)
	if err != nil {
		return nil, fmt.Errorf("core: blend component %s: %w", b.A.Name(), err)
	}
	sigsB, err := b.B.Compute(w, sources, budget)
	if err != nil {
		return nil, fmt.Errorf("core: blend component %s: %w", b.B.Name(), err)
	}
	if len(sigsA) != len(sources) || len(sigsB) != len(sources) {
		return nil, fmt.Errorf("core: blend components returned %d/%d signatures for %d sources",
			len(sigsA), len(sigsB), len(sources))
	}
	out := make([]Signature, len(sources))
	for i := range sources {
		na := sigsA[i].Normalized()
		nb := sigsB[i].Normalized()
		mixed := make(map[graph.NodeID]float64, na.Len()+nb.Len())
		for j, u := range na.Nodes {
			mixed[u] += b.Alpha * na.Weights[j]
		}
		for j, u := range nb.Nodes {
			mixed[u] += (1 - b.Alpha) * nb.Weights[j]
		}
		out[i] = FromWeights(mixed, k)
	}
	return out, nil
}
