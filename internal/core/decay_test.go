package core

import (
	"math"
	"testing"

	"graphsig/internal/graph"
)

func decayWindows(t *testing.T) (*graph.Universe, []*graph.Window) {
	t.Helper()
	u := graph.NewUniverse()
	a := u.MustIntern("a", graph.PartNone)
	x := u.MustIntern("x", graph.PartNone)
	y := u.MustIntern("y", graph.PartNone)
	var wins []*graph.Window
	for i, es := range [][]graph.Edge{
		{{From: a, To: x, Weight: 4}},
		{{From: a, To: y, Weight: 2}},
		{{From: a, To: x, Weight: 1}},
	} {
		w, err := graph.FromEdges(u, i, es)
		if err != nil {
			t.Fatal(err)
		}
		wins = append(wins, w)
	}
	return u, wins
}

func TestDecayZeroIsIdentity(t *testing.T) {
	_, wins := decayWindows(t)
	out, err := DecayCombine(wins, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wins {
		if out[i].NumEdges() != wins[i].NumEdges() || out[i].TotalWeight() != wins[i].TotalWeight() {
			t.Fatalf("window %d changed under λ=0", i)
		}
	}
}

func TestDecayCumulativeFormula(t *testing.T) {
	u, wins := decayWindows(t)
	const lambda = 0.5
	out, err := DecayCombine(wins, lambda)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := u.Lookup("a")
	x, _ := u.Lookup("x")
	y, _ := u.Lookup("y")
	// t0: C'[a,x]=4.
	// t1: C'[a,x]=2, C'[a,y]=2.
	// t2: C'[a,x]=1+1=2, C'[a,y]=1.
	checks := []struct {
		t    int
		to   graph.NodeID
		want float64
	}{
		{0, x, 4}, {0, y, 0},
		{1, x, 2}, {1, y, 2},
		{2, x, 2}, {2, y, 1},
	}
	for _, c := range checks {
		if got := out[c.t].Weight(a, c.to); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("t=%d C'[a,%d] = %g, want %g", c.t, c.to, got, c.want)
		}
	}
}

func TestDecayValidation(t *testing.T) {
	_, wins := decayWindows(t)
	for _, lambda := range []float64{-0.1, 1, 1.5} {
		if _, err := DecayCombine(wins, lambda); err == nil {
			t.Fatalf("λ=%g accepted", lambda)
		}
	}
	out, err := DecayCombine(nil, 0.5)
	if err != nil || out != nil {
		t.Fatal("empty input should yield empty output")
	}
	// Mixed universes are rejected.
	other := graph.NewUniverse()
	other.MustIntern("a", graph.PartNone)
	other.MustIntern("x", graph.PartNone)
	foreign, err := graph.FromEdges(other, 0, []graph.Edge{{From: 0, To: 1, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecayCombine([]*graph.Window{wins[0], foreign}, 0.5); err == nil {
		t.Fatal("mixed universes accepted")
	}
}

func TestParseSchemeRoundTrip(t *testing.T) {
	schemes := []Scheme{
		TopTalkers{},
		UnexpectedTalkers{},
		UnexpectedTalkers{Scaling: UTTFIDF},
		RandomWalk{C: 0.1, Hops: 3},
		RandomWalk{C: 0.25},
		RandomWalk{C: 0.1, Hops: 7, Directed: true},
	}
	for _, s := range schemes {
		got, err := ParseScheme(s.Name())
		if err != nil {
			t.Fatalf("ParseScheme(%q): %v", s.Name(), err)
		}
		if got.Name() != s.Name() {
			t.Fatalf("round trip %q → %q", s.Name(), got.Name())
		}
	}
}

func TestParseSchemeErrors(t *testing.T) {
	for _, name := range []string{
		"", "unknown", "rwr", "rwr3", "rwrX@0.1", "rwr3@2", "rwr3@x", "rwr-1@0.1", "rwr0@0.1",
	} {
		if _, err := ParseScheme(name); err == nil {
			t.Fatalf("ParseScheme(%q) succeeded", name)
		}
	}
}

func TestPaperSchemeLineups(t *testing.T) {
	ps := PaperSchemes()
	if len(ps) != 5 {
		t.Fatalf("PaperSchemes: %d", len(ps))
	}
	wantNames := []string{"tt", "ut", "rwr3@0.1", "rwr5@0.1", "rwr7@0.1"}
	for i, s := range ps {
		if s.Name() != wantNames[i] {
			t.Fatalf("scheme %d = %q", i, s.Name())
		}
	}
	as := ApplicationSchemes()
	if len(as) != 3 || as[2].Name() != "rwr3@0.1" {
		t.Fatalf("ApplicationSchemes wrong")
	}
}
