package core

import (
	"math"
	"testing"
	"testing/quick"

	"graphsig/internal/graph"
)

func sig(pairs ...any) Signature {
	w := map[graph.NodeID]float64{}
	for i := 0; i < len(pairs); i += 2 {
		w[graph.NodeID(pairs[i].(int))] = pairs[i+1].(float64)
	}
	return FromWeights(w, len(pairs))
}

func TestDistanceHandComputed(t *testing.T) {
	a := sig(1, 0.6, 2, 0.4)
	b := sig(2, 0.4, 3, 0.6)
	// Intersection {2}; union {1,2,3}.
	cases := []struct {
		d    Distance
		want float64
	}{
		{Jaccard{}, 1 - 1.0/3},
		// Dice: 1 − (0.4+0.4)/(1.0+1.0) = 0.6
		{Dice{}, 0.6},
		// SDice: 1 − min(0.4,0.4)/(0.6+0.4+0.6) = 1 − 0.4/1.6 = 0.75
		{ScaledDice{}, 0.75},
		// SHel: 1 − √(0.16)/1.6 = 0.75
		{ScaledHellinger{}, 0.75},
	}
	for _, c := range cases {
		if got := c.d.Dist(a, b); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("%s = %.6f, want %.6f", c.d.Name(), got, c.want)
		}
	}
}

func TestDistanceSHelSoftensSDice(t *testing.T) {
	// Same members, unequal weights: SHel must penalize less than SDice.
	a := sig(1, 0.9, 2, 0.1)
	b := sig(1, 0.1, 2, 0.9)
	sd := ScaledDice{}.Dist(a, b)
	sh := ScaledHellinger{}.Dist(a, b)
	if !(sh < sd) {
		t.Fatalf("SHel (%g) not below SDice (%g)", sh, sd)
	}
	// Jaccard sees identical sets.
	if (Jaccard{}).Dist(a, b) != 0 {
		t.Fatal("Jaccard should ignore weights")
	}
}

func TestDistanceIdentityAndDisjoint(t *testing.T) {
	a := sig(1, 0.6, 2, 0.4)
	c := sig(5, 1.0)
	for _, d := range AllDistances() {
		if got := d.Dist(a, a); got != 0 {
			t.Fatalf("%s(a,a) = %g", d.Name(), got)
		}
		if got := d.Dist(a, c); got != 1 {
			t.Fatalf("%s(disjoint) = %g", d.Name(), got)
		}
	}
}

func TestDistanceEmptyCases(t *testing.T) {
	a := sig(1, 0.6)
	empty := Signature{}
	for _, d := range AllDistances() {
		if got := d.Dist(empty, empty); got != 0 {
			t.Fatalf("%s(∅,∅) = %g", d.Name(), got)
		}
		if got := d.Dist(a, empty); got != 1 {
			t.Fatalf("%s(a,∅) = %g", d.Name(), got)
		}
		if got := d.Dist(empty, a); got != 1 {
			t.Fatalf("%s(∅,a) = %g", d.Name(), got)
		}
	}
}

// Property: all four distances are symmetric and bounded in [0,1] for
// arbitrary valid signatures.
func TestDistanceBoundsAndSymmetry(t *testing.T) {
	gen := func(raw map[uint8]uint16) Signature {
		w := map[graph.NodeID]float64{}
		for n, v := range raw {
			w[graph.NodeID(n%32)] = float64(v%1000)/100 + 0.01
		}
		return FromWeights(w, 10)
	}
	f := func(rawA, rawB map[uint8]uint16) bool {
		a, b := gen(rawA), gen(rawB)
		for _, d := range AllDistances() {
			ab := d.Dist(a, b)
			ba := d.Dist(b, a)
			if math.Abs(ab-ba) > 1e-12 {
				return false
			}
			if ab < 0 || ab > 1 || math.IsNaN(ab) {
				return false
			}
			if d.Dist(a, a) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceByName(t *testing.T) {
	for _, d := range AllDistances() {
		got, ok := DistanceByName(d.Name())
		if !ok || got.Name() != d.Name() {
			t.Fatalf("DistanceByName(%q) failed", d.Name())
		}
	}
	if _, ok := DistanceByName("nope"); ok {
		t.Fatal("DistanceByName invented a distance")
	}
}

// Property: subset relation — removing members never decreases Jaccard
// distance to the original.
func TestJaccardSubsetMonotone(t *testing.T) {
	f := func(raw map[uint8]uint16, drop uint8) bool {
		w := map[graph.NodeID]float64{}
		for n, v := range raw {
			w[graph.NodeID(n%32)] = float64(v%100) + 1
		}
		full := FromWeights(w, 32)
		if full.Len() < 2 {
			return true
		}
		// Drop one member.
		removed := full.Nodes[int(drop)%full.Len()]
		delete(w, removed)
		sub := FromWeights(w, 32)
		d := Jaccard{}
		return d.Dist(full, sub) > 0 && d.Dist(full, sub) < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
