package core

import (
	"math"
	"testing"
	"testing/quick"

	"graphsig/internal/graph"
)

func TestFromWeightsCanonicalOrder(t *testing.T) {
	sig := FromWeights(map[graph.NodeID]float64{
		3: 0.5, 1: 0.5, 7: 0.9, 2: 0.1,
	}, 3)
	if sig.Len() != 3 {
		t.Fatalf("Len = %d", sig.Len())
	}
	// Weight desc, node-id asc within ties.
	wantNodes := []graph.NodeID{7, 1, 3}
	wantWeights := []float64{0.9, 0.5, 0.5}
	for i := range wantNodes {
		if sig.Nodes[i] != wantNodes[i] || sig.Weights[i] != wantWeights[i] {
			t.Fatalf("entry %d = (%d,%g)", i, sig.Nodes[i], sig.Weights[i])
		}
	}
	if err := sig.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromWeightsFiltersInvalid(t *testing.T) {
	sig := FromWeights(map[graph.NodeID]float64{
		1: 0, 2: -3, 3: math.NaN(), 4: math.Inf(1), 5: 0.2,
	}, 10)
	if sig.Len() != 1 || sig.Nodes[0] != 5 {
		t.Fatalf("filtering wrong: %v", sig)
	}
}

func TestSignatureAccessors(t *testing.T) {
	sig := FromWeights(map[graph.NodeID]float64{1: 0.6, 2: 0.4}, 5)
	if sig.Weight(1) != 0.6 || sig.Weight(9) != 0 {
		t.Fatal("Weight lookup wrong")
	}
	if !sig.Contains(2) || sig.Contains(9) {
		t.Fatal("Contains wrong")
	}
	if sig.WeightSum() != 1.0 {
		t.Fatalf("WeightSum = %g", sig.WeightSum())
	}
	if sig.IsEmpty() {
		t.Fatal("IsEmpty wrong")
	}
	if (Signature{}).IsEmpty() == false {
		t.Fatal("empty signature not empty")
	}
	if sig.String() == "" {
		t.Fatal("String empty")
	}
}

func TestSignatureNormalized(t *testing.T) {
	sig := FromWeights(map[graph.NodeID]float64{1: 3, 2: 1}, 5)
	n := sig.Normalized()
	if math.Abs(n.WeightSum()-1) > 1e-12 {
		t.Fatalf("normalized sum = %g", n.WeightSum())
	}
	if n.Weights[0] != 0.75 {
		t.Fatalf("normalized top weight = %g", n.Weights[0])
	}
	// The original is untouched.
	if sig.Weights[0] != 3 {
		t.Fatal("Normalized mutated the receiver")
	}
	empty := Signature{}
	if !empty.Normalized().IsEmpty() {
		t.Fatal("Normalized of empty changed it")
	}
}

func TestSignatureEqual(t *testing.T) {
	a := FromWeights(map[graph.NodeID]float64{1: 1, 2: 0.5}, 5)
	b := FromWeights(map[graph.NodeID]float64{1: 1, 2: 0.5}, 5)
	c := FromWeights(map[graph.NodeID]float64{1: 1, 2: 0.6}, 5)
	if !a.Equal(b) || a.Equal(c) || a.Equal(Signature{}) {
		t.Fatal("Equal wrong")
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	bad := []Signature{
		{Nodes: []graph.NodeID{1}, Weights: nil},
		{Nodes: []graph.NodeID{1}, Weights: []float64{0}},
		{Nodes: []graph.NodeID{1}, Weights: []float64{-1}},
		{Nodes: []graph.NodeID{1, 1}, Weights: []float64{2, 1}},
		{Nodes: []graph.NodeID{1, 2}, Weights: []float64{1, 2}},     // ascending weights
		{Nodes: []graph.NodeID{1}, Weights: []float64{math.NaN()}},  // NaN
		{Nodes: []graph.NodeID{1}, Weights: []float64{math.Inf(1)}}, // Inf
	}
	for i, sig := range bad {
		if err := sig.Validate(); err == nil {
			t.Fatalf("case %d validated: %v", i, sig)
		}
	}
}

// Property: FromWeights always yields a valid signature of length
// min(k, positive entries).
func TestFromWeightsProperty(t *testing.T) {
	f := func(raw map[uint8]float64, kRaw uint8) bool {
		k := int(kRaw%12) + 1
		weights := map[graph.NodeID]float64{}
		positives := 0
		for n, w := range raw {
			weights[graph.NodeID(n)] = w
			if w > 0 && !math.IsNaN(w) && !math.IsInf(w, 0) {
				positives++
			}
		}
		sig := FromWeights(weights, k)
		if sig.Validate() != nil {
			return false
		}
		want := positives
		if k < want {
			want = k
		}
		return sig.Len() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
