package core

import (
	"math"
	"sort"

	"graphsig/internal/graph"
)

// This file implements the merge-join distance kernels: a node-sorted
// view of a Signature (SortedSig, built once per signature) and a
// DistKernel that computes every distance in ExtendedDistances in O(k)
// via a sorted merge instead of the O(k²) Contains/Weight probing the
// naive Dist methods do.
//
// Bit-identity contract: for Validate-clean signatures,
// DistKernel.Dist(NewSortedSig(a), NewSortedSig(b)) returns the exact
// same float64 as Distance.Dist(a, b). The kernels achieve this not by
// re-deriving the formulas but by replaying the naive accumulation
// order: the shared nodes are located first (recording, for each shared
// node, its canonical index on both sides); the numerator/denominator
// folds then run over the canonical (weight-descending) entry order
// exactly as the naive loops do, with the O(k) per-probe
// b.Weight(u)/b.Contains(u) lookups replaced by O(1) reads.
//
// Two IEEE-754 facts let the folds skip work the naive loops do without
// changing a single output bit:
//
//   - x + (+0.0) == x for every x ≠ -0.0, and the numerator accumulators
//     only ever hold sums of non-negative terms starting from +0.0, so
//     the naive loops' zero terms for unshared nodes (min(w,0), √(w·0),
//     w·0) can be skipped outright. Jaccard, Dice and Cosine numerators
//     touch only shared nodes, making those kernels O(shared) per pair.
//   - max(w, 0) == w and positive weights are never NaN nor -0.0, so
//     math.Max/math.Min calls collapse to plain comparisons.
//
// Disjoint closed form: when two Validate-clean signatures share no
// node, every distance in ExtendedDistances is exactly 1.0 (the
// numerator folds over min(w,0)/√(w·0)/0-dot terms are exactly +0.0 and
// the denominator is positive, so 1 − 0/den == 1.0 bit-for-bit), except
// that two empty signatures are at distance exactly 0.0. Batch layers
// (internal/distmat) rely on this to resolve disjoint pairs in O(1)
// without touching a kernel.

// SortedSig is a node-sorted view of a canonical Signature, the input
// the merge-join kernels operate on. Build it once per signature (it is
// immutable afterwards) and reuse it across every pairwise comparison.
// The signature must be Validate-clean: nodes unique, canonical order.
type SortedSig struct {
	sig   Signature
	nodes []graph.NodeID // signature nodes, ascending
	pos   []int32        // pos[j] = canonical index of nodes[j] in sig
	sum   float64        // fold of sig.Weights in canonical order (== WeightSum)
	sumSq float64        // fold of w² in canonical order (cosine's norm)
	normW []float64      // Normalized().Weights in canonical order
}

// NewSortedSig builds the node-sorted view of s.
func NewSortedSig(s Signature) SortedSig {
	n := len(s.Nodes)
	if n == 0 {
		return SortedSig{sig: s}
	}
	return makeSortedSig(s, make([]graph.NodeID, n), make([]int32, n), make([]float64, n))
}

// NewSortedSigs builds the views of all sigs at once, equivalent to
// NewSortedSig per element but with the per-view slices carved from
// three bulk allocations — the constructor batch layers use to view
// whole signature sets.
func NewSortedSigs(sigs []Signature) []SortedSig {
	total := 0
	for _, s := range sigs {
		total += len(s.Nodes)
	}
	views := make([]SortedSig, len(sigs))
	nodesAll := make([]graph.NodeID, total)
	posAll := make([]int32, total)
	normAll := make([]float64, total)
	off := 0
	for i, s := range sigs {
		n := len(s.Nodes)
		if n == 0 {
			views[i] = SortedSig{sig: s}
			continue
		}
		views[i] = makeSortedSig(s,
			nodesAll[off:off+n:off+n], posAll[off:off+n:off+n], normAll[off:off+n:off+n])
		off += n
	}
	return views
}

// insertionSortCutoff bounds the signature size the node sort handles
// with a branch-light insertion sort; larger signatures (rare — k is
// typically ≤ 40) fall back to sort.Slice. Both produce the one
// ascending order of the unique nodes.
const insertionSortCutoff = 48

// makeSortedSig fills the view of s into the provided backing slices,
// each of length len(s.Nodes).
func makeSortedSig(s Signature, nodes []graph.NodeID, pos []int32, norm []float64) SortedSig {
	v := SortedSig{sig: s, nodes: nodes, pos: pos}
	n := len(s.Nodes)
	for i := range pos {
		pos[i] = int32(i)
	}
	if n <= insertionSortCutoff {
		for i := 1; i < n; i++ {
			p := pos[i]
			key := s.Nodes[p]
			j := i - 1
			for j >= 0 && s.Nodes[pos[j]] > key {
				pos[j+1] = pos[j]
				j--
			}
			pos[j+1] = p
		}
	} else {
		sort.Slice(pos, func(a, b int) bool {
			return s.Nodes[pos[a]] < s.Nodes[pos[b]]
		})
	}
	for j, p := range pos {
		nodes[j] = s.Nodes[p]
	}
	for _, w := range s.Weights {
		v.sum += w
		v.sumSq += w * w
	}
	// Mirror Signature.Normalized exactly: massless signatures keep
	// their raw weights.
	if v.sum > 0 {
		for i, w := range s.Weights {
			norm[i] = w / v.sum
		}
		v.normW = norm
	} else {
		v.normW = s.Weights
	}
	return v
}

// Sig returns the underlying canonical signature.
func (v SortedSig) Sig() Signature { return v.sig }

// Len reports the number of entries.
func (v SortedSig) Len() int { return len(v.nodes) }

// IsEmpty reports whether the signature has no entries.
func (v SortedSig) IsEmpty() bool { return len(v.nodes) == 0 }

// SortedNodes returns the signature's nodes in ascending order. The
// slice is owned by the view; callers must not mutate it.
func (v SortedSig) SortedNodes() []graph.NodeID { return v.nodes }

// WeightSum returns the precomputed total weight.
func (v SortedSig) WeightSum() float64 { return v.sum }

// fmin and fmax are math.Min/math.Max restricted to the non-negative
// finite weights Validate-clean signatures carry (no NaN, no -0.0),
// where the special-case handling collapses to one comparison.
func fmin(x, y float64) float64 {
	if x < y {
		return x
	}
	return y
}

func fmax(x, y float64) float64 {
	if x > y {
		return x
	}
	return y
}

// KernelKind identifies which of the six registered distances a
// DistKernel implements. Batch layers use it to pick a row strategy
// (count/sum/dot scatter vs full match lists) and the matching
// prefilter bound.
type KernelKind int

const (
	KindJaccard KernelKind = iota
	KindDice
	KindScaledDice
	KindScaledHellinger
	KindCosine
	KindWeightedJaccard
)

// Match records one shared node: its canonical index in the two
// signatures being compared (A-side and B-side).
type Match struct {
	A, B int32
}

// DistKernel computes distances between SortedSig views in O(k) per
// pair — O(shared) for Jaccard/Dice/Cosine — bit-identical to the
// corresponding Distance.Dist. It holds scratch state, so it is NOT
// safe for concurrent use: create one kernel per goroutine
// (construction is cheap).
type DistKernel struct {
	d    Distance
	kind KernelKind
	// Scratch: matches lists the shared canonical index pairs found by
	// the merge; bsorted is the B side re-sorted ascending for the
	// b-side fold.
	matches []Match
	bsorted []int32
}

// NewDistKernel returns a merge-join kernel for d, or false when d is
// not one of the known kernelizable distances (a custom Distance
// implementation): callers then fall back to the naive d.Dist.
func NewDistKernel(d Distance) (*DistKernel, bool) {
	kind, ok := kernelKindOf(d)
	if !ok {
		return nil, false
	}
	return &DistKernel{d: d, kind: kind}, true
}

func kernelKindOf(d Distance) (KernelKind, bool) {
	switch d.(type) {
	case Jaccard:
		return KindJaccard, true
	case Dice:
		return KindDice, true
	case ScaledDice:
		return KindScaledDice, true
	case ScaledHellinger:
		return KindScaledHellinger, true
	case Cosine:
		return KindCosine, true
	case WeightedJaccard:
		return KindWeightedJaccard, true
	default:
		return 0, false
	}
}

// Distance returns the wrapped distance.
func (k *DistKernel) Distance() Distance { return k.d }

// Kind reports which registered distance the kernel implements.
func (k *DistKernel) Kind() KernelKind { return k.kind }

// Reset re-points the kernel at d, keeping the grown scratch arrays —
// what pooled batch layers use to recycle kernels across jobs with no
// allocation. Returns false (kernel unchanged) when d is not
// kernelizable.
func (k *DistKernel) Reset(d Distance) bool {
	kind, ok := kernelKindOf(d)
	if !ok {
		return false
	}
	k.d, k.kind = d, kind
	return true
}

// Dist computes the distance between a and b, bit-identical to
// k.Distance().Dist(a.Sig(), b.Sig()).
func (k *DistKernel) Dist(a, b *SortedSig) float64 {
	if a.IsEmpty() && b.IsEmpty() {
		return 0
	}
	k.merge(a, b)
	k.sortMatchesByA()
	return k.distMatched(a, b, k.matches)
}

// DistMatched computes the distance given the precomputed shared-node
// match list: one Match per node the two signatures share, holding its
// canonical index in a (A) and in b (B), with the A side ASCENDING
// (i.e. matches listed in a's canonical order — what an inverted-index
// walk of a's entries produces naturally). Batch layers that already
// know the shared nodes use this entry point to skip the merge.
// Bit-identical to Dist.
func (k *DistKernel) DistMatched(a, b *SortedSig, matches []Match) float64 {
	if a.IsEmpty() && b.IsEmpty() {
		return 0
	}
	return k.distMatched(a, b, matches)
}

func (k *DistKernel) distMatched(a, b *SortedSig, matches []Match) float64 {
	switch k.kind {
	case KindJaccard:
		return jaccardCount(a.Len(), b.Len(), len(matches))
	case KindDice:
		return diceFold(a.sig.Weights, b.sig.Weights, a.sum, b.sum, matches)
	case KindScaledDice:
		return k.scaledFold(a.sig.Weights, b.sig.Weights, matches, false)
	case KindScaledHellinger:
		return k.scaledFold(a.sig.Weights, b.sig.Weights, matches, true)
	case KindCosine:
		return cosineFold(a.sig.Weights, b.sig.Weights, a.sumSq, b.sumSq,
			math.Sqrt(a.sumSq), math.Sqrt(b.sumSq), matches)
	default:
		return k.scaledFold(a.normW, b.normW, matches, false)
	}
}

// merge walks the two sorted node lists recording, for every shared
// node, its canonical index on both sides.
func (k *DistKernel) merge(a, b *SortedSig) {
	k.matches = k.matches[:0]
	i, j := 0, 0
	for i < len(a.nodes) && j < len(b.nodes) {
		switch {
		case a.nodes[i] < b.nodes[j]:
			i++
		case a.nodes[i] > b.nodes[j]:
			j++
		default:
			k.matches = append(k.matches, Match{A: a.pos[i], B: b.pos[j]})
			i++
			j++
		}
	}
}

// sortMatchesByA reorders the matches into ascending A — the merge
// emits them in node order, the folds consume them in a's canonical
// order. Shared counts are tiny; insertion sort.
func (k *DistKernel) sortMatchesByA() {
	ms := k.matches
	for i := 1; i < len(ms); i++ {
		m := ms[i]
		j := i - 1
		for j >= 0 && ms[j].A > m.A {
			ms[j+1] = ms[j]
			j--
		}
		ms[j+1] = m
	}
}

// sortBAscending copies the matches' B side into the bsorted scratch in
// ascending order, for the b-side unshared fold. Shared counts are
// tiny; insertion sort.
func (k *DistKernel) sortBAscending(matches []Match) []int32 {
	if cap(k.bsorted) < len(matches) {
		k.bsorted = make([]int32, len(matches))
	}
	bs := k.bsorted[:len(matches)]
	for i, m := range matches {
		bj := m.B
		j := i - 1
		for j >= 0 && bs[j] > bj {
			bs[j+1] = bs[j]
			j--
		}
		bs[j+1] = bj
	}
	return bs
}

// jaccardCount: the numerator is the shared-node count and the naive
// division is replayed verbatim, so the whole distance is O(1) given
// the match count.
func jaccardCount(la, lb, inter int) float64 {
	union := la + lb - inter
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}

// diceFold: the naive numerator adds wa+wb for exactly the shared
// entries in a's canonical order — the matched list verbatim — and the
// denominator is the two precomputed canonical-order weight sums.
func diceFold(aw, bwgt []float64, asum, bsum float64, matches []Match) float64 {
	num := 0.0
	for _, m := range matches {
		num += aw[m.A] + bwgt[m.B]
	}
	den := asum + bsum
	if den == 0 {
		return 0
	}
	return clamp01(1 - num/den)
}

// scaledMinMax is the shared fold of ScaledDice/ScaledHellinger/
// WeightedJaccard: numerator over the shared entries in a's canonical
// order (the naive loops' unshared terms are exact +0.0s, see the file
// comment), denominator interleaving max(wa,wb) and unshared-wa terms
// in a's canonical order followed by b's unshared remainder in b's
// canonical order. The match list's A side must be ascending; the b
// remainder walks the B side re-sorted ascending, so no scatter arrays
// are touched at all.
func (k *DistKernel) scaledMinMax(aw, bwgt []float64, matches []Match, hellinger bool) (num, den float64) {
	t := 0
	for i, wa := range aw {
		if t < len(matches) && matches[t].A == int32(i) {
			wb := bwgt[matches[t].B]
			if hellinger {
				num += math.Sqrt(wa * wb)
			} else {
				num += fmin(wa, wb)
			}
			den += fmax(wa, wb)
			t++
		} else {
			den += wa // == math.Max(wa, 0) for the positive weights
		}
	}
	bs := k.sortBAscending(matches)
	t = 0
	for j, wb := range bwgt {
		if t < len(bs) && bs[t] == int32(j) {
			t++
			continue
		}
		den += wb
	}
	return num, den
}

// scaledFold computes SDice (hellinger=false), SHel (hellinger=true)
// and — fed the normalized weights — WeightedJaccard, which all share
// the min/max-denominator structure.
func (k *DistKernel) scaledFold(aw, bwgt []float64, matches []Match, hellinger bool) float64 {
	num, den := k.scaledMinMax(aw, bwgt, matches, hellinger)
	if den == 0 {
		return 0
	}
	return clamp01(1 - num/den)
}

// cosineFold: the naive dot accumulates shared entries in a's canonical
// order (unshared terms are skipped by its wb > 0 branch); the norms
// are the canonical-order sumSq folds and their precomputed roots.
func cosineFold(aw, bwgt []float64, asumSq, bsumSq, anorm, bnorm float64, matches []Match) float64 {
	dot := 0.0
	for _, m := range matches {
		dot += aw[m.A] * bwgt[m.B]
	}
	if asumSq == 0 || bsumSq == 0 {
		return 1
	}
	return clamp01(1 - dot/(anorm*bnorm))
}
