package core

import (
	"fmt"
	"runtime"
	"sync"

	"graphsig/internal/graph"
)

// Parallel wraps a scheme so that Compute splits its sources across
// workers goroutines (0 means GOMAXPROCS). Signature schemes are
// per-source independent — the random walk in particular dominates the
// full-scale experiment runtime — so the wrapped scheme produces
// bit-identical results in the original source order.
func Parallel(s Scheme, workers int) Scheme {
	return parallelScheme{inner: s, workers: workers}
}

type parallelScheme struct {
	inner   Scheme
	workers int
}

// Name implements Scheme; parallelism does not change results, so the
// wrapped name is kept (results remain comparable/cacheable).
func (p parallelScheme) Name() string { return p.inner.Name() }

// Compute implements Scheme.
func (p parallelScheme) Compute(w *graph.Window, sources []graph.NodeID, k int) ([]Signature, error) {
	workers := p.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(sources) < 2*workers {
		return p.inner.Compute(w, sources, k)
	}
	out := make([]Signature, len(sources))
	chunk := (len(sources) + workers - 1) / workers
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for wi := 0; wi < workers; wi++ {
		lo := wi * chunk
		if lo >= len(sources) {
			break
		}
		hi := lo + chunk
		if hi > len(sources) {
			hi = len(sources)
		}
		wg.Add(1)
		go func(wi, lo, hi int) {
			defer wg.Done()
			sigs, err := p.inner.Compute(w, sources[lo:hi], k)
			if err != nil {
				errs[wi] = err
				return
			}
			if len(sigs) != hi-lo {
				errs[wi] = fmt.Errorf("core: parallel: inner scheme returned %d signatures for %d sources", len(sigs), hi-lo)
				return
			}
			copy(out[lo:hi], sigs)
		}(wi, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
