package core

import (
	"fmt"
	"math"

	"graphsig/internal/graph"
)

// TopTalkers is the TT scheme (Definition 3): the relevance of neighbour
// j to node i is the normalized outgoing weight C[i,j] / Σ_v C[i,v]. It
// exploits locality and engagement, yielding uniqueness and robustness
// (Table III). TT is implicit in the "Communities of Interest" work the
// paper builds on.
type TopTalkers struct{}

// Name implements Scheme.
func (TopTalkers) Name() string { return "tt" }

// Compute implements Scheme.
func (TopTalkers) Compute(w *graph.Window, sources []graph.NodeID, k int) ([]Signature, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: tt: k must be positive, got %d", k)
	}
	out := make([]Signature, len(sources))
	var cand []entry
	for si, v := range sources {
		total := w.OutWeightSum(v)
		cand = cand[:0]
		if total > 0 {
			w.Out(v, func(u graph.NodeID, wt float64) bool {
				if restrictTo(w.Universe(), v, u) {
					cand = append(cand, entry{node: u, weight: wt / total})
				}
				return true
			})
		}
		out[si] = topK(cand, k)
	}
	return out, nil
}

// UTScaling selects the down-weighting function applied by the
// Unexpected Talkers scheme to a neighbour's popularity.
type UTScaling int

const (
	// UTInverseDegree is the paper's Definition 4: w_ij = C[i,j]/|I(j)|.
	UTInverseDegree UTScaling = iota
	// UTTFIDF is the TF-IDF-style alternative the paper mentions:
	// w_ij = C[i,j] · log(|V|/|I(j)|).
	UTTFIDF
)

// UnexpectedTalkers is the UT scheme (Definition 4): neighbour relevance
// is the edge weight scaled down by the neighbour's in-degree, so
// universally popular nodes (search engines, shared servers) stop
// dominating signatures. It trades persistence and robustness for
// uniqueness (Table III/IV).
type UnexpectedTalkers struct {
	// Scaling picks the popularity down-weighting; zero value is the
	// paper's 1/|I(j)|.
	Scaling UTScaling
}

// Name implements Scheme.
func (u UnexpectedTalkers) Name() string {
	if u.Scaling == UTTFIDF {
		return "ut-tfidf"
	}
	return "ut"
}

// Compute implements Scheme.
func (u UnexpectedTalkers) Compute(w *graph.Window, sources []graph.NodeID, k int) ([]Signature, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: %s: k must be positive, got %d", u.Name(), k)
	}
	nV := float64(w.NumNodes())
	out := make([]Signature, len(sources))
	var cand []entry
	for si, v := range sources {
		cand = cand[:0]
		w.Out(v, func(j graph.NodeID, wt float64) bool {
			if !restrictTo(w.Universe(), v, j) {
				return true
			}
			indeg := float64(w.InDegree(j))
			if indeg == 0 {
				// Unreachable for out-neighbours (the edge (v,j) itself
				// is incoming to j), kept as a guard.
				return true
			}
			var relevance float64
			switch u.Scaling {
			case UTTFIDF:
				relevance = wt * math.Log(nV/indeg)
			default:
				relevance = wt / indeg
			}
			if relevance > 0 {
				cand = append(cand, entry{node: j, weight: relevance})
			}
			return true
		})
		out[si] = topK(cand, k)
	}
	return out, nil
}
