package core

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseScheme builds a Scheme from its Name()-format string:
//
//	tt                     Top Talkers
//	ut                     Unexpected Talkers (1/|I(j)| scaling)
//	ut-tfidf               Unexpected Talkers (TF-IDF scaling)
//	rwr@C                  Random Walk with Resets, to convergence
//	rwrH@C                 hop-bounded walk, e.g. rwr3@0.1
//	...+dir                strictly directed walk variant
//
// Every Scheme in this package round-trips: ParseScheme(s.Name())
// reconstructs an equivalent scheme.
func ParseScheme(name string) (Scheme, error) {
	switch name {
	case "tt":
		return TopTalkers{}, nil
	case "ut":
		return UnexpectedTalkers{}, nil
	case "ut-tfidf":
		return UnexpectedTalkers{Scaling: UTTFIDF}, nil
	}
	if rest, ok := strings.CutPrefix(name, "rwr"); ok {
		rw := RandomWalk{}
		if r, dir := strings.CutSuffix(rest, "+dir"); dir {
			rw.Directed = true
			rest = r
		}
		hopStr, cStr, found := strings.Cut(rest, "@")
		if !found {
			return nil, fmt.Errorf("core: scheme %q: rwr needs a restart probability, e.g. rwr3@0.1", name)
		}
		if hopStr != "" {
			h, err := strconv.Atoi(hopStr)
			if err != nil || h <= 0 {
				return nil, fmt.Errorf("core: scheme %q: bad hop bound %q", name, hopStr)
			}
			rw.Hops = h
		}
		c, err := strconv.ParseFloat(cStr, 64)
		if err != nil || c < 0 || c > 1 {
			return nil, fmt.Errorf("core: scheme %q: bad restart probability %q", name, cStr)
		}
		rw.C = c
		return rw, nil
	}
	return nil, fmt.Errorf("core: unknown scheme %q", name)
}

// PaperSchemes returns the scheme lineup the paper's Figures 1-4 report:
// TT, UT, and RWRʰ at c=0.1 for h ∈ {3,5,7}.
func PaperSchemes() []Scheme {
	return []Scheme{
		TopTalkers{},
		UnexpectedTalkers{},
		RandomWalk{C: 0.1, Hops: 3},
		RandomWalk{C: 0.1, Hops: 5},
		RandomWalk{C: 0.1, Hops: 7},
	}
}

// ApplicationSchemes returns the three representative schemes used in
// the application study (§V): TT, UT, and RWR³ at c=0.1 ("the best
// representative of the RWR schemes").
func ApplicationSchemes() []Scheme {
	return []Scheme{
		TopTalkers{},
		UnexpectedTalkers{},
		RandomWalk{C: 0.1, Hops: 3},
	}
}
