package core

import (
	"fmt"

	"graphsig/internal/graph"
)

// DecayCombine implements the exponential time-decay combination of
// historical windows from the Communities of Interest line of work,
// which the paper treats as orthogonal to scheme choice (§III-A):
// each output window t holds the decayed cumulative weights
//
//	C'_t[i,j] = λ·C'_{t−1}[i,j] + C_t[i,j]
//
// for decay factor λ ∈ [0,1). λ=0 reproduces the input windows. Any
// signature scheme can then run on the combined windows unchanged —
// this is the DecayAblation experiment.
func DecayCombine(windows []*graph.Window, lambda float64) ([]*graph.Window, error) {
	if lambda < 0 || lambda >= 1 {
		return nil, fmt.Errorf("core: decay factor %g outside [0,1)", lambda)
	}
	if len(windows) == 0 {
		return nil, nil
	}
	u := windows[0].Universe()
	out := make([]*graph.Window, len(windows))
	carry := map[[2]graph.NodeID]float64{}
	for t, w := range windows {
		if w.Universe() != u {
			return nil, fmt.Errorf("core: decay: window %d uses a different universe", t)
		}
		next := make(map[[2]graph.NodeID]float64, len(carry)+w.NumEdges())
		if lambda > 0 {
			for k, wt := range carry {
				decayed := lambda * wt
				// Drop negligible residue so the combined graphs do not
				// grow without bound over long histories.
				if decayed > 1e-12 {
					next[k] = decayed
				}
			}
		}
		for _, e := range w.Edges() {
			next[[2]graph.NodeID{e.From, e.To}] += e.Weight
		}
		b := graph.NewBuilder(u, w.Index())
		for k, wt := range next {
			if err := b.Add(k[0], k[1], wt); err != nil {
				return nil, fmt.Errorf("core: decay: window %d: %w", t, err)
			}
		}
		out[t] = b.Build()
		carry = next
	}
	return out, nil
}
