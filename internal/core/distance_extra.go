package core

import "math"

// Extra distance functions beyond the paper's four. The paper notes its
// choices were "chosen based on their simplicity and naturalness,
// though other functions are certainly suitable" (§IV-B footnote);
// these two are the most common alternatives in the signature
// literature and slot into every evaluator unchanged.

// Cosine is 1 − the cosine similarity of the signatures viewed as
// sparse weight vectors. Unlike the Dice family it is insensitive to
// overall weight scale, which matters when comparing signatures whose
// schemes emit unnormalized relevances (UT).
type Cosine struct{}

// Name implements Distance.
func (Cosine) Name() string { return "cosine" }

// Dist implements Distance.
func (Cosine) Dist(a, b Signature) float64 {
	if a.IsEmpty() && b.IsEmpty() {
		return 0
	}
	dot, na, nb := 0.0, 0.0, 0.0
	for i, u := range a.Nodes {
		wa := a.Weights[i]
		na += wa * wa
		if wb := b.Weight(u); wb > 0 {
			dot += wa * wb
		}
	}
	for _, wb := range b.Weights {
		nb += wb * wb
	}
	if na == 0 || nb == 0 {
		return 1
	}
	return clamp01(1 - dot/(math.Sqrt(na)*math.Sqrt(nb)))
}

// WeightedJaccard is 1 − Σ min(w1j,w2j) / Σ max(w1j,w2j) computed on
// *normalized* signatures, i.e. the Ruzicka distance of the weight
// distributions. It is SDice made scale-free: two signatures with the
// same members and proportional weights are at distance 0.
type WeightedJaccard struct{}

// Name implements Distance.
func (WeightedJaccard) Name() string { return "wjaccard" }

// Dist implements Distance.
func (WeightedJaccard) Dist(a, b Signature) float64 {
	if a.IsEmpty() && b.IsEmpty() {
		return 0
	}
	na, nb := a.Normalized(), b.Normalized()
	num, den := 0.0, 0.0
	for i, u := range na.Nodes {
		wa := na.Weights[i]
		wb := nb.Weight(u)
		num += math.Min(wa, wb)
		den += math.Max(wa, wb)
	}
	for i, u := range nb.Nodes {
		if !na.Contains(u) {
			den += nb.Weights[i]
		}
	}
	if den == 0 {
		return 0
	}
	return clamp01(1 - num/den)
}

// ExtendedDistances returns the paper's four distances plus the two
// extras, for experiment sweeps that want the wider menu.
func ExtendedDistances() []Distance {
	return append(AllDistances(), Cosine{}, WeightedJaccard{})
}
