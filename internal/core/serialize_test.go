package core

import (
	"bytes"
	"strings"
	"testing"

	"graphsig/internal/graph"
)

func serializeFixture(t *testing.T) (*graph.Universe, *SignatureSet) {
	t.Helper()
	u, w := testGraph(t, true)
	set, err := ComputeSet(TopTalkers{}, w, DefaultSources(w), 10)
	if err != nil {
		t.Fatal(err)
	}
	return u, set
}

func TestSignatureSetRoundTrip(t *testing.T) {
	u, set := serializeFixture(t)
	var buf bytes.Buffer
	if err := WriteSignatureSet(&buf, set, u); err != nil {
		t.Fatal(err)
	}

	// Load into a fresh universe.
	fresh := graph.NewUniverse()
	got, err := ReadSignatureSet(bytes.NewReader(buf.Bytes()), fresh)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scheme != set.Scheme || got.Window != set.Window || got.Len() != set.Len() {
		t.Fatalf("metadata changed: %+v", got)
	}
	for i, v := range set.Sources {
		label := u.Label(v)
		freshID, ok := fresh.Lookup(label)
		if !ok {
			t.Fatalf("label %q lost", label)
		}
		if fresh.PartOf(freshID) != u.PartOf(v) {
			t.Fatalf("part of %q changed", label)
		}
		gotSig, ok := got.Get(freshID)
		if !ok {
			t.Fatalf("signature of %q lost", label)
		}
		want := set.Sigs[i]
		if gotSig.Len() != want.Len() {
			t.Fatalf("%q: length %d vs %d", label, gotSig.Len(), want.Len())
		}
		for j := range want.Nodes {
			if fresh.Label(gotSig.Nodes[j]) != u.Label(want.Nodes[j]) {
				t.Fatalf("%q member %d label changed", label, j)
			}
			if gotSig.Weights[j] != want.Weights[j] {
				t.Fatalf("%q member %d weight %g vs %g", label, j, gotSig.Weights[j], want.Weights[j])
			}
		}
	}
}

func TestSignatureSetRoundTripSharedUniverse(t *testing.T) {
	u, set := serializeFixture(t)
	var buf bytes.Buffer
	if err := WriteSignatureSet(&buf, set, u); err != nil {
		t.Fatal(err)
	}
	// Reading back into the same universe keeps NodeIDs identical.
	got, err := ReadSignatureSet(bytes.NewReader(buf.Bytes()), u)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range set.Sources {
		gotSig, ok := got.Get(v)
		if !ok || !gotSig.Equal(set.Sigs[i]) {
			t.Fatalf("signature of %d changed through shared-universe round trip", v)
		}
	}
}

func TestSignatureSetQuotedLabels(t *testing.T) {
	u := graph.NewUniverse()
	weird := u.MustIntern(`sp ace "quote" \slash`, graph.PartNone)
	member := u.MustIntern("member\nnewline", graph.PartNone)
	set, err := NewSignatureSet("tt", 0, []graph.NodeID{weird},
		[]Signature{FromWeights(map[graph.NodeID]float64{member: 0.5}, 1)})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSignatureSet(&buf, set, u); err != nil {
		t.Fatal(err)
	}
	fresh := graph.NewUniverse()
	got, err := ReadSignatureSet(bytes.NewReader(buf.Bytes()), fresh)
	if err != nil {
		t.Fatal(err)
	}
	id, ok := fresh.Lookup(`sp ace "quote" \slash`)
	if !ok {
		t.Fatal("weird label lost")
	}
	if _, ok := got.Get(id); !ok {
		t.Fatal("signature lost")
	}
}

func TestReadSignatureSetRejectsMalformed(t *testing.T) {
	cases := []string{
		"",
		"wrong header",
		"graphsig-signatures v1\nwindow 0",
		"graphsig-signatures v1\nscheme tt\nwindow x",
		"graphsig-signatures v1\nscheme tt\nwindow 0\nnode \"a\"",
		"graphsig-signatures v1\nscheme tt\nwindow 0\nnode \"a\" V9",
		"graphsig-signatures v1\nscheme tt\nwindow 0\nsig \"ghost\" 0",
		"graphsig-signatures v1\nscheme tt\nwindow 0\nnode \"a\" V\nsig \"a\" 2 \"a\" 0.5",
		"graphsig-signatures v1\nscheme tt\nwindow 0\nnode \"a\" V\nsig \"a\" 1 \"a\" nope",
		"graphsig-signatures v1\nscheme tt\nwindow 0\nnode \"a\" V\nbogus \"a\"",
		"graphsig-signatures v1\nscheme tt\nwindow 0\nnode \"unterminated V",
		// Weight order violates the canonical-signature invariant.
		"graphsig-signatures v1\nscheme tt\nwindow 0\nnode \"a\" V\nnode \"b\" V\nnode \"c\" V\nsig \"a\" 2 \"b\" 0.1 \"c\" 0.9",
	}
	for i, in := range cases {
		if _, err := ReadSignatureSet(strings.NewReader(in), graph.NewUniverse()); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestReadSignatureSetPartConflict(t *testing.T) {
	u, set := serializeFixture(t)
	var buf bytes.Buffer
	if err := WriteSignatureSet(&buf, set, u); err != nil {
		t.Fatal(err)
	}
	// A universe where label "a" already exists with a different part
	// must refuse the file rather than silently merge.
	conflicted := graph.NewUniverse()
	conflicted.MustIntern("a", graph.Part2)
	if _, err := ReadSignatureSet(bytes.NewReader(buf.Bytes()), conflicted); err == nil {
		t.Fatal("part conflict accepted")
	}
}

// TestSignatureSetHostileLabels round-trips every label class the codec
// must survive: shell metacharacters, embedded quotes and newlines,
// leading/trailing whitespace, the codec's own keywords, and raw
// non-UTF8 bytes (Go quoting escapes them as \xNN, so they travel
// through the line-oriented format intact).
func TestSignatureSetHostileLabels(t *testing.T) {
	labels := []string{
		`plain`,
		`sp ace`,
		`"double" and 'single' quotes`,
		"tab\tand\nnewline\r\n",
		`back\slash and $(subshell) and ` + "`backtick`",
		`  leading and trailing  `,
		"sig \"fake\" 1", // looks like a codec line
		"node \"x\" V",   // looks like a codec line
		"\xff\xfe raw bytes \x80",
		"utf8 snow☃man",
		"\x00nul",
	}
	u := graph.NewUniverse()
	sources := make([]graph.NodeID, len(labels))
	sigs := make([]Signature, len(labels))
	for i, l := range labels {
		sources[i] = u.MustIntern(l, graph.PartNone)
	}
	// Each source's signature points at the next hostile label.
	for i := range labels {
		member := sources[(i+1)%len(sources)]
		sigs[i] = FromWeights(map[graph.NodeID]float64{member: 0.75}, 1)
	}
	set, err := NewSignatureSet("tt", 4, sources, sigs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSignatureSet(&buf, set, u); err != nil {
		t.Fatal(err)
	}
	fresh := graph.NewUniverse()
	got, err := ReadSignatureSet(bytes.NewReader(buf.Bytes()), fresh)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != len(labels) {
		t.Fatalf("round trip kept %d of %d sources", got.Len(), len(labels))
	}
	for i, l := range labels {
		id, ok := fresh.Lookup(l)
		if !ok {
			t.Fatalf("label %q lost", l)
		}
		sig, ok := got.Get(id)
		if !ok {
			t.Fatalf("signature of %q lost", l)
		}
		wantMember := labels[(i+1)%len(labels)]
		if sig.Len() != 1 || fresh.Label(sig.Nodes[0]) != wantMember || sig.Weights[0] != 0.75 {
			t.Fatalf("signature of %q corrupted: %v", l, sig)
		}
	}
}
