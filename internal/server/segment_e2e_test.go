package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graphsig/internal/fault"
)

// segmentConfig is crashConfig plus a cold segment tier, with a hot
// ring far smaller than the workload so compaction actually runs.
func segmentConfig(base string, capacity int) Config {
	cfg := crashConfig(filepath.Join(base, "snap"))
	cfg.StoreCapacity = capacity
	cfg.SegmentDir = filepath.Join(base, "segments")
	return cfg
}

func asJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestServerSegmentLongHorizon is the issue's acceptance scenario: a
// node with Capacity=N ingests 5N windows, restarts without Shutdown,
// and serves deep History and windowed Search over all 5N windows
// bit-identically to an unbounded in-memory run.
func TestServerSegmentLongHorizon(t *testing.T) {
	const capacity, windows = 4, 20 // 5N closed windows plus the open tail
	cfg := segmentConfig(t.TempDir(), capacity)
	batches := crashWorkload(windows + 1)

	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		mustIngest(t, srv1, b) // closes windows 0..windows-1
	}
	// Crash: srv1 is abandoned without Shutdown. The snapshot holds the
	// hot ring, the segments hold everything compacted out of it, the
	// WAL holds the open window's records.

	srv2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := srv2.Recovery()
	if !rec.SnapshotRestored {
		t.Fatal("snapshot not restored")
	}
	if rec.SegmentWindows != windows-capacity {
		t.Fatalf("recovery attached %d segment windows, want %d (%+v)", rec.SegmentWindows, windows-capacity, rec)
	}
	if rec.SegmentsAttached == 0 || len(rec.SegmentsQuarantined) != 0 {
		t.Fatalf("recovery = %+v", rec)
	}
	if lo, hi, ok := srv2.Store().WindowRange(); !ok || lo != 0 || hi != windows-1 {
		t.Fatalf("recovered window range = [%d,%d] ok=%v, want [0,%d]", lo, hi, ok, windows-1)
	}

	// Unbounded reference: the same workload, one crash-free run, a ring
	// big enough to never evict.
	refCfg := testConfig()
	refCfg.StoreCapacity = 10 * windows
	ref, err := New(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		mustIngest(t, ref, b)
	}

	ts := httptest.NewServer(srv2.Handler())
	defer ts.Close()
	refTS := httptest.NewServer(ref.Handler())
	defer refTS.Close()
	c, refC := NewClient(ts.URL), NewClient(refTS.URL)

	for _, label := range []string{"10.0.0.1", "10.0.0.2", "10.0.0.3"} {
		// Deep history spans the ring AND every segment window.
		got, err := c.HistoryRange(label, HistoryQuery{Limit: -1})
		if err != nil {
			t.Fatal(err)
		}
		want, err := refC.HistoryRange(label, HistoryQuery{Limit: -1})
		if err != nil {
			t.Fatal(err)
		}
		if len(got.History) != windows {
			t.Fatalf("%s deep history = %d entries, want %d", label, len(got.History), windows)
		}
		if gj, wj := asJSON(t, got), asJSON(t, want); gj != wj {
			t.Fatalf("%s deep history diverged:\n got %s\nwant %s", label, gj, wj)
		}

		// Windowed search reaching past the ring must rank identically.
		for _, last := range []int{0, capacity + 3, windows} {
			req := SearchRequest{Label: label, K: 100, LastWindows: last}
			gotHits, err := c.Search(req)
			if err != nil {
				t.Fatal(err)
			}
			wantHits, err := refC.Search(req)
			if err != nil {
				t.Fatal(err)
			}
			if gj, wj := asJSON(t, gotHits), asJSON(t, wantHits); gj != wj {
				t.Fatalf("%s search last=%d diverged:\n got %s\nwant %s", label, last, gj, wj)
			}
		}
	}
}

// TestServerSegmentCrashMidCompaction injects a torn segment commit
// under a live server, crashes it, and requires the reboot to serve
// every acked window: the over-capacity checkpoint is the torn
// window's only copy, and the recovered node must finish the workload
// exactly like a crash-free reference.
func TestServerSegmentCrashMidCompaction(t *testing.T) {
	t.Cleanup(fault.Reset)
	const capacity, windows = 2, 8
	cfg := segmentConfig(t.TempDir(), capacity)
	batches := crashWorkload(windows + 1)

	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[:4] {
		mustIngest(t, srv1, b) // closes 0..2; window 0 compacts cleanly
	}
	// The next close's compaction tears between stage and commit; the
	// checkpoint that follows snapshots the over-capacity ring.
	fault.Set("segment.commit", func() error { return errors.New("crash") })
	mustIngest(t, srv1, batches[4])
	fault.Reset()
	// Crash: abandon srv1 mid-flight.

	srv2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := srv2.Recovery()
	if len(rec.SegmentsQuarantined) != 0 {
		t.Fatalf("torn .tmp misread as a segment: %+v", rec)
	}
	entries, err := os.ReadDir(cfg.SegmentDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("stale staging file survived boot: %s", e.Name())
		}
	}
	// Every closed window — including the one whose compaction tore —
	// must be served from snapshot + segments.
	if lo, hi, ok := srv2.Store().WindowRange(); !ok || lo != 0 || hi != 3 {
		t.Fatalf("recovered window range = [%d,%d] ok=%v, want [0,3]", lo, hi, ok)
	}
	for _, b := range batches[5:] {
		mustIngest(t, srv2, b)
	}
	if _, err := srv2.Flush(); err != nil {
		t.Fatal(err)
	}

	refCfg := testConfig()
	refCfg.StoreCapacity = 10 * windows
	ref, err := New(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		mustIngest(t, ref, b)
	}
	if _, err := ref.Flush(); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(srv2.Handler())
	defer ts.Close()
	refTS := httptest.NewServer(ref.Handler())
	defer refTS.Close()
	c, refC := NewClient(ts.URL), NewClient(refTS.URL)
	for _, label := range []string{"10.0.0.1", "10.0.0.2", "10.0.0.3"} {
		got, err := c.HistoryRange(label, HistoryQuery{Limit: -1})
		if err != nil {
			t.Fatal(err)
		}
		want, err := refC.HistoryRange(label, HistoryQuery{Limit: -1})
		if err != nil {
			t.Fatal(err)
		}
		if len(got.History) != windows+1 {
			t.Fatalf("%s history = %d entries after recovery, want %d", label, len(got.History), windows+1)
		}
		if gj, wj := asJSON(t, got), asJSON(t, want); gj != wj {
			t.Fatalf("%s history diverged after torn compaction:\n got %s\nwant %s", label, gj, wj)
		}
	}
}

// TestHistoryHTTPParams pins the /v1/signatures/{label} query contract:
// from/to bounds, the default limit, explicit limit=0 as unbounded,
// the truncation flag, and 400s on malformed parameters.
func TestHistoryHTTPParams(t *testing.T) {
	const windows = 6
	_, c, done := newTestServer(t, testConfig())
	defer done()
	for _, b := range crashWorkload(windows + 1) {
		if _, err := c.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	const label = "10.0.0.1"

	// Default: everything (the archive is far under DefaultHistoryLimit),
	// no truncation flag.
	resp, err := c.History(label)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.History) != windows || resp.Truncated {
		t.Fatalf("default query = %d entries truncated=%v, want %d/false", len(resp.History), resp.Truncated, windows)
	}

	// limit keeps the NEWEST matches, ascending, and reports the cut.
	resp, err = c.HistoryRange(label, HistoryQuery{Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.History) != 2 || !resp.Truncated ||
		resp.History[0].Window != windows-2 || resp.History[1].Window != windows-1 {
		t.Fatalf("limit=2 query = %s", asJSON(t, resp))
	}

	// Inclusive from/to bounds.
	from, to := 1, 3
	resp, err = c.HistoryRange(label, HistoryQuery{From: from, HasFrom: true, To: to, HasTo: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.History) != 3 || resp.Truncated ||
		resp.History[0].Window != from || resp.History[2].Window != to {
		t.Fatalf("from/to query = %s", asJSON(t, resp))
	}

	// Limit -1 sends limit=0: explicitly unbounded.
	resp, err = c.HistoryRange(label, HistoryQuery{Limit: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.History) != windows || resp.Truncated {
		t.Fatalf("unbounded query = %d entries truncated=%v", len(resp.History), resp.Truncated)
	}

	// Malformed parameters are rejected, not silently defaulted.
	base := strings.TrimSuffix(c.Seeds()[0], "/")
	for _, query := range []string{"limit=-1", "limit=abc", "from=xyz", "to=1.5"} {
		resp, err := http.Get(fmt.Sprintf("%s/v1/signatures/%s?%s", base, label, query))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("?%s status = %d, want 400", query, resp.StatusCode)
		}
	}

	// Unknown labels still 404 (bounds that match nothing do too).
	if _, err := c.History("10.9.9.9"); err == nil {
		t.Fatal("unknown label served history")
	}
}
