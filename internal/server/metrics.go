package server

import (
	"sync/atomic"
	"time"
)

// metrics is the server's expvar-style counter set: monotone atomic
// counters, rendered as a flat JSON object by GET /metrics. Counters
// (not gauges) so scrapers can rate() them; latency is exported as a
// (sum, count) pair per the usual convention.
type metrics struct {
	FlowsReceived  atomic.Int64 // records arriving at POST /v1/flows
	FlowsAccepted  atomic.Int64 // records the pipeline ingested
	FlowsDropped   atomic.Int64 // records filtered (e.g. non-TCP)
	FlowsRejected  atomic.Int64 // records the pipeline refused
	WindowsClosed  atomic.Int64 // signature sets emitted into the store
	SearchQueries  atomic.Int64 // POST /v1/search served
	HistoryQueries atomic.Int64 // GET /v1/signatures/{label} served
	AnomalyQueries atomic.Int64 // GET /v1/anomalies served
	WatchlistAdds  atomic.Int64 // archived watchlist signatures
	WatchlistHits  atomic.Int64 // hits recorded at window close
	HTTPRequests   atomic.Int64 // all requests routed
	HTTPErrors     atomic.Int64 // responses with status >= 400
	RequestMicros  atomic.Int64 // summed handler latency (µs)
}

// snapshot renders the counters for /metrics.
func (m *metrics) snapshot(uptime time.Duration) map[string]int64 {
	return map[string]int64{
		"flows_received":      m.FlowsReceived.Load(),
		"flows_accepted":      m.FlowsAccepted.Load(),
		"flows_dropped":       m.FlowsDropped.Load(),
		"flows_rejected":      m.FlowsRejected.Load(),
		"windows_closed":      m.WindowsClosed.Load(),
		"search_queries":      m.SearchQueries.Load(),
		"history_queries":     m.HistoryQueries.Load(),
		"anomaly_queries":     m.AnomalyQueries.Load(),
		"watchlist_adds":      m.WatchlistAdds.Load(),
		"watchlist_hits":      m.WatchlistHits.Load(),
		"http_requests_total": m.HTTPRequests.Load(),
		"http_errors_total":   m.HTTPErrors.Load(),
		"request_micros_sum":  m.RequestMicros.Load(),
		"uptime_seconds":      int64(uptime.Seconds()),
	}
}
