package server

import (
	"sync/atomic"
	"time"
)

// metrics is the server's expvar-style counter set: monotone atomic
// counters, rendered as a flat JSON object by GET /metrics. Counters
// (not gauges) so scrapers can rate() them; latency is exported as a
// (sum, count) pair per the usual convention.
type metrics struct {
	FlowsReceived  atomic.Int64 // records arriving at POST /v1/flows
	FlowsAccepted  atomic.Int64 // records the pipeline ingested
	FlowsDropped   atomic.Int64 // records filtered (e.g. non-TCP)
	FlowsRejected  atomic.Int64 // records the pipeline refused
	WindowsClosed  atomic.Int64 // signature sets emitted into the store
	SearchQueries  atomic.Int64 // POST /v1/search served
	HistoryQueries atomic.Int64 // GET /v1/signatures/{label} served
	AnomalyQueries atomic.Int64 // GET /v1/anomalies served
	WatchlistAdds  atomic.Int64 // archived watchlist signatures
	WatchlistHits  atomic.Int64 // hits recorded at window close
	HTTPRequests   atomic.Int64 // all requests routed
	HTTPErrors     atomic.Int64 // responses with status >= 400
	RequestMicros  atomic.Int64 // summed handler latency (µs)

	// Durability and ingest-hardening counters.
	SnapshotSaves       atomic.Int64 // successful store.Save calls
	SnapshotErrors      atomic.Int64 // failed store.Save calls
	SnapshotQuarantines atomic.Int64 // corrupt snapshots renamed aside at boot
	WALAppendedRecords  atomic.Int64 // records framed into the WAL
	WALReplayedRecords  atomic.Int64 // records replayed from the WAL at boot
	WALResets           atomic.Int64 // log truncations after checkpoints
	WALErrors           atomic.Int64 // failed WAL appends/resets (degraded durability)
	WALQuarantines      atomic.Int64 // corrupt WALs renamed aside at boot
	IngestThrottled     atomic.Int64 // POST /v1/flows rejected with 429
	BatchesDeduped      atomic.Int64 // batch IDs answered from the dedup set
}

// snapshot renders the counters for /metrics.
func (m *metrics) snapshot(uptime time.Duration) map[string]int64 {
	return map[string]int64{
		"flows_received":      m.FlowsReceived.Load(),
		"flows_accepted":      m.FlowsAccepted.Load(),
		"flows_dropped":       m.FlowsDropped.Load(),
		"flows_rejected":      m.FlowsRejected.Load(),
		"windows_closed":      m.WindowsClosed.Load(),
		"search_queries":      m.SearchQueries.Load(),
		"history_queries":     m.HistoryQueries.Load(),
		"anomaly_queries":     m.AnomalyQueries.Load(),
		"watchlist_adds":      m.WatchlistAdds.Load(),
		"watchlist_hits":      m.WatchlistHits.Load(),
		"http_requests_total": m.HTTPRequests.Load(),
		"http_errors_total":   m.HTTPErrors.Load(),
		"request_micros_sum":  m.RequestMicros.Load(),
		"uptime_seconds":      int64(uptime.Seconds()),

		"snapshot_saves":       m.SnapshotSaves.Load(),
		"snapshot_errors":      m.SnapshotErrors.Load(),
		"snapshot_quarantines": m.SnapshotQuarantines.Load(),
		"wal_appended_records": m.WALAppendedRecords.Load(),
		"wal_replayed_records": m.WALReplayedRecords.Load(),
		"wal_resets":           m.WALResets.Load(),
		"wal_errors":           m.WALErrors.Load(),
		"wal_quarantines":      m.WALQuarantines.Load(),
		"ingest_throttled":     m.IngestThrottled.Load(),
		"batches_deduped":      m.BatchesDeduped.Load(),
	}
}
