package server

import (
	"graphsig/internal/obs"
)

// metrics is the server's counter set, registered in the shared obs
// registry under the same names the legacy flat-JSON /metrics body
// used — so one family list renders both the backward-compatible JSON
// shape and Prometheus text exposition. Counters (not gauges) so
// scrapers can rate() them; latency lives in the request histograms
// (see serverObs), with the legacy request_micros_sum key derived from
// the aggregate histogram's sum.
type metrics struct {
	FlowsReceived  *obs.Counter // records arriving at POST /v1/flows
	FlowsAccepted  *obs.Counter // records the pipeline ingested
	FlowsDropped   *obs.Counter // records filtered (e.g. non-TCP)
	FlowsRejected  *obs.Counter // records the pipeline refused
	WindowsClosed  *obs.Counter // signature sets emitted into the store
	SearchQueries  *obs.Counter // search queries served (singles + batch slots)
	BatchSearches  *obs.Counter // POST /v1/search/batch requests served
	HistoryQueries *obs.Counter // GET /v1/signatures/{label} served
	AnomalyQueries *obs.Counter // GET /v1/anomalies served
	WatchlistAdds  *obs.Counter // archived watchlist signatures
	WatchlistHits  *obs.Counter // hits recorded at window close
	HTTPRequests   *obs.Counter // all requests routed
	HTTPErrors     *obs.Counter // responses with status >= 400

	// Durability and ingest-hardening counters.
	SnapshotSaves       *obs.Counter // successful store.Save calls
	SnapshotErrors      *obs.Counter // failed store.Save calls
	SnapshotQuarantines *obs.Counter // corrupt snapshots renamed aside at boot
	WALAppendedRecords  *obs.Counter // records framed into the WAL
	WALReplayedRecords  *obs.Counter // records replayed from the WAL at boot
	WALResets           *obs.Counter // log truncations after checkpoints
	WALErrors           *obs.Counter // failed WAL appends/resets (degraded durability)
	WALQuarantines      *obs.Counter // corrupt WALs renamed aside at boot
	IngestThrottled     *obs.Counter // POST /v1/flows rejected with 429
	BatchesDeduped      *obs.Counter // batch IDs answered from the dedup set

	// Cluster-mode counters.
	PersistenceQueries  *obs.Counter // GET /v1/persistence served
	WALRotations        *obs.Counter // generations sealed at checkpoints (Replicate mode)
	SegmentsPruned      *obs.Counter // sealed segments dropped by retention
	ReplicationRequests *obs.Counter // GET /v1/replication/wal served
	ReplicationBytes    *obs.Counter // WAL bytes shipped to followers
	ReadOnlyRejected    *obs.Counter // mutating requests refused with 403
	WatchEntriesLogged  *obs.Counter // watchlist entries framed into the WAL
	Promotions          *obs.Counter // follower-to-primary promotions served
}

// newMetrics registers the counter set. The names double as the JSON
// keys: Registry.Snapshot reproduces the pre-obs /metrics body.
func newMetrics(reg *obs.Registry) metrics {
	return metrics{
		FlowsReceived:  reg.Counter("flows_received", "records arriving at POST /v1/flows"),
		FlowsAccepted:  reg.Counter("flows_accepted", "records the pipeline ingested"),
		FlowsDropped:   reg.Counter("flows_dropped", "records filtered (e.g. non-TCP)"),
		FlowsRejected:  reg.Counter("flows_rejected", "records the pipeline refused"),
		WindowsClosed:  reg.Counter("windows_closed", "signature sets committed to the store"),
		SearchQueries:  reg.Counter("search_queries", "search queries served, counting each batch slot"),
		BatchSearches:  reg.Counter("batch_searches", "POST /v1/search/batch requests served"),
		HistoryQueries: reg.Counter("history_queries", "GET /v1/signatures/{label} requests served"),
		AnomalyQueries: reg.Counter("anomaly_queries", "GET /v1/anomalies requests served"),
		WatchlistAdds:  reg.Counter("watchlist_adds", "signatures archived into the watchlist"),
		WatchlistHits:  reg.Counter("watchlist_hits", "watchlist hits recorded at window close"),
		HTTPRequests:   reg.Counter("http_requests_total", "HTTP requests routed"),
		HTTPErrors:     reg.Counter("http_errors_total", "HTTP responses with status >= 400"),

		SnapshotSaves:       reg.Counter("snapshot_saves", "successful snapshot saves"),
		SnapshotErrors:      reg.Counter("snapshot_errors", "failed snapshot saves"),
		SnapshotQuarantines: reg.Counter("snapshot_quarantines", "corrupt snapshots renamed aside at boot"),
		WALAppendedRecords:  reg.Counter("wal_appended_records", "records framed into the WAL"),
		WALReplayedRecords:  reg.Counter("wal_replayed_records", "records replayed from the WAL at boot"),
		WALResets:           reg.Counter("wal_resets", "WAL truncations after checkpoints"),
		WALErrors:           reg.Counter("wal_errors", "failed WAL appends and resets"),
		WALQuarantines:      reg.Counter("wal_quarantines", "corrupt WALs renamed aside at boot"),
		IngestThrottled:     reg.Counter("ingest_throttled", "ingest batches rejected with 429"),
		BatchesDeduped:      reg.Counter("batches_deduped", "batch IDs answered from the dedup set"),

		PersistenceQueries:  reg.Counter("persistence_queries", "GET /v1/persistence requests served"),
		WALRotations:        reg.Counter("wal_rotations", "WAL generations sealed at checkpoints"),
		SegmentsPruned:      reg.Counter("wal_segments_pruned", "sealed WAL segments dropped by retention"),
		ReplicationRequests: reg.Counter("replication_requests", "GET /v1/replication/wal requests served"),
		ReplicationBytes:    reg.Counter("replication_bytes", "WAL bytes shipped to followers"),
		ReadOnlyRejected:    reg.Counter("readonly_rejected", "mutating requests refused with 403"),
		WatchEntriesLogged:  reg.Counter("wal_watch_entries", "watchlist entries framed into the WAL"),
		Promotions:          reg.Counter("promotions", "follower-to-primary promotions performed"),
	}
}
