package server

import (
	"context"
	"net"
	"net/http"
	"testing"
	"time"

	"graphsig/internal/datagen"
	"graphsig/internal/sketch"
	"graphsig/internal/store"
	"graphsig/internal/stream"
)

// TestEndToEndEnterpriseServing is the acceptance test for the whole
// serving stack: sigserverd's configuration on an ephemeral port, a
// datagen enterprise workload ingested over HTTP in batches, search
// recovering the planted multiusage pair, metrics consistent with what
// was sent, and a shutdown snapshot that reloads into an equivalent
// store.
func TestEndToEndEnterpriseServing(t *testing.T) {
	gcfg := datagen.DefaultEnterpriseConfig(9)
	gcfg.LocalHosts = 25
	gcfg.ExternalHosts = 300
	gcfg.Communities = 3
	gcfg.Windows = 3
	gcfg.MultiusageIndividuals = 3
	data, err := datagen.GenerateEnterprise(gcfg)
	if err != nil {
		t.Fatal(err)
	}

	snapDir := t.TempDir()
	cfg := Config{
		Stream: stream.Config{
			WindowSize: gcfg.WindowLength,
			Origin:     gcfg.Origin,
			Classify:   datagen.LocalClassifier,
			TCPOnly:    true,
			K:          10,
			Scheme:     "tt",
			Sketch:     sketch.StreamConfig{Width: 4096, Depth: 5, Candidates: 256, Seed: 3},
		},
		StoreCapacity: 8,
		WatchMaxDist:  Float64(0.9),
		SnapshotDir:   snapDir,
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Serve on a real ephemeral port, as the daemon would.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	c := NewClient("http://" + ln.Addr().String())

	// Ingest the capture over HTTP in batches, as a collector would.
	const batchSize = 500
	sent := 0
	for i := 0; i < len(data.Records); i += batchSize {
		end := min(i+batchSize, len(data.Records))
		res, err := c.Ingest(data.Records[i:end])
		if err != nil {
			t.Fatal(err)
		}
		if res.Rejected != 0 {
			t.Fatalf("batch %d rejected %d records: %v", i/batchSize, res.Rejected, res.Errors)
		}
		sent += end - i
	}
	if sent != len(data.Records) {
		t.Fatalf("sent %d of %d records", sent, len(data.Records))
	}

	// All but the still-open final window must be archived.
	if got := srv.Store().Len(); got != gcfg.Windows-1 {
		t.Fatalf("store holds %d windows, want %d", got, gcfg.Windows-1)
	}

	// Put one multiusage individual's first label on the watchlist, then
	// flush the final window: screening must run against it.
	pairs := data.Truth.MultiusageSets()
	if len(pairs) == 0 {
		t.Fatal("workload has no multiusage ground truth")
	}
	if _, err := c.WatchlistAdd(WatchlistAddRequest{Individual: "case-0", Label: pairs[0][0]}); err != nil {
		t.Fatal(err)
	}
	if n, err := srv.Flush(); err != nil || n != 1 {
		t.Fatalf("flush closed %d windows, err %v", n, err)
	}
	if got := srv.Store().Len(); got != gcfg.Windows {
		t.Fatalf("store holds %d windows after flush, want %d", got, gcfg.Windows)
	}

	// The planted multiusage pair surfaces in nearest-signature search:
	// for at least one individual controlling labels {a, b, ...},
	// searching by a must rank a sibling label among the top hits.
	foundPair := false
	for _, labels := range pairs {
		for _, a := range labels {
			sr, err := c.Search(SearchRequest{Label: a, K: 10, MaxDist: 0.95})
			if err != nil {
				continue // label may have no archived signature
			}
			for _, h := range sr.Hits {
				for _, b := range labels {
					if b != a && h.Label == b {
						foundPair = true
					}
				}
			}
		}
	}
	if !foundPair {
		t.Fatalf("no planted multiusage pair among top search hits; truth = %v", pairs)
	}

	// The watchlisted individual reappears: its archived signature hits
	// in the flushed window (itself, and possibly its other labels).
	hits, err := c.WatchlistHits()
	if err != nil {
		t.Fatal(err)
	}
	caseHit := false
	for _, h := range hits.Hits {
		if h.Individual == "case-0" {
			caseHit = true
		}
	}
	if !caseHit {
		t.Fatalf("watchlisted individual never hit; hits = %+v", hits.Hits)
	}

	// Anomalies answer over the last two archived windows.
	an, err := c.Anomalies(2)
	if err != nil {
		t.Fatal(err)
	}
	if an.ToWindow != gcfg.Windows-1 || an.FromWindow != gcfg.Windows-2 {
		t.Fatalf("anomaly windows = [%d,%d]", an.FromWindow, an.ToWindow)
	}

	// Metrics are consistent with the records sent.
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m["flows_received"] != int64(len(data.Records)) {
		t.Fatalf("flows_received = %d, sent %d", m["flows_received"], len(data.Records))
	}
	if m["flows_accepted"]+m["flows_dropped"]+m["flows_rejected"] != m["flows_received"] {
		t.Fatalf("flow counters inconsistent: %v", m)
	}
	if m["windows_closed"] != int64(gcfg.Windows) {
		t.Fatalf("windows_closed = %d, want %d", m["windows_closed"], gcfg.Windows)
	}
	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if int64(h.Ingested) != m["flows_accepted"] {
		t.Fatalf("health ingested %d vs accepted %d", h.Ingested, m["flows_accepted"])
	}

	// Drain HTTP, then shut the service down: the snapshot must reload
	// into an equivalent store.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}
	reloaded, err := store.Load(snapDir, store.Config{Capacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalentStores(t, srv.Store(), reloaded)

	// A restarted server resumes from the snapshot.
	srv2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if srv2.Store().Len() != gcfg.Windows {
		t.Fatalf("restarted server store holds %d windows", srv2.Store().Len())
	}
}

// assertEquivalentStores compares two stores window-by-window through
// labels (NodeID assignments may differ between universes).
func assertEquivalentStores(t *testing.T, a, b *store.Store) {
	t.Helper()
	wa, wb := a.Windows(), b.Windows()
	if len(wa) != len(wb) {
		t.Fatalf("window counts differ: %d vs %d", len(wa), len(wb))
	}
	for i := range wa {
		sa, sb := wa[i], wb[i]
		if sa.Window != sb.Window || sa.Scheme != sb.Scheme || sa.Len() != sb.Len() {
			t.Fatalf("window %d header mismatch", i)
		}
		for j, v := range sa.Sources {
			label := a.Universe().Label(v)
			vb, ok := b.Universe().Lookup(label)
			if !ok {
				t.Fatalf("window %d: label %q missing from reloaded universe", sa.Window, label)
			}
			sigB, ok := sb.Get(vb)
			if !ok {
				t.Fatalf("window %d: %q missing from reloaded set", sa.Window, label)
			}
			sigA := sa.Sigs[j]
			if sigA.Len() != sigB.Len() {
				t.Fatalf("window %d %q: lengths differ", sa.Window, label)
			}
			for k := range sigA.Nodes {
				la := a.Universe().Label(sigA.Nodes[k])
				lb := b.Universe().Label(sigB.Nodes[k])
				if la != lb || sigA.Weights[k] != sigB.Weights[k] {
					t.Fatalf("window %d %q entry %d: (%q,%g) vs (%q,%g)",
						sa.Window, label, k, la, sigA.Weights[k], lb, sigB.Weights[k])
				}
			}
		}
	}
}
