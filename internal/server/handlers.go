package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"graphsig/internal/apps"
	"graphsig/internal/core"
	"graphsig/internal/fault"
	"graphsig/internal/graph"
	"graphsig/internal/netflow"
	"graphsig/internal/store"
	"graphsig/internal/wal"
)

// convertHits maps store hits to their wire form.
func convertHits(raw []store.Hit) []SearchHitJSON {
	out := make([]SearchHitJSON, len(raw))
	for i, h := range raw {
		out[i] = SearchHitJSON{Label: h.Label, Window: h.Window, Dist: h.Dist}
	}
	return out
}

// Wire types. Signatures travel as parallel label/weight arrays so the
// API is NodeID-free: labels are the stable cross-process identity.

// RecordJSON is one flow record on the wire.
type RecordJSON struct {
	Src        string    `json:"src"`
	Dst        string    `json:"dst"`
	Start      time.Time `json:"start"`
	DurationMS int64     `json:"duration_ms,omitempty"`
	Sessions   int       `json:"sessions"`
	Bytes      int64     `json:"bytes,omitempty"`
	Packets    int64     `json:"packets,omitempty"`
	// Proto is "tcp" (default) or "udp" or a numeric protocol.
	Proto string `json:"proto,omitempty"`
}

func (r RecordJSON) record() (netflow.Record, error) {
	proto := netflow.TCP
	if r.Proto != "" {
		p, err := netflow.ParseProto(r.Proto)
		if err != nil {
			return netflow.Record{}, err
		}
		proto = p
	}
	return netflow.Record{
		Src:      r.Src,
		Dst:      r.Dst,
		Start:    r.Start,
		Duration: time.Duration(r.DurationMS) * time.Millisecond,
		Sessions: r.Sessions,
		Bytes:    r.Bytes,
		Packets:  r.Packets,
		Proto:    proto,
	}, nil
}

// Record converts the wire record to its native form — exported for
// the cluster router, which decodes batches once and re-partitions
// them across shards.
func (r RecordJSON) Record() (netflow.Record, error) { return r.record() }

// RecordToJSON converts a flow record to its wire form.
func RecordToJSON(r netflow.Record) RecordJSON {
	return RecordJSON{
		Src:        r.Src,
		Dst:        r.Dst,
		Start:      r.Start,
		DurationMS: r.Duration.Milliseconds(),
		Sessions:   r.Sessions,
		Bytes:      r.Bytes,
		Packets:    r.Packets,
		Proto:      r.Proto.String(),
	}
}

// IngestRequest is the POST /v1/flows body. BatchID, when set, makes
// the POST idempotent: re-sending the same ID (a retry after a
// timeout or 5xx) returns the recorded result instead of ingesting the
// records again.
type IngestRequest struct {
	Records []RecordJSON `json:"records"`
	BatchID string       `json:"batch_id,omitempty"`
}

// SignatureJSON is a signature with members resolved to labels.
type SignatureJSON struct {
	Nodes   []string  `json:"nodes"`
	Weights []float64 `json:"weights"`
}

func (s *Server) signatureJSON(sig core.Signature) SignatureJSON {
	u := s.store.Universe()
	out := SignatureJSON{Nodes: make([]string, sig.Len()), Weights: append([]float64(nil), sig.Weights...)}
	for i, n := range sig.Nodes {
		out.Nodes[i] = u.Label(n)
	}
	return out
}

// HistoryEntryJSON is one archived window of a label.
type HistoryEntryJSON struct {
	Window    int           `json:"window"`
	Scheme    string        `json:"scheme"`
	Signature SignatureJSON `json:"signature"`
}

// HistoryResponse is the GET /v1/signatures/{label} body. The query
// accepts from/to (inclusive window bounds) and limit: absent, limit
// defaults to DefaultHistoryLimit; limit=0 asks for the unbounded
// archive. When older matches were cut by the limit, Truncated is set
// — with a segment-backed cold tier a label's history can span months,
// so one GET must not default to shipping all of it.
type HistoryResponse struct {
	Label     string             `json:"label"`
	History   []HistoryEntryJSON `json:"history"`
	Truncated bool               `json:"truncated,omitempty"`
}

// SearchRequest is the POST /v1/search body: query by archived label
// or by an inline signature.
type SearchRequest struct {
	Label     string         `json:"label,omitempty"`
	Signature *SignatureJSON `json:"signature,omitempty"`
	K         int            `json:"k,omitempty"`
	MaxDist   float64        `json:"max_dist,omitempty"`
	// Distance overrides the server default ("jaccard", "dice", ...).
	Distance    string `json:"distance,omitempty"`
	LastWindows int    `json:"last_windows,omitempty"`
	// ExcludeLabel omits matches of this label from the results. Label
	// queries already self-exclude; the cluster router sets this on the
	// signature-query fan-out so non-owner shards apply the same
	// exclusion the owner does.
	ExcludeLabel string `json:"exclude_label,omitempty"`
	// Debug attaches per-query explain counters (timing, probes,
	// prefilter stats) to the response; ?debug=1 on the URL does the
	// same.
	Debug bool `json:"debug,omitempty"`
}

// SearchDebugJSON is the per-node explain block attached to search
// responses when debug is requested: wall time, exact distance probes,
// and the mask-prefilter checked/skipped counts for this query alone.
type SearchDebugJSON struct {
	TraceID          string `json:"trace_id,omitempty"`
	Micros           int64  `json:"micros"`
	Probes           int    `json:"probes"`
	PrefilterChecked int64  `json:"prefilter_checked"`
	PrefilterSkipped int64  `json:"prefilter_skipped"`
}

// SearchHitJSON is one nearest-signature hit.
type SearchHitJSON struct {
	Label  string  `json:"label"`
	Window int     `json:"window"`
	Dist   float64 `json:"dist"`
}

// SearchResponse is the POST /v1/search body.
type SearchResponse struct {
	Distance string           `json:"distance"`
	Hits     []SearchHitJSON  `json:"hits"`
	Debug    *SearchDebugJSON `json:"debug,omitempty"`
}

// BatchSearchRequest is the POST /v1/search/batch body: many queries
// answered under one distance in a single round trip. The batch shares
// one window-ring snapshot and one pooled distance-kernel scratch, so
// n queries cost one setup plus n scans. Per-query Distance fields, if
// set, must agree with the batch distance — one batch, one kernel.
type BatchSearchRequest struct {
	Distance string          `json:"distance,omitempty"`
	Queries  []SearchRequest `json:"queries"`
	// Debug attaches explain counters aggregated across the batch's
	// queries; ?debug=1 on the URL does the same.
	Debug bool `json:"debug,omitempty"`
}

// BatchSearchResult is one slot of a batch response: hits on success,
// an error string when that query alone failed (unknown label, bad
// signature). Slot failures do not fail the batch.
type BatchSearchResult struct {
	Hits  []SearchHitJSON `json:"hits"`
	Error string          `json:"error,omitempty"`
}

// BatchSearchResponse is the POST /v1/search/batch body. Results[i]
// answers Queries[i].
type BatchSearchResponse struct {
	Distance string              `json:"distance"`
	Results  []BatchSearchResult `json:"results"`
	Debug    *SearchDebugJSON    `json:"debug,omitempty"`
}

// WatchlistAddRequest archives a label's stored signatures under an
// individual key. With Window set, only that window is archived;
// otherwise every archived window of the label is. With Signature set,
// the carried signature is archived directly (Window then required,
// Label ignored) — the cluster router uses this to replicate one
// shard's archive entry onto every other shard, since window-close
// screening happens locally per shard.
type WatchlistAddRequest struct {
	Individual string         `json:"individual"`
	Label      string         `json:"label"`
	Window     *int           `json:"window,omitempty"`
	Signature  *SignatureJSON `json:"signature,omitempty"`
}

// WatchlistAddResponse reports the archive growth.
type WatchlistAddResponse struct {
	Archived int `json:"archived"`
	Total    int `json:"watchlist_size"`
}

// WatchHitJSON is one recorded watchlist hit.
type WatchHitJSON struct {
	Window         int     `json:"window"`
	Label          string  `json:"label"`
	Individual     string  `json:"individual"`
	ArchivedWindow int     `json:"archived_window"`
	Dist           float64 `json:"dist"`
}

// WatchlistHitsResponse is the GET /v1/watchlist/hits body.
type WatchlistHitsResponse struct {
	Hits []WatchHitJSON `json:"hits"`
}

// AnomalyJSON is one flagged label.
type AnomalyJSON struct {
	Label       string  `json:"label"`
	Persistence float64 `json:"persistence"`
	ZScore      float64 `json:"z_score"`
}

// AnomaliesResponse is the GET /v1/anomalies body.
type AnomaliesResponse struct {
	FromWindow int           `json:"from_window"`
	ToWindow   int           `json:"to_window"`
	Mean       float64       `json:"mean_persistence"`
	StdDev     float64       `json:"stddev_persistence"`
	Anomalies  []AnomalyJSON `json:"anomalies"`
}

// HealthResponse is the GET /healthz body.
type HealthResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Windows       int     `json:"windows"`
	CurrentWindow int     `json:"current_window"`
	Ingested      int     `json:"ingested"`
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/flows", s.handleFlows)
	s.mux.HandleFunc("GET /v1/signatures/{label}", s.handleHistory)
	s.mux.HandleFunc("POST /v1/search", s.handleSearch)
	s.mux.HandleFunc("POST /v1/search/batch", s.handleSearchBatch)
	s.mux.HandleFunc("POST /v1/watchlist", s.handleWatchlistAdd)
	s.mux.HandleFunc("GET /v1/watchlist/hits", s.handleWatchlistHits)
	s.mux.HandleFunc("GET /v1/anomalies", s.handleAnomalies)
	s.mux.HandleFunc("GET /v1/persistence", s.handlePersistence)
	s.mux.HandleFunc("GET /v1/replication/status", s.handleReplicationStatus)
	s.mux.HandleFunc("GET /v1/replication/wal", s.handleReplicationWAL)
	s.mux.HandleFunc("GET /v1/traces", s.handleTraces)
	s.mux.HandleFunc("GET /v1/traces/{id}", s.handleTraceByID)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
}

// instrument wraps the mux with request counting and latency
// histograms — aggregate and per-route (see serverObs).
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		begin := time.Now()
		s.metrics.HTTPRequests.Add(1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		if sw.status >= 400 {
			s.metrics.HTTPErrors.Add(1)
		}
		elapsed := time.Since(begin).Seconds()
		s.obs.httpSeconds.Observe(elapsed)
		s.obs.routeSeconds.With(routeName(r)).Observe(elapsed)
	})
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// maxBodyBytes bounds request bodies (64 MiB: a generous flow batch).
const maxBodyBytes = 64 << 20

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func (s *Server) handleFlows(w http.ResponseWriter, r *http.Request) {
	if !s.requireWritable(w) {
		return
	}
	// Bound concurrent ingest work before reading the body: a server
	// at its in-flight limit sheds load with 429 + Retry-After instead
	// of queueing unboundedly on the ingest lock.
	if s.ingestSem != nil {
		select {
		case s.ingestSem <- struct{}{}:
			defer func() { <-s.ingestSem }()
		default:
			s.metrics.IngestThrottled.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "ingest at capacity (%d batches in flight); retry", cap(s.ingestSem))
			return
		}
	}
	var req IngestRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	records := make([]netflow.Record, 0, len(req.Records))
	for i, rj := range req.Records {
		rec, err := rj.record()
		if err != nil {
			writeError(w, http.StatusBadRequest, "record %d: %v", i, err)
			return
		}
		records = append(records, rec)
	}
	_ = fault.Inject("server.ingest.hold") // test hook: park here while holding an in-flight slot
	tr := s.startTrace(r, "ingest")
	defer tr.Finish()
	writeJSON(w, http.StatusOK, s.ingestBatchTraced(tr, req.BatchID, records))
}

// historyParams parses the from/to/limit query of a history GET.
// Bounds default to the whole archive; an absent limit defaults to
// DefaultHistoryLimit and an explicit limit=0 means unbounded.
func historyParams(r *http.Request) (from, to, limit int, err error) {
	from, to, limit = math.MinInt, math.MaxInt, DefaultHistoryLimit
	q := r.URL.Query()
	for _, p := range []struct {
		key string
		dst *int
	}{{"from", &from}, {"to", &to}, {"limit", &limit}} {
		v := q.Get(p.key)
		if v == "" {
			continue
		}
		n, perr := strconv.Atoi(v)
		if perr != nil {
			return 0, 0, 0, fmt.Errorf("bad %s %q: want an integer", p.key, v)
		}
		*p.dst = n
	}
	if limit < 0 {
		return 0, 0, 0, fmt.Errorf("bad limit %d: want >= 0", limit)
	}
	return from, to, limit, nil
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	label := r.PathValue("label")
	s.metrics.HistoryQueries.Add(1)
	from, to, limit, err := historyParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tr := s.traceRemote(r, "history")
	defer tr.Finish()
	s.mu.RLock()
	defer s.mu.RUnlock()
	entries, truncated, err := s.store.HistoryRange(label, from, to, limit)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "reading archive: %v", err)
		return
	}
	if len(entries) == 0 {
		writeError(w, http.StatusNotFound, "label %q has no archived signatures", label)
		return
	}
	resp := HistoryResponse{Label: label, Truncated: truncated}
	for _, e := range entries {
		resp.History = append(resp.History, HistoryEntryJSON{
			Window:    e.Window,
			Scheme:    e.Scheme,
			Signature: s.signatureJSON(e.Sig),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	s.metrics.SearchQueries.Add(1)
	tr := s.startTrace(r, "search")
	defer tr.Finish()
	d, err := s.distanceFor(req.Distance)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	debug := req.Debug || r.URL.Query().Get("debug") == "1"
	var stats store.SearchStats
	begin := time.Now()
	opts := store.SearchOptions{TopK: req.K, MaxDist: req.MaxDist, LastWindows: req.LastWindows, ExcludeLabel: req.ExcludeLabel}
	if debug {
		opts.Stats = &stats
	}
	var hits []SearchHitJSON
	switch {
	case req.Label != "" && req.Signature != nil:
		writeError(w, http.StatusBadRequest, "set either label or signature, not both")
		return
	case req.Label != "":
		s.mu.RLock()
		end := tr.Span("store.search")
		raw, err := s.store.SearchLabel(d, req.Label, opts)
		end()
		if err == nil {
			hits = convertHits(raw)
		}
		s.mu.RUnlock()
		if err != nil {
			writeError(w, http.StatusNotFound, "%v", err)
			return
		}
	case req.Signature != nil:
		// Inline signatures may name labels the universe has never seen;
		// interning mutates the universe, so take the write lock.
		s.mu.Lock()
		sig, err := s.internSignature(*req.Signature)
		if err != nil {
			s.mu.Unlock()
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		end := tr.Span("store.search")
		raw, err := s.store.Search(d, sig, opts)
		end()
		s.mu.Unlock()
		if err == nil {
			hits = convertHits(raw)
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	default:
		writeError(w, http.StatusBadRequest, "search needs a label or a signature")
		return
	}
	resp := SearchResponse{Distance: d.Name(), Hits: hits}
	if debug {
		resp.Debug = &SearchDebugJSON{
			TraceID:          tr.ID(),
			Micros:           time.Since(begin).Microseconds(),
			Probes:           stats.Probes,
			PrefilterChecked: stats.PrefilterChecked,
			PrefilterSkipped: stats.PrefilterSkipped,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchSearchRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "batch search needs at least one query")
		return
	}
	s.metrics.BatchSearches.Add(1)
	s.metrics.SearchQueries.Add(int64(len(req.Queries)))
	tr := s.startTrace(r, "search.batch")
	defer tr.Finish()
	d, err := s.distanceFor(req.Distance)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	debug := req.Debug || r.URL.Query().Get("debug") == "1"
	var stats store.SearchStats
	begin := time.Now()

	// Inline signatures may intern labels the universe has never seen,
	// so a batch carrying any takes the write lock; an all-label batch
	// only reads.
	needsIntern := false
	for i := range req.Queries {
		if req.Queries[i].Signature != nil {
			needsIntern = true
			break
		}
	}
	if needsIntern {
		s.mu.Lock()
		defer s.mu.Unlock()
	} else {
		s.mu.RLock()
		defer s.mu.RUnlock()
	}

	// Resolve every slot to a concrete (signature, options) query or a
	// per-slot error, then run the survivors through one store batch.
	results := make([]BatchSearchResult, len(req.Queries))
	queries := make([]store.BatchQuery, 0, len(req.Queries))
	slots := make([]int, 0, len(req.Queries))
	end := tr.Span("resolve")
	for i, q := range req.Queries {
		bq, err := s.resolveSearchQuery(q, d)
		if err != nil {
			results[i].Error = err.Error()
			continue
		}
		if debug {
			bq.Opts.Stats = &stats // shared: values aggregate across the batch
		}
		queries = append(queries, bq)
		slots = append(slots, i)
	}
	end()
	end = tr.Span("store.search")
	hits, err := s.store.SearchBatch(d, queries)
	end()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	for k := range hits {
		results[slots[k]].Hits = convertHits(hits[k])
	}
	resp := BatchSearchResponse{Distance: d.Name(), Results: results}
	if debug {
		resp.Debug = &SearchDebugJSON{
			TraceID:          tr.ID(),
			Micros:           time.Since(begin).Microseconds(),
			Probes:           stats.Probes,
			PrefilterChecked: stats.PrefilterChecked,
			PrefilterSkipped: stats.PrefilterSkipped,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// resolveSearchQuery turns one batch slot into a store query. Callers
// hold the server lock (write when the slot carries an inline
// signature, read otherwise).
func (s *Server) resolveSearchQuery(q SearchRequest, d core.Distance) (store.BatchQuery, error) {
	if q.Distance != "" {
		qd, err := s.distanceFor(q.Distance)
		if err != nil {
			return store.BatchQuery{}, err
		}
		if qd.Name() != d.Name() {
			return store.BatchQuery{}, fmt.Errorf("query distance %q differs from batch distance %q", qd.Name(), d.Name())
		}
	}
	opts := store.SearchOptions{TopK: q.K, MaxDist: q.MaxDist, LastWindows: q.LastWindows, ExcludeLabel: q.ExcludeLabel}
	switch {
	case q.Label != "" && q.Signature != nil:
		return store.BatchQuery{}, fmt.Errorf("set either label or signature, not both")
	case q.Label != "":
		sig, _, ok := s.store.LatestSignature(q.Label)
		if !ok {
			return store.BatchQuery{}, fmt.Errorf("label %q has no archived signature", q.Label)
		}
		if opts.ExcludeLabel == "" {
			opts.ExcludeLabel = q.Label
		}
		return store.BatchQuery{Sig: sig, Opts: opts}, nil
	case q.Signature != nil:
		sig, err := s.internSignature(*q.Signature)
		if err != nil {
			return store.BatchQuery{}, err
		}
		return store.BatchQuery{Sig: sig, Opts: opts}, nil
	default:
		return store.BatchQuery{}, fmt.Errorf("search needs a label or a signature")
	}
}

// internSignature builds a core.Signature from wire form, interning
// unknown member labels through the pipeline's classifier. Callers
// hold the write lock.
func (s *Server) internSignature(sj SignatureJSON) (core.Signature, error) {
	if len(sj.Nodes) != len(sj.Weights) {
		return core.Signature{}, fmt.Errorf("signature nodes/weights length mismatch %d/%d", len(sj.Nodes), len(sj.Weights))
	}
	classify := s.cfg.Stream.Classify
	if classify == nil {
		classify = netflow.General
	}
	u := s.store.Universe()
	weights := make(map[graph.NodeID]float64, len(sj.Nodes))
	for i, label := range sj.Nodes {
		v, err := u.Intern(label, classify(label))
		if err != nil {
			return core.Signature{}, err
		}
		weights[v] += sj.Weights[i]
	}
	sig := core.FromWeights(weights, len(weights))
	if sig.IsEmpty() {
		return core.Signature{}, fmt.Errorf("signature has no positive-weight members")
	}
	return sig, nil
}

func (s *Server) handleWatchlistAdd(w http.ResponseWriter, r *http.Request) {
	if !s.requireWritable(w) {
		return
	}
	var req WatchlistAddRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Individual == "" || (req.Label == "" && req.Signature == nil) {
		writeError(w, http.StatusBadRequest, "watchlist add needs individual and label")
		return
	}
	tr := s.traceRemote(r, "watchlist.add")
	defer tr.Finish()
	if req.Signature != nil {
		if req.Window == nil {
			writeError(w, http.StatusBadRequest, "explicit-signature watchlist add needs window")
			return
		}
		// Interning the carried labels mutates the universe: write lock.
		s.mu.Lock()
		defer s.mu.Unlock()
		entry := wal.WatchEntry{
			Individual: req.Individual,
			Window:     *req.Window,
			Nodes:      req.Signature.Nodes,
			Weights:    req.Signature.Weights,
		}
		if err := s.addWatchLocked(entry, true); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		s.metrics.WatchlistAdds.Add(1)
		writeJSON(w, http.StatusOK, WatchlistAddResponse{Archived: 1, Total: s.watch.Len()})
		return
	}
	// Label adds also mutate: the archived entries are mirrored into
	// watchWire and framed into the WAL so a follower (and any later
	// generation's replay) screens the same set. Write lock throughout.
	s.mu.Lock()
	defer s.mu.Unlock()
	// The watchlist archives the label's full history — screening wants
	// every epoch of the individual, so this read is explicitly
	// unbounded even when the archive reaches into cold segments.
	entries, _, err := s.store.HistoryRange(req.Label, math.MinInt, math.MaxInt, 0)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "reading archive: %v", err)
		return
	}
	archived := 0
	for _, e := range entries {
		if req.Window != nil && e.Window != *req.Window {
			continue
		}
		if e.Sig.IsEmpty() {
			continue
		}
		sj := s.signatureJSON(e.Sig)
		entry := wal.WatchEntry{
			Individual: req.Individual,
			Window:     e.Window,
			Nodes:      sj.Nodes,
			Weights:    sj.Weights,
		}
		if err := s.addWatchLocked(entry, true); err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		archived++
	}
	if archived == 0 {
		writeError(w, http.StatusNotFound, "label %q has no archivable signature", req.Label)
		return
	}
	s.metrics.WatchlistAdds.Add(int64(archived))
	writeJSON(w, http.StatusOK, WatchlistAddResponse{Archived: archived, Total: s.watch.Len()})
}

func (s *Server) handleWatchlistHits(w http.ResponseWriter, r *http.Request) {
	tr := s.traceRemote(r, "watchlist.hits")
	defer tr.Finish()
	hits := s.Hits()
	resp := WatchlistHitsResponse{Hits: make([]WatchHitJSON, len(hits))}
	for i, h := range hits {
		resp.Hits[i] = WatchHitJSON(h)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAnomalies(w http.ResponseWriter, r *http.Request) {
	s.metrics.AnomalyQueries.Add(1)
	tr := s.traceRemote(r, "anomalies")
	defer tr.Finish()
	zCut := 2.0
	if zs := r.URL.Query().Get("z"); zs != "" {
		z, err := strconv.ParseFloat(zs, 64)
		if err != nil || z <= 0 {
			writeError(w, http.StatusBadRequest, "bad z parameter %q", zs)
			return
		}
		zCut = z
	}
	d, err := s.distanceFor(r.URL.Query().Get("distance"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	windows := s.store.Windows()
	if len(windows) < 2 {
		writeError(w, http.StatusConflict, "anomaly detection needs two archived windows, have %d", len(windows))
		return
	}
	at, next := windows[len(windows)-2], windows[len(windows)-1]
	// Label-keyed, label-ordered accumulation: the report is a pure
	// function of the (label, persistence) pairs, so a cluster router
	// merging per-shard pair sets reproduces it bit-identically.
	pairs := apps.PersistenceByLabel(d, s.store.Universe(), at, next)
	anomalies, summary, err := apps.DetectAnomaliesByLabel(pairs, zCut)
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	resp := AnomaliesResponse{
		FromWindow: at.Window,
		ToWindow:   next.Window,
		Mean:       summary.Mean,
		StdDev:     summary.StdDev,
	}
	for _, a := range anomalies {
		resp.Anomalies = append(resp.Anomalies, AnomalyJSON{
			Label:       a.Label,
			Persistence: a.Persistence,
			ZScore:      a.ZScore,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// PersistencePairJSON is one label's self-persistence on the wire.
type PersistencePairJSON struct {
	Label       string  `json:"label"`
	Persistence float64 `json:"persistence"`
}

// PersistenceResponse is the GET /v1/persistence body: the raw
// label-keyed persistence pairs between the last two archived windows.
// This is the anomaly computation's intermediate form — the cluster
// router fetches it from every shard, merges the (disjoint) pair sets,
// and runs the same detection the single-node handler runs.
type PersistenceResponse struct {
	Distance   string                `json:"distance"`
	FromWindow int                   `json:"from_window"`
	ToWindow   int                   `json:"to_window"`
	Pairs      []PersistencePairJSON `json:"pairs"`
}

func (s *Server) handlePersistence(w http.ResponseWriter, r *http.Request) {
	s.metrics.PersistenceQueries.Add(1)
	tr := s.traceRemote(r, "persistence")
	defer tr.Finish()
	d, err := s.distanceFor(r.URL.Query().Get("distance"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	windows := s.store.Windows()
	if len(windows) < 2 {
		writeError(w, http.StatusConflict, "persistence needs two archived windows, have %d", len(windows))
		return
	}
	at, next := windows[len(windows)-2], windows[len(windows)-1]
	pairs := apps.PersistenceByLabel(d, s.store.Universe(), at, next)
	resp := PersistenceResponse{
		Distance:   d.Name(),
		FromWindow: at.Window,
		ToWindow:   next.Window,
		Pairs:      make([]PersistencePairJSON, len(pairs)),
	}
	for i, p := range pairs {
		resp.Pairs[i] = PersistencePairJSON{Label: p.Label, Persistence: p.Persistence}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	resp := HealthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Windows:       s.store.Len(),
		CurrentWindow: s.pipeline.CurrentWindow(),
		Ingested:      s.pipeline.Ingested(),
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.obs.registry.WritePrometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, s.metricsJSON())
}
