package server

import (
	"bytes"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"graphsig/internal/netflow"
	"graphsig/internal/obs"
)

// TestMetricsJSONSupersetAndProm: the JSON /metrics body keeps every
// pre-obs key, and ?format=prom renders a valid exposition carrying
// the serving stack's histogram families.
func TestMetricsJSONSupersetAndProm(t *testing.T) {
	cfg := testConfig()
	cfg.SnapshotDir = t.TempDir() + "/snap" // exercise WAL + snapshot histograms
	_, c, done := newTestServer(t, cfg)
	defer done()

	// Ingest across a window boundary (WAL append, window close,
	// checkpoint) and run one search so every layer observes something.
	if _, err := c.Ingest(append(window0Flows(),
		flowAt("10.0.0.1", "e1", time.Hour+time.Minute, 2))); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Search(SearchRequest{Label: "10.0.0.1", K: 3, MaxDist: 0.9}); err != nil {
		t.Fatal(err)
	}

	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	// The complete pre-obs key set: removing any of these breaks
	// existing scrapers.
	legacy := []string{
		"flows_received", "flows_accepted", "flows_dropped", "flows_rejected",
		"windows_closed", "search_queries", "history_queries", "anomaly_queries",
		"watchlist_adds", "watchlist_hits", "http_requests_total", "http_errors_total",
		"request_micros_sum", "uptime_seconds",
		"snapshot_saves", "snapshot_errors", "snapshot_quarantines",
		"wal_appended_records", "wal_replayed_records", "wal_resets",
		"wal_errors", "wal_quarantines", "ingest_throttled", "batches_deduped",
	}
	for _, k := range legacy {
		if _, ok := m[k]; !ok {
			t.Errorf("JSON /metrics lost legacy key %q", k)
		}
	}
	// New derived keys ride along.
	for _, k := range []string{"http_request_p50_micros", "http_request_p99_micros",
		"route_post_v1_flows_requests", "route_post_v1_flows_micros_sum", "store_windows"} {
		if _, ok := m[k]; !ok {
			t.Errorf("JSON /metrics missing new key %q (have %v)", k, m)
		}
	}
	if m["flows_received"] != 6 || m["windows_closed"] != 1 || m["search_queries"] != 1 {
		t.Fatalf("counters off: %v", m)
	}
	if m["request_micros_sum"] <= 0 {
		t.Fatalf("request_micros_sum = %d, want > 0", m["request_micros_sum"])
	}
	if m["route_post_v1_flows_requests"] != 1 {
		t.Fatalf("per-route count = %d, want 1", m["route_post_v1_flows_requests"])
	}

	text, err := c.MetricsProm()
	if err != nil {
		t.Fatal(err)
	}
	families, err := obs.ValidateExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("prom exposition invalid: %v\n%s", err, text)
	}
	wantHist := []string{
		"http_request_seconds", "http_route_seconds", "wal_fsync_seconds",
		"store_snapshot_save_seconds", "pipeline_window_close_seconds",
		"store_search_probes", "distmat_row_seconds", "distmat_candidates",
	}
	for _, name := range wantHist {
		if families[name] != "histogram" {
			t.Errorf("prom family %s = %q, want histogram", name, families[name])
		}
	}
	if families["flows_received"] != "counter" || families["store_windows"] != "gauge" {
		t.Fatalf("families = %v", families)
	}
}

// TestReadyzLifecycle: ready while serving, 503 with a reason once
// shutdown begins.
func TestReadyzLifecycle(t *testing.T) {
	s, c, done := newTestServer(t, testConfig())
	defer done()

	ready, err := c.Ready()
	if err != nil {
		t.Fatal(err)
	}
	if !ready.Ready || len(ready.Reasons) != 0 {
		t.Fatalf("fresh server not ready: %+v", ready)
	}

	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	c.MaxRetries = -1 // 503 is retryable; the probe should see it at once
	if _, err := c.Ready(); err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("draining server still ready: %v", err)
	}
	resp := s.readiness()
	if resp.Ready || len(resp.Reasons) == 0 {
		t.Fatalf("readiness after shutdown = %+v", resp)
	}
}

// TestTracesEndpoint: ingest and search traces land in the ring with
// their spans, newest first, bounded by the configured capacity.
func TestTracesEndpoint(t *testing.T) {
	cfg := testConfig()
	cfg.TraceCapacity = 4
	_, c, done := newTestServer(t, cfg)
	defer done()

	for i := 0; i < 5; i++ {
		if _, err := c.Ingest(window0Flows()); err != nil {
			t.Fatal(err)
		}
	}
	// Cross the window boundary so the searched label is archived.
	if _, err := c.Ingest([]netflow.Record{flowAt("10.9.9.9", "e9", time.Hour+time.Minute, 1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Search(SearchRequest{Label: "10.0.0.1", K: 1, MaxDist: 0.99}); err != nil {
		t.Fatal(err)
	}

	tr, err := c.Traces(0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Total != 7 {
		t.Fatalf("total traces = %d, want 7", tr.Total)
	}
	if len(tr.Traces) != 4 {
		t.Fatalf("ring holds %d traces, want capacity 4", len(tr.Traces))
	}
	if tr.Traces[0].Name != "search" {
		t.Fatalf("newest trace = %q, want search", tr.Traces[0].Name)
	}
	if tr.Traces[1].Name != "ingest" || len(tr.Traces[1].ID) != 16 {
		t.Fatalf("trace 1 = %+v", tr.Traces[1])
	}
	var spanNames []string
	for _, sp := range tr.Traces[1].Spans {
		spanNames = append(spanNames, sp.Name)
	}
	if len(spanNames) == 0 || spanNames[0] != "lock.wait" {
		t.Fatalf("ingest spans = %v", spanNames)
	}

	if got, err := c.Traces(2); err != nil || len(got.Traces) != 2 {
		t.Fatalf("Traces(2) = %+v, %v", got, err)
	}
}

// TestSlowOpLogsWithTraceID: a traced span over the threshold emits a
// structured warning carrying its trace ID through the configured
// slog logger.
func TestSlowOpLogsWithTraceID(t *testing.T) {
	var buf bytes.Buffer
	cfg := testConfig()
	cfg.Logger = slog.New(slog.NewTextHandler(&buf, nil))
	cfg.SlowOp = time.Nanosecond // everything is slow
	_, c, done := newTestServer(t, cfg)
	defer done()

	if _, err := c.Ingest(window0Flows()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "slow operation") || !strings.Contains(out, "trace=") {
		t.Fatalf("no slow-op warning with trace ID:\n%s", out)
	}
}

func TestRouteName(t *testing.T) {
	for _, tc := range []struct{ method, path, want string }{
		{"POST", "/v1/flows", "post_v1_flows"},
		{"GET", "/v1/signatures/10.0.0.1", "get_v1_signatures_label"},
		{"GET", "/metrics", "get_metrics"},
		{"GET", "/readyz", "get_readyz"},
		{"GET", "/secret/../../etc", "other"},
	} {
		r := httptest.NewRequest(tc.method, "http://x"+tc.path, nil)
		if got := routeName(r); got != tc.want {
			t.Errorf("routeName(%s %s) = %q, want %q", tc.method, tc.path, got, tc.want)
		}
	}
}
