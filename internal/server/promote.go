package server

import (
	"fmt"
	"os"

	"graphsig/internal/wal"
)

// PromoteConfig parameterizes a follower-to-primary promotion.
type PromoteConfig struct {
	// SnapshotDir, when non-empty, becomes the promoted node's
	// durability home: a fresh WAL opens beside it and the replicated
	// archive is snapshotted into it immediately. Empty keeps the
	// promoted node memory-only (tests).
	SnapshotDir string
	// WALGen is the minimum generation number for the promoted node's
	// live log. Cluster promotion passes the follower's replication
	// generation + 1 so the promoted lineage's (gen, offset) cursors
	// never collide with bytes already shipped from the old primary.
	WALGen int
	// Node, when non-nil, is the promoted identity (typically the old
	// identity with Role "primary" and a bumped RingEpoch). It replaces
	// the one stamped at New in /readyz and the Prometheus const labels.
	Node *Identity
}

// Promote flips a read-only replica into a serving primary: it attaches
// durability (fresh WAL, immediate snapshot of the replicated state),
// enables replication so the next follower can chain off this node,
// re-logs the origin and the full watchlist as the new log's prologue,
// and opens the mutating endpoints. The server keeps serving reads
// throughout; handlers observe the flip through the readOnly and
// identity atomics.
//
// Promotion is idempotent in effect but not silently: promoting an
// already-writable server is an error, so a routed retry of POST
// /v1/promote surfaces rather than re-running the state machine.
func (s *Server) Promote(cfg PromoteConfig) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.readOnly.Load() {
		return fmt.Errorf("server: already writable; promotion refused")
	}
	if cfg.SnapshotDir != "" {
		if err := s.attachDurabilityLocked(cfg); err != nil {
			return err
		}
	}
	s.cfg.ReadOnly = false
	s.readOnly.Store(false)
	s.replicating.Store(s.cfg.Replicate)
	if cfg.Node != nil {
		s.cfg.Node = cfg.Node
		s.stampIdentity(cfg.Node)
	}
	if s.cfg.SnapshotDir != "" {
		// The replicated archive existed only in memory on the follower;
		// make it durable before the node takes writes. Failure degrades
		// durability, not the promotion — the WAL covers new records and
		// the next checkpoint retries the save.
		if err := s.store.Save(s.cfg.SnapshotDir); err != nil {
			s.metrics.SnapshotErrors.Add(1)
			s.logf("sigserver: promotion snapshot failed (WAL will cover): %v", err)
		} else {
			s.metrics.SnapshotSaves.Add(1)
		}
	}
	s.relogWALLocked()
	s.metrics.Promotions.Add(1)
	s.logf("sigserver: promoted to primary (wal gen %d)", s.walGen)
	return nil
}

// attachDurabilityLocked gives a promoted node a durability home. Any
// log already at the WAL path belongs to a previous life of this
// process, not to the replicated lineage the node is continuing, so it
// is quarantined rather than replayed. Callers hold s.mu.
func (s *Server) attachDurabilityLocked(cfg PromoteConfig) error {
	s.cfg.SnapshotDir = cfg.SnapshotDir
	s.cfg.DisableWAL = false
	s.cfg.Replicate = true
	if s.cfg.ReplicaRetain == 0 {
		s.cfg.ReplicaRetain = DefaultReplicaRetain
	}
	path := WALPath(cfg.SnapshotDir)
	if info, err := os.Stat(path); err == nil && info.Size() > wal.HeaderLen {
		moved, qerr := wal.Quarantine(path)
		if qerr != nil {
			return fmt.Errorf("server: stale WAL at %s unquarantinable: %w", path, qerr)
		}
		s.metrics.WALQuarantines.Add(1)
		s.logf("sigserver: stale pre-promotion WAL quarantined to %s", moved)
	}
	w, _, err := wal.Open(path)
	if err != nil {
		return fmt.Errorf("server: opening promotion WAL: %w", err)
	}
	s.wal = w
	// The registry's get-or-create semantics return the families the
	// follower's server already registered at New.
	s.wal.Instrument(
		s.obs.registry.Histogram("wal_fsync_seconds",
			"WAL write+fsync latency per flushed batch"),
		s.obs.registry.Counter("wal_appended_bytes_total",
			"framed bytes appended to the WAL"))
	gen, err := nextWALGen(path)
	if err != nil {
		return err
	}
	s.walGen = max(gen, cfg.WALGen)
	return nil
}
