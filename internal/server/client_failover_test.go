package server

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestSeedCooldownRotation drives the failover rotation state machine
// directly: transport failures put seeds into cooldown and the
// rotation skips them; status failures rotate without cooling; expiry
// restores a seed; with every seed cooling the rotation degrades to
// plain round-robin rather than pinning.
func TestSeedCooldownRotation(t *testing.T) {
	const (
		evTransportFail = iota // current seed fails at transport level
		evStatusFail           // current seed answers a retryable status
		evAdvance              // clock advances by the step's delta
	)
	type step struct {
		ev    int
		delta time.Duration
		want  string // expected current seed after the step
	}
	seeds := []string{"http://a", "http://b", "http://c"}
	cases := []struct {
		name     string
		cooldown time.Duration
		steps    []step
	}{
		{
			name:     "transport failure cools the seed",
			cooldown: time.Minute,
			steps: []step{
				{ev: evTransportFail, want: "http://b"},
				// b fails too; a is cooling, so rotation lands on c.
				{ev: evTransportFail, want: "http://c"},
				// c answers 429: alive, shedding load — it rotates, and with
				// a and b both cooling the next stop is c again... but b
				// cooled before a, so round-robin order from c is a: still
				// cooling. Plain rotation picks a.
			},
		},
		{
			name:     "status failure does not cool",
			cooldown: time.Minute,
			steps: []step{
				{ev: evStatusFail, want: "http://b"},
				{ev: evStatusFail, want: "http://c"},
				// Nothing is cooling: rotation wraps back to a.
				{ev: evStatusFail, want: "http://a"},
			},
		},
		{
			name:     "cooldown expiry restores the seed",
			cooldown: time.Minute,
			steps: []step{
				{ev: evTransportFail, want: "http://b"},
				{ev: evStatusFail, want: "http://c"},
				// a is still cooling: c's rotation skips it.
				{ev: evStatusFail, want: "http://b"},
				// Past the cooldown, a rejoins the rotation.
				{ev: evAdvance, delta: 2 * time.Minute},
				{ev: evStatusFail, want: "http://c"},
				{ev: evStatusFail, want: "http://a"},
			},
		},
		{
			name:     "all seeds cooling degrades to round-robin",
			cooldown: time.Hour,
			steps: []step{
				{ev: evTransportFail, want: "http://b"},
				{ev: evTransportFail, want: "http://c"},
				{ev: evTransportFail, want: "http://a"},
				// Everything is cooling; the rotation must still move.
				{ev: evTransportFail, want: "http://b"},
			},
		},
		{
			name:     "negative cooldown disables marking",
			cooldown: -1,
			steps: []step{
				{ev: evTransportFail, want: "http://b"},
				{ev: evTransportFail, want: "http://c"},
				// With no cooldown, a was never marked: plain round-robin.
				{ev: evTransportFail, want: "http://a"},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewClient(seeds[0], seeds[1:]...)
			c.SeedCooldown = tc.cooldown
			clock := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
			c.now = func() time.Time { return clock }
			for i, s := range tc.steps {
				switch s.ev {
				case evTransportFail:
					c.markSeedDown()
				case evStatusFail:
					c.rotateSeed()
				case evAdvance:
					clock = clock.Add(s.delta)
					continue
				}
				if got := c.currentBase(); got != s.want {
					t.Fatalf("step %d: current seed %s, want %s", i, got, s.want)
				}
			}
		})
	}
}

// TestRetryAfterSurfaced checks the S2 plumbing: a 429's Retry-After
// header must ride the APIError out of the client once its own retries
// are exhausted, and Backoff must honor it.
func TestRetryAfterSurfaced(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		http.Error(w, `{"error":"throttled"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()

	c := NewClient(ts.URL)
	c.MaxRetries = -1
	_, err := c.Health()
	if APIStatus(err) != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", APIStatus(err))
	}
	if got := RetryAfter(err); got != "7" {
		t.Fatalf("RetryAfter(err) = %q, want \"7\"", got)
	}
	if got := c.Backoff(0, RetryAfter(err)); got != 7*time.Second {
		t.Fatalf("Backoff honoring Retry-After = %v, want 7s", got)
	}
	if got := RetryAfter(nil); got != "" {
		t.Fatalf("RetryAfter(nil) = %q, want empty", got)
	}
}
