package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"graphsig/internal/netflow"
)

// TestBackoffBounds sweeps backoff over the whole retry range a caller
// can configure and asserts every delay lands inside [base/2,
// MaxRetryDelay] — the regression contract for the int64-overflow
// panic (base << attempt going negative fed mrand.Int63n) and for the
// Retry-After floor/cap.
func TestBackoffBounds(t *testing.T) {
	cases := []struct {
		name       string
		base       time.Duration
		retryAfter string
		attempts   int
	}{
		{"default base computed", 0, "", 64},
		{"100ms base computed", 100 * time.Millisecond, "", 64},
		{"large base computed", 10 * time.Second, "", 64},
		{"base above ceiling", 2 * MaxRetryDelay, "", 8},
		{"retry-after zero", 100 * time.Millisecond, "0", 4},
		{"retry-after sane", 100 * time.Millisecond, "2", 4},
		{"retry-after absurd", 100 * time.Millisecond, "86400", 4},
		{"retry-after garbage", 100 * time.Millisecond, "soon", 64},
		{"retry-after negative", 100 * time.Millisecond, "-5", 64},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := &Client{RetryBackoff: tc.base}
			base := tc.base
			if base <= 0 {
				base = 100 * time.Millisecond
			}
			if base > MaxRetryDelay {
				base = MaxRetryDelay
			}
			floor := base / 2
			for attempt := 0; attempt < tc.attempts; attempt++ {
				d := c.backoff(attempt, tc.retryAfter) // must not panic
				if d < floor || d > MaxRetryDelay {
					t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, floor, MaxRetryDelay)
				}
			}
		})
	}
}

// TestBackoffMonotoneUntilCap checks the exponential shape survives the
// clamping: delays grow (in expectation bounds) and saturate at the cap
// instead of wrapping negative.
func TestBackoffMonotoneUntilCap(t *testing.T) {
	c := &Client{RetryBackoff: time.Second}
	// Attempt 40 would shift 1s << 40 — far past overflow territory for
	// smaller bases and past the cap for this one.
	for _, attempt := range []int{5, 6, 40, 62, 63, 64, 1000} {
		d := c.backoff(attempt, "")
		// With d pinned at the cap, jitter spans [cap/2, cap].
		if d < MaxRetryDelay/2 || d > MaxRetryDelay {
			t.Fatalf("attempt %d: saturated backoff %v outside [%v, %v]",
				attempt, d, MaxRetryDelay/2, MaxRetryDelay)
		}
	}
	// Early attempts must stay well under the cap.
	if d := c.backoff(0, ""); d > 2*time.Second {
		t.Fatalf("attempt 0: backoff %v, want ≤ 2s for a 1s base", d)
	}
}

// TestBackoffRetryAfterClamp pins the exact clamp values for
// server-sent delays.
func TestBackoffRetryAfterClamp(t *testing.T) {
	c := &Client{RetryBackoff: 100 * time.Millisecond}
	if d := c.backoff(0, "0"); d != 50*time.Millisecond {
		t.Fatalf("Retry-After 0: got %v, want the 50ms floor", d)
	}
	if d := c.backoff(0, "2"); d != 2*time.Second {
		t.Fatalf("Retry-After 2: got %v, want 2s passed through", d)
	}
	if d := c.backoff(0, "86400"); d != MaxRetryDelay {
		t.Fatalf("Retry-After 86400: got %v, want the %v cap", d, MaxRetryDelay)
	}
}

// TestClientNoPanicAtMaxRetries64 drives a real retry loop (against a
// server that always 429s with Retry-After: 0) at MaxRetries=64. Before
// the overflow fix this panicked once the shift wrapped; now it must
// just exhaust retries and return the last error, quickly (floor is
// 50ms — but only a handful of retries are worth waiting for, so the
// test trims MaxRetries to keep runtime sane while still crossing the
// old panic threshold via TestBackoffBounds above).
func TestClientNoPanicAtMaxRetries64(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"throttled"}`)
	}))
	defer srv.Close()

	c := NewClient(srv.URL)
	c.MaxRetries = 64
	c.RetryBackoff = time.Microsecond // keep the 65 attempts fast
	_, err := c.Health()              // any endpoint exercises do()
	if err == nil {
		t.Fatal("want an error after exhausting retries")
	}
	if got := calls.Load(); got != 65 { // first try + 64 retries
		t.Fatalf("server saw %d calls, want 65", got)
	}
}

// TestIngestRetryDedupsExactlyOnce is the end-to-end idempotence
// contract: a batch whose first POST is throttled with 429 must be
// applied exactly once when the retry succeeds, keyed by its batch_id.
func TestIngestRetryDedupsExactlyOnce(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	inner := s.Handler()

	var posts atomic.Int64
	wrapped := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/flows" {
			// Throttle the first attempt AFTER the server has fully
			// processed it — modeling a response lost to a proxy timeout
			// where the work was already applied.
			if posts.Add(1) == 1 {
				rec := httptest.NewRecorder()
				inner.ServeHTTP(rec, r)
				w.Header().Set("Retry-After", "0")
				w.WriteHeader(http.StatusTooManyRequests)
				fmt.Fprint(w, `{"error":"throttled after apply"}`)
				return
			}
		}
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(wrapped)
	defer ts.Close()

	c := NewClient(ts.URL)
	c.RetryBackoff = time.Millisecond
	records := []netflow.Record{
		flowAt("10.0.0.1", "e1", time.Minute, 3),
		flowAt("10.0.0.3", "e9", 2*time.Minute, 2),
	}
	res, err := c.Ingest(records)
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if posts.Load() != 2 {
		t.Fatalf("server saw %d POSTs, want 2 (throttled then retried)", posts.Load())
	}
	if !res.Deduplicated {
		t.Fatal("retried batch should come back deduplicated")
	}
	if res.Accepted != 2 {
		t.Fatalf("accepted %d, want 2", res.Accepted)
	}
	// The flows counter must reflect exactly one application.
	m, err := c.Metrics()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if got := m["flows_accepted"]; got != 2 {
		t.Fatalf("flows_accepted = %d, want 2 (batch applied exactly once)", got)
	}
}

// TestClientSeedFailover gives the client a dead primary seed and a
// live fallback: the first attempt's connection failure must rotate to
// the fallback and succeed, and the rotation must stick for subsequent
// requests (no re-probing of the dead seed once past it).
func TestClientSeedFailover(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	live := httptest.NewServer(s.Handler())
	defer live.Close()
	// A closed listener's address connection-refuses immediately.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	c := NewClient(deadURL, live.URL)
	c.RetryBackoff = time.Millisecond
	if _, err := c.Health(); err != nil {
		t.Fatalf("health through failover: %v", err)
	}
	if got := c.Seeds(); got[0] != live.URL {
		t.Fatalf("current seed = %q, want the live fallback %q", got[0], live.URL)
	}
	// A definitive 4xx is not retried — and must not rotate back onto
	// the dead seed.
	_, err = c.History("no-such-label")
	if APIStatus(err) != http.StatusNotFound {
		t.Fatalf("history of unknown label: %v (status %d), want 404", err, APIStatus(err))
	}
	if got := c.Seeds(); got[0] != live.URL {
		t.Fatalf("404 rotated the seed to %q", got[0])
	}
	// Exhausting every seed surfaces the transport error.
	allDead := NewClient(deadURL, deadURL)
	allDead.RetryBackoff = time.Microsecond
	allDead.MaxRetries = 2
	if _, err := allDead.Health(); err == nil {
		t.Fatal("health against only dead seeds succeeded")
	}
}
