package server

import (
	"fmt"
	"testing"
	"time"

	"graphsig/internal/netflow"
)

// benchBatch builds a batch of records that all land inside window 0,
// so the benchmark measures the steady-state ingest path (tracing,
// counters, pipeline) rather than window-close signature computes.
func benchBatch(n int) []netflow.Record {
	records := make([]netflow.Record, n)
	for i := range records {
		records[i] = flowAt(
			fmt.Sprintf("10.0.%d.%d", i/250, i%250),
			fmt.Sprintf("e%d", i%17),
			time.Duration(i%50)*time.Second, 1)
	}
	return records
}

func benchIngest(b *testing.B, strip bool) {
	srv, err := New(testConfig())
	if err != nil {
		b.Fatal(err)
	}
	if strip {
		// Same-package surgery: nil obs handles are no-ops, so this is
		// the pre-instrumentation ingest path for overhead comparison.
		srv.obs.tracer = nil
		srv.metrics = metrics{}
	}
	records := benchBatch(512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := srv.IngestBatch("", records)
		if res.Accepted != len(records) {
			b.Fatalf("accepted %d of %d: %+v", res.Accepted, len(records), res)
		}
	}
}

// BenchmarkIngestInstrumented vs BenchmarkIngestUninstrumented bounds
// the observability overhead on the hot ingest path (acceptance
// budget: <5% on ns/op).
func BenchmarkIngestInstrumented(b *testing.B)   { benchIngest(b, false) }
func BenchmarkIngestUninstrumented(b *testing.B) { benchIngest(b, true) }
