package server

import (
	"net/http"
	"os"
	"strconv"

	"graphsig/internal/wal"
)

// WAL shipping endpoints (Replicate mode). A follower's cursor is a
// (generation, byte offset) pair: offsets start at wal.HeaderLen and
// advance by exactly the bytes fetched, and a generation ends when the
// primary seals it at a checkpoint. The primary serves only durably
// fsynced bytes, so every byte a follower ever receives is also a byte
// recovery would replay — the follower and a restarted primary can
// never disagree on the log's contents.

// DefaultReplicationChunk bounds one GET /v1/replication/wal response
// body; MaxReplicationChunk caps a client-requested max.
const (
	DefaultReplicationChunk = 1 << 20
	MaxReplicationChunk     = 4 << 20
)

// Replication response headers.
const (
	// HeaderWALGen echoes the generation served.
	HeaderWALGen = "X-Wal-Gen"
	// HeaderWALSealed is "true" when the generation is complete: once
	// the follower's offset reaches the advertised size it should move
	// to the next generation.
	HeaderWALSealed = "X-Wal-Sealed"
	// HeaderWALSize is the generation's total durable size so far.
	HeaderWALSize = "X-Wal-Size"
)

// ReplicationStatusResponse is the GET /v1/replication/status body.
type ReplicationStatusResponse struct {
	Replicating bool `json:"replicating"`
	// Gen is the live generation; OldestGen the oldest still fetchable
	// (sealed segments older than the retention bound are pruned).
	Gen         int       `json:"gen"`
	OldestGen   int       `json:"oldest_gen"`
	DurableSize int64     `json:"durable_size"`
	Node        *Identity `json:"node,omitempty"`
}

func (s *Server) handleReplicationStatus(w http.ResponseWriter, r *http.Request) {
	resp := ReplicationStatusResponse{Replicating: s.replicating.Load(), Node: s.Identity()}
	if resp.Replicating {
		s.mu.RLock()
		log := s.wal
		resp.Gen = s.walGen
		resp.DurableSize = log.DurableSize()
		s.mu.RUnlock()
		resp.OldestGen = resp.Gen
		if gens, err := walSegmentGens(log.Path()); err == nil && len(gens) > 0 {
			resp.OldestGen = gens[0]
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleReplicationWAL(w http.ResponseWriter, r *http.Request) {
	if !s.replicating.Load() {
		writeError(w, http.StatusConflict, "replication not enabled on this node")
		return
	}
	q := r.URL.Query()
	gen, err := strconv.Atoi(q.Get("gen"))
	if err != nil || gen < 0 {
		writeError(w, http.StatusBadRequest, "bad gen parameter %q", q.Get("gen"))
		return
	}
	from, err := strconv.ParseInt(q.Get("from"), 10, 64)
	if err != nil || from < wal.HeaderLen {
		writeError(w, http.StatusBadRequest, "bad from parameter %q (offsets start at %d)", q.Get("from"), wal.HeaderLen)
		return
	}
	chunk := DefaultReplicationChunk
	if ms := q.Get("max"); ms != "" {
		m, err := strconv.Atoi(ms)
		if err != nil || m <= 0 {
			writeError(w, http.StatusBadRequest, "bad max parameter %q", ms)
			return
		}
		chunk = min(m, MaxReplicationChunk)
	}
	s.metrics.ReplicationRequests.Add(1)
	// Adopt the follower's poll trace only when the poll actually ships
	// bytes: finishing a trace per idle 5 ms poll would flood the
	// bounded ring with empty entries. An unfinished trace is simply
	// dropped.
	tr := s.traceRemote(r, "replication.wal")
	endRead := tr.Span("wal.read")

	// The live generation is read under the server lock: walGen and the
	// WAL's durable bytes must be observed together, or a concurrent
	// rotation could mislabel sealed bytes as live ones.
	s.mu.RLock()
	cur := s.walGen
	log := s.wal
	if gen == cur {
		size := log.DurableSize()
		if from > size {
			s.mu.RUnlock()
			writeError(w, http.StatusRequestedRangeNotSatisfiable, "offset %d beyond durable size %d of generation %d", from, size, gen)
			return
		}
		data, err := log.ReadDurable(from, chunk)
		s.mu.RUnlock()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		endRead()
		s.writeWALChunk(w, gen, false, size, data)
		if len(data) > 0 {
			tr.Finish()
		}
		return
	}
	s.mu.RUnlock()
	if gen > cur {
		writeError(w, http.StatusNotFound, "generation %d not started (live generation is %d)", gen, cur)
		return
	}

	// Sealed generations are immutable files; no lock needed.
	f, err := os.Open(walSegmentPath(log.Path(), gen))
	if os.IsNotExist(err) {
		writeError(w, http.StatusGone, "generation %d pruned; re-bootstrap from a snapshot or the oldest retained generation", gen)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	size := info.Size()
	if from > size {
		writeError(w, http.StatusRequestedRangeNotSatisfiable, "offset %d beyond size %d of sealed generation %d", from, size, gen)
		return
	}
	n := min(int64(chunk), size-from)
	data := make([]byte, n)
	if n > 0 {
		if _, err := f.ReadAt(data, from); err != nil {
			writeError(w, http.StatusInternalServerError, "reading sealed segment: %v", err)
			return
		}
	}
	endRead()
	s.writeWALChunk(w, gen, true, size, data)
	if len(data) > 0 {
		tr.Finish()
	}
}

func (s *Server) writeWALChunk(w http.ResponseWriter, gen int, sealed bool, size int64, data []byte) {
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(HeaderWALGen, strconv.Itoa(gen))
	w.Header().Set(HeaderWALSealed, strconv.FormatBool(sealed))
	w.Header().Set(HeaderWALSize, strconv.FormatInt(size, 10))
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
	s.metrics.ReplicationBytes.Add(int64(len(data)))
}

// requireWritable gates a mutating handler in ReadOnly mode. It reads
// the readOnly shadow atomic, not cfg, because Promote flips the mode
// while handlers are running.
func (s *Server) requireWritable(w http.ResponseWriter) bool {
	if !s.readOnly.Load() {
		return true
	}
	s.metrics.ReadOnlyRejected.Add(1)
	role := "follower"
	if id := s.Identity(); id != nil && id.Role != "" {
		role = id.Role
	}
	writeError(w, http.StatusForbidden, "node is read-only (%s); send writes to the primary", role)
	return false
}

// WALGen reports the live WAL generation (0 when not replicating).
func (s *Server) WALGen() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.walGen
}
