// Package server exposes the signature machinery as an online HTTP
// service — the serving surface behind cmd/sigserverd. Flow records
// are POSTed in batches and run through the §VI streaming pipeline;
// each completed window's signature set lands in a bounded
// internal/store ring, is screened against the watchlist, and becomes
// queryable: per-label history, top-k nearest-signature search,
// watchlist hits and anomaly detection, plus health and expvar-style
// metrics endpoints.
//
// Locking model: the streaming pipeline interns labels into the shared
// graph.Universe on ingest, and the Universe is not safe for
// concurrent mutation. One RWMutex therefore guards every handler:
// ingestion (and any other interning path) takes the write lock; pure
// queries take the read lock. The store and watchlist carry their own
// internal locks so they also stay safe for direct library use.
package server

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"graphsig/internal/apps"
	"graphsig/internal/core"
	"graphsig/internal/netflow"
	"graphsig/internal/store"
	"graphsig/internal/stream"
)

// Config parameterizes a Server.
type Config struct {
	// Stream configures the ingestion pipeline (window size, scheme, k,
	// sketch sizing). Origin should be set for restartable deployments
	// so window indices stay aligned across runs.
	Stream stream.Config
	// StoreCapacity bounds the signature store ring (default 16).
	StoreCapacity int
	// Distance scores search, watchlist and anomaly queries
	// (default Jaccard; per-request override via the API).
	Distance core.Distance
	// WatchMaxDist is the watchlist screening threshold applied when
	// windows close (default 0.5).
	WatchMaxDist float64
	// LSHBands/LSHRows/LSHSeed enable the store's MinHash prefilter.
	LSHBands, LSHRows int
	LSHSeed           uint64
	// SnapshotDir, when non-empty, is loaded at startup (if a snapshot
	// exists) and written by Shutdown.
	SnapshotDir string
	// HitLogSize bounds the retained watchlist hit log (default 1024).
	HitLogSize int
}

// WatchHit is one recorded watchlist match: label's signature in the
// window that just closed was within WatchMaxDist of an archived
// individual.
type WatchHit struct {
	Window         int
	Label          string
	Individual     string
	ArchivedWindow int
	Dist           float64
}

// Server is the online signature service.
type Server struct {
	cfg   Config
	start time.Time

	// mu serializes Universe mutation (ingest, label interning) against
	// all readers; see the package comment.
	mu       sync.RWMutex
	pipeline *stream.Pipeline
	store    *store.Store
	watch    *apps.Watchlist
	hits     []WatchHit
	pending  int // records accepted into the still-open window
	dropped  int // windows lost to index conflicts (snapshot overlap)

	metrics metrics
	mux     *http.ServeMux
}

// New builds a server, loading a prior snapshot when cfg.SnapshotDir
// holds one.
func New(cfg Config) (*Server, error) {
	if cfg.StoreCapacity == 0 {
		cfg.StoreCapacity = 16
	}
	if cfg.Distance == nil {
		cfg.Distance = core.Jaccard{}
	}
	if cfg.WatchMaxDist == 0 {
		cfg.WatchMaxDist = 0.5
	}
	if cfg.HitLogSize == 0 {
		cfg.HitLogSize = 1024
	}
	scfg := store.Config{
		Capacity: cfg.StoreCapacity,
		LSHBands: cfg.LSHBands,
		LSHRows:  cfg.LSHRows,
		LSHSeed:  cfg.LSHSeed,
	}
	var st *store.Store
	var err error
	if cfg.SnapshotDir != "" && store.SnapshotExists(cfg.SnapshotDir) {
		st, err = store.Load(cfg.SnapshotDir, scfg)
	} else {
		st, err = store.New(scfg)
	}
	if err != nil {
		return nil, err
	}
	p, err := stream.NewPipeline(cfg.Stream, st.Universe())
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		start:    time.Now(),
		pipeline: p,
		store:    st,
		watch:    apps.NewWatchlist(),
		mux:      http.NewServeMux(),
	}
	s.routes()
	return s, nil
}

// Handler returns the HTTP handler serving the v1 API.
func (s *Server) Handler() http.Handler {
	return s.instrument(s.mux)
}

// Store exposes the underlying signature store (read-mostly; see the
// package locking model before mutating concurrently with serving).
func (s *Server) Store() *store.Store { return s.store }

// IngestResult summarizes one batch ingestion.
type IngestResult struct {
	Received      int      `json:"received"`
	Accepted      int      `json:"accepted"`
	Dropped       int      `json:"dropped"`
	Rejected      int      `json:"rejected"`
	WindowsClosed int      `json:"windows_closed"`
	CurrentWindow int      `json:"current_window"`
	Errors        []string `json:"errors,omitempty"`
}

// maxReportedErrors bounds the per-batch error detail.
const maxReportedErrors = 5

// IngestRecords feeds a batch through the pipeline, committing every
// completed window to the store. Invalid or out-of-order records are
// rejected individually; the rest of the batch proceeds.
func (s *Server) IngestRecords(records []netflow.Record) IngestResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	res := IngestResult{Received: len(records)}
	s.metrics.FlowsReceived.Add(int64(len(records)))
	for i := range records {
		before := s.pipeline.Ingested()
		emitted, err := s.pipeline.Ingest(records[i])
		if err != nil {
			res.Rejected++
			s.metrics.FlowsRejected.Add(1)
			if len(res.Errors) < maxReportedErrors {
				res.Errors = append(res.Errors, err.Error())
			}
			continue
		}
		if len(emitted) > 0 {
			s.pending = 0
		}
		for _, set := range emitted {
			s.commitWindowLocked(set)
			res.WindowsClosed++
		}
		if accepted := s.pipeline.Ingested() - before; accepted > 0 {
			res.Accepted += accepted
			s.pending += accepted
			s.metrics.FlowsAccepted.Add(int64(accepted))
		} else {
			res.Dropped++ // filtered (e.g. non-TCP under TCPOnly)
			s.metrics.FlowsDropped.Add(1)
		}
	}
	res.CurrentWindow = s.pipeline.CurrentWindow()
	return res
}

// commitWindowLocked archives one completed window and screens it
// against the watchlist. Callers hold s.mu.
func (s *Server) commitWindowLocked(set *core.SignatureSet) {
	if err := s.store.Add(set); err != nil {
		// A snapshot/replay overlap: the window index already exists.
		// The archived window wins; the new one is dropped and counted.
		s.dropped++
		return
	}
	s.metrics.WindowsClosed.Add(1)
	if s.watch.Len() == 0 || set.Len() == 0 {
		return
	}
	u := s.store.Universe()
	screened, err := s.watch.Screen(s.cfg.Distance, set, s.cfg.WatchMaxDist)
	if err != nil {
		return
	}
	for v, hits := range screened {
		for _, h := range hits {
			s.hits = append(s.hits, WatchHit{
				Window:         set.Window,
				Label:          u.Label(v),
				Individual:     h.Individual,
				ArchivedWindow: h.Window,
				Dist:           h.Dist,
			})
			s.metrics.WatchlistHits.Add(1)
		}
	}
	if over := len(s.hits) - s.cfg.HitLogSize; over > 0 {
		s.hits = append(s.hits[:0:0], s.hits[over:]...)
	}
}

// Flush closes the current window if any records are pending in it and
// commits the resulting signature set. It returns the number of
// windows closed (0 or 1).
func (s *Server) Flush() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending == 0 {
		return 0, nil
	}
	set, err := s.pipeline.Flush()
	if err != nil {
		return 0, fmt.Errorf("server: flush: %w", err)
	}
	s.pending = 0
	s.commitWindowLocked(set)
	return 1, nil
}

// Shutdown finalizes the server: the partial window (if non-empty) is
// flushed into the store, and — when a snapshot directory is
// configured — the store is saved so a restart resumes with its
// archive. The HTTP listener itself is owned and drained by the
// caller (cmd/sigserverd) before calling Shutdown.
func (s *Server) Shutdown() error {
	if _, err := s.Flush(); err != nil {
		return err
	}
	if s.cfg.SnapshotDir == "" {
		return nil
	}
	// Hold the read lock: Save resolves labels through the universe.
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.store.Save(s.cfg.SnapshotDir)
}

// Hits returns a copy of the recorded watchlist hit log, oldest first.
func (s *Server) Hits() []WatchHit {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]WatchHit(nil), s.hits...)
}

// distanceFor resolves a per-request distance override.
func (s *Server) distanceFor(name string) (core.Distance, error) {
	if name == "" {
		return s.cfg.Distance, nil
	}
	d, ok := core.DistanceByName(name)
	if !ok {
		return nil, fmt.Errorf("server: unknown distance %q", name)
	}
	return d, nil
}
