// Package server exposes the signature machinery as an online HTTP
// service — the serving surface behind cmd/sigserverd. Flow records
// are POSTed in batches and run through the §VI streaming pipeline;
// each completed window's signature set lands in a bounded
// internal/store ring, is screened against the watchlist, and becomes
// queryable: per-label history, top-k nearest-signature search,
// watchlist hits and anomaly detection, plus health and expvar-style
// metrics endpoints.
//
// Durability model (when SnapshotDir is set): accepted records of the
// still-open window are appended to a CRC-framed write-ahead log (a
// sibling file of the snapshot directory, internal/wal), fsynced once
// per batch. Whenever a window closes, the archive is snapshotted
// atomically and the WAL truncated — at that moment every WAL entry
// belongs to an archived window, so nothing is lost. On startup a
// corrupt snapshot or WAL is quarantined (renamed aside, logged,
// counted) rather than fatal, and the WAL is replayed through a fresh
// pipeline; a kill -9 therefore loses at most the final unsynced
// batch.
//
// Locking model: the streaming pipeline interns labels into the shared
// graph.Universe on ingest, and the Universe is not safe for
// concurrent mutation. One RWMutex therefore guards every handler:
// ingestion (and any other interning path) takes the write lock; pure
// queries take the read lock. The store and watchlist carry their own
// internal locks so they also stay safe for direct library use.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"graphsig/internal/apps"
	"graphsig/internal/core"
	"graphsig/internal/netflow"
	"graphsig/internal/obs"
	"graphsig/internal/store"
	"graphsig/internal/stream"
	"graphsig/internal/wal"
)

// Defaults applied by New for unset (zero / nil) Config fields.
const (
	DefaultStoreCapacity = 16
	DefaultWatchMaxDist  = 0.5
	DefaultHitLogSize    = 1024
	DefaultDedupCap      = 4096
	DefaultReplicaRetain = 8
	// DefaultHistoryLimit bounds GET /v1/signatures/{label} when no
	// explicit limit is given: the newest entries win. With a cold tier
	// a label's archive can span months; ?limit=0 requests all of it.
	DefaultHistoryLimit = 1000
)

// Identity names a process's place in a cluster topology. It is
// purely descriptive — the server enforces nothing from it — but it
// surfaces in GET /readyz and as constant Prometheus labels so
// operators and the router can tell shards, followers and epochs
// apart.
type Identity struct {
	// Role is "single", "primary", "follower" or "router".
	Role string `json:"role"`
	// Shard and Shards locate this node on the ring (0-based index out
	// of Shards; Shards 0 means unsharded).
	Shard  int `json:"shard"`
	Shards int `json:"shards,omitempty"`
	// RingEpoch is the fingerprint of the ring membership this node was
	// configured with; mismatched epochs across a fleet mean a config
	// rollout is incomplete.
	RingEpoch uint64 `json:"ring_epoch,omitempty"`
}

// Config parameterizes a Server.
type Config struct {
	// Stream configures the ingestion pipeline (window size, scheme, k,
	// sketch sizing). Origin should be set for restartable deployments
	// so window indices stay aligned across runs; with a WAL the origin
	// is also recorded there and restored automatically.
	Stream stream.Config
	// StoreCapacity bounds the signature store ring (default 16).
	StoreCapacity int
	// Distance scores search, watchlist and anomaly queries
	// (default Jaccard; per-request override via the API).
	Distance core.Distance
	// WatchMaxDist is the watchlist screening threshold applied when
	// windows close. nil means DefaultWatchMaxDist; an explicit &0.0
	// screens exact matches only (previously unconfigurable because 0
	// was silently treated as "use the default").
	WatchMaxDist *float64
	// LSHBands/LSHRows/LSHSeed enable the store's MinHash prefilter.
	LSHBands, LSHRows int
	LSHSeed           uint64
	// SnapshotDir, when non-empty, is loaded at startup (if a snapshot
	// exists), written whenever a window closes, and written by
	// Shutdown. A corrupt snapshot is quarantined and the server boots
	// fresh. Snapshots are atomic: see store.Save.
	SnapshotDir string
	// DisableWAL turns off the write-ahead log that otherwise
	// accompanies SnapshotDir (at <SnapshotDir>.wal — a sibling, since
	// the snapshot directory itself is atomically replaced on save).
	DisableWAL bool
	// HitLogSize bounds the retained watchlist hit log. 0 means
	// DefaultHitLogSize; negative retains no hits.
	HitLogSize int
	// MaxInFlight, when positive, bounds concurrently served ingest
	// batches; excess POST /v1/flows requests get 429 + Retry-After.
	MaxInFlight int
	// DedupCap bounds the batch-ID dedup set that makes retried POSTs
	// idempotent. 0 means DefaultDedupCap; negative disables dedup.
	DedupCap int
	// Logf, when non-nil, receives operational log lines (quarantines,
	// failed snapshot saves, WAL trouble).
	Logf func(format string, args ...any)
	// Logger, when non-nil, receives the same operational events as
	// structured log records — and the tracer's slow-operation warnings
	// with trace IDs. It takes precedence over Logf.
	Logger *slog.Logger
	// SlowOp is the span duration beyond which a traced operation logs
	// a slow-operation warning (0 disables slow-op logging).
	SlowOp time.Duration
	// TraceCapacity bounds the recent-trace ring served by GET
	// /v1/traces (0 means DefaultTraceCapacity).
	TraceCapacity int
	// Node, when non-nil, stamps this process's cluster identity into
	// GET /readyz and as constant Prometheus labels (role, shard,
	// ring_epoch) on every exposed family.
	Node *Identity
	// ReadOnly rejects the mutating HTTP endpoints (POST /v1/flows,
	// POST /v1/watchlist) with 403 — the follower serving mode. Library
	// calls (IngestRecords) are unaffected: the replication loop feeds
	// the follower through them.
	ReadOnly bool
	// Replicate switches WAL checkpointing from truncation to rotation:
	// each checkpoint seals the log as an immutable generation segment
	// (<walpath>.gNNNNNNNN) and starts the next generation, and the
	// /v1/replication endpoints serve both live and sealed bytes so
	// followers can tail the log. Requires SnapshotDir and an enabled
	// WAL.
	Replicate bool
	// ReplicaRetain bounds retained sealed segments (0 means
	// DefaultReplicaRetain; negative keeps all). A follower lagging by
	// more generations than this finds its cursor pruned (410) and must
	// re-bootstrap.
	ReplicaRetain int
	// SegmentDir, when non-empty, enables tiered window storage: every
	// window the bounded ring evicts is first compacted into an
	// immutable, checksummed segment file under this directory, and
	// History / windowed Search / per-window reads transparently fall
	// through to it. At startup existing segments are rediscovered and
	// checksum-verified; corrupt files are quarantined aside like a
	// corrupt WAL, never fatal.
	SegmentDir string
	// SegmentRetain, when positive, bounds the number of segment files
	// kept on disk — compaction deletes the oldest beyond the bound, an
	// explicit trade of history depth for disk. 0 keeps everything.
	SegmentRetain int
}

// Float64 returns a pointer to v, for literal Config fields such as
// WatchMaxDist.
func Float64(v float64) *float64 { return &v }

// WatchHit is one recorded watchlist match: label's signature in the
// window that just closed was within WatchMaxDist of an archived
// individual.
type WatchHit struct {
	Window         int
	Label          string
	Individual     string
	ArchivedWindow int
	Dist           float64
}

// Recovery reports what New reconstructed from disk.
type Recovery struct {
	// SnapshotRestored is true when an archive was loaded from disk.
	SnapshotRestored bool
	// SnapshotQuarantined is the path a corrupt snapshot was moved to
	// ("" when the snapshot was healthy or absent).
	SnapshotQuarantined string
	// WALQuarantined is the path a corrupt WAL was moved to.
	WALQuarantined string
	// WALRecords / WALRejected count the replayed log entries and how
	// many the pipeline refused (0 in any consistent log).
	WALRecords  int
	WALRejected int
	// WALTornBytes counts bytes dropped from the log's torn tail.
	WALTornBytes int64
	// WALWindowsClosed counts windows the replay completed (normally 0:
	// the log covers only the open window).
	WALWindowsClosed int
	// SegmentsAttached / SegmentWindows count the cold-tier segment
	// files rediscovered at boot and the window blocks they hold.
	SegmentsAttached int
	SegmentWindows   int
	// SegmentsQuarantined lists corrupt segment files renamed aside.
	SegmentsQuarantined []string
}

// Server is the online signature service.
type Server struct {
	cfg          Config
	start        time.Time
	watchMaxDist float64
	hitLogCap    int

	// mu serializes Universe mutation (ingest, label interning) against
	// all readers; see the package comment.
	mu       sync.RWMutex
	pipeline *stream.Pipeline
	store    *store.Store
	watch    *apps.Watchlist
	hits     []WatchHit
	pending  int // records accepted into the still-open window
	dropped  int // windows lost to index conflicts (snapshot overlap)

	wal             *wal.WAL
	walOriginLogged bool
	walGen          int // current WAL generation (Replicate mode); guarded by mu
	dedup           *dedupCache
	recovery        Recovery

	// watchWire mirrors every watchlist entry in wire (label) form, in
	// add order, so the full set can be re-logged into each fresh WAL
	// generation — watch entries are rare and the watchlist itself is
	// not in the snapshot, so the log is their only durable home and a
	// bootstrapping follower's only source. Guarded by mu.
	watchWire []wal.WatchEntry

	ingestSem chan struct{}
	metrics   metrics
	obs       *serverObs
	mux       *http.ServeMux

	shuttingDown atomic.Bool // flips at Shutdown entry; read by /readyz
	// readOnly and replicating shadow cfg.ReadOnly / cfg.Replicate for
	// lock-free handler checks; Promote flips them at runtime, so
	// handlers must not read the cfg fields without mu.
	readOnly    atomic.Bool
	replicating atomic.Bool
	// identity is the live cluster identity (starts as cfg.Node);
	// Promote swaps in the promoted one.
	identity atomic.Pointer[Identity]
}

// New builds a server, loading a prior snapshot and replaying the
// write-ahead log when cfg.SnapshotDir holds them. Corrupt state is
// quarantined, never fatal: the one startup error class left is real
// I/O failure.
func New(cfg Config) (*Server, error) {
	if cfg.StoreCapacity == 0 {
		cfg.StoreCapacity = DefaultStoreCapacity
	}
	if cfg.Distance == nil {
		cfg.Distance = core.Jaccard{}
	}
	if cfg.Replicate && (cfg.SnapshotDir == "" || cfg.DisableWAL) {
		return nil, fmt.Errorf("server: Replicate requires SnapshotDir and an enabled WAL")
	}
	if cfg.ReplicaRetain == 0 {
		cfg.ReplicaRetain = DefaultReplicaRetain
	}
	s := &Server{
		cfg:          cfg,
		start:        time.Now(),
		watchMaxDist: DefaultWatchMaxDist,
		hitLogCap:    DefaultHitLogSize,
		watch:        apps.NewWatchlist(),
		mux:          http.NewServeMux(),
	}
	s.obs = newServerObs(cfg.Logger, cfg.SlowOp, cfg.TraceCapacity)
	s.metrics = newMetrics(s.obs.registry)
	s.readOnly.Store(cfg.ReadOnly)
	s.replicating.Store(cfg.Replicate)
	if cfg.Node != nil {
		s.stampIdentity(cfg.Node)
	}
	if cfg.WatchMaxDist != nil {
		s.watchMaxDist = *cfg.WatchMaxDist
	}
	if cfg.HitLogSize != 0 {
		s.hitLogCap = max(cfg.HitLogSize, 0)
	}
	switch {
	case cfg.DedupCap > 0:
		s.dedup = newDedupCache(cfg.DedupCap)
	case cfg.DedupCap == 0:
		s.dedup = newDedupCache(DefaultDedupCap)
	}
	if cfg.MaxInFlight > 0 {
		s.ingestSem = make(chan struct{}, cfg.MaxInFlight)
	}

	scfg := store.Config{
		Capacity:      cfg.StoreCapacity,
		LSHBands:      cfg.LSHBands,
		LSHRows:       cfg.LSHRows,
		LSHSeed:       cfg.LSHSeed,
		SegmentRetain: cfg.SegmentRetain,
		Registry:      s.obs.registry,
	}
	if err := s.openStore(scfg); err != nil {
		return nil, err
	}

	var replay wal.Replay
	if cfg.SnapshotDir != "" && !cfg.DisableWAL {
		var err error
		replay, err = s.openWAL()
		if err != nil {
			return nil, err
		}
		if cfg.Replicate {
			// The live log continues the generation after the newest
			// sealed segment; followers identify bytes by (gen, offset),
			// so generation numbers must never repeat across restarts.
			s.walGen, err = nextWALGen(s.wal.Path())
			if err != nil {
				return nil, err
			}
		}
		// Restore window alignment from the log before the pipeline is
		// built; an explicitly configured origin wins.
		if s.cfg.Stream.Origin.IsZero() && !replay.Origin.IsZero() {
			s.cfg.Stream.Origin = replay.Origin
			if replay.Window > 0 && replay.Window != s.cfg.Stream.WindowSize {
				s.logf("sigserver: WAL window size %v differs from configured %v; window indices may shift",
					replay.Window, s.cfg.Stream.WindowSize)
			}
		}
	}

	if s.wal != nil {
		s.wal.Instrument(
			s.obs.registry.Histogram("wal_fsync_seconds",
				"WAL write+fsync latency per flushed batch"),
			s.obs.registry.Counter("wal_appended_bytes_total",
				"framed bytes appended to the WAL"))
	}

	s.cfg.Stream.Registry = s.obs.registry
	p, err := stream.NewPipeline(s.cfg.Stream, s.store.Universe())
	if err != nil {
		return nil, err
	}
	s.pipeline = p
	s.obs.registry.GaugeFunc("uptime_seconds", "seconds since server start",
		func() int64 { return int64(time.Since(s.start).Seconds()) })
	s.obs.registry.GaugeFunc("store_windows", "retained archived windows",
		func() int64 { return int64(s.store.Len()) })
	s.obs.registry.GaugeFunc("watchlist_size", "archived watchlist signatures",
		func() int64 { return int64(s.watch.Len()) })
	if cfg.SegmentDir != "" {
		s.obs.registry.GaugeFunc("store_segment_files", "cold-tier segment files attached",
			func() int64 { return int64(s.store.SegmentCount()) })
		s.obs.registry.GaugeFunc("store_segment_windows", "windows served from cold-tier segments",
			func() int64 { return int64(s.store.SegmentWindows()) })
	}
	s.replayWAL(replay)
	s.routes()
	return s, nil
}

// stampIdentity publishes a cluster identity: /readyz and the
// replication status report it, and every Prometheus family carries it
// as constant labels. Called at New and again at Promote.
func (s *Server) stampIdentity(id *Identity) {
	s.identity.Store(id)
	labels := map[string]string{
		"role":       id.Role,
		"ring_epoch": strconv.FormatUint(id.RingEpoch, 10),
	}
	if id.Shards > 0 {
		labels["shard"] = strconv.Itoa(id.Shard)
	}
	s.obs.registry.SetConstLabels(labels)
}

// Identity reports the live cluster identity (nil when unconfigured).
// Unlike cfg.Node it tracks promotion.
func (s *Server) Identity() *Identity { return s.identity.Load() }

// openStore loads the snapshot (quarantining corruption) or builds a
// fresh store.
func (s *Server) openStore(scfg store.Config) error {
	dir := s.cfg.SnapshotDir
	if dir != "" && store.SnapshotExists(dir) {
		st, err := store.Load(dir, scfg)
		if err == nil {
			s.store = st
			s.recovery.SnapshotRestored = true
			return s.attachSegments()
		}
		if !errors.Is(err, store.ErrCorrupt) {
			return err
		}
		moved, qerr := store.Quarantine(dir)
		if qerr != nil {
			return fmt.Errorf("server: snapshot corrupt (%v) and unquarantinable: %w", err, qerr)
		}
		s.recovery.SnapshotQuarantined = moved
		s.metrics.SnapshotQuarantines.Add(1)
		s.logf("sigserver: corrupt snapshot quarantined to %s (%v); booting fresh", moved, err)
	}
	st, err := store.New(scfg)
	if err != nil {
		return err
	}
	s.store = st
	return s.attachSegments()
}

// attachSegments enables the store's cold tier when SegmentDir is
// configured: existing segment files are rediscovered and
// checksum-verified, and corrupt ones (torn compaction tails, flipped
// bytes) are quarantined aside — boot continues without them. It runs
// after any snapshot load so label interning follows the manifest
// first.
func (s *Server) attachSegments() error {
	if s.cfg.SegmentDir == "" {
		return nil
	}
	st, err := s.store.AttachSegments(s.cfg.SegmentDir)
	if err != nil {
		return err
	}
	s.recovery.SegmentsAttached = st.Segments
	s.recovery.SegmentWindows = st.Windows
	s.recovery.SegmentsQuarantined = st.Quarantined
	for _, q := range st.Quarantined {
		s.logf("sigserver: corrupt segment quarantined to %s", q)
	}
	return nil
}

// WALPath reports where the write-ahead log lives for a snapshot
// directory: beside it, because the directory itself is renamed away
// on every atomic save.
func WALPath(snapshotDir string) string { return snapshotDir + ".wal" }

// openWAL opens (quarantining a corrupt header) the write-ahead log.
func (s *Server) openWAL() (wal.Replay, error) {
	path := WALPath(s.cfg.SnapshotDir)
	w, replay, err := wal.Open(path)
	if errors.Is(err, wal.ErrCorrupt) {
		moved, qerr := wal.Quarantine(path)
		if qerr != nil {
			return wal.Replay{}, fmt.Errorf("server: WAL corrupt and unquarantinable: %w", qerr)
		}
		s.recovery.WALQuarantined = moved
		s.metrics.WALQuarantines.Add(1)
		s.logf("sigserver: corrupt WAL quarantined to %s; starting a fresh log", moved)
		w, replay, err = wal.Open(path)
	}
	if err != nil {
		return wal.Replay{}, err
	}
	s.wal = w
	s.recovery.WALTornBytes = replay.TornBytes
	if replay.TornBytes > 0 {
		s.logf("sigserver: WAL recovery dropped a torn tail of %d bytes", replay.TornBytes)
	}
	return replay, nil
}

// replayWAL pushes recovered frames through the pipeline in append
// order, rebuilding the open window's sketch state, the watchlist and
// the dedup set. Order matters: a watch entry screens only windows
// that close after it, so record and watch frames interleave exactly
// as the primary applied them. Runs before the server is shared, so no
// locking. If the replay completes windows (a snapshot save failed in
// a previous life), they are checkpointed now.
func (s *Server) replayWAL(replay wal.Replay) {
	if len(replay.Frames) == 0 {
		return
	}
	// tail collects the records of the window still open after replay,
	// so a post-replay checkpoint can rewrite them into the reset log.
	var tail []netflow.Record
	for _, fr := range replay.Frames {
		switch fr.Kind {
		case wal.FrameWatch:
			if err := s.addWatchLocked(fr.Watch, false); err != nil {
				s.recovery.WALRejected++
				s.logf("sigserver: WAL watch replay failed: %v", err)
			}
			continue
		case wal.FrameBatch:
			s.registerBatchLocked(fr.Batch)
			continue
		case wal.FrameRecord:
		default:
			continue // origin frames were consumed by Open
		}
		s.recovery.WALRecords++
		before := s.pipeline.Ingested()
		emitted, err := s.pipeline.Ingest(fr.Record)
		if err != nil {
			s.recovery.WALRejected++
			continue
		}
		if len(emitted) > 0 {
			tail = tail[:0]
			s.pending = 0
			// Count only windows the store actually kept: replay over a
			// restored snapshot re-derives already-archived (or empty
			// skipped) windows, which Add drops as index conflicts —
			// those must not trigger a re-checkpoint on every boot.
			before := s.store.TotalAdded()
			for _, set := range emitted {
				s.commitWindowLocked(set)
			}
			s.recovery.WALWindowsClosed += s.store.TotalAdded() - before
		}
		if accepted := s.pipeline.Ingested() - before; accepted > 0 {
			s.pending += accepted
			tail = append(tail, fr.Record)
		}
	}
	s.metrics.WALReplayedRecords.Add(int64(s.recovery.WALRecords))
	if s.recovery.WALRejected > 0 {
		s.logf("sigserver: WAL replay rejected %d of %d records", s.recovery.WALRejected, s.recovery.WALRecords)
	}
	if s.recovery.WALWindowsClosed > 0 {
		// The log held whole closed windows; archive them durably and
		// shrink the log back to just the open window's tail.
		if err := s.store.Save(s.cfg.SnapshotDir); err != nil {
			s.metrics.SnapshotErrors.Add(1)
			s.logf("sigserver: post-replay snapshot failed, keeping full WAL: %v", err)
			return
		}
		s.metrics.SnapshotSaves.Add(1)
		if err := s.resetWALLocked(); err != nil {
			s.metrics.WALErrors.Add(1)
			s.logf("sigserver: post-replay WAL reset failed: %v", err)
			return
		}
		s.relogWALLocked()
		if err := s.wal.Append(tail); err != nil {
			s.metrics.WALErrors.Add(1)
			s.logf("sigserver: rewriting open-window tail failed: %v", err)
		}
	}
}

// Handler returns the HTTP handler serving the v1 API.
func (s *Server) Handler() http.Handler {
	return s.instrument(s.mux)
}

// Store exposes the underlying signature store (read-mostly; see the
// package locking model before mutating concurrently with serving).
func (s *Server) Store() *store.Store { return s.store }

// Recovery reports what New reconstructed from disk.
func (s *Server) Recovery() Recovery { return s.recovery }

// PipelineOrigin reports the stream pipeline's window origin once it is
// known — followers use it to cross-check origin frames from later WAL
// generations against the alignment they already committed to.
func (s *Server) PipelineOrigin() (time.Time, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pipeline.Origin()
}

// logf forwards to the configured logger, if any. A structured Logger
// wins over the printf-style Logf; operational events are warnings
// (quarantines, failed saves, degraded durability).
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Warn(fmt.Sprintf(format, args...))
		return
	}
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// IngestResult summarizes one batch ingestion.
type IngestResult struct {
	Received      int `json:"received"`
	Accepted      int `json:"accepted"`
	Dropped       int `json:"dropped"`
	Rejected      int `json:"rejected"`
	WindowsClosed int `json:"windows_closed"`
	CurrentWindow int `json:"current_window"`
	// Deduplicated marks a replayed result: this batch ID was already
	// ingested and the original outcome is returned unchanged.
	Deduplicated bool     `json:"deduplicated,omitempty"`
	Errors       []string `json:"errors,omitempty"`
}

// maxReportedErrors bounds the per-batch error detail.
const maxReportedErrors = 5

// IngestRecords feeds a batch through the pipeline, committing every
// completed window to the store. Invalid or out-of-order records are
// rejected individually; the rest of the batch proceeds.
func (s *Server) IngestRecords(records []netflow.Record) IngestResult {
	return s.IngestBatch("", records)
}

// IngestBatch is IngestRecords with an optional client-supplied batch
// ID: re-ingesting an ID still in the dedup set returns the recorded
// result without touching the pipeline, making retried POSTs
// idempotent.
func (s *Server) IngestBatch(batchID string, records []netflow.Record) IngestResult {
	tr := s.obs.tracer.Start("ingest")
	defer tr.Finish()
	return s.ingestBatchTraced(tr, batchID, records)
}

// ingestBatchTraced is IngestBatch under a caller-owned trace — the
// HTTP handler adopts an inbound X-Sig-Trace context so a routed
// ingest's shard-side work records under the router's trace ID.
func (s *Server) ingestBatchTraced(tr *obs.Trace, batchID string, records []netflow.Record) IngestResult {
	endWait := tr.Span("lock.wait")
	s.mu.Lock()
	endWait()
	defer s.mu.Unlock()
	if batchID != "" && s.dedup != nil {
		if res, ok := s.dedup.get(batchID); ok {
			s.metrics.BatchesDeduped.Add(1)
			res.Deduplicated = true
			return res
		}
	}
	res := s.ingestLocked(tr, records)
	if batchID != "" && s.dedup != nil {
		s.dedup.put(batchID, res)
		// Make the dedup decision durable and shippable: a follower that
		// replays this marker registers the same ID with the same
		// recorded result, so a client retry that lands on the follower
		// after its promotion is answered exactly like a retry here.
		s.walAppendBatchLocked(batchID, res)
	}
	return res
}

func (s *Server) ingestLocked(tr *obs.Trace, records []netflow.Record) IngestResult {
	res := IngestResult{Received: len(records)}
	s.metrics.FlowsReceived.Add(int64(len(records)))
	// walPending buffers this batch's accepted records; it is flushed
	// to the log once at batch end (one fsync per batch) and eagerly
	// before any checkpoint so closing windows are never unlogged.
	var walPending []netflow.Record
	for i := range records {
		before := s.pipeline.Ingested()
		emitted, err := s.pipeline.Ingest(records[i])
		if err != nil {
			res.Rejected++
			s.metrics.FlowsRejected.Add(1)
			if len(res.Errors) < maxReportedErrors {
				res.Errors = append(res.Errors, err.Error())
			}
			continue
		}
		if len(emitted) > 0 {
			// The records logged so far belong to the closing windows;
			// persist them before checkpointing so even a failed
			// snapshot leaves the log complete for replay.
			endWAL := tr.Span("wal.append")
			s.walAppendLocked(walPending)
			endWAL()
			walPending = walPending[:0]
			s.pending = 0
			endCommit := tr.Span("window.commit")
			for _, set := range emitted {
				s.commitWindowLocked(set)
				res.WindowsClosed++
			}
			endCommit()
			// Every WAL entry now belongs to an archived window (the
			// record that triggered the close is observed into the new
			// window but not yet logged), so the checkpoint may
			// truncate the log.
			endCP := tr.Span("checkpoint")
			s.checkpointLocked()
			endCP()
		}
		if accepted := s.pipeline.Ingested() - before; accepted > 0 {
			res.Accepted += accepted
			s.pending += accepted
			s.metrics.FlowsAccepted.Add(int64(accepted))
			walPending = append(walPending, records[i])
		} else {
			res.Dropped++ // filtered (e.g. non-TCP under TCPOnly)
			s.metrics.FlowsDropped.Add(1)
		}
	}
	endWAL := tr.Span("wal.append")
	s.walAppendLocked(walPending)
	endWAL()
	res.CurrentWindow = s.pipeline.CurrentWindow()
	return res
}

// walAppendLocked logs accepted records, recording the pipeline origin
// first if it just became known. WAL failure degrades durability, not
// availability: it is logged and counted, and serving continues.
func (s *Server) walAppendLocked(records []netflow.Record) {
	if s.wal == nil || len(records) == 0 {
		return
	}
	s.logWALOrigin()
	if err := s.wal.Append(records); err != nil {
		s.metrics.WALErrors.Add(1)
		s.logf("sigserver: WAL append failed (durability degraded): %v", err)
		return
	}
	s.metrics.WALAppendedRecords.Add(int64(len(records)))
}

// walAppendBatchLocked logs one applied-batch dedup marker after the
// batch's records. Failure degrades cross-failover idempotency, not
// availability. Callers hold s.mu.
func (s *Server) walAppendBatchLocked(batchID string, res IngestResult) {
	if s.wal == nil || batchID == "" {
		return
	}
	payload, err := json.Marshal(res)
	if err != nil {
		s.logf("sigserver: encoding batch result for WAL: %v", err)
		return
	}
	if err := s.wal.AppendBatch(wal.BatchEntry{ID: batchID, Result: payload}); err != nil {
		s.metrics.WALErrors.Add(1)
		s.logf("sigserver: WAL batch marker append failed: %v", err)
	}
}

// registerBatchLocked replays one batch dedup marker (WAL recovery or
// follower replication) into the dedup set. Callers hold s.mu.
func (s *Server) registerBatchLocked(e wal.BatchEntry) {
	if s.dedup == nil || e.ID == "" {
		return
	}
	var res IngestResult
	if len(e.Result) > 0 {
		if err := json.Unmarshal(e.Result, &res); err != nil {
			s.logf("sigserver: undecodable batch result for %q: %v", e.ID, err)
			res = IngestResult{}
		}
	}
	s.dedup.put(e.ID, res)
}

// RegisterBatch is registerBatchLocked for the replication path: the
// follower feeds shipped batch markers through it so a promoted
// follower inherits the primary's dedup set.
func (s *Server) RegisterBatch(e wal.BatchEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.registerBatchLocked(e)
}

// addWatchLocked applies one watchlist mutation in wire form —
// interning its labels, archiving it, and mirroring it into watchWire
// for per-generation re-logging. With logToWAL set (the HTTP add path)
// the entry is also framed into the log; replay paths pass false, the
// entry is already in the log they came from. Callers hold s.mu.
func (s *Server) addWatchLocked(e wal.WatchEntry, logToWAL bool) error {
	sig, err := s.internSignature(SignatureJSON{Nodes: e.Nodes, Weights: e.Weights})
	if err != nil {
		return err
	}
	if err := s.watch.Add(e.Individual, e.Window, sig); err != nil {
		return err
	}
	s.watchWire = append(s.watchWire, e)
	if logToWAL && s.wal != nil {
		s.logWALOrigin()
		if werr := s.wal.AppendWatches([]wal.WatchEntry{e}); werr != nil {
			s.metrics.WALErrors.Add(1)
			s.logf("sigserver: WAL watch append failed (durability degraded): %v", werr)
		} else {
			s.metrics.WatchEntriesLogged.Add(1)
		}
	}
	return nil
}

// ApplyWatchEntry applies one WAL-shipped watchlist mutation — the
// follower replication path. The entry is not re-framed locally; a
// later Promote re-logs the accumulated set into the promoted node's
// own log.
func (s *Server) ApplyWatchEntry(e wal.WatchEntry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.addWatchLocked(e, false); err != nil {
		return err
	}
	s.metrics.WatchlistAdds.Add(1)
	return nil
}

// relogWALLocked re-records the per-generation prologue after a reset
// or rotation: the pipeline origin and the full watchlist wire set.
// The watchlist is memory-only outside the log (it is not in the
// snapshot), so every generation must open with the complete set —
// which also hands it to followers whose cursor starts mid-lineage.
// Callers hold s.mu.
func (s *Server) relogWALLocked() {
	s.walOriginLogged = false
	s.logWALOrigin()
	if s.wal == nil || len(s.watchWire) == 0 {
		return
	}
	if err := s.wal.AppendWatches(s.watchWire); err != nil {
		s.metrics.WALErrors.Add(1)
		s.logf("sigserver: re-logging %d watch entries failed: %v", len(s.watchWire), err)
		return
	}
	s.metrics.WatchEntriesLogged.Add(int64(len(s.watchWire)))
}

// logWALOrigin records the pipeline's window alignment in the log once
// per log generation.
func (s *Server) logWALOrigin() {
	if s.wal == nil || s.walOriginLogged {
		return
	}
	origin, ok := s.pipeline.Origin()
	if !ok {
		return
	}
	if err := s.wal.AppendOrigin(origin, s.cfg.Stream.WindowSize); err != nil {
		s.metrics.WALErrors.Add(1)
		s.logf("sigserver: WAL origin append failed: %v", err)
		return
	}
	s.walOriginLogged = true
}

// checkpointLocked makes the archive durable and truncates the log.
// Callers must guarantee every WAL entry belongs to an already
// archived window. On snapshot failure the log is left intact — the
// closed windows then live only there, and the next successful
// checkpoint (or startup replay) recovers them.
func (s *Server) checkpointLocked() {
	if s.cfg.SnapshotDir == "" {
		return
	}
	if err := s.store.Save(s.cfg.SnapshotDir); err != nil {
		s.metrics.SnapshotErrors.Add(1)
		s.logf("sigserver: snapshot save failed (WAL kept): %v", err)
		return
	}
	s.metrics.SnapshotSaves.Add(1)
	if s.wal == nil {
		return
	}
	if err := s.resetWALLocked(); err != nil {
		s.metrics.WALErrors.Add(1)
		s.logf("sigserver: WAL reset failed: %v", err)
		return
	}
	s.metrics.WALResets.Add(1)
	s.relogWALLocked()
}

// resetWALLocked empties the log after a checkpoint. Normally that is
// a plain truncation; in Replicate mode the current generation is
// instead sealed as an immutable segment file and the next generation
// started, so a follower whose cursor is still inside the old
// generation can keep fetching its bytes. Callers hold s.mu (or run
// before the server is shared) and re-log the origin afterwards.
func (s *Server) resetWALLocked() error {
	if !s.cfg.Replicate {
		return s.wal.Reset()
	}
	if err := s.wal.Rotate(walSegmentPath(s.wal.Path(), s.walGen)); err != nil {
		return err
	}
	s.walGen++
	s.metrics.WALRotations.Add(1)
	s.pruneSegmentsLocked()
	return nil
}

// walSegmentPath names the sealed segment file of one WAL generation.
func walSegmentPath(walPath string, gen int) string {
	return fmt.Sprintf("%s.g%08d", walPath, gen)
}

// walSegmentGens lists the generations with sealed segments beside
// walPath, ascending.
func walSegmentGens(walPath string) ([]int, error) {
	matches, err := filepath.Glob(walPath + ".g*")
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	var gens []int
	for _, m := range matches {
		g, err := strconv.Atoi(strings.TrimPrefix(m, walPath+".g"))
		if err != nil {
			continue // stray file (e.g. a quarantined segment)
		}
		gens = append(gens, g)
	}
	sort.Ints(gens)
	return gens, nil
}

// nextWALGen picks the generation number for the live log: one past
// the newest sealed segment, 0 on a fresh deployment.
func nextWALGen(walPath string) (int, error) {
	gens, err := walSegmentGens(walPath)
	if err != nil {
		return 0, err
	}
	if len(gens) == 0 {
		return 0, nil
	}
	return gens[len(gens)-1] + 1, nil
}

// pruneSegmentsLocked drops sealed segments beyond the retention
// bound, oldest first. Pruning is best-effort: a failed remove is
// logged and retried at the next rotation.
func (s *Server) pruneSegmentsLocked() {
	retain := s.cfg.ReplicaRetain
	if retain < 0 {
		return
	}
	gens, err := walSegmentGens(s.wal.Path())
	if err != nil {
		s.logf("sigserver: listing WAL segments: %v", err)
		return
	}
	for len(gens) > retain {
		g := gens[0]
		gens = gens[1:]
		if err := os.Remove(walSegmentPath(s.wal.Path(), g)); err != nil {
			s.logf("sigserver: pruning WAL segment g%08d: %v", g, err)
			return
		}
		s.metrics.SegmentsPruned.Add(1)
	}
}

// Snapshot saves the archive now — the periodic background loop in
// cmd/sigserverd calls this so durability of archived windows does not
// depend on a graceful shutdown. The WAL is not truncated: it still
// covers the open window.
func (s *Server) Snapshot() error {
	if s.cfg.SnapshotDir == "" {
		return nil
	}
	// Read lock: Save only reads server state (store and universe have
	// their own synchronization, and store.Save serializes itself).
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.store.Save(s.cfg.SnapshotDir); err != nil {
		s.metrics.SnapshotErrors.Add(1)
		return err
	}
	s.metrics.SnapshotSaves.Add(1)
	return nil
}

// commitWindowLocked archives one completed window and screens it
// against the watchlist. Callers hold s.mu.
func (s *Server) commitWindowLocked(set *core.SignatureSet) {
	if err := s.store.Add(set); err != nil {
		// A snapshot/replay overlap: the window index already exists.
		// The archived window wins; the new one is dropped and counted.
		s.dropped++
		return
	}
	s.metrics.WindowsClosed.Add(1)
	if s.watch.Len() == 0 || set.Len() == 0 {
		return
	}
	u := s.store.Universe()
	screened, err := s.watch.Screen(s.cfg.Distance, set, s.watchMaxDist)
	if err != nil {
		return
	}
	for v, hits := range screened {
		for _, h := range hits {
			s.hits = append(s.hits, WatchHit{
				Window:         set.Window,
				Label:          u.Label(v),
				Individual:     h.Individual,
				ArchivedWindow: h.Window,
				Dist:           h.Dist,
			})
			s.metrics.WatchlistHits.Add(1)
		}
	}
	if over := len(s.hits) - s.hitLogCap; over > 0 {
		s.hits = append(s.hits[:0:0], s.hits[over:]...)
	}
}

// Flush closes the current window if any records are pending in it and
// commits the resulting signature set. It returns the number of
// windows closed (0 or 1).
func (s *Server) Flush() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending == 0 {
		return 0, nil
	}
	set, err := s.pipeline.Flush()
	if err != nil {
		return 0, fmt.Errorf("server: flush: %w", err)
	}
	s.pending = 0
	s.commitWindowLocked(set)
	return 1, nil
}

// Shutdown finalizes the server: the partial window (if non-empty) is
// flushed into the store, and — when a snapshot directory is
// configured — the store is saved and the WAL truncated. A failed
// flush no longer skips the snapshot: whatever is already archived is
// saved before the flush error is returned. The HTTP listener itself
// is owned and drained by the caller (cmd/sigserverd) before calling
// Shutdown.
func (s *Server) Shutdown() error {
	s.shuttingDown.Store(true) // /readyz flips to 503 while we drain
	_, flushErr := s.Flush()
	var saveErr error
	if s.cfg.SnapshotDir != "" {
		s.mu.Lock()
		if saveErr = s.store.Save(s.cfg.SnapshotDir); saveErr != nil {
			s.metrics.SnapshotErrors.Add(1)
		} else {
			s.metrics.SnapshotSaves.Add(1)
			if flushErr == nil && s.wal != nil {
				// Everything is archived and saved; empty the log,
				// keeping the origin for the next run's alignment. On a
				// failed flush the open window's records must stay in
				// the WAL — they are its only surviving copy.
				if err := s.resetWALLocked(); err != nil {
					s.metrics.WALErrors.Add(1)
					s.logf("sigserver: shutdown WAL reset failed: %v", err)
				} else {
					s.metrics.WALResets.Add(1)
					s.relogWALLocked()
				}
			}
		}
		s.mu.Unlock()
	}
	if s.wal != nil {
		if err := s.wal.Close(); err != nil && flushErr == nil && saveErr == nil {
			flushErr = err
		}
	}
	if flushErr != nil {
		return flushErr
	}
	return saveErr
}

// Abort releases the server's file handles without flushing, saving,
// or truncating anything — the kill -9 path: what survives is exactly
// the last snapshot plus the fsynced WAL frames. Crash-recovery tests
// and the simcheck harness use it to model a crash without leaking a
// descriptor per abandoned server. The server must not be used after.
func (s *Server) Abort() {
	if s.wal != nil {
		s.wal.Close()
	}
}

// Hits returns a copy of the recorded watchlist hit log, oldest first.
func (s *Server) Hits() []WatchHit {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]WatchHit(nil), s.hits...)
}

// distanceFor resolves a per-request distance override.
func (s *Server) distanceFor(name string) (core.Distance, error) {
	if name == "" {
		return s.cfg.Distance, nil
	}
	d, ok := core.DistanceByName(name)
	if !ok {
		return nil, fmt.Errorf("server: unknown distance %q", name)
	}
	return d, nil
}

// dedupCache is the bounded batch-ID → result map behind idempotent
// ingest, evicting oldest-first. Guarded by Server.mu.
type dedupCache struct {
	cap     int
	order   []string
	results map[string]IngestResult
}

func newDedupCache(cap int) *dedupCache {
	return &dedupCache{cap: cap, results: make(map[string]IngestResult, cap)}
}

func (d *dedupCache) get(id string) (IngestResult, bool) {
	res, ok := d.results[id]
	return res, ok
}

func (d *dedupCache) put(id string, res IngestResult) {
	if _, ok := d.results[id]; ok {
		return
	}
	if len(d.order) >= d.cap {
		evict := d.order[0]
		d.order = d.order[1:]
		delete(d.results, evict)
	}
	d.order = append(d.order, id)
	d.results[id] = res
}
