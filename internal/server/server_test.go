package server

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"graphsig/internal/netflow"
	"graphsig/internal/sketch"
	"graphsig/internal/stream"
)

var testT0 = time.Date(2026, 3, 2, 0, 0, 0, 0, time.UTC)

func testConfig() Config {
	return Config{
		Stream: stream.Config{
			WindowSize: time.Hour,
			Origin:     testT0,
			Classify:   netflow.PrefixClassifier("10."),
			TCPOnly:    true,
			K:          5,
			Scheme:     "tt",
			Sketch:     sketch.StreamConfig{Width: 1024, Depth: 4, Candidates: 64, Seed: 1},
		},
		StoreCapacity: 8,
		WatchMaxDist:  Float64(0.9),
	}
}

func flowAt(src, dst string, offset time.Duration, sessions int) netflow.Record {
	return netflow.Record{
		Src: src, Dst: dst, Start: testT0.Add(offset),
		Sessions: sessions, Proto: netflow.TCP,
	}
}

// window0Flows gives two local hosts identical behaviour (a twin pair)
// and a third its own.
func window0Flows() []netflow.Record {
	return []netflow.Record{
		flowAt("10.0.0.1", "e1", 0, 3),
		flowAt("10.0.0.1", "e2", time.Minute, 1),
		flowAt("10.0.0.2", "e1", 2*time.Minute, 3),
		flowAt("10.0.0.2", "e2", 3*time.Minute, 1),
		flowAt("10.0.0.3", "e9", 4*time.Minute, 2),
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *Client, func()) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	return s, NewClient(ts.URL), ts.Close
}

func TestServerIngestQueryWatchlistAnomalies(t *testing.T) {
	_, c, done := newTestServer(t, testConfig())
	defer done()

	// Window 0 plus one window-1 record to close it.
	res, err := c.Ingest(append(window0Flows(),
		flowAt("10.0.0.1", "e1", time.Hour+time.Minute, 2),
		flowAt("10.0.0.3", "e8", time.Hour+2*time.Minute, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 7 || res.WindowsClosed != 1 || res.CurrentWindow != 1 {
		t.Fatalf("ingest result = %+v", res)
	}

	// History of a window-0 source.
	hist, err := c.History("10.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	if len(hist.History) != 1 || hist.History[0].Window != 0 {
		t.Fatalf("history = %+v", hist)
	}
	sig := hist.History[0].Signature
	if len(sig.Nodes) != 2 || sig.Nodes[0] != "e1" {
		t.Fatalf("signature = %+v", sig)
	}
	if _, err := c.History("10.9.9.9"); err == nil || !strings.Contains(err.Error(), "no archived") {
		t.Fatalf("unknown history error = %v", err)
	}

	// Search by label finds the twin.
	sr, err := c.Search(SearchRequest{Label: "10.0.0.1", K: 3, MaxDist: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Distance != "jaccard" || len(sr.Hits) == 0 || sr.Hits[0].Label != "10.0.0.2" || sr.Hits[0].Dist != 0 {
		t.Fatalf("search = %+v", sr)
	}
	// Search by inline signature, with a distance override and a member
	// label the server has never seen.
	sr, err = c.Search(SearchRequest{
		Signature: &SignatureJSON{Nodes: []string{"e1", "e2", "never-seen"}, Weights: []float64{3, 1, 1}},
		K:         2, Distance: "dice",
	})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Distance != "dice" || len(sr.Hits) != 2 {
		t.Fatalf("inline search = %+v", sr)
	}
	// Error paths.
	if _, err := c.Search(SearchRequest{}); err == nil {
		t.Fatal("empty search accepted")
	}
	if _, err := c.Search(SearchRequest{Label: "10.0.0.1", Signature: &SignatureJSON{}}); err == nil {
		t.Fatal("label+signature search accepted")
	}
	if _, err := c.Search(SearchRequest{Label: "10.0.0.1", Distance: "nope"}); err == nil {
		t.Fatal("unknown distance accepted")
	}

	// Watch 10.0.0.2's archived window-0 signature, then close window 1:
	// 10.0.0.1 behaves like it there, so screening must record hits for
	// both twins (10.0.0.2 is silent in window 1).
	wa, err := c.WatchlistAdd(WatchlistAddRequest{Individual: "case-7", Label: "10.0.0.2"})
	if err != nil {
		t.Fatal(err)
	}
	if wa.Archived != 1 || wa.Total != 1 {
		t.Fatalf("watchlist add = %+v", wa)
	}
	if _, err := c.WatchlistAdd(WatchlistAddRequest{Individual: "x", Label: "10.9.9.9"}); err == nil {
		t.Fatal("watchlist add of unknown label accepted")
	}
	// Window-2 record closes window 1.
	if _, err := c.Ingest([]netflow.Record{flowAt("10.0.0.3", "e8", 2*time.Hour, 1)}); err != nil {
		t.Fatal(err)
	}
	hits, err := c.WatchlistHits()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range hits.Hits {
		if h.Individual == "case-7" && h.Label == "10.0.0.1" && h.Window == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a case-7 hit on 10.0.0.1, got %+v", hits.Hits)
	}

	// Anomalies between windows 0 and 1: 10.0.0.3 changed (e9 → e8),
	// the twins persisted or vanished.
	an, err := c.Anomalies(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if an.FromWindow != 0 || an.ToWindow != 1 {
		t.Fatalf("anomaly windows = %+v", an)
	}
	anomalous := false
	for _, a := range an.Anomalies {
		if a.Label == "10.0.0.3" {
			anomalous = true
		}
	}
	if !anomalous {
		t.Fatalf("10.0.0.3 not flagged: %+v", an.Anomalies)
	}

	// Health and metrics are consistent with what was sent.
	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Ingested != 8 || h.Windows != 2 || h.CurrentWindow != 2 {
		t.Fatalf("health = %+v", h)
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m["flows_received"] != 8 || m["flows_accepted"] != 8 || m["windows_closed"] != 2 {
		t.Fatalf("metrics = %v", m)
	}
	if m["flows_accepted"]+m["flows_dropped"]+m["flows_rejected"] != m["flows_received"] {
		t.Fatalf("flow counters inconsistent: %v", m)
	}
	if m["http_errors_total"] == 0 {
		t.Fatalf("error-path requests not counted: %v", m)
	}

	// A UDP record under TCPOnly is dropped, not accepted.
	res, err = c.Ingest([]netflow.Record{{
		Src: "10.0.0.1", Dst: "e1", Start: testT0.Add(2*time.Hour + time.Minute),
		Sessions: 1, Proto: netflow.UDP,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 1 || res.Accepted != 0 {
		t.Fatalf("udp ingest = %+v", res)
	}
	// A regressing record is rejected with detail.
	res, err = c.Ingest([]netflow.Record{flowAt("10.0.0.1", "e1", 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 1 || len(res.Errors) != 1 {
		t.Fatalf("regressing ingest = %+v", res)
	}
}

// TestServerSearchBatch: POST /v1/search/batch answers every slot
// exactly as the equivalent single POST /v1/search would, carries
// per-slot errors without failing the batch, and enforces the
// one-batch-one-distance rule.
func TestServerSearchBatch(t *testing.T) {
	_, c, done := newTestServer(t, testConfig())
	defer done()
	if _, err := c.Ingest(append(window0Flows(),
		flowAt("10.0.0.1", "e1", time.Hour+time.Minute, 2),
		flowAt("10.0.0.3", "e8", time.Hour+2*time.Minute, 2),
		flowAt("10.0.0.3", "e8", 2*time.Hour, 1))); err != nil {
		t.Fatal(err)
	}

	queries := []SearchRequest{
		{Label: "10.0.0.1", K: 3, MaxDist: 0.9},
		{Signature: &SignatureJSON{Nodes: []string{"e1", "e2", "never-seen"}, Weights: []float64{3, 1, 1}}, K: 2},
		{Label: "10.0.0.3", K: 5, LastWindows: 1},
		{Label: "10.0.0.2", K: 4, ExcludeLabel: "10.0.0.1"},
	}
	batch, err := c.SearchBatch(BatchSearchRequest{Queries: queries})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Distance != "jaccard" || len(batch.Results) != len(queries) {
		t.Fatalf("batch = %+v", batch)
	}
	for i, q := range queries {
		single, err := c.Search(q)
		if err != nil {
			t.Fatalf("single %d: %v", i, err)
		}
		if batch.Results[i].Error != "" {
			t.Fatalf("slot %d errored: %s", i, batch.Results[i].Error)
		}
		if got, want := fmt.Sprintf("%+v", batch.Results[i].Hits), fmt.Sprintf("%+v", single.Hits); got != want {
			t.Fatalf("slot %d diverged:\nbatch:  %s\nsingle: %s", i, got, want)
		}
	}

	// Per-slot failures ride alongside good slots without failing the
	// call: unknown label, label+signature, neither, a distance that
	// disagrees with the batch's, a malformed signature.
	mixed := []SearchRequest{
		{Label: "10.0.0.1", K: 2},
		{Label: "10.9.9.9"},
		{Label: "10.0.0.1", Signature: &SignatureJSON{}},
		{},
		{Label: "10.0.0.1", Distance: "dice"},
		{Signature: &SignatureJSON{Nodes: []string{"e1"}, Weights: []float64{1, 2}}},
	}
	res, err := c.SearchBatch(BatchSearchRequest{Queries: mixed})
	if err != nil {
		t.Fatal(err)
	}
	if res.Results[0].Error != "" || len(res.Results[0].Hits) == 0 {
		t.Fatalf("good slot = %+v", res.Results[0])
	}
	for i := 1; i < len(mixed); i++ {
		if res.Results[i].Error == "" {
			t.Fatalf("bad slot %d carried no error: %+v", i, res.Results[i])
		}
		if len(res.Results[i].Hits) != 0 {
			t.Fatalf("bad slot %d carried hits: %+v", i, res.Results[i])
		}
	}

	// A batch-level distance applies to every slot; slots naming the
	// same distance explicitly are fine.
	dres, err := c.SearchBatch(BatchSearchRequest{Distance: "dice", Queries: []SearchRequest{
		{Label: "10.0.0.1", K: 2},
		{Label: "10.0.0.1", K: 2, Distance: "dice"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	dsingle, err := c.Search(SearchRequest{Label: "10.0.0.1", K: 2, Distance: "dice"})
	if err != nil {
		t.Fatal(err)
	}
	if dres.Distance != "dice" {
		t.Fatalf("batch distance = %q", dres.Distance)
	}
	for i := range dres.Results {
		if got, want := fmt.Sprintf("%+v", dres.Results[i].Hits), fmt.Sprintf("%+v", dsingle.Hits); got != want {
			t.Fatalf("dice slot %d diverged:\nbatch:  %s\nsingle: %s", i, got, want)
		}
	}

	// Whole-call errors: an empty batch, an unknown batch distance.
	if _, err := c.SearchBatch(BatchSearchRequest{}); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := c.SearchBatch(BatchSearchRequest{Distance: "nope",
		Queries: []SearchRequest{{Label: "10.0.0.1"}}}); err == nil {
		t.Fatal("unknown batch distance accepted")
	}

	// Batch accounting: one batch_searches tick per decoded call (the
	// unknown-distance refusal counts, the empty batch does not), one
	// search_queries tick per slot.
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m["batch_searches"] != 4 {
		t.Fatalf("batch_searches = %d, want 4", m["batch_searches"])
	}
	if m["search_queries"] < int64(len(queries)+len(mixed)+2) {
		t.Fatalf("search_queries = %d, want at least %d", m["search_queries"], len(queries)+len(mixed)+2)
	}
	if m["route_post_v1_search_batch_requests"] == 0 {
		t.Fatal("batch route not in the per-route histogram family")
	}
}

// TestServerConcurrentIngestAndQuery hammers the HTTP surface from
// many goroutines under -race: one writer advancing windows, several
// readers searching, listing history and scraping metrics while labels
// are being interned.
func TestServerConcurrentIngestAndQuery(t *testing.T) {
	cfg := testConfig()
	cfg.LSHBands, cfg.LSHRows, cfg.LSHSeed = 4, 2, 11
	_, c, done := newTestServer(t, cfg)
	defer done()

	// Seed window 0 and close it so readers always have data.
	if _, err := c.Ingest(append(window0Flows(),
		flowAt("10.0.0.1", "e1", time.Hour, 1))); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WatchlistAdd(WatchlistAddRequest{Individual: "case-1", Label: "10.0.0.1"}); err != nil {
		t.Fatal(err)
	}

	const batches = 30
	var wg sync.WaitGroup
	wg.Add(1 + 3)
	go func() { // writer: advance one window per batch, new labels as it goes
		defer wg.Done()
		for b := 0; b < batches; b++ {
			off := time.Duration(b+1)*time.Hour + time.Minute
			batch := []netflow.Record{
				flowAt("10.0.0.1", "e1", off, 2),
				flowAt("10.0.0.2", "e2", off+time.Minute, 1),
				flowAt("10.0.1.9", newLabel("fresh", b), off+2*time.Minute, 1),
				flowAt(newLabel("10.0.2.", b), "e1", off+3*time.Minute, 1),
			}
			if _, err := c.Ingest(batch); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for r := 0; r < 3; r++ {
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				switch i % 4 {
				case 0:
					if _, err := c.Search(SearchRequest{Label: "10.0.0.1", K: 5, MaxDist: 1}); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := c.History("10.0.0.1"); err != nil {
						t.Error(err)
						return
					}
				case 2:
					if _, err := c.Metrics(); err != nil {
						t.Error(err)
						return
					}
					if _, err := c.WatchlistHits(); err != nil {
						t.Error(err)
						return
					}
				case 3:
					if _, err := c.Health(); err != nil {
						t.Error(err)
						return
					}
					// Inline-signature searches intern new labels
					// concurrently with ingestion.
					if _, err := c.Search(SearchRequest{
						Signature: &SignatureJSON{
							Nodes:   []string{"e1", newLabel("probe", r*100+i)},
							Weights: []float64{1, 1},
						},
						K: 3,
					}); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()

	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m["flows_accepted"] == 0 || m["windows_closed"] == 0 || m["search_queries"] == 0 {
		t.Fatalf("metrics after hammering = %v", m)
	}
	if m["flows_accepted"]+m["flows_dropped"]+m["flows_rejected"] != m["flows_received"] {
		t.Fatalf("flow counters inconsistent: %v", m)
	}
}

func newLabel(prefix string, i int) string {
	return prefix + "-" + time.Duration(i).String()
}
