package server

import (
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"graphsig/internal/obs"
)

// DefaultTraceCapacity bounds the recent-trace ring served by GET
// /v1/traces when Config.TraceCapacity is zero.
const DefaultTraceCapacity = 64

// serverObs bundles the server's observability surface: the shared
// metric registry every layer records into, the request tracer, and
// the HTTP latency histograms behind both /metrics renderings.
type serverObs struct {
	registry *obs.Registry
	tracer   *obs.Tracer

	// httpSeconds aggregates request latency across routes — the source
	// of the legacy request_micros_sum key and the p50/p90/p99 keys.
	// routeSeconds partitions the same observations by route.
	httpSeconds  *obs.Histogram
	routeSeconds *obs.HistogramVec
}

func newServerObs(logger *slog.Logger, slowOp time.Duration, traceCap int) *serverObs {
	reg := obs.NewRegistry()
	if traceCap <= 0 {
		traceCap = DefaultTraceCapacity
	}
	return &serverObs{
		registry: reg,
		tracer:   obs.NewTracer(traceCap, slowOp, logger),
		httpSeconds: reg.Histogram("http_request_seconds",
			"HTTP request latency across all routes"),
		routeSeconds: reg.HistogramVec("http_route_seconds",
			"HTTP request latency by route", "route", nil),
	}
}

// routeName maps a request onto the bounded label set of the per-route
// histogram family, so path-scanning traffic cannot grow it without
// bound. Unknown paths collapse into "other".
func routeName(r *http.Request) string {
	p := r.URL.Path
	if strings.HasPrefix(p, "/v1/signatures/") {
		p = "/v1/signatures/label"
	}
	if strings.HasPrefix(p, "/v1/traces/") {
		p = "/v1/traces/id"
	}
	switch p {
	case "/v1/flows", "/v1/signatures/label", "/v1/search", "/v1/search/batch", "/v1/watchlist",
		"/v1/watchlist/hits", "/v1/anomalies", "/v1/persistence",
		"/v1/replication/status", "/v1/replication/wal", "/v1/traces", "/v1/traces/id",
		"/healthz", "/readyz", "/metrics":
	default:
		return "other"
	}
	return strings.ToLower(r.Method) + strings.ReplaceAll(p, "/", "_")
}

// startTrace begins a request trace, adopting the inbound X-Sig-Trace
// context when the caller (the cluster router) sent one — the local
// ring then records this work as a child segment of the caller's span
// under the caller's trace ID — and minting a fresh trace otherwise.
func (s *Server) startTrace(r *http.Request, name string) *obs.Trace {
	return s.obs.tracer.StartRemote(name, obs.ParseTraceContext(r.Header.Get(obs.TraceHeader)))
}

// traceRemote is startTrace for cheap read endpoints: it records a
// trace only when the request carries an inbound context, so
// single-node traffic on history/anomaly/watchlist reads cannot flood
// the bounded trace ring. Returns nil (a no-op trace) otherwise.
func (s *Server) traceRemote(r *http.Request, name string) *obs.Trace {
	tc := obs.ParseTraceContext(r.Header.Get(obs.TraceHeader))
	if !tc.Valid() {
		return nil
	}
	return s.obs.tracer.StartRemote(name, tc)
}

// Registry exposes the server's metric registry so embedders (the
// daemon, the facade, tests) can register their own families alongside
// the serving stack's.
func (s *Server) Registry() *obs.Registry { return s.obs.registry }

// Tracer exposes the server's request tracer.
func (s *Server) Tracer() *obs.Tracer { return s.obs.tracer }

// metricsJSON renders the backward-compatible flat JSON /metrics body:
// every registered counter and gauge under its legacy key, plus
// histogram-derived latency keys in microseconds (int64, to keep the
// body integer-valued as before).
func (s *Server) metricsJSON() map[string]int64 {
	out := s.obs.registry.Snapshot()
	out["request_micros_sum"] = int64(s.obs.httpSeconds.Sum() * 1e6)
	out["http_request_p50_micros"] = int64(s.obs.httpSeconds.Quantile(0.50) * 1e6)
	out["http_request_p90_micros"] = int64(s.obs.httpSeconds.Quantile(0.90) * 1e6)
	out["http_request_p99_micros"] = int64(s.obs.httpSeconds.Quantile(0.99) * 1e6)
	for _, route := range s.obs.routeSeconds.Labels() {
		h := s.obs.routeSeconds.With(route)
		out["route_"+route+"_requests"] = int64(h.Count())
		out["route_"+route+"_micros_sum"] = int64(h.Sum() * 1e6)
	}
	return out
}

// ReadyResponse is the GET /readyz body.
type ReadyResponse struct {
	Ready   bool     `json:"ready"`
	Reasons []string `json:"reasons,omitempty"`
	// Node is this process's cluster identity, when configured.
	Node *Identity `json:"node,omitempty"`
}

// readiness reports whether the server can take traffic and why not.
// Distinct from /healthz (process liveness): readiness degrades when
// durability is configured but the WAL is not open, or during
// shutdown, so load balancers drain before the listener dies.
func (s *Server) readiness() ReadyResponse {
	var reasons []string
	// Promote rewrites the durability fields of cfg under mu, so they
	// must be read under the lock here.
	s.mu.RLock()
	if s.store == nil {
		reasons = append(reasons, "store not loaded")
	}
	if s.cfg.SnapshotDir != "" && !s.cfg.DisableWAL && s.wal == nil {
		reasons = append(reasons, "write-ahead log not open")
	}
	s.mu.RUnlock()
	if s.shuttingDown.Load() {
		reasons = append(reasons, "shutting down")
	}
	return ReadyResponse{Ready: len(reasons) == 0, Reasons: reasons, Node: s.Identity()}
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	resp := s.readiness()
	status := http.StatusOK
	if !resp.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// TracesResponse is the GET /v1/traces body: the most recent traces,
// newest first.
type TracesResponse struct {
	Total  uint64              `json:"total"`
	Traces []obs.TraceSnapshot `json:"traces"`
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	n := 0 // whole ring
	if ns := r.URL.Query().Get("n"); ns != "" {
		v, err := strconv.Atoi(ns)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "bad n parameter %q", ns)
			return
		}
		n = v
	}
	traces := s.obs.tracer.Recent(n)
	if traces == nil {
		traces = []obs.TraceSnapshot{}
	}
	writeJSON(w, http.StatusOK, TracesResponse{Total: s.obs.tracer.Total(), Traces: traces})
}

// handleTraceByID serves one retained trace from the ring — the
// cluster router's trace stitching fetches each node's segment of a
// distributed trace this way.
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, ok := s.obs.tracer.Find(id)
	if !ok {
		writeError(w, http.StatusNotFound, "trace %q not retained here (never finished or evicted)", id)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}
