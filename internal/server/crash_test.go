package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"graphsig/internal/fault"
	"graphsig/internal/netflow"
	"graphsig/internal/store"
)

// crashConfig is testConfig plus persistence rooted at dir.
func crashConfig(dir string) Config {
	cfg := testConfig()
	cfg.SnapshotDir = dir
	return cfg
}

// crashWorkload builds windows flow batches, one batch per window, each
// giving three local hosts distinct per-window behaviour. Ingesting
// batch w closes window w-1 (its first record falls in window w).
func crashWorkload(windows int) [][]netflow.Record {
	batches := make([][]netflow.Record, windows)
	for w := 0; w < windows; w++ {
		off := time.Duration(w) * time.Hour
		batches[w] = []netflow.Record{
			flowAt("10.0.0.1", fmt.Sprintf("e%d", w), off, 3),
			flowAt("10.0.0.1", "e-stable", off+time.Minute, 1),
			flowAt("10.0.0.2", fmt.Sprintf("e%d", w+100), off+2*time.Minute, 2),
			flowAt("10.0.0.3", "e-stable", off+3*time.Minute, w+1),
		}
	}
	return batches
}

// archiveFingerprint renders every archived signature as
// "window/label: nodes@weights" lines, comparable across servers whose
// universes interned node IDs in different orders.
func archiveFingerprint(s *Server) map[string]string {
	u := s.Store().Universe()
	fp := make(map[string]string)
	for _, set := range s.Store().Windows() {
		for i, src := range set.Sources {
			var b strings.Builder
			for j, n := range set.Sigs[i].Nodes {
				fmt.Fprintf(&b, "%s@%g ", u.Label(n), set.Sigs[i].Weights[j])
			}
			fp[fmt.Sprintf("%d/%s", set.Window, u.Label(src))] = b.String()
		}
	}
	return fp
}

func mustIngest(t *testing.T, s *Server, records []netflow.Record) IngestResult {
	t.Helper()
	res := s.IngestRecords(records)
	if res.Rejected != 0 {
		t.Fatalf("ingest rejected %d records: %v", res.Rejected, res.Errors)
	}
	return res
}

// TestCrashRecoveryReplaysWAL is the headline crash test: a server
// accumulates several windows plus a partial one, dies without Shutdown
// (kill -9: nothing flushed, no final snapshot), and a second server
// booted from the same state must recover every committed window AND
// the open window's records from the WAL — replaying with zero rejected
// records — then finish the workload with an archive identical to a
// crash-free run.
func TestCrashRecoveryReplaysWAL(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snap")
	batches := crashWorkload(5)

	srv1, err := New(crashConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	// Windows 0 and 1 close; batch 2's records stay in the open window.
	for _, b := range batches[:3] {
		mustIngest(t, srv1, b)
	}
	// Crash: srv1 is abandoned mid-flight. Its WAL holds the open
	// window's records (batch 2); windows 0-1 are in the snapshot.

	srv2, err := New(crashConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	rec := srv2.Recovery()
	if !rec.SnapshotRestored {
		t.Fatal("snapshot not restored")
	}
	if rec.WALRecords != len(batches[2]) || rec.WALRejected != 0 {
		t.Fatalf("WAL replay = %+v, want %d records, 0 rejected", rec, len(batches[2]))
	}
	if lo, hi, ok := srv2.Store().WindowRange(); !ok || lo != 0 || hi != 1 {
		t.Fatalf("recovered window range = [%d,%d] ok=%v", lo, hi, ok)
	}
	for _, b := range batches[3:] {
		mustIngest(t, srv2, b)
	}
	if _, err := srv2.Flush(); err != nil {
		t.Fatal(err)
	}

	// Reference: the same workload through one crash-free server.
	ref, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		mustIngest(t, ref, b)
	}
	if _, err := ref.Flush(); err != nil {
		t.Fatal(err)
	}

	got, want := archiveFingerprint(srv2), archiveFingerprint(ref)
	if len(got) != len(want) {
		t.Fatalf("recovered archive has %d signatures, reference %d", len(got), len(want))
	}
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("signature %s diverged after recovery:\n got %q\nwant %q", k, got[k], w)
		}
	}
}

// TestSnapshotFailureWindowsRecoveredFromWAL simulates a full disk:
// every snapshot save fails while windows keep closing, so the WAL is
// never truncated and becomes the only copy of the archive. The next
// boot must rebuild every window from the log alone and immediately
// checkpoint it to disk.
func TestSnapshotFailureWindowsRecoveredFromWAL(t *testing.T) {
	t.Cleanup(fault.Reset)
	dir := filepath.Join(t.TempDir(), "snap")
	batches := crashWorkload(4)

	fault.Set("store.save.manifest", fault.FailAfter(0, errors.New("disk full")))
	srv1, err := New(crashConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		mustIngest(t, srv1, b) // closes windows 0-2; every save fails
	}
	if store.SnapshotExists(dir) {
		t.Fatal("snapshot written despite injected save failure")
	}

	fault.Reset()
	srv2, err := New(crashConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	rec := srv2.Recovery()
	if rec.SnapshotRestored {
		t.Fatal("restored a snapshot that should not exist")
	}
	if rec.WALWindowsClosed != 3 || rec.WALRejected != 0 {
		t.Fatalf("WAL replay = %+v, want 3 windows closed, 0 rejected", rec)
	}
	if lo, hi, ok := srv2.Store().WindowRange(); !ok || lo != 0 || hi != 2 {
		t.Fatalf("rebuilt window range = [%d,%d] ok=%v", lo, hi, ok)
	}
	// The post-replay checkpoint must have made the rebuild durable.
	if !store.SnapshotExists(dir) {
		t.Fatal("post-replay checkpoint did not write a snapshot")
	}
	// A third boot restores from the fresh snapshot, replaying only the
	// open window's tail.
	srv3, err := New(crashConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	rec3 := srv3.Recovery()
	if !rec3.SnapshotRestored || rec3.WALWindowsClosed != 0 || rec3.WALRejected != 0 {
		t.Fatalf("third boot recovery = %+v", rec3)
	}
}

// TestShutdownSaveFailureKeepsWAL: when the final snapshot save fails,
// Shutdown must report the error and leave the WAL intact — it is the
// only surviving copy of the ingested records, and the next boot must
// rebuild the archive from it.
func TestShutdownSaveFailureKeepsWAL(t *testing.T) {
	t.Cleanup(fault.Reset)
	dir := filepath.Join(t.TempDir(), "snap")

	srv1, err := New(crashConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	mustIngest(t, srv1, window0Flows())
	fault.Set("store.save.manifest", fault.FailAfter(0, errors.New("disk full")))
	if err := srv1.Shutdown(); err == nil {
		t.Fatal("Shutdown succeeded despite injected save failure")
	}

	fault.Reset()
	srv2, err := New(crashConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	rec := srv2.Recovery()
	// Shutdown's Flush closed the window in memory only; the replayed
	// WAL re-derives it (flushed again by this test, since replay leaves
	// it open until a closing record or Flush arrives).
	if rec.WALRecords != len(window0Flows()) || rec.WALRejected != 0 {
		t.Fatalf("recovery = %+v", rec)
	}
	if _, err := srv2.Flush(); err != nil {
		t.Fatal(err)
	}
	if lo, hi, ok := srv2.Store().WindowRange(); !ok || lo != 0 || hi != 0 {
		t.Fatalf("window range after recovery = [%d,%d] ok=%v", lo, hi, ok)
	}
}

// TestCorruptSnapshotQuarantinedAtBoot flips one byte in each snapshot
// file in turn: every corruption must be detected at boot, the damaged
// snapshot moved aside, and the server come up fresh and serving — a
// bad disk never prevents startup.
func TestCorruptSnapshotQuarantinedAtBoot(t *testing.T) {
	base := filepath.Join(t.TempDir(), "snap")
	srv, err := New(crashConfig(base))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range crashWorkload(3) {
		mustIngest(t, srv, b)
	}
	if err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Run(e.Name(), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "snap")
			copyTree(t, base, dir)
			path := filepath.Join(dir, e.Name())
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/2] ^= 0x40
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}

			srv2, err := New(crashConfig(dir))
			if err != nil {
				t.Fatalf("boot failed on corrupt %s: %v", e.Name(), err)
			}
			rec := srv2.Recovery()
			if rec.SnapshotRestored || rec.SnapshotQuarantined == "" {
				t.Fatalf("corruption in %s not quarantined: %+v", e.Name(), rec)
			}
			if _, err := os.Stat(rec.SnapshotQuarantined); err != nil {
				t.Fatalf("quarantine dir missing: %v", err)
			}
			if srv2.Store().Len() != 0 {
				t.Fatalf("fresh boot has %d windows", srv2.Store().Len())
			}
			// The server still serves: a full window cycle works.
			mustIngest(t, srv2, crashWorkload(2)[0])
			mustIngest(t, srv2, crashWorkload(2)[1])
			if srv2.Store().Len() != 1 {
				t.Fatalf("post-quarantine ingest closed %d windows", srv2.Store().Len())
			}
		})
	}
}

// TestCorruptWALQuarantinedAtBoot destroys the WAL header: the log must
// be moved aside, a fresh one started, and boot proceed cleanly.
func TestCorruptWALQuarantinedAtBoot(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snap")
	if err := os.WriteFile(WALPath(dir), []byte("not a wal, definitely"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, err := New(crashConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	rec := srv.Recovery()
	if rec.WALQuarantined == "" {
		t.Fatalf("corrupt WAL not quarantined: %+v", rec)
	}
	if _, err := os.Stat(rec.WALQuarantined); err != nil {
		t.Fatalf("quarantined WAL missing: %v", err)
	}
	mustIngest(t, srv, window0Flows())
	if err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}
}

// TestWALTornTailAtBoot truncates the log mid-frame, as a crash during
// an append would: boot must drop the torn tail, reject nothing, and
// keep serving.
func TestWALTornTailAtBoot(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "snap")
	srv1, err := New(crashConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	mustIngest(t, srv1, window0Flows())
	// Crash, then tear the last frame.
	fi, err := os.Stat(WALPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(WALPath(dir), fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	srv2, err := New(crashConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	rec := srv2.Recovery()
	if rec.WALTornBytes == 0 {
		t.Fatalf("torn tail not reported: %+v", rec)
	}
	if rec.WALRejected != 0 {
		t.Fatalf("replay rejected %d records", rec.WALRejected)
	}
	if rec.WALRecords != len(window0Flows())-1 {
		t.Fatalf("replayed %d records, want %d", rec.WALRecords, len(window0Flows())-1)
	}
}

// TestIngestDedupIdempotent re-sends a batch under the same ID: the
// second call must return the recorded result without re-counting the
// flows, while a different ID goes through the pipeline normally.
func TestIngestDedupIdempotent(t *testing.T) {
	srv, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	first := srv.IngestBatch("batch-1", window0Flows())
	if first.Accepted != len(window0Flows()) || first.Deduplicated {
		t.Fatalf("first ingest = %+v", first)
	}
	replayed := srv.IngestBatch("batch-1", window0Flows())
	if !replayed.Deduplicated || replayed.Accepted != first.Accepted {
		t.Fatalf("replayed ingest = %+v", replayed)
	}
	if got := srv.metrics.FlowsReceived.Value(); got != int64(len(window0Flows())) {
		t.Fatalf("flows_received = %d after dedup, want %d", got, len(window0Flows()))
	}
	if got := srv.metrics.BatchesDeduped.Value(); got != 1 {
		t.Fatalf("batches_deduped = %d, want 1", got)
	}
	// Without an ID every call hits the pipeline again: the repeat is
	// re-counted (double ingestion), never answered from the dedup set.
	res := srv.IngestBatch("", window0Flows())
	if res.Deduplicated || res.Accepted != len(window0Flows()) {
		t.Fatalf("no-ID repeat = %+v", res)
	}
	if got := srv.metrics.FlowsReceived.Value(); got != int64(2*len(window0Flows())) {
		t.Fatalf("flows_received = %d after no-ID repeat, want %d", got, 2*len(window0Flows()))
	}
}

// TestIngestDedupEviction: the dedup set is bounded FIFO — the oldest
// ID falls out once the cap is exceeded.
func TestIngestDedupEviction(t *testing.T) {
	cfg := testConfig()
	cfg.DedupCap = 2
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.IngestBatch("a", window0Flows())
	srv.IngestBatch("b", nil)
	srv.IngestBatch("c", nil)
	if res := srv.IngestBatch("a", window0Flows()); res.Deduplicated {
		t.Fatalf("evicted ID still deduplicated: %+v", res)
	}
	if res := srv.IngestBatch("c", nil); !res.Deduplicated {
		t.Fatalf("retained ID not deduplicated: %+v", res)
	}
}

// TestIngestDedupDisabled: a negative cap turns deduplication off.
func TestIngestDedupDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.DedupCap = -1
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.IngestBatch("a", nil)
	if res := srv.IngestBatch("a", window0Flows()); res.Deduplicated {
		t.Fatalf("dedup ran despite DedupCap<0: %+v", res)
	}
}

// TestIngestThrottled429: with MaxInFlight=1 and one request parked on
// the ingest hold failpoint, a second POST /v1/flows must be shed with
// 429 and a Retry-After hint rather than queue without bound.
func TestIngestThrottled429(t *testing.T) {
	t.Cleanup(fault.Reset)
	cfg := testConfig()
	cfg.MaxInFlight = 1
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	entered := make(chan struct{})
	release := make(chan struct{})
	var once bool
	fault.Set("server.ingest.hold", func() error {
		if !once {
			once = true
			close(entered)
			<-release
		}
		return nil
	})

	c := NewClient(ts.URL)
	c.MaxRetries = 0
	firstDone := make(chan error, 1)
	go func() {
		_, err := c.Ingest(window0Flows())
		firstDone <- err
	}()
	<-entered

	resp, err := http.Post(ts.URL+"/v1/flows", "application/json", strings.NewReader(`{"records":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second ingest status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	close(release)
	if err := <-firstDone; err != nil {
		t.Fatalf("held ingest failed: %v", err)
	}
	if got := srv.metrics.IngestThrottled.Value(); got != 1 {
		t.Fatalf("ingest_throttled = %d, want 1", got)
	}
}

// TestClientRetriesTransientFailures: the client must retry transport
// and 5xx/429 failures with the SAME batch ID (so a server that applied
// a timed-out POST deduplicates the retry), and must not retry
// permanent 4xx errors.
func TestClientRetriesTransientFailures(t *testing.T) {
	var calls int
	var ids []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		var req IngestRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("decoding retry request: %v", err)
		}
		ids = append(ids, req.BatchID)
		if calls <= 2 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"busy"}`, http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"received":1,"accepted":1}`)
	}))
	defer ts.Close()

	c := NewClient(ts.URL)
	c.RetryBackoff = time.Millisecond
	res, err := c.Ingest([]netflow.Record{flowAt("10.0.0.1", "e1", 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 1 || calls != 3 {
		t.Fatalf("res=%+v calls=%d", res, calls)
	}
	if ids[0] == "" || ids[0] != ids[1] || ids[1] != ids[2] {
		t.Fatalf("batch ID not stable across retries: %q", ids)
	}

	// Permanent failures are not retried.
	calls = 0
	ts2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		http.Error(w, `{"error":"bad request"}`, http.StatusBadRequest)
	}))
	defer ts2.Close()
	c2 := NewClient(ts2.URL)
	c2.RetryBackoff = time.Millisecond
	if _, err := c2.Ingest(nil); err == nil {
		t.Fatal("400 reported as success")
	}
	if calls != 1 {
		t.Fatalf("400 retried: %d calls", calls)
	}
}

// copyTree clones a snapshot directory so subtests can corrupt
// independent copies.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
