package server

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	mrand "math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"graphsig/internal/netflow"
	"graphsig/internal/obs"
)

// Client is a thin Go client for the sigserverd HTTP API, used by the
// sigtool `client` subcommand, by --replay self-benchmarking, and by
// the end-to-end tests.
//
// Transient failures — connection errors, 429 throttling, 5xx — are
// retried with jittered exponential backoff. Ingest batches carry a
// generated batch ID (stable across the retries of one call), so a
// retry after a timed-out-but-actually-applied POST is deduplicated
// server-side instead of double-counting flows.
type Client struct {
	// Base is the primary server root, e.g. "http://127.0.0.1:8080".
	// With fallback seeds configured (NewClient's variadic arguments),
	// Base is only the first seed tried; requests go to the current
	// seed, and every retried failure rotates to the next one.
	Base string
	// HTTP is the underlying client (default: 30 s timeout).
	HTTP *http.Client
	// MaxRetries bounds retry attempts beyond the first try (default
	// 3; negative disables retries).
	MaxRetries int
	// RetryBackoff is the base delay before the first retry, doubled
	// each attempt with ±50% jitter (default 100 ms). A server-sent
	// Retry-After overrides the computed delay. Every delay — computed
	// or server-sent — is clamped to [RetryBackoff/2, MaxRetryDelay],
	// so a long retry budget cannot overflow the shift into a negative
	// duration and a Retry-After of 0 (or something absurd) cannot
	// produce a hot loop or an hours-long stall.
	RetryBackoff time.Duration
	// SeedCooldown is how long a seed that failed at the transport level
	// (connection refused, reset, timeout) is skipped by the failover
	// rotation before being tried again (0 = DefaultSeedCooldown;
	// negative disables the cooldown, restoring plain round-robin).
	// HTTP-status failures do not trigger it: a node answering 429 or
	// 503 is alive and shedding load, not dead.
	SeedCooldown time.Duration

	jitterMu sync.Mutex
	jitter   *mrand.Rand // lazily seeded; avoids the deprecated global source

	// seedMu guards the failover rotation state. seeds holds every
	// configured address (Base first); cur indexes the one currently in
	// use. deadUntil (parallel to seeds, nil until first transport
	// failure) holds each seed's cooldown expiry. Empty seeds (a Client
	// built by struct literal) fall back to Base alone.
	seedMu    sync.Mutex
	seeds     []string
	cur       int
	deadUntil []time.Time
	now       func() time.Time // test hook; nil means time.Now

	// trace, when valid, is stamped onto every request as the
	// X-Sig-Trace header. Set via Traced.
	trace obs.TraceContext
	// parent is non-nil on Traced views: all mutable failover state —
	// seed rotation, cooldowns, the jitter RNG — lives on the root
	// client, so a view's retries share the root's view of which seeds
	// are dead.
	parent *Client
}

// root resolves the client owning the shared failover state.
func (c *Client) root() *Client {
	if c.parent != nil {
		return c.parent
	}
	return c
}

// Traced returns a view of the client that stamps tc onto every
// request as the X-Sig-Trace header, so the far side's tracer records
// its work as a child segment of tc's span instead of minting a fresh
// trace ID. The view shares the root client's failover state and is
// cheap enough to mint per call. An invalid context returns the
// receiver unchanged.
func (c *Client) Traced(tc obs.TraceContext) *Client {
	if !tc.Valid() {
		return c
	}
	return &Client{
		Base:         c.Base,
		HTTP:         c.HTTP,
		MaxRetries:   c.MaxRetries,
		RetryBackoff: c.RetryBackoff,
		SeedCooldown: c.SeedCooldown,
		trace:        tc,
		parent:       c.root(),
	}
}

// APIError is a server-reported failure (any HTTP status >= 400),
// exposing the status code so callers can distinguish "not found" from
// "conflict" from "gone" without string matching.
type APIError struct {
	Status int
	Method string
	Path   string
	Msg    string
	// RetryAfter is the response's Retry-After header ("" when absent),
	// kept so a caller running its own retry loop above the client (the
	// cluster router's routed ingest) can honor the server's pacing via
	// Client.Backoff instead of inventing its own.
	RetryAfter string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: %s %s: %s", e.Method, e.Path, e.Msg)
}

// APIStatus extracts the HTTP status from an *APIError chain (0 when
// err carries none — e.g. a transport failure).
func APIStatus(err error) int {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status
	}
	return 0
}

// MaxRetryDelay caps every retry delay, whether computed by backoff or
// dictated by a server's Retry-After header.
const MaxRetryDelay = 30 * time.Second

// DefaultSeedCooldown is how long a transport-dead seed is skipped by
// the failover rotation when Client.SeedCooldown is zero.
const DefaultSeedCooldown = 5 * time.Second

// RetryAfter extracts the Retry-After header value from an *APIError
// chain ("" when err carries none).
func RetryAfter(err error) string {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.RetryAfter
	}
	return ""
}

// NewClient returns a client for the server at base. Additional
// fallback seed addresses may follow: every retried failure (transport
// error, 429, 5xx) rotates to the next seed before the retry, so a
// caller given several addresses for one logical service keeps working
// through single-node outages.
func NewClient(base string, fallbacks ...string) *Client {
	c := &Client{
		Base:         base,
		HTTP:         &http.Client{Timeout: 30 * time.Second},
		MaxRetries:   3,
		RetryBackoff: 100 * time.Millisecond,
	}
	if len(fallbacks) > 0 {
		c.seeds = append([]string{base}, fallbacks...)
	}
	return c
}

// Seeds reports every configured address, current first.
func (c *Client) Seeds() []string {
	c = c.root()
	c.seedMu.Lock()
	defer c.seedMu.Unlock()
	if len(c.seeds) == 0 {
		return []string{c.Base}
	}
	out := make([]string, 0, len(c.seeds))
	for i := range c.seeds {
		out = append(out, c.seeds[(c.cur+i)%len(c.seeds)])
	}
	return out
}

// currentBase returns the seed requests currently target.
func (c *Client) currentBase() string {
	c = c.root()
	c.seedMu.Lock()
	defer c.seedMu.Unlock()
	if len(c.seeds) == 0 {
		return c.Base
	}
	return c.seeds[c.cur]
}

// rotateSeed advances to the next seed after a retryable failure,
// preferring seeds not in transport-failure cooldown.
func (c *Client) rotateSeed() {
	c = c.root()
	c.seedMu.Lock()
	defer c.seedMu.Unlock()
	c.advanceSeedLocked()
}

// markSeedDown records a transport-level failure of the current seed —
// it enters cooldown and the rotation skips it — then advances. A seed
// that merely answered an error status is never marked: it is alive,
// and re-probing a live node is cheap, whereas re-dialing a dead one
// burns a connect timeout per request.
func (c *Client) markSeedDown() {
	c = c.root()
	c.seedMu.Lock()
	defer c.seedMu.Unlock()
	if len(c.seeds) == 0 || c.seedCooldown() <= 0 {
		c.advanceSeedLocked()
		return
	}
	if c.deadUntil == nil {
		c.deadUntil = make([]time.Time, len(c.seeds))
	}
	c.deadUntil[c.cur] = c.timeNow().Add(c.seedCooldown())
	c.advanceSeedLocked()
}

// advanceSeedLocked moves cur to the next seed outside cooldown,
// falling back to plain round-robin when every seed is cooling down.
// Callers hold seedMu.
func (c *Client) advanceSeedLocked() {
	if len(c.seeds) <= 1 {
		return
	}
	for i := 1; i <= len(c.seeds); i++ {
		n := (c.cur + i) % len(c.seeds)
		if !c.seedDeadLocked(n) {
			c.cur = n
			return
		}
	}
	c.cur = (c.cur + 1) % len(c.seeds)
}

// seedDeadLocked reports whether seed i is still in cooldown.
func (c *Client) seedDeadLocked(i int) bool {
	return c.deadUntil != nil && c.timeNow().Before(c.deadUntil[i])
}

func (c *Client) seedCooldown() time.Duration {
	if c.SeedCooldown == 0 {
		return DefaultSeedCooldown
	}
	return c.SeedCooldown
}

func (c *Client) timeNow() time.Time {
	if c.now != nil {
		return c.now()
	}
	return time.Now()
}

// retryable reports whether a response status is worth retrying.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests ||
		status == http.StatusBadGateway ||
		status == http.StatusServiceUnavailable ||
		status == http.StatusGatewayTimeout
}

// backoff computes the jittered delay before retry attempt (0-based),
// honoring a server-provided Retry-After in seconds when given. The
// result is always within [base/2, MaxRetryDelay]: the floor stops a
// "Retry-After: 0" from turning retries into a hot loop hammering an
// already overloaded server, the ceiling keeps both absurd Retry-After
// values and the exponential's eventual int64 overflow (base<<attempt
// goes negative around attempt 33 with the 100 ms base, which used to
// panic mrand.Int63n) from stalling or crashing the caller.
func (c *Client) backoff(attempt int, retryAfter string) time.Duration {
	base := c.RetryBackoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if base > MaxRetryDelay {
		base = MaxRetryDelay
	}
	if secs, err := strconv.Atoi(retryAfter); err == nil && secs >= 0 {
		return clampDelay(time.Duration(secs)*time.Second, base)
	}
	// Exponential growth, saturating instead of overflowing: once the
	// shift would exceed the ceiling (or wrap negative) the delay pins
	// at MaxRetryDelay.
	d := MaxRetryDelay
	if attempt < 63 {
		if v := base << uint(attempt); v > 0 && v < MaxRetryDelay {
			d = v
		}
	}
	// ±50% jitter decorrelates a fleet of retrying senders.
	return clampDelay(d/2+c.jitterDuration(d), base)
}

// Backoff exposes the client's jittered, saturating retry delay for
// callers that loop above the client's own retries: attempt is 0-based,
// retryAfter the server's Retry-After header value ("" computes the
// exponential delay instead).
func (c *Client) Backoff(attempt int, retryAfter string) time.Duration {
	return c.backoff(attempt, retryAfter)
}

// clampDelay bounds a retry delay to [base/2, MaxRetryDelay].
func clampDelay(d, base time.Duration) time.Duration {
	if min := base / 2; d < min {
		return min
	}
	if d > MaxRetryDelay {
		return MaxRetryDelay
	}
	return d
}

// jitterDuration draws a uniform duration in [0, d) from the client's
// private RNG, seeding it on first use.
func (c *Client) jitterDuration(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	c = c.root()
	c.jitterMu.Lock()
	defer c.jitterMu.Unlock()
	if c.jitter == nil {
		c.jitter = mrand.New(mrand.NewSource(time.Now().UnixNano()))
	}
	return time.Duration(c.jitter.Int63n(int64(d)))
}

func (c *Client) do(method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		payload, err = json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: %w", err)
		}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		retryAfter, err := c.once(method, path, payload, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if retryAfter == noRetry || attempt >= c.MaxRetries {
			return lastErr
		}
		// A transport failure (no HTTP status) means the seed itself is
		// unreachable: cool it down so subsequent requests do not re-dial
		// a dead node first. Status failures just rotate.
		if APIStatus(err) == 0 {
			c.markSeedDown()
		} else {
			c.rotateSeed()
		}
		time.Sleep(c.backoff(attempt, retryAfter))
	}
}

// noRetry marks a permanent failure (4xx other than 429, or a decode
// error) in once's retryAfter channel.
const noRetry = "\x00permanent"

// once performs a single HTTP exchange. The returned string is the
// Retry-After header value ("" when absent) for retryable failures, or
// noRetry for permanent ones.
func (c *Client) once(method, path string, payload []byte, out any) (string, error) {
	var reader io.Reader
	if payload != nil {
		reader = bytes.NewReader(payload)
	}
	req, err := http.NewRequest(method, c.currentBase()+path, reader)
	if err != nil {
		return noRetry, fmt.Errorf("client: %w", err)
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.trace.Valid() {
		req.Header.Set(obs.TraceHeader, c.trace.String())
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		// Transport-level failure: connection refused, reset, timeout.
		return "", fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var body struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&body) == nil && body.Error != "" {
			msg = body.Error
		}
		apiErr := &APIError{Status: resp.StatusCode, Method: method, Path: path, Msg: msg}
		if retryable(resp.StatusCode) {
			apiErr.RetryAfter = resp.Header.Get("Retry-After")
			return apiErr.RetryAfter, apiErr
		}
		return noRetry, apiErr
	}
	if out == nil {
		return "", nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return noRetry, fmt.Errorf("client: %s %s: decoding response: %w", method, path, err)
	}
	return "", nil
}

// NewBatchID generates a random ingest batch ID ("" when the system
// has no entropy, falling back to non-idempotent ingest). Exported for
// callers that split one logical batch across shards and need the
// sub-batch IDs to derive from a shared parent.
func NewBatchID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return ""
	}
	return hex.EncodeToString(b[:])
}

// Ingest POSTs a batch of flow records. The batch carries a generated
// ID so server-side deduplication makes retries idempotent.
func (c *Client) Ingest(records []netflow.Record) (IngestResult, error) {
	return c.IngestBatch(NewBatchID(), records)
}

// IngestBatch is Ingest with a caller-chosen batch ID, for exactly-once
// pipelines that must keep the ID stable across their own retries (the
// cluster router derives per-shard IDs from the client's parent ID).
func (c *Client) IngestBatch(batchID string, records []netflow.Record) (IngestResult, error) {
	req := IngestRequest{Records: make([]RecordJSON, len(records)), BatchID: batchID}
	for i, r := range records {
		req.Records[i] = RecordToJSON(r)
	}
	var out IngestResult
	err := c.do(http.MethodPost, "/v1/flows", req, &out)
	return out, err
}

// HistoryQuery bounds a history fetch. Zero-value fields are omitted
// from the request: the server applies its whole-archive window bounds
// and DefaultHistoryLimit. Limit -1 explicitly requests the unbounded
// archive (sent as limit=0).
type HistoryQuery struct {
	// From / To are inclusive window bounds, applied only when the
	// matching Has flag is set (0 is a valid window index).
	From, To       int
	HasFrom, HasTo bool
	// Limit > 0 keeps the newest Limit entries; 0 defers to the server
	// default; -1 asks for everything.
	Limit int
}

func (q HistoryQuery) encode() string {
	v := url.Values{}
	if q.HasFrom {
		v.Set("from", strconv.Itoa(q.From))
	}
	if q.HasTo {
		v.Set("to", strconv.Itoa(q.To))
	}
	switch {
	case q.Limit > 0:
		v.Set("limit", strconv.Itoa(q.Limit))
	case q.Limit < 0:
		v.Set("limit", "0")
	}
	if len(v) == 0 {
		return ""
	}
	return "?" + v.Encode()
}

// History fetches a label's archived signatures under the server's
// default limit (the newest DefaultHistoryLimit entries).
func (c *Client) History(label string) (HistoryResponse, error) {
	return c.HistoryRange(label, HistoryQuery{})
}

// HistoryRange fetches a label's archived signatures within explicit
// window bounds and limit; see HistoryQuery.
func (c *Client) HistoryRange(label string, q HistoryQuery) (HistoryResponse, error) {
	var out HistoryResponse
	err := c.do(http.MethodGet, "/v1/signatures/"+url.PathEscape(label)+q.encode(), nil, &out)
	return out, err
}

// Search runs a nearest-signature query.
func (c *Client) Search(req SearchRequest) (SearchResponse, error) {
	var out SearchResponse
	err := c.do(http.MethodPost, "/v1/search", req, &out)
	return out, err
}

// SearchBatch answers many nearest-signature queries under one
// distance in a single round trip. Per-query failures come back as
// slot errors in the response, not as a call error.
func (c *Client) SearchBatch(req BatchSearchRequest) (BatchSearchResponse, error) {
	var out BatchSearchResponse
	err := c.do(http.MethodPost, "/v1/search/batch", req, &out)
	return out, err
}

// WatchlistAdd archives a label's stored signatures under an
// individual key.
func (c *Client) WatchlistAdd(req WatchlistAddRequest) (WatchlistAddResponse, error) {
	var out WatchlistAddResponse
	err := c.do(http.MethodPost, "/v1/watchlist", req, &out)
	return out, err
}

// WatchlistHits fetches the recorded hit log.
func (c *Client) WatchlistHits() (WatchlistHitsResponse, error) {
	var out WatchlistHitsResponse
	err := c.do(http.MethodGet, "/v1/watchlist/hits", nil, &out)
	return out, err
}

// Anomalies fetches behaviour-change reports between the last two
// archived windows (zCut ≤ 0 uses the server default).
func (c *Client) Anomalies(zCut float64) (AnomaliesResponse, error) {
	path := "/v1/anomalies"
	if zCut > 0 {
		path += fmt.Sprintf("?z=%g", zCut)
	}
	var out AnomaliesResponse
	err := c.do(http.MethodGet, path, nil, &out)
	return out, err
}

// Metrics fetches the counter snapshot.
func (c *Client) Metrics() (map[string]int64, error) {
	var out map[string]int64
	err := c.do(http.MethodGet, "/metrics", nil, &out)
	return out, err
}

// Health fetches the liveness report.
func (c *Client) Health() (HealthResponse, error) {
	var out HealthResponse
	err := c.do(http.MethodGet, "/healthz", nil, &out)
	return out, err
}

// Ready fetches the readiness report. A draining or degraded server
// answers 503, which surfaces here as an error after the client's
// retries are exhausted.
func (c *Client) Ready() (ReadyResponse, error) {
	var out ReadyResponse
	err := c.do(http.MethodGet, "/readyz", nil, &out)
	return out, err
}

// Traces fetches the most recent request traces, newest first (n ≤ 0
// fetches the whole ring).
func (c *Client) Traces(n int) (TracesResponse, error) {
	path := "/v1/traces"
	if n > 0 {
		path += fmt.Sprintf("?n=%d", n)
	}
	var out TracesResponse
	err := c.do(http.MethodGet, path, nil, &out)
	return out, err
}

// Persistence fetches the label-keyed persistence pairs between the
// last two archived windows (the anomaly computation's intermediate
// form; distance "" uses the server default).
func (c *Client) Persistence(distance string) (PersistenceResponse, error) {
	path := "/v1/persistence"
	if distance != "" {
		path += "?distance=" + url.QueryEscape(distance)
	}
	var out PersistenceResponse
	err := c.do(http.MethodGet, path, nil, &out)
	return out, err
}

// ReplicationStatus fetches the primary's WAL shipping state.
func (c *Client) ReplicationStatus() (ReplicationStatusResponse, error) {
	var out ReplicationStatusResponse
	err := c.do(http.MethodGet, "/v1/replication/status", nil, &out)
	return out, err
}

// WALChunk is one GET /v1/replication/wal response: raw durable log
// bytes of one generation plus the cursor metadata from the headers.
type WALChunk struct {
	Gen    int
	Sealed bool
	Size   int64
	Data   []byte
}

// FetchWAL reads up to max bytes (0 = server default) of WAL
// generation gen starting at byte offset from. Unlike the JSON
// methods it performs a single attempt — the replication loop owns its
// own retry cadence — but a transport failure still rotates the seed.
func (c *Client) FetchWAL(gen int, from int64, max int) (WALChunk, error) {
	path := fmt.Sprintf("/v1/replication/wal?gen=%d&from=%d", gen, from)
	if max > 0 {
		path += fmt.Sprintf("&max=%d", max)
	}
	req, err := http.NewRequest(http.MethodGet, c.currentBase()+path, nil)
	if err != nil {
		return WALChunk{}, fmt.Errorf("client: %w", err)
	}
	if c.trace.Valid() {
		req.Header.Set(obs.TraceHeader, c.trace.String())
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		c.markSeedDown()
		return WALChunk{}, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var apiErr struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		e := &APIError{Status: resp.StatusCode, Method: http.MethodGet, Path: path, Msg: msg}
		if retryable(resp.StatusCode) {
			e.RetryAfter = resp.Header.Get("Retry-After")
			c.rotateSeed()
		}
		return WALChunk{}, e
	}
	var chunk WALChunk
	if chunk.Gen, err = strconv.Atoi(resp.Header.Get(HeaderWALGen)); err != nil {
		return WALChunk{}, fmt.Errorf("client: bad %s header %q", HeaderWALGen, resp.Header.Get(HeaderWALGen))
	}
	chunk.Sealed = resp.Header.Get(HeaderWALSealed) == "true"
	if chunk.Size, err = strconv.ParseInt(resp.Header.Get(HeaderWALSize), 10, 64); err != nil {
		return WALChunk{}, fmt.Errorf("client: bad %s header %q", HeaderWALSize, resp.Header.Get(HeaderWALSize))
	}
	if chunk.Data, err = io.ReadAll(resp.Body); err != nil {
		return WALChunk{}, fmt.Errorf("client: reading WAL chunk: %w", err)
	}
	return chunk, nil
}

// MetricsProm fetches the Prometheus text rendering of /metrics. It
// runs through the same retry/rotate loop as the JSON calls — metrics
// federation must survive a dead seed, not stop at the first one.
func (c *Client) MetricsProm() (string, error) {
	return c.doText("/metrics?format=prom")
}

// TraceByID fetches one retained trace by ID from the node's ring. A
// node that never finished the trace (or has already evicted it)
// answers 404, surfaced as an *APIError.
func (c *Client) TraceByID(id string) (obs.TraceSnapshot, error) {
	var out obs.TraceSnapshot
	err := c.do(http.MethodGet, "/v1/traces/"+url.PathEscape(id), nil, &out)
	return out, err
}

// doText is the retry/rotate loop for endpoints answering plain text
// rather than JSON, with the same seed-failover policy as do.
func (c *Client) doText(path string) (string, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		body, retryAfter, err := c.onceText(path)
		if err == nil {
			return body, nil
		}
		lastErr = err
		if retryAfter == noRetry || attempt >= c.MaxRetries {
			return "", lastErr
		}
		if APIStatus(err) == 0 {
			c.markSeedDown()
		} else {
			c.rotateSeed()
		}
		time.Sleep(c.backoff(attempt, retryAfter))
	}
}

// onceText performs a single text-body GET, mirroring once's
// retryAfter/noRetry contract.
func (c *Client) onceText(path string) (body, retryAfter string, err error) {
	req, err := http.NewRequest(http.MethodGet, c.currentBase()+path, nil)
	if err != nil {
		return "", noRetry, fmt.Errorf("client: %w", err)
	}
	if c.trace.Valid() {
		req.Header.Set(obs.TraceHeader, c.trace.String())
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return "", "", fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		apiErr := &APIError{Status: resp.StatusCode, Method: http.MethodGet, Path: path, Msg: resp.Status}
		if retryable(resp.StatusCode) {
			apiErr.RetryAfter = resp.Header.Get("Retry-After")
			return "", apiErr.RetryAfter, apiErr
		}
		return "", noRetry, apiErr
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", "", fmt.Errorf("client: GET %s: reading body: %w", path, err)
	}
	return string(raw), "", nil
}
