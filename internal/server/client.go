package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"graphsig/internal/netflow"
)

// Client is a thin Go client for the sigserverd HTTP API, used by the
// sigtool `client` subcommand, by --replay self-benchmarking, and by
// the end-to-end tests.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the underlying client (default: 30 s timeout).
	HTTP *http.Client
}

// NewClient returns a client for the server at base.
func NewClient(base string) *Client {
	return &Client{Base: base, HTTP: &http.Client{Timeout: 30 * time.Second}}
}

func (c *Client) do(method, path string, body, out any) error {
	var reader io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: %w", err)
		}
		reader = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.Base+path, reader)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var apiErr struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		return fmt.Errorf("client: %s %s: %s", method, path, msg)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: %s %s: decoding response: %w", method, path, err)
	}
	return nil
}

// Ingest POSTs a batch of flow records.
func (c *Client) Ingest(records []netflow.Record) (IngestResult, error) {
	req := IngestRequest{Records: make([]RecordJSON, len(records))}
	for i, r := range records {
		req.Records[i] = RecordToJSON(r)
	}
	var out IngestResult
	err := c.do(http.MethodPost, "/v1/flows", req, &out)
	return out, err
}

// History fetches a label's archived signatures.
func (c *Client) History(label string) (HistoryResponse, error) {
	var out HistoryResponse
	err := c.do(http.MethodGet, "/v1/signatures/"+url.PathEscape(label), nil, &out)
	return out, err
}

// Search runs a nearest-signature query.
func (c *Client) Search(req SearchRequest) (SearchResponse, error) {
	var out SearchResponse
	err := c.do(http.MethodPost, "/v1/search", req, &out)
	return out, err
}

// WatchlistAdd archives a label's stored signatures under an
// individual key.
func (c *Client) WatchlistAdd(req WatchlistAddRequest) (WatchlistAddResponse, error) {
	var out WatchlistAddResponse
	err := c.do(http.MethodPost, "/v1/watchlist", req, &out)
	return out, err
}

// WatchlistHits fetches the recorded hit log.
func (c *Client) WatchlistHits() (WatchlistHitsResponse, error) {
	var out WatchlistHitsResponse
	err := c.do(http.MethodGet, "/v1/watchlist/hits", nil, &out)
	return out, err
}

// Anomalies fetches behaviour-change reports between the last two
// archived windows (zCut ≤ 0 uses the server default).
func (c *Client) Anomalies(zCut float64) (AnomaliesResponse, error) {
	path := "/v1/anomalies"
	if zCut > 0 {
		path += fmt.Sprintf("?z=%g", zCut)
	}
	var out AnomaliesResponse
	err := c.do(http.MethodGet, path, nil, &out)
	return out, err
}

// Metrics fetches the counter snapshot.
func (c *Client) Metrics() (map[string]int64, error) {
	var out map[string]int64
	err := c.do(http.MethodGet, "/metrics", nil, &out)
	return out, err
}

// Health fetches the liveness report.
func (c *Client) Health() (HealthResponse, error) {
	var out HealthResponse
	err := c.do(http.MethodGet, "/healthz", nil, &out)
	return out, err
}
