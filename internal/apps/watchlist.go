package apps

import (
	"fmt"
	"sort"
	"sync"

	"graphsig/internal/core"
	"graphsig/internal/graph"
)

// Watchlist answers the paper's §I security question — "is a new user
// who arrives at a particular time really the reappearance of an
// individual who has been observed earlier?" — by archiving signatures
// of individuals of interest across windows and ranking any new
// signature against the archive. One individual may contribute several
// archived signatures (one per window observed); a hit against any of
// them implicates the individual.
//
// A Watchlist is safe for concurrent use: in the serving path
// (internal/server) it sits behind concurrent HTTP handlers that add
// entries and screen windows simultaneously. Archived signatures are
// never mutated after Add, so queries copy nothing.
type Watchlist struct {
	mu      sync.RWMutex
	entries []watchEntry
}

type watchEntry struct {
	// individual identifies who the signature belonged to (an opaque
	// caller-chosen key — e.g. the original node label or a case id).
	individual string
	window     int
	sig        core.Signature
}

// NewWatchlist returns an empty archive.
func NewWatchlist() *Watchlist { return &Watchlist{} }

// Add archives one signature for an individual. Empty signatures are
// rejected: they would match every other silent node.
func (w *Watchlist) Add(individual string, window int, sig core.Signature) error {
	if individual == "" {
		return fmt.Errorf("apps: watchlist entry needs an individual key")
	}
	if sig.IsEmpty() {
		return fmt.Errorf("apps: watchlist rejects empty signature for %q", individual)
	}
	if err := sig.Validate(); err != nil {
		return fmt.Errorf("apps: watchlist entry for %q: %w", individual, err)
	}
	w.mu.Lock()
	w.entries = append(w.entries, watchEntry{individual: individual, window: window, sig: sig})
	w.mu.Unlock()
	return nil
}

// AddSet archives every signature of a SignatureSet, naming individuals
// through the label function (typically universe.Label). Sources with
// empty signatures are skipped.
func (w *Watchlist) AddSet(set *core.SignatureSet, label func(graph.NodeID) string) error {
	for i, v := range set.Sources {
		if set.Sigs[i].IsEmpty() {
			continue
		}
		if err := w.Add(label(v), set.Window, set.Sigs[i]); err != nil {
			return err
		}
	}
	return nil
}

// Len reports the number of archived signatures.
func (w *Watchlist) Len() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.entries)
}

// Hit is one watchlist match: an archived individual whose signature is
// close to the query.
type Hit struct {
	Individual string
	// Window is when the matching archived signature was observed.
	Window int
	Dist   float64
}

// Query ranks archived individuals by their *best* (smallest) distance
// to the query signature and returns those with distance ≤ maxDist,
// closest first.
func (w *Watchlist) Query(d core.Distance, sig core.Signature, maxDist float64) ([]Hit, error) {
	if maxDist < 0 || maxDist > 1 {
		return nil, fmt.Errorf("apps: watchlist maxDist %g outside [0,1]", maxDist)
	}
	if sig.IsEmpty() {
		return nil, fmt.Errorf("apps: watchlist query with empty signature")
	}
	w.mu.RLock()
	defer w.mu.RUnlock()
	best := map[string]Hit{}
	for _, e := range w.entries {
		dist := d.Dist(sig, e.sig)
		if dist > maxDist {
			continue
		}
		cur, seen := best[e.individual]
		if !seen || dist < cur.Dist || (dist == cur.Dist && e.window > cur.Window) {
			best[e.individual] = Hit{Individual: e.individual, Window: e.window, Dist: dist}
		}
	}
	out := make([]Hit, 0, len(best))
	for _, h := range best {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Individual < out[j].Individual
	})
	return out, nil
}

// Screen queries every signature of a set against the watchlist and
// reports, per source with at least one hit, its ranked hits — the
// batch form used when a new window of traffic arrives.
func (w *Watchlist) Screen(d core.Distance, set *core.SignatureSet, maxDist float64) (map[graph.NodeID][]Hit, error) {
	out := map[graph.NodeID][]Hit{}
	for i, v := range set.Sources {
		if set.Sigs[i].IsEmpty() {
			continue
		}
		hits, err := w.Query(d, set.Sigs[i], maxDist)
		if err != nil {
			return nil, fmt.Errorf("apps: screen %d: %w", v, err)
		}
		if len(hits) > 0 {
			out[v] = hits
		}
	}
	return out, nil
}
