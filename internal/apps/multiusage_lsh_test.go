package apps

import (
	"testing"

	"graphsig/internal/core"
	"graphsig/internal/graph"
)

func TestDetectMultiusageApproxFindsExactPairs(t *testing.T) {
	// Twins share their full member set; the LSH path must recover the
	// same pairs the exact scan finds at this threshold.
	sigs := map[graph.NodeID]map[graph.NodeID]float64{}
	for i := graph.NodeID(0); i < 30; i++ {
		sigs[i] = map[graph.NodeID]float64{
			1000 + 10*i: 1, 1001 + 10*i: 1, 1002 + 10*i: 1, 1003 + 10*i: 1,
		}
	}
	// Two twin pairs.
	sigs[40] = map[graph.NodeID]float64{1: 1, 2: 1, 3: 1, 4: 1}
	sigs[41] = map[graph.NodeID]float64{1: 1, 2: 1, 3: 1, 4: 1}
	sigs[50] = map[graph.NodeID]float64{5: 1, 6: 1, 7: 1, 8: 1}
	sigs[51] = map[graph.NodeID]float64{5: 1, 6: 1, 7: 1, 9: 1} // 3/5 overlap
	set := makeSet(t, 0, sigs)

	exact, err := DetectMultiusage(core.Jaccard{}, set, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := DetectMultiusageApprox(set, 0.5, 16, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(exact) != 2 {
		t.Fatalf("exact pairs = %d", len(exact))
	}
	if len(approx) != len(exact) {
		t.Fatalf("approx found %d pairs, exact %d", len(approx), len(exact))
	}
	for i := range exact {
		if exact[i] != approx[i] {
			t.Fatalf("pair %d differs: %+v vs %+v", i, approx[i], exact[i])
		}
	}
}

func TestDetectMultiusageApproxNeverInventsPairs(t *testing.T) {
	sigs := map[graph.NodeID]map[graph.NodeID]float64{}
	for i := graph.NodeID(0); i < 20; i++ {
		sigs[i] = map[graph.NodeID]float64{500 + 7*i: 1, 501 + 7*i: 1}
	}
	set := makeSet(t, 0, sigs)
	approx, err := DetectMultiusageApprox(set, 0.3, 16, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Every reported pair is exact-verified, so any output here would
	// be a bug (all signatures are disjoint).
	if len(approx) != 0 {
		t.Fatalf("invented pairs: %+v", approx)
	}
}

func TestDetectMultiusageApproxValidation(t *testing.T) {
	set := makeSet(t, 0, map[graph.NodeID]map[graph.NodeID]float64{1: {10: 1}})
	if _, err := DetectMultiusageApprox(set, 1.5, 16, 2, 1); err == nil {
		t.Fatal("bad threshold accepted")
	}
	if _, err := DetectMultiusageApprox(set, 0.5, 0, 2, 1); err == nil {
		t.Fatal("bad bands accepted")
	}
}
