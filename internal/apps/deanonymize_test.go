package apps

import (
	"testing"

	"graphsig/internal/core"
	"graphsig/internal/graph"
)

func deanonFixture(t *testing.T) (*core.SignatureSet, *core.SignatureSet, map[graph.NodeID]graph.NodeID) {
	t.Helper()
	// Reference individuals 1..4 with distinctive signatures; the
	// anonymized window relabels them to 101..104 with mild noise.
	ref := makeSet(t, 0, map[graph.NodeID]map[graph.NodeID]float64{
		1: {10: 1, 11: 0.5, 12: 0.2},
		2: {20: 1, 21: 0.5, 22: 0.2},
		3: {30: 1, 31: 0.5, 32: 0.2},
		4: {40: 1, 41: 0.5, 42: 0.2},
	})
	anon := makeSet(t, 1, map[graph.NodeID]map[graph.NodeID]float64{
		101: {30: 1, 31: 0.4, 33: 0.2},   // is 3
		102: {10: 0.9, 11: 0.5, 12: 0.3}, // is 1
		103: {20: 1, 21: 0.5},            // is 2
		104: {40: 1, 42: 0.2, 43: 0.1},   // is 4
	})
	truth := map[graph.NodeID]graph.NodeID{101: 3, 102: 1, 103: 2, 104: 4}
	return ref, anon, truth
}

func TestDeAnonymizeNearest(t *testing.T) {
	ref, anon, truth := deanonFixture(t)
	matches, err := DeAnonymize(core.ScaledHellinger{}, ref, anon, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 4 {
		t.Fatalf("matches = %d", len(matches))
	}
	acc, err := DeAnonymizationAccuracy(matches, truth)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1 {
		t.Fatalf("accuracy = %g, matches %+v", acc, matches)
	}
}

func TestDeAnonymizeGreedyInjective(t *testing.T) {
	ref, anon, truth := deanonFixture(t)
	matches, err := DeAnonymize(core.ScaledHellinger{}, ref, anon, true)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := DeAnonymizationAccuracy(matches, truth)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1 {
		t.Fatalf("greedy accuracy = %g", acc)
	}
	// No reference is used twice.
	seen := map[graph.NodeID]bool{}
	for _, m := range matches {
		if seen[m.Reference] {
			t.Fatal("greedy matching reused a reference")
		}
		seen[m.Reference] = true
	}
}

func TestDeAnonymizeGreedyResolvesCollision(t *testing.T) {
	// Two anonymized nodes both closest to reference 1; greedy must
	// give 1 to the closer and push the other to its runner-up, which
	// nearest-neighbour matching cannot do.
	ref := makeSet(t, 0, map[graph.NodeID]map[graph.NodeID]float64{
		1: {10: 1, 11: 1},
		2: {10: 1, 12: 1},
	})
	anon := makeSet(t, 1, map[graph.NodeID]map[graph.NodeID]float64{
		101: {10: 1, 11: 1},          // exactly 1
		102: {10: 1, 11: 1, 12: 0.2}, // near 1, but should settle for 2
	})
	d := core.Jaccard{}
	nearest, err := DeAnonymize(d, ref, anon, false)
	if err != nil {
		t.Fatal(err)
	}
	both1 := 0
	for _, m := range nearest {
		if m.Reference == 1 {
			both1++
		}
	}
	if both1 != 2 {
		t.Fatalf("nearest matching should double-assign reference 1, got %+v", nearest)
	}
	greedy, err := DeAnonymize(d, ref, anon, true)
	if err != nil {
		t.Fatal(err)
	}
	assigned := map[graph.NodeID]graph.NodeID{}
	for _, m := range greedy {
		assigned[m.Anonymized] = m.Reference
	}
	if assigned[101] != 1 || assigned[102] != 2 {
		t.Fatalf("greedy assignment wrong: %v", assigned)
	}
}

func TestDeAnonymizeValidation(t *testing.T) {
	ref, _, truth := deanonFixture(t)
	empty := &core.SignatureSet{}
	if _, err := DeAnonymize(core.Jaccard{}, ref, empty, false); err == nil {
		t.Fatal("empty anonymized set accepted")
	}
	if _, err := DeAnonymize(core.Jaccard{}, empty, ref, true); err == nil {
		t.Fatal("empty reference set accepted")
	}
	if _, err := DeAnonymizationAccuracy(nil, truth); err != nil {
		t.Fatal(err)
	}
	if _, err := DeAnonymizationAccuracy(nil, nil); err == nil {
		t.Fatal("empty truth accepted")
	}
}
