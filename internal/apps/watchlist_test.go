package apps

import (
	"testing"

	"graphsig/internal/core"
	"graphsig/internal/graph"
)

func wlSig(pairs ...any) core.Signature {
	w := map[graph.NodeID]float64{}
	for i := 0; i < len(pairs); i += 2 {
		w[graph.NodeID(pairs[i].(int))] = pairs[i+1].(float64)
	}
	return core.FromWeights(w, len(pairs))
}

func TestWatchlistAddValidation(t *testing.T) {
	w := NewWatchlist()
	if err := w.Add("", 0, wlSig(1, 1.0)); err == nil {
		t.Fatal("empty individual accepted")
	}
	if err := w.Add("x", 0, core.Signature{}); err == nil {
		t.Fatal("empty signature accepted")
	}
	bad := core.Signature{Nodes: []graph.NodeID{1}, Weights: []float64{-1}}
	if err := w.Add("x", 0, bad); err == nil {
		t.Fatal("invalid signature accepted")
	}
	if err := w.Add("x", 0, wlSig(1, 1.0)); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 1 {
		t.Fatalf("Len = %d", w.Len())
	}
}

func TestWatchlistQueryRanking(t *testing.T) {
	w := NewWatchlist()
	// fraudster observed twice; an unrelated individual once.
	if err := w.Add("fraudster", 0, wlSig(10, 1.0, 11, 0.5)); err != nil {
		t.Fatal(err)
	}
	if err := w.Add("fraudster", 1, wlSig(10, 1.0, 12, 0.5)); err != nil {
		t.Fatal(err)
	}
	if err := w.Add("bystander", 0, wlSig(90, 1.0, 91, 0.5)); err != nil {
		t.Fatal(err)
	}
	d := core.Jaccard{}

	// A new label behaving like the fraudster's window-1 signature.
	hits, err := w.Query(d, wlSig(10, 1.0, 12, 0.4), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Individual != "fraudster" {
		t.Fatalf("hits = %+v", hits)
	}
	if hits[0].Window != 1 || hits[0].Dist != 0 {
		t.Fatalf("best archived match wrong: %+v", hits[0])
	}

	// An unrelated query matches nobody at a tight threshold.
	hits, err = w.Query(d, wlSig(50, 1.0), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Fatalf("spurious hits: %+v", hits)
	}

	if _, err := w.Query(d, core.Signature{}, 0.5); err == nil {
		t.Fatal("empty query accepted")
	}
	if _, err := w.Query(d, wlSig(1, 1.0), 1.5); err == nil {
		t.Fatal("bad maxDist accepted")
	}
}

func TestWatchlistAddSetAndScreen(t *testing.T) {
	archive := makeSet(t, 0, map[graph.NodeID]map[graph.NodeID]float64{
		1: {10: 1, 11: 1},
		2: {20: 1, 21: 1},
		3: {}, // silent: skipped
	})
	w := NewWatchlist()
	label := func(v graph.NodeID) string { return string(rune('A' + int(v))) }
	if err := w.AddSet(archive, label); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 2 {
		t.Fatalf("archived %d", w.Len())
	}
	// A later window: node 7 behaves like archived individual "B" (1).
	current := makeSet(t, 3, map[graph.NodeID]map[graph.NodeID]float64{
		7: {10: 1, 11: 1},
		8: {70: 1},
	})
	hits, err := w.Screen(core.Jaccard{}, current, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("screen hits = %+v", hits)
	}
	got, ok := hits[7]
	if !ok || len(got) != 1 || got[0].Individual != "B" {
		t.Fatalf("node 7 hits = %+v", got)
	}
}
