package apps

import (
	"fmt"
	"sort"

	"graphsig/internal/core"
	"graphsig/internal/graph"
	"graphsig/internal/lsh"
)

// DetectMultiusageApprox is the §VI scalable variant of multiusage
// detection: instead of the quadratic all-pairs scan it indexes every
// signature in an LSH banding index, collects candidate pairs from
// shared buckets, and verifies each candidate with the exact Jaccard
// distance. With b bands of r rows a pair at Jaccard similarity s is
// found with probability 1 − (1 − sʳ)ᵇ, so recall is tunable against
// the scan fraction; only Jaccard is supported (the paper's pointer to
// LSH applies to Dist_Jac).
func DetectMultiusageApprox(set *core.SignatureSet, threshold float64, bands, rows int, seed uint64) ([]SimilarPair, error) {
	if threshold < 0 || threshold > 1 {
		return nil, fmt.Errorf("apps: multiusage threshold %g outside [0,1]", threshold)
	}
	hasher, err := lsh.NewHasher(bands*rows, seed)
	if err != nil {
		return nil, err
	}
	index, err := lsh.NewIndex(hasher, bands, rows)
	if err != nil {
		return nil, err
	}
	nonEmpty := map[graph.NodeID]int{}
	for i, v := range set.Sources {
		if set.Sigs[i].IsEmpty() {
			continue
		}
		nonEmpty[v] = i
		if err := index.Add(v, set.Sigs[i]); err != nil {
			return nil, err
		}
	}
	d := core.Jaccard{}
	seen := map[[2]graph.NodeID]bool{}
	var out []SimilarPair
	for v, i := range nonEmpty {
		cands, err := index.Query(set.Sigs[i], v, 0)
		if err != nil {
			return nil, err
		}
		for _, c := range cands {
			j, ok := nonEmpty[c.Node]
			if !ok {
				continue
			}
			a, b := v, c.Node
			if b < a {
				a, b = b, a
			}
			key := [2]graph.NodeID{a, b}
			if seen[key] {
				continue
			}
			seen[key] = true
			// Exact verification of the LSH candidate.
			dist := d.Dist(set.Sigs[i], set.Sigs[j])
			if dist <= threshold {
				out = append(out, SimilarPair{A: a, B: b, Dist: dist})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out, nil
}
