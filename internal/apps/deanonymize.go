package apps

import (
	"fmt"
	"sort"

	"graphsig/internal/core"
	"graphsig/internal/distmat"
	"graphsig/internal/graph"
)

// Match is one de-anonymization assignment: the anonymized node is
// claimed to be the reference individual, at the given signature
// distance.
type Match struct {
	Anonymized graph.NodeID
	Reference  graph.NodeID
	Dist       float64
}

// DeAnonymize attacks an anonymized communication graph with outside
// information, the paper's §I third application (author identification
// from citation signatures [11] is the canonical instance): given
// reference signatures of known individuals from an earlier window and
// signatures computed on the anonymized window, each anonymized node is
// matched to its nearest reference signature. The anonymized×reference
// distance rows ride the pairwise engine.
//
// When greedy is true, assignments are made in order of increasing
// distance with each reference used at most once (appropriate when the
// hidden mapping is known to be injective, as in a wholesale
// re-labelling); otherwise every anonymized node independently takes
// its nearest reference.
func DeAnonymize(d core.Distance, reference, anonymized *core.SignatureSet, greedy bool) ([]Match, error) {
	if reference.Len() == 0 || anonymized.Len() == 0 {
		return nil, fmt.Errorf("apps: deanonymize needs non-empty signature sets")
	}
	eng, fast := distmat.NewEngine(anonymized, reference, d, 0)
	rowDist := func(i, j int) float64 { return d.Dist(anonymized.Sigs[i], reference.Sigs[j]) }
	if !greedy {
		out := make([]Match, 0, anonymized.Len())
		pick := func(i int, dist func(j int) float64) {
			best := Match{Anonymized: anonymized.Sources[i], Dist: 2}
			for j, r := range reference.Sources {
				dj := dist(j)
				if dj < best.Dist || (dj == best.Dist && r < best.Reference) {
					best.Reference = r
					best.Dist = dj
				}
			}
			out = append(out, best)
		}
		if fast {
			all := rowIndices(anonymized.Len())
			eng.Rows(all, func(i int, row []float64) {
				pick(i, func(j int) float64 { return row[j] })
			})
		} else {
			for i := range anonymized.Sources {
				pick(i, func(j int) float64 { return rowDist(i, j) })
			}
		}
		sortMatches(out)
		return out, nil
	}
	// Greedy injective assignment over all pairs, cheapest first.
	type cand struct {
		ai, rj int
		dist   float64
	}
	cands := make([]cand, 0, anonymized.Len()*reference.Len())
	if fast {
		all := rowIndices(anonymized.Len())
		eng.Rows(all, func(i int, row []float64) {
			for j, dist := range row {
				cands = append(cands, cand{i, j, dist})
			}
		})
	} else {
		for i := range anonymized.Sources {
			for j := range reference.Sources {
				cands = append(cands, cand{i, j, rowDist(i, j)})
			}
		}
	}
	sort.Slice(cands, func(x, y int) bool {
		if cands[x].dist != cands[y].dist {
			return cands[x].dist < cands[y].dist
		}
		if cands[x].ai != cands[y].ai {
			return cands[x].ai < cands[y].ai
		}
		return cands[x].rj < cands[y].rj
	})
	usedA := make([]bool, anonymized.Len())
	usedR := make([]bool, reference.Len())
	var out []Match
	for _, c := range cands {
		if usedA[c.ai] || usedR[c.rj] {
			continue
		}
		usedA[c.ai] = true
		usedR[c.rj] = true
		out = append(out, Match{
			Anonymized: anonymized.Sources[c.ai],
			Reference:  reference.Sources[c.rj],
			Dist:       c.dist,
		})
		if len(out) == anonymized.Len() || len(out) == reference.Len() {
			break
		}
	}
	sortMatches(out)
	return out, nil
}

// rowIndices returns [0, 1, ..., n-1].
func rowIndices(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Dist != ms[j].Dist {
			return ms[i].Dist < ms[j].Dist
		}
		return ms[i].Anonymized < ms[j].Anonymized
	})
}

// DeAnonymizationAccuracy scores matches against the true mapping
// anonymized → reference.
func DeAnonymizationAccuracy(matches []Match, truth map[graph.NodeID]graph.NodeID) (float64, error) {
	if len(truth) == 0 {
		return 0, fmt.Errorf("apps: empty ground truth")
	}
	correct := 0
	for _, m := range matches {
		if truth[m.Anonymized] == m.Reference {
			correct++
		}
	}
	return float64(correct) / float64(len(truth)), nil
}
