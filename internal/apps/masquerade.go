package apps

import (
	"fmt"
	"sort"

	"graphsig/internal/core"
	"graphsig/internal/distmat"
	"graphsig/internal/graph"
)

// MasqueradeResult is the output of Algorithm 1: M, the labels judged
// not to be masquerading, and O_P, the estimated relabelling v → u
// (the individual behind v re-appeared as u).
type MasqueradeResult struct {
	NonSuspects map[graph.NodeID]bool
	Pairs       map[graph.NodeID]graph.NodeID
}

// DeltaFromSelfPersistence computes Algorithm 1's persistency threshold
//
//	δ = (Σ_v 1 − Dist(σ_t(v), σ_{t+1}(v))) / (c·|V|)
//
// i.e. the average self-similarity across time scaled down by c
// (the paper uses c ∈ {3,5,7}). Sources absent from the later window
// contribute persistence 0.
func DeltaFromSelfPersistence(d core.Distance, at, next *core.SignatureSet, c int) (float64, error) {
	if c <= 0 {
		return 0, fmt.Errorf("apps: delta scale c must be positive, got %d", c)
	}
	if at.Len() == 0 {
		return 0, fmt.Errorf("apps: no sources to compute delta over")
	}
	sum := 0.0
	if eng, ok := distmat.NewEngine(at, next, d, 0); ok {
		for i, v := range at.Sources {
			j, present := next.IndexOf(v)
			if !present {
				continue // persistence 0
			}
			sum += 1 - eng.Dist(i, j)
		}
		return sum / (float64(c) * float64(at.Len())), nil
	}
	for i, v := range at.Sources {
		sig2, ok := next.Get(v)
		if !ok {
			continue // persistence 0
		}
		sum += 1 - d.Dist(at.Sigs[i], sig2)
	}
	return sum / (float64(c) * float64(at.Len())), nil
}

// DetectLabelMasquerading is Algorithm 1 (§V). For each source v:
// if v's self-persistence exceeds δ it joins M; otherwise v's cross
// persistence A[v,u] = 1 − Dist(σ_t(v), σ_{t+1}(u)) is ranked and v is
// paired with the most persistent u among v's top-ℓ whose own
// self-persistence A[u,u] ≤ δ (both labels look different from
// themselves but similar to each other); with no such u, v joins M.
// Self-persistences and the suspects' cross-persistence rows ride the
// pairwise engine.
func DetectLabelMasquerading(d core.Distance, at, next *core.SignatureSet, delta float64, ell int) (*MasqueradeResult, error) {
	if ell <= 0 {
		return nil, fmt.Errorf("apps: top-ℓ must be positive, got %d", ell)
	}
	res := &MasqueradeResult{
		NonSuspects: map[graph.NodeID]bool{},
		Pairs:       map[graph.NodeID]graph.NodeID{},
	}
	eng, fast := distmat.NewEngine(at, next, d, 0)
	crossDist := func(i, j int) float64 {
		if fast {
			return eng.Dist(i, j)
		}
		return d.Dist(at.Sigs[i], next.Sigs[j])
	}
	// Self-persistence of every candidate u (sources of the later
	// window), used for the A[u,u] ≤ δ condition.
	selfP := make([]float64, next.Len())
	for j, u := range next.Sources {
		if i, ok := at.IndexOf(u); ok {
			selfP[j] = 1 - crossDist(i, j)
		}
	}

	type cand struct {
		idx int
		p   float64
	}
	// Partition sources into persistent labels (→ M immediately) and
	// suspects, whose full cross-persistence rows are needed.
	var suspects []int
	for i, v := range at.Sources {
		self := 0.0
		if j, ok := next.IndexOf(v); ok {
			self = 1 - crossDist(i, j)
		}
		if self > delta {
			res.NonSuspects[v] = true
			continue
		}
		suspects = append(suspects, i)
	}
	pair := func(i int, dist func(j int) float64) {
		v := at.Sources[i]
		cands := make([]cand, 0, next.Len())
		for j, u := range next.Sources {
			if u == v {
				continue
			}
			cands = append(cands, cand{idx: j, p: 1 - dist(j)})
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].p != cands[b].p {
				return cands[a].p > cands[b].p
			}
			return next.Sources[cands[a].idx] < next.Sources[cands[b].idx]
		})
		if len(cands) > ell {
			cands = cands[:ell]
		}
		for _, c := range cands {
			if selfP[c.idx] <= delta {
				res.Pairs[v] = next.Sources[c.idx]
				return
			}
		}
		res.NonSuspects[v] = true
	}
	if fast {
		eng.Rows(suspects, func(t int, row []float64) {
			pair(suspects[t], func(j int) float64 { return row[j] })
		})
	} else {
		for _, i := range suspects {
			pair(i, func(j int) float64 { return crossDist(i, j) })
		}
	}
	return res, nil
}

// MasqueradeAccuracy computes the §V accuracy criterion
//
//	(|M ∩ (V−P)| + |O_P ∩ E_P|) / |V|
//
// over the evaluated node set all: the fraction of labels either
// correctly classified as non-suspects or correctly paired with their
// new label. truth maps v → u for every truly relabelled v (E_P).
func MasqueradeAccuracy(res *MasqueradeResult, truth map[graph.NodeID]graph.NodeID, all []graph.NodeID) (float64, error) {
	if len(all) == 0 {
		return 0, fmt.Errorf("apps: accuracy over empty node set")
	}
	correct := 0
	for _, v := range all {
		if u, masq := truth[v]; masq {
			if res.Pairs[v] == u {
				correct++
			}
		} else if res.NonSuspects[v] {
			correct++
		}
	}
	return float64(correct) / float64(len(all)), nil
}
