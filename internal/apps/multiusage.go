// Package apps implements the paper's three signature applications:
// multiusage detection (§II-D, evaluated in §V), label-masquerading
// detection (Algorithm 1), and anomaly detection (§II-D).
package apps

import (
	"fmt"
	"sort"

	"graphsig/internal/core"
	"graphsig/internal/distmat"
	"graphsig/internal/graph"
)

// SimilarPair is a candidate multiusage pair: two labels whose
// signatures within the same window are unusually similar.
type SimilarPair struct {
	A, B graph.NodeID
	Dist float64
}

// DetectMultiusage scans all unordered source pairs in one window and
// returns those with Dist ≤ threshold, sorted by ascending distance.
// High similarity within a window is the multiusage signal: one
// individual communicating from several connection points (§II-D).
//
// The scan rides the sparse pairwise engine: with threshold < 1 only
// pairs sharing at least one signature node are ever compared (disjoint
// pairs sit at distance exactly 1), in parallel across cores, with
// results bit-identical to the naive quadratic loop.
func DetectMultiusage(d core.Distance, set *core.SignatureSet, threshold float64) ([]SimilarPair, error) {
	if threshold < 0 || threshold > 1 {
		return nil, fmt.Errorf("apps: multiusage threshold %g outside [0,1]", threshold)
	}
	var out []SimilarPair
	if eng, ok := distmat.NewEngine(set, set, d, 0); ok {
		// PairsWithin already excludes empty signatures: a silent label
		// matches every other silent label at distance 0; such
		// degenerate pairs are not multiusage evidence.
		for _, p := range eng.PairsWithin(threshold) {
			out = append(out, SimilarPair{A: set.Sources[p.I], B: set.Sources[p.J], Dist: p.Dist})
		}
	} else {
		for i := 0; i < set.Len(); i++ {
			if set.Sigs[i].IsEmpty() {
				continue
			}
			for j := i + 1; j < set.Len(); j++ {
				if set.Sigs[j].IsEmpty() {
					continue
				}
				dist := d.Dist(set.Sigs[i], set.Sigs[j])
				if dist <= threshold {
					out = append(out, SimilarPair{A: set.Sources[i], B: set.Sources[j], Dist: dist})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out, nil
}

// NearestNeighbors ranks the other sources by signature distance from
// v, returning the topN closest — the per-node view used to vet one
// suspicious label.
func NearestNeighbors(d core.Distance, set *core.SignatureSet, v graph.NodeID, topN int) ([]SimilarPair, error) {
	sig, ok := set.Get(v)
	if !ok {
		return nil, fmt.Errorf("apps: node %d has no signature in window %d", v, set.Window)
	}
	pairs := make([]SimilarPair, 0, set.Len()-1)
	if q, fast := distmat.NewQuerier(d); fast {
		view := distmat.NewSetView(set)
		q.Neighbors(view, sig, 1, func(j int, dist float64) {
			u := set.Sources[j]
			if u == v {
				return
			}
			pairs = append(pairs, SimilarPair{A: v, B: u, Dist: dist})
		})
	} else {
		for j, u := range set.Sources {
			if u == v {
				continue
			}
			pairs = append(pairs, SimilarPair{A: v, B: u, Dist: d.Dist(sig, set.Sigs[j])})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Dist != pairs[j].Dist {
			return pairs[i].Dist < pairs[j].Dist
		}
		return pairs[i].B < pairs[j].B
	})
	if topN < len(pairs) {
		pairs = pairs[:topN]
	}
	return pairs, nil
}
