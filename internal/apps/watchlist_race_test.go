package apps

import (
	"fmt"
	"sync"
	"testing"

	"graphsig/internal/core"
	"graphsig/internal/graph"
)

// TestWatchlistConcurrentAddAndRank exercises the watchlist the way
// the server does — handlers adding entries while others rank queries
// and screen whole windows — and relies on -race to flag unsafe
// access.
func TestWatchlistConcurrentAddAndRank(t *testing.T) {
	w := NewWatchlist()
	d := core.Jaccard{}
	query := core.FromWeights(map[graph.NodeID]float64{1: 1, 2: 1}, 5)
	set := makeSet(t, 7, map[graph.NodeID]map[graph.NodeID]float64{
		100: {1: 1, 2: 1},
		101: {3: 1},
	})
	// Seed one entry so ranking always has work.
	if err := w.Add("seed", 0, query); err != nil {
		t.Fatal(err)
	}

	const adders, rankers, iters = 4, 4, 200
	var wg sync.WaitGroup
	wg.Add(adders + rankers)
	for a := 0; a < adders; a++ {
		go func(a int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Node IDs offset past the query's {1, 2} so only the
				// seed entry is ever an exact match.
				sig := core.FromWeights(map[graph.NodeID]float64{
					graph.NodeID(10 + a*iters + i): 1,
					1:                              0.5,
				}, 5)
				if err := w.Add(fmt.Sprintf("ind-%d-%d", a, i), i, sig); err != nil {
					t.Error(err)
					return
				}
				w.Len()
			}
		}(a)
	}
	for r := 0; r < rankers; r++ {
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := w.Query(d, query, 0.8); err != nil {
					t.Error(err)
					return
				}
				if _, err := w.Screen(d, set, 0.8); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	if got := w.Len(); got != 1+adders*iters {
		t.Fatalf("watchlist holds %d entries, want %d", got, 1+adders*iters)
	}
	hits, err := w.Query(d, query, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0].Individual != "seed" {
		t.Fatalf("exact match lost after concurrent adds: %+v", hits)
	}
}
