package apps

import (
	"fmt"
	"sort"

	"graphsig/internal/core"
	"graphsig/internal/eval"
	"graphsig/internal/graph"
	"graphsig/internal/stats"
)

// Anomaly flags one label whose behaviour changed abruptly between
// consecutive windows: its self-persistence is unusually small (§II-D).
type Anomaly struct {
	Node graph.NodeID
	// Persistence is 1 − Dist(σ_t(v), σ_{t+1}(v)).
	Persistence float64
	// ZScore locates the persistence within the population
	// (negative = below the mean).
	ZScore float64
}

// DetectAnomalies computes self-persistence for every source present in
// both windows and reports those more than zCut standard deviations
// below the population mean, sorted by ascending persistence. A zCut of
// 2–3 is a reasonable operating point; the population statistics are
// returned so callers can recalibrate.
func DetectAnomalies(d core.Distance, at, next *core.SignatureSet, zCut float64) ([]Anomaly, stats.Summary, error) {
	if zCut <= 0 {
		return nil, stats.Summary{}, fmt.Errorf("apps: zCut must be positive, got %g", zCut)
	}
	pers := eval.Persistence(d, at, next)
	if len(pers) == 0 {
		return nil, stats.Summary{}, fmt.Errorf("apps: no sources present in both windows")
	}
	var acc stats.Accumulator
	for _, p := range pers {
		acc.Add(p)
	}
	sum := acc.Summarize()
	sd := sum.StdDev
	if sd == 0 {
		// A perfectly homogeneous population has no outliers.
		return nil, sum, nil
	}
	var out []Anomaly
	for v, p := range pers {
		z := (p - sum.Mean) / sd
		if z < -zCut {
			out = append(out, Anomaly{Node: v, Persistence: p, ZScore: z})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Persistence != out[j].Persistence {
			return out[i].Persistence < out[j].Persistence
		}
		return out[i].Node < out[j].Node
	})
	return out, sum, nil
}

// PersistencePair is one label's self-persistence between two
// consecutive windows, keyed by the interned label rather than the
// process-local NodeID so results from different processes (cluster
// shards) can be merged.
type PersistencePair struct {
	Label       string
	Persistence float64
}

// PersistenceByLabel computes self-persistence for every source
// present in both windows, keyed and sorted by label. The sorted-slice
// form exists for determinism: eval.Persistence returns a map, and
// feeding its random iteration order into Welford accumulation makes
// the population mean/stddev runtime-dependent at the ulp level.
// Everything downstream of this function is a pure function of the
// sorted slice, so two processes holding the same (label, persistence)
// pairs — or one process holding the union of several shards' disjoint
// pairs — report bit-identical statistics.
func PersistenceByLabel(d core.Distance, u *graph.Universe, at, next *core.SignatureSet) []PersistencePair {
	pers := eval.Persistence(d, at, next)
	out := make([]PersistencePair, 0, len(pers))
	for v, p := range pers {
		out = append(out, PersistencePair{Label: u.Label(v), Persistence: p})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// LabeledAnomaly is Anomaly with the node resolved to its label — the
// form served over the wire and merged across shards.
type LabeledAnomaly struct {
	Label       string  `json:"label"`
	Persistence float64 `json:"persistence"`
	ZScore      float64 `json:"z"`
}

// DetectAnomaliesByLabel is DetectAnomalies over label-keyed pairs:
// it accumulates the population statistics in label order (sorting a
// copy if the input is unsorted) and reports labels more than zCut
// standard deviations below the mean, sorted by ascending persistence
// then label. Because the accumulation order is fixed by the labels
// alone, the output is bit-identical for any two inputs holding the
// same pairs, regardless of how they were partitioned or ordered.
func DetectAnomaliesByLabel(pairs []PersistencePair, zCut float64) ([]LabeledAnomaly, stats.Summary, error) {
	if zCut <= 0 {
		return nil, stats.Summary{}, fmt.Errorf("apps: zCut must be positive, got %g", zCut)
	}
	if len(pairs) == 0 {
		return nil, stats.Summary{}, fmt.Errorf("apps: no sources present in both windows")
	}
	if !sort.SliceIsSorted(pairs, func(i, j int) bool { return pairs[i].Label < pairs[j].Label }) {
		sorted := append([]PersistencePair(nil), pairs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Label < sorted[j].Label })
		pairs = sorted
	}
	var acc stats.Accumulator
	for _, p := range pairs {
		acc.Add(p.Persistence)
	}
	sum := acc.Summarize()
	sd := sum.StdDev
	if sd == 0 {
		return nil, sum, nil
	}
	var out []LabeledAnomaly
	for _, p := range pairs {
		z := (p.Persistence - sum.Mean) / sd
		if z < -zCut {
			out = append(out, LabeledAnomaly{Label: p.Label, Persistence: p.Persistence, ZScore: z})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Persistence != out[j].Persistence {
			return out[i].Persistence < out[j].Persistence
		}
		return out[i].Label < out[j].Label
	})
	return out, sum, nil
}
