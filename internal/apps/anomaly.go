package apps

import (
	"fmt"
	"sort"

	"graphsig/internal/core"
	"graphsig/internal/eval"
	"graphsig/internal/graph"
	"graphsig/internal/stats"
)

// Anomaly flags one label whose behaviour changed abruptly between
// consecutive windows: its self-persistence is unusually small (§II-D).
type Anomaly struct {
	Node graph.NodeID
	// Persistence is 1 − Dist(σ_t(v), σ_{t+1}(v)).
	Persistence float64
	// ZScore locates the persistence within the population
	// (negative = below the mean).
	ZScore float64
}

// DetectAnomalies computes self-persistence for every source present in
// both windows and reports those more than zCut standard deviations
// below the population mean, sorted by ascending persistence. A zCut of
// 2–3 is a reasonable operating point; the population statistics are
// returned so callers can recalibrate.
func DetectAnomalies(d core.Distance, at, next *core.SignatureSet, zCut float64) ([]Anomaly, stats.Summary, error) {
	if zCut <= 0 {
		return nil, stats.Summary{}, fmt.Errorf("apps: zCut must be positive, got %g", zCut)
	}
	pers := eval.Persistence(d, at, next)
	if len(pers) == 0 {
		return nil, stats.Summary{}, fmt.Errorf("apps: no sources present in both windows")
	}
	var acc stats.Accumulator
	for _, p := range pers {
		acc.Add(p)
	}
	sum := acc.Summarize()
	sd := sum.StdDev
	if sd == 0 {
		// A perfectly homogeneous population has no outliers.
		return nil, sum, nil
	}
	var out []Anomaly
	for v, p := range pers {
		z := (p - sum.Mean) / sd
		if z < -zCut {
			out = append(out, Anomaly{Node: v, Persistence: p, ZScore: z})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Persistence != out[j].Persistence {
			return out[i].Persistence < out[j].Persistence
		}
		return out[i].Node < out[j].Node
	})
	return out, sum, nil
}
