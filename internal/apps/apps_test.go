package apps

import (
	"math"
	"sort"
	"testing"

	"graphsig/internal/core"
	"graphsig/internal/graph"
)

// makeSet builds a SignatureSet from source → weighted members.
func makeSet(t *testing.T, window int, sigs map[graph.NodeID]map[graph.NodeID]float64) *core.SignatureSet {
	t.Helper()
	var sources []graph.NodeID
	for v := range sigs {
		sources = append(sources, v)
	}
	sort.Slice(sources, func(i, j int) bool { return sources[i] < sources[j] })
	out := make([]core.Signature, len(sources))
	for i, v := range sources {
		out[i] = core.FromWeights(sigs[v], 10)
	}
	set, err := core.NewSignatureSet("test", window, sources, out)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestDetectMultiusage(t *testing.T) {
	set := makeSet(t, 0, map[graph.NodeID]map[graph.NodeID]float64{
		1: {10: 1, 11: 1},
		2: {10: 1, 11: 1}, // twin of 1
		3: {30: 1},
		4: {},
		5: {},
	})
	pairs, err := DetectMultiusage(core.Jaccard{}, set, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0].A != 1 || pairs[0].B != 2 || pairs[0].Dist != 0 {
		t.Fatalf("pairs = %+v", pairs)
	}
	// Empty signatures never pair (two silent labels are not evidence).
	for _, p := range pairs {
		if p.A == 4 || p.B == 4 || p.A == 5 || p.B == 5 {
			t.Fatal("empty signature paired")
		}
	}
	if _, err := DetectMultiusage(core.Jaccard{}, set, 1.5); err == nil {
		t.Fatal("threshold out of range accepted")
	}
}

func TestDetectMultiusageOrdering(t *testing.T) {
	set := makeSet(t, 0, map[graph.NodeID]map[graph.NodeID]float64{
		1: {10: 1, 11: 1, 12: 1},
		2: {10: 1, 11: 1, 12: 1},
		3: {10: 1, 11: 1, 99: 1},
	})
	pairs, err := DetectMultiusage(core.Jaccard{}, set, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 3 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	if pairs[0].Dist > pairs[1].Dist || pairs[1].Dist > pairs[2].Dist {
		t.Fatal("pairs not sorted by distance")
	}
	if pairs[0].A != 1 || pairs[0].B != 2 {
		t.Fatalf("closest pair = (%d,%d)", pairs[0].A, pairs[0].B)
	}
}

func TestNearestNeighbors(t *testing.T) {
	set := makeSet(t, 0, map[graph.NodeID]map[graph.NodeID]float64{
		1: {10: 1, 11: 1},
		2: {10: 1, 11: 1},
		3: {10: 1, 99: 1},
		4: {50: 1},
	})
	nn, err := NearestNeighbors(core.Jaccard{}, set, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 2 || nn[0].B != 2 || nn[1].B != 3 {
		t.Fatalf("neighbours = %+v", nn)
	}
	if _, err := NearestNeighbors(core.Jaccard{}, set, 99, 2); err == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestDeltaFromSelfPersistence(t *testing.T) {
	at := makeSet(t, 0, map[graph.NodeID]map[graph.NodeID]float64{
		1: {10: 1}, 2: {20: 1},
	})
	next := makeSet(t, 1, map[graph.NodeID]map[graph.NodeID]float64{
		1: {10: 1}, // persistence 1
		2: {99: 1}, // persistence 0
	})
	d := core.Jaccard{}
	delta, err := DeltaFromSelfPersistence(d, at, next, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(delta-0.1) > 1e-12 { // mean persistence 0.5 / 5
		t.Fatalf("δ = %g", delta)
	}
	if _, err := DeltaFromSelfPersistence(d, at, next, 0); err == nil {
		t.Fatal("c=0 accepted")
	}
}

// TestDetectLabelMasquerading plants a masquerade: node 1's behaviour
// re-appears under node 2's label, while node 3 stays itself.
func TestDetectLabelMasquerading(t *testing.T) {
	at := makeSet(t, 0, map[graph.NodeID]map[graph.NodeID]float64{
		1: {10: 1, 11: 1},
		2: {20: 1, 21: 1},
		3: {30: 1, 31: 1},
	})
	next := makeSet(t, 1, map[graph.NodeID]map[graph.NodeID]float64{
		1: {20: 1, 21: 1}, // 2's behaviour now under 1's... (cycle 1↔2)
		2: {10: 1, 11: 1}, // 1's behaviour now under 2
		3: {30: 1, 31: 1}, // unchanged
	})
	d := core.Jaccard{}
	res, err := DetectLabelMasquerading(d, at, next, 0.2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.NonSuspects[3] {
		t.Fatal("persistent node flagged")
	}
	if res.Pairs[1] != 2 || res.Pairs[2] != 1 {
		t.Fatalf("pairs = %v", res.Pairs)
	}
	truth := map[graph.NodeID]graph.NodeID{1: 2, 2: 1}
	acc, err := MasqueradeAccuracy(res, truth, []graph.NodeID{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1 {
		t.Fatalf("accuracy = %g", acc)
	}
}

func TestDetectLabelMasqueradingTopEll(t *testing.T) {
	// The true partner is only v's second-most persistent candidate;
	// ℓ=1 misses it, ℓ=2 finds it. Node 9 is a decoy whose own
	// self-persistence is high (so it fails the A[u,u] ≤ δ condition).
	at := makeSet(t, 0, map[graph.NodeID]map[graph.NodeID]float64{
		1: {10: 1, 11: 1, 12: 1, 13: 1},
		2: {20: 1, 21: 1},
		9: {10: 1, 11: 1, 12: 1, 40: 1},
	})
	next := makeSet(t, 1, map[graph.NodeID]map[graph.NodeID]float64{
		1: {99: 1},                      // vanished behaviour
		2: {10: 1, 11: 1, 40: 1},        // partial match to 1's past
		9: {10: 1, 11: 1, 12: 1, 40: 1}, // highly persistent decoy
	})
	d := core.Jaccard{}
	const delta = 0.3
	res1, err := DetectLabelMasquerading(d, at, next, delta, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res1.Pairs[1]; ok {
		t.Fatalf("ℓ=1 paired 1 with %v via a persistent decoy", res1.Pairs[1])
	}
	res2, err := DetectLabelMasquerading(d, at, next, delta, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Pairs[1] != 2 {
		t.Fatalf("ℓ=2 pairs = %v", res2.Pairs)
	}
	if _, err := DetectLabelMasquerading(d, at, next, delta, 0); err == nil {
		t.Fatal("ℓ=0 accepted")
	}
}

func TestMasqueradeAccuracyCounts(t *testing.T) {
	res := &MasqueradeResult{
		NonSuspects: map[graph.NodeID]bool{1: true, 2: true},
		Pairs:       map[graph.NodeID]graph.NodeID{3: 4},
	}
	truth := map[graph.NodeID]graph.NodeID{3: 5} // wrong partner
	acc, err := MasqueradeAccuracy(res, truth, []graph.NodeID{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acc-2.0/3) > 1e-12 {
		t.Fatalf("accuracy = %g", acc)
	}
	if _, err := MasqueradeAccuracy(res, truth, nil); err == nil {
		t.Fatal("empty node set accepted")
	}
}

func TestDetectAnomalies(t *testing.T) {
	sigs := map[graph.NodeID]map[graph.NodeID]float64{}
	nextSigs := map[graph.NodeID]map[graph.NodeID]float64{}
	// 20 stable nodes, one that changes completely.
	for i := graph.NodeID(1); i <= 20; i++ {
		members := map[graph.NodeID]float64{100 + i: 1, 200 + i: 1}
		sigs[i] = members
		if i == 7 {
			nextSigs[i] = map[graph.NodeID]float64{900: 1, 901: 1}
		} else {
			nextSigs[i] = members
		}
	}
	at := makeSet(t, 0, sigs)
	next := makeSet(t, 1, nextSigs)
	anomalies, population, err := DetectAnomalies(core.Jaccard{}, at, next, 2)
	if err != nil {
		t.Fatal(err)
	}
	if population.N != 20 {
		t.Fatalf("population = %d", population.N)
	}
	if len(anomalies) != 1 || anomalies[0].Node != 7 || anomalies[0].Persistence != 0 {
		t.Fatalf("anomalies = %+v", anomalies)
	}
	if anomalies[0].ZScore >= -2 {
		t.Fatalf("z = %g", anomalies[0].ZScore)
	}
	if _, _, err := DetectAnomalies(core.Jaccard{}, at, next, 0); err == nil {
		t.Fatal("zCut=0 accepted")
	}
}

func TestDetectAnomaliesHomogeneous(t *testing.T) {
	sigs := map[graph.NodeID]map[graph.NodeID]float64{
		1: {10: 1}, 2: {20: 1},
	}
	at := makeSet(t, 0, sigs)
	anomalies, _, err := DetectAnomalies(core.Jaccard{}, at, at, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(anomalies) != 0 {
		t.Fatal("homogeneous population produced anomalies")
	}
}
