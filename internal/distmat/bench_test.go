package distmat

import (
	"math/rand"
	"testing"

	"graphsig/internal/core"
	"graphsig/internal/graph"
)

// benchSet mirrors the sigbench pairwise workload shape: n signatures of
// up to maxLen entries over a node universe of span IDs, no empties.
func benchSet(seed int64, n, maxLen, span int) *core.SignatureSet {
	rng := rand.New(rand.NewSource(seed))
	sources := make([]graph.NodeID, n)
	sigs := make([]core.Signature, n)
	for i := range sources {
		sources[i] = graph.NodeID(10_000 + i)
		ln := 1 + rng.Intn(maxLen)
		weights := map[graph.NodeID]float64{}
		for len(weights) < ln {
			weights[graph.NodeID(rng.Intn(span))] = float64(1+rng.Intn(16)) / 4
		}
		sigs[i] = core.FromWeights(weights, ln)
	}
	set, err := core.NewSignatureSet("bench", 0, sources, sigs)
	if err != nil {
		panic(err)
	}
	return set
}

// benchRows runs the full all-rows job on a prebuilt engine and reports
// ns/pair over the n·n cell population.
func benchRows(b *testing.B, d core.Distance, scatter bool) {
	set := benchSet(7, 300, 20, 400)
	view := NewSetView(set)
	eng, ok := NewEngineOn(view, view, d, 1)
	if !ok {
		b.Fatalf("no engine for %s", d.Name())
	}
	eng.SetScatter(scatter)
	n := set.Len()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var sink float64
	b.ResetTimer()
	for b.Loop() {
		eng.Rows(idx, func(t int, row []float64) { sink += row[t] })
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n*n), "ns/pair")
	_ = sink
}

func BenchmarkRowsJaccard(b *testing.B) { benchRows(b, core.Jaccard{}, true) }
func BenchmarkRowsCosine(b *testing.B)  { benchRows(b, core.Cosine{}, true) }
func BenchmarkRowsDice(b *testing.B)    { benchRows(b, core.Dice{}, true) }
func BenchmarkRowsSDice(b *testing.B)   { benchRows(b, core.ScaledDice{}, true) }
func BenchmarkRowsJaccardMatchFold(b *testing.B) {
	benchRows(b, core.Jaccard{}, false)
}

// BenchmarkPairsWithinJaccard measures the thresholded path with the
// prefilter on.
func BenchmarkPairsWithinJaccard(b *testing.B) {
	set := benchSet(7, 300, 20, 400)
	view := NewSetView(set)
	eng, ok := NewEngineOn(view, view, core.Jaccard{}, 1)
	if !ok {
		b.Fatal("no engine")
	}
	var sink int
	b.ResetTimer()
	for b.Loop() {
		sink += len(eng.PairsWithin(0.5))
	}
	_ = sink
}
