package distmat

import (
	"math/rand"
	"reflect"
	"testing"

	"graphsig/internal/core"
	"graphsig/internal/graph"
)

// randSet builds a SignatureSet of n sources with random signatures over
// a node universe of the given span (small span → heavy overlap, large
// span → mostly disjoint pairs). Roughly 1 in 8 signatures is empty.
func randSet(t *testing.T, seed int64, n, maxLen, span int) *core.SignatureSet {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sources := make([]graph.NodeID, n)
	sigs := make([]core.Signature, n)
	for i := range sources {
		sources[i] = graph.NodeID(10_000 + i)
		if rng.Intn(8) == 0 {
			continue // empty signature
		}
		ln := 1 + rng.Intn(maxLen)
		weights := map[graph.NodeID]float64{}
		for len(weights) < ln {
			weights[graph.NodeID(rng.Intn(span))] = float64(1+rng.Intn(16)) / 4
		}
		sigs[i] = core.FromWeights(weights, ln)
	}
	set, err := core.NewSignatureSet("test", 0, sources, sigs)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// naiveMatrix computes the full rectangular distance matrix with the
// reference per-pair Dist.
func naiveMatrix(d core.Distance, rows, cols *core.SignatureSet) [][]float64 {
	m := make([][]float64, rows.Len())
	for i := range m {
		m[i] = make([]float64, cols.Len())
		for j := range m[i] {
			m[i][j] = d.Dist(rows.Sigs[i], cols.Sigs[j])
		}
	}
	return m
}

// engineMatrix collects the engine's rows into a materialized matrix.
func engineMatrix(t *testing.T, eng *Engine, nRows, nCols int) [][]float64 {
	t.Helper()
	m := make([][]float64, nRows)
	idx := make([]int, nRows)
	for i := range idx {
		idx[i] = i
	}
	eng.Rows(idx, func(i int, row []float64) {
		m[i] = append([]float64(nil), row...)
	})
	return m
}

func TestEngineMatchesNaiveAllPairs(t *testing.T) {
	for _, span := range []int{25, 2000} { // dense overlap and sparse overlap
		set := randSet(t, int64(span), 90, 9, span)
		for _, d := range core.ExtendedDistances() {
			eng, ok := NewEngine(set, set, d, 0)
			if !ok {
				t.Fatalf("engine rejected %s", d.Name())
			}
			want := naiveMatrix(d, set, set)
			got := engineMatrix(t, eng, set.Len(), set.Len())
			if !reflect.DeepEqual(got, want) {
				for i := range want {
					for j := range want[i] {
						if got[i][j] != want[i][j] {
							t.Fatalf("%s span=%d: cell (%d,%d): engine %v, naive %v",
								d.Name(), span, i, j, got[i][j], want[i][j])
						}
					}
				}
			}
		}
	}
}

func TestEngineMatchesNaiveCrossSet(t *testing.T) {
	rows := randSet(t, 3, 40, 8, 60)
	cols := randSet(t, 4, 70, 8, 60)
	for _, d := range core.ExtendedDistances() {
		eng, ok := NewEngine(rows, cols, d, 0)
		if !ok {
			t.Fatalf("engine rejected %s", d.Name())
		}
		want := naiveMatrix(d, rows, cols)
		got := engineMatrix(t, eng, rows.Len(), cols.Len())
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: cross-set matrix mismatch", d.Name())
		}
	}
}

// TestEngineParallelIdenticalToSequential is the determinism contract:
// the same rows, in the same order, with bit-identical values, whatever
// the worker count.
func TestEngineParallelIdenticalToSequential(t *testing.T) {
	set := randSet(t, 11, 130, 9, 80)
	d := core.ScaledHellinger{}
	seq, ok := NewEngine(set, set, d, 1)
	if !ok {
		t.Fatal("no engine")
	}
	wantM := engineMatrix(t, seq, set.Len(), set.Len())
	for _, workers := range []int{2, 3, 7, 16} {
		par, ok := NewEngine(set, set, d, workers)
		if !ok {
			t.Fatal("no engine")
		}
		var order []int
		m := make([][]float64, set.Len())
		idx := make([]int, set.Len())
		for i := range idx {
			idx[i] = i
		}
		par.Rows(idx, func(i int, row []float64) {
			order = append(order, i)
			m[i] = append([]float64(nil), row...)
		})
		for i := range order {
			if order[i] != i {
				t.Fatalf("workers=%d: rows delivered out of order: %v", workers, order)
			}
		}
		if !reflect.DeepEqual(m, wantM) {
			t.Fatalf("workers=%d: parallel matrix differs from sequential", workers)
		}
	}
}

func TestEngineRowsSubset(t *testing.T) {
	at := randSet(t, 21, 50, 8, 40)
	next := randSet(t, 22, 60, 8, 40)
	d := core.Dice{}
	eng, ok := NewEngine(at, next, d, 4)
	if !ok {
		t.Fatal("no engine")
	}
	idx := []int{3, 17, 4, 49, 0}
	var got [][]float64
	eng.Rows(idx, func(t int, row []float64) {
		got = append(got, append([]float64(nil), row...))
	})
	if len(got) != len(idx) {
		t.Fatalf("got %d rows, want %d", len(got), len(idx))
	}
	for t2, i := range idx {
		for j := 0; j < next.Len(); j++ {
			want := d.Dist(at.Sigs[i], next.Sigs[j])
			if got[t2][j] != want {
				t.Fatalf("row %d col %d: got %v want %v", i, j, got[t2][j], want)
			}
		}
	}
}

func TestPairsWithinMatchesNaive(t *testing.T) {
	set := randSet(t, 31, 80, 8, 50)
	for _, d := range core.ExtendedDistances() {
		for _, threshold := range []float64{0.25, 0.8, 1} {
			eng, ok := NewEngine(set, set, d, 3)
			if !ok {
				t.Fatalf("engine rejected %s", d.Name())
			}
			var want []Pair
			for i := 0; i < set.Len(); i++ {
				if set.Sigs[i].IsEmpty() {
					continue
				}
				for j := i + 1; j < set.Len(); j++ {
					if set.Sigs[j].IsEmpty() {
						continue
					}
					if dist := d.Dist(set.Sigs[i], set.Sigs[j]); dist <= threshold {
						want = append(want, Pair{I: i, J: j, Dist: dist})
					}
				}
			}
			got := eng.PairsWithin(threshold)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s threshold=%g: got %d pairs want %d (or values differ)",
					d.Name(), threshold, len(got), len(want))
			}
		}
	}
}

func TestQuerierMatchesNaive(t *testing.T) {
	set := randSet(t, 41, 70, 8, 45)
	view := NewSetView(set)
	rng := rand.New(rand.NewSource(42))
	queries := []core.Signature{
		{}, // empty query: distance 0 to empty columns, 1 to the rest
		set.Sigs[1],
	}
	for q := 0; q < 6; q++ {
		ln := 1 + rng.Intn(8)
		weights := map[graph.NodeID]float64{}
		for len(weights) < ln {
			weights[graph.NodeID(rng.Intn(45))] = float64(1+rng.Intn(16)) / 4
		}
		queries = append(queries, core.FromWeights(weights, ln))
	}
	for _, d := range core.ExtendedDistances() {
		querier, ok := NewQuerier(d)
		if !ok {
			t.Fatalf("querier rejected %s", d.Name())
		}
		for qi, sig := range queries {
			for _, maxDist := range []float64{0.3, 0.9, 1} {
				want := map[int]float64{}
				for j := range set.Sigs {
					if dist := d.Dist(sig, set.Sigs[j]); dist <= maxDist {
						want[j] = dist
					}
				}
				got := map[int]float64{}
				querier.Neighbors(view, sig, maxDist, func(j int, dist float64) {
					if _, dup := got[j]; dup {
						t.Fatalf("%s query %d: column %d visited twice", d.Name(), qi, j)
					}
					got[j] = dist
				})
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s query %d maxDist=%g: neighbors mismatch: got %d want %d",
						d.Name(), qi, maxDist, len(got), len(want))
				}
			}
		}
	}
}

func TestKernelizable(t *testing.T) {
	for _, d := range core.ExtendedDistances() {
		if !Kernelizable(d) {
			t.Fatalf("%s should be kernelizable", d.Name())
		}
	}
	if _, ok := NewEngine(randSet(t, 51, 4, 3, 10), randSet(t, 52, 4, 3, 10), unknownDist{}, 0); ok {
		t.Fatal("engine granted for unknown distance")
	}
	if _, ok := NewQuerier(unknownDist{}); ok {
		t.Fatal("querier granted for unknown distance")
	}
}

type unknownDist struct{}

func (unknownDist) Name() string                     { return "unknown" }
func (unknownDist) Dist(a, b core.Signature) float64 { return 0.5 }

// TestEngineDistPairs exercises the sequential per-pair path used by the
// persistence/masquerade call sites.
func TestEngineDistPairs(t *testing.T) {
	at := randSet(t, 61, 40, 8, 30)
	next := randSet(t, 62, 40, 8, 30)
	for _, d := range core.ExtendedDistances() {
		eng, ok := NewEngine(at, next, d, 0)
		if !ok {
			t.Fatalf("engine rejected %s", d.Name())
		}
		for i := 0; i < at.Len(); i++ {
			for j := 0; j < next.Len(); j++ {
				want := d.Dist(at.Sigs[i], next.Sigs[j])
				if got := eng.Dist(i, j); got != want {
					t.Fatalf("%s: Dist(%d,%d) = %v, want %v", d.Name(), i, j, got, want)
				}
			}
		}
	}
}
