package distmat

import (
	"encoding/binary"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"graphsig/internal/core"
	"graphsig/internal/graph"
	"graphsig/internal/lsh"
)

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// randSigSpan builds a random Validate-clean signature of up to maxLen
// entries over [base, base+span), empty roughly 1 time in 8.
func randSigSpan(rng *rand.Rand, maxLen, base, span int) core.Signature {
	if rng.Intn(8) == 0 {
		return core.Signature{}
	}
	ln := 1 + rng.Intn(maxLen)
	weights := map[graph.NodeID]float64{}
	for len(weights) < ln {
		weights[graph.NodeID(base+rng.Intn(span))] = float64(1+rng.Intn(16)) / 4
	}
	return core.FromWeights(weights, ln)
}

// boundHolds asserts the prefilter's no-false-rejection contract for
// one signature pair across all six registered distances: the bound
// never exceeds the exact distance by more than the slack, so a
// candidate skipped at any threshold provably lies outside it.
func boundHolds(t *testing.T, a, b core.Signature) {
	t.Helper()
	flat := core.NewFlatSigs([]core.Signature{a, b})
	ma, mb := lsh.NewMask(a.Nodes), lsh.NewMask(b.Nodes)
	for _, d := range core.ExtendedDistances() {
		kern, ok := core.NewDistKernel(d)
		if !ok {
			t.Fatalf("%s: no kernel", d.Name())
		}
		exact := d.Dist(a, b)
		bound := distLowerBound(kern.Kind(), flat, 0, flat, 1, ma, mb)
		if bound > exact+prefilterSlack {
			t.Fatalf("%s: bound %v exceeds exact %v (+slack) for %v vs %v", d.Name(), bound, exact, a, b)
		}
		// Both orientations: the bound must be safe regardless of side.
		bound = distLowerBound(kern.Kind(), flat, 1, flat, 0, mb, ma)
		if bound > exact+prefilterSlack {
			t.Fatalf("%s reversed: bound %v exceeds exact %v for %v vs %v", d.Name(), bound, exact, b, a)
		}
	}
}

// corpusSig mirrors internal/core's fuzzSig decoder: 3 bytes per entry
// — a node id and a 2-byte weight mantissa — through FromWeights.
func corpusSig(data []byte, k int) core.Signature {
	weights := make(map[graph.NodeID]float64)
	for len(data) >= 3 {
		node := graph.NodeID(data[0])
		w := float64(binary.LittleEndian.Uint16(data[1:3]))
		weights[node] += 0.25 + w/16
		data = data[3:]
	}
	return core.FromWeights(weights, k)
}

// parseCorpusFile decodes one go-fuzz corpus entry of FuzzSortedKernels
// ([]byte, []byte, byte).
func parseCorpusFile(t *testing.T, path string) (araw, braw []byte, kraw uint8, ok bool) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read corpus %s: %v", path, err)
	}
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "go test fuzz") {
		return nil, nil, 0, false
	}
	var bytesArgs [][]byte
	var byteArg uint8
	for _, line := range lines[1:] {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "[]byte("):
			q := strings.TrimSuffix(strings.TrimPrefix(line, "[]byte("), ")")
			s, err := strconv.Unquote(q)
			if err != nil {
				return nil, nil, 0, false
			}
			bytesArgs = append(bytesArgs, []byte(s))
		case strings.HasPrefix(line, "byte("):
			q := strings.TrimSuffix(strings.TrimPrefix(line, "byte("), ")")
			s, err := strconv.Unquote(q)
			if err != nil || len(s) != 1 {
				return nil, nil, 0, false
			}
			byteArg = s[0]
		case strings.HasPrefix(line, "uint8("):
			q := strings.TrimSuffix(strings.TrimPrefix(line, "uint8("), ")")
			v, err := strconv.ParseUint(q, 10, 8)
			if err != nil {
				return nil, nil, 0, false
			}
			byteArg = uint8(v)
		}
	}
	if len(bytesArgs) != 2 {
		return nil, nil, 0, false
	}
	return bytesArgs[0], bytesArgs[1], byteArg, true
}

// TestPrefilterBoundOnFuzzCorpus replays internal/core's committed fuzz
// corpus — the adversarial signature pairs the kernel fuzzer has
// accumulated — through the no-false-rejection property.
func TestPrefilterBoundOnFuzzCorpus(t *testing.T) {
	dir := filepath.Join("..", "core", "testdata", "fuzz", "FuzzSortedKernels")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fuzz corpus unavailable: %v", err)
	}
	parsed := 0
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		araw, braw, kraw, ok := parseCorpusFile(t, filepath.Join(dir, e.Name()))
		if !ok {
			continue
		}
		k := 1 + int(kraw)%40
		boundHolds(t, corpusSig(araw, k), corpusSig(braw, k))
		parsed++
	}
	if parsed == 0 {
		t.Fatal("no corpus entries parsed — decoder out of sync with internal/core fuzz format")
	}
	t.Logf("checked %d corpus pairs", parsed)
}

// TestPrefilterBoundRandom checks the bound on random signature pairs
// spanning overlapping, disjoint and empty shapes.
func TestPrefilterBoundRandom(t *testing.T) {
	rng := newRng(321)
	for trial := 0; trial < 3000; trial++ {
		a := randSigSpan(rng, 14, rng.Intn(40), 60)
		b := randSigSpan(rng, 14, rng.Intn(40), 60)
		boundHolds(t, a, b)
	}
	boundHolds(t, core.Signature{}, core.Signature{})
	boundHolds(t, core.Signature{}, randSigSpan(rng, 8, 0, 20))
}

// TestPairsWithinPrefilterIdentical: for every registered distance and
// a grid of thresholds, PairsWithin with the prefilter on must return
// exactly the pairs it returns with the prefilter off, which in turn
// must match a naive O(n²) scan — same pairs, bit-identical distances.
func TestPairsWithinPrefilterIdentical(t *testing.T) {
	set := randSet(t, 77, 120, 10, 160)
	for _, d := range core.ExtendedDistances() {
		for _, scatter := range []bool{true, false} {
			for _, maxDist := range []float64{0.0, 0.25, 0.5, 0.8, 0.97} {
				on, ok := NewEngine(set, set, d, 2)
				if !ok {
					t.Fatalf("%s: no engine", d.Name())
				}
				on.SetScatter(scatter)
				off, _ := NewEngine(set, set, d, 2)
				off.SetScatter(scatter)
				off.SetPrefilter(false)
				got := on.PairsWithin(maxDist)
				want := off.PairsWithin(maxDist)
				if len(got) != len(want) {
					t.Fatalf("%s scatter=%v maxDist=%v: prefilter on %d pairs, off %d",
						d.Name(), scatter, maxDist, len(got), len(want))
				}
				for i := range got {
					if got[i].I != want[i].I || got[i].J != want[i].J ||
						math.Float64bits(got[i].Dist) != math.Float64bits(want[i].Dist) {
						t.Fatalf("%s scatter=%v maxDist=%v: pair %d mismatch %+v vs %+v",
							d.Name(), scatter, maxDist, i, got[i], want[i])
					}
				}
				// Against the naive scan.
				var naive []Pair
				for i := 0; i < set.Len(); i++ {
					for j := i + 1; j < set.Len(); j++ {
						a, b := set.Sigs[i], set.Sigs[j]
						if len(a.Nodes) == 0 || len(b.Nodes) == 0 {
							continue
						}
						if dist := d.Dist(a, b); dist <= maxDist {
							naive = append(naive, Pair{I: i, J: j, Dist: dist})
						}
					}
				}
				if len(naive) != len(got) {
					t.Fatalf("%s scatter=%v maxDist=%v: engine %d pairs, naive %d",
						d.Name(), scatter, maxDist, len(got), len(naive))
				}
				for i := range naive {
					if naive[i] != got[i] {
						t.Fatalf("%s scatter=%v maxDist=%v: naive pair %d %+v != engine %+v",
							d.Name(), scatter, maxDist, i, naive[i], got[i])
					}
				}
			}
		}
	}
}

// TestQuerierPrefilterIdentical: Neighbors with the prefilter on and
// off must visit the same columns with bit-identical distances, across
// all six distances and several thresholds.
func TestQuerierPrefilterIdentical(t *testing.T) {
	set := randSet(t, 99, 90, 10, 120)
	view := NewSetView(set)
	rng := newRng(5)
	type hit struct {
		j    int
		bits uint64
	}
	collect := func(q *Querier, sig core.Signature, maxDist float64) []hit {
		var hits []hit
		q.Neighbors(view, sig, maxDist, func(j int, dist float64) {
			hits = append(hits, hit{j, math.Float64bits(dist)})
		})
		return hits
	}
	for _, d := range core.ExtendedDistances() {
		on, _ := NewQuerier(d)
		off, _ := NewQuerier(d)
		off.SetPrefilter(false)
		for trial := 0; trial < 40; trial++ {
			sig := randSigSpan(rng, 12, rng.Intn(40), 100)
			for _, maxDist := range []float64{0.2, 0.6, 0.95} {
				got := collect(on, sig, maxDist)
				want := collect(off, sig, maxDist)
				if len(got) != len(want) {
					t.Fatalf("%s maxDist=%v: prefilter on visited %d, off %d", d.Name(), maxDist, len(got), len(want))
				}
				// Candidate-path visit order is unspecified; compare as sets.
				seen := map[hit]int{}
				for _, h := range want {
					seen[h]++
				}
				for _, h := range got {
					if seen[h] == 0 {
						t.Fatalf("%s maxDist=%v: prefilter-on visit %+v missing from prefilter-off", d.Name(), maxDist, h)
					}
					seen[h]--
				}
			}
		}
		on.Release()
		off.Release()
	}
}
