//go:build race

package distmat

// raceEnabled reports whether the race detector instruments this build.
// Under -race the runtime deliberately drops sync.Pool puts to widen
// interleaving coverage, so pooled-scratch reuse — and with it the
// zero-allocation contract — does not hold; the alloc-count tests skip.
const raceEnabled = true
