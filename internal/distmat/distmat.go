// Package distmat is the parallel sparse pairwise-distance engine: the
// layer every all-pairs signature job in this module rides (§IV property
// metrics, §V applications, the sigserverd search path).
//
// It combines four ideas:
//
//  1. Structure-of-arrays kernels: every signature set is flattened
//     into one contiguous node-ID array, one weight array and a shared
//     offset table (core.FlatSigs), and the merge-join kernels
//     (core.DistKernel) index those flat arrays directly. An all-pairs
//     job walks a handful of cache-resident slices instead of chasing
//     per-signature headers, and for Jaccard/Dice/Cosine the whole row
//     is computed by scattering counts/sums into flat per-candidate
//     accumulators during posting enumeration — no per-pair kernel call
//     at all.
//  2. An inverted index (node → posting list of signature indices):
//     all-pairs jobs enumerate only pairs that share at least one node
//     and resolve the (dominant) disjoint remainder in closed form —
//     for every Validate-clean signature pair sharing no node the
//     distance is exactly 1.0 (0.0 when both are empty), see
//     internal/core/sorted.go. Posting entries carry the node's
//     canonical index inside the column signature, so the enumeration
//     itself assembles each candidate's shared-node match list for the
//     kinds that need one (core.DistKernel.FlatDistMatched).
//  3. A deterministic mask prefilter (lsh.Mask): thresholded jobs skip
//     candidates whose distance provably cannot reach the threshold,
//     using a 128-bit node mask per signature and weight prefix sums —
//     a conservative bound with no false rejections (see prefilter.go),
//     so filtered results stay bit-identical to the naive scan.
//  4. Sharded parallel execution: rows are chunked deterministically
//     across workers (mirroring core.Parallel's contract) and delivered
//     to the consumer sequentially in row order, so parallel output —
//     including order-sensitive Welford reductions downstream — is
//     bit-identical to a single-threaded run.
//
// All matcher and row scratch is recycled through a package-level pool
// shared across engines, queriers and shards: steady-state jobs (eval
// loops, store searches, router scatter-gather) allocate nothing per
// row once the pool is warm.
//
// Determinism contract: every cell (i,j) is computed by exactly one
// worker from immutable inputs, and consumers observe rows in ascending
// order; results never depend on GOMAXPROCS or scheduling.
package distmat

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"graphsig/internal/core"
	"graphsig/internal/graph"
	"graphsig/internal/lsh"
	"graphsig/internal/obs"
)

// Metrics is optional engine instrumentation (see internal/obs). Nil
// fields — and the zero Metrics — are no-ops, so attaching it costs a
// predictable branch per row when disabled.
type Metrics struct {
	// RowSeconds observes the wall time of each computed row (one
	// query signature against every column), in seconds.
	RowSeconds *obs.Histogram
	// Candidates observes the inverted-index candidate count per row:
	// how many columns shared at least one node with the query.
	Candidates *obs.Histogram
	// PrefilterChecked counts candidates tested against the mask
	// prefilter bound; PrefilterSkipped counts those it rejected
	// without an exact kernel evaluation.
	PrefilterChecked *obs.Counter
	PrefilterSkipped *obs.Counter
}

// instrumented reports whether a timing handle is attached, so the hot
// loop skips clock reads entirely when observability is off.
func (m Metrics) instrumented() bool { return m.RowSeconds != nil || m.Candidates != nil }

// flushPrefilter adds a job's prefilter tallies to the counters.
func (m Metrics) flushPrefilter(checked, skipped int64) {
	if m.PrefilterChecked != nil && checked > 0 {
		m.PrefilterChecked.Add(checked)
	}
	if m.PrefilterSkipped != nil && skipped > 0 {
		m.PrefilterSkipped.Add(skipped)
	}
}

// Kernelizable reports whether d has a merge-join kernel, i.e. whether
// the engine can serve it. Callers fall back to naive loops otherwise.
func Kernelizable(d core.Distance) bool {
	_, ok := core.NewDistKernel(d)
	return ok
}

// posting is one inverted-index entry: signature j contains the node,
// at canonical index idx within that signature.
type posting struct {
	j   int32
	idx int32
}

// SetView is the engine-side view of a SignatureSet: the flat SoA
// layout of every signature (core.FlatSigs), the inverted index, the
// per-signature prefilter masks, and the precomputed disjoint baseline
// rows. Build it once per set (O(n·k·log k)) and reuse it; it is
// immutable afterwards and safe for concurrent use.
//
// The inverted index has two representations. When the node-ID space is
// dense (max ID comparable to the number of posting entries — the
// common case for the trace datasets, whose hosts are numbered
// contiguously) it is a CSR layout: postings for node u live at
// bulk[offs[u]:offs[u+1]]. That build hashes nothing and the arrays are
// pointer-free, so lookups are one bounds check plus two loads and the
// garbage collector never scans the index. Sparse or negative ID spaces
// fall back to a map keyed by node.
type SetView struct {
	set   *core.SignatureSet
	flat  *core.FlatSigs
	masks []lsh.Mask                 // per-signature prefilter masks
	offs  []int32                    // CSR offsets (dense index); nil when the map is in use
	bulk  []posting                  // all postings, grouped by node (CSR) in ascending j
	post  map[graph.NodeID][]posting // node → postings in ascending j (fallback)
	// Disjoint baseline rows, by row-side emptiness: a non-empty row is
	// at distance 1 from every column it shares no node with (even empty
	// ones), while an empty row is at 0 from empty columns and 1 from
	// the rest.
	ones     []float64 // all 1 — baseline for non-empty rows
	emptyRow []float64 // 0 at empty columns, 1 elsewhere — row for empty rows
	emptyIdx []int32   // indices of empty signatures
}

// denseSlack bounds how much larger than the posting count the node-ID
// range may be before the CSR offsets array is considered wasteful and
// the map representation is used instead.
const denseSlack = 8

// NewSetView builds the engine view of set.
func NewSetView(set *core.SignatureSet) *SetView {
	n := set.Len()
	v := &SetView{
		set:      set,
		flat:     core.NewFlatSigs(set.Sigs),
		masks:    make([]lsh.Mask, n),
		ones:     make([]float64, n),
		emptyRow: make([]float64, n),
	}
	total := 0
	maxNode := graph.NodeID(-1)
	dense := true
	for i := 0; i < n; i++ {
		v.ones[i] = 1
		if v.flat.IsEmpty(i) {
			v.emptyIdx = append(v.emptyIdx, int32(i))
			continue // emptyRow stays 0: empty-vs-empty pairs are at distance 0
		}
		v.emptyRow[i] = 1
		nodes := v.flat.Nodes(i)
		v.masks[i] = lsh.NewMask(nodes)
		for _, u := range nodes {
			if u < 0 {
				dense = false
			} else if u > maxNode {
				maxNode = u
			}
			total++
		}
	}
	if dense && int64(maxNode)+1 <= denseSlack*int64(total)+64 {
		v.buildDense(int(maxNode)+1, total)
	} else {
		v.buildMap(total)
	}
	return v
}

// buildDense fills the CSR index: count per node, prefix-sum into
// offsets, then scatter the postings — no hashing, no per-node slices.
func (v *SetView) buildDense(nodes, total int) {
	offs := make([]int32, nodes+1)
	for i := 0; i < v.flat.NumSigs(); i++ {
		for _, u := range v.flat.Nodes(i) {
			offs[u+1]++
		}
	}
	for u := 0; u < nodes; u++ {
		offs[u+1] += offs[u]
	}
	bulk := make([]posting, total)
	next := make([]int32, nodes)
	for i := 0; i < v.flat.NumSigs(); i++ {
		for bi, u := range v.flat.Nodes(i) {
			slot := offs[u] + next[u]
			next[u]++
			bulk[slot] = posting{j: int32(i), idx: int32(bi)}
		}
	}
	v.offs, v.bulk = offs, bulk
}

// buildMap fills the map index in two passes: count, then fill
// exact-capacity lists carved from one bulk allocation.
func (v *SetView) buildMap(total int) {
	counts := make(map[graph.NodeID]int32)
	for i := 0; i < v.flat.NumSigs(); i++ {
		for _, u := range v.flat.Nodes(i) {
			counts[u]++
		}
	}
	v.post = make(map[graph.NodeID][]posting, len(counts))
	bulk := make([]posting, total)
	off := 0
	for i := 0; i < v.flat.NumSigs(); i++ {
		for bi, u := range v.flat.Nodes(i) {
			list, ok := v.post[u]
			if !ok {
				c := int(counts[u])
				list = bulk[off : off : off+c]
				off += c
			}
			v.post[u] = append(list, posting{j: int32(i), idx: int32(bi)})
		}
	}
}

// postings returns the inverted-index entries for node u, in ascending
// signature index.
func (v *SetView) postings(u graph.NodeID) []posting {
	if v.offs != nil {
		if u >= 0 && int(u) < len(v.offs)-1 {
			return v.bulk[v.offs[u]:v.offs[u+1]]
		}
		return nil
	}
	return v.post[u]
}

// Set returns the underlying signature set.
func (v *SetView) Set() *core.SignatureSet { return v.set }

// Len reports the number of signatures.
func (v *SetView) Len() int { return v.flat.NumSigs() }

// Flat returns the SoA view of the set's signatures.
func (v *SetView) Flat() *core.FlatSigs { return v.flat }

// rowMode selects how a row is computed against the column postings.
type rowMode int

const (
	// modeCount: the distance needs only the shared-node count
	// (Jaccard). One int32 increment per posting hit.
	modeCount rowMode = iota
	// modeSum: the numerator is Σ(wa+wb) over shared entries (Dice).
	modeSum
	// modeDot: the numerator is the dot product (Cosine).
	modeDot
	// modeMatches: the kernel needs the full shared-entry match list
	// (the scaled min/max kinds, or any kind with scatter disabled).
	modeMatches
)

func modeFor(kind core.KernelKind, scatter bool) rowMode {
	if !scatter {
		return modeMatches
	}
	switch kind {
	case core.KindJaccard:
		return modeCount
	case core.KindDice:
		return modeSum
	case core.KindCosine:
		return modeDot
	default:
		return modeMatches
	}
}

// scratch is the recyclable per-worker state: the kernel, the
// epoch-stamped candidate dedup arrays, the scatter accumulators, the
// flat match buffer, a row buffer, and a single-signature SoA view for
// query-side jobs. Instances cycle through a package-level pool shared
// by every engine, querier and shard, so steady-state jobs allocate
// nothing per row.
type scratch struct {
	kern  core.DistKernel
	mark  []uint32 // epoch stamps per column
	epoch uint32
	cands []int32   // candidate columns, in discovery order
	cnt   []int32   // per-candidate shared-entry count
	acc   []float64 // per-candidate numerator accumulator (modeSum/modeDot)
	slot  []int32   // per-candidate slot into matchBuf (modeMatches)

	// matchBuf holds candidate match lists at a fixed stride (the row
	// signature's length — an upper bound on any match count): candidate
	// in slot c owns matchBuf[c*stride : c*stride+cnt].
	matchBuf []core.Match
	stride   int

	row   []float64 // dense row buffer (sequential Rows, Querier, PairsWithin maxDist ≥ 1)
	qsig  [1]core.Signature
	qflat core.FlatSigs // SoA view of qsig — the query side of Querier jobs
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// getScratch checks a scratch out of the pool, re-pointed at d and
// grown to serve n columns. d must be kernelizable.
func getScratch(d core.Distance, n int) *scratch {
	s := scratchPool.Get().(*scratch)
	if !s.kern.Reset(d) {
		panic("distmat: scratch for a non-kernelizable distance")
	}
	s.grow(n)
	return s
}

func (s *scratch) release() {
	s.qsig[0] = core.Signature{} // do not retain caller signatures across jobs
	scratchPool.Put(s)
}

// grow makes the scratch serve a column set of n signatures.
func (s *scratch) grow(n int) {
	if len(s.mark) < n {
		s.mark = make([]uint32, n)
		s.cnt = make([]int32, n)
		s.acc = make([]float64, n)
		s.slot = make([]int32, n)
		s.epoch = 0
	}
}

// gatherCount enumerates postings for the row nodes qn (canonical
// order), collecting each candidate j ≥ minJ once in s.cands with its
// shared-entry count in s.cnt[j].
func (s *scratch) gatherCount(qn []graph.NodeID, cols *SetView, minJ int32) {
	s.cands = s.cands[:0]
	s.epoch++
	for _, u := range qn {
		for _, p := range cols.postings(u) {
			if p.j < minJ {
				continue
			}
			if s.mark[p.j] != s.epoch {
				s.mark[p.j] = s.epoch
				s.cnt[p.j] = 0
				s.cands = append(s.cands, p.j)
			}
			s.cnt[p.j]++
		}
	}
}

// gatherSum is gatherCount accumulating the Dice numerator Σ(wa+wb)
// into s.acc — folded, per candidate, in the row's canonical entry
// order, which is exactly the naive loop's accumulation order.
func (s *scratch) gatherSum(qn []graph.NodeID, qw []float64, cols *SetView, minJ int32) {
	s.cands = s.cands[:0]
	s.epoch++
	offs, cw := cols.flat.RawOffs(), cols.flat.RawWeights()
	for ai, u := range qn {
		wa := qw[ai]
		for _, p := range cols.postings(u) {
			if p.j < minJ {
				continue
			}
			if s.mark[p.j] != s.epoch {
				s.mark[p.j] = s.epoch
				s.acc[p.j] = 0
				s.cands = append(s.cands, p.j)
			}
			s.acc[p.j] += wa + cw[offs[p.j]+p.idx]
		}
	}
}

// gatherDot is gatherSum for the Cosine numerator Σ(wa·wb).
func (s *scratch) gatherDot(qn []graph.NodeID, qw []float64, cols *SetView, minJ int32) {
	s.cands = s.cands[:0]
	s.epoch++
	offs, cw := cols.flat.RawOffs(), cols.flat.RawWeights()
	for ai, u := range qn {
		wa := qw[ai]
		for _, p := range cols.postings(u) {
			if p.j < minJ {
				continue
			}
			if s.mark[p.j] != s.epoch {
				s.mark[p.j] = s.epoch
				s.acc[p.j] = 0
				s.cands = append(s.cands, p.j)
			}
			s.acc[p.j] += wa * cw[offs[p.j]+p.idx]
		}
	}
}

// gatherMatches collects each candidate's full shared-entry match list
// into the strided matchBuf, in the row's canonical entry order — the
// A-ascending input FlatDistMatched wants.
func (s *scratch) gatherMatches(qn []graph.NodeID, cols *SetView, minJ int32) {
	s.cands = s.cands[:0]
	s.epoch++
	ka := len(qn)
	s.stride = ka
	for ai, u := range qn {
		for _, p := range cols.postings(u) {
			if p.j < minJ {
				continue
			}
			if s.mark[p.j] != s.epoch {
				s.mark[p.j] = s.epoch
				s.cnt[p.j] = 0
				s.slot[p.j] = int32(len(s.cands))
				s.cands = append(s.cands, p.j)
				if need := len(s.cands) * ka; need > len(s.matchBuf) {
					grown := make([]core.Match, max(need, 2*len(s.matchBuf)))
					copy(grown, s.matchBuf)
					s.matchBuf = grown
				}
			}
			s.matchBuf[int(s.slot[p.j])*ka+int(s.cnt[p.j])] = core.Match{A: int32(ai), B: p.idx}
			s.cnt[p.j]++
		}
	}
}

// matchesOf returns candidate j's match list after gatherMatches.
func (s *scratch) matchesOf(j int32) []core.Match {
	base := int(s.slot[j]) * s.stride
	return s.matchBuf[base : base+int(s.cnt[j])]
}

// fillRow computes the full distance row of rf's signature i (which
// must be non-empty) against cols into dst: baseline first, then the
// exact value for every posting candidate.
func (s *scratch) fillRow(mode rowMode, rf *core.FlatSigs, i int, cols *SetView, dst []float64) int {
	copy(dst, cols.ones)
	qn := rf.Nodes(i)
	switch mode {
	case modeCount:
		s.gatherCount(qn, cols, 0)
		for _, j := range s.cands {
			dst[j] = s.kern.ScatterFinish(rf, i, cols.flat, int(j), s.cnt[j], 0)
		}
	case modeSum:
		s.gatherSum(qn, rf.Weights(i), cols, 0)
		for _, j := range s.cands {
			dst[j] = s.kern.ScatterFinish(rf, i, cols.flat, int(j), 0, s.acc[j])
		}
	case modeDot:
		s.gatherDot(qn, rf.Weights(i), cols, 0)
		for _, j := range s.cands {
			dst[j] = s.kern.ScatterFinish(rf, i, cols.flat, int(j), 0, s.acc[j])
		}
	default:
		s.gatherMatches(qn, cols, 0)
		for _, j := range s.cands {
			dst[j] = s.kern.FlatDistMatched(rf, i, cols.flat, int(j), s.matchesOf(j))
		}
	}
	return len(s.cands)
}

// Engine computes distance rows/pairs between a row set and a column
// set (pass the same set twice for within-window jobs). The engine
// itself is cheap; the SetViews carry the precomputed state.
type Engine struct {
	rows, cols *SetView
	d          core.Distance
	kind       core.KernelKind
	workers    int
	metrics    Metrics
	scatter    bool
	prefilter  bool
	seq        *scratch // lazily acquired, serves the sequential Dist method
}

// SetMetrics attaches instrumentation to the engine. Call before the
// first Rows/PairsWithin; rowers built afterwards carry the handles.
func (e *Engine) SetMetrics(m Metrics) { e.metrics = m }

// SetScatter toggles the scatter row kernels for Jaccard/Dice/Cosine
// (default on). Off, those kinds fall back to per-candidate match
// lists + FlatDistMatched — the mode the scaled kinds always use.
// Results are bit-identical either way; the toggle exists for A/B
// benchmarking (sigbench -soa=false).
func (e *Engine) SetScatter(enabled bool) { e.scatter = enabled }

// SetPrefilter toggles the mask prefilter on thresholded jobs
// (default on). Results are bit-identical either way: the prefilter
// only skips pairs provably outside the threshold.
func (e *Engine) SetPrefilter(enabled bool) { e.prefilter = enabled }

// NewEngine builds an engine over the two signature sets with the given
// worker count (0 = GOMAXPROCS). It returns false when d has no
// merge-join kernel; callers then keep their naive loops.
func NewEngine(rowSet, colSet *core.SignatureSet, d core.Distance, workers int) (*Engine, bool) {
	if !Kernelizable(d) {
		return nil, false
	}
	rv := NewSetView(rowSet)
	cv := rv
	if colSet != rowSet {
		cv = NewSetView(colSet)
	}
	return NewEngineOn(rv, cv, d, workers)
}

// NewEngineOn is NewEngine over prebuilt views (for callers that cache
// SetViews, like the store).
func NewEngineOn(rows, cols *SetView, d core.Distance, workers int) (*Engine, bool) {
	kern, ok := core.NewDistKernel(d)
	if !ok {
		return nil, false
	}
	return &Engine{
		rows: rows, cols: cols, d: d, kind: kern.Kind(),
		workers: workers, scatter: true, prefilter: true,
	}, true
}

// rower is per-worker state: pooled scratch plus the engine's row mode.
type rower struct {
	e       *Engine
	s       *scratch
	mode    rowMode
	metrics Metrics
}

func (e *Engine) newRower() rower {
	return rower{
		e:       e,
		s:       getScratch(e.d, e.cols.Len()),
		mode:    modeFor(e.kind, e.scatter),
		metrics: e.metrics,
	}
}

func (r *rower) release() { r.s.release() }

// rowInto fills dst[j] = Dist(row i, col j) for every column: the
// disjoint baseline first, then the exact kernel distance for every
// posting-list candidate sharing at least one node with row i.
func (r *rower) rowInto(i int, dst []float64) {
	e := r.e
	if e.rows.flat.IsEmpty(i) {
		copy(dst, e.cols.emptyRow)
		return
	}
	var begin time.Time
	if r.metrics.instrumented() {
		begin = time.Now()
	}
	cands := r.s.fillRow(r.mode, e.rows.flat, i, e.cols, dst)
	if r.metrics.instrumented() {
		r.metrics.RowSeconds.ObserveSince(begin)
		r.metrics.Candidates.Observe(float64(cands))
	}
}

// Dist computes the single distance between row i and column j,
// bit-identical to d.Dist on the underlying signatures. Not safe for
// concurrent use (it shares one kernel's scratch).
func (e *Engine) Dist(i, j int) float64 {
	if e.seq == nil {
		e.seq = getScratch(e.d, 0)
	}
	return e.seq.kern.FlatDist(e.rows.flat, i, e.cols.flat, j)
}

// blockRows bounds how many rows one worker computes per wave; it also
// bounds buffered memory to workers·blockRows·n floats.
const blockRows = 16

// slabPool recycles the parallel Rows path's buffered-row slab.
var slabPool = sync.Pool{New: func() any { return new([]float64) }}

// Rows computes the distance rows for the given row indices and streams
// them to consume(t, row) where t is the position within idx — strictly
// in ascending t, from a single goroutine. Row buffers are reused:
// consumers that retain a row must copy it. Computation is sharded
// across the engine's workers in deterministic contiguous blocks, so the
// values and delivery order are identical to a sequential run. With one
// worker the whole job runs on pooled scratch and allocates nothing.
func (e *Engine) Rows(idx []int, consume func(t int, row []float64)) {
	workers := e.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := (len(idx) + blockRows - 1) / blockRows; workers > max {
		workers = max
	}
	n := e.cols.Len()
	if workers <= 1 {
		r := e.newRower()
		defer r.release()
		if cap(r.s.row) < n {
			r.s.row = make([]float64, n)
		}
		row := r.s.row[:n]
		for t, i := range idx {
			r.rowInto(i, row)
			consume(t, row)
		}
		return
	}
	rowers := make([]rower, workers)
	active := 0
	defer func() {
		for w := 0; w < active; w++ {
			rowers[w].release()
		}
	}()
	stride := workers * blockRows
	slabPtr := slabPool.Get().(*[]float64)
	slab := *slabPtr
	if cap(slab) < stride*n {
		slab = make([]float64, stride*n)
	}
	slab = slab[:stride*n]
	defer func() {
		*slabPtr = slab
		slabPool.Put(slabPtr)
	}()
	bufs := make([][]float64, stride)
	for i := range bufs {
		bufs[i] = slab[i*n : (i+1)*n : (i+1)*n]
	}
	for base := 0; base < len(idx); base += stride {
		end := base + stride
		if end > len(idx) {
			end = len(idx)
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := base + w*blockRows
			if lo >= end {
				break
			}
			hi := lo + blockRows
			if hi > end {
				hi = end
			}
			if w >= active {
				rowers[w] = e.newRower()
				active = w + 1
			}
			wg.Add(1)
			go func(r *rower, lo, hi int) {
				defer wg.Done()
				for t := lo; t < hi; t++ {
					r.rowInto(idx[t], bufs[t-base])
				}
			}(&rowers[w], lo, hi)
		}
		wg.Wait()
		for t := base; t < end; t++ {
			consume(t, bufs[t-base])
		}
	}
}

// Pair is one unordered signature pair with its distance.
type Pair struct {
	I, J int // row indices, I < J
	Dist float64
}

// PairsWithin enumerates every unordered pair (I < J) of non-empty
// signatures with Dist ≤ maxDist, for a same-set engine. With
// maxDist < 1 only pairs sharing at least one node can qualify (disjoint
// pairs sit at exactly 1), so the inverted index enumerates candidates
// directly — and, for the match-list kinds, the mask prefilter drops
// candidates provably outside the threshold before any kernel work
// (unless SetPrefilter(false)). With maxDist ≥ 1 every non-empty pair
// qualifies and the dense row path is used. The result is sorted by
// (I, J), independent of the worker count.
func (e *Engine) PairsWithin(maxDist float64) []Pair {
	n := e.rows.Len()
	workers := e.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	chunk := (n + workers - 1) / workers
	outs := make([][]Pair, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			r := e.newRower()
			defer r.release()
			var out []Pair
			if maxDist < 1 {
				out = r.pairsThresholded(lo, hi, maxDist)
			} else {
				out = r.pairsDense(lo, hi, maxDist)
			}
			outs[w] = out
		}(w, lo, hi)
	}
	wg.Wait()
	var all []Pair
	for _, out := range outs {
		all = append(all, out...)
	}
	sort.Slice(all, func(x, y int) bool {
		if all[x].I != all[y].I {
			return all[x].I < all[y].I
		}
		return all[x].J < all[y].J
	})
	return all
}

// pairsThresholded enumerates candidates of rows [lo, hi) above the
// diagonal and keeps those within maxDist (< 1).
func (r *rower) pairsThresholded(lo, hi int, maxDist float64) []Pair {
	e := r.e
	s := r.s
	rf, cols := e.rows.flat, e.cols
	var out []Pair
	var checked, skipped int64
	for i := lo; i < hi; i++ {
		if rf.IsEmpty(i) {
			continue
		}
		var begin time.Time
		if r.metrics.instrumented() {
			begin = time.Now()
		}
		qn := rf.Nodes(i)
		minJ := int32(i) + 1
		switch r.mode {
		case modeCount:
			s.gatherCount(qn, cols, minJ)
			for _, j := range s.cands {
				if dist := s.kern.ScatterFinish(rf, i, cols.flat, int(j), s.cnt[j], 0); dist <= maxDist {
					out = append(out, Pair{I: i, J: int(j), Dist: dist})
				}
			}
		case modeSum:
			s.gatherSum(qn, rf.Weights(i), cols, minJ)
			for _, j := range s.cands {
				if dist := s.kern.ScatterFinish(rf, i, cols.flat, int(j), 0, s.acc[j]); dist <= maxDist {
					out = append(out, Pair{I: i, J: int(j), Dist: dist})
				}
			}
		case modeDot:
			s.gatherDot(qn, rf.Weights(i), cols, minJ)
			for _, j := range s.cands {
				if dist := s.kern.ScatterFinish(rf, i, cols.flat, int(j), 0, s.acc[j]); dist <= maxDist {
					out = append(out, Pair{I: i, J: int(j), Dist: dist})
				}
			}
		default:
			s.gatherMatches(qn, cols, minJ)
			rowMask := e.rows.masks[i]
			for _, j := range s.cands {
				if e.prefilter {
					checked++
					if distLowerBound(e.kind, rf, i, cols.flat, int(j), rowMask, cols.masks[j]) > maxDist+prefilterSlack {
						skipped++
						continue
					}
				}
				if dist := s.kern.FlatDistMatched(rf, i, cols.flat, int(j), s.matchesOf(j)); dist <= maxDist {
					out = append(out, Pair{I: i, J: int(j), Dist: dist})
				}
			}
		}
		if r.metrics.instrumented() {
			r.metrics.RowSeconds.ObserveSince(begin)
			r.metrics.Candidates.Observe(float64(len(s.cands)))
		}
	}
	r.metrics.flushPrefilter(checked, skipped)
	return out
}

// pairsDense scans full rows of [lo, hi) for maxDist ≥ 1.
func (r *rower) pairsDense(lo, hi int, maxDist float64) []Pair {
	e := r.e
	n := e.cols.Len()
	if cap(r.s.row) < n {
		r.s.row = make([]float64, n)
	}
	row := r.s.row[:n]
	var out []Pair
	for i := lo; i < hi; i++ {
		if e.rows.flat.IsEmpty(i) {
			continue
		}
		r.rowInto(i, row)
		for j := i + 1; j < n; j++ {
			if e.cols.flat.IsEmpty(j) {
				continue
			}
			if row[j] <= maxDist {
				out = append(out, Pair{I: i, J: j, Dist: row[j]})
			}
		}
	}
	return out
}

// Querier answers single-signature nearest-neighbour queries against
// SetViews — the store's search primitive. It holds pooled kernel and
// matcher scratch, so it is not safe for concurrent use; construction
// is cheap, and Release returns the scratch to the shared pool when the
// caller is done (using the querier after Release is a bug). A querier
// cycled over queries of similar shape allocates nothing per call.
type Querier struct {
	s         *scratch
	kind      core.KernelKind
	mode      rowMode
	prefilter bool
	metrics   Metrics
}

// SetMetrics attaches instrumentation: every Neighbors call observes
// one row timing and one candidate count.
func (q *Querier) SetMetrics(m Metrics) { q.metrics = m }

// SetPrefilter toggles the mask prefilter (default on); results are
// bit-identical either way.
func (q *Querier) SetPrefilter(enabled bool) { q.prefilter = enabled }

// NewQuerier returns a querier for d, or false when d has no kernel.
func NewQuerier(d core.Distance) (*Querier, bool) {
	if !Kernelizable(d) {
		return nil, false
	}
	kern, _ := core.NewDistKernel(d)
	return &Querier{
		s:         getScratch(d, 0),
		kind:      kern.Kind(),
		mode:      modeFor(kern.Kind(), true),
		prefilter: true,
	}, true
}

// Release returns the querier's scratch to the shared pool.
func (q *Querier) Release() {
	if q.s != nil {
		q.s.release()
		q.s = nil
	}
}

// Neighbors visits every signature of view at distance ≤ maxDist from
// sig, with distances bit-identical to the naive d.Dist scan. With
// maxDist < 1 only inverted-index candidates are probed (plus the empty
// columns when sig itself is empty — those pairs are at distance 0) and
// the visit order is unspecified; with maxDist ≥ 1 every column is
// visited in ascending order. The callback must not re-enter the
// querier. Returns the number of candidates whose distance was actually
// evaluated (prefilter-rejected candidates are not counted).
func (q *Querier) Neighbors(view *SetView, sig core.Signature, maxDist float64, visit func(j int, dist float64)) int {
	if !q.metrics.instrumented() {
		return q.neighbors(view, sig, maxDist, visit)
	}
	begin := time.Now()
	cands := q.neighbors(view, sig, maxDist, visit)
	q.metrics.RowSeconds.ObserveSince(begin)
	q.metrics.Candidates.Observe(float64(cands))
	return cands
}

// neighbors is Neighbors' uninstrumented body; it reports the number
// of candidates whose distance was evaluated.
func (q *Querier) neighbors(view *SetView, sig core.Signature, maxDist float64, visit func(j int, dist float64)) int {
	n := view.Len()
	s := q.s
	s.grow(n)
	s.qsig[0] = sig
	s.qflat.Reset(s.qsig[:1])
	qf := &s.qflat
	if maxDist < 1 {
		if qf.IsEmpty(0) {
			if 0 <= maxDist {
				for _, j := range view.emptyIdx {
					visit(int(j), 0)
				}
			}
			return 0
		}
		return q.thresholded(view, maxDist, visit)
	}
	if cap(s.row) < n {
		s.row = make([]float64, n)
	}
	row := s.row[:n]
	probed := 0
	if qf.IsEmpty(0) {
		copy(row, view.emptyRow)
	} else {
		probed = s.fillRow(q.mode, qf, 0, view, row)
	}
	for j, dist := range row {
		if dist <= maxDist {
			visit(j, dist)
		}
	}
	return probed
}

// thresholded serves the maxDist < 1 candidate path for a non-empty
// query already loaded into s.qflat.
func (q *Querier) thresholded(view *SetView, maxDist float64, visit func(j int, dist float64)) int {
	s := q.s
	qf := &s.qflat
	qn := qf.Nodes(0)
	switch q.mode {
	case modeCount:
		s.gatherCount(qn, view, 0)
		for _, j := range s.cands {
			if dist := s.kern.ScatterFinish(qf, 0, view.flat, int(j), s.cnt[j], 0); dist <= maxDist {
				visit(int(j), dist)
			}
		}
		return len(s.cands)
	case modeSum:
		s.gatherSum(qn, qf.Weights(0), view, 0)
	case modeDot:
		s.gatherDot(qn, qf.Weights(0), view, 0)
	default:
		s.gatherMatches(qn, view, 0)
		mask := lsh.NewMask(qn)
		probed := 0
		var checked, skipped int64
		for _, j := range s.cands {
			if q.prefilter {
				checked++
				if distLowerBound(q.kind, qf, 0, view.flat, int(j), mask, view.masks[j]) > maxDist+prefilterSlack {
					skipped++
					continue
				}
			}
			probed++
			if dist := s.kern.FlatDistMatched(qf, 0, view.flat, int(j), s.matchesOf(j)); dist <= maxDist {
				visit(int(j), dist)
			}
		}
		q.metrics.flushPrefilter(checked, skipped)
		return probed
	}
	for _, j := range s.cands {
		if dist := s.kern.ScatterFinish(qf, 0, view.flat, int(j), 0, s.acc[j]); dist <= maxDist {
			visit(int(j), dist)
		}
	}
	return len(s.cands)
}
