// Package distmat is the parallel sparse pairwise-distance engine: the
// layer every all-pairs signature job in this module rides (§IV property
// metrics, §V applications, the sigserverd search path).
//
// It combines three ideas:
//
//  1. Merge-join kernels (core.DistKernel): each signature gets a
//     node-sorted view built once (core.SortedSig), so a single distance
//     costs O(k) instead of the naive O(k²) membership probing.
//  2. An inverted index (node → posting list of signature indices) over
//     a SignatureSet: all-pairs jobs enumerate only pairs that share at
//     least one node and resolve the (dominant) disjoint remainder in
//     closed form — for every Validate-clean signature pair sharing no
//     node the distance is exactly 1.0 (0.0 when both are empty), see
//     internal/core/sorted.go. Dense O(n²·k²) work becomes
//     overlap-proportional work. Posting entries carry the node's
//     canonical index inside the column signature, so the enumeration
//     itself assembles each candidate's shared-node match list and the
//     kernels skip their merge step entirely (core.DistKernel.DistMatched).
//  3. Sharded parallel execution: rows are chunked deterministically
//     across workers (mirroring core.Parallel's contract) and delivered
//     to the consumer sequentially in row order, so parallel output —
//     including order-sensitive Welford reductions downstream — is
//     bit-identical to a single-threaded run.
//
// Determinism contract: every cell (i,j) is computed by exactly one
// worker from immutable inputs, and consumers observe rows in ascending
// order; results never depend on GOMAXPROCS or scheduling.
package distmat

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"graphsig/internal/core"
	"graphsig/internal/graph"
	"graphsig/internal/obs"
)

// Metrics is optional engine instrumentation (see internal/obs). Nil
// fields — and the zero Metrics — are no-ops, so attaching it costs a
// predictable branch per row when disabled.
type Metrics struct {
	// RowSeconds observes the wall time of each computed row (one
	// query signature against every column), in seconds.
	RowSeconds *obs.Histogram
	// Candidates observes the inverted-index candidate count per row:
	// how many columns shared at least one node with the query.
	Candidates *obs.Histogram
}

// Kernelizable reports whether d has a merge-join kernel, i.e. whether
// the engine can serve it. Callers fall back to naive loops otherwise.
func Kernelizable(d core.Distance) bool {
	_, ok := core.NewDistKernel(d)
	return ok
}

// posting is one inverted-index entry: signature j contains the node,
// at canonical index idx within that signature.
type posting struct {
	j   int32
	idx int32
}

// SetView is the engine-side view of a SignatureSet: node-sorted views
// of every signature, the inverted index, and the precomputed disjoint
// baseline rows. Build it once per set (O(n·k·log k)) and reuse it; it
// is immutable afterwards and safe for concurrent use.
//
// The inverted index has two representations. When the node-ID space is
// dense (max ID comparable to the number of posting entries — the
// common case for the trace datasets, whose hosts are numbered
// contiguously) it is a CSR layout: postings for node u live at
// bulk[offs[u]:offs[u+1]]. That build hashes nothing and the arrays are
// pointer-free, so lookups are one bounds check plus two loads and the
// garbage collector never scans the index. Sparse or negative ID spaces
// fall back to a map keyed by node.
type SetView struct {
	set   *core.SignatureSet
	views []core.SortedSig
	offs  []int32                    // CSR offsets (dense index); nil when the map is in use
	bulk  []posting                  // all postings, grouped by node (CSR) in ascending j
	post  map[graph.NodeID][]posting // node → postings in ascending j (fallback)
	// Disjoint baseline rows, by row-side emptiness: a non-empty row is
	// at distance 1 from every column it shares no node with (even empty
	// ones), while an empty row is at 0 from empty columns and 1 from
	// the rest.
	ones     []float64 // all 1 — baseline for non-empty rows
	emptyRow []float64 // 0 at empty columns, 1 elsewhere — row for empty rows
	emptyIdx []int32   // indices of empty signatures
}

// denseSlack bounds how much larger than the posting count the node-ID
// range may be before the CSR offsets array is considered wasteful and
// the map representation is used instead.
const denseSlack = 8

// NewSetView builds the engine view of set.
func NewSetView(set *core.SignatureSet) *SetView {
	n := set.Len()
	v := &SetView{
		set:      set,
		views:    core.NewSortedSigs(set.Sigs),
		ones:     make([]float64, n),
		emptyRow: make([]float64, n),
	}
	total := 0
	maxNode := graph.NodeID(-1)
	dense := true
	for i := 0; i < n; i++ {
		v.ones[i] = 1
		if v.views[i].IsEmpty() {
			v.emptyIdx = append(v.emptyIdx, int32(i))
			continue // emptyRow stays 0: empty-vs-empty pairs are at distance 0
		}
		v.emptyRow[i] = 1
		for _, u := range set.Sigs[i].Nodes {
			if u < 0 {
				dense = false
			} else if u > maxNode {
				maxNode = u
			}
			total++
		}
	}
	if dense && int64(maxNode)+1 <= denseSlack*int64(total)+64 {
		v.buildDense(int(maxNode)+1, total)
	} else {
		v.buildMap(total)
	}
	return v
}

// buildDense fills the CSR index: count per node, prefix-sum into
// offsets, then scatter the postings — no hashing, no per-node slices.
func (v *SetView) buildDense(nodes, total int) {
	offs := make([]int32, nodes+1)
	sigs := v.set.Sigs
	for i := range v.views {
		if v.views[i].IsEmpty() {
			continue
		}
		for _, u := range sigs[i].Nodes {
			offs[u+1]++
		}
	}
	for u := 0; u < nodes; u++ {
		offs[u+1] += offs[u]
	}
	bulk := make([]posting, total)
	next := make([]int32, nodes)
	for i := range v.views {
		if v.views[i].IsEmpty() {
			continue
		}
		for bi, u := range sigs[i].Nodes {
			slot := offs[u] + next[u]
			next[u]++
			bulk[slot] = posting{j: int32(i), idx: int32(bi)}
		}
	}
	v.offs, v.bulk = offs, bulk
}

// buildMap fills the map index in two passes: count, then fill
// exact-capacity lists carved from one bulk allocation.
func (v *SetView) buildMap(total int) {
	counts := make(map[graph.NodeID]int32)
	sigs := v.set.Sigs
	for i := range v.views {
		if v.views[i].IsEmpty() {
			continue
		}
		for _, u := range sigs[i].Nodes {
			counts[u]++
		}
	}
	v.post = make(map[graph.NodeID][]posting, len(counts))
	bulk := make([]posting, total)
	off := 0
	for i := range v.views {
		if v.views[i].IsEmpty() {
			continue
		}
		for bi, u := range sigs[i].Nodes {
			list, ok := v.post[u]
			if !ok {
				c := int(counts[u])
				list = bulk[off : off : off+c]
				off += c
			}
			v.post[u] = append(list, posting{j: int32(i), idx: int32(bi)})
		}
	}
}

// postings returns the inverted-index entries for node u, in ascending
// signature index.
func (v *SetView) postings(u graph.NodeID) []posting {
	if v.offs != nil {
		if u >= 0 && int(u) < len(v.offs)-1 {
			return v.bulk[v.offs[u]:v.offs[u+1]]
		}
		return nil
	}
	return v.post[u]
}

// Set returns the underlying signature set.
func (v *SetView) Set() *core.SignatureSet { return v.set }

// Len reports the number of signatures.
func (v *SetView) Len() int { return len(v.views) }

// View returns the node-sorted view of signature i.
func (v *SetView) View(i int) core.SortedSig { return v.views[i] }

// Engine computes distance rows/pairs between a row set and a column
// set (pass the same set twice for within-window jobs). The engine
// itself is cheap; the SetViews carry the precomputed state.
type Engine struct {
	rows, cols *SetView
	d          core.Distance
	workers    int
	metrics    Metrics
	seq        *rower // lazily built, serves the sequential Dist method
}

// SetMetrics attaches instrumentation to the engine. Call before the
// first Rows/PairsWithin; rowers built afterwards carry the handles.
func (e *Engine) SetMetrics(m Metrics) { e.metrics = m }

// NewEngine builds an engine over the two signature sets with the given
// worker count (0 = GOMAXPROCS). It returns false when d has no
// merge-join kernel; callers then keep their naive loops.
func NewEngine(rowSet, colSet *core.SignatureSet, d core.Distance, workers int) (*Engine, bool) {
	if !Kernelizable(d) {
		return nil, false
	}
	rv := NewSetView(rowSet)
	cv := rv
	if colSet != rowSet {
		cv = NewSetView(colSet)
	}
	return &Engine{rows: rv, cols: cv, d: d, workers: workers}, true
}

// NewEngineOn is NewEngine over prebuilt views (for callers that cache
// SetViews, like the store).
func NewEngineOn(rows, cols *SetView, d core.Distance, workers int) (*Engine, bool) {
	if !Kernelizable(d) {
		return nil, false
	}
	return &Engine{rows: rows, cols: cols, d: d, workers: workers}, true
}

// matcher is the shared inverted-index enumeration state: an
// epoch-stamped candidate dedup array (a signature pair sharing several
// nodes appears on several posting lists but must be computed once)
// plus per-candidate shared-node match lists, assembled in the row's
// canonical entry order — exactly the input DistMatched wants.
type matcher struct {
	mark    []uint32
	epoch   uint32
	cands   []int32
	matches [][]core.Match
}

// grow makes the matcher serve a column set of n signatures.
func (m *matcher) grow(n int) {
	if len(m.mark) < n {
		m.mark = make([]uint32, n)
		m.epoch = 0
		m.matches = make([][]core.Match, n)
	}
}

// gather enumerates the posting lists for ra's entries (in canonical
// order) against cols' inverted index, collecting each candidate
// j ≥ minJ once in m.cands with its match list in m.matches[j].
func (m *matcher) gather(ra *core.SortedSig, cols *SetView, minJ int32) {
	m.cands = m.cands[:0]
	m.epoch++
	sig := ra.Sig()
	for ai, u := range sig.Nodes {
		for _, p := range cols.postings(u) {
			if p.j < minJ {
				continue
			}
			if m.mark[p.j] != m.epoch {
				m.mark[p.j] = m.epoch
				m.matches[p.j] = m.matches[p.j][:0]
				m.cands = append(m.cands, p.j)
			}
			m.matches[p.j] = append(m.matches[p.j], core.Match{A: int32(ai), B: p.idx})
		}
	}
}

// rower is per-worker state: a kernel plus a matcher.
type rower struct {
	e       *Engine
	kern    *core.DistKernel
	m       matcher
	metrics Metrics
}

func (e *Engine) newRower() *rower {
	kern, _ := core.NewDistKernel(e.d)
	r := &rower{e: e, kern: kern, metrics: e.metrics}
	r.m.grow(e.cols.Len())
	return r
}

// instrumented reports whether any handle is attached, so the hot loop
// skips clock reads entirely when observability is off.
func (m Metrics) instrumented() bool { return m.RowSeconds != nil || m.Candidates != nil }

// rowInto fills dst[j] = Dist(row i, col j) for every column: the
// disjoint baseline first, then the exact kernel distance for every
// posting-list candidate sharing at least one node with row i.
func (r *rower) rowInto(i int, dst []float64) {
	e := r.e
	ra := &e.rows.views[i]
	if ra.IsEmpty() {
		copy(dst, e.cols.emptyRow)
		return
	}
	var begin time.Time
	if r.metrics.instrumented() {
		begin = time.Now()
	}
	copy(dst, e.cols.ones)
	r.m.gather(ra, e.cols, 0)
	for _, j := range r.m.cands {
		dst[j] = r.kern.DistMatched(ra, &e.cols.views[j], r.m.matches[j])
	}
	if r.metrics.instrumented() {
		r.metrics.RowSeconds.ObserveSince(begin)
		r.metrics.Candidates.Observe(float64(len(r.m.cands)))
	}
}

// Dist computes the single distance between row i and column j,
// bit-identical to d.Dist on the underlying signatures. Not safe for
// concurrent use (it shares one kernel's scratch).
func (e *Engine) Dist(i, j int) float64 {
	if e.seq == nil {
		e.seq = e.newRower()
	}
	return e.seq.kern.Dist(&e.rows.views[i], &e.cols.views[j])
}

// blockRows bounds how many rows one worker computes per wave; it also
// bounds buffered memory to workers·blockRows·n floats.
const blockRows = 16

// Rows computes the distance rows for the given row indices and streams
// them to consume(t, row) where t is the position within idx — strictly
// in ascending t, from a single goroutine. Row buffers are reused:
// consumers that retain a row must copy it. Computation is sharded
// across the engine's workers in deterministic contiguous blocks, so the
// values and delivery order are identical to a sequential run.
func (e *Engine) Rows(idx []int, consume func(t int, row []float64)) {
	workers := e.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := (len(idx) + blockRows - 1) / blockRows; workers > max {
		workers = max
	}
	n := e.cols.Len()
	if workers <= 1 {
		r := e.newRower()
		row := make([]float64, n)
		for t, i := range idx {
			r.rowInto(i, row)
			consume(t, row)
		}
		return
	}
	rowers := make([]*rower, workers)
	stride := workers * blockRows
	bufs := make([][]float64, stride)
	for i := range bufs {
		bufs[i] = make([]float64, n)
	}
	for base := 0; base < len(idx); base += stride {
		end := base + stride
		if end > len(idx) {
			end = len(idx)
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := base + w*blockRows
			if lo >= end {
				break
			}
			hi := lo + blockRows
			if hi > end {
				hi = end
			}
			if rowers[w] == nil {
				rowers[w] = e.newRower()
			}
			wg.Add(1)
			go func(r *rower, lo, hi int) {
				defer wg.Done()
				for t := lo; t < hi; t++ {
					r.rowInto(idx[t], bufs[t-base])
				}
			}(rowers[w], lo, hi)
		}
		wg.Wait()
		for t := base; t < end; t++ {
			consume(t, bufs[t-base])
		}
	}
}

// Pair is one unordered signature pair with its distance.
type Pair struct {
	I, J int // row indices, I < J
	Dist float64
}

// PairsWithin enumerates every unordered pair (I < J) of non-empty
// signatures with Dist ≤ maxDist, for a same-set engine. With
// maxDist < 1 only pairs sharing at least one node can qualify (disjoint
// pairs sit at exactly 1), so the inverted index enumerates candidates
// directly; with maxDist ≥ 1 every non-empty pair qualifies and the
// dense row path is used. The result is sorted by (I, J), independent of
// the worker count.
func (e *Engine) PairsWithin(maxDist float64) []Pair {
	n := e.rows.Len()
	workers := e.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	chunk := (n + workers - 1) / workers
	outs := make([][]Pair, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			r := e.newRower()
			var out []Pair
			if maxDist < 1 {
				for i := lo; i < hi; i++ {
					ra := &e.rows.views[i]
					if ra.IsEmpty() {
						continue
					}
					var begin time.Time
					if r.metrics.instrumented() {
						begin = time.Now()
					}
					r.m.gather(ra, e.cols, int32(i)+1)
					for _, j := range r.m.cands {
						dist := r.kern.DistMatched(ra, &e.cols.views[j], r.m.matches[j])
						if dist <= maxDist {
							out = append(out, Pair{I: i, J: int(j), Dist: dist})
						}
					}
					if r.metrics.instrumented() {
						r.metrics.RowSeconds.ObserveSince(begin)
						r.metrics.Candidates.Observe(float64(len(r.m.cands)))
					}
				}
			} else {
				row := make([]float64, n)
				for i := lo; i < hi; i++ {
					if e.rows.views[i].IsEmpty() {
						continue
					}
					r.rowInto(i, row)
					for j := i + 1; j < n; j++ {
						if e.cols.views[j].IsEmpty() {
							continue
						}
						if row[j] <= maxDist {
							out = append(out, Pair{I: i, J: j, Dist: row[j]})
						}
					}
				}
			}
			outs[w] = out
		}(w, lo, hi)
	}
	wg.Wait()
	var all []Pair
	for _, out := range outs {
		all = append(all, out...)
	}
	sort.Slice(all, func(x, y int) bool {
		if all[x].I != all[y].I {
			return all[x].I < all[y].I
		}
		return all[x].J < all[y].J
	})
	return all
}

// Querier answers single-signature nearest-neighbour queries against
// SetViews — the store's search primitive. It holds kernel and matcher
// scratch, so it is not safe for concurrent use; construction is cheap.
type Querier struct {
	kern    *core.DistKernel
	m       matcher
	row     []float64
	metrics Metrics
}

// SetMetrics attaches instrumentation: every Neighbors call observes
// one row timing and one candidate count.
func (q *Querier) SetMetrics(m Metrics) { q.metrics = m }

// NewQuerier returns a querier for d, or false when d has no kernel.
func NewQuerier(d core.Distance) (*Querier, bool) {
	kern, ok := core.NewDistKernel(d)
	if !ok {
		return nil, false
	}
	return &Querier{kern: kern}, true
}

// Neighbors visits every signature of view at distance ≤ maxDist from
// sig, with distances bit-identical to the naive d.Dist scan. With
// maxDist < 1 only inverted-index candidates are probed (plus the empty
// columns when sig itself is empty — those pairs are at distance 0) and
// the visit order is unspecified; with maxDist ≥ 1 every column is
// visited in ascending order. The callback must not re-enter the
// querier. Returns the number of inverted-index candidates whose
// distance was evaluated with a kernel probe.
func (q *Querier) Neighbors(view *SetView, sig core.Signature, maxDist float64, visit func(j int, dist float64)) int {
	if !q.metrics.instrumented() {
		return q.neighbors(view, sig, maxDist, visit)
	}
	begin := time.Now()
	cands := q.neighbors(view, sig, maxDist, visit)
	q.metrics.RowSeconds.ObserveSince(begin)
	q.metrics.Candidates.Observe(float64(cands))
	return cands
}

// neighbors is Neighbors' uninstrumented body; it reports the number
// of inverted-index candidates probed.
func (q *Querier) neighbors(view *SetView, sig core.Signature, maxDist float64, visit func(j int, dist float64)) int {
	n := view.Len()
	q.m.grow(n)
	qview := core.NewSortedSig(sig)
	qv := &qview
	if maxDist < 1 {
		if qv.IsEmpty() {
			if 0 <= maxDist {
				for _, j := range view.emptyIdx {
					visit(int(j), 0)
				}
			}
			return 0
		}
		q.m.gather(qv, view, 0)
		for _, j := range q.m.cands {
			dist := q.kern.DistMatched(qv, &view.views[j], q.m.matches[j])
			if dist <= maxDist {
				visit(int(j), dist)
			}
		}
		return len(q.m.cands)
	}
	if cap(q.row) < n {
		q.row = make([]float64, n)
	}
	row := q.row[:n]
	probed := 0
	if qv.IsEmpty() {
		copy(row, view.emptyRow)
	} else {
		copy(row, view.ones)
		q.m.gather(qv, view, 0)
		for _, j := range q.m.cands {
			row[j] = q.kern.DistMatched(qv, &view.views[j], q.m.matches[j])
		}
		probed = len(q.m.cands)
	}
	for j, dist := range row {
		if dist <= maxDist {
			visit(j, dist)
		}
	}
	return probed
}
