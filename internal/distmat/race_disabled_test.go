//go:build !race

package distmat

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
