package distmat

import (
	"testing"

	"graphsig/internal/core"
)

// TestEngineRowsAllocFree is the tentpole's steady-state contract: a
// sequential Rows pass over a warm engine performs zero allocations —
// the pooled scratch, the flat SoA views and the reused row buffer
// carry the whole job.
func TestEngineRowsAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("the race detector drops sync.Pool puts, defeating scratch reuse")
	}
	set := randSet(t, 7, 150, 10, 120)
	idx := make([]int, set.Len())
	for i := range idx {
		idx[i] = i
	}
	sink := 0.0
	consume := func(_ int, row []float64) { sink += row[0] }
	for _, d := range core.ExtendedDistances() {
		eng, ok := NewEngine(set, set, d, 1)
		if !ok {
			t.Fatalf("no engine for %s", d.Name())
		}
		eng.Rows(idx, consume) // warm the pool and grow all scratch
		if allocs := testing.AllocsPerRun(10, func() { eng.Rows(idx, consume) }); allocs != 0 {
			t.Errorf("%s: Engine.Rows allocates %.1f times per run, want 0", d.Name(), allocs)
		}
	}
	_ = sink
}

// TestQuerierSteadyStateAllocFree: a warm querier answering repeated
// queries allocates nothing — both on the thresholded candidate path
// and the dense row path.
func TestQuerierSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("the race detector drops sync.Pool puts, defeating scratch reuse")
	}
	set := randSet(t, 8, 120, 10, 100)
	view := NewSetView(set)
	query := set.Sigs[3]
	for i := 3; query.IsEmpty(); i++ {
		query = set.Sigs[i]
	}
	sink := 0.0
	visit := func(_ int, dist float64) { sink += dist }
	for _, d := range core.ExtendedDistances() {
		q, ok := NewQuerier(d)
		if !ok {
			t.Fatalf("no querier for %s", d.Name())
		}
		for _, maxDist := range []float64{0.6, 1} {
			q.Neighbors(view, query, maxDist, visit) // warm
			if allocs := testing.AllocsPerRun(10, func() { q.Neighbors(view, query, maxDist, visit) }); allocs != 0 {
				t.Errorf("%s maxDist=%g: Querier.Neighbors allocates %.1f times per call, want 0",
					d.Name(), maxDist, allocs)
			}
		}
		q.Release()
	}
	_ = sink
}

// TestQuerierRelease: a released querier's scratch is returned to the
// pool; Release is idempotent.
func TestQuerierRelease(t *testing.T) {
	q, _ := NewQuerier(core.Jaccard{})
	q.Release()
	q.Release()
	if q.s != nil {
		t.Fatal("scratch not cleared on release")
	}
}
