package distmat

import (
	"math"

	"graphsig/internal/core"
	"graphsig/internal/lsh"
)

// The mask prefilter: a conservative, no-false-rejection bound that
// lets thresholded jobs discard candidate pairs without running the
// exact kernel fold.
//
// Ingredients, all deterministic:
//
//   - lsh.Mask is a 128-bit one-hash Bloom signature of a node set.
//     Hash collisions only merge bits, so P = popcount(maskA | maskB)
//     is always ≤ |A ∪ B|: a provable lower bound on the union size.
//     By inclusion-exclusion, Imax = |A| + |B| − P is then a provable
//     upper bound on the intersection size |A ∩ B| (also clamped by
//     min(|A|, |B|)).
//
//   - core.FlatSigs stores inclusive prefix sums over the canonical
//     (weight-descending) entry order, so "the largest sum any m
//     weights of this signature can reach" is one array read:
//     TopWeightSum(i, m) — and likewise for squared and normalized
//     weights.
//
// Every registered distance is 1 − sim with a similarity whose
// numerator folds only shared entries and is monotone in the shared
// set. Bounding the numerator from above with Imax and the top-Imax
// prefix sums, and the denominator from below with the exact per-
// signature folds, yields simUpper ≥ sim, hence 1 − simUpper ≤ dist:
// a lower bound on the distance. A candidate with
// distLowerBound > maxDist + prefilterSlack provably cannot qualify.
//
// prefilterSlack absorbs floating-point rounding: the bound arithmetic
// (a handful of additions, multiplications and one square root) and the
// kernel folds each carry relative error around 1e-15, so an absolute
// guard of 1e-9 on distances in [0, 1] is ~6 orders of magnitude wider
// than any achievable drift, while rejecting nothing a meaningful
// threshold comparison would keep. The property tests in
// prefilter_test.go check bound ≤ dist + prefilterSlack across the
// shared fuzz corpus and random sets for all six distances.
const prefilterSlack = 1e-9

// distLowerBound returns a provable lower bound on the kind's distance
// between signature qi of qf and signature j of cf, given their masks.
func distLowerBound(kind core.KernelKind, qf *core.FlatSigs, qi int, cf *core.FlatSigs, j int, qm, cm lsh.Mask) float64 {
	la, lb := qf.Len(qi), cf.Len(j)
	if la == 0 && lb == 0 {
		return 0 // every kernel pins the empty-vs-empty distance at 0
	}
	imax := la + lb - qm.UnionPop(cm)
	if la < lb {
		if imax > la {
			imax = la
		}
	} else if imax > lb {
		imax = lb
	}
	if imax < 0 {
		imax = 0
	}
	var simUpper float64
	switch kind {
	case core.KindJaccard:
		union := la + lb - imax
		if union == 0 {
			return 0 // both empty: exact distance is 0
		}
		simUpper = float64(imax) / float64(union)
	case core.KindDice:
		den := qf.WeightSum(qi) + cf.WeightSum(j)
		if den == 0 {
			return 0
		}
		simUpper = (qf.TopWeightSum(qi, imax) + cf.TopWeightSum(j, imax)) / den
	case core.KindScaledDice:
		den := fmax(qf.WeightSum(qi), cf.WeightSum(j))
		if den == 0 {
			return 0
		}
		// Σ min(wa, wb) over shared entries is at most the smaller of
		// the two top-Imax sums.
		simUpper = fmin(qf.TopWeightSum(qi, imax), cf.TopWeightSum(j, imax)) / den
	case core.KindScaledHellinger:
		den := fmax(qf.WeightSum(qi), cf.WeightSum(j))
		if den == 0 {
			return 0
		}
		// Cauchy–Schwarz: Σ√(wa·wb) ≤ √(Σwa · Σwb) over the shared
		// entries, each factor at most its side's top-Imax sum.
		simUpper = math.Sqrt(qf.TopWeightSum(qi, imax)*cf.TopWeightSum(j, imax)) / den
	case core.KindCosine:
		if qf.SumSq(qi) == 0 || cf.SumSq(j) == 0 {
			return 1 // exact: massless side pins the distance at 1
		}
		// Cauchy–Schwarz on the dot product, with squared-weight
		// prefix sums.
		simUpper = math.Sqrt(qf.TopSqSum(qi, imax)*cf.TopSqSum(j, imax)) / (qf.Norm(qi) * cf.Norm(j))
	default: // KindWeightedJaccard: ScaledDice over normalized weights
		den := fmax(qf.NormSum(qi), cf.NormSum(j))
		if den == 0 {
			return 0
		}
		simUpper = fmin(qf.TopNormSum(qi, imax), cf.TopNormSum(j, imax)) / den
	}
	if simUpper >= 1 {
		return 0
	}
	return 1 - simUpper
}

func fmin(x, y float64) float64 {
	if x < y {
		return x
	}
	return y
}

func fmax(x, y float64) float64 {
	if x > y {
		return x
	}
	return y
}
