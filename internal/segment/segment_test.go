package segment

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"graphsig/internal/core"
	"graphsig/internal/fault"
	"graphsig/internal/graph"
)

// buildSet makes a window's SignatureSet over u from label → member
// weights, interning labels in sorted order for determinism.
func buildSet(t *testing.T, u *graph.Universe, window int, sigs map[string]map[string]float64) *core.SignatureSet {
	t.Helper()
	labels := make([]string, 0, len(sigs))
	for l := range sigs {
		labels = append(labels, l)
	}
	for i := range labels {
		for j := i + 1; j < len(labels); j++ {
			if labels[j] < labels[i] {
				labels[i], labels[j] = labels[j], labels[i]
			}
		}
	}
	var sources []graph.NodeID
	var out []core.Signature
	for _, l := range labels {
		v := u.MustIntern(l, graph.PartNone)
		w := map[graph.NodeID]float64{}
		for m, weight := range sigs[l] {
			w[u.MustIntern(m, graph.PartNone)] = weight
		}
		sources = append(sources, v)
		out = append(out, core.FromWeights(w, 10))
	}
	set, err := core.NewSignatureSet("tt", window, sources, out)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func threeWindows(t *testing.T, u *graph.Universe) []*core.SignatureSet {
	t.Helper()
	return []*core.SignatureSet{
		buildSet(t, u, 3, map[string]map[string]float64{
			"a": {"x": 1},
			"b": {"x": 0.5, "y": 0.5},
		}),
		buildSet(t, u, 4, map[string]map[string]float64{
			"a": {"y": 1},
		}),
		buildSet(t, u, 7, map[string]map[string]float64{
			"b": {"x": 0.25, "z": 0.75},
			"c": {"z": 1},
		}),
	}
}

// assertSetsEqual compares two sets label-space (the universes may
// assign different NodeIDs).
func assertSetsEqual(t *testing.T, want, got *core.SignatureSet, wu, gu *graph.Universe) {
	t.Helper()
	if want.Window != got.Window || want.Scheme != got.Scheme {
		t.Fatalf("window/scheme mismatch: (%d,%s) != (%d,%s)", got.Window, got.Scheme, want.Window, want.Scheme)
	}
	if len(want.Sources) != len(got.Sources) {
		t.Fatalf("window %d: %d sources, want %d", want.Window, len(got.Sources), len(want.Sources))
	}
	for i := range want.Sources {
		if wl, gl := wu.Label(want.Sources[i]), gu.Label(got.Sources[i]); wl != gl {
			t.Fatalf("window %d source %d: %q != %q", want.Window, i, gl, wl)
		}
		ws, gs := want.Sigs[i], got.Sigs[i]
		if ws.Len() != gs.Len() {
			t.Fatalf("window %d sig %d: len %d != %d", want.Window, i, gs.Len(), ws.Len())
		}
		for j := range ws.Nodes {
			if wu.Label(ws.Nodes[j]) != gu.Label(gs.Nodes[j]) || ws.Weights[j] != gs.Weights[j] {
				t.Fatalf("window %d sig %d member %d differs", want.Window, i, j)
			}
		}
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	dir := t.TempDir()
	u := graph.NewUniverse()
	sets := threeWindows(t, u)
	seg, err := Write(dir, sets, u)
	if err != nil {
		t.Fatal(err)
	}
	if seg.First() != 3 || seg.Last() != 7 || seg.Len() != 3 {
		t.Fatalf("first=%d last=%d len=%d", seg.First(), seg.Last(), seg.Len())
	}

	// Reopen against a fresh universe: the file must be self-contained.
	u2 := graph.NewUniverse()
	paths, err := List(dir)
	if err != nil || len(paths) != 1 {
		t.Fatalf("list = %v, %v", paths, err)
	}
	got, err := Open(paths[0], u2)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range sets {
		set, err := got.ReadWindow(want.Window)
		if err != nil {
			t.Fatal(err)
		}
		assertSetsEqual(t, want, set, u, u2)
	}
	if _, err := got.ReadWindow(5); err == nil {
		t.Fatal("reading an absent window succeeded")
	}
	if wins := got.LabelWindows("b"); len(wins) != 2 || wins[0] != 3 || wins[1] != 7 {
		t.Fatalf(`label "b" windows = %v`, wins)
	}
	if wins := got.LabelWindows("x"); wins != nil {
		t.Fatalf("non-source label indexed: %v", wins)
	}
	if !got.Contains(4) || got.Contains(6) {
		t.Fatal("Contains disagrees with the TOC")
	}
}

// Compaction must be deterministic: re-writing the same windows (e.g. a
// crash-replay re-eviction, or a follower compacting the shipped WAL)
// must reproduce the file bit-identically.
func TestSegmentWriteDeterministic(t *testing.T) {
	u := graph.NewUniverse()
	sets := threeWindows(t, u)
	dirA, dirB := t.TempDir(), t.TempDir()
	segA, err := Write(dirA, sets, u)
	if err != nil {
		t.Fatal(err)
	}
	segB, err := Write(dirB, sets, u)
	if err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(segA.Path())
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(segB.Path())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same windows produced different segment bytes")
	}
}

func TestSegmentTornTailCorrupt(t *testing.T) {
	dir := t.TempDir()
	u := graph.NewUniverse()
	seg, err := Write(dir, threeWindows(t, u), u)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(seg.Path())
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, len(raw) / 2, len(raw) - 3} {
		if err := os.WriteFile(seg.Path(), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(seg.Path(), graph.NewUniverse()); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: err = %v, want ErrCorrupt", cut, err)
		}
	}
}

func TestSegmentFlippedByteCorrupt(t *testing.T) {
	dir := t.TempDir()
	u := graph.NewUniverse()
	seg, err := Write(dir, threeWindows(t, u), u)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(seg.Path())
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/3] ^= 0x20
	if err := os.WriteFile(seg.Path(), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(seg.Path(), graph.NewUniverse()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	q, err := Quarantine(seg.Path())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(q); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	if _, err := os.Stat(seg.Path()); !os.IsNotExist(err) {
		t.Fatal("corrupt file still in place after quarantine")
	}
}

func TestSegmentListCleansTmp(t *testing.T) {
	dir := t.TempDir()
	u := graph.NewUniverse()
	if _, err := Write(dir, threeWindows(t, u), u); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, Name(9, 9)+tmpSuffix)
	if err := os.WriteFile(stale, []byte("half a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	paths, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("listed %v", paths)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale .tmp survived List")
	}
}

func TestSegmentWriteFailpoints(t *testing.T) {
	u := graph.NewUniverse()
	sets := threeWindows(t, u)
	for _, point := range []string{"segment.write", "segment.commit"} {
		dir := t.TempDir()
		fault.Set(point, func() error { return fmt.Errorf("injected") })
		_, err := Write(dir, sets, u)
		fault.Reset()
		if err == nil {
			t.Fatalf("%s: write succeeded", point)
		}
		// Whatever the crash point left behind, a fresh attach sees no
		// committed segment.
		paths, err := List(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(paths) != 0 {
			t.Fatalf("%s: committed files after failed write: %v", point, paths)
		}
		// And the retry goes through cleanly.
		if _, err := Write(dir, sets, u); err != nil {
			t.Fatalf("%s: retry failed: %v", point, err)
		}
	}
}
